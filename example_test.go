package lama_test

import (
	"fmt"

	"lama"
)

// ExampleParseLayout shows layout strings and their iteration order.
func ExampleParseLayout() {
	layout, _ := lama.ParseLayout("scbnh")
	fmt.Println(layout)
	fmt.Println(layout.Levels()[0], "varies fastest")
	// Output:
	// scbnh
	// socket varies fastest
}

// ExampleMapper_Map reproduces the start of the paper's Figure 2.
func ExampleMapper_Map() {
	spec, _ := lama.Preset("fig2") // 2 sockets x 3 cores x 2 threads
	cluster := lama.Homogeneous(2, spec)
	mapper, _ := lama.NewMapper(cluster, lama.MustParseLayout("scbnh"), lama.Options{})
	m, _ := mapper.Map(4)
	for _, p := range m.Placements {
		fmt.Printf("rank %d -> %s socket %d pu %d\n",
			p.Rank, p.NodeName, p.Coords[lama.LevelSocket], p.PU())
	}
	// Output:
	// rank 0 -> node0 socket 0 pu 0
	// rank 1 -> node0 socket 1 pu 6
	// rank 2 -> node0 socket 0 pu 2
	// rank 3 -> node0 socket 1 pu 8
}

// ExampleBind shows binding widths (paper §III-B).
func ExampleBind() {
	spec, _ := lama.Preset("fig2")
	cluster := lama.Homogeneous(1, spec)
	mapper, _ := lama.NewMapper(cluster, lama.MustParseLayout("scbnh"), lama.Options{})
	m, _ := mapper.Map(2)
	plan, _ := lama.Bind(cluster, m, lama.BindSpecific, lama.LevelSocket)
	fmt.Printf("socket binding width: %d PUs\n", plan.Bindings[0].Width)
	// Output:
	// socket binding width: 6 PUs
}

// ExampleParseArgs shows the mpirun-style CLI levels (paper §V).
func ExampleParseArgs() {
	req, _ := lama.ParseArgs([]string{"-np", "8", "--map-by", "socket"})
	fmt.Printf("level %d lowers to layout %s\n", req.Level, req.Layout)
	// Output:
	// level 2 lowers to layout scbnh
}

// ExampleSimulateSpawn shows the launch-protocol scalability (§III).
func ExampleSimulateSpawn() {
	lin, _ := lama.SimulateSpawn(1024, lama.LinearSpawn, 50)
	bin, _ := lama.SimulateSpawn(1024, lama.BinomialSpawn, 50)
	fmt.Printf("linear %d rounds, binomial %d rounds\n", lin.Rounds, bin.Rounds)
	// Output:
	// linear 1024 rounds, binomial 11 rounds
}
