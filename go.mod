module lama

go 1.22
