package lama_test

import (
	"context"
	"testing"

	"lama"
	"lama/internal/core"
	"lama/internal/exper"
	"lama/internal/obs"
	"lama/internal/permute"
)

// One benchmark per paper exhibit (DESIGN.md §4): each regenerates the
// corresponding table/figure through the experiment harness, so
// `go test -bench=E` both reproduces the exhibits and times them.

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := exper.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(exper.Options{Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1TableI(b *testing.B)             { benchExperiment(b, "E1") }
func BenchmarkE2Fig1Recursion(b *testing.B)      { benchExperiment(b, "E2") }
func BenchmarkE3Fig2Example(b *testing.B)        { benchExperiment(b, "E3") }
func BenchmarkE4Permutations(b *testing.B)       { benchExperiment(b, "E4") }
func BenchmarkE5GTC(b *testing.B)                { benchExperiment(b, "E5") }
func BenchmarkE6NAS(b *testing.B)                { benchExperiment(b, "E6") }
func BenchmarkE7Heterogeneous(b *testing.B)      { benchExperiment(b, "E7") }
func BenchmarkE8MappingScalability(b *testing.B) { benchExperiment(b, "E8") }
func BenchmarkE9Baselines(b *testing.B)          { benchExperiment(b, "E9") }
func BenchmarkE10Binding(b *testing.B)           { benchExperiment(b, "E10") }
func BenchmarkE11CLILevels(b *testing.B)         { benchExperiment(b, "E11") }
func BenchmarkE12TrafficAware(b *testing.B)      { benchExperiment(b, "E12") }
func BenchmarkE13AppIterations(b *testing.B)     { benchExperiment(b, "E13") }
func BenchmarkE14Collectives(b *testing.B)       { benchExperiment(b, "E14") }
func BenchmarkE15LaunchScalability(b *testing.B) { benchExperiment(b, "E15") }

// Micro-benchmarks of the core operations behind the exhibits.

func benchCluster(b *testing.B, nodes int) *lama.Cluster {
	b.Helper()
	spec, ok := lama.Preset("nehalem-ep")
	if !ok {
		b.Fatal("preset missing")
	}
	return lama.Homogeneous(nodes, spec)
}

func benchMapper(b *testing.B, nodes, np int, layout string) {
	b.Helper()
	c := benchCluster(b, nodes)
	mapper, err := lama.NewMapper(c, lama.MustParseLayout(layout), lama.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mapper.Map(np); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMap4Nodes64Ranks(b *testing.B)     { benchMapper(b, 4, 64, "scbnh") }
func BenchmarkMap64Nodes1024Ranks(b *testing.B)  { benchMapper(b, 64, 1024, "scbnh") }
func BenchmarkMap256Nodes4096Ranks(b *testing.B) { benchMapper(b, 256, 4096, "scbnh") }
func BenchmarkMapFullLayout(b *testing.B)        { benchMapper(b, 16, 256, "nbsNL3L2L1ch") }

// BenchmarkMapReuse measures the steady-state hot path: one Mapper reused
// across runs, so the pruned trees, usable-PU caches, and claim arrays are
// all warm (the deployment pattern of a mapping agent serving a cluster).
func BenchmarkMapReuse64Nodes1024Ranks(b *testing.B) {
	c := benchCluster(b, 64)
	mapper, err := lama.NewMapper(c, lama.MustParseLayout("scbnh"), lama.Options{})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := mapper.Map(1024); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mapper.Map(1024); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMapObsDisabled pins the zero-cost-when-disabled contract of the
// observability layer: with no Observer the steady-state Map path must stay
// at its allocation floor (3 allocs/op, the figure TestMapAllocationsSteadyState
// asserts), with no clock reads and no event construction.
func BenchmarkMapObsDisabled(b *testing.B) {
	c := benchCluster(b, 64)
	mapper, err := lama.NewMapper(c, lama.MustParseLayout("scbnh"), lama.Options{Obs: nil})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := mapper.Map(1024); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mapper.Map(1024); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMapObsEnabled is the companion: full instrumentation (discard
// sink, live registry, phase timer) on the same workload, so the overhead
// of observability is one `benchstat` away.
func BenchmarkMapObsEnabled(b *testing.B) {
	c := benchCluster(b, 64)
	o := &obs.Observer{Sink: obs.Discard, Metrics: obs.NewRegistry(), Phases: obs.NewPhaseTimer()}
	mapper, err := lama.NewMapper(c, lama.MustParseLayout("scbnh"), lama.Options{Obs: o})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := mapper.Map(1024); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mapper.Map(1024); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRemapSurvivors(b *testing.B) {
	c := benchCluster(b, 16)
	layout := lama.MustParseLayout("scbnh")
	mapper, err := lama.NewMapper(c, layout, lama.Options{})
	if err != nil {
		b.Fatal(err)
	}
	// 192 of 256 PUs claimed: the failed node's ranks have spare PUs to
	// migrate to on the survivors.
	m, err := mapper.Map(192)
	if err != nil {
		b.Fatal(err)
	}
	var failed []int
	for i := range m.Placements {
		if m.Placements[i].Node == 3 {
			failed = append(failed, m.Placements[i].Rank)
		}
	}
	c.FailNode(3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.RemapSurvivors(c, layout, lama.Options{}, m, failed); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSweepLayouts120(b *testing.B) {
	c := benchCluster(b, 8)
	letters := "nbsch"
	var layouts []lama.Layout
	permute.Each(len(letters), func(perm []int) bool {
		s := make([]byte, len(perm))
		for i, p := range perm {
			s[i] = letters[p]
		}
		layouts = append(layouts, lama.MustParseLayout(string(s)))
		return true
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lama.SweepLayouts(context.Background(), c, layouts, 64, lama.Options{}, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMapReference(b *testing.B) {
	c := benchCluster(b, 16)
	mapper, err := lama.NewMapper(c, lama.MustParseLayout("scbnh"), lama.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := mapper.MapReference(256); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseLayout(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := lama.ParseLayout("nbsNL3L2L1ch"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBindSpecificCore(b *testing.B) {
	c := benchCluster(b, 8)
	mapper, _ := lama.NewMapper(c, lama.MustParseLayout("scbnh"), lama.Options{})
	m, err := mapper.Map(128)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lama.Bind(c, m, lama.BindSpecific, lama.LevelCore); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvaluateStencil(b *testing.B) {
	c := benchCluster(b, 8)
	mapper, _ := lama.NewMapper(c, lama.MustParseLayout("csbnh"), lama.Options{})
	m, err := mapper.Map(128)
	if err != nil {
		b.Fatal(err)
	}
	px, py := lama.Grid2D(128)
	tm := lama.Stencil2D(px, py, 1<<20, true)
	model := lama.NewModel(lama.NewFatTreeNetwork(4))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := model.Evaluate(c, m, tm); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLaunch128Ranks(b *testing.B) {
	c := benchCluster(b, 8)
	mapper, _ := lama.NewMapper(c, lama.MustParseLayout("scbnh"), lama.Options{})
	m, err := mapper.Map(128)
	if err != nil {
		b.Fatal(err)
	}
	plan, err := lama.Bind(c, m, lama.BindSpecific, lama.LevelPU)
	if err != nil {
		b.Fatal(err)
	}
	rt := lama.NewRuntime(c)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		job, err := rt.Launch(m, plan, 10)
		if err != nil {
			b.Fatal(err)
		}
		if err := job.CheckEnforcement(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTopologyBuild(b *testing.B) {
	spec, _ := lama.Preset("power7")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		lama.NewTopology(spec)
	}
}

func BenchmarkTreeMatch64(b *testing.B) {
	c := benchCluster(b, 8)
	tm := lama.GTC(64, 1<<20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := lama.TreeMatchMap(c, tm, 64); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCollectiveBroadcast(b *testing.B) {
	c := benchCluster(b, 8)
	mapper, _ := lama.NewMapper(c, lama.MustParseLayout("csbnh"), lama.Options{})
	m, err := mapper.Map(128)
	if err != nil {
		b.Fatal(err)
	}
	model := lama.NewModel(lama.NewFlatNetwork())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lama.RunCollective(lama.Broadcast, c, m, model, 1<<20); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAppSimStencil(b *testing.B) {
	c := benchCluster(b, 8)
	mapper, _ := lama.NewMapper(c, lama.MustParseLayout("csbnh"), lama.Options{})
	m, err := mapper.Map(128)
	if err != nil {
		b.Fatal(err)
	}
	px, py := lama.Grid2D(128)
	tm := lama.Stencil2D(px, py, 1<<20, true)
	model := lama.NewModel(lama.NewFatTreeNetwork(4))
	cfg := lama.AppConfig{ComputeUs: 100, Iterations: 100}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lama.SimulateApp(c, m, model, tm, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMapTraced(b *testing.B) {
	c := benchCluster(b, 8)
	mapper, _ := lama.NewMapper(c, lama.MustParseLayout("scbnh"), lama.Options{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := mapper.MapTraced(128, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRankfileRoundTrip(b *testing.B) {
	c := benchCluster(b, 4)
	mapper, _ := lama.NewMapper(c, lama.MustParseLayout("scbnh"), lama.Options{})
	m, err := mapper.Map(64)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := lama.RankfileFromMap(m)
		if err != nil {
			b.Fatal(err)
		}
		f2, err := lama.ParseRankfile(lama.FormatRankfile(f))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := lama.ApplyRankfile(f2, c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE16HierCollectives(b *testing.B) { benchExperiment(b, "E16") }

func BenchmarkE17Scheduling(b *testing.B) { benchExperiment(b, "E17") }

func BenchmarkE18CostModelAblation(b *testing.B) { benchExperiment(b, "E18") }

func BenchmarkE19ReorderVsRemap(b *testing.B) { benchExperiment(b, "E19") }

func BenchmarkE20PlanningCost(b *testing.B) { benchExperiment(b, "E20") }
