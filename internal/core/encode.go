package core

import (
	"encoding/json"
	"fmt"
	"sort"

	"lama/internal/cluster"
	"lama/internal/hw"
)

// placementDTO is the JSON wire form of one placement. Hardware object
// references are encoded as (level, logical) pairs resolved against a
// cluster on decode.
type placementDTO struct {
	Rank           int            `json:"rank"`
	Node           int            `json:"node"`
	NodeName       string         `json:"nodeName"`
	Coords         map[string]int `json:"coords,omitempty"`
	LeafLevel      string         `json:"leafLevel,omitempty"`
	LeafLogical    int            `json:"leafLogical,omitempty"`
	PUs            []int          `json:"pus"`
	Oversubscribed bool           `json:"oversubscribed,omitempty"`
}

type mapDTO struct {
	Layout     string         `json:"layout,omitempty"`
	Sweeps     int            `json:"sweeps"`
	Placements []placementDTO `json:"placements"`
}

// MarshalJSON encodes the map so it can be stored or shipped between the
// mapping and launching agents (paper §III separates those roles).
func (m *Map) MarshalJSON() ([]byte, error) {
	dto := mapDTO{Sweeps: m.Sweeps}
	if m.Layout.Len() > 0 {
		dto.Layout = m.Layout.String()
	}
	for i := range m.Placements {
		p := &m.Placements[i]
		pd := placementDTO{
			Rank: p.Rank, Node: p.Node, NodeName: p.NodeName,
			PUs: p.PUs, Oversubscribed: p.Oversubscribed,
		}
		if p.Coords.Len() > 0 {
			pd.Coords = map[string]int{}
			for _, l := range hw.Levels {
				if v, ok := p.Coords.Get(l); ok {
					pd.Coords[l.Abbrev()] = v
				}
			}
		}
		if p.Leaf != nil {
			pd.LeafLevel = p.Leaf.Level.String()
			pd.LeafLogical = p.Leaf.Logical
		}
		dto.Placements = append(dto.Placements, pd)
	}
	return json.Marshal(dto)
}

// DecodeMap reconstructs a map from its JSON form against the cluster it
// was planned for, re-resolving leaf object references. The decoded map is
// validated.
func DecodeMap(data []byte, c *cluster.Cluster) (*Map, error) {
	var dto mapDTO
	if err := json.Unmarshal(data, &dto); err != nil {
		return nil, fmt.Errorf("core: decode map: %v", err)
	}
	m := &Map{Sweeps: dto.Sweeps}
	if dto.Layout != "" {
		layout, err := ParseLayout(dto.Layout)
		if err != nil {
			return nil, err
		}
		m.Layout = layout
	}
	for _, pd := range dto.Placements {
		node := c.Node(pd.Node)
		if node == nil {
			return nil, fmt.Errorf("core: decode map: rank %d on unknown node %d", pd.Rank, pd.Node)
		}
		p := Placement{
			Rank: pd.Rank, Node: pd.Node, NodeName: pd.NodeName,
			Coords: NoCoords(), PUs: pd.PUs, Oversubscribed: pd.Oversubscribed,
		}
		// Sorted keys, so which unknown abbreviation gets reported does
		// not depend on map iteration order.
		abbrevs := make([]string, 0, len(pd.Coords))
		for ab := range pd.Coords {
			abbrevs = append(abbrevs, ab)
		}
		sort.Strings(abbrevs)
		for _, ab := range abbrevs {
			l, ok := hw.LevelByAbbrev(ab)
			if !ok {
				return nil, fmt.Errorf("core: decode map: unknown level %q", ab)
			}
			p.Coords.Set(l, pd.Coords[ab])
		}
		if pd.LeafLevel != "" {
			l, ok := hw.LevelByName(pd.LeafLevel)
			if !ok {
				return nil, fmt.Errorf("core: decode map: unknown leaf level %q", pd.LeafLevel)
			}
			p.Leaf = node.Topo.ObjectAt(l, pd.LeafLogical)
			if p.Leaf == nil {
				return nil, fmt.Errorf("core: decode map: rank %d leaf %s#%d missing on %s",
					pd.Rank, l, pd.LeafLogical, node.Name)
			}
		}
		m.Placements = append(m.Placements, p)
	}
	if err := m.Validate(c); err != nil {
		return nil, fmt.Errorf("core: decoded map invalid: %v", err)
	}
	return m, nil
}
