package core

import (
	"fmt"

	"lama/internal/hw"
)

// This file is the reference implementation of the mapping semantics: a
// deliberately naive executor that rebuilds its pruned trees from scratch
// on every call, keeps its claim counters in maps keyed by hardware object
// pointers, and re-walks the topology for every usable-PU query. It shares
// NOTHING with the optimized engine in mapper.go — no dense trees, no
// shape/view caches, no generation counters — so the two can only agree by
// actually computing the same mapping. MapReference also iterates with an
// explicit odometer instead of the paper's recursive loop nest, giving an
// independent traversal of the same resource space. Experiment E2 and the
// differential property tests require Map and MapReference to produce
// identical plans for any cluster, layout, options, and rank count,
// including after availability mutations (FailNode/FailPUs).

// refRun holds the state of one reference mapping execution.
type refRun struct {
	m   *Mapper
	np  int
	pes int

	iterLevels []hw.Level // innermost first (layout order)
	widths     []int      // iteration width per iterLevels index
	orders     [][]int    // visiting permutation per iterLevels index
	machineIdx int        // index of the node level within iterLevels
	canonPos   []int      // iterLevels index -> canonical intra position (-1 for node)
	mtree      *MaximalTree

	coords      []int // current iteration coordinate per iterLevels index
	canonCoords []int // scratch: canonical intra-node coordinates

	claims         map[*hw.Object]int // rank claims per leaf object
	capCounts      map[*hw.Object]int // rank counts per capped ancestor object
	nodeCount      []int              // ranks per node (slot and machine caps)
	skippedOversub bool               // a leaf was skipped due to the oversubscribe rule

	placements []Placement
	sweeps     int
}

func (m *Mapper) newRefRun(np int) (*refRun, error) {
	if np <= 0 {
		return nil, fmt.Errorf("core: non-positive process count %d", np)
	}
	intra := m.Layout.IntraNode()
	topos := make([]*hw.Topology, m.Cluster.NumNodes())
	for i, n := range m.Cluster.Nodes {
		topos[i] = n.Topo
	}
	r := &refRun{
		m:          m,
		np:         np,
		pes:        m.Opts.pes(),
		iterLevels: m.Layout.Levels(),
		mtree:      NewMaximalTree(topos, intra),
		claims:     map[*hw.Object]int{},
		capCounts:  map[*hw.Object]int{},
		nodeCount:  make([]int, m.Cluster.NumNodes()),
		machineIdx: -1,
	}
	r.coords = make([]int, len(r.iterLevels))
	r.canonCoords = make([]int, len(intra))
	r.widths = make([]int, len(r.iterLevels))
	r.canonPos = make([]int, len(r.iterLevels))
	r.orders = make([][]int, len(r.iterLevels))
	for i, l := range r.iterLevels {
		if l == hw.LevelMachine {
			r.machineIdx = i
			r.canonPos[i] = -1
			r.widths[i] = m.Cluster.NumNodes()
		} else {
			for p, il := range intra {
				if il == l {
					r.canonPos[i] = p
				}
			}
			r.widths[i] = r.mtree.Width(r.canonPos[i])
		}
		perm, err := validOrder(m.Opts.orderFor(l), r.widths[i])
		if err != nil {
			return nil, fmt.Errorf("%v (level %s)", err, l)
		}
		r.orders[i] = perm
	}
	for _, w := range r.widths {
		if w == 0 {
			return nil, stallError(m.Layout, np, 0, false)
		}
	}
	return r, nil
}

// tryMap is the reference placement attempt at the current coordinates:
// identical skip rules to the optimized engine (nonexistent → unavailable
// → slot cap → resource caps → oversubscribe), expressed over hardware
// object pointers and fresh topology walks.
func (r *refRun) tryMap() {
	node := 0
	if r.machineIdx >= 0 {
		node = r.coords[r.machineIdx]
	}
	for i, c := range r.coords {
		if p := r.canonPos[i]; p >= 0 {
			r.canonCoords[p] = c
		}
	}
	leaf := r.mtree.Lookup(node, r.canonCoords)
	if leaf == nil {
		return // resource does not exist on this node
	}
	ups := leaf.UsablePUs()
	if len(ups) == 0 {
		return // resource unavailable (off-lined / disallowed)
	}
	// Scheduler slot caps (Open MPI hostfile semantics).
	if r.m.Opts.RespectSlots {
		limit := -1
		if !r.m.Opts.Oversubscribe {
			limit = r.m.Cluster.Node(node).EffectiveSlots()
		} else if hard := r.m.Cluster.Node(node).MaxSlots; hard > 0 {
			limit = hard
		}
		if limit >= 0 && r.nodeCount[node] >= limit {
			r.skippedOversub = true
			return
		}
	}
	// ALPS-style per-resource rank caps, checked before the
	// oversubscription rule: a capped resource is unmappable regardless.
	var capped []*hw.Object
	for _, l := range r.iterLevels {
		limit := r.m.Opts.capFor(l)
		if limit <= 0 {
			continue
		}
		if l == hw.LevelMachine {
			if r.nodeCount[node] >= limit {
				return
			}
			continue
		}
		obj := leaf.Ancestor(l)
		if obj == nil {
			continue
		}
		if r.capCounts[obj] >= limit {
			return
		}
		capped = append(capped, obj)
	}
	prior := r.claims[leaf]
	base := prior * r.pes
	oversub := base+r.pes > len(ups)
	if oversub && !r.m.Opts.Oversubscribe {
		r.skippedOversub = true
		return
	}

	pus := make([]int, r.pes)
	for j := 0; j < r.pes; j++ {
		pus[j] = ups[(base+j)%len(ups)].OS
	}
	coords := NoCoords()
	for i, l := range r.iterLevels {
		coords[l] = r.coords[i]
	}
	r.placements = append(r.placements, Placement{
		Rank:           len(r.placements),
		Node:           node,
		NodeName:       r.m.Cluster.Node(node).Name,
		Coords:         coords,
		Leaf:           leaf,
		PUs:            pus,
		Oversubscribed: oversub,
	})
	r.claims[leaf] = prior + 1
	r.nodeCount[node]++
	for _, obj := range capped {
		r.capCounts[obj]++
	}
}

// MapReference executes the same mapping semantics as Map but through the
// naive reference machinery above, with an explicit iterative odometer in
// place of the paper's recursive loop nest. It exists to cross-validate
// the optimized engine (experiment E2): for any cluster, layout, options,
// and rank count, Map and MapReference must produce identical plans.
func (m *Mapper) MapReference(np int) (*Map, error) {
	r, err := m.newRefRun(np)
	if err != nil {
		return nil, err
	}
	k := len(r.iterLevels)
	for len(r.placements) < np {
		before := len(r.placements)
		// One full odometer sweep: positions pos[i] index into the
		// visiting permutation of level i; level 0 varies fastest.
		pos := make([]int, k)
		for {
			for i := 0; i < k; i++ {
				r.coords[i] = r.orders[i][pos[i]]
			}
			r.tryMap()
			if len(r.placements) == np {
				break
			}
			// Increment with carry, innermost first.
			i := 0
			for ; i < k; i++ {
				pos[i]++
				if pos[i] < r.widths[i] {
					break
				}
				pos[i] = 0
			}
			if i == k {
				break // full sweep complete
			}
		}
		r.sweeps++
		if len(r.placements) == before {
			return nil, stallError(m.Layout, np, len(r.placements), r.skippedOversub)
		}
	}
	placedRanks.Add(int64(len(r.placements)))
	return &Map{Layout: m.Layout, Placements: r.placements, Sweeps: r.sweeps}, nil
}
