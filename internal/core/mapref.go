package core

// MapReference executes the same mapping semantics as Map but with an
// explicit iterative odometer in place of the paper's recursive loop nest.
// It exists to cross-validate the Figure 1 recursion (experiment E2): for
// any cluster, layout, options, and rank count, Map and MapReference must
// produce identical plans.
func (m *Mapper) MapReference(np int) (*Map, error) {
	r, err := m.newRun(np)
	if err != nil {
		return nil, err
	}
	k := len(r.iterLevels)
	for len(r.placements) < np {
		before := len(r.placements)
		// One full odometer sweep: positions pos[i] index into the
		// visiting permutation of level i; level 0 varies fastest.
		pos := make([]int, k)
		for {
			for i := 0; i < k; i++ {
				r.coords[i] = r.orders[i][pos[i]]
			}
			r.tryMap()
			if len(r.placements) == np {
				break
			}
			// Increment with carry, innermost first.
			i := 0
			for ; i < k; i++ {
				pos[i]++
				if pos[i] < r.widths[i] {
					break
				}
				pos[i] = 0
			}
			if i == k {
				break // full sweep complete
			}
		}
		r.sweeps++
		if len(r.placements) == before {
			return nil, r.stallError()
		}
	}
	return r.finish(), nil
}
