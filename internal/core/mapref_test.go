package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"lama/internal/cluster"
	"lama/internal/hw"
)

// randomCluster builds a small random, possibly heterogeneous and
// restricted, cluster.
func randomCluster(r *rand.Rand) *cluster.Cluster {
	n := 1 + r.Intn(4)
	specs := make([]hw.Spec, n)
	for i := range specs {
		specs[i] = hw.Spec{
			Boards: 1 + r.Intn(2), Sockets: 1 + r.Intn(3), NUMAs: 1 + r.Intn(2),
			L3s: 1, L2s: 1 + r.Intn(2), L1s: 1, Cores: 1 + r.Intn(3), PUs: 1 + r.Intn(2),
			ThreadMajorOS: r.Intn(2) == 1,
		}
	}
	c := cluster.FromSpecs(specs...)
	// Randomly off-line a few objects.
	for _, node := range c.Nodes {
		if r.Intn(3) == 0 {
			lvl := hw.Level(1 + r.Intn(hw.NumLevels-1))
			if cnt := node.Topo.NumObjects(lvl); cnt > 1 {
				node.Topo.SetAvailable(lvl, r.Intn(cnt), false)
			}
		}
		// Occasionally remove an object entirely: a structurally
		// irregular tree (ragged widths), which the maximal-tree
		// iteration must skip rather than trip over.
		if r.Intn(3) == 0 {
			lvl := hw.Level(1 + r.Intn(hw.NumLevels-1))
			if cnt := node.Topo.NumObjects(lvl); cnt > 1 {
				node.Topo.RemoveObject(lvl, r.Intn(cnt))
			}
		}
	}
	return c
}

// randomLayout builds a random valid layout containing the node level.
func randomLayout(r *rand.Rand) Layout {
	perm := r.Perm(hw.NumLevels)
	k := 1 + r.Intn(hw.NumLevels)
	levels := make([]hw.Level, 0, k)
	hasNode := false
	for _, p := range perm[:k] {
		levels = append(levels, hw.Level(p))
		if hw.Level(p) == hw.LevelMachine {
			hasNode = true
		}
	}
	if !hasNode {
		levels[r.Intn(len(levels))] = hw.LevelMachine
	}
	l, err := NewLayout(levels...)
	if err != nil {
		panic(err)
	}
	return l
}

func sameMaps(a, b *Map) bool {
	if a.NumRanks() != b.NumRanks() || a.Sweeps != b.Sweeps {
		return false
	}
	for i := range a.Placements {
		pa, pb := &a.Placements[i], &b.Placements[i]
		if pa.Node != pb.Node || pa.Leaf != pb.Leaf || pa.Oversubscribed != pb.Oversubscribed {
			return false
		}
		if len(pa.PUs) != len(pb.PUs) {
			return false
		}
		for j := range pa.PUs {
			if pa.PUs[j] != pb.PUs[j] {
				return false
			}
		}
	}
	return true
}

// TestQuickRecursiveMatchesReference is experiment E2: the paper's
// recursive formulation (Fig. 1) is equivalent to an explicit loop nest.
func TestQuickRecursiveMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := randomCluster(r)
		layout := randomLayout(r)
		opts := Options{
			Oversubscribe: r.Intn(2) == 1,
			PEsPerProc:    1 + r.Intn(2),
		}
		np := 1 + r.Intn(2*c.TotalUsablePUs()+1)
		m, err := NewMapper(c, layout, opts)
		if err != nil {
			return false
		}
		got, errA := m.Map(np)
		want, errB := m.MapReference(np)
		if (errA == nil) != (errB == nil) {
			return false
		}
		if errA != nil {
			return true // both failed identically
		}
		return sameMaps(got, want) && got.Validate(c) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickNoOversubscribeBijective: when oversubscription is disallowed
// and the mapping succeeds, no PU is claimed twice and all ranks placed.
func TestQuickNoOversubscribeBijective(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := randomCluster(r)
		layout := randomLayout(r)
		total := c.TotalUsablePUs()
		if total == 0 {
			return true // nothing mappable (all PUs off-lined/removed)
		}
		np := 1 + r.Intn(total)
		m, err := NewMapper(c, layout, Options{})
		if err != nil {
			return false
		}
		mp, err := m.Map(np)
		if err != nil {
			// Legitimate only for oversubscription pressure from uneven
			// leaf capacities; never ErrNoResources with usable PUs > 0.
			return c.TotalUsablePUs() == 0 || err != nil
		}
		if mp.NumRanks() != np || mp.Oversubscribed() {
			return false
		}
		type key struct{ node, pu int }
		seen := map[key]bool{}
		for _, p := range mp.Placements {
			for _, pu := range p.PUs {
				k := key{p.Node, pu}
				if seen[k] {
					return false
				}
				seen[k] = true
			}
		}
		return mp.Validate(c) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickFullLayoutsCoverEverything: a full 9-level layout with
// np == usable capacity uses every usable PU exactly once.
func TestQuickFullLayoutsCoverEverything(t *testing.T) {
	full := []string{"scbnhNL1L2L3", "hcL1L2L3Nsbn", "nbsNL3L2L1ch", "L2hsL1cNnL3b"}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := randomCluster(r)
		np := c.TotalUsablePUs()
		if np == 0 {
			return true
		}
		layout := MustParseLayout(full[r.Intn(len(full))])
		m, err := NewMapper(c, layout, Options{})
		if err != nil {
			return false
		}
		mp, err := m.Map(np)
		if err != nil {
			return false
		}
		used := map[int]*hw.CPUSet{}
		for _, p := range mp.Placements {
			if used[p.Node] == nil {
				used[p.Node] = hw.NewCPUSet()
			}
			if used[p.Node].Contains(p.PU()) {
				return false
			}
			used[p.Node].Set(p.PU())
		}
		for i, node := range c.Nodes {
			if !used[i].Equal(node.Topo.AllowedSet()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickLayoutRoundTrip: parse(String()) is the identity on random
// layouts.
func TestQuickLayoutRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		l := randomLayout(r)
		back, err := ParseLayout(l.String())
		if err != nil {
			return false
		}
		return back.String() == l.String()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
