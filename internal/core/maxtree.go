package core

import (
	"lama/internal/hw"
)

// prunedNode is one object of a pruned topology view: an object at a level
// the layout specifies, whose children are the nearest descendants at the
// next-deeper specified level. Pruning a level re-parents (and renumbers)
// its children onto their grandparent, exactly as §IV-B describes.
type prunedNode struct {
	obj      *hw.Object
	children []*prunedNode
}

// PrunedTree is a single node's topology restricted to the layout's
// intra-node levels (canonical containment order). The root represents the
// machine itself and carries no level of its own.
type PrunedTree struct {
	levels []hw.Level // canonical order, e.g. [socket core]
	root   *prunedNode
	widths []int // cached by Widths after first computation
}

// NewPrunedTree builds the pruned view of a node topology for the given
// intra-node levels (must be sorted in canonical containment order, as
// produced by Layout.IntraNode).
func NewPrunedTree(t *hw.Topology, levels []hw.Level) *PrunedTree {
	pt := &PrunedTree{levels: levels, root: &prunedNode{obj: t.Root}}
	var build func(pn *prunedNode, depth int)
	build = func(pn *prunedNode, depth int) {
		if depth >= len(levels) {
			return
		}
		for _, obj := range descendantsAt(pn.obj, levels[depth]) {
			child := &prunedNode{obj: obj}
			pn.children = append(pn.children, child)
			build(child, depth+1)
		}
	}
	build(pt.root, 0)
	return pt
}

// descendantsAt returns, in tree order, the objects of the given level in
// o's subtree (o itself if it is at that level). Intervening pruned levels
// are flattened, which implements the "children become those of the
// parent, renumbered" rule.
func descendantsAt(o *hw.Object, level hw.Level) []*hw.Object {
	return appendDescendantsAt(nil, o, level)
}

// appendDescendantsAt is descendantsAt into a caller-supplied accumulator:
// one slice grows across the whole recursion instead of every interior
// call concatenating its children's results (quadratic allocation on deep
// trees).
func appendDescendantsAt(dst []*hw.Object, o *hw.Object, level hw.Level) []*hw.Object {
	if o.Level == level {
		return append(dst, o)
	}
	if o.Level > level {
		return dst
	}
	for _, c := range o.Children {
		dst = appendDescendantsAt(dst, c, level)
	}
	return dst
}

// Levels returns the pruned tree's level list (canonical order).
func (pt *PrunedTree) Levels() []hw.Level { return pt.levels }

// Lookup resolves per-depth child indices (canonical order, one per pruned
// level) to the underlying hardware object. It returns nil when the
// coordinate does not exist on this node — the "resource exists" half of
// the paper's availability check.
func (pt *PrunedTree) Lookup(coords []int) *hw.Object {
	pn := pt.root
	for _, idx := range coords {
		if idx < 0 || idx >= len(pn.children) {
			return nil
		}
		pn = pn.children[idx]
	}
	return pn.obj
}

// Widths returns, per pruned depth, the maximum child count of any pruned
// node at that depth on this node. The result is computed once and cached
// (the tree is immutable after construction); callers must not modify it.
func (pt *PrunedTree) Widths() []int {
	if pt.widths != nil {
		return pt.widths
	}
	w := make([]int, len(pt.levels))
	var walk func(pn *prunedNode, depth int)
	walk = func(pn *prunedNode, depth int) {
		if depth >= len(pt.levels) {
			return
		}
		if len(pn.children) > w[depth] {
			w[depth] = len(pn.children)
		}
		for _, c := range pn.children {
			walk(c, depth+1)
		}
	}
	walk(pt.root, 0)
	pt.widths = w
	return w
}

// MaximalTree is the union of the pruned per-node trees of a cluster
// (paper §IV-B): a regular tree described only by per-depth maximum widths,
// used purely to drive iteration. Coordinates that do not exist on a given
// node are skipped at lookup time.
type MaximalTree struct {
	levels []hw.Level    // intra-node levels, canonical order
	widths []int         // per-depth max width across all nodes
	trees  []*PrunedTree // per cluster node
}

// NewMaximalTree builds the maximal tree for a set of per-node topologies.
func NewMaximalTree(topos []*hw.Topology, levels []hw.Level) *MaximalTree {
	mt := &MaximalTree{levels: levels, widths: make([]int, len(levels))}
	for _, t := range topos {
		pt := NewPrunedTree(t, levels)
		mt.trees = append(mt.trees, pt)
		for d, w := range pt.Widths() {
			if w > mt.widths[d] {
				mt.widths[d] = w
			}
		}
	}
	return mt
}

// Width returns the iteration width at pruned depth d.
func (mt *MaximalTree) Width(d int) int { return mt.widths[d] }

// Levels returns the intra-node levels in canonical order.
func (mt *MaximalTree) Levels() []hw.Level { return mt.levels }

// Lookup resolves coordinates on the node-th tree; nil if absent.
func (mt *MaximalTree) Lookup(node int, coords []int) *hw.Object {
	if node < 0 || node >= len(mt.trees) {
		return nil
	}
	return mt.trees[node].Lookup(coords)
}
