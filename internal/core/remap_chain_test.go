package core

import (
	"reflect"
	"testing"

	"lama/internal/cluster"
	"lama/internal/hw"
)

// failAndRemap kills one node and remaps the ranks stranded on it,
// returning the new map and the set of ranks that had to move.
func failAndRemap(t *testing.T, c *cluster.Cluster, m *Map, node int) (*Map, []int) {
	t.Helper()
	var failed []int
	for i := range m.Placements {
		if m.Placements[i].Node == node {
			failed = append(failed, i)
		}
	}
	c.FailNode(node)
	nm, _, err := RemapSurvivors(c, m.Layout, Options{}, m, failed)
	if err != nil {
		t.Fatalf("remap after failing node %d: %v", node, err)
	}
	return nm, failed
}

// checkChainInvariants asserts the remap-of-remap contract after each link
// in a failure chain: survivors byte-identical to the previous map, no rank
// left on any dead node, no two ranks' PU claims colliding, and the map
// internally consistent.
func checkChainInvariants(t *testing.T, c *cluster.Cluster, prev, next *Map, moved []int, dead map[int]bool) {
	t.Helper()
	movedSet := map[int]bool{}
	for _, r := range moved {
		movedSet[r] = true
	}
	for r := range next.Placements {
		got := next.Placements[r]
		if !movedSet[r] {
			if !samePlacement(got, prev.Placements[r]) {
				t.Fatalf("survivor %d moved: %+v -> %+v", r, prev.Placements[r], got)
			}
		}
		if dead[got.Node] {
			t.Fatalf("rank %d sits on dead node %d", r, got.Node)
		}
	}
	used := map[[2]int]int{}
	for r := range next.Placements {
		p := next.Placements[r]
		for _, pu := range p.PUs {
			key := [2]int{p.Node, pu}
			if prevRank, ok := used[key]; ok && !next.Oversubscribed() {
				t.Fatalf("ranks %d and %d both claim node %d PU %d", prevRank, r, p.Node, pu)
			}
			used[key] = r
		}
	}
	if err := next.Validate(c); err != nil {
		t.Fatal(err)
	}
}

// TestRemapSurvivorsChainedFailures drives sequential whole-node failures
// — each remap feeding the next (remap-of-remap) — on a homogeneous
// cluster and asserts the survivor-stability contract holds at every link,
// not just the first.
func TestRemapSurvivorsChainedFailures(t *testing.T) {
	// 5 fig2 nodes, 24 ranks: after three failures the 24 ranks still fit
	// on the 2 remaining nodes (24 PUs) without oversubscription.
	c, m := remapSetup(t, 5, 24)
	dead := map[int]bool{}
	for _, node := range []int{1, 3, 0} {
		next, moved := failAndRemap(t, c, m, node)
		dead[node] = true
		checkChainInvariants(t, c, m, next, moved, dead)
		m = next
	}
}

// TestRemapSurvivorsChainedHeterogeneous repeats the chained-failure drill
// on a heterogeneous cluster (different topologies per node), where leaf
// translation and per-node capacity differ between source and destination
// of every migration.
func TestRemapSurvivorsChainedHeterogeneous(t *testing.T) {
	fig2, _ := hw.Preset("fig2")          // 12 PUs
	nehalem, _ := hw.Preset("nehalem-ep") // 16 PUs
	dual, _ := hw.Preset("dual-board")    // 8 PUs
	wide, _ := hw.Preset("fig2-wide")     // 12 PUs
	c := cluster.FromSpecs(fig2, nehalem, dual, wide, nehalem)
	mapper, err := NewMapper(c, MustParseLayout("csbnh"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := mapper.Map(20)
	if err != nil {
		t.Fatal(err)
	}
	dead := map[int]bool{}
	for _, node := range []int{0, 2, 4} {
		next, moved := failAndRemap(t, c, m, node)
		dead[node] = true
		checkChainInvariants(t, c, m, next, moved, dead)
		m = next
	}
}

// TestRemapThenExpandThenRemap interleaves the elastic and fault paths:
// fail → remap → grow → fail again → remap. The final map must keep every
// rank that was stable through the second failure byte-identical to its
// post-grow placement.
func TestRemapThenExpandThenRemap(t *testing.T) {
	c, m := remapSetup(t, 4, 16)
	m, moved := failAndRemap(t, c, m, 0)
	dead := map[int]bool{0: true}
	_ = moved

	grown, _, err := ExpandMap(c, m.Layout, Options{}, m, 4)
	if err != nil {
		t.Fatal(err)
	}
	for r := range m.Placements {
		if !samePlacement(grown.Placements[r], m.Placements[r]) {
			t.Fatalf("grow moved rank %d", r)
		}
	}

	next, moved2 := failAndRemap(t, c, grown, 2)
	dead[2] = true
	checkChainInvariants(t, c, grown, next, moved2, dead)
	if next.NumRanks() != 20 {
		t.Fatalf("ranks = %d, want 20", next.NumRanks())
	}
	if !reflect.DeepEqual(next.Layout, m.Layout) {
		t.Fatal("layout changed across chain")
	}
}
