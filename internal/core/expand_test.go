package core

import (
	"reflect"
	"testing"

	"lama/internal/cluster"
	"lama/internal/hw"
)

// samePlacement compares the fields that define where a rank runs.
func samePlacement(a, b Placement) bool {
	return a.Node == b.Node && a.Leaf == b.Leaf &&
		reflect.DeepEqual(a.PUs, b.PUs) && reflect.DeepEqual(a.Coords, b.Coords)
}

// TestExpandMapMatchesReference is the grow differential test: growing an
// np-rank map by k ranks must (a) leave the first np placements
// byte-identical and (b) produce exactly the map the naive reference
// oracle computes for np+k ranks in one shot — the incremental run over
// withheld resources and the odometer over the full space can only agree
// by placing the new ranks identically.
func TestExpandMapMatchesReference(t *testing.T) {
	for _, layout := range []string{"csbnh", "ncsbh", "scbnh", "hcsbn"} {
		for _, tc := range []struct{ np, add int }{{8, 6}, {1, 1}, {12, 12}, {5, 13}} {
			c := fig2Cluster(t, 3) // 36 PUs; all cases fit without oversubscription
			mapper, err := NewMapper(c, MustParseLayout(layout), Options{})
			if err != nil {
				t.Fatal(err)
			}
			old, err := mapper.Map(tc.np)
			if err != nil {
				t.Fatal(err)
			}
			before := append([]Placement(nil), old.Placements...)

			grown, rep, err := ExpandMap(c, mapper.Layout, Options{}, old, tc.add)
			if err != nil {
				t.Fatalf("%s np=%d add=%d: %v", layout, tc.np, tc.add, err)
			}
			oracle, err := mapper.MapReference(tc.np + tc.add)
			if err != nil {
				t.Fatal(err)
			}
			if grown.NumRanks() != tc.np+tc.add {
				t.Fatalf("%s: grown to %d ranks, want %d", layout, grown.NumRanks(), tc.np+tc.add)
			}
			for r := 0; r < tc.np; r++ {
				if !samePlacement(grown.Placements[r], before[r]) {
					t.Fatalf("%s np=%d add=%d: existing rank %d moved:\n%+v ->\n%+v",
						layout, tc.np, tc.add, r, before[r], grown.Placements[r])
				}
			}
			for r := 0; r < grown.NumRanks(); r++ {
				if !samePlacement(grown.Placements[r], oracle.Placements[r]) {
					t.Fatalf("%s np=%d add=%d: rank %d diverges from oracle:\n got %+v\nwant %+v",
						layout, tc.np, tc.add, r, grown.Placements[r], oracle.Placements[r])
				}
			}
			// The input map must not have been mutated.
			if !reflect.DeepEqual(old.Placements, before) {
				t.Fatalf("%s: ExpandMap mutated its input", layout)
			}
			if len(rep.Added) != tc.add || rep.Added[0] != tc.np {
				t.Fatalf("report.Added = %v", rep.Added)
			}
			if err := grown.Validate(c); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestExpandMapPostFailure grows a job that already lost a node and was
// remapped: the grow must leave every (remapped) placement untouched,
// avoid the dead node, and not collide with any existing claim — the
// acceptance scenario for elasticity composing with fault recovery.
func TestExpandMapPostFailure(t *testing.T) {
	c, m := remapSetup(t, 3, 12)
	var failed []int
	for i := range m.Placements {
		if m.Placements[i].Node == 0 {
			failed = append(failed, i)
		}
	}
	c.FailNode(0)
	rm, _, err := RemapSurvivors(c, m.Layout, Options{}, m, failed)
	if err != nil {
		t.Fatal(err)
	}
	before := append([]Placement(nil), rm.Placements...)

	grown, rep, err := ExpandMap(c, m.Layout, Options{}, rm, 6)
	if err != nil {
		t.Fatal(err)
	}
	for r := range before {
		if !samePlacement(grown.Placements[r], before[r]) {
			t.Fatalf("post-failure grow moved rank %d: %+v -> %+v", r, before[r], grown.Placements[r])
		}
	}
	claimed := map[[2]int]bool{}
	for _, p := range before {
		for _, pu := range p.PUs {
			claimed[[2]int{p.Node, pu}] = true
		}
	}
	for r := len(before); r < grown.NumRanks(); r++ {
		p := grown.Placements[r]
		if p.Node == 0 {
			t.Fatalf("new rank %d placed on dead node 0", r)
		}
		for _, pu := range p.PUs {
			if claimed[[2]int{p.Node, pu}] {
				t.Fatalf("new rank %d collides on node %d PU %d", r, p.Node, pu)
			}
		}
	}
	if len(rep.Nodes) == 0 || rep.Nodes[0] == 0 {
		t.Fatalf("report.Nodes = %v", rep.Nodes)
	}
	if err := grown.Validate(c); err != nil {
		t.Fatal(err)
	}
}

// TestExpandMapOntoReplacementNode: a full cluster rejects a grow; after a
// replacement node is granted (what rm.Realloc does) the same grow lands
// entirely on the new node with the old placements untouched.
func TestExpandMapOntoReplacementNode(t *testing.T) {
	c, m := remapSetup(t, 2, 24) // both fig2 nodes completely full
	if _, _, err := ExpandMap(c, m.Layout, Options{}, m, 4); err == nil {
		t.Fatal("grow beyond capacity should fail")
	}
	sp, _ := hw.Preset("fig2")
	c.Nodes = append(c.Nodes, &cluster.Node{Name: "spare0", Topo: hw.New(sp)})
	before := append([]Placement(nil), m.Placements...)
	grown, rep, err := ExpandMap(c, m.Layout, Options{}, m, 4)
	if err != nil {
		t.Fatal(err)
	}
	for r := range before {
		if !samePlacement(grown.Placements[r], before[r]) {
			t.Fatalf("rank %d moved", r)
		}
	}
	for r := 24; r < 28; r++ {
		if grown.Placements[r].Node != 2 {
			t.Fatalf("new rank %d on node %d, want spare node 2", r, grown.Placements[r].Node)
		}
	}
	if !reflect.DeepEqual(rep.Nodes, []int{2}) {
		t.Fatalf("report.Nodes = %v", rep.Nodes)
	}
}

func TestExpandMapErrors(t *testing.T) {
	c, m := remapSetup(t, 2, 8)
	if _, _, err := ExpandMap(c, m.Layout, Options{}, m, 0); err == nil {
		t.Fatal("zero delta")
	}
	if _, _, err := ExpandMap(c, m.Layout, Options{}, m, -3); err == nil {
		t.Fatal("negative delta")
	}
	if _, _, err := ExpandMap(c, m.Layout, Options{}, nil, 1); err == nil {
		t.Fatal("nil map")
	}
	if _, _, err := ExpandMap(nil, m.Layout, Options{}, m, 1); err == nil {
		t.Fatal("nil cluster")
	}
}

// TestShrinkMapTailIsTruncation: releasing the highest-numbered ranks
// leaves every survivor's placement AND rank untouched — a pure
// truncation, which is what the supervisor's elastic release relies on.
func TestShrinkMapTailIsTruncation(t *testing.T) {
	c, m := remapSetup(t, 2, 12)
	shrunk, rep, err := ShrinkMap(c, m, []int{9, 10, 11})
	if err != nil {
		t.Fatal(err)
	}
	if shrunk.NumRanks() != 9 {
		t.Fatalf("ranks = %d", shrunk.NumRanks())
	}
	if !reflect.DeepEqual(shrunk.Placements, m.Placements[:9]) {
		t.Fatal("tail shrink is not a pure truncation")
	}
	if !reflect.DeepEqual(rep.Released, []int{9, 10, 11}) || rep.FreedPUs == 0 {
		t.Fatalf("report = %+v", rep)
	}
	if err := shrunk.Validate(c); err != nil {
		t.Fatal(err)
	}
}

// TestShrinkMapMiddleRenumbers: releasing an interior rank keeps every
// survivor's resources but renumbers densely in surviving order.
func TestShrinkMapMiddleRenumbers(t *testing.T) {
	c, m := remapSetup(t, 2, 8)
	shrunk, _, err := ShrinkMap(c, m, []int{2, 5})
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, old := range []int{0, 1, 3, 4, 6, 7} {
		got := shrunk.Placements[want]
		if got.Rank != want || got.Node != m.Placements[old].Node ||
			!reflect.DeepEqual(got.PUs, m.Placements[old].PUs) {
			t.Fatalf("survivor (old rank %d) = %+v", old, got)
		}
		want++
	}
}

func TestShrinkMapErrors(t *testing.T) {
	c, m := remapSetup(t, 2, 4)
	if _, _, err := ShrinkMap(c, m, []int{0, 1, 2, 3}); err == nil {
		t.Fatal("shrink to zero ranks")
	}
	if _, _, err := ShrinkMap(c, m, []int{7}); err == nil {
		t.Fatal("unknown rank")
	}
	if _, _, err := ShrinkMap(c, nil, []int{0}); err == nil {
		t.Fatal("nil map")
	}
}

// TestExpandShrinkRoundTrip: growing by k and releasing the same k ranks
// reproduces the original map exactly.
func TestExpandShrinkRoundTrip(t *testing.T) {
	c, m := remapSetup(t, 2, 10)
	grown, _, err := ExpandMap(c, m.Layout, Options{}, m, 6)
	if err != nil {
		t.Fatal(err)
	}
	back, _, err := ShrinkMap(c, grown, []int{10, 11, 12, 13, 14, 15})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Placements, m.Placements) {
		t.Fatal("grow+shrink round trip diverged")
	}
}
