package core

import (
	"reflect"
	"testing"

	"lama/internal/cluster"
	"lama/internal/hw"
)

// remapSetup maps np ranks by-slot over a fig2 cluster.
func remapSetup(t *testing.T, nodes, np int) (*cluster.Cluster, *Map) {
	t.Helper()
	c := fig2Cluster(t, nodes)
	mapper, err := NewMapper(c, MustParseLayout("csbnh"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := mapper.Map(np)
	if err != nil {
		t.Fatal(err)
	}
	return c, m
}

func TestRemapSurvivorsLeavesSurvivorsUntouched(t *testing.T) {
	// 12 ranks on 2 fig2 nodes (12 PUs each): 6 per node, half capacity
	// free. Node 0 dies; its ranks must move to node 1's free PUs while
	// node 1's ranks keep their exact placements.
	c, m := remapSetup(t, 2, 12)
	var failed, survivors []int
	for i := range m.Placements {
		if m.Placements[i].Node == 0 {
			failed = append(failed, i)
		} else {
			survivors = append(survivors, i)
		}
	}
	before := make(map[int]Placement)
	for _, r := range survivors {
		before[r] = m.Placements[r]
	}
	c.FailNode(0)
	nm, rep, err := RemapSurvivors(c, m.Layout, Options{}, m, failed)
	if err != nil {
		t.Fatal(err)
	}
	// Survivors: node, PUs, leaf, coords all bit-identical.
	for _, r := range survivors {
		got, want := nm.Placements[r], before[r]
		if got.Node != want.Node || got.Leaf != want.Leaf ||
			!reflect.DeepEqual(got.PUs, want.PUs) ||
			!reflect.DeepEqual(got.Coords, want.Coords) {
			t.Fatalf("survivor %d moved: %+v -> %+v", r, want, got)
		}
	}
	// Failed ranks: all on node 1 now, on usable PUs, no overlap with
	// survivors or each other.
	used := map[int]bool{}
	for _, r := range survivors {
		for _, pu := range nm.Placements[r].PUs {
			used[pu] = true
		}
	}
	for _, r := range failed {
		p := nm.Placements[r]
		if p.Node != 1 {
			t.Fatalf("rank %d remapped to dead node %d", r, p.Node)
		}
		for _, pu := range p.PUs {
			if used[pu] {
				t.Fatalf("rank %d collides on PU %d", r, pu)
			}
			used[pu] = true
		}
	}
	if rep.RanksMoved != len(failed) {
		t.Fatalf("RanksMoved = %d, want %d", rep.RanksMoved, len(failed))
	}
	if got := len(rep.Failed); got != len(failed) {
		t.Fatalf("report.Failed = %d entries", got)
	}
	if rep.LocalityBefore <= 0 || rep.LocalityAfter <= 0 {
		t.Fatalf("locality not reported: %+v", rep)
	}
	if err := nm.Validate(c); err != nil {
		t.Fatal(err)
	}
	// The old map is untouched.
	if m.Placements[failed[0]].Node != 0 {
		t.Fatal("input map mutated")
	}
}

func TestRemapSurvivorsOntoReplacementNode(t *testing.T) {
	// Full cluster: 24 ranks fill 2 nodes. Node 0 dies; without a
	// replacement the remap must fail, with one it must succeed and use it.
	c, m := remapSetup(t, 2, 24)
	var failed []int
	for i := range m.Placements {
		if m.Placements[i].Node == 0 {
			failed = append(failed, i)
		}
	}
	c.FailNode(0)
	if _, _, err := RemapSurvivors(c, m.Layout, Options{}, m, failed); err == nil {
		t.Fatal("remap without capacity should fail")
	}
	// Grant a replacement node (what rm.Realloc does).
	sp, _ := hw.Preset("fig2")
	c.Nodes = append(c.Nodes, &cluster.Node{Name: "spare0", Topo: hw.New(sp)})
	nm, rep, err := RemapSurvivors(c, m.Layout, Options{}, m, failed)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range failed {
		if nm.Placements[r].Node != 2 || nm.Placements[r].NodeName != "spare0" {
			t.Fatalf("rank %d on %s (node %d), want spare0", r, nm.Placements[r].NodeName, nm.Placements[r].Node)
		}
	}
	if rep.RanksMoved != len(failed) {
		t.Fatalf("RanksMoved = %d", rep.RanksMoved)
	}
	if err := nm.Validate(c); err != nil {
		t.Fatal(err)
	}
}

func TestRemapCrashedRankOnHealthyNodeStaysPut(t *testing.T) {
	// A process crash without hardware loss: the rank's old PUs are free
	// again, and csbnh re-places it exactly there — zero migration.
	c, m := remapSetup(t, 2, 12)
	old := m.Placements[3]
	nm, rep, err := RemapSurvivors(c, m.Layout, Options{}, m, []int{3})
	if err != nil {
		t.Fatal(err)
	}
	got := nm.Placements[3]
	if got.Node != old.Node || !reflect.DeepEqual(got.PUs, old.PUs) {
		t.Fatalf("crashed rank moved: %+v -> %+v", old, got)
	}
	if rep.RanksMoved != 0 {
		t.Fatalf("RanksMoved = %d, want 0", rep.RanksMoved)
	}
}

func TestRemapSurvivorsNoFailures(t *testing.T) {
	c, m := remapSetup(t, 2, 8)
	nm, rep, err := RemapSurvivors(c, m.Layout, Options{}, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(nm.Placements, m.Placements) {
		t.Fatal("no-op remap changed placements")
	}
	if rep.RanksMoved != 0 || rep.LocalityBefore != rep.LocalityAfter {
		t.Fatalf("report = %+v", rep)
	}
	// Returned map is a copy.
	nm.Placements[0].Node = 99
	if m.Placements[0].Node == 99 {
		t.Fatal("remap aliases input placements")
	}
}

func TestRemapSurvivorsErrors(t *testing.T) {
	c, m := remapSetup(t, 2, 8)
	if _, _, err := RemapSurvivors(c, m.Layout, Options{}, m, []int{99}); err == nil {
		t.Fatal("unknown rank")
	}
	if _, _, err := RemapSurvivors(c, m.Layout, Options{}, m, []int{-1}); err == nil {
		t.Fatal("negative rank")
	}
	if _, _, err := RemapSurvivors(c, m.Layout, Options{}, nil, []int{0}); err == nil {
		t.Fatal("nil map")
	}
	if _, _, err := RemapSurvivors(nil, m.Layout, Options{}, m, []int{0}); err == nil {
		t.Fatal("nil cluster")
	}
}

func TestRemapDuplicateFailedRanksDeduped(t *testing.T) {
	c, m := remapSetup(t, 2, 8)
	nm, rep, err := RemapSurvivors(c, m.Layout, Options{}, m, []int{2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Failed) != 1 || rep.Failed[0] != 2 {
		t.Fatalf("Failed = %v", rep.Failed)
	}
	if err := nm.Validate(c); err != nil {
		t.Fatal(err)
	}
}
