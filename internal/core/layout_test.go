package core

import (
	"testing"

	"lama/internal/hw"
)

func TestParseLayoutValid(t *testing.T) {
	cases := map[string][]hw.Level{
		"scbnh":  {hw.LevelSocket, hw.LevelCore, hw.LevelBoard, hw.LevelMachine, hw.LevelPU},
		"n":      {hw.LevelMachine},
		"Nn":     {hw.LevelNUMA, hw.LevelMachine},
		"L1L2L3": {hw.LevelL1, hw.LevelL2, hw.LevelL3},
		"hL2cn":  {hw.LevelPU, hw.LevelL2, hw.LevelCore, hw.LevelMachine},
	}
	for text, want := range cases {
		l, err := ParseLayout(text)
		if err != nil {
			t.Fatalf("ParseLayout(%q): %v", text, err)
		}
		got := l.Levels()
		if len(got) != len(want) {
			t.Fatalf("ParseLayout(%q) = %v", text, got)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("ParseLayout(%q)[%d] = %s, want %s", text, i, got[i], want[i])
			}
		}
		if l.String() != text {
			t.Errorf("String round trip %q -> %q", text, l.String())
		}
	}
}

func TestParseLayoutInvalid(t *testing.T) {
	for _, text := range []string{"", "x", "ss", "L", "L4", "nn", "scbnhs", "S", "l1"} {
		if _, err := ParseLayout(text); err == nil {
			t.Errorf("ParseLayout(%q) should fail", text)
		}
	}
}

func TestMustParseLayoutPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	MustParseLayout("zz")
}

func TestNewLayout(t *testing.T) {
	l, err := NewLayout(hw.LevelCore, hw.LevelMachine)
	if err != nil || l.String() != "cn" {
		t.Fatalf("NewLayout: %v %q", err, l.String())
	}
	if _, err := NewLayout(); err == nil {
		t.Fatal("empty NewLayout should fail")
	}
	if _, err := NewLayout(hw.LevelCore, hw.LevelCore); err == nil {
		t.Fatal("duplicate NewLayout should fail")
	}
	if _, err := NewLayout(hw.Level(99)); err == nil {
		t.Fatal("invalid level should fail")
	}
}

func TestLayoutQueries(t *testing.T) {
	l := MustParseLayout("scbnh")
	if !l.Contains(hw.LevelSocket) || l.Contains(hw.LevelNUMA) {
		t.Fatal("Contains wrong")
	}
	if l.Len() != 5 {
		t.Fatal("Len wrong")
	}
	intra := l.IntraNode()
	want := []hw.Level{hw.LevelBoard, hw.LevelSocket, hw.LevelCore, hw.LevelPU}
	if len(intra) != len(want) {
		t.Fatalf("IntraNode = %v", intra)
	}
	for i := range want {
		if intra[i] != want[i] {
			t.Fatalf("IntraNode[%d] = %s, want %s (canonical order)", i, intra[i], want[i])
		}
	}
	deep, ok := l.DeepestIntra()
	if !ok || deep != hw.LevelPU {
		t.Fatalf("DeepestIntra = %v %v", deep, ok)
	}
	nodeOnly := MustParseLayout("n")
	if _, ok := nodeOnly.DeepestIntra(); ok {
		t.Fatal("node-only layout has no intra levels")
	}
}
