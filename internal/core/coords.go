package core

import (
	"fmt"
	"strings"

	"lama/internal/hw"
)

// CoordVector records one iteration coordinate per hardware level, indexed
// directly by hw.Level. Levels that are not part of the layout hold -1.
// It replaces the per-placement map[hw.Level]int of earlier versions: a
// fixed-size value type embeds into Placement with no allocation and no
// hashing, which matters in the mapping hot path where one is produced per
// rank. Indexing with a level (p.Coords[hw.LevelSocket]) reads that
// level's coordinate, -1 when absent.
type CoordVector [hw.NumLevels]int

// NoCoords returns a vector with every level marked absent.
func NoCoords() CoordVector {
	var cv CoordVector
	for i := range cv {
		cv[i] = -1
	}
	return cv
}

// NodeCoords returns a vector carrying only the machine (node) coordinate,
// the form baseline mappers use.
func NodeCoords(node int) CoordVector {
	cv := NoCoords()
	cv[hw.LevelMachine] = node
	return cv
}

// Has reports whether the level carries a coordinate.
func (cv CoordVector) Has(l hw.Level) bool {
	return l.Valid() && cv[l] >= 0
}

// Get returns the coordinate for a level and whether it is present.
func (cv CoordVector) Get(l hw.Level) (int, bool) {
	if !cv.Has(l) {
		return 0, false
	}
	return cv[l], true
}

// Set records a coordinate for a level (ignored for invalid levels).
func (cv *CoordVector) Set(l hw.Level, v int) {
	if l.Valid() {
		cv[l] = v
	}
}

// Len returns the number of levels carrying a coordinate.
func (cv CoordVector) Len() int {
	n := 0
	for _, v := range cv {
		if v >= 0 {
			n++
		}
	}
	return n
}

// String renders the present coordinates in canonical level order, e.g.
// "n=1 s=0 c=2".
func (cv CoordVector) String() string {
	var sb strings.Builder
	for _, l := range hw.Levels {
		if cv[l] >= 0 {
			if sb.Len() > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "%s=%d", l.Abbrev(), cv[l])
		}
	}
	return sb.String()
}
