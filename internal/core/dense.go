package core

import (
	"sync"

	"lama/internal/cluster"
	"lama/internal/hw"
)

// This file implements the dense, cache-backed representation of pruned
// topology views that the optimized mapping engine iterates over. The
// reference structures (PrunedTree, MaximalTree in maxtree.go) model the
// paper's §IV-B directly with one Go object per tree node; they remain the
// oracle that MapReference and the tests use. The engine below encodes the
// same trees as flat integer arrays so that the per-coordinate step of the
// mapping loop does no pointer chasing, no hashing, and no allocation:
//
//   - prunedShape is the availability-independent structure of a pruned
//     tree (child counts and dense leaf IDs). It depends only on the
//     topology's shape, so the nodes of a homogeneous cluster share one
//     prunedShape (the "build one tree instead of N" memoization).
//   - nodeView binds a prunedShape to one concrete topology: leaf ID ->
//     hardware object, and a per-leaf cache of usable PU OS indices in the
//     exact order Object.UsablePUs would return them. Views are memoized
//     per (topology identity, levels) and validated against the topology's
//     generation counter, so availability mutations (SetAvailable,
//     Restrict, Offline, FailNode/FailPUs) rebuild them lazily.
//   - denseTree is the per-mapper union of one view per cluster node plus
//     the maximal widths — the iteration-driving maximal tree of §IV-B.

// prunedShape is the flattened structure of a pruned tree: node i's
// children occupy indices firstKid[i] .. firstKid[i]+kidCount[i]-1, the
// root is node 0, and nodes at the deepest pruned level carry a dense leaf
// ID in leafID (-1 elsewhere). Shapes are immutable once built — they are
// shared across every topology with the same ShapeSig, so lamavet's
// snapfrozen analyzer holds writes to the buildShape whitelist.
//
//lama:frozen
type prunedShape struct {
	levels    []hw.Level
	firstKid  []int32
	kidCount  []int32
	leafID    []int32
	widths    []int // per depth: max child count of any node at that depth
	numLeaves int
}

// lookup resolves per-depth child indices (canonical order) to a dense
// leaf ID, or -1 when the coordinate does not exist on this shape.
//
//lama:hotpath
func (ps *prunedShape) lookup(coords []int) int32 {
	n := int32(0)
	for _, idx := range coords {
		if idx < 0 || int32(idx) >= ps.kidCount[n] {
			return -1
		}
		n = ps.firstKid[n] + int32(idx)
	}
	return ps.leafID[n]
}

// buildShape flattens the pruned view of one topology. The traversal is
// breadth-first so every node's children are contiguous; leaf IDs are
// assigned in visit order, which is the same deterministic order
// buildView uses to enumerate the corresponding objects.
//
//lama:coldpath one-off shape construction per (topology, layout)
//lama:mutator
func buildShape(t *hw.Topology, levels []hw.Level) *prunedShape {
	ps := &prunedShape{
		levels: levels,
		widths: make([]int, len(levels)),
	}
	type item struct {
		obj   *hw.Object
		depth int
	}
	queue := []item{{t.Root, 0}}
	ps.firstKid = append(ps.firstKid, 0)
	ps.kidCount = append(ps.kidCount, 0)
	ps.leafID = append(ps.leafID, -1)
	var kids []*hw.Object
	for head := 0; head < len(queue); head++ {
		it := queue[head]
		if it.depth == len(levels) {
			ps.leafID[head] = int32(ps.numLeaves)
			ps.numLeaves++
			continue
		}
		kids = appendDescendantsAt(kids[:0], it.obj, levels[it.depth])
		ps.firstKid[head] = int32(len(queue))
		ps.kidCount[head] = int32(len(kids))
		if len(kids) > ps.widths[it.depth] {
			ps.widths[it.depth] = len(kids)
		}
		for _, k := range kids {
			queue = append(queue, item{k, it.depth + 1})
			ps.firstKid = append(ps.firstKid, 0)
			ps.kidCount = append(ps.kidCount, 0)
			ps.leafID = append(ps.leafID, -1)
		}
	}
	return ps
}

// nodeView is one topology's pruned view: the shared shape plus the
// per-leaf object and usable-PU caches. A view is a snapshot of the
// topology at generation gen; it is immutable once built — views are
// cached by (topology, generation) and shared across mappers, so writes
// are held to the buildView whitelist.
//
//lama:frozen
type nodeView struct {
	shape   *prunedShape
	gen     uint64
	leafObj []*hw.Object // leaf ID -> hardware object
	puOff   []int32      // leaf ID -> offset into pus (numLeaves+1 entries)
	pus     []int32      // usable PU OS indices, grouped by leaf, tree order
}

// usable reports the PU list of a leaf: empty when the resource is
// off-lined or all of its PUs are.
//
//lama:hotpath
func (v *nodeView) usable(leaf int32) []int32 {
	return v.pus[v.puOff[leaf]:v.puOff[leaf+1]]
}

// buildView binds a shape to a concrete topology, walking it once in the
// same breadth-first order as buildShape to collect leaf objects, then
// caching each leaf's usable PUs (ancestor-availability included, matching
// Object.UsablePUs).
//
//lama:coldpath one-off per-node view construction
//lama:mutator
func buildView(t *hw.Topology, shape *prunedShape) *nodeView {
	v := &nodeView{
		shape:   shape,
		gen:     t.Generation(),
		leafObj: make([]*hw.Object, 0, shape.numLeaves),
		puOff:   make([]int32, 1, shape.numLeaves+1),
	}
	levels := shape.levels
	type item struct {
		obj   *hw.Object
		depth int
	}
	queue := []item{{t.Root, 0}}
	var kids []*hw.Object
	for head := 0; head < len(queue); head++ {
		it := queue[head]
		if it.depth == len(levels) {
			v.leafObj = append(v.leafObj, it.obj)
			continue
		}
		kids = appendDescendantsAt(kids[:0], it.obj, levels[it.depth])
		for _, k := range kids {
			queue = append(queue, item{k, it.depth + 1})
		}
	}
	for _, leaf := range v.leafObj {
		if leaf.Usable() {
			v.pus = appendUsablePUs(v.pus, leaf)
		}
		v.puOff = append(v.puOff, int32(len(v.pus)))
	}
	return v
}

// appendUsablePUs appends the OS indices of o's usable PUs in tree order
// (o itself already verified usable up to the root).
func appendUsablePUs(dst []int32, o *hw.Object) []int32 {
	if !o.Available {
		return dst
	}
	if o.Level == hw.LevelPU {
		return append(dst, int32(o.OS))
	}
	for _, c := range o.Children {
		dst = appendUsablePUs(dst, c)
	}
	return dst
}

// levelsSig encodes a level list as a compact cache-key string.
func levelsSig(levels []hw.Level) string {
	b := make([]byte, len(levels))
	for i, l := range levels {
		b[i] = byte(l)
	}
	return string(b)
}

// The two memoization layers. shapeCache shares prunedShapes across
// structurally identical topologies (keyed by hw.Topology.ShapeSig), so a
// homogeneous cluster builds ONE pruned tree per level set no matter how
// many nodes it has. viewCache shares nodeViews across mappers by
// (topology identity, levels), revalidated against the topology's
// generation counter. Both are bounded: on overflow the whole map is
// dropped, which also releases the *hw.Topology keys of clusters that are
// no longer in use.
const (
	shapeCacheMax = 512
	viewCacheMax  = 4096
)

type shapeKey struct {
	shape  string
	levels string
}

type viewKey struct {
	topo   *hw.Topology
	levels string
}

var (
	treeCacheMu sync.Mutex
	shapeCache  = map[shapeKey]*prunedShape{}
	viewCache   = map[viewKey]*nodeView{}
)

// viewFor returns the (possibly cached) pruned view of a topology for the
// given canonical intra-node levels.
func viewFor(t *hw.Topology, levels []hw.Level, sig string) *nodeView {
	treeCacheMu.Lock()
	defer treeCacheMu.Unlock()
	vk := viewKey{topo: t, levels: sig}
	if v, ok := viewCache[vk]; ok && v.gen == t.Generation() {
		return v
	}
	sk := shapeKey{shape: t.ShapeSig(), levels: sig}
	shape, ok := shapeCache[sk]
	if !ok {
		shape = buildShape(t, levels)
		if len(shapeCache) >= shapeCacheMax {
			shapeCache = map[shapeKey]*prunedShape{}
		}
		shapeCache[sk] = shape
	}
	v := buildView(t, shape)
	if len(viewCache) >= viewCacheMax {
		viewCache = map[viewKey]*nodeView{}
	}
	viewCache[vk] = v
	return v
}

// denseTree is the engine's maximal tree (paper §IV-B): one pruned view
// per cluster node plus the per-depth maximum widths that drive iteration,
// and a dense global leaf numbering (node n's leaf l has global ID
// leafBase[n]+l) for index-addressed claim counting.
type denseTree struct {
	levels      []hw.Level
	views       []*nodeView
	widths      []int
	leafBase    []int32
	totalLeaves int
	gens        []uint64       // per node: topology generation the view captured
	topos       []*hw.Topology // per node: topology identity the view was built from
}

// newDenseTree assembles the maximal tree for a cluster's per-node
// topologies, reusing cached shapes and views where valid.
func newDenseTree(c *cluster.Cluster, levels []hw.Level) *denseTree {
	sig := levelsSig(levels)
	n := c.NumNodes()
	dt := &denseTree{
		levels:   levels,
		views:    make([]*nodeView, n),
		widths:   make([]int, len(levels)),
		leafBase: make([]int32, n),
		gens:     make([]uint64, n),
		topos:    make([]*hw.Topology, n),
	}
	for i, node := range c.Nodes {
		v := viewFor(node.Topo, levels, sig)
		dt.views[i] = v
		dt.gens[i] = v.gen
		dt.topos[i] = node.Topo
		dt.leafBase[i] = int32(dt.totalLeaves)
		dt.totalLeaves += v.shape.numLeaves
		for d, w := range v.shape.widths {
			if w > dt.widths[d] {
				dt.widths[d] = w
			}
		}
	}
	return dt
}

// freshFor reports whether every view still matches its topology — same
// topology identity AND same generation — i.e. no availability or
// structural mutation happened on the cluster since the tree was built.
// The identity check matters under copy-on-write snapshots: a mapper
// re-pointed at a sibling snapshot sees a cloned topology for the touched
// node whose generation can coincide with the cached one (Clone resets the
// counter), and generations alone would silently reuse the stale view.
func (dt *denseTree) freshFor(c *cluster.Cluster) bool {
	if len(dt.views) != c.NumNodes() {
		return false
	}
	for i, node := range c.Nodes {
		if node.Topo != dt.topos[i] || node.Topo.Generation() != dt.gens[i] {
			return false
		}
	}
	return true
}
