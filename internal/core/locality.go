package core

import (
	"lama/internal/cluster"
)

// LocalityTally is NeighborLocality's integer state — the LCA depth sum
// and pair count over consecutive same-node rank pairs — held explicitly
// so placement search loops can price a candidate swap in O(1) instead of
// rescanning all ranks. Because the state is integral, a tally updated
// through LocalitySwapDelta stays bit-identical to a full recompute: the
// final division happens once, in Value.
type LocalityTally struct {
	DepthSum int
	Pairs    int
}

// NewLocalityTally scans the map once and returns the full tally,
// equivalent in cost and result to NeighborLocality.
func NewLocalityTally(c *cluster.Cluster, m *Map) LocalityTally {
	var t LocalityTally
	for i := 1; i < m.NumRanks(); i++ {
		d, p := pairLocality(c, m, i-1, i, -1, -1)
		t.DepthSum += d
		t.Pairs += p
	}
	return t
}

// Value returns the mean LCA depth, 0 when no same-node pairs exist.
func (t LocalityTally) Value() float64 {
	if t.Pairs == 0 {
		return 0
	}
	return float64(t.DepthSum) / float64(t.Pairs)
}

// AfterSwap returns the locality value the map would have after a swap
// whose delta is (dDepth, dPairs), without mutating the tally.
func (t LocalityTally) AfterSwap(dDepth, dPairs int) float64 {
	return LocalityTally{t.DepthSum + dDepth, t.Pairs + dPairs}.Value()
}

// Apply commits a swap's delta to the tally.
func (t *LocalityTally) Apply(dDepth, dPairs int) {
	t.DepthSum += dDepth
	t.Pairs += dPairs
}

// LocalitySwapDelta returns the change in the locality tally if ranks a
// and b exchanged placements, in O(1): only the consecutive pairs
// touching a or b can change. The map is not modified.
func LocalitySwapDelta(c *cluster.Cluster, m *Map, a, b int) (dDepth, dPairs int) {
	if a == b {
		return 0, 0
	}
	// Pair-start candidates: the pairs (p, p+1) where p or p+1 is a or b.
	starts := [4]int{a - 1, a, b - 1, b}
	n := 0
	seen := [4]int{}
	for _, p := range starts {
		if p < 0 || p+1 >= m.NumRanks() {
			continue
		}
		dup := false
		for k := 0; k < n; k++ {
			if seen[k] == p {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		seen[n] = p
		n++
		bd, bp := pairLocality(c, m, p, p+1, -1, -1)
		ad, ap := pairLocality(c, m, p, p+1, a, b)
		dDepth += ad - bd
		dPairs += ap - bp
	}
	return dDepth, dPairs
}

// pairLocality scores one consecutive rank pair (i, i+1 as i, j): its
// LCA depth and 1 when both ranks share a node, zeros otherwise. When
// swapA/swapB are rank indices (not -1), the pair is scored as if those
// two ranks had exchanged placements.
func pairLocality(c *cluster.Cluster, m *Map, i, j, swapA, swapB int) (depth, pairs int) {
	pa := redirect(m, i, swapA, swapB)
	pb := redirect(m, j, swapA, swapB)
	if pa.Node != pb.Node {
		return 0, 0
	}
	level := c.Node(pa.Node).Topo.CommonAncestorLevel(pa.PU(), pb.PU())
	return level.Depth(), 1
}

// redirect returns rank idx's placement under the hypothetical swap of
// swapA and swapB.
func redirect(m *Map, idx, swapA, swapB int) *Placement {
	if idx == swapA {
		return &m.Placements[swapB]
	}
	if idx == swapB {
		return &m.Placements[swapA]
	}
	return &m.Placements[idx]
}
