package core

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"lama/internal/cluster"
	"lama/internal/hw"
)

// Elastic (malleable) job support: grow and shrink as first-class mapping
// operations. ExpandMap is the grow counterpart of RemapSurvivors — an
// incremental LAMA run that places ONLY the new ranks while provably
// leaving every existing placement untouched — and ShrinkMap releases a
// set of ranks' resources without disturbing the survivors' placements.
// Both are differential-tested against the naive MapReference oracle.

// ExpandReport summarizes one incremental grow.
type ExpandReport struct {
	// Added lists the new ranks, ascending (oldNP .. oldNP+add-1).
	Added []int
	// Nodes lists the distinct node indices the new ranks landed on,
	// ascending.
	Nodes []int
	// LocalityBefore and LocalityAfter give the map's neighbor locality
	// (see NeighborLocality) before and after the grow.
	LocalityBefore, LocalityAfter float64
	// Sweeps is the number of resource-space sweeps the incremental run
	// needed to place the new ranks.
	Sweeps int
}

// ExpandMap grows a job by `add` ranks: it re-runs the LAMA over ONLY the
// new ranks against the cluster's current resources, with every existing
// rank's claimed PUs withheld, and appends the results as ranks
// oldNP..oldNP+add-1. Existing rank→PU assignments are carried over
// byte-identical — a new rank can never land on (or oversubscribe) an
// existing rank's processors, so a grow migrates nothing. The cluster may
// have gained nodes (rm.Realloc appends replacement views) or lost them
// (FailNode) since the original mapping; both are picked up through the
// availability mechanism exactly as in RemapSurvivors.
func ExpandMap(c *cluster.Cluster, layout Layout, opts Options, old *Map, add int) (*Map, *ExpandReport, error) {
	return ExpandMapContext(context.Background(), c, layout, opts, old, add)
}

// ExpandMapContext is ExpandMap with cooperative cancellation (checked at
// the incremental run's sweep boundaries, like Mapper.MapContext).
func ExpandMapContext(ctx context.Context, c *cluster.Cluster, layout Layout, opts Options, old *Map, add int) (*Map, *ExpandReport, error) {
	if c == nil || c.NumNodes() == 0 {
		return nil, nil, fmt.Errorf("core: empty cluster")
	}
	if old == nil || old.NumRanks() == 0 {
		return nil, nil, fmt.Errorf("core: empty map")
	}
	if add <= 0 {
		return nil, nil, fmt.Errorf("core: non-positive grow delta %d", add)
	}
	oldNP := old.NumRanks()
	report := &ExpandReport{LocalityBefore: NeighborLocality(c, old)}

	// Withhold every existing placement's PUs on a scratch clone, then run
	// the LAMA for just the new ranks. The clone inherits any failure
	// restrictions already recorded on c.
	scratch := c.Clone()
	withheld := make([]*hw.CPUSet, scratch.NumNodes())
	for i := range old.Placements {
		p := &old.Placements[i]
		if scratch.Node(p.Node) == nil {
			return nil, nil, fmt.Errorf("core: rank %d on unknown node %d", p.Rank, p.Node)
		}
		if withheld[p.Node] == nil {
			withheld[p.Node] = &hw.CPUSet{}
		}
		for _, pu := range p.PUs {
			withheld[p.Node].Set(pu)
		}
	}
	for node, pus := range withheld {
		scratch.Node(node).Topo.Offline(pus)
	}
	mapper, err := NewMapper(scratch, layout, opts)
	if err != nil {
		return nil, nil, err
	}
	sub, err := mapper.MapContext(ctx, add)
	if err != nil {
		return nil, nil, fmt.Errorf("core: incremental grow of %d ranks failed: %w", add, err)
	}

	out := &Map{
		Layout:     old.Layout,
		Placements: append(append(make([]Placement, 0, oldNP+add), old.Placements...), sub.Placements...),
		Sweeps:     old.Sweeps,
	}
	seen := map[int]bool{}
	for i := range sub.Placements {
		sp := &sub.Placements[i]
		np := &out.Placements[oldNP+i]
		np.Rank = oldNP + i
		// Translate the leaf from the scratch clone to the live cluster
		// (logical numbering is availability-independent).
		if sp.Leaf != nil {
			np.Leaf = c.Node(sp.Node).Topo.ObjectAt(sp.Leaf.Level, sp.Leaf.Logical)
		}
		np.PUs = append([]int(nil), sp.PUs...)
		report.Added = append(report.Added, np.Rank)
		if !seen[sp.Node] {
			seen[sp.Node] = true
			report.Nodes = append(report.Nodes, sp.Node)
		}
	}
	sort.Ints(report.Nodes)
	recomputeOversubscription(out)
	if err := out.Validate(c); err != nil {
		return nil, nil, fmt.Errorf("core: grown map inconsistent: %v", err)
	}
	report.LocalityAfter = NeighborLocality(c, out)
	report.Sweeps = sub.Sweeps
	return out, report, nil
}

// ShrinkReport summarizes one shrink.
type ShrinkReport struct {
	// Released lists the removed ranks (old numbering), ascending.
	Released []int
	// FreedPUs counts the PU claims the removed ranks gave back.
	FreedPUs int
	// LocalityBefore and LocalityAfter give the map's neighbor locality
	// before and after the shrink.
	LocalityBefore, LocalityAfter float64
}

// ShrinkMap releases the given ranks from a map: their placements are
// dropped, the survivors keep their node/PU/leaf/coordinate assignments
// byte-identical, and ranks are renumbered densely in surviving order
// (removing the tail is therefore a pure truncation — no survivor's rank
// changes either). At least one rank must survive.
func ShrinkMap(c *cluster.Cluster, old *Map, remove []int) (*Map, *ShrinkReport, error) {
	if c == nil || c.NumNodes() == 0 {
		return nil, nil, fmt.Errorf("core: empty cluster")
	}
	if old == nil || old.NumRanks() == 0 {
		return nil, nil, fmt.Errorf("core: empty map")
	}
	set := map[int]bool{}
	for _, r := range remove {
		if r < 0 || r >= old.NumRanks() {
			return nil, nil, fmt.Errorf("core: shrink of unknown rank %d (map has %d)", r, old.NumRanks())
		}
		set[r] = true
	}
	if len(set) >= old.NumRanks() {
		return nil, nil, fmt.Errorf("core: shrink would release all %d ranks", old.NumRanks())
	}
	report := &ShrinkReport{LocalityBefore: NeighborLocality(c, old)}
	out := &Map{Layout: old.Layout, Sweeps: old.Sweeps,
		Placements: make([]Placement, 0, old.NumRanks()-len(set))}
	for i := range old.Placements {
		p := old.Placements[i]
		if set[p.Rank] {
			report.Released = append(report.Released, p.Rank)
			report.FreedPUs += len(p.PUs)
			continue
		}
		p.Rank = len(out.Placements)
		out.Placements = append(out.Placements, p)
	}
	sort.Ints(report.Released)
	recomputeOversubscription(out)
	if err := out.Validate(c); err != nil {
		return nil, nil, fmt.Errorf("core: shrunk map inconsistent: %v", err)
	}
	report.LocalityAfter = NeighborLocality(c, out)
	return out, report, nil
}

// ErrStaleSnapshot reports that a grow (or any snapshot-keyed operation)
// raced a snapshot swap: the epoch the caller planned against is no longer
// the cluster's current epoch, so resources the plan assumed free may have
// been reassigned. Callers should re-fetch the current snapshot and retry.
var ErrStaleSnapshot = errors.New("core: cluster snapshot is stale")

// ExpandMapSnapshot grows a job against an immutable cluster snapshot with
// stale-snapshot detection: current() must report the cluster's live epoch
// (e.g. the engine's published snapshot epoch). The epoch is verified
// before mapping starts AND after it completes — a swap that lands
// mid-grow (a failure event, a realloc) invalidates the grow, which then
// returns ErrStaleSnapshot instead of silently handing out placements
// computed from freed or reassigned PUs.
func ExpandMapSnapshot(ctx context.Context, snap *cluster.Snapshot, current func() uint64,
	layout Layout, opts Options, old *Map, add int) (*Map, *ExpandReport, error) {
	if snap == nil {
		return nil, nil, fmt.Errorf("core: nil snapshot")
	}
	if current == nil {
		return nil, nil, fmt.Errorf("core: nil epoch source")
	}
	if got := current(); got != snap.Epoch() {
		return nil, nil, fmt.Errorf("%w: planned against epoch %d, cluster is at %d",
			ErrStaleSnapshot, snap.Epoch(), got)
	}
	out, rep, err := ExpandMapContext(ctx, snap.Cluster(), layout, opts, old, add)
	if err != nil {
		return nil, nil, err
	}
	if got := current(); got != snap.Epoch() {
		return nil, nil, fmt.Errorf("%w: epoch advanced %d -> %d mid-grow",
			ErrStaleSnapshot, snap.Epoch(), got)
	}
	return out, rep, nil
}
