package core

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"lama/internal/cluster"
	"lama/internal/hw"
)

// samePlans is sameMaps plus coordinate equality: the optimized engine
// must agree with the reference down to every per-level coordinate.
func samePlans(a, b *Map) bool {
	if !sameMaps(a, b) {
		return false
	}
	for i := range a.Placements {
		if a.Placements[i].Coords != b.Placements[i].Coords {
			return false
		}
	}
	return true
}

// failSomething applies a random availability mutation through the
// cluster's failure API: a whole node or a handful of its PUs.
func failSomething(r *rand.Rand, c *cluster.Cluster) {
	node := r.Intn(c.NumNodes())
	if r.Intn(2) == 0 {
		c.FailNode(node)
		return
	}
	pus := c.Node(node).Topo.Root.UsablePUs()
	if len(pus) == 0 {
		return
	}
	set := &hw.CPUSet{}
	for _, pu := range pus {
		if r.Intn(3) == 0 {
			set.Set(pu.OS)
		}
	}
	c.FailPUs(node, set)
}

// TestQuickMapMatchesReferenceAfterFailures is the differential property
// test of the optimized engine's cache invalidation: one Mapper is reused
// across FailNode/FailPUs mutations (so its dense trees, pruned-shape
// cache entries, and usable-PU lists must be revalidated via the topology
// generation counter), and after every mutation its output must equal the
// naive cache-free reference built from scratch.
func TestQuickMapMatchesReferenceAfterFailures(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := randomCluster(r)
		layout := randomLayout(r)
		opts := Options{
			Oversubscribe: r.Intn(2) == 1,
			PEsPerProc:    1 + r.Intn(2),
		}
		m, err := NewMapper(c, layout, opts)
		if err != nil {
			return false
		}
		rounds := 1 + r.Intn(3)
		for round := 0; round < rounds; round++ {
			if round > 0 {
				failSomething(r, c)
			}
			np := 1 + r.Intn(2*c.TotalUsablePUs()+2)
			got, errA := m.Map(np) // reused mapper: cached state + invalidation
			fresh, err := NewMapper(c, layout, opts)
			if err != nil {
				return false
			}
			want, errB := fresh.MapReference(np) // naive oracle, built from scratch
			if (errA == nil) != (errB == nil) {
				return false
			}
			if errA != nil {
				if !errors.Is(errA, ErrOversubscribe) && !errors.Is(errA, ErrNoResources) {
					return false
				}
				continue
			}
			if !samePlans(got, want) || got.Validate(c) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestMapperReuseAcrossLayouts: swapping the layout on an existing Mapper
// rebuilds the iteration state and matches a fresh mapper exactly.
func TestMapperReuseAcrossLayouts(t *testing.T) {
	sp, ok := hw.Preset("nehalem-ep")
	if !ok {
		t.Fatal("preset missing")
	}
	c := cluster.Homogeneous(4, sp)
	m, err := NewMapper(c, MustParseLayout("scbnh"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, text := range []string{"scbnh", "ncsbh", "nbsNL3L2L1ch", "hcL1L2L3Nsbn", "scbnh"} {
		m.Layout = MustParseLayout(text)
		got, err := m.Map(48)
		if err != nil {
			t.Fatalf("layout %s: %v", text, err)
		}
		fresh, err := NewMapper(c, MustParseLayout(text), Options{})
		if err != nil {
			t.Fatal(err)
		}
		want, err := fresh.MapReference(48)
		if err != nil {
			t.Fatal(err)
		}
		if !samePlans(got, want) {
			t.Fatalf("layout %s: reused mapper diverged from fresh reference", text)
		}
	}
}

// TestHomogeneousNodesShareShape: the nodes of a homogeneous cluster must
// share ONE pruned shape (built once, by structural signature), and the
// per-node views must share it too.
func TestHomogeneousNodesShareShape(t *testing.T) {
	sp, ok := hw.Preset("nehalem-ep")
	if !ok {
		t.Fatal("preset missing")
	}
	c := cluster.Homogeneous(16, sp)
	m, err := NewMapper(c, MustParseLayout("scbnh"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Map(64); err != nil {
		t.Fatal(err)
	}
	tree := m.state.tree
	if len(tree.views) != 16 {
		t.Fatalf("views = %d", len(tree.views))
	}
	first := tree.views[0].shape
	for i, v := range tree.views {
		if v.shape != first {
			t.Fatalf("node %d has its own pruned shape; expected one shared shape", i)
		}
	}
}

// TestViewInvalidatedByFailure: a view cached for a topology is rebuilt
// after the topology's generation changes, and stale usable-PU lists never
// leak into a new mapping.
func TestViewInvalidatedByFailure(t *testing.T) {
	sp, ok := hw.Preset("nehalem-ep")
	if !ok {
		t.Fatal("preset missing")
	}
	c := cluster.Homogeneous(2, sp)
	m, err := NewMapper(c, MustParseLayout("scbnh"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	before, err := m.Map(8)
	if err != nil {
		t.Fatal(err)
	}
	gen0 := c.Node(0).Topo.Generation()
	if !c.FailNode(0) {
		t.Fatal("FailNode returned false")
	}
	if g := c.Node(0).Topo.Generation(); g == gen0 {
		t.Fatal("FailNode did not advance the generation counter")
	}
	after, err := m.Map(8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range after.Placements {
		if after.Placements[i].Node == 0 {
			t.Fatal("rank placed on failed node: stale cached view")
		}
	}
	if samePlans(before, after) {
		t.Fatal("map unchanged after failing a node")
	}
	if err := after.Validate(c); err != nil {
		t.Fatal(err)
	}
}

// TestSweepLayoutsMatchesSerial: the parallel sweep returns, in layout
// order, exactly what a serial per-layout run of the reference produces.
func TestSweepLayoutsMatchesSerial(t *testing.T) {
	sp, ok := hw.Preset("nehalem-ep")
	if !ok {
		t.Fatal("preset missing")
	}
	c := cluster.Homogeneous(4, sp)
	texts := []string{"scbnh", "ncsbh", "csbnh", "hnbcs", "bnsch", "nbsNL3L2L1ch", "shcbn", "cnbsh"}
	layouts := make([]Layout, len(texts))
	for i, s := range texts {
		layouts[i] = MustParseLayout(s)
	}
	for _, workers := range []int{1, 3, 0} {
		maps, err := SweepLayouts(context.Background(), c, layouts, 48, Options{}, workers)
		if err != nil {
			t.Fatal(err)
		}
		if len(maps) != len(layouts) {
			t.Fatalf("got %d maps", len(maps))
		}
		for i, got := range maps {
			ref, err := NewMapper(c, layouts[i], Options{})
			if err != nil {
				t.Fatal(err)
			}
			want, err := ref.MapReference(48)
			if err != nil {
				t.Fatal(err)
			}
			if !samePlans(got, want) {
				t.Fatalf("workers=%d: layout %s diverged from serial reference", workers, texts[i])
			}
		}
	}
}

// TestSweepLayoutsError: a failing layout aborts the sweep with an error
// naming it; a layout without the node level is rejected.
func TestSweepLayoutsError(t *testing.T) {
	sp, ok := hw.Preset("nehalem-ep")
	if !ok {
		t.Fatal("preset missing")
	}
	c := cluster.Homogeneous(2, sp)
	layouts := []Layout{MustParseLayout("scbnh"), MustParseLayout("scbh")}
	if _, err := SweepLayouts(context.Background(), c, layouts, 8, Options{}, 2); err == nil {
		t.Fatal("node-less layout accepted")
	}
	// An unmappable rank count fails with the mapper's error.
	big := c.TotalUsablePUs() + 1
	if _, err := SweepLayouts(context.Background(), c, []Layout{MustParseLayout("scbnh")}, big, Options{}, 2); !errors.Is(err, ErrOversubscribe) {
		t.Fatalf("err = %v, want ErrOversubscribe", err)
	}
}

// allocClusterAndMapper builds the standard benchmark topology for the
// allocation-regression tests.
func allocClusterAndMapper(t *testing.T, layout string) *Mapper {
	t.Helper()
	sp, ok := hw.Preset("nehalem-ep")
	if !ok {
		t.Fatal("preset missing")
	}
	c := cluster.Homogeneous(16, sp)
	m, err := NewMapper(c, MustParseLayout(layout), Options{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestMapAllocationsSteadyState pins the allocation count of the hot
// path: after the first call warms the mapper's reusable state, a Map run
// performs only the handful of allocations that escape to the caller (the
// Map struct, the placement slice, and the shared PU backing array). A
// regression reintroducing per-coordinate maps or per-placement slices
// shows up here as dozens-to-thousands of allocations.
func TestMapAllocationsSteadyState(t *testing.T) {
	for _, tc := range []struct {
		layout string
		np     int
	}{
		{"scbnh", 256},
		{"nbsNL3L2L1ch", 256},
	} {
		m := allocClusterAndMapper(t, tc.layout)
		if _, err := m.Map(tc.np); err != nil { // warm the reusable state
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(10, func() {
			if _, err := m.Map(tc.np); err != nil {
				t.Fatal(err)
			}
		})
		if allocs > 8 {
			t.Errorf("layout %s: Map(%d) allocates %.0f objects/run in steady state, want <= 8",
				tc.layout, tc.np, allocs)
		}
	}
}
