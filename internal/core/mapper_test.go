package core

import (
	"errors"
	"strings"
	"testing"

	"lama/internal/cluster"
	"lama/internal/hw"
)

func fig2Cluster(t *testing.T, nodes int) *cluster.Cluster {
	t.Helper()
	sp, ok := hw.Preset("fig2") // 2 sockets x 3 cores x 2 PUs, sequential OS
	if !ok {
		t.Fatal("fig2 preset missing")
	}
	return cluster.Homogeneous(nodes, sp)
}

func mustMap(t *testing.T, c *cluster.Cluster, layout string, opts Options, np int) *Map {
	t.Helper()
	m, err := NewMapper(c, MustParseLayout(layout), opts)
	if err != nil {
		t.Fatal(err)
	}
	mp, err := m.Map(np)
	if err != nil {
		t.Fatal(err)
	}
	if err := mp.Validate(c); err != nil {
		t.Fatalf("invalid map: %v", err)
	}
	return mp
}

// pusOf flattens rank -> representative PU.
func pusOf(m *Map) []int {
	out := make([]int, m.NumRanks())
	for i := range m.Placements {
		out[i] = m.Placements[i].PU()
	}
	return out
}

func nodesOf(m *Map) []int {
	out := make([]int, m.NumRanks())
	for i := range m.Placements {
		out[i] = m.Placements[i].Node
	}
	return out
}

func eqInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestFigure2Mapping reproduces the paper's Figure 2: 24 processes with the
// scbnh layout on two nodes. The layout scatters across sockets, then
// cores, fills the node, moves to the next node, and only then wraps onto
// the second hardware thread (§IV-C).
func TestFigure2Mapping(t *testing.T) {
	c := fig2Cluster(t, 2)
	m := mustMap(t, c, "scbnh", Options{}, 24)

	// fig2 sequential OS numbering: socket0 cores have PUs {0,1},{2,3},{4,5};
	// socket1: {6,7},{8,9},{10,11}.
	wantPUs := []int{
		0, 6, 2, 8, 4, 10, // node0, h0: scatter sockets, then cores
		0, 6, 2, 8, 4, 10, // node1, h0
		1, 7, 3, 9, 5, 11, // node0, h1
		1, 7, 3, 9, 5, 11, // node1, h1
	}
	wantNodes := []int{
		0, 0, 0, 0, 0, 0,
		1, 1, 1, 1, 1, 1,
		0, 0, 0, 0, 0, 0,
		1, 1, 1, 1, 1, 1,
	}
	if got := pusOf(m); !eqInts(got, wantPUs) {
		t.Fatalf("PUs = %v\nwant %v", got, wantPUs)
	}
	if got := nodesOf(m); !eqInts(got, wantNodes) {
		t.Fatalf("nodes = %v\nwant %v", got, wantNodes)
	}
	if m.Oversubscribed() {
		t.Fatal("24 ranks on 24 PUs must not oversubscribe")
	}
	if m.Sweeps != 1 {
		t.Fatalf("sweeps = %d", m.Sweeps)
	}
	// Every PU used exactly once.
	seen := hw.NewCPUSet()
	for _, p := range m.Placements {
		if p.Node == 0 {
			seen.Set(p.PU())
		}
	}
	if seen.Count() != 12 {
		t.Fatalf("node0 distinct PUs = %d", seen.Count())
	}
}

func TestBySlotAndByNodeLayouts(t *testing.T) {
	c := fig2Cluster(t, 2)
	// Pack: cores innermost, then sockets, then node: csnh fills node0's
	// first threads 0,2,4,6,8,10 before node1.
	pack := mustMap(t, c, "csnh", Options{}, 6)
	if got := nodesOf(pack); !eqInts(got, []int{0, 0, 0, 0, 0, 0}) {
		t.Fatalf("pack nodes = %v", got)
	}
	if got := pusOf(pack); !eqInts(got, []int{0, 2, 4, 6, 8, 10}) {
		t.Fatalf("pack PUs = %v", got)
	}
	// Cycle: node innermost: ncsh alternates nodes rank by rank.
	cyc := mustMap(t, c, "ncsh", Options{}, 6)
	if got := nodesOf(cyc); !eqInts(got, []int{0, 1, 0, 1, 0, 1}) {
		t.Fatalf("cycle nodes = %v", got)
	}
}

func TestMapWithoutHWThreadLevel(t *testing.T) {
	// Layout "scn": PU level pruned, ranks map to cores; two ranks per core
	// are possible without oversubscription because each core has 2 PUs.
	c := fig2Cluster(t, 1)
	m := mustMap(t, c, "scn", Options{}, 12)
	if m.Oversubscribed() {
		t.Fatal("12 ranks on 12 PUs (6 dual-thread cores) should not oversubscribe")
	}
	if m.Sweeps != 2 {
		t.Fatalf("sweeps = %d, want 2 (each core visited twice)", m.Sweeps)
	}
	// Ranks 0 and 6 share core 0 but use distinct threads.
	if m.Placements[0].Leaf != m.Placements[6].Leaf {
		t.Fatal("ranks 0 and 6 should share core 0")
	}
	if m.Placements[0].PU() == m.Placements[6].PU() {
		t.Fatal("ranks 0 and 6 must use distinct PUs")
	}
	if m.Placements[0].Leaf.Level != hw.LevelCore {
		t.Fatalf("leaf level = %s, want core", m.Placements[0].Leaf.Level)
	}
}

func TestOversubscriptionDisallowed(t *testing.T) {
	c := fig2Cluster(t, 1) // 12 PUs
	m, err := NewMapper(c, MustParseLayout("scbnh"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Map(13); !errors.Is(err, ErrOversubscribe) {
		t.Fatalf("want ErrOversubscribe, got %v", err)
	}
	// Exactly capacity is fine.
	if _, err := m.Map(12); err != nil {
		t.Fatal(err)
	}
}

func TestOversubscriptionAllowed(t *testing.T) {
	c := fig2Cluster(t, 1)
	m := mustMap(t, c, "scbnh", Options{Oversubscribe: true}, 15)
	if !m.Oversubscribed() {
		t.Fatal("15 ranks on 12 PUs must oversubscribe")
	}
	over := 0
	for _, p := range m.Placements {
		if p.Oversubscribed {
			over++
		}
	}
	if over != 3 {
		t.Fatalf("oversubscribed ranks = %d, want 3", over)
	}
	if m.Sweeps != 2 {
		t.Fatalf("sweeps = %d", m.Sweeps)
	}
}

func TestUnavailableResourcesSkipped(t *testing.T) {
	c := fig2Cluster(t, 2)
	// Off-line socket 1 of node 0 (6 PUs gone; 18 remain).
	c.Node(0).Topo.SetAvailable(hw.LevelSocket, 1, false)
	m := mustMap(t, c, "scbnh", Options{}, 18)
	for _, p := range m.Placements {
		if p.Node == 0 && p.Leaf.Ancestor(hw.LevelSocket).Logical == 1 {
			t.Fatalf("rank %d mapped to offline socket", p.Rank)
		}
	}
	// node0 only contributes 6 PUs.
	perNode := m.RanksByNode()
	if len(perNode[0]) != 6 || len(perNode[1]) != 12 {
		t.Fatalf("ranks per node = %d/%d", len(perNode[0]), len(perNode[1]))
	}
}

func TestSchedulerRestrictionSkipped(t *testing.T) {
	c := fig2Cluster(t, 1)
	c.Node(0).Topo.Restrict(hw.CPUSetRange(0, 5)) // socket 0 only
	m := mustMap(t, c, "scbnh", Options{}, 6)
	for _, p := range m.Placements {
		if p.PU() > 5 {
			t.Fatalf("rank %d escaped restriction to PU %d", p.Rank, p.PU())
		}
	}
	mm, _ := NewMapper(c, MustParseLayout("scbnh"), Options{})
	if _, err := mm.Map(7); !errors.Is(err, ErrOversubscribe) {
		t.Fatalf("want ErrOversubscribe, got %v", err)
	}
}

func TestAllOfflineIsNoResources(t *testing.T) {
	c := fig2Cluster(t, 1)
	c.Node(0).Topo.SetAvailable(hw.LevelBoard, 0, false)
	m, _ := NewMapper(c, MustParseLayout("scbnh"), Options{})
	if _, err := m.Map(1); !errors.Is(err, ErrNoResources) {
		t.Fatalf("want ErrNoResources, got %v", err)
	}
}

func TestHeterogeneousMapping(t *testing.T) {
	big, _ := hw.Preset("nehalem-ep") // 2s x 4c x 2t = 16 PUs
	small, _ := hw.Preset("bgp-node") // 1s x 4c x 1t = 4 PUs
	c := cluster.FromSpecs(big, small)
	// Socket-scatter across both nodes; the maximal tree has width 2 at
	// sockets and 2 at PU, but node1 only has socket 0 / thread 0 —
	// those coordinates are skipped, not errors.
	m := mustMap(t, c, "scnh", Options{}, 20)
	perNode := m.RanksByNode()
	if len(perNode[0]) != 16 || len(perNode[1]) != 4 {
		t.Fatalf("ranks per node = %d/%d", len(perNode[0]), len(perNode[1]))
	}
	if m.Oversubscribed() {
		t.Fatal("20 ranks on 20 PUs")
	}
	// node1 ranks sit only on its existing coordinates.
	for _, p := range m.Placements {
		if p.Node == 1 && p.Coords[hw.LevelSocket] != 0 {
			t.Fatalf("rank %d on nonexistent socket %d of node1", p.Rank, p.Coords[hw.LevelSocket])
		}
	}
}

func TestPrunedRenumberingAcrossBoards(t *testing.T) {
	sp, _ := hw.Preset("dual-board") // 2 boards x 2 sockets x 2 cores x 2 PUs
	c := cluster.FromSpecs(sp)
	// Boards pruned: "sn" iterates 4 renumbered sockets.
	m := mustMap(t, c, "scnh", Options{}, 4)
	socketsSeen := map[int]bool{}
	for _, p := range m.Placements {
		socketsSeen[p.Coords[hw.LevelSocket]] = true
	}
	for i := 0; i < 4; i++ {
		if !socketsSeen[i] {
			t.Fatalf("renumbered socket %d never used: %v", i, socketsSeen)
		}
	}
}

func TestPEsPerProc(t *testing.T) {
	c := fig2Cluster(t, 2)
	m := mustMap(t, c, "scn", Options{PEsPerProc: 2}, 12)
	for _, p := range m.Placements {
		if len(p.PUs) != 2 {
			t.Fatalf("rank %d claims %d PUs", p.Rank, len(p.PUs))
		}
		if p.PUs[0] == p.PUs[1] {
			t.Fatalf("rank %d claims duplicate PUs", p.Rank)
		}
		if p.Oversubscribed {
			t.Fatalf("rank %d oversubscribed", p.Rank)
		}
	}
	// 12 ranks x 2 PEs = 24 PUs = all PUs, each exactly once.
	claimed := map[[2]int]bool{}
	for _, p := range m.Placements {
		for _, pu := range p.PUs {
			k := [2]int{p.Node, pu}
			if claimed[k] {
				t.Fatalf("PU %v claimed twice", k)
			}
			claimed[k] = true
		}
	}
	// A 13th rank would need to share.
	mm, _ := NewMapper(c, MustParseLayout("scn"), Options{PEsPerProc: 2})
	if _, err := mm.Map(13); !errors.Is(err, ErrOversubscribe) {
		t.Fatalf("want ErrOversubscribe, got %v", err)
	}
}

func TestPEsLargerThanLeafSkips(t *testing.T) {
	// pe=4 with PU-level leaves (1 PU each) can never fit without
	// oversubscription.
	c := fig2Cluster(t, 1)
	m, _ := NewMapper(c, MustParseLayout("scbnh"), Options{PEsPerProc: 4})
	if _, err := m.Map(1); !errors.Is(err, ErrOversubscribe) {
		t.Fatalf("want ErrOversubscribe, got %v", err)
	}
	// With socket leaves (6 PUs) pe=4 fits one rank per socket.
	ms := mustMap(t, c, "sn", Options{PEsPerProc: 4}, 2)
	for _, p := range ms.Placements {
		if len(p.PUs) != 4 || p.Oversubscribed {
			t.Fatalf("socket rank: %+v", p)
		}
	}
}

func TestMaxPerResourceCaps(t *testing.T) {
	c := fig2Cluster(t, 2)
	// At most 2 ranks per node.
	m := mustMap(t, c, "scbnh", Options{
		MaxPerResource: map[hw.Level]int{hw.LevelMachine: 2},
	}, 4)
	perNode := m.RanksByNode()
	if len(perNode[0]) != 2 || len(perNode[1]) != 2 {
		t.Fatalf("node cap violated: %v", perNode)
	}
	// Cap exhausted: 5th rank cannot be placed anywhere.
	mm, _ := NewMapper(c, MustParseLayout("scbnh"), Options{
		MaxPerResource: map[hw.Level]int{hw.LevelMachine: 2},
	})
	if _, err := mm.Map(5); !errors.Is(err, ErrNoResources) {
		t.Fatalf("want ErrNoResources, got %v", err)
	}
	// At most 1 rank per socket.
	ms := mustMap(t, c, "scbnh", Options{
		MaxPerResource: map[hw.Level]int{hw.LevelSocket: 1},
	}, 4)
	seen := map[*hw.Object]int{}
	for _, p := range ms.Placements {
		seen[p.Leaf.Ancestor(hw.LevelSocket)]++
	}
	for s, n := range seen {
		if n > 1 {
			t.Fatalf("socket %v has %d ranks", s, n)
		}
	}
}

func TestCustomIterationOrder(t *testing.T) {
	c := fig2Cluster(t, 1)
	m := mustMap(t, c, "scbnh", Options{
		IterOrder: map[hw.Level]IterOrder{hw.LevelSocket: ReverseOrder},
	}, 2)
	// Reverse socket order: rank 0 lands on socket 1 first.
	if m.Placements[0].Coords[hw.LevelSocket] != 1 || m.Placements[1].Coords[hw.LevelSocket] != 0 {
		t.Fatalf("reverse order ignored: %v %v",
			m.Placements[0].Coords, m.Placements[1].Coords)
	}
	// Invalid custom order errors out.
	bad := func(width int) []int { return make([]int, width) } // all zeros
	mm, _ := NewMapper(c, MustParseLayout("scbnh"), Options{
		IterOrder: map[hw.Level]IterOrder{hw.LevelCore: bad},
	})
	if _, err := mm.Map(1); err == nil {
		t.Fatal("invalid iteration order should fail")
	}
	short := func(width int) []int { return []int{0} }
	mm2, _ := NewMapper(c, MustParseLayout("scbnh"), Options{
		IterOrder: map[hw.Level]IterOrder{hw.LevelCore: short},
	})
	if _, err := mm2.Map(1); err == nil {
		t.Fatal("short iteration order should fail")
	}
}

func TestMapperValidation(t *testing.T) {
	c := fig2Cluster(t, 1)
	if _, err := NewMapper(nil, MustParseLayout("n"), Options{}); err == nil {
		t.Fatal("nil cluster")
	}
	if _, err := NewMapper(&cluster.Cluster{}, MustParseLayout("n"), Options{}); err == nil {
		t.Fatal("empty cluster")
	}
	if _, err := NewMapper(c, MustParseLayout("sc"), Options{}); err == nil {
		t.Fatal("layout without n must be rejected")
	}
	m, _ := NewMapper(c, MustParseLayout("scbnh"), Options{})
	if _, err := m.Map(0); err == nil {
		t.Fatal("np=0")
	}
	if _, err := m.Map(-3); err == nil {
		t.Fatal("np<0")
	}
}

func TestNodeOnlyLayout(t *testing.T) {
	// Layout "n": no intra levels; each node is one leaf (the machine),
	// holding all its PUs.
	c := fig2Cluster(t, 2)
	m := mustMap(t, c, "n", Options{}, 4)
	if got := nodesOf(m); !eqInts(got, []int{0, 1, 0, 1}) {
		t.Fatalf("nodes = %v", got)
	}
	if m.Placements[0].Leaf.Level != hw.LevelMachine {
		t.Fatal("leaf should be the machine")
	}
	// Ranks 0 and 2 share node 0 but not a PU.
	if m.Placements[0].PU() == m.Placements[2].PU() {
		t.Fatal("distinct PUs expected")
	}
}

func TestMapRendering(t *testing.T) {
	c := fig2Cluster(t, 2)
	m := mustMap(t, c, "scbnh", Options{}, 24)
	r := m.Render()
	if !strings.Contains(r, "rank") || !strings.Contains(r, "node1") {
		t.Fatalf("Render:\n%s", r)
	}
	byNode := m.RenderByNode(c)
	for _, want := range []string{"node0:", "socket 1:", "core 5:", "h0:", "h1:"} {
		if !strings.Contains(byNode, want) {
			t.Fatalf("RenderByNode missing %q:\n%s", want, byNode)
		}
	}
	if m.NodeOf(0) != 0 || m.NodeOf(99) != -1 {
		t.Fatal("NodeOf wrong")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	c := fig2Cluster(t, 1)
	m := mustMap(t, c, "scbnh", Options{}, 4)

	bad := *m
	bad.Placements = append([]Placement(nil), m.Placements...)
	bad.Placements[2].Rank = 7
	if bad.Validate(c) == nil {
		t.Fatal("rank corruption undetected")
	}

	bad2 := *m
	bad2.Placements = append([]Placement(nil), m.Placements...)
	bad2.Placements[0].Node = 9
	if bad2.Validate(c) == nil {
		t.Fatal("node corruption undetected")
	}

	bad3 := *m
	bad3.Placements = append([]Placement(nil), m.Placements...)
	bad3.Placements[0].PUs = nil
	if bad3.Validate(c) == nil {
		t.Fatal("empty PU claim undetected")
	}

	bad4 := *m
	bad4.Placements = append([]Placement(nil), m.Placements...)
	bad4.Placements[0].PUs = []int{99}
	if bad4.Validate(c) == nil {
		t.Fatal("missing PU undetected")
	}

	bad5 := *m
	bad5.Placements = append([]Placement(nil), m.Placements...)
	bad5.Placements[0].Oversubscribed = true
	if bad5.Validate(c) == nil {
		t.Fatal("bogus oversubscription flag undetected")
	}

	// Claimed but unusable PU.
	c2 := fig2Cluster(t, 1)
	m2 := mustMap(t, c2, "scbnh", Options{}, 4)
	c2.Node(0).Topo.Restrict(hw.NewCPUSet(11))
	if m2.Validate(c2) == nil {
		t.Fatal("unusable PU claim undetected")
	}
}

func TestPlacementPUEmpty(t *testing.T) {
	p := Placement{}
	if p.PU() != -1 {
		t.Fatal("empty placement PU should be -1")
	}
}

func TestRespectSlots(t *testing.T) {
	c := fig2Cluster(t, 2)
	c.Node(0).Slots = 2
	c.Node(1).Slots = 3
	m := mustMap(t, c, "csbnh", Options{RespectSlots: true}, 5)
	per := m.RanksByNode()
	if len(per[0]) != 2 || len(per[1]) != 3 {
		t.Fatalf("per node = %d/%d, want 2/3", len(per[0]), len(per[1]))
	}
	// A 6th rank exceeds total slots.
	mm, _ := NewMapper(c, MustParseLayout("csbnh"), Options{RespectSlots: true})
	if _, err := mm.Map(6); !errors.Is(err, ErrOversubscribe) {
		t.Fatalf("want ErrOversubscribe, got %v", err)
	}
	// --oversubscribe lifts the slot cap (Open MPI semantics).
	mo := mustMap(t, c, "csbnh", Options{RespectSlots: true, Oversubscribe: true}, 6)
	if mo.NumRanks() != 6 {
		t.Fatal("oversubscribe should lift slot caps")
	}
	// Default slots = usable cores: fig2 node has 6 cores.
	c2 := fig2Cluster(t, 1)
	m2 := mustMap(t, c2, "csbnh", Options{RespectSlots: true}, 6)
	if m2.NumRanks() != 6 {
		t.Fatal("default slots should be core count")
	}
	mm2, _ := NewMapper(c2, MustParseLayout("csbnh"), Options{RespectSlots: true})
	if _, err := mm2.Map(7); !errors.Is(err, ErrOversubscribe) {
		t.Fatal("7th rank should exceed 6 default slots")
	}
}
