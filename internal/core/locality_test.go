package core

import (
	"math/rand"
	"testing"

	"lama/internal/cluster"
	"lama/internal/hw"
)

func localityMap(t *testing.T, c *cluster.Cluster, np int) *Map {
	t.Helper()
	mapper, err := NewMapper(c, MustParseLayout("csbnh"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := mapper.Map(np)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func swapTestPlacements(m *Map, a, b int) {
	pa, pb := &m.Placements[a], &m.Placements[b]
	*pa, *pb = *pb, *pa
	pa.Rank, pb.Rank = a, b
}

// TestLocalityTallyMatchesFull pins NewLocalityTally to NeighborLocality
// (which now delegates to it) and the swap delta to a full recompute
// after actually swapping: the integer state must track exactly, so
// comparisons are ==, not approximate.
func TestLocalityTallyMatchesFull(t *testing.T) {
	sp, _ := hw.Preset("fig2")
	c := cluster.Homogeneous(4, sp)
	m := localityMap(t, c, 40)

	tally := NewLocalityTally(c, m)
	if got, want := tally.Value(), NeighborLocality(c, m); got != want {
		t.Fatalf("tally %v, NeighborLocality %v", got, want)
	}

	r := rand.New(rand.NewSource(11))
	for step := 0; step < 200; step++ {
		a, b := r.Intn(40), r.Intn(40)
		dd, dp := LocalitySwapDelta(c, m, a, b)
		after := tally.AfterSwap(dd, dp)
		swapTestPlacements(m, a, b)
		tally.Apply(dd, dp)
		full := NewLocalityTally(c, m)
		if tally != full {
			t.Fatalf("step %d swap(%d,%d): tally %+v, full %+v", step, a, b, tally, full)
		}
		if after != full.Value() {
			t.Fatalf("step %d: AfterSwap %v, value %v", step, after, full.Value())
		}
	}
}

func TestLocalitySwapDeltaSelf(t *testing.T) {
	sp, _ := hw.Preset("fig2")
	c := cluster.Homogeneous(2, sp)
	m := localityMap(t, c, 12)
	if dd, dp := LocalitySwapDelta(c, m, 5, 5); dd != 0 || dp != 0 {
		t.Fatalf("self swap delta (%d,%d)", dd, dp)
	}
}

// TestLocalitySwapDeltaAdjacent covers the overlap case: swapping
// consecutive ranks, where the candidate pair set contains duplicates
// that must be deduplicated, and the swapped ranks appear inside the
// affected pairs themselves.
func TestLocalitySwapDeltaAdjacent(t *testing.T) {
	sp, _ := hw.Preset("fig2")
	c := cluster.Homogeneous(3, sp)
	m := localityMap(t, c, 30)
	for a := 0; a < 29; a++ {
		tally := NewLocalityTally(c, m)
		dd, dp := LocalitySwapDelta(c, m, a, a+1)
		swapTestPlacements(m, a, a+1)
		full := NewLocalityTally(c, m)
		swapTestPlacements(m, a, a+1)
		if got := (LocalityTally{tally.DepthSum + dd, tally.Pairs + dp}); got != full {
			t.Fatalf("adjacent swap at %d: delta gives %+v, full %+v", a, got, full)
		}
	}
}
