package core

import (
	"context"
	"fmt"
	"strings"
	"time"

	"lama/internal/hw"
	"lama/internal/obs"
)

// TraceAction classifies what the mapping iteration did at one coordinate.
type TraceAction int

const (
	// Mapped: a rank was placed at the coordinate.
	Mapped TraceAction = iota
	// SkipNonexistent: the coordinate does not exist on the node (maximal
	// tree wider than the node's actual topology).
	SkipNonexistent
	// SkipUnavailable: the resource exists but is off-lined/disallowed.
	SkipUnavailable
	// SkipOversub: placing would oversubscribe and that is disallowed.
	SkipOversub
	// SkipCapped: an ALPS-style per-resource cap or the node slot cap was
	// reached.
	SkipCapped
)

// String names the action.
func (a TraceAction) String() string {
	switch a {
	case Mapped:
		return "mapped"
	case SkipNonexistent:
		return "skip-nonexistent"
	case SkipUnavailable:
		return "skip-unavailable"
	case SkipOversub:
		return "skip-oversubscribe"
	case SkipCapped:
		return "skip-capped"
	default:
		return fmt.Sprintf("action(%d)", int(a))
	}
}

// TraceEvent is one coordinate visit during mapping.
type TraceEvent struct {
	// Coords is the visited iteration coordinate per layout level, -1 for
	// levels absent from the layout. (A CoordVector, not a map: enabling
	// tracing must not reintroduce a per-coordinate map allocation into
	// the visited-coordinate path.)
	Coords CoordVector
	// Action says what happened there.
	Action TraceAction
	// Rank is the placed rank for Mapped events, -1 otherwise.
	Rank int
	// Sweep is the 0-based resource-space sweep number.
	Sweep int
}

// String renders the event like "sweep 0 s=1 c=0 n=0 h=0 -> mapped rank 1".
func (e TraceEvent) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "sweep %d ", e.Sweep)
	for _, l := range hw.Levels {
		if e.Coords[l] >= 0 {
			fmt.Fprintf(&sb, "%s=%d ", l.Abbrev(), e.Coords[l])
		}
	}
	fmt.Fprintf(&sb, "-> %s", e.Action)
	if e.Action == Mapped {
		fmt.Fprintf(&sb, " rank %d", e.Rank)
	}
	return sb.String()
}

// MapTraced is Map with an iteration trace: it records what happened at
// every visited coordinate (up to maxEvents; 0 means unlimited), which
// makes layout behaviour on heterogeneous or restricted systems
// inspectable ("why did rank 7 land there?"). With an Observer in the
// options every visit additionally streams to the event sink as a
// "map"/"visit" event — the sink is NOT bounded by maxEvents, which only
// caps the returned slice.
func (m *Mapper) MapTraced(np, maxEvents int) (*Map, []TraceEvent, error) {
	return m.MapTracedContext(context.Background(), np, maxEvents)
}

// MapTracedContext is MapTraced with cooperative cancellation, checked at
// sweep boundaries exactly like Mapper.MapContext.
func (m *Mapper) MapTracedContext(ctx context.Context, np, maxEvents int) (*Map, []TraceEvent, error) {
	o := m.Opts.Obs
	var t0 time.Time
	if o != nil {
		t0 = time.Now() //lama:nondet-ok latency observability only, never reaches mapping output
	}
	endPlace := o.StartSpan(obs.SpanPlace)
	r, err := m.ensure(np)
	if err != nil {
		endPlace()
		return nil, nil, err
	}
	var events []TraceEvent
	emitVisits := o.Enabled()
	r.trace = func(action TraceAction, rank int) {
		coords := NoCoords()
		for i, l := range r.iterLevels {
			coords[l] = r.coords[i]
		}
		if emitVisits {
			o.Emit(obs.SrcMap, obs.EvVisit, obs.NoStep,
				obs.F("sweep", r.sweeps),
				obs.F("coords", coords.String()),
				obs.F("action", action.String()),
				obs.F("rank", rank))
		}
		if maxEvents > 0 && len(events) >= maxEvents {
			return
		}
		events = append(events, TraceEvent{
			Coords: coords, Action: action, Rank: rank, Sweep: r.sweeps,
		})
	}
	defer func() { r.trace = nil }()
	for len(r.placements) < np {
		if ctx.Err() != nil {
			endPlace()
			return nil, events, mapCanceled(ctx, np, len(r.placements))
		}
		before := len(r.placements)
		endSweep := o.StartSpan(obs.SpanSweep)
		r.inner(m, len(r.iterLevels)-1)
		endSweep()
		r.sweeps++
		if len(r.placements) == before {
			err := stallError(m.Layout, np, len(r.placements), r.skippedOversub)
			endPlace()
			m.observeStall(o, np, len(r.placements), err)
			return nil, events, err
		}
	}
	out := r.finish(m)
	endPlace()
	m.observeDone(o, np, out, t0)
	return out, events, nil
}
