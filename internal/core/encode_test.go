package core

import (
	"encoding/json"
	"strings"
	"testing"

	"lama/internal/hw"
)

func TestMapJSONRoundTrip(t *testing.T) {
	c := fig2Cluster(t, 2)
	m := mustMap(t, c, "scbnh", Options{}, 24)
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeMap(data, c)
	if err != nil {
		t.Fatal(err)
	}
	if back.Layout.String() != "scbnh" || back.Sweeps != m.Sweeps {
		t.Fatalf("metadata lost: %+v", back)
	}
	for i := range m.Placements {
		a, b := &m.Placements[i], &back.Placements[i]
		if a.Node != b.Node || a.PU() != b.PU() || a.NodeName != b.NodeName {
			t.Fatalf("rank %d differs", i)
		}
		if a.Leaf != b.Leaf {
			t.Fatalf("rank %d leaf not re-resolved to the same object", i)
		}
		if a.Coords[hw.LevelSocket] != b.Coords[hw.LevelSocket] {
			t.Fatalf("rank %d coords lost", i)
		}
	}
}

func TestMapJSONOversubscribedRoundTrip(t *testing.T) {
	c := fig2Cluster(t, 1)
	m := mustMap(t, c, "scbnh", Options{Oversubscribe: true}, 15)
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeMap(data, c)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Oversubscribed() {
		t.Fatal("oversubscription flags lost")
	}
}

func TestDecodeMapErrors(t *testing.T) {
	c := fig2Cluster(t, 1)
	m := mustMap(t, c, "scbnh", Options{}, 2)
	good, _ := json.Marshal(m)

	cases := map[string]string{
		"not json":   "{",
		"bad layout": strings.Replace(string(good), `"layout":"scbnh"`, `"layout":"zz"`, 1),
		"bad node":   strings.Replace(string(good), `"node":0`, `"node":7`, 1),
		"bad level":  strings.Replace(string(good), `"leafLevel":"pu"`, `"leafLevel":"warp"`, 1),
		"bad coords": strings.Replace(string(good), `"s":0`, `"Z":0`, 1),
	}
	for name, text := range cases {
		if text == string(good) {
			t.Fatalf("%s: replacement did not apply", name)
		}
		if _, err := DecodeMap([]byte(text), c); err == nil {
			t.Errorf("%s: decode should fail", name)
		}
	}

	// Leaf missing on a *different* cluster shape.
	small, _ := hw.Preset("bgp-node")
	other := fig2Cluster(t, 1)
	other.Nodes[0].Topo = hw.New(small)
	if _, err := DecodeMap(good, other); err == nil {
		t.Error("decode against mismatched cluster should fail")
	}
}
