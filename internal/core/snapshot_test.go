package core

import (
	"testing"

	"lama/internal/cluster"
	"lama/internal/hw"
)

// These tests pin the copy-on-write contract between cluster.Snapshot and
// the dense-tree caches: deriving a snapshot by failing one node must split
// ONLY that node's view, while every healthy ShapeSig twin keeps both its
// cached *prunedShape and its cached *nodeView pointers (the PR-9 fix for
// FailNode double-invalidating shared shapes).

func nehalem(t *testing.T) hw.Spec {
	t.Helper()
	sp, ok := hw.Preset("nehalem-ep")
	if !ok {
		t.Fatal("preset missing")
	}
	return sp
}

func TestSnapshotTwinsKeepCachedShapeAndViews(t *testing.T) {
	s1 := cluster.SnapshotOf(cluster.Homogeneous(4, nehalem(t)))
	layout := MustParseLayout("csbnh")
	intra := layout.IntraNode()

	t1 := newDenseTree(s1.Cluster(), intra)
	s2, ok := s1.FailNode(2)
	if !ok {
		t.Fatal("FailNode failed")
	}
	t2 := newDenseTree(s2.Cluster(), intra)

	for i := 0; i < 4; i++ {
		if i == 2 {
			if t1.views[i] == t2.views[i] {
				t.Fatal("failed node must get a fresh view")
			}
		} else if t1.views[i] != t2.views[i] {
			t.Fatalf("healthy twin %d lost its cached view across the snapshot", i)
		}
		// The availability-independent pruned shape is shared by every
		// node of the homogeneous cluster — including the failed one —
		// across both snapshots.
		if t1.views[i].shape != t1.views[0].shape || t2.views[i].shape != t1.views[0].shape {
			t.Fatalf("node %d does not share the pruned shape", i)
		}
	}
}

func TestFreshForDetectsSnapshotSwapByIdentity(t *testing.T) {
	s1 := cluster.SnapshotOf(cluster.Homogeneous(4, nehalem(t)))
	layout := MustParseLayout("csbnh")

	m := &Mapper{Cluster: s1.Cluster(), Layout: layout}
	mp1, err := m.Map(48)
	if err != nil {
		t.Fatal(err)
	}

	// Derive a sibling snapshot with node 1 failed. The clone's topology
	// generation can collide with the cached one, so freshness must hinge
	// on topology identity, not generation counters alone.
	s2, _ := s1.FailNode(1)
	if !m.state.tree.freshFor(s1.Cluster()) {
		t.Fatal("tree must stay fresh for the snapshot it was built from")
	}
	if m.state.tree.freshFor(s2.Cluster()) {
		t.Fatal("tree must go stale when re-pointed at a sibling snapshot")
	}

	m.Cluster = s2.Cluster()
	mp2, err := m.Map(48)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range mp2.Placements {
		if p.Node == 1 {
			t.Fatalf("rank %d placed on the failed node via a stale view", p.Rank)
		}
	}
	// Sanity: the first map did use node 1.
	used := false
	for _, p := range mp1.Placements {
		if p.Node == 1 {
			used = true
		}
	}
	if !used {
		t.Fatal("baseline map should have used node 1")
	}
}
