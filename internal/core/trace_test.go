package core

import (
	"strings"
	"testing"

	"lama/internal/cluster"
	"lama/internal/hw"
	"lama/internal/obs"
)

func TestMapTracedMatchesMap(t *testing.T) {
	c := fig2Cluster(t, 2)
	mapper, _ := NewMapper(c, MustParseLayout("scbnh"), Options{})
	plain, err := mapper.Map(24)
	if err != nil {
		t.Fatal(err)
	}
	traced, events, err := mapper.MapTraced(24, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !sameMaps(plain, traced) {
		t.Fatal("traced map differs from plain map")
	}
	// 24 mapped events in rank order, no skips on a full regular machine.
	mapped := 0
	for _, e := range events {
		if e.Action == Mapped {
			if e.Rank != mapped {
				t.Fatalf("mapped ranks out of order: %v", e)
			}
			mapped++
		} else {
			t.Fatalf("unexpected skip on regular machine: %v", e)
		}
	}
	if mapped != 24 {
		t.Fatalf("mapped events = %d", mapped)
	}
}

func TestMapTracedSkipReasons(t *testing.T) {
	big, _ := hw.Preset("nehalem-ep")
	small, _ := hw.Preset("bgp-node")
	c := cluster.FromSpecs(big, small)
	c.Node(0).Topo.SetAvailable(hw.LevelCore, 0, false)
	mapper, _ := NewMapper(c, MustParseLayout("scnh"), Options{})
	_, events, err := mapper.MapTraced(18, 0)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[TraceAction]int{}
	for _, e := range events {
		seen[e.Action]++
	}
	if seen[SkipNonexistent] == 0 {
		t.Fatalf("expected skip-nonexistent on heterogeneous cluster: %v", seen)
	}
	if seen[SkipUnavailable] == 0 {
		t.Fatalf("expected skip-unavailable with an offline core: %v", seen)
	}
	if seen[Mapped] != 18 {
		t.Fatalf("mapped = %d", seen[Mapped])
	}
}

func TestMapTracedOversubAndCaps(t *testing.T) {
	c := fig2Cluster(t, 1)
	m1, _ := NewMapper(c, MustParseLayout("scbnh"), Options{})
	if _, events, err := m1.MapTraced(13, 0); err == nil {
		t.Fatal("should fail")
	} else {
		found := false
		for _, e := range events {
			if e.Action == SkipOversub {
				found = true
			}
		}
		if !found {
			t.Fatal("no skip-oversubscribe events recorded")
		}
	}
	m2, _ := NewMapper(c, MustParseLayout("scbnh"),
		Options{MaxPerResource: map[hw.Level]int{hw.LevelSocket: 1}})
	_, events, err := m2.MapTraced(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	_ = events
	m3, _ := NewMapper(c, MustParseLayout("scbnh"),
		Options{MaxPerResource: map[hw.Level]int{hw.LevelMachine: 1}})
	if _, events, err := m3.MapTraced(2, 0); err == nil {
		t.Fatal("node cap should stall")
	} else {
		capped := 0
		for _, e := range events {
			if e.Action == SkipCapped {
				capped++
			}
		}
		if capped == 0 {
			t.Fatal("no skip-capped events")
		}
	}
}

func TestMapTracedEventLimit(t *testing.T) {
	c := fig2Cluster(t, 2)
	mapper, _ := NewMapper(c, MustParseLayout("scbnh"), Options{})
	_, events, err := mapper.MapTraced(24, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 5 {
		t.Fatalf("events = %d, want 5", len(events))
	}
}

func TestTraceEventString(t *testing.T) {
	coords := NoCoords()
	coords.Set(hw.LevelSocket, 1)
	coords.Set(hw.LevelMachine, 0)
	e := TraceEvent{Coords: coords, Action: Mapped, Rank: 3, Sweep: 0}
	// The exact rendering predates the CoordVector conversion: canonical
	// level order, "sweep N" prefix, "-> action [rank R]" suffix.
	if got, want := e.String(), "sweep 0 n=0 s=1 -> mapped rank 3"; got != want {
		t.Fatalf("event string %q, want %q", got, want)
	}
	skip := TraceEvent{Coords: NoCoords(), Action: SkipUnavailable, Rank: -1}
	if got, want := skip.String(), "sweep 0 -> skip-unavailable"; got != want {
		t.Fatalf("skip string %q, want %q", got, want)
	}
	if !strings.HasPrefix(TraceAction(9).String(), "action(") {
		t.Fatal("unknown action")
	}
}

// TestMapTracedAllocations pins the satellite claim of the CoordVector
// conversion: tracing no longer allocates a map per visited coordinate.
// Per-visit cost is now just the amortized events-slice growth, so a
// traced run of np ranks stays within a small constant plus the slice
// doublings rather than one-map-per-event.
func TestMapTracedAllocations(t *testing.T) {
	c := fig2Cluster(t, 2)
	mapper, _ := NewMapper(c, MustParseLayout("scbnh"), Options{})
	if _, _, err := mapper.MapTraced(24, 0); err != nil { // warm reusable state
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, _, err := mapper.MapTraced(24, 0); err != nil {
			t.Fatal(err)
		}
	})
	// 24 visits: a map per visit would cost >= 24 allocations on its own.
	if allocs > 16 {
		t.Errorf("MapTraced(24) allocates %.0f objects/run, want <= 16", allocs)
	}
}

// TestMapTracedEmitsToSink checks the tentpole wiring: with an Observer in
// the options, every visited coordinate streams to the event sink and the
// run closes with a map/done event, regardless of the maxEvents cap on
// the returned slice.
func TestMapTracedEmitsToSink(t *testing.T) {
	c := fig2Cluster(t, 2)
	sink := obs.NewMemorySink()
	o := &obs.Observer{Sink: sink, Clock: func() int64 { return 0 }}
	mapper, _ := NewMapper(c, MustParseLayout("scbnh"), Options{Obs: o})
	_, events, err := mapper.MapTraced(24, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 5 {
		t.Fatalf("returned events = %d, want capped 5", len(events))
	}
	visits, done := 0, 0
	for _, e := range sink.Events() {
		switch e.Source + "/" + e.Name {
		case "map/visit":
			visits++
		case "map/done":
			done++
		}
	}
	if visits != 24 || done != 1 {
		t.Fatalf("sink saw %d visits, %d done; want 24, 1", visits, done)
	}
}
