package core

import (
	"strings"
	"testing"

	"lama/internal/cluster"
	"lama/internal/hw"
)

func TestMapTracedMatchesMap(t *testing.T) {
	c := fig2Cluster(t, 2)
	mapper, _ := NewMapper(c, MustParseLayout("scbnh"), Options{})
	plain, err := mapper.Map(24)
	if err != nil {
		t.Fatal(err)
	}
	traced, events, err := mapper.MapTraced(24, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !sameMaps(plain, traced) {
		t.Fatal("traced map differs from plain map")
	}
	// 24 mapped events in rank order, no skips on a full regular machine.
	mapped := 0
	for _, e := range events {
		if e.Action == Mapped {
			if e.Rank != mapped {
				t.Fatalf("mapped ranks out of order: %v", e)
			}
			mapped++
		} else {
			t.Fatalf("unexpected skip on regular machine: %v", e)
		}
	}
	if mapped != 24 {
		t.Fatalf("mapped events = %d", mapped)
	}
}

func TestMapTracedSkipReasons(t *testing.T) {
	big, _ := hw.Preset("nehalem-ep")
	small, _ := hw.Preset("bgp-node")
	c := cluster.FromSpecs(big, small)
	c.Node(0).Topo.SetAvailable(hw.LevelCore, 0, false)
	mapper, _ := NewMapper(c, MustParseLayout("scnh"), Options{})
	_, events, err := mapper.MapTraced(18, 0)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[TraceAction]int{}
	for _, e := range events {
		seen[e.Action]++
	}
	if seen[SkipNonexistent] == 0 {
		t.Fatalf("expected skip-nonexistent on heterogeneous cluster: %v", seen)
	}
	if seen[SkipUnavailable] == 0 {
		t.Fatalf("expected skip-unavailable with an offline core: %v", seen)
	}
	if seen[Mapped] != 18 {
		t.Fatalf("mapped = %d", seen[Mapped])
	}
}

func TestMapTracedOversubAndCaps(t *testing.T) {
	c := fig2Cluster(t, 1)
	m1, _ := NewMapper(c, MustParseLayout("scbnh"), Options{})
	if _, events, err := m1.MapTraced(13, 0); err == nil {
		t.Fatal("should fail")
	} else {
		found := false
		for _, e := range events {
			if e.Action == SkipOversub {
				found = true
			}
		}
		if !found {
			t.Fatal("no skip-oversubscribe events recorded")
		}
	}
	m2, _ := NewMapper(c, MustParseLayout("scbnh"),
		Options{MaxPerResource: map[hw.Level]int{hw.LevelSocket: 1}})
	_, events, err := m2.MapTraced(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	_ = events
	m3, _ := NewMapper(c, MustParseLayout("scbnh"),
		Options{MaxPerResource: map[hw.Level]int{hw.LevelMachine: 1}})
	if _, events, err := m3.MapTraced(2, 0); err == nil {
		t.Fatal("node cap should stall")
	} else {
		capped := 0
		for _, e := range events {
			if e.Action == SkipCapped {
				capped++
			}
		}
		if capped == 0 {
			t.Fatal("no skip-capped events")
		}
	}
}

func TestMapTracedEventLimit(t *testing.T) {
	c := fig2Cluster(t, 2)
	mapper, _ := NewMapper(c, MustParseLayout("scbnh"), Options{})
	_, events, err := mapper.MapTraced(24, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 5 {
		t.Fatalf("events = %d, want 5", len(events))
	}
}

func TestTraceEventString(t *testing.T) {
	e := TraceEvent{
		Coords: map[hw.Level]int{hw.LevelSocket: 1, hw.LevelMachine: 0},
		Action: Mapped, Rank: 3, Sweep: 0,
	}
	s := e.String()
	for _, want := range []string{"sweep 0", "s=1", "n=0", "mapped rank 3"} {
		if !strings.Contains(s, want) {
			t.Fatalf("event string %q missing %q", s, want)
		}
	}
	skip := TraceEvent{Coords: map[hw.Level]int{}, Action: SkipUnavailable, Rank: -1}
	if !strings.Contains(skip.String(), "skip-unavailable") {
		t.Fatal("skip rendering")
	}
	if !strings.HasPrefix(TraceAction(9).String(), "action(") {
		t.Fatal("unknown action")
	}
}
