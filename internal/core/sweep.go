package core

import (
	"context"
	"fmt"
	"time"

	"lama/internal/cluster"
	"lama/internal/hw"
	"lama/internal/obs"
	"lama/internal/parallel"
)

// SweepLayouts maps np ranks onto one cluster with every given layout,
// fanning the layouts across a bounded worker pool (workers <= 0 means
// GOMAXPROCS). The returned maps are in layout order regardless of
// completion order. Each pool worker reuses a single Mapper across its
// layouts — full-layout permutations share one canonical intra-node level
// set, so the worker's pruned views stay cached and only the cheap
// per-layout iteration state is rebuilt. The first error (by lowest layout
// index) aborts the sweep.
//
// Collecting every map costs memory proportional to len(layouts)*np; for
// very large sweeps (e.g. all 9! full layouts) use SweepEach and reduce on
// the fly.
//
// The context cancels the sweep at per-layout boundaries: in-flight Map
// calls finish their current sweep, queued layouts are skipped, and the
// cancellation error is returned.
func SweepLayouts(ctx context.Context, c *cluster.Cluster, layouts []Layout, np int, opts Options, workers int) ([]*Map, error) {
	out := make([]*Map, len(layouts))
	err := SweepEach(ctx, c, layouts, np, opts, workers, func(i int, m *Map) error {
		out[i] = m
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// SweepEach is the streaming form of SweepLayouts: visit(i, m) is invoked
// exactly once per successfully mapped layout, from the pool's worker
// goroutines, so visit MUST be safe for concurrent use (its results for
// distinct i never interleave for the same worker, but different workers
// call it simultaneously). A visit error counts as that layout's failure.
//
// With an Observer in the options the sweep reports progress: a
// "sweep"/"start" event, one "sweep"/"layout" event per completed layout
// (emitted from the worker goroutines — sinks serialize internally), and
// a "sweep"/"done" event with the total wall time. Each layout's Map call
// additionally instruments itself as usual. Note that per-Map "map" events
// are suppressed inside the sweep (only the "sweep"/"layout" progress
// events and the aggregate metrics are kept) so a 362,880-layout sweep
// does not drown the trace in per-map completions.
func SweepEach(ctx context.Context, c *cluster.Cluster, layouts []Layout, np int, opts Options, workers int,
	visit func(i int, m *Map) error) error {
	if c == nil || c.NumNodes() == 0 {
		return fmt.Errorf("core: empty cluster")
	}
	o := opts.Obs
	workerOpts := opts
	if o.Enabled() {
		// Per-worker options with the sink stripped: metrics and spans
		// still flow, but per-map "done" events give way to the sweep's
		// own per-layout progress events.
		stripped := *o
		stripped.Sink = nil
		workerOpts.Obs = &stripped
	}
	var t0 time.Time
	if o != nil {
		t0 = time.Now() //lama:nondet-ok latency observability only, never reaches mapping output
	}
	workers = parallel.Workers(len(layouts), workers)
	if o.Enabled() {
		o.Emit(obs.SrcSweep, obs.EvStart, obs.NoStep,
			obs.F("layouts", len(layouts)), obs.F("np", np), obs.F("workers", workers))
	}
	mappers := make([]*Mapper, workers)
	err := parallel.ForEachWorker(len(layouts), workers, func(w, i int) error {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("core: sweep canceled before layout %d: %w", i, err)
		}
		layout := layouts[i]
		if !layout.Contains(hw.LevelMachine) {
			return fmt.Errorf("core: layout %q must include the node level 'n'", layout)
		}
		mp := mappers[w]
		if mp == nil {
			mp = &Mapper{Cluster: c, Opts: workerOpts}
			mappers[w] = mp
		}
		mp.Layout = layout
		var mapStart time.Time
		if o.Enabled() {
			mapStart = time.Now() //lama:nondet-ok latency observability only, never reaches mapping output
		}
		m, err := mp.MapContext(ctx, np)
		if err != nil {
			if o.Enabled() {
				o.Emit(obs.SrcSweep, obs.EvLayoutFailed, obs.NoStep,
					obs.F("index", i), obs.F("layout", layout.String()), obs.F("error", err.Error()))
			}
			return fmt.Errorf("core: sweep layout %q: %w", layout, err)
		}
		if o.Enabled() {
			o.Emit(obs.SrcSweep, obs.EvLayout, obs.NoStep,
				obs.F("index", i), obs.F("layout", layout.String()),
				obs.F("placed", len(m.Placements)), obs.F("sweeps", m.Sweeps),
				obs.F("us", float64(time.Since(mapStart))/float64(time.Microsecond))) //lama:nondet-ok latency observability only, never reaches mapping output
		}
		o.Reg().Counter("lama_sweep_layouts_total").Inc()
		return visit(i, m)
	})
	if o != nil {
		us := float64(time.Since(t0)) / float64(time.Microsecond) //lama:nondet-ok latency observability only, never reaches mapping output
		o.Reg().Histogram("lama_sweep_duration_us", obs.LatencyBucketsUs).Observe(us)
		if o.Enabled() {
			fields := []obs.Field{obs.F("layouts", len(layouts)), obs.F("us", us)}
			if err != nil {
				fields = append(fields, obs.F("error", err.Error()))
			}
			o.Emit(obs.SrcSweep, obs.EvDone, obs.NoStep, fields...)
		}
	}
	return err
}
