package core

import (
	"fmt"

	"lama/internal/cluster"
	"lama/internal/hw"
	"lama/internal/parallel"
)

// SweepLayouts maps np ranks onto one cluster with every given layout,
// fanning the layouts across a bounded worker pool (workers <= 0 means
// GOMAXPROCS). The returned maps are in layout order regardless of
// completion order. Each pool worker reuses a single Mapper across its
// layouts — full-layout permutations share one canonical intra-node level
// set, so the worker's pruned views stay cached and only the cheap
// per-layout iteration state is rebuilt. The first error (by lowest layout
// index) aborts the sweep.
//
// Collecting every map costs memory proportional to len(layouts)*np; for
// very large sweeps (e.g. all 9! full layouts) use SweepEach and reduce on
// the fly.
func SweepLayouts(c *cluster.Cluster, layouts []Layout, np int, opts Options, workers int) ([]*Map, error) {
	out := make([]*Map, len(layouts))
	err := SweepEach(c, layouts, np, opts, workers, func(i int, m *Map) error {
		out[i] = m
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// SweepEach is the streaming form of SweepLayouts: visit(i, m) is invoked
// exactly once per successfully mapped layout, from the pool's worker
// goroutines, so visit MUST be safe for concurrent use (its results for
// distinct i never interleave for the same worker, but different workers
// call it simultaneously). A visit error counts as that layout's failure.
func SweepEach(c *cluster.Cluster, layouts []Layout, np int, opts Options, workers int,
	visit func(i int, m *Map) error) error {
	if c == nil || c.NumNodes() == 0 {
		return fmt.Errorf("core: empty cluster")
	}
	workers = parallel.Workers(len(layouts), workers)
	mappers := make([]*Mapper, workers)
	return parallel.ForEachWorker(len(layouts), workers, func(w, i int) error {
		layout := layouts[i]
		if !layout.Contains(hw.LevelMachine) {
			return fmt.Errorf("core: layout %q must include the node level 'n'", layout)
		}
		mp := mappers[w]
		if mp == nil {
			mp = &Mapper{Cluster: c, Opts: opts}
			mappers[w] = mp
		}
		mp.Layout = layout
		m, err := mp.Map(np)
		if err != nil {
			return fmt.Errorf("core: sweep layout %q: %w", layout, err)
		}
		return visit(i, m)
	})
}
