package core

import (
	"fmt"
	"sort"
	"strings"

	"lama/internal/cluster"
	"lama/internal/hw"
)

// Placement records where one rank was mapped.
type Placement struct {
	// Rank is the process rank (0-based).
	Rank int
	// Node is the cluster node index; NodeName its host name.
	Node     int
	NodeName string
	// Coords gives, for every level in the layout, the iteration
	// coordinate chosen for this rank (pruned-tree renumbering for
	// intra-node levels, node index for the machine level). Levels absent
	// from the layout hold -1.
	Coords CoordVector
	// Leaf is the hardware object the rank was mapped onto: the deepest
	// layout level's object (e.g. a core for "scbn", a PU for "scbnh").
	Leaf *hw.Object
	// PUs are the OS indices of the processing units claimed by the rank
	// (PEsPerProc of them), within Leaf.
	PUs []int
	// Oversubscribed reports that claiming the PUs exceeded Leaf's usable
	// capacity, i.e. some PU is shared with another rank.
	Oversubscribed bool
}

// PU returns the rank's representative (first claimed) processing unit.
func (p *Placement) PU() int {
	if len(p.PUs) == 0 {
		return -1
	}
	return p.PUs[0]
}

// Map is a complete mapping plan for a job: the output of the LAMA
// (or of a baseline mapper converted to the same form).
type Map struct {
	// Layout is the process layout that produced the map (zero value for
	// baseline mappers).
	Layout Layout
	// Placements holds one entry per rank, ordered by rank.
	Placements []Placement
	// Sweeps is the number of full resource-space traversals used; a value
	// greater than 1 means the job wrapped around the available resources.
	Sweeps int
}

// NumRanks returns the number of placed ranks.
func (m *Map) NumRanks() int { return len(m.Placements) }

// Oversubscribed reports whether any rank shares a PU with another.
func (m *Map) Oversubscribed() bool {
	for i := range m.Placements {
		if m.Placements[i].Oversubscribed {
			return true
		}
	}
	return false
}

// RanksByNode returns rank lists keyed by node index — the "which processes
// launch on each node" product of the mapping step (paper §III-A).
func (m *Map) RanksByNode() map[int][]int {
	out := map[int][]int{}
	for i := range m.Placements {
		p := &m.Placements[i]
		out[p.Node] = append(out[p.Node], p.Rank)
	}
	return out
}

// NodeOf returns the node index for a rank, or -1.
func (m *Map) NodeOf(rank int) int {
	if rank < 0 || rank >= len(m.Placements) {
		return -1
	}
	return m.Placements[rank].Node
}

// Validate checks internal consistency of the map against a cluster:
// ranks dense and ordered, nodes in range, claimed PUs usable on their
// node, and the oversubscription flags consistent with actual PU sharing.
func (m *Map) Validate(c *cluster.Cluster) error {
	type key struct{ node, pu int }
	claims := map[key]int{}
	for i := range m.Placements {
		p := &m.Placements[i]
		if p.Rank != i {
			return fmt.Errorf("core: placement %d has rank %d", i, p.Rank)
		}
		node := c.Node(p.Node)
		if node == nil {
			return fmt.Errorf("core: rank %d on unknown node %d", p.Rank, p.Node)
		}
		if len(p.PUs) == 0 {
			return fmt.Errorf("core: rank %d claims no PUs", p.Rank)
		}
		for _, pu := range p.PUs {
			obj := node.Topo.PUByOS(pu)
			if obj == nil {
				return fmt.Errorf("core: rank %d claims missing PU %d on %s", p.Rank, pu, node.Name)
			}
			if !obj.Usable() {
				return fmt.Errorf("core: rank %d claims unusable PU %d on %s", p.Rank, pu, node.Name)
			}
			claims[key{p.Node, pu}]++
		}
	}
	shared := map[int]bool{} // node -> has shared PU
	for k, n := range claims {
		if n > 1 {
			shared[k.node] = true
		}
	}
	anyFlag := false
	for i := range m.Placements {
		if m.Placements[i].Oversubscribed {
			anyFlag = true
		}
	}
	anyShared := len(shared) > 0
	if anyShared != anyFlag {
		return fmt.Errorf("core: oversubscription flag %v but PU sharing %v", anyFlag, anyShared)
	}
	return nil
}

// Render prints the map as an aligned rank table, one line per rank.
func (m *Map) Render() string {
	var sb strings.Builder
	layoutCols := m.Layout.Levels()
	fmt.Fprintf(&sb, "%-5s %-10s", "rank", "node")
	for _, l := range layoutCols {
		if l == hw.LevelMachine {
			continue
		}
		fmt.Fprintf(&sb, " %-3s", l.Abbrev())
	}
	fmt.Fprintf(&sb, " %-10s %s\n", "pus", "flags")
	for i := range m.Placements {
		p := &m.Placements[i]
		fmt.Fprintf(&sb, "%-5d %-10s", p.Rank, p.NodeName)
		for _, l := range layoutCols {
			if l == hw.LevelMachine {
				continue
			}
			fmt.Fprintf(&sb, " %-3d", p.Coords[l])
		}
		pus := make([]string, len(p.PUs))
		for j, pu := range p.PUs {
			pus[j] = fmt.Sprintf("%d", pu)
		}
		flags := ""
		if p.Oversubscribed {
			flags = "OVERSUB"
		}
		fmt.Fprintf(&sb, " %-10s %s\n", strings.Join(pus, ","), flags)
	}
	return sb.String()
}

// RenderByNode prints, per node and per socket, the ranks on each PU —
// the presentation style of the paper's Figure 2.
func (m *Map) RenderByNode(c *cluster.Cluster) string {
	var sb strings.Builder
	perPU := map[int]map[int][]int{} // node -> pu OS -> ranks
	for i := range m.Placements {
		p := &m.Placements[i]
		if perPU[p.Node] == nil {
			perPU[p.Node] = map[int][]int{}
		}
		for _, pu := range p.PUs {
			perPU[p.Node][pu] = append(perPU[p.Node][pu], p.Rank)
		}
	}
	for ni, node := range c.Nodes {
		fmt.Fprintf(&sb, "%s:\n", node.Name)
		for _, sock := range node.Topo.Objects(hw.LevelSocket) {
			fmt.Fprintf(&sb, "  socket %d:\n", sock.Logical)
			for _, core := range descendantsAt(sock, hw.LevelCore) {
				fmt.Fprintf(&sb, "    core %d:", core.Logical)
				for _, pu := range descendantsAt(core, hw.LevelPU) {
					ranks := perPU[ni][pu.OS]
					sort.Ints(ranks)
					strs := make([]string, len(ranks))
					for j, r := range ranks {
						strs[j] = fmt.Sprintf("%d", r)
					}
					body := strings.Join(strs, "+")
					if body == "" {
						body = "-"
					}
					fmt.Fprintf(&sb, " [h%d: %s]", pu.Rank, body)
				}
				sb.WriteByte('\n')
			}
		}
	}
	return sb.String()
}
