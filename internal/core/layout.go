// Package core implements the Locality-Aware Mapping Algorithm (LAMA), the
// paper's primary contribution: planning the placement of the ranks of a
// parallel job onto the processing units of a cluster according to a
// user-specified process layout.
//
// A process layout is an ordered sequence of resource-level letters
// (paper Table I): n (node), b (board), s (socket), c (core), h (hardware
// thread), and the optional locality levels N (NUMA), L1, L2, L3 (caches).
// The left-most letter is the innermost (fastest-varying) loop of the
// mapping iteration; the right-most is the outermost. Levels present in
// the hardware but absent from the layout are pruned from the maximal tree
// used for iteration (paper §IV-B).
package core

import (
	"fmt"
	"sort"
	"strings"

	"lama/internal/hw"
)

// Layout is a parsed process layout: the iteration order of resource
// levels, innermost first.
type Layout struct {
	levels []hw.Level
}

// ParseLayout parses a process layout string such as "scbnh" or "sNbL2cnh".
// Tokens are the Table I abbreviations; "L1", "L2", "L3" are two-character
// tokens; all tokens are case-sensitive ("n" node vs "N" NUMA). Each level
// may appear at most once and at least one level is required.
func ParseLayout(text string) (Layout, error) {
	var levels []hw.Level
	seen := map[hw.Level]bool{}
	i := 0
	for i < len(text) {
		tok := string(text[i])
		if text[i] == 'L' {
			if i+1 >= len(text) {
				return Layout{}, fmt.Errorf("core: layout %q: dangling 'L'", text)
			}
			tok = text[i : i+2]
			i++
		}
		i++
		l, ok := hw.LevelByAbbrev(tok)
		if !ok {
			return Layout{}, fmt.Errorf("core: layout %q: unknown resource %q", text, tok)
		}
		if seen[l] {
			return Layout{}, fmt.Errorf("core: layout %q: duplicate resource %q", text, tok)
		}
		seen[l] = true
		levels = append(levels, l)
	}
	if len(levels) == 0 {
		return Layout{}, fmt.Errorf("core: empty layout")
	}
	return Layout{levels: levels}, nil
}

// MustParseLayout is ParseLayout that panics on error, for tests and
// constant layouts.
func MustParseLayout(text string) Layout {
	l, err := ParseLayout(text)
	if err != nil {
		panic(err)
	}
	return l
}

// NewLayout builds a layout directly from levels (innermost first).
func NewLayout(levels ...hw.Level) (Layout, error) {
	seen := map[hw.Level]bool{}
	for _, l := range levels {
		if !l.Valid() {
			return Layout{}, fmt.Errorf("core: invalid level %d", int(l))
		}
		if seen[l] {
			return Layout{}, fmt.Errorf("core: duplicate level %s", l)
		}
		seen[l] = true
	}
	if len(levels) == 0 {
		return Layout{}, fmt.Errorf("core: empty layout")
	}
	return Layout{levels: append([]hw.Level(nil), levels...)}, nil
}

// String renders the layout back to its abbreviation string.
func (l Layout) String() string {
	var sb strings.Builder
	for _, lv := range l.levels {
		sb.WriteString(lv.Abbrev())
	}
	return sb.String()
}

// Levels returns the iteration order, innermost first. The caller must not
// modify the result.
func (l Layout) Levels() []hw.Level { return l.levels }

// Len returns the number of levels in the layout.
func (l Layout) Len() int { return len(l.levels) }

// Contains reports whether the layout includes the level.
func (l Layout) Contains(level hw.Level) bool {
	for _, lv := range l.levels {
		if lv == level {
			return true
		}
	}
	return false
}

// IntraNode returns the layout's non-node levels in canonical containment
// order (socket before core before PU, etc.), which is the path order used
// to resolve iteration coordinates against a node's pruned tree.
func (l Layout) IntraNode() []hw.Level {
	var intra []hw.Level
	for _, lv := range l.levels {
		if lv != hw.LevelMachine {
			intra = append(intra, lv)
		}
	}
	sort.Slice(intra, func(i, j int) bool { return intra[i] < intra[j] })
	return intra
}

// DeepestIntra returns the deepest non-node level of the layout, which is
// the level of the objects ranks are mapped to after pruning. The boolean
// is false when the layout is node-only.
func (l Layout) DeepestIntra() (hw.Level, bool) {
	intra := l.IntraNode()
	if len(intra) == 0 {
		return 0, false
	}
	return intra[len(intra)-1], true
}
