package core

import (
	"fmt"
	"sort"

	"lama/internal/cluster"
	"lama/internal/hw"
)

// RemapReport summarizes the migration cost of an incremental remap.
type RemapReport struct {
	// Failed lists the remapped ranks, ascending.
	Failed []int
	// RanksMoved counts remapped ranks whose placement actually changed
	// (different node or different PU set). A rank that was re-placed onto
	// its old resources — e.g. a process crash on healthy hardware — is
	// not a move.
	RanksMoved int
	// LocalityBefore and LocalityAfter give the map's neighbor locality
	// (mean LCA depth of consecutive same-node ranks, as in
	// metrics.MapSummary.AvgNeighborLevel) before and after the remap.
	LocalityBefore, LocalityAfter float64
	// Sweeps is the number of resource-space sweeps the incremental LAMA
	// run needed to place the failed ranks.
	Sweeps int
}

// RemapSurvivors is the locality-preserving incremental remapper of the
// fault-tolerance pipeline: given a map whose `failed` ranks died, it
// re-runs the LAMA over ONLY those ranks against the cluster's current
// resources (failed nodes/PUs excluded via availability, replacement
// nodes included), while every surviving rank's placement is carried over
// untouched. Surviving ranks' claimed PUs are withheld from the
// incremental run, so a remapped rank can never land on (or oversubscribe)
// a survivor's processors. Rank movement is therefore minimal by
// construction: exactly the failed ranks are re-placed, and each lands on
// the nearest free resources in layout order.
func RemapSurvivors(c *cluster.Cluster, layout Layout, opts Options, old *Map, failed []int) (*Map, *RemapReport, error) {
	if c == nil || c.NumNodes() == 0 {
		return nil, nil, fmt.Errorf("core: empty cluster")
	}
	if old == nil || old.NumRanks() == 0 {
		return nil, nil, fmt.Errorf("core: empty map")
	}
	// Dedupe, sort, and validate the failed set.
	set := map[int]bool{}
	for _, r := range failed {
		if r < 0 || r >= old.NumRanks() {
			return nil, nil, fmt.Errorf("core: remap of unknown rank %d (map has %d)", r, old.NumRanks())
		}
		set[r] = true
	}
	fr := make([]int, 0, len(set))
	for r := range set {
		fr = append(fr, r)
	}
	sort.Ints(fr)

	report := &RemapReport{Failed: fr, LocalityBefore: NeighborLocality(c, old)}
	if len(fr) == 0 {
		// Nothing to do: return a copy so callers may mutate freely.
		out := &Map{Layout: old.Layout, Placements: append([]Placement(nil), old.Placements...), Sweeps: old.Sweeps}
		report.LocalityAfter = report.LocalityBefore
		return out, report, nil
	}

	// Withhold the survivors' claimed PUs on a scratch clone, then run the
	// LAMA for just the failed ranks. The clone also inherits any failure
	// restrictions already recorded on c (FailNode / FailPUs).
	scratch := c.Clone()
	withheld := make([]*hw.CPUSet, scratch.NumNodes())
	for i := range old.Placements {
		p := &old.Placements[i]
		if set[p.Rank] {
			continue
		}
		if scratch.Node(p.Node) == nil {
			return nil, nil, fmt.Errorf("core: survivor rank %d on unknown node %d", p.Rank, p.Node)
		}
		if withheld[p.Node] == nil {
			withheld[p.Node] = &hw.CPUSet{}
		}
		for _, pu := range p.PUs {
			withheld[p.Node].Set(pu)
		}
	}
	for node, pus := range withheld {
		scratch.Node(node).Topo.Offline(pus)
	}
	mapper, err := NewMapper(scratch, layout, opts)
	if err != nil {
		return nil, nil, err
	}
	sub, err := mapper.Map(len(fr))
	if err != nil {
		return nil, nil, fmt.Errorf("core: incremental remap of %d ranks failed: %w", len(fr), err)
	}

	out := &Map{Layout: old.Layout, Placements: append([]Placement(nil), old.Placements...), Sweeps: old.Sweeps}
	mergeFailedPlacements(c, old, sub, out, fr, report)
	recomputeOversubscription(out)
	if err := out.Validate(c); err != nil {
		return nil, nil, fmt.Errorf("core: remapped map inconsistent: %v", err)
	}
	report.LocalityAfter = NeighborLocality(c, out)
	report.Sweeps = sub.Sweeps
	return out, report, nil
}

// mergeFailedPlacements is the remap inner loop: it writes the
// incremental run's placement for each failed rank back into the merged
// output, translating leaves from the scratch clone to the live cluster
// (logical numbering is availability-independent) and counting the ranks
// that actually moved. During a mass failure this runs once per failed
// rank per recovery attempt, so it is held to the hot-path allocation
// discipline.
//
//lama:hotpath
func mergeFailedPlacements(c *cluster.Cluster, old, sub, out *Map, fr []int, report *RemapReport) {
	for i, r := range fr {
		sp := &sub.Placements[i]
		var leaf *hw.Object
		if sp.Leaf != nil {
			leaf = c.Node(sp.Node).Topo.ObjectAt(sp.Leaf.Level, sp.Leaf.Logical)
		}
		np := Placement{
			Rank:           r,
			Node:           sp.Node,
			NodeName:       sp.NodeName,
			Coords:         sp.Coords,
			Leaf:           leaf,
			PUs:            append([]int(nil), sp.PUs...), //lama:alloc-ok each remapped rank owns its PU list; the merged map must not alias the incremental run
			Oversubscribed: sp.Oversubscribed,
		}
		oldP := &old.Placements[r]
		if np.Node != oldP.Node || !samePUs(np.PUs, oldP.PUs) {
			report.RanksMoved++
		}
		out.Placements[r] = np
	}
}

// samePUs reports whether two claimed-PU lists are identical.
func samePUs(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// recomputeOversubscription refreshes every placement's Oversubscribed
// flag from actual PU sharing, keeping Map.Validate's global consistency
// invariant after placements from two mapping runs are merged.
func recomputeOversubscription(m *Map) {
	claims := map[[2]int]int{}
	for i := range m.Placements {
		p := &m.Placements[i]
		for _, pu := range p.PUs {
			claims[[2]int{p.Node, pu}]++
		}
	}
	for i := range m.Placements {
		p := &m.Placements[i]
		p.Oversubscribed = false
		for _, pu := range p.PUs {
			if claims[[2]int{p.Node, pu}] > 1 {
				p.Oversubscribed = true
				break
			}
		}
	}
}

// NeighborLocality is the mean LCA depth of consecutive ranks placed on
// the same node (higher = closer), 0 when no such pairs exist — the same
// statistic as metrics.MapSummary.AvgNeighborLevel, computed here so the
// remapper, the grow/shrink operations, and the fault-aware placement
// stage can report migration cost without an import cycle.
func NeighborLocality(c *cluster.Cluster, m *Map) float64 {
	return NewLocalityTally(c, m).Value()
}
