package core

import (
	"bytes"
	"runtime/pprof"
	"strings"
	"testing"

	"lama/internal/obs"
)

// TestMapWithPprofLabels maps with a labels-enabled observer — the exact
// configuration the -listen telemetry server builds — and checks the run
// both completes identically and leaves no label behind (each phase span
// restores the unlabeled state when it ends).
func TestMapWithPprofLabels(t *testing.T) {
	c := fig2Cluster(t, 2)
	plainMapper, _ := NewMapper(c, MustParseLayout("scbnh"), Options{})
	plain, err := plainMapper.Map(24)
	if err != nil {
		t.Fatal(err)
	}

	pt := obs.NewPhaseTimer()
	pt.EnablePprofLabels()
	o := &obs.Observer{
		Sink: obs.NewMemorySink(), Metrics: obs.NewRegistry(), Phases: pt,
		Clock: func() int64 { return 0 },
	}
	mapper, _ := NewMapper(c, MustParseLayout("scbnh"), Options{Obs: o})
	labeled, err := mapper.Map(24)
	if err != nil {
		t.Fatal(err)
	}
	if !sameMaps(plain, labeled) {
		t.Fatal("labeling changed the mapping")
	}
	if len(pt.Spans()) == 0 {
		t.Fatal("no spans recorded")
	}

	var buf bytes.Buffer
	if err := pprof.Lookup("goroutine").WriteTo(&buf, 1); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "lama_phase") {
		t.Fatalf("lama_phase label leaked past Map:\n%s", buf.String())
	}
}
