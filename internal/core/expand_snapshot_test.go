package core

import (
	"context"
	"errors"
	"testing"

	"lama/internal/cluster"
)

// Boundary coverage for ShrinkMap: releasing nothing, releasing down to a
// single survivor, and releasing everything (np=0, which must be refused).

func TestShrinkMapNoOpRelease(t *testing.T) {
	c, m := remapSetup(t, 2, 4)
	out, rep, err := ShrinkMap(c, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRanks() != 4 || len(rep.Released) != 0 || rep.FreedPUs != 0 {
		t.Fatalf("empty release changed the map: ranks=%d released=%v freed=%d",
			out.NumRanks(), rep.Released, rep.FreedPUs)
	}
	for i := range m.Placements {
		if !samePlacement(m.Placements[i], out.Placements[i]) {
			t.Fatalf("rank %d moved on a no-op shrink", i)
		}
	}
}

func TestShrinkMapToOneRank(t *testing.T) {
	c, m := remapSetup(t, 2, 4)
	out, rep, err := ShrinkMap(c, m, []int{0, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRanks() != 1 {
		t.Fatalf("ranks = %d, want 1", out.NumRanks())
	}
	// The sole survivor (old rank 1) keeps its processors and is
	// renumbered to rank 0.
	if out.Placements[0].Rank != 0 {
		t.Fatalf("survivor rank = %d, want 0", out.Placements[0].Rank)
	}
	surv := m.Placements[1]
	surv.Rank = 0
	if !samePlacement(surv, out.Placements[0]) {
		t.Fatal("survivor's placement changed")
	}
	if len(rep.Released) != 3 {
		t.Fatalf("released = %v", rep.Released)
	}
}

func TestShrinkMapToZeroRanksRefused(t *testing.T) {
	c, m := remapSetup(t, 2, 4)
	// Both the exact full set and a duplicated over-listing of it must be
	// refused: a job cannot shrink to np=0.
	if _, _, err := ShrinkMap(c, m, []int{0, 1, 2, 3}); err == nil {
		t.Fatal("shrink to np=0 must fail")
	}
	if _, _, err := ShrinkMap(c, m, []int{0, 0, 1, 1, 2, 3}); err == nil {
		t.Fatal("shrink to np=0 via duplicates must fail")
	}
}

// ExpandMapSnapshot: growing against a snapshot whose epoch advanced —
// before the grow or mid-grow — must fail with ErrStaleSnapshot rather
// than silently placing ranks on PUs another epoch may have reassigned.

func TestExpandMapSnapshotStaleBeforeGrow(t *testing.T) {
	c, m := remapSetup(t, 2, 4)
	snap := cluster.SnapshotOf(c)
	current := func() uint64 { return snap.Epoch() + 1 } // already swapped
	_, _, err := ExpandMapSnapshot(context.Background(), snap, current,
		m.Layout, Options{}, m, 2)
	if !errors.Is(err, ErrStaleSnapshot) {
		t.Fatalf("err = %v, want ErrStaleSnapshot", err)
	}
}

func TestExpandMapSnapshotStaleMidGrow(t *testing.T) {
	c, m := remapSetup(t, 2, 4)
	snap := cluster.SnapshotOf(c)
	// The epoch source reports the planned epoch for the pre-check, then
	// advances: the swap landed while the incremental run was mapping.
	calls := 0
	current := func() uint64 {
		calls++
		if calls == 1 {
			return snap.Epoch()
		}
		return snap.Epoch() + 1
	}
	_, _, err := ExpandMapSnapshot(context.Background(), snap, current,
		m.Layout, Options{}, m, 2)
	if !errors.Is(err, ErrStaleSnapshot) {
		t.Fatalf("err = %v, want ErrStaleSnapshot", err)
	}
	if calls < 2 {
		t.Fatalf("epoch re-verified %d times, want pre- and post-check", calls)
	}
}

func TestExpandMapSnapshotFresh(t *testing.T) {
	c, m := remapSetup(t, 2, 4)
	snap := cluster.SnapshotOf(c)
	out, rep, err := ExpandMapSnapshot(context.Background(), snap, snap.Epoch,
		m.Layout, Options{}, m, 2)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRanks() != 6 || len(rep.Added) != 2 {
		t.Fatalf("grow: ranks=%d added=%v", out.NumRanks(), rep.Added)
	}
	// Existing placements are byte-identical; note the grow validates
	// against the snapshot's frozen cluster, not the live one.
	for i := range m.Placements {
		if !samePlacement(m.Placements[i], out.Placements[i]) {
			t.Fatalf("existing rank %d moved during grow", i)
		}
	}
}

// Cancellation semantics: a canceled context aborts mapping, sweeps, and
// traced runs at phase boundaries with the context's error.

func TestMapContextCanceled(t *testing.T) {
	c, _ := remapSetup(t, 2, 4)
	mapper, err := NewMapper(c, MustParseLayout("csbnh"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := mapper.MapContext(ctx, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("MapContext err = %v, want context.Canceled", err)
	}
	if _, _, err := mapper.MapTracedContext(ctx, 4, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("MapTracedContext err = %v, want context.Canceled", err)
	}
	if _, err := SweepLayouts(ctx, c, []Layout{MustParseLayout("csbnh")}, 4, Options{}, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("SweepLayouts err = %v, want context.Canceled", err)
	}
	// The mapper stays usable after a canceled run.
	if _, err := mapper.Map(4); err != nil {
		t.Fatalf("mapper unusable after cancellation: %v", err)
	}
}
