package core

import (
	"fmt"

	"lama/internal/hw"
	"lama/internal/obs"
)

// IterOrder produces the visiting order of the child indices at one level:
// given the iteration width it returns a permutation of 0..width-1.
// The paper's default is ascending logical order (Fig. 1 line 13); custom
// end-user orders are explicitly supported (§IV-A).
type IterOrder func(width int) []int

// SequentialOrder visits indices in ascending order (the default).
func SequentialOrder(width int) []int {
	out := make([]int, width)
	for i := range out {
		out[i] = i
	}
	return out
}

// ReverseOrder visits indices in descending order.
func ReverseOrder(width int) []int {
	out := make([]int, width)
	for i := range out {
		out[i] = width - 1 - i
	}
	return out
}

// validOrder checks that ord(width) is a permutation of 0..width-1.
func validOrder(ord IterOrder, width int) ([]int, error) {
	perm := ord(width)
	if len(perm) != width {
		return nil, fmt.Errorf("core: iteration order returned %d indices for width %d", len(perm), width)
	}
	seen := make([]bool, width)
	for _, v := range perm {
		if v < 0 || v >= width || seen[v] {
			return nil, fmt.Errorf("core: iteration order is not a permutation of 0..%d", width-1)
		}
		seen[v] = true
	}
	return perm, nil
}

// Options tune the mapping run.
type Options struct {
	// PEsPerProc is the number of processing elements (smallest PUs) each
	// rank claims; 1 when zero. Multi-threaded applications set this so a
	// rank owns several PUs (paper §III-A "assign multiple processing
	// resources to each process").
	PEsPerProc int

	// Oversubscribe permits placing more claims on a resource than it has
	// PUs. When false (the HPC default, §III-A), a mapping that would
	// share any PU fails with ErrOversubscribe.
	Oversubscribe bool

	// RespectSlots caps the ranks placed on each node at the node's
	// scheduler slot count (Node.EffectiveSlots), the way Open MPI honors
	// hostfile slots. Oversubscribe lifts the cap, mirroring
	// --oversubscribe. Ignored when Oversubscribe is true.
	RespectSlots bool

	// MaxPerResource optionally caps how many ranks may land on any single
	// object of a level (an ALPS-style restriction, §II). Zero or missing
	// entries mean unlimited.
	MaxPerResource map[hw.Level]int

	// IterOrder optionally overrides the per-level visiting order; levels
	// not present use SequentialOrder.
	IterOrder map[hw.Level]IterOrder

	// Obs optionally observes the run: phase spans (prune, build-shape,
	// sweep, place), per-map completion events, and placement-latency
	// metrics flow into it. Nil — the default — disables every
	// instrumentation path at zero cost (no allocation, no clock reads),
	// which TestMapAllocationsSteadyState and BenchmarkMapObsDisabled pin.
	Obs *obs.Observer
}

func (o Options) pes() int {
	if o.PEsPerProc <= 0 {
		return 1
	}
	return o.PEsPerProc
}

func (o Options) orderFor(level hw.Level) IterOrder {
	if o.IterOrder != nil {
		if ord, ok := o.IterOrder[level]; ok && ord != nil {
			return ord
		}
	}
	return SequentialOrder
}

func (o Options) capFor(level hw.Level) int {
	if o.MaxPerResource == nil {
		return 0
	}
	return o.MaxPerResource[level]
}
