package core

import (
	"testing"

	"lama/internal/hw"
)

func TestPrunedTreeRenumbering(t *testing.T) {
	// dual-board preset: 2 boards x 2 sockets x 2 cores(:via L2) x 2 PUs.
	sp, _ := hw.Preset("dual-board")
	topo := hw.New(sp)
	// Prune boards: sockets are adopted by the machine and renumbered 0-3.
	pt := NewPrunedTree(topo, []hw.Level{hw.LevelSocket})
	w := pt.Widths()
	if len(w) != 1 || w[0] != 4 {
		t.Fatalf("pruned widths = %v, want [4]", w)
	}
	for i := 0; i < 4; i++ {
		obj := pt.Lookup([]int{i})
		if obj == nil || obj.Level != hw.LevelSocket || obj.Logical != i {
			t.Fatalf("Lookup(%d) = %v", i, obj)
		}
	}
	if pt.Lookup([]int{4}) != nil || pt.Lookup([]int{-1}) != nil {
		t.Fatal("out-of-range Lookup should be nil")
	}
	if len(pt.Levels()) != 1 {
		t.Fatal("Levels wrong")
	}
}

func TestPrunedTreeDeepPath(t *testing.T) {
	sp, _ := hw.Preset("nehalem-ep") // 2 sockets x 4 cores x 2 PUs
	topo := hw.New(sp)
	pt := NewPrunedTree(topo, []hw.Level{hw.LevelSocket, hw.LevelCore, hw.LevelPU})
	// socket 1, core 2 (within socket), pu 1 (within core).
	obj := pt.Lookup([]int{1, 2, 1})
	if obj == nil || obj.Level != hw.LevelPU {
		t.Fatalf("Lookup = %v", obj)
	}
	if obj.Ancestor(hw.LevelCore).Logical != 6 || obj.Ancestor(hw.LevelSocket).Logical != 1 {
		t.Fatalf("resolved wrong object: core %v socket %v",
			obj.Ancestor(hw.LevelCore), obj.Ancestor(hw.LevelSocket))
	}
	w := pt.Widths()
	if w[0] != 2 || w[1] != 4 || w[2] != 2 {
		t.Fatalf("widths = %v", w)
	}
}

func TestPrunedTreeSkipsMiddleLevels(t *testing.T) {
	// Layout mentions only L2 and PU: cores/L1s are pruned away so each
	// L2's pruned children are its PUs.
	sp, _ := hw.Preset("power7") // L3 x4 per socket, L2 x2 per L3, SMT-4
	topo := hw.New(sp)
	pt := NewPrunedTree(topo, []hw.Level{hw.LevelL2, hw.LevelPU})
	w := pt.Widths()
	if w[0] != 16 { // 2 sockets x 4 L3 x 2 L2
		t.Fatalf("L2 width = %d, want 16", w[0])
	}
	if w[1] != 4 { // SMT-4 per core, one core per L2
		t.Fatalf("PU width = %d, want 4", w[1])
	}
}

func TestMaximalTreeUnion(t *testing.T) {
	big, _ := hw.Preset("nehalem-ep") // 2 sockets x 4 cores x 2 PUs
	small, _ := hw.Preset("bgp-node") // 1 socket x 4 cores x 1 PU
	topos := []*hw.Topology{hw.New(big), hw.New(small)}
	mt := NewMaximalTree(topos, []hw.Level{hw.LevelSocket, hw.LevelCore, hw.LevelPU})
	if mt.Width(0) != 2 || mt.Width(1) != 4 || mt.Width(2) != 2 {
		t.Fatalf("maximal widths = %d %d %d", mt.Width(0), mt.Width(1), mt.Width(2))
	}
	// Node 1 has no socket 1: lookup must be nil (skip), not panic.
	if mt.Lookup(1, []int{1, 0, 0}) != nil {
		t.Fatal("nonexistent coordinate should be nil")
	}
	if mt.Lookup(1, []int{0, 0, 1}) != nil {
		t.Fatal("nonexistent PU should be nil")
	}
	if mt.Lookup(0, []int{1, 3, 1}) == nil {
		t.Fatal("existing coordinate missing")
	}
	if mt.Lookup(5, []int{0}) != nil || mt.Lookup(-1, []int{0}) != nil {
		t.Fatal("bad node index should be nil")
	}
	if len(mt.Levels()) != 3 {
		t.Fatal("Levels wrong")
	}
}
