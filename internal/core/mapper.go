package core

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"lama/internal/cluster"
	"lama/internal/hw"
	"lama/internal/obs"
)

// ErrOversubscribe is returned when a mapping cannot complete without
// sharing processing units and Options.Oversubscribe is false.
var ErrOversubscribe = errors.New("core: mapping would oversubscribe processing units")

// ErrNoResources is returned when a sweep of the entire resource space
// finds nothing mappable (e.g. everything off-lined or capped).
var ErrNoResources = errors.New("core: no mappable resources")

// placedRanks counts every rank placed by the optimized and reference
// engines process-wide; see PlacedRanks.
var placedRanks atomic.Int64

// PlacedRanks returns the process-wide number of rank placements planned
// so far (by Map, MapTraced, and MapReference). Benchmark harnesses read
// it before and after a workload to report placements per second.
func PlacedRanks() int64 { return placedRanks.Load() }

// Mapper plans process placements for one cluster using one process layout.
//
// A Mapper keeps reusable execution state between calls: the pruned
// maximal tree, per-leaf usable-PU caches, and the claim/scratch arrays.
// Repeated Map/MapTraced calls on one Mapper therefore run with near-zero
// allocation, and the cached state is revalidated on every call against
// the layout, the options, and each node topology's generation counter —
// mutating availability (SetAvailable, Restrict, Offline, FailNode,
// FailPUs) between calls is safe and picked up automatically. Because of
// that reusable state a Mapper must NOT be used from multiple goroutines
// at once; create one Mapper per goroutine (as SweepLayouts does).
type Mapper struct {
	Cluster *cluster.Cluster
	Layout  Layout
	Opts    Options

	state *runState
}

// NewMapper validates and builds a mapper. The layout must include the
// node level ("n") so that every rank is assigned to a node.
func NewMapper(c *cluster.Cluster, layout Layout, opts Options) (*Mapper, error) {
	if c == nil || c.NumNodes() == 0 {
		return nil, fmt.Errorf("core: empty cluster")
	}
	if !layout.Contains(hw.LevelMachine) {
		return nil, fmt.Errorf("core: layout %q must include the node level 'n'", layout)
	}
	return &Mapper{Cluster: c, Layout: layout, Opts: opts}, nil
}

// capState tracks one ALPS-style per-resource cap during a run: rank
// counts per object of the capped level, index-addressed as
// offsets[node]+Logical. The machine level is counted via nodeCount
// instead of its own array.
type capState struct {
	level   hw.Level
	limit   int32
	machine bool
	counts  []int32
	offsets []int32
}

// runState is the reusable execution state of one Mapper: everything the
// recursive loop nest (paper Fig. 1) touches per visited coordinate is an
// index-addressed slice here, so the steady-state hot path performs no
// map operations and no allocations.
type runState struct {
	layoutLevels []hw.Level // iteration order the state was built for
	tree         *denseTree
	iterLevels   []hw.Level // innermost first (layout order)
	widths       []int      // iteration width per iterLevels index
	orders       [][]int    // visiting permutation per iterLevels index
	ordersCustom bool       // orders came from Opts.IterOrder
	machineIdx   int        // index of the node level within iterLevels
	canonPos     []int      // iterLevels index -> canonical intra position (-1 for node)

	coords      []int   // current iteration coordinate per iterLevels index
	canonCoords []int   // scratch: canonical intra-node coordinates
	claims      []int32 // rank claims per global leaf ID
	nodeCount   []int32 // ranks per node
	nodeLimit   []int32 // per-node slot cap, -1 none (RespectSlots only)
	caps        []capState
	capHits     []int32 // scratch: cap count indices to bump on placement

	np, pes        int
	placements     []Placement
	pusBacking     []int // one backing array for all placements' PU claims
	sweeps         int
	skippedOversub bool // a leaf was skipped due to the oversubscribe rule

	// trace, when non-nil, is invoked at every visited coordinate
	// (MapTraced); rank is -1 for skip events.
	trace func(action TraceAction, rank int)
}

// emit reports a trace event if tracing is enabled.
func (r *runState) emit(action TraceAction, rank int) {
	if r.trace != nil {
		r.trace(action, rank)
	}
}

func levelsEqual(a, b []hw.Level) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ensure revalidates (or builds) the mapper's reusable state for the
// current layout, options, and topology generations, then resets the
// per-run fields for a run of np ranks.
func (m *Mapper) ensure(np int) (*runState, error) {
	if np <= 0 {
		return nil, fmt.Errorf("core: non-positive process count %d", np)
	}
	r := m.state
	rebuilt := false
	if r == nil || !levelsEqual(r.layoutLevels, m.Layout.Levels()) || !r.tree.freshFor(m.Cluster) {
		var err error
		if r, err = m.buildState(); err != nil {
			return nil, err
		}
		m.state = r
		rebuilt = true
	}
	// The visiting orders derive from the widths and the options. The
	// default sequential orders are cached with the tree; custom IterOrder
	// functions are re-queried every run (they may close over state).
	if rebuilt || r.ordersCustom || m.Opts.IterOrder != nil {
		r.ordersCustom = m.Opts.IterOrder != nil
		for i, l := range r.iterLevels {
			perm, err := validOrder(m.Opts.orderFor(l), r.widths[i])
			if err != nil {
				return nil, fmt.Errorf("%v (level %s)", err, l)
			}
			r.orders[i] = perm
		}
	}
	for _, w := range r.widths {
		if w == 0 {
			// A layout level with no objects anywhere (possible only with
			// hand-decoded irregular trees): nothing is mappable.
			return nil, stallError(m.Layout, np, 0, false)
		}
	}
	if err := m.resetRun(r, np); err != nil {
		return nil, err
	}
	return r, nil
}

// buildState constructs fresh state: the dense maximal tree (through the
// shape and view caches) and the index-addressed scratch arrays. The two
// one-off phases are observable as spans: "prune" covers the pruned dense
// tree (shape + views, possibly cache hits), "build-shape" the
// index-addressed iteration state derived from it.
//
//lama:coldpath one-off state construction, runs once per (cluster, layout), not per Map call
func (m *Mapper) buildState() (*runState, error) {
	o := m.Opts.Obs
	intra := m.Layout.IntraNode()
	endPrune := o.StartSpan(obs.SpanPrune)
	tree := newDenseTree(m.Cluster, intra)
	endPrune()
	endBuild := o.StartSpan(obs.SpanBuildShape)
	defer endBuild()
	r := &runState{
		layoutLevels: append([]hw.Level(nil), m.Layout.Levels()...),
		iterLevels:   m.Layout.Levels(),
		tree:         tree,
		machineIdx:   -1,
	}
	n := len(r.iterLevels)
	r.widths = make([]int, n)
	r.orders = make([][]int, n)
	r.canonPos = make([]int, n)
	r.coords = make([]int, n)
	r.canonCoords = make([]int, len(intra))
	for i, l := range r.iterLevels {
		if l == hw.LevelMachine {
			r.machineIdx = i
			r.canonPos[i] = -1
			r.widths[i] = m.Cluster.NumNodes()
		} else {
			for p, il := range intra {
				if il == l {
					r.canonPos[i] = p
				}
			}
			r.widths[i] = r.tree.widths[r.canonPos[i]]
		}
	}
	r.claims = make([]int32, r.tree.totalLeaves)
	r.nodeCount = make([]int32, m.Cluster.NumNodes())
	return r, nil
}

// resetRun prepares the per-run fields: zeroed claim counters, per-run
// slot limits and resource caps, and the output placement storage.
func (m *Mapper) resetRun(r *runState, np int) error {
	r.np, r.pes = np, m.Opts.pes()
	r.sweeps = 0
	r.skippedOversub = false
	r.trace = nil
	for i := range r.claims {
		r.claims[i] = 0
	}
	for i := range r.nodeCount {
		r.nodeCount[i] = 0
	}
	// Scheduler slot caps (Open MPI hostfile semantics): without
	// --oversubscribe, a node accepts at most its slot count of ranks;
	// with it, the hostfile's max_slots hard cap (when declared) still
	// bounds the node.
	if m.Opts.RespectSlots {
		if cap(r.nodeLimit) < m.Cluster.NumNodes() {
			r.nodeLimit = make([]int32, m.Cluster.NumNodes())
		}
		r.nodeLimit = r.nodeLimit[:m.Cluster.NumNodes()]
		for i, node := range m.Cluster.Nodes {
			limit := int32(-1)
			if !m.Opts.Oversubscribe {
				limit = int32(node.EffectiveSlots())
			} else if node.MaxSlots > 0 {
				limit = int32(node.MaxSlots)
			}
			r.nodeLimit[i] = limit
		}
	} else {
		r.nodeLimit = r.nodeLimit[:0]
	}
	if err := m.resetCaps(r); err != nil {
		return err
	}
	// One backing array serves every placement's PU claims, so placing a
	// rank allocates nothing.
	r.placements = make([]Placement, 0, np)
	r.pusBacking = make([]int, np*r.pes)
	return nil
}

// resetCaps rebuilds the per-resource (ALPS-style) cap counters from
// Options.MaxPerResource, reusing the count arrays when the capped levels
// are unchanged.
func (m *Mapper) resetCaps(r *runState) error {
	if len(m.Opts.MaxPerResource) == 0 {
		r.caps = r.caps[:0]
		return nil
	}
	r.caps = r.caps[:0]
	for _, l := range r.iterLevels {
		limit := m.Opts.capFor(l)
		if limit <= 0 {
			continue
		}
		cs := capState{level: l, limit: int32(limit), machine: l == hw.LevelMachine}
		if !cs.machine {
			nodes := m.Cluster.NumNodes()
			cs.offsets = make([]int32, nodes)
			total := 0
			for i, node := range m.Cluster.Nodes {
				cs.offsets[i] = int32(total)
				total += node.Topo.NumObjects(l)
			}
			cs.counts = make([]int32, total)
		}
		r.caps = append(r.caps, cs)
	}
	return nil
}

// Map executes the LAMA: the recursive loop nest of the paper's Figure 1,
// wrapped in the outer while-loop that re-sweeps the resource space until
// every rank is placed (or no progress is possible). With an Observer in
// the options the run is instrumented — a "place" span envelops the call,
// each resource-space traversal records a "sweep" span, and completion
// lands a "map"/"done" event plus latency metrics; with a nil Observer
// (the default) none of the instrumentation paths execute. When the
// observer's PhaseTimer has pprof labels enabled (the -listen telemetry
// server does this), each span additionally labels the goroutine with
// lama_phase, so CPU profiles attribute samples per mapping phase.
//
//lama:hotpath
func (m *Mapper) Map(np int) (*Map, error) {
	return m.MapContext(context.Background(), np)
}

// MapContext is Map with cooperative cancellation: the context is checked
// once per resource-space sweep (a phase boundary), never inside the
// per-coordinate inner loops, so cancellation support costs the hot path
// nothing — the 3-allocs/op steady state is unchanged. A canceled run
// returns an error wrapping ctx.Err(); partial placements are discarded.
//
//lama:hotpath
func (m *Mapper) MapContext(ctx context.Context, np int) (*Map, error) {
	o := m.Opts.Obs
	var t0 time.Time
	if o != nil {
		t0 = time.Now() //lama:nondet-ok latency observability only, never reaches mapping output
	}
	endPlace := o.StartSpan(obs.SpanPlace)
	r, err := m.ensure(np)
	if err != nil {
		endPlace()
		return nil, err
	}
	for len(r.placements) < np {
		if ctx.Err() != nil {
			endPlace()
			return nil, mapCanceled(ctx, np, len(r.placements))
		}
		before := len(r.placements)
		endSweep := o.StartSpan(obs.SpanSweep)
		r.inner(m, len(r.iterLevels)-1)
		endSweep()
		r.sweeps++
		if len(r.placements) == before {
			err := stallError(m.Layout, np, len(r.placements), r.skippedOversub)
			endPlace()
			m.observeStall(o, np, len(r.placements), err)
			return nil, err
		}
	}
	out := r.finish(m)
	endPlace()
	m.observeDone(o, np, out, t0)
	return out, nil
}

// observeDone reports one completed mapping run to the observer: a
// "map"/"done" event and the placement-latency metrics. Callers only
// invoke it with o possibly nil; every path inside is nil-safe.
//
//lama:coldpath observability reporting, gated on an attached observer
func (m *Mapper) observeDone(o *obs.Observer, np int, out *Map, t0 time.Time) {
	if o == nil {
		return
	}
	us := float64(time.Since(t0)) / float64(time.Microsecond) //lama:nondet-ok latency observability only, never reaches mapping output
	if reg := o.Reg(); reg != nil {
		reg.Histogram("lama_map_duration_us", obs.LatencyBucketsUs).Observe(us)
		reg.Counter("lama_maps_total").Inc()
		reg.Counter("lama_ranks_placed_total").Add(int64(len(out.Placements)))
	}
	if o.Enabled() {
		o.Emit(obs.SrcMap, obs.EvDone, obs.NoStep,
			obs.F("layout", m.Layout.String()),
			obs.F("np", np),
			obs.F("placed", len(out.Placements)),
			obs.F("sweeps", out.Sweeps),
			obs.F("us", us))
	}
}

// observeStall reports a mapping run that stalled before placing np ranks.
//
//lama:coldpath observability reporting on the stall exit, gated on an attached observer
func (m *Mapper) observeStall(o *obs.Observer, np, placed int, err error) {
	if o == nil {
		return
	}
	o.Reg().Counter("lama_map_stalls_total").Inc()
	if o.Enabled() {
		o.Emit(obs.SrcMap, obs.EvStall, obs.NoStep,
			obs.F("layout", m.Layout.String()),
			obs.F("np", np),
			obs.F("placed", placed),
			obs.F("error", err.Error()))
	}
}

// inner is the recursive heart of the LAMA (paper Fig. 1): it iterates the
// resources of one layout level and recurses toward the innermost level,
// where the current coordinate tuple is mapped if it exists and is
// available.
func (r *runState) inner(m *Mapper, levelIdx int) {
	for _, i := range r.orders[levelIdx] {
		r.coords[levelIdx] = i
		if levelIdx > 0 {
			r.inner(m, levelIdx-1)
		} else {
			r.tryMap(m)
		}
		if len(r.placements) == r.np {
			return
		}
	}
}

// tryMap attempts to place the next rank at the current coordinates,
// skipping coordinates that do not exist on the node, are unavailable,
// are capped, or would oversubscribe when that is disallowed. Steady
// state, this performs only slice indexing: leaf existence and the usable
// PUs come from the cached pruned view, claims and caps are dense
// counters.
func (r *runState) tryMap(m *Mapper) {
	node := 0
	if r.machineIdx >= 0 {
		node = r.coords[r.machineIdx]
	}
	for i, c := range r.coords {
		if p := r.canonPos[i]; p >= 0 {
			r.canonCoords[p] = c
		}
	}
	view := r.tree.views[node]
	leaf := view.shape.lookup(r.canonCoords)
	if leaf < 0 {
		r.emit(SkipNonexistent, -1)
		return // resource does not exist on this node
	}
	ups := view.usable(leaf)
	if len(ups) == 0 {
		r.emit(SkipUnavailable, -1)
		return // resource unavailable (off-lined / disallowed)
	}
	if len(r.nodeLimit) > 0 {
		if limit := r.nodeLimit[node]; limit >= 0 && r.nodeCount[node] >= limit {
			r.skippedOversub = true
			r.emit(SkipCapped, -1)
			return
		}
	}
	// ALPS-style per-resource rank caps, checked before the
	// oversubscription rule: a capped resource is unmappable regardless.
	r.capHits = r.capHits[:0]
	for ci := range r.caps {
		cs := &r.caps[ci]
		if cs.machine {
			if r.nodeCount[node] >= cs.limit {
				r.emit(SkipCapped, -1)
				return
			}
			continue
		}
		obj := view.leafObj[leaf].Ancestor(cs.level)
		if obj == nil {
			continue
		}
		idx := cs.offsets[node] + int32(obj.Logical)
		if cs.counts[idx] >= cs.limit {
			r.emit(SkipCapped, -1)
			return
		}
		r.capHits = append(r.capHits, int32(ci), idx)
	}
	prior := int(r.claims[r.tree.leafBase[node]+leaf])
	base := prior * r.pes
	oversub := base+r.pes > len(ups)
	if oversub && !m.Opts.Oversubscribe {
		r.skippedOversub = true
		r.emit(SkipOversub, -1)
		return
	}

	at := len(r.placements) * r.pes
	pus := r.pusBacking[at : at+r.pes : at+r.pes]
	for j := 0; j < r.pes; j++ {
		pus[j] = int(ups[(base+j)%len(ups)])
	}
	coords := NoCoords()
	for i, l := range r.iterLevels {
		coords[l] = r.coords[i]
	}
	r.placements = append(r.placements, Placement{
		Rank:           len(r.placements),
		Node:           node,
		NodeName:       m.Cluster.Node(node).Name,
		Coords:         coords,
		Leaf:           view.leafObj[leaf],
		PUs:            pus,
		Oversubscribed: oversub,
	})
	r.emit(Mapped, len(r.placements)-1)
	r.claims[r.tree.leafBase[node]+leaf]++
	r.nodeCount[node]++
	for h := 0; h < len(r.capHits); h += 2 {
		cs := &r.caps[r.capHits[h]]
		cs.counts[r.capHits[h+1]]++
	}
}

// stallError explains a sweep that placed nothing: oversubscription was
// the blocker if any leaf was skipped for it, otherwise resources ran out.
func stallError(layout Layout, np, placed int, skippedOversub bool) error {
	kind := ErrNoResources
	if skippedOversub {
		kind = ErrOversubscribe
	}
	return fmt.Errorf("%w: %d of %d ranks unplaced (layout %q)",
		kind, np-placed, np, layout)
}

// mapCanceled explains a run abandoned at a sweep boundary because its
// context was canceled or timed out.
//
//lama:coldpath cancellation exit, runs at most once per Map call
func mapCanceled(ctx context.Context, np, placed int) error {
	return fmt.Errorf("core: mapping canceled with %d of %d ranks unplaced: %w",
		np-placed, np, ctx.Err())
}

// finish hands the placements to the returned Map and detaches them from
// the reusable state.
func (r *runState) finish(m *Mapper) *Map {
	out := &Map{Layout: m.Layout, Placements: r.placements, Sweeps: r.sweeps}
	placedRanks.Add(int64(len(r.placements)))
	r.placements = nil
	r.pusBacking = nil
	return out
}
