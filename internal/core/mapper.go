package core

import (
	"errors"
	"fmt"

	"lama/internal/cluster"
	"lama/internal/hw"
)

// ErrOversubscribe is returned when a mapping cannot complete without
// sharing processing units and Options.Oversubscribe is false.
var ErrOversubscribe = errors.New("core: mapping would oversubscribe processing units")

// ErrNoResources is returned when a sweep of the entire resource space
// finds nothing mappable (e.g. everything off-lined or capped).
var ErrNoResources = errors.New("core: no mappable resources")

// Mapper plans process placements for one cluster using one process layout.
type Mapper struct {
	Cluster *cluster.Cluster
	Layout  Layout
	Opts    Options
}

// NewMapper validates and builds a mapper. The layout must include the
// node level ("n") so that every rank is assigned to a node.
func NewMapper(c *cluster.Cluster, layout Layout, opts Options) (*Mapper, error) {
	if c == nil || c.NumNodes() == 0 {
		return nil, fmt.Errorf("core: empty cluster")
	}
	if !layout.Contains(hw.LevelMachine) {
		return nil, fmt.Errorf("core: layout %q must include the node level 'n'", layout)
	}
	return &Mapper{Cluster: c, Layout: layout, Opts: opts}, nil
}

// run holds the state of one mapping execution. Both the recursive mapper
// (paper Fig. 1) and the iterative reference mapper drive the same run.
type run struct {
	m   *Mapper
	np  int
	pes int

	iterLevels []hw.Level // innermost first (layout order)
	widths     []int      // iteration width per iterLevels index
	orders     [][]int    // visiting permutation per iterLevels index
	machineIdx int        // index of the node level within iterLevels
	canonPos   []int      // iterLevels index -> position in canonical intra coords (-1 for node)
	mtree      *MaximalTree

	coords      []int // current iteration coordinate per iterLevels index
	canonCoords []int // scratch: canonical intra-node coordinates

	claims         map[*hw.Object]int // rank claims per leaf object
	capCounts      map[*hw.Object]int // rank counts per capped ancestor object
	nodeCount      []int              // ranks per node (for machine-level caps)
	skippedOversub bool               // a leaf was skipped due to the oversubscribe rule

	placements []Placement
	sweeps     int

	// trace, when non-nil, is invoked at every visited coordinate
	// (MapTraced); rank is -1 for skip events.
	trace func(action TraceAction, rank int)
}

// emit reports a trace event if tracing is enabled.
func (r *run) emit(action TraceAction, rank int) {
	if r.trace != nil {
		r.trace(action, rank)
	}
}

func (m *Mapper) newRun(np int) (*run, error) {
	if np <= 0 {
		return nil, fmt.Errorf("core: non-positive process count %d", np)
	}
	intra := m.Layout.IntraNode()
	topos := make([]*hw.Topology, m.Cluster.NumNodes())
	for i, n := range m.Cluster.Nodes {
		topos[i] = n.Topo
	}
	r := &run{
		m:          m,
		np:         np,
		pes:        m.Opts.pes(),
		iterLevels: m.Layout.Levels(),
		mtree:      NewMaximalTree(topos, intra),
		claims:     map[*hw.Object]int{},
		capCounts:  map[*hw.Object]int{},
		nodeCount:  make([]int, m.Cluster.NumNodes()),
		machineIdx: -1,
	}
	r.coords = make([]int, len(r.iterLevels))
	r.canonCoords = make([]int, len(intra))
	r.widths = make([]int, len(r.iterLevels))
	r.canonPos = make([]int, len(r.iterLevels))
	r.orders = make([][]int, len(r.iterLevels))
	for i, l := range r.iterLevels {
		if l == hw.LevelMachine {
			r.machineIdx = i
			r.canonPos[i] = -1
			r.widths[i] = m.Cluster.NumNodes()
		} else {
			for p, il := range intra {
				if il == l {
					r.canonPos[i] = p
				}
			}
			r.widths[i] = r.mtree.Width(r.canonPos[i])
		}
		perm, err := validOrder(m.Opts.orderFor(l), r.widths[i])
		if err != nil {
			return nil, fmt.Errorf("%v (level %s)", err, l)
		}
		r.orders[i] = perm
	}
	for _, w := range r.widths {
		if w == 0 {
			// A layout level with no objects anywhere (possible only with
			// hand-decoded irregular trees): nothing is mappable.
			return nil, r.stallError()
		}
	}
	return r, nil
}

// Map executes the LAMA: the recursive loop nest of the paper's Figure 1,
// wrapped in the outer while-loop that re-sweeps the resource space until
// every rank is placed (or no progress is possible).
func (m *Mapper) Map(np int) (*Map, error) {
	r, err := m.newRun(np)
	if err != nil {
		return nil, err
	}
	for len(r.placements) < np {
		before := len(r.placements)
		r.inner(len(r.iterLevels) - 1)
		r.sweeps++
		if len(r.placements) == before {
			return nil, r.stallError()
		}
	}
	return r.finish(), nil
}

// inner is the recursive heart of the LAMA (paper Fig. 1): it iterates the
// resources of one layout level and recurses toward the innermost level,
// where the current coordinate tuple is mapped if it exists and is
// available.
func (r *run) inner(levelIdx int) {
	for _, i := range r.orders[levelIdx] {
		r.coords[levelIdx] = i
		if levelIdx > 0 {
			r.inner(levelIdx - 1)
		} else {
			r.tryMap()
		}
		if len(r.placements) == r.np {
			return
		}
	}
}

// tryMap attempts to place the next rank at the current coordinates,
// skipping coordinates that do not exist on the node, are unavailable,
// are capped, or would oversubscribe when that is disallowed.
func (r *run) tryMap() {
	node := 0
	if r.machineIdx >= 0 {
		node = r.coords[r.machineIdx]
	}
	for i, c := range r.coords {
		if p := r.canonPos[i]; p >= 0 {
			r.canonCoords[p] = c
		}
	}
	leaf := r.mtree.Lookup(node, r.canonCoords)
	if leaf == nil {
		r.emit(SkipNonexistent, -1)
		return // resource does not exist on this node
	}
	ups := leaf.UsablePUs()
	if len(ups) == 0 {
		r.emit(SkipUnavailable, -1)
		return // resource unavailable (off-lined / disallowed)
	}
	// Scheduler slot caps (Open MPI hostfile semantics): without
	// --oversubscribe, a node accepts at most its slot count of ranks;
	// with it, the hostfile's max_slots hard cap (when declared) still
	// bounds the node.
	if r.m.Opts.RespectSlots {
		limit := -1
		if !r.m.Opts.Oversubscribe {
			limit = r.m.Cluster.Node(node).EffectiveSlots()
		} else if hard := r.m.Cluster.Node(node).MaxSlots; hard > 0 {
			limit = hard
		}
		if limit >= 0 && r.nodeCount[node] >= limit {
			r.skippedOversub = true
			r.emit(SkipCapped, -1)
			return
		}
	}
	// ALPS-style per-resource rank caps, checked before the
	// oversubscription rule: a capped resource is unmappable regardless.
	var capped []*hw.Object
	for _, l := range r.iterLevels {
		limit := r.m.Opts.capFor(l)
		if limit <= 0 {
			continue
		}
		if l == hw.LevelMachine {
			if r.nodeCount[node] >= limit {
				r.emit(SkipCapped, -1)
				return
			}
			continue
		}
		obj := leaf.Ancestor(l)
		if obj == nil {
			continue
		}
		if r.capCounts[obj] >= limit {
			r.emit(SkipCapped, -1)
			return
		}
		capped = append(capped, obj)
	}
	prior := r.claims[leaf]
	base := prior * r.pes
	oversub := base+r.pes > len(ups)
	if oversub && !r.m.Opts.Oversubscribe {
		r.skippedOversub = true
		r.emit(SkipOversub, -1)
		return
	}

	pus := make([]int, r.pes)
	for j := 0; j < r.pes; j++ {
		pus[j] = ups[(base+j)%len(ups)].OS
	}
	coords := make(map[hw.Level]int, len(r.iterLevels))
	for i, l := range r.iterLevels {
		coords[l] = r.coords[i]
	}
	r.placements = append(r.placements, Placement{
		Rank:           len(r.placements),
		Node:           node,
		NodeName:       r.m.Cluster.Node(node).Name,
		Coords:         coords,
		Leaf:           leaf,
		PUs:            pus,
		Oversubscribed: oversub,
	})
	r.emit(Mapped, len(r.placements)-1)
	r.claims[leaf] = prior + 1
	r.nodeCount[node]++
	for _, obj := range capped {
		r.capCounts[obj]++
	}
}

func (r *run) stallError() error {
	if r.skippedOversub {
		return fmt.Errorf("%w: %d of %d ranks unplaced (layout %q)",
			ErrOversubscribe, r.np-len(r.placements), r.np, r.m.Layout)
	}
	return fmt.Errorf("%w: %d of %d ranks unplaced (layout %q)",
		ErrNoResources, r.np-len(r.placements), r.np, r.m.Layout)
}

func (r *run) finish() *Map {
	return &Map{Layout: r.m.Layout, Placements: r.placements, Sweeps: r.sweeps}
}
