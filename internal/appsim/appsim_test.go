package appsim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"lama/internal/cluster"
	"lama/internal/commpat"
	"lama/internal/core"
	"lama/internal/hw"
	"lama/internal/netsim"
	"lama/internal/torus"
)

func setup(t *testing.T, layout string, np int) (*cluster.Cluster, *core.Map) {
	t.Helper()
	sp, _ := hw.Preset("fig2")
	c := cluster.Homogeneous(2, sp)
	mapper, err := core.NewMapper(c, core.MustParseLayout(layout), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := mapper.Map(np)
	if err != nil {
		t.Fatal(err)
	}
	return c, m
}

func TestRunBasics(t *testing.T) {
	c, m := setup(t, "csbnh", 24)
	model := netsim.NewModel(netsim.NewFlat())
	tm := commpat.Ring(24, 100000)
	res, err := Run(c, m, model, tm, Config{ComputeUs: 100, Iterations: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.IterUs <= 100 || res.TotalUs != res.IterUs*10 {
		t.Fatalf("result = %+v", res)
	}
	if res.CommUs <= 0 {
		t.Fatal("no communication time")
	}
	if res.BoundBy != "rank-comm" && res.BoundBy != "compute" {
		t.Fatalf("bound = %s", res.BoundBy)
	}
}

func TestComputeBound(t *testing.T) {
	c, m := setup(t, "csbnh", 24)
	model := netsim.NewModel(netsim.NewFlat())
	tm := commpat.Ring(24, 10) // tiny messages
	res, err := Run(c, m, model, tm, Config{ComputeUs: 1e6, Iterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.BoundBy != "compute" {
		t.Fatalf("bound = %s, want compute", res.BoundBy)
	}
}

func TestLinkBoundOnTorus(t *testing.T) {
	sp, _ := hw.Preset("bgp-node")
	d := torus.Dims{X: 4, Y: 1, Z: 1}
	c := cluster.Homogeneous(4, sp)
	mapper, _ := core.NewMapper(c, core.MustParseLayout("ncsbh"), core.Options{})
	m, err := mapper.Map(16)
	if err != nil {
		t.Fatal(err)
	}
	model := netsim.NewModel(netsim.NewTorus3D(d))
	// Scattered all-to-all on a thin ring: links saturate.
	res, err := Run(c, m, model, commpat.AllToAll(16, 1<<22), Config{ComputeUs: 1, Iterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.CommUs <= 0 {
		t.Fatal("no comm time")
	}
}

// TestBetterMappingFasterApp: the end-to-end property the whole repository
// exists for — a locality-aware mapping makes the simulated application
// finish sooner.
func TestBetterMappingFasterApp(t *testing.T) {
	sp, _ := hw.Preset("fig2")
	c := cluster.Homogeneous(2, sp)
	model := netsim.NewModel(netsim.NewFlat())
	tm := commpat.Ring(24, 1<<20)
	cfg := Config{ComputeUs: 50, Iterations: 100}

	pack, _ := core.NewMapper(c, core.MustParseLayout("csbnh"), core.Options{})
	mp, err := pack.Map(24)
	if err != nil {
		t.Fatal(err)
	}
	resPack, err := Run(c, mp, model, tm, cfg)
	if err != nil {
		t.Fatal(err)
	}

	cyc, _ := core.NewMapper(c, core.MustParseLayout("ncsbh"), core.Options{})
	mc, err := cyc.Map(24)
	if err != nil {
		t.Fatal(err)
	}
	resCyc, err := Run(c, mc, model, tm, cfg)
	if err != nil {
		t.Fatal(err)
	}

	if s := Speedup(resCyc, resPack); s <= 1 {
		t.Fatalf("pack should beat cycle for a ring, speedup = %v", s)
	}
}

func TestRunErrors(t *testing.T) {
	c, m := setup(t, "csbnh", 8)
	model := netsim.NewModel(netsim.NewFlat())
	tm := commpat.Ring(8, 100)
	if _, err := Run(c, m, model, tm, Config{ComputeUs: 1, Iterations: 0}); err == nil {
		t.Fatal("iterations=0")
	}
	if _, err := Run(c, m, model, tm, Config{ComputeUs: -1, Iterations: 1}); err == nil {
		t.Fatal("negative compute")
	}
	if _, err := Run(c, m, model, commpat.Ring(9, 1), Config{ComputeUs: 1, Iterations: 1}); err == nil {
		t.Fatal("rank mismatch")
	}
}

func TestSpeedupZero(t *testing.T) {
	if Speedup(&Result{TotalUs: 1}, &Result{}) != 0 {
		t.Fatal("zero denominator")
	}
}

func TestQuickAppSimMonotoneInBytes(t *testing.T) {
	// More bytes per exchange can never make the iteration faster.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		sp, _ := hw.Preset("fig2")
		c := cluster.Homogeneous(2, sp)
		np := 4 + r.Intn(20)
		mapper, err := core.NewMapper(c, core.MustParseLayout("csbnh"), core.Options{})
		if err != nil {
			return false
		}
		m, err := mapper.Map(np)
		if err != nil {
			return false
		}
		model := netsim.NewModel(netsim.NewFlat())
		cfg := Config{ComputeUs: float64(r.Intn(200)), Iterations: 1 + r.Intn(5)}
		small, err := Run(c, m, model, commpat.Ring(np, 1000), cfg)
		if err != nil {
			return false
		}
		big, err := Run(c, m, model, commpat.Ring(np, 1000000), cfg)
		if err != nil {
			return false
		}
		return big.TotalUs >= small.TotalUs && big.CommUs >= small.CommUs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
