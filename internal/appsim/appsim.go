// Package appsim estimates the execution time of an iterative
// bulk-synchronous application under a given mapping: each iteration is a
// compute phase followed by a communication phase whose duration is the
// slowest of (a) the busiest rank's serialized message time and (b) the
// most congested network link (for link-modeling networks). This turns
// the static per-message costs of netsim into end-to-end iteration times
// and application-level speedups — the quantity the paper's motivating
// studies report.
package appsim

import (
	"fmt"

	"lama/internal/cluster"
	"lama/internal/commpat"
	"lama/internal/core"
	"lama/internal/netsim"
)

// Config describes the simulated application.
type Config struct {
	// ComputeUs is the per-iteration compute time of each rank, in µs.
	ComputeUs float64
	// Iterations is the number of BSP iterations to simulate.
	Iterations int
}

// Result is the simulated execution outcome.
type Result struct {
	// TotalUs is the end-to-end time of all iterations.
	TotalUs float64
	// IterUs is the time of one iteration (all iterations are identical).
	IterUs float64
	// CommUs is the communication-phase time of one iteration.
	CommUs float64
	// BoundBy names the dominant term: "compute", "rank-comm", or "link".
	BoundBy string
}

// Run simulates the application. The traffic matrix gives per-iteration
// exchanged bytes between ranks.
func Run(c *cluster.Cluster, m *core.Map, model *netsim.Model,
	tm *commpat.Matrix, cfg Config) (*Result, error) {
	if cfg.Iterations <= 0 {
		return nil, fmt.Errorf("appsim: non-positive iteration count %d", cfg.Iterations)
	}
	if cfg.ComputeUs < 0 {
		return nil, fmt.Errorf("appsim: negative compute time")
	}
	if tm.Ranks() != m.NumRanks() {
		return nil, fmt.Errorf("appsim: traffic has %d ranks, map has %d", tm.Ranks(), m.NumRanks())
	}

	// Per-rank serialized communication time (sends plus receives).
	perRank := make([]float64, m.NumRanks())
	flows := map[[2]int]float64{}
	var firstErr error
	tm.Each(func(i, j int, bytes float64) {
		cost, err := model.PairCost(c, m, i, j, bytes)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			return
		}
		perRank[i] += cost
		perRank[j] += cost
		ni, nj := m.Placements[i].Node, m.Placements[j].Node
		if ni != nj {
			flows[[2]int{ni, nj}] += bytes
		}
	})
	if firstErr != nil {
		return nil, firstErr
	}
	rankComm := 0.0
	for _, t := range perRank {
		if t > rankComm {
			rankComm = t
		}
	}

	// Link congestion bound (torus networks model individual links).
	linkTime := 0.0
	if t3, ok := model.Net.(*netsim.Torus3D); ok {
		maxLoad, _ := t3.LinkLoads(flows)
		if t3.BW > 0 {
			linkTime = maxLoad / t3.BW
		}
	}

	comm := rankComm
	bound := "rank-comm"
	if linkTime > comm {
		comm = linkTime
		bound = "link"
	}
	if cfg.ComputeUs > comm {
		bound = "compute"
	}
	iter := cfg.ComputeUs + comm
	return &Result{
		TotalUs: iter * float64(cfg.Iterations),
		IterUs:  iter,
		CommUs:  comm,
		BoundBy: bound,
	}, nil
}

// Speedup returns how much faster b is than a (a.TotalUs / b.TotalUs).
func Speedup(a, b *Result) float64 {
	if b.TotalUs == 0 {
		return 0
	}
	return a.TotalUs / b.TotalUs
}
