// Package treematch implements a simplified traffic-aware hierarchical
// mapper in the spirit of TreeMatch (Jeannot & Mercier, "Near-Optimal
// Placement of MPI Processes on Hierarchical NUMA Architectures" — the
// paper's reference [3]). Where the LAMA applies a user-chosen regular
// pattern obliviously to the application, TreeMatch reads the
// application's communication matrix and recursively partitions the ranks
// down the hardware tree so that heavily-communicating ranks share the
// deepest possible subtree.
//
// It serves two roles here: (1) the related-work comparator for the
// extension experiment E12, quantifying what pattern-oblivious mapping
// leaves on the table for irregular applications, and (2) a demonstration
// that the hw/cluster substrate supports mappers beyond the LAMA.
package treematch

import (
	"fmt"
	"sort"

	"lama/internal/cluster"
	"lama/internal/commpat"
	"lama/internal/core"
	"lama/internal/hw"
)

// Map places np ranks onto the cluster guided by the traffic matrix,
// greedily maximizing the traffic kept inside each topology subtree. It
// never oversubscribes; np must not exceed the cluster's usable PUs, and
// the traffic matrix must cover exactly np ranks.
func Map(c *cluster.Cluster, tm *commpat.Matrix, np int) (*core.Map, error) {
	if np <= 0 {
		return nil, fmt.Errorf("treematch: non-positive process count %d", np)
	}
	if tm.Ranks() != np {
		return nil, fmt.Errorf("treematch: traffic has %d ranks, want %d", tm.Ranks(), np)
	}
	if cap := c.TotalUsablePUs(); np > cap {
		return nil, fmt.Errorf("treematch: %d ranks exceed %d usable PUs", np, cap)
	}

	all := make([]int, np)
	for i := range all {
		all[i] = i
	}

	// Top level: partition ranks across nodes.
	bins := make([]bin, 0, c.NumNodes())
	for i, node := range c.Nodes {
		capacity := node.Topo.NumUsablePUs()
		if capacity > 0 {
			bins = append(bins, bin{idx: i, capacity: capacity})
		}
	}
	groups := partition(tm, all, bins)

	m := &core.Map{Sweeps: 1}
	placements := make([]core.Placement, np)
	for bi, ranks := range groups {
		nodeIdx := bins[bi].idx
		node := c.Node(nodeIdx)
		assignSubtree(tm, node.Topo.Root, ranks, func(rank int, pu *hw.Object) {
			placements[rank] = core.Placement{
				Rank:     rank,
				Node:     nodeIdx,
				NodeName: node.Name,
				Coords:   core.NodeCoords(nodeIdx),
				Leaf:     pu,
				PUs:      []int{pu.OS},
			}
		})
	}
	m.Placements = placements
	return m, nil
}

// bin is one partition target with a PU capacity.
type bin struct {
	idx      int
	capacity int
}

// assignSubtree recursively partitions ranks across obj's children by
// usable capacity, bottoming out by pairing ranks with PUs.
func assignSubtree(tm *commpat.Matrix, obj *hw.Object, ranks []int, emit func(rank int, pu *hw.Object)) {
	if len(ranks) == 0 {
		return
	}
	if obj.Level == hw.LevelPU {
		// Exactly one rank can land here (capacities guarantee it).
		emit(ranks[0], obj)
		return
	}
	// Transparent levels (single usable child) recurse directly.
	var kids []*hw.Object
	for _, ch := range obj.Children {
		if ch.Available && len(ch.UsablePUs()) > 0 {
			kids = append(kids, ch)
		}
	}
	if len(kids) == 1 {
		assignSubtree(tm, kids[0], ranks, emit)
		return
	}
	bins := make([]bin, len(kids))
	for i, ch := range kids {
		bins[i] = bin{idx: i, capacity: len(ch.UsablePUs())}
	}
	for bi, group := range partition(tm, ranks, bins) {
		assignSubtree(tm, kids[bi], group, emit)
	}
}

// partition splits ranks into per-bin groups, greedily: each bin is seeded
// with the unassigned rank having the largest total traffic, then grown by
// repeatedly adding the unassigned rank with the most traffic to the bin's
// current members, until the bin holds its share. Shares are computed
// proportionally to capacities so that small bins are not starved.
func partition(tm *commpat.Matrix, ranks []int, bins []bin) [][]int {
	groups := make([][]int, len(bins))
	// Unassigned ranks are kept as a sorted slice and always scanned in
	// ascending order, so ties break toward the lowest rank by construction
	// — determinism must never ride on map iteration order.
	unassigned := append([]int(nil), ranks...)
	sort.Ints(unassigned)

	// Shares: fill bins in order, each taking min(capacity, what's left).
	// (Traffic-aware seeding below decides *which* ranks, not how many.)
	shares := make([]int, len(bins))
	left := len(ranks)
	for i, b := range bins {
		take := b.capacity
		if take > left {
			take = left
		}
		shares[i] = take
		left -= take
	}

	for i := range bins {
		for len(groups[i]) < shares[i] {
			var at int
			if len(groups[i]) == 0 {
				at = heaviestRank(tm, unassigned)
			} else {
				at = bestAffinity(tm, unassigned, groups[i])
			}
			groups[i] = append(groups[i], unassigned[at])
			unassigned = append(unassigned[:at], unassigned[at+1:]...)
		}
		sort.Ints(groups[i])
	}
	return groups
}

// heaviestRank returns the index (into the sorted unassigned slice) of the
// rank with the largest total traffic; ties break toward the lowest rank
// because the slice is scanned in ascending order.
func heaviestRank(tm *commpat.Matrix, unassigned []int) int {
	best, bestW := -1, -1.0
	for i, r := range unassigned {
		w := 0.0
		for o := 0; o < tm.Ranks(); o++ {
			w += tm.Bytes(r, o) + tm.Bytes(o, r)
		}
		if w > bestW {
			best, bestW = i, w
		}
	}
	return best
}

// bestAffinity returns the index (into the sorted unassigned slice) of the
// rank with the most traffic to the group's members; ties break toward
// the lowest rank.
func bestAffinity(tm *commpat.Matrix, unassigned []int, group []int) int {
	best, bestW := -1, -1.0
	for i, r := range unassigned {
		w := 0.0
		for _, g := range group {
			w += tm.Bytes(r, g) + tm.Bytes(g, r)
		}
		if w > bestW {
			best, bestW = i, w
		}
	}
	return best
}
