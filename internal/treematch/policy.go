package treematch

import (
	"context"
	"fmt"

	"lama/internal/core"
	"lama/internal/place"
)

// policy adapts the TreeMatch-style mapper to the place registry. It
// consumes Request.Traffic; the matrix must cover exactly NP ranks.
type policy struct{}

func (policy) Name() string { return "treematch" }

func (policy) Place(_ context.Context, req *place.Request) (*core.Map, error) {
	if req.Traffic == nil {
		return nil, fmt.Errorf("treematch: policy requires a traffic matrix")
	}
	return Map(req.Cluster, req.Traffic, req.NP)
}

func init() { place.Register(policy{}) }
