package treematch

import (
	"math/rand"
	"testing"
	"testing/quick"

	"lama/internal/cluster"
	"lama/internal/commpat"
	"lama/internal/core"
	"lama/internal/hw"
	"lama/internal/netsim"
)

func fig2Cluster(t *testing.T, nodes int) *cluster.Cluster {
	t.Helper()
	sp, _ := hw.Preset("fig2")
	return cluster.Homogeneous(nodes, sp)
}

func TestMapIsValidPermutation(t *testing.T) {
	c := fig2Cluster(t, 2)
	tm := commpat.Ring(24, 1000)
	m, err := Map(c, tm, 24)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(c); err != nil {
		t.Fatal(err)
	}
	type key struct{ node, pu int }
	seen := map[key]bool{}
	for _, p := range m.Placements {
		k := key{p.Node, p.PU()}
		if seen[k] {
			t.Fatalf("PU reused: %v", k)
		}
		seen[k] = true
	}
	if m.Oversubscribed() {
		t.Fatal("must not oversubscribe")
	}
}

func TestRingStaysContiguous(t *testing.T) {
	// A ring's optimal partition keeps consecutive ranks together; the
	// greedy grouping must keep at least ring-neighbor majorities on-node.
	c := fig2Cluster(t, 2)
	tm := commpat.Ring(24, 1000)
	m, err := Map(c, tm, 24)
	if err != nil {
		t.Fatal(err)
	}
	cross := 0
	for i := 0; i < 24; i++ {
		if m.Placements[i].Node != m.Placements[(i+1)%24].Node {
			cross++
		}
	}
	// A perfect split has 2 crossing edges; greedy may be slightly worse
	// but must beat round-robin's 24.
	if cross > 6 {
		t.Fatalf("ring crossings = %d, want <= 6", cross)
	}
}

func TestBeatsObliviousMappingOnClusteredTraffic(t *testing.T) {
	// Traffic with two heavy cliques that do NOT align with rank order:
	// even ranks talk to even ranks, odd to odd. A pack mapping splits
	// both cliques across nodes; treematch should reunite them.
	c := fig2Cluster(t, 2)
	np := 24
	tm := commpat.NewMatrix(np)
	for i := 0; i < np; i++ {
		for j := 0; j < np; j++ {
			if i != j && i%2 == j%2 {
				tm.Add(i, j, 1000)
			}
		}
	}
	mo := netsim.NewModel(netsim.NewFlat())

	tmatch, err := Map(c, tm, np)
	if err != nil {
		t.Fatal(err)
	}
	repT, err := mo.Evaluate(c, tmatch, tm)
	if err != nil {
		t.Fatal(err)
	}

	mapper, _ := core.NewMapper(c, core.MustParseLayout("csbnh"), core.Options{})
	pack, err := mapper.Map(np)
	if err != nil {
		t.Fatal(err)
	}
	repP, err := mo.Evaluate(c, pack, tm)
	if err != nil {
		t.Fatal(err)
	}

	if repT.InterBytes != 0 {
		t.Fatalf("treematch should fully localize the cliques, inter=%v", repT.InterBytes)
	}
	if repP.InterBytes == 0 {
		t.Fatal("pack should split the cliques (test is vacuous otherwise)")
	}
	if repT.TotalTime >= repP.TotalTime {
		t.Fatalf("treematch %v should beat pack %v", repT.TotalTime, repP.TotalTime)
	}
}

func TestHonorsRestrictions(t *testing.T) {
	c := fig2Cluster(t, 2)
	c.Node(0).Topo.Restrict(hw.CPUSetRange(0, 5)) // half of node0
	tm := commpat.Ring(18, 100)
	m, err := Map(c, tm, 18)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(c); err != nil {
		t.Fatal(err)
	}
	per := m.RanksByNode()
	if len(per[0]) != 6 || len(per[1]) != 12 {
		t.Fatalf("per node = %d/%d", len(per[0]), len(per[1]))
	}
}

func TestErrors(t *testing.T) {
	c := fig2Cluster(t, 1)
	if _, err := Map(c, commpat.Ring(4, 1), 0); err == nil {
		t.Fatal("np=0")
	}
	if _, err := Map(c, commpat.Ring(4, 1), 5); err == nil {
		t.Fatal("matrix size mismatch")
	}
	if _, err := Map(c, commpat.Ring(13, 1), 13); err == nil {
		t.Fatal("over capacity")
	}
}

func TestDeterministic(t *testing.T) {
	c := fig2Cluster(t, 2)
	tm := commpat.RandomPairs(24, 40, 100, 5)
	a, err := Map(c, tm, 24)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Map(c, tm, 24)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Placements {
		if a.Placements[i].Node != b.Placements[i].Node || a.Placements[i].PU() != b.Placements[i].PU() {
			t.Fatal("non-deterministic")
		}
	}
}

func TestQuickTreeMatchBijective(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nodes := 1 + r.Intn(3)
		sp := hw.Spec{
			Boards: 1, Sockets: 1 + r.Intn(2), NUMAs: 1, L3s: 1,
			L2s: 1 + r.Intn(2), L1s: 1, Cores: 1 + r.Intn(3), PUs: 1 + r.Intn(2),
		}
		c := cluster.Homogeneous(nodes, sp)
		if r.Intn(2) == 0 {
			c.Node(0).Topo.Restrict(hw.CPUSetRange(0, c.Node(0).Topo.NumPUs()/2))
		}
		capacity := c.TotalUsablePUs()
		if capacity == 0 {
			return true
		}
		np := 1 + r.Intn(capacity)
		tm := commpat.RandomPairs(np, 1+r.Intn(3*np), 100, seed)
		m, err := Map(c, tm, np)
		if err != nil {
			return false
		}
		if m.Validate(c) != nil || m.NumRanks() != np || m.Oversubscribed() {
			return false
		}
		type key struct{ node, pu int }
		seen := map[key]bool{}
		for _, p := range m.Placements {
			k := key{p.Node, p.PU()}
			if seen[k] {
				return false
			}
			seen[k] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
