package treematch

import (
	"testing"

	"lama/internal/cluster"
	"lama/internal/commpat"
	"lama/internal/hw"
)

// TestMapDeterministicAcrossRuns is the satellite-2 regression: repeated
// runs on identical inputs must produce identical placements. The greedy
// partitioner's tie-breaking must come from scanning ranks in ascending
// order, never from map iteration order, so a tie-heavy matrix (uniform
// all-to-all, where every pick is a tie) is the stressor.
func TestMapDeterministicAcrossRuns(t *testing.T) {
	sp, ok := hw.Preset("nehalem-ep")
	if !ok {
		t.Fatal("nehalem-ep preset missing")
	}
	c := cluster.Homogeneous(4, sp)
	const np = 48
	patterns := map[string]*commpat.Matrix{
		"alltoall-ties": commpat.AllToAll(np, 1<<20),
		"gtc":           commpat.GTC(np, 1<<20),
		"ring":          commpat.Ring(np, 1<<20),
	}
	for name, tm := range patterns {
		ref, err := Map(c, tm, np)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		refText := ref.Render()
		for run := 0; run < 10; run++ {
			m, err := Map(c, tm, np)
			if err != nil {
				t.Fatalf("%s run %d: %v", name, run, err)
			}
			if got := m.Render(); got != refText {
				t.Fatalf("%s run %d: placement differs from run 0:\n%s\nvs\n%s",
					name, run, got, refText)
			}
		}
	}
}
