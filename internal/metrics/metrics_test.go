package metrics

import (
	"strings"
	"testing"

	"lama/internal/cluster"
	"lama/internal/core"
	"lama/internal/hw"
	"lama/internal/obs"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Demo", "name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRow("a-much-longer-name", "22")
	tb.AddRow("short") // padded
	out := tb.String()
	if !strings.Contains(out, "== Demo ==") {
		t.Fatalf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// Columns aligned: every row's "value" column starts at the same offset.
	idx := strings.Index(lines[1], "value")
	if idx < 0 {
		t.Fatal("header missing")
	}
	if !strings.HasPrefix(lines[3][idx:], "1") && !strings.HasPrefix(lines[4][idx:], "22") {
		t.Fatalf("misaligned:\n%s", out)
	}
	// Extra cells beyond headers are ignored in render.
	tb2 := NewTable("", "a")
	tb2.AddRow("x", "y", "z")
	if strings.Contains(tb2.String(), "==") {
		t.Fatal("untitled table should not print a title")
	}
}

func TestFormatters(t *testing.T) {
	if F(1.23456, 2) != "1.23" || I(42) != "42" {
		t.Fatal("F/I")
	}
	if Pct(80, 100) != "+20.0%" {
		t.Fatalf("Pct = %s", Pct(80, 100))
	}
	if Pct(120, 100) != "-20.0%" {
		t.Fatalf("Pct = %s", Pct(120, 100))
	}
	if Pct(1, 0) != "n/a" {
		t.Fatal("Pct zero baseline")
	}
}

func TestSummarize(t *testing.T) {
	sp, _ := hw.Preset("fig2")
	c := cluster.Homogeneous(2, sp)
	mapper, err := core.NewMapper(c, core.MustParseLayout("csbnh"), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// 6 ranks pack exactly the first hardware threads of node0's 6 cores.
	m, err := mapper.Map(6)
	if err != nil {
		t.Fatal(err)
	}
	s := Summarize(c, m)
	if s.Ranks != 6 || s.NodesUsed != 1 || s.MaxPerNode != 6 || s.MinPerNode != 6 {
		t.Fatalf("summary = %+v", s)
	}
	if s.SocketsUsed != 2 {
		t.Fatalf("sockets used = %d", s.SocketsUsed)
	}
	if s.Oversubscribed {
		t.Fatal("not oversubscribed")
	}
	// Packed consecutive ranks are close: average LCA depth should be at
	// least board level.
	if s.AvgNeighborLevel < float64(hw.LevelBoard.Depth()) {
		t.Fatalf("AvgNeighborLevel = %v", s.AvgNeighborLevel)
	}

	// Scattered mapping uses both nodes evenly.
	mapper2, _ := core.NewMapper(c, core.MustParseLayout("ncsbh"), core.Options{})
	m2, err := mapper2.Map(8)
	if err != nil {
		t.Fatal(err)
	}
	s2 := Summarize(c, m2)
	if s2.NodesUsed != 2 || s2.MaxPerNode != 4 || s2.MinPerNode != 4 {
		t.Fatalf("summary2 = %+v", s2)
	}
	// Consecutive ranks never share a node under by-node: no pairs.
	if s2.AvgNeighborLevel != 0 {
		t.Fatalf("AvgNeighborLevel = %v", s2.AvgNeighborLevel)
	}
}

// TestSummarizeEmptyMap is the regression test for the MinPerNode floor:
// a map with no placements must report 0, never a ranks-derived sentinel
// such as NumRanks+1 leaking out of the scan.
func TestSummarizeEmptyMap(t *testing.T) {
	sp, _ := hw.Preset("fig2")
	c := cluster.Homogeneous(2, sp)
	s := Summarize(c, &core.Map{})
	if s.MinPerNode != 0 {
		t.Errorf("empty map MinPerNode = %d, want 0", s.MinPerNode)
	}
	if s.Ranks != 0 || s.NodesUsed != 0 || s.MaxPerNode != 0 || s.SocketsUsed != 0 {
		t.Errorf("empty map summary = %+v, want all-zero", s)
	}
}

func TestMapSummaryRecord(t *testing.T) {
	sp, _ := hw.Preset("fig2")
	c := cluster.Homogeneous(2, sp)
	mapper, err := core.NewMapper(c, core.MustParseLayout("csbnh"), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := mapper.Map(8)
	if err != nil {
		t.Fatal(err)
	}
	s := Summarize(c, m)
	reg := obs.NewRegistry()
	s.Record(reg)
	snap := reg.Snapshot()
	if got := snap.Gauges["lama_map_ranks"]; got != 8 {
		t.Errorf("lama_map_ranks = %v", got)
	}
	if got := snap.Gauges["lama_map_nodes_used"]; got != float64(s.NodesUsed) {
		t.Errorf("lama_map_nodes_used = %v, want %d", got, s.NodesUsed)
	}
	if got := snap.Gauges["lama_map_min_per_node"]; got != float64(s.MinPerNode) {
		t.Errorf("lama_map_min_per_node = %v, want %d", got, s.MinPerNode)
	}
	s.Record(nil) // nil registry must be a no-op, not a panic
}
