// Package metrics provides mapping-quality summaries and plain-text table
// rendering for the experiment harness.
package metrics

import (
	"fmt"
	"strconv"
	"strings"
)

// Table is a titled text table with aligned columns.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	for len(cells) < len(t.Headers) {
		cells = append(cells, "")
	}
	t.Rows = append(t.Rows, cells)
}

// String renders the table with a title line, a header, a rule, and
// aligned rows.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i >= len(widths) {
				break
			}
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total-2))
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}

// F formats a float with the given decimals for table cells.
func F(v float64, decimals int) string {
	return strconv.FormatFloat(v, 'f', decimals, 64)
}

// I formats an int for table cells.
func I(v int) string { return strconv.Itoa(v) }

// Pct formats a ratio as a signed percentage improvement: Pct(80, 100) is
// "+20.0%" (b is the baseline).
func Pct(value, baseline float64) string {
	if baseline == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", (baseline-value)/baseline*100)
}
