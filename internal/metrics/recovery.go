package metrics

import (
	"lama/internal/obs"
	"lama/internal/orte"
)

// RecoverySummary aggregates the fault-tolerance counters of a supervised
// run: how often the job recovered and what the recovery cost.
type RecoverySummary struct {
	// Policy is the fault-tolerance policy the run used.
	Policy orte.FTPolicy
	// Steps is the requested step count; DetectionWindow the heartbeat
	// latency in steps.
	Steps, DetectionWindow int
	// Completed and Aborted mirror the run outcome; FinalRanks is the
	// world size at the end.
	Completed, Aborted bool
	FinalRanks         int
	// FailureEvents counts failure-recovery events (elastic grow/release
	// resizes are accounted separately); Restarts counts respawn events.
	FailureEvents, Restarts int
	// Grows and Shrinks count applied elastic resizes.
	Grows, Shrinks int
	// RanksLost is the number of ranks that died and were never respawned;
	// RanksMigrated the placements moved by remaps; ReplaySteps the steps
	// re-executed after restarts.
	RanksLost, RanksMigrated, ReplaySteps int
	// TotalRemapUs is the total remap planning time in microseconds.
	TotalRemapUs float64
}

// SummarizeRecovery computes a RecoverySummary from a supervise report.
func SummarizeRecovery(rep *orte.SuperviseReport) RecoverySummary {
	s := RecoverySummary{
		Policy:          rep.Policy,
		Steps:           rep.Steps,
		DetectionWindow: rep.DetectionWindow,
		Completed:       rep.Completed,
		Aborted:         rep.Aborted,
		FinalRanks:      rep.FinalRanks,
		Restarts:        rep.Restarts,
		Grows:           rep.Grows,
		Shrinks:         rep.Shrinks,
		RanksMigrated:   rep.RanksMigrated,
		ReplaySteps:     rep.ReplaySteps,
		TotalRemapUs:    rep.TotalRemapUs,
	}
	for _, ev := range rep.Events {
		if ev.Action != "grow" && ev.Action != "release" {
			s.FailureEvents++
		}
	}
	for _, o := range rep.Outcomes {
		if o.State == orte.Failed {
			s.RanksLost++
		}
	}
	return s
}

// Record publishes the summary into an obs registry as lama_recovery_*
// gauges — the end-of-run rollup next to the supervisor's live counters
// (lama_failures_detected_total etc.). A nil registry is a no-op.
func (s RecoverySummary) Record(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.Gauge("lama_recovery_final_ranks").Set(float64(s.FinalRanks))
	reg.Gauge("lama_recovery_failure_events").Set(float64(s.FailureEvents))
	reg.Gauge("lama_recovery_restarts").Set(float64(s.Restarts))
	reg.Gauge("lama_recovery_grows").Set(float64(s.Grows))
	reg.Gauge("lama_recovery_shrinks").Set(float64(s.Shrinks))
	reg.Gauge("lama_recovery_ranks_lost").Set(float64(s.RanksLost))
	reg.Gauge("lama_recovery_ranks_migrated").Set(float64(s.RanksMigrated))
	// "replayed", not "replay": lama_recovery_replay_steps is the
	// supervisor's per-event histogram and must not be shadowed.
	reg.Gauge("lama_recovery_replayed_steps").Set(float64(s.ReplaySteps))
	reg.Gauge("lama_recovery_remap_us").Set(s.TotalRemapUs)
	completed := 0.0
	if s.Completed {
		completed = 1
	}
	reg.Gauge("lama_recovery_completed").Set(completed)
}

// Render formats the summary as a text table.
func (s RecoverySummary) Render() string {
	t := NewTable("Recovery summary", "metric", "value")
	t.AddRow("policy", s.Policy.String())
	t.AddRow("steps", I(s.Steps))
	t.AddRow("detection window (steps)", I(s.DetectionWindow))
	t.AddRow("completed", boolStr(s.Completed))
	t.AddRow("aborted", boolStr(s.Aborted))
	t.AddRow("final ranks", I(s.FinalRanks))
	t.AddRow("failure events", I(s.FailureEvents))
	t.AddRow("restarts", I(s.Restarts))
	t.AddRow("grows", I(s.Grows))
	t.AddRow("shrinks", I(s.Shrinks))
	t.AddRow("ranks lost", I(s.RanksLost))
	t.AddRow("ranks migrated", I(s.RanksMigrated))
	t.AddRow("replayed steps", I(s.ReplaySteps))
	t.AddRow("remap time (us)", F(s.TotalRemapUs, 1))
	return t.String()
}

func boolStr(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}
