package metrics

import (
	"lama/internal/cluster"
	"lama/internal/core"
	"lama/internal/hw"
	"lama/internal/obs"
)

// MapSummary aggregates structural qualities of a mapping plan,
// independent of any traffic pattern.
type MapSummary struct {
	// Ranks is the number of placed ranks.
	Ranks int
	// NodesUsed is the number of distinct nodes hosting at least one rank.
	NodesUsed int
	// MaxPerNode and MinPerNode describe the node-level balance (MinPerNode
	// counts only used nodes).
	MaxPerNode, MinPerNode int
	// SocketsUsed is the number of distinct (node, socket) pairs used.
	SocketsUsed int
	// Oversubscribed reports PU sharing.
	Oversubscribed bool
	// AvgNeighborLevel is the mean LCA depth of consecutive ranks placed
	// on the same node (higher = closer); 0 when no such pairs exist.
	AvgNeighborLevel float64
}

// Summarize computes a MapSummary.
func Summarize(c *cluster.Cluster, m *core.Map) MapSummary {
	s := MapSummary{Ranks: m.NumRanks(), Oversubscribed: m.Oversubscribed()}
	perNode := m.RanksByNode()
	s.NodesUsed = len(perNode)
	// Used nodes host at least one rank, so 0 is free as the "no nodes yet"
	// state and an empty map naturally reports MinPerNode == 0 (no
	// NumRanks+1 sentinel to leak out).
	for _, ranks := range perNode {
		if len(ranks) > s.MaxPerNode {
			s.MaxPerNode = len(ranks)
		}
		if s.MinPerNode == 0 || len(ranks) < s.MinPerNode {
			s.MinPerNode = len(ranks)
		}
	}
	sockets := map[[2]int]bool{}
	for i := range m.Placements {
		p := &m.Placements[i]
		if p.Leaf != nil {
			if sock := p.Leaf.Ancestor(hw.LevelSocket); sock != nil {
				sockets[[2]int{p.Node, sock.Logical}] = true
			}
		}
	}
	s.SocketsUsed = len(sockets)

	depthSum, pairs := 0, 0
	for i := 1; i < m.NumRanks(); i++ {
		a, b := &m.Placements[i-1], &m.Placements[i]
		if a.Node != b.Node {
			continue
		}
		level := c.Node(a.Node).Topo.CommonAncestorLevel(a.PU(), b.PU())
		depthSum += level.Depth()
		pairs++
	}
	if pairs > 0 {
		s.AvgNeighborLevel = float64(depthSum) / float64(pairs)
	}
	return s
}

// Record publishes the summary into an obs registry as lama_map_* gauges,
// making every Summarize call a metrics producer: whatever exposition the
// CLI chose (Prometheus text, runreport JSON) picks the structural
// qualities up alongside the engine's own counters. A nil registry is a
// no-op.
func (s MapSummary) Record(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.Gauge("lama_map_ranks").Set(float64(s.Ranks))
	reg.Gauge("lama_map_nodes_used").Set(float64(s.NodesUsed))
	reg.Gauge("lama_map_max_per_node").Set(float64(s.MaxPerNode))
	reg.Gauge("lama_map_min_per_node").Set(float64(s.MinPerNode))
	reg.Gauge("lama_map_sockets_used").Set(float64(s.SocketsUsed))
	reg.Gauge("lama_map_avg_neighbor_level").Set(s.AvgNeighborLevel)
	oversub := 0.0
	if s.Oversubscribed {
		oversub = 1
	}
	reg.Gauge("lama_map_oversubscribed").Set(oversub)
}
