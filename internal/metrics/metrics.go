package metrics

import (
	"lama/internal/cluster"
	"lama/internal/core"
	"lama/internal/hw"
)

// MapSummary aggregates structural qualities of a mapping plan,
// independent of any traffic pattern.
type MapSummary struct {
	// Ranks is the number of placed ranks.
	Ranks int
	// NodesUsed is the number of distinct nodes hosting at least one rank.
	NodesUsed int
	// MaxPerNode and MinPerNode describe the node-level balance (MinPerNode
	// counts only used nodes).
	MaxPerNode, MinPerNode int
	// SocketsUsed is the number of distinct (node, socket) pairs used.
	SocketsUsed int
	// Oversubscribed reports PU sharing.
	Oversubscribed bool
	// AvgNeighborLevel is the mean LCA depth of consecutive ranks placed
	// on the same node (higher = closer); 0 when no such pairs exist.
	AvgNeighborLevel float64
}

// Summarize computes a MapSummary.
func Summarize(c *cluster.Cluster, m *core.Map) MapSummary {
	s := MapSummary{Ranks: m.NumRanks(), Oversubscribed: m.Oversubscribed()}
	perNode := m.RanksByNode()
	s.NodesUsed = len(perNode)
	s.MinPerNode = m.NumRanks() + 1
	for _, ranks := range perNode {
		if len(ranks) > s.MaxPerNode {
			s.MaxPerNode = len(ranks)
		}
		if len(ranks) < s.MinPerNode {
			s.MinPerNode = len(ranks)
		}
	}
	if s.NodesUsed == 0 {
		s.MinPerNode = 0
	}
	sockets := map[[2]int]bool{}
	for i := range m.Placements {
		p := &m.Placements[i]
		if p.Leaf != nil {
			if sock := p.Leaf.Ancestor(hw.LevelSocket); sock != nil {
				sockets[[2]int{p.Node, sock.Logical}] = true
			}
		}
	}
	s.SocketsUsed = len(sockets)

	depthSum, pairs := 0, 0
	for i := 1; i < m.NumRanks(); i++ {
		a, b := &m.Placements[i-1], &m.Placements[i]
		if a.Node != b.Node {
			continue
		}
		level := c.Node(a.Node).Topo.CommonAncestorLevel(a.PU(), b.PU())
		depthSum += level.Depth()
		pairs++
	}
	if pairs > 0 {
		s.AvgNeighborLevel = float64(depthSum) / float64(pairs)
	}
	return s
}
