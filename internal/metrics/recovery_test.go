package metrics

import (
	"strings"
	"testing"

	"lama/internal/bind"
	"lama/internal/cluster"
	"lama/internal/core"
	"lama/internal/hw"
	"lama/internal/obs"
	"lama/internal/orte"
)

func TestSummarizeRecovery(t *testing.T) {
	sp, _ := hw.Preset("fig2")
	c := cluster.Homogeneous(2, sp)
	s := &orte.Supervisor{
		Runtime:    orte.NewRuntime(c),
		Layout:     core.MustParseLayout("csbnh"),
		BindPolicy: bind.Specific,
		BindLevel:  hw.LevelPU,
		Config:     orte.SuperviseConfig{Policy: orte.FTRespawn, MaxRestarts: -1},
	}
	rep, err := s.Run(8, 20, orte.InjectionPlan{
		NodeFailures: []orte.NodeFailure{{Node: 0, Step: 4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	sum := SummarizeRecovery(rep)
	if sum.Policy != orte.FTRespawn || !sum.Completed || sum.Aborted {
		t.Fatalf("summary = %+v", sum)
	}
	if sum.Restarts != 1 || sum.RanksMigrated != 6 || sum.RanksLost != 0 {
		t.Fatalf("summary = %+v", sum)
	}
	if sum.ReplaySteps != rep.ReplaySteps || sum.FailureEvents != 1 {
		t.Fatalf("summary = %+v", sum)
	}
	out := sum.Render()
	for _, want := range []string{"Recovery summary", "respawn", "restarts", "ranks migrated"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestSummarizeRecoveryShrinkCountsLost(t *testing.T) {
	sp, _ := hw.Preset("fig2")
	c := cluster.Homogeneous(2, sp)
	s := &orte.Supervisor{
		Runtime:    orte.NewRuntime(c),
		Layout:     core.MustParseLayout("csbnh"),
		BindPolicy: bind.Specific,
		BindLevel:  hw.LevelPU,
		Config:     orte.SuperviseConfig{Policy: orte.FTShrink},
	}
	rep, err := s.Run(8, 20, orte.InjectionPlan{
		Failures: []orte.Failure{{Rank: 3, Step: 2}, {Rank: 5, Step: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	sum := SummarizeRecovery(rep)
	if sum.RanksLost != 2 || sum.FinalRanks != 6 || sum.Restarts != 0 {
		t.Fatalf("summary = %+v", sum)
	}
}

func TestRecoverySummaryRecord(t *testing.T) {
	s := RecoverySummary{
		Completed: true, FinalRanks: 8, FailureEvents: 2, Restarts: 1,
		RanksLost: 0, RanksMigrated: 6, ReplaySteps: 12, TotalRemapUs: 55.5,
	}
	reg := obs.NewRegistry()
	s.Record(reg)
	snap := reg.Snapshot()
	for name, want := range map[string]float64{
		"lama_recovery_completed":      1,
		"lama_recovery_final_ranks":    8,
		"lama_recovery_failure_events": 2,
		"lama_recovery_restarts":       1,
		"lama_recovery_ranks_migrated": 6,
		"lama_recovery_replayed_steps": 12,
		"lama_recovery_remap_us":       55.5,
	} {
		if got := snap.Gauges[name]; got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	s.Record(nil) // nil registry must be a no-op
}

// TestSummarizeRecoveryElastic: grows and releases are counted as elastic
// operations, not as failure events, and surface in the rendered table.
func TestSummarizeRecoveryElastic(t *testing.T) {
	sp, _ := hw.Preset("fig2")
	c := cluster.Homogeneous(2, sp)
	s := &orte.Supervisor{
		Runtime:    orte.NewRuntime(c),
		Layout:     core.MustParseLayout("csbnh"),
		BindPolicy: bind.Specific,
		BindLevel:  hw.LevelPU,
		Config:     orte.SuperviseConfig{Policy: orte.FTRespawn, MaxRestarts: -1, DetectionWindow: 1},
	}
	rep, err := s.Run(8, 30, orte.InjectionPlan{
		Resizes:      []orte.ResizeEvent{{Step: 3, Delta: 4}, {Step: 10, Delta: -2}},
		NodeFailures: []orte.NodeFailure{{Node: 0, Step: 15}},
	})
	if err != nil {
		t.Fatal(err)
	}
	sum := SummarizeRecovery(rep)
	if sum.Grows != 1 || sum.Shrinks != 1 {
		t.Fatalf("summary = %+v", sum)
	}
	if sum.FailureEvents != 1 { // resizes are not failures
		t.Fatalf("FailureEvents = %d, want 1 (%+v)", sum.FailureEvents, sum)
	}
	out := sum.Render()
	for _, want := range []string{"grows", "shrinks"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
	reg := obs.NewRegistry()
	sum.Record(reg)
	snap := reg.Snapshot()
	if snap.Gauges["lama_recovery_grows"] != 1 || snap.Gauges["lama_recovery_shrinks"] != 1 {
		t.Fatalf("gauges = %+v", snap.Gauges)
	}
}
