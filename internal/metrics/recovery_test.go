package metrics

import (
	"strings"
	"testing"

	"lama/internal/bind"
	"lama/internal/cluster"
	"lama/internal/core"
	"lama/internal/hw"
	"lama/internal/orte"
)

func TestSummarizeRecovery(t *testing.T) {
	sp, _ := hw.Preset("fig2")
	c := cluster.Homogeneous(2, sp)
	s := &orte.Supervisor{
		Runtime:    orte.NewRuntime(c),
		Layout:     core.MustParseLayout("csbnh"),
		BindPolicy: bind.Specific,
		BindLevel:  hw.LevelPU,
		Config:     orte.SuperviseConfig{Policy: orte.FTRespawn, MaxRestarts: -1},
	}
	rep, err := s.Run(8, 20, orte.InjectionPlan{
		NodeFailures: []orte.NodeFailure{{Node: 0, Step: 4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	sum := SummarizeRecovery(rep)
	if sum.Policy != orte.FTRespawn || !sum.Completed || sum.Aborted {
		t.Fatalf("summary = %+v", sum)
	}
	if sum.Restarts != 1 || sum.RanksMigrated != 6 || sum.RanksLost != 0 {
		t.Fatalf("summary = %+v", sum)
	}
	if sum.ReplaySteps != rep.ReplaySteps || sum.FailureEvents != 1 {
		t.Fatalf("summary = %+v", sum)
	}
	out := sum.Render()
	for _, want := range []string{"Recovery summary", "respawn", "restarts", "ranks migrated"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestSummarizeRecoveryShrinkCountsLost(t *testing.T) {
	sp, _ := hw.Preset("fig2")
	c := cluster.Homogeneous(2, sp)
	s := &orte.Supervisor{
		Runtime:    orte.NewRuntime(c),
		Layout:     core.MustParseLayout("csbnh"),
		BindPolicy: bind.Specific,
		BindLevel:  hw.LevelPU,
		Config:     orte.SuperviseConfig{Policy: orte.FTShrink},
	}
	rep, err := s.Run(8, 20, orte.InjectionPlan{
		Failures: []orte.Failure{{Rank: 3, Step: 2}, {Rank: 5, Step: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	sum := SummarizeRecovery(rep)
	if sum.RanksLost != 2 || sum.FinalRanks != 6 || sum.Restarts != 0 {
		t.Fatalf("summary = %+v", sum)
	}
}
