package bind

import (
	"strings"
	"testing"

	"lama/internal/cluster"
	"lama/internal/core"
	"lama/internal/hw"
)

func fig2Map(t *testing.T, layout string, np int) (*cluster.Cluster, *core.Map) {
	t.Helper()
	sp, _ := hw.Preset("fig2") // 2 sockets x 3 cores x 2 PUs
	c := cluster.Homogeneous(2, sp)
	m, err := core.NewMapper(c, core.MustParseLayout(layout), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mp, err := m.Map(np)
	if err != nil {
		t.Fatal(err)
	}
	return c, mp
}

func TestPolicyNone(t *testing.T) {
	c, m := fig2Map(t, "scbnh", 4)
	plan, err := Compute(c, m, None, hw.LevelCore)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range plan.Bindings {
		if b.CPUs != nil || b.Width != 0 {
			t.Fatalf("None binding restricted: %+v", b)
		}
	}
	if err := plan.Check(c); err != nil {
		t.Fatal(err)
	}
	if plan.Policy.String() != "none" {
		t.Fatal("policy name")
	}
}

func TestPolicyLimited(t *testing.T) {
	c, m := fig2Map(t, "csnh", 4) // 4 ranks packed on node0: PUs 0,2,4,6
	plan, err := Compute(c, m, Limited, hw.LevelCore)
	if err != nil {
		t.Fatal(err)
	}
	want := hw.NewCPUSet(0, 2, 4, 6)
	for _, b := range plan.Bindings {
		if !b.CPUs.Equal(want) {
			t.Fatalf("limited set = %s, want %s", b.CPUs, want)
		}
		if b.Width != 4 {
			t.Fatalf("width = %d", b.Width)
		}
	}
}

func TestPolicySpecificCore(t *testing.T) {
	c, m := fig2Map(t, "scbnh", 24)
	plan, err := Compute(c, m, Specific, hw.LevelCore)
	if err != nil {
		t.Fatal(err)
	}
	// Binding width at core level is 2 (two hwthreads per core).
	for _, b := range plan.Bindings {
		if b.Width != 2 {
			t.Fatalf("rank %d width = %d, want 2", b.Rank, b.Width)
		}
	}
	// Two ranks per core (the two hyperthread passes) overlap at core
	// granularity; each overlapping pair shares exactly a core.
	ov := plan.Overlaps()
	if len(ov) != 12 { // 12 cores, one pair each
		t.Fatalf("overlaps = %d, want 12", len(ov))
	}
	if err := plan.Check(c); err != nil {
		t.Fatal(err)
	}
	if plan.WidthOf(0) != 2 || plan.WidthOf(99) != -1 {
		t.Fatal("WidthOf wrong")
	}
}

func TestPolicySpecificPUNoOverlap(t *testing.T) {
	c, m := fig2Map(t, "scbnh", 24)
	plan, err := Compute(c, m, Specific, hw.LevelPU)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range plan.Bindings {
		if b.Width != 1 {
			t.Fatalf("PU width = %d", b.Width)
		}
	}
	if ov := plan.Overlaps(); len(ov) != 0 {
		t.Fatalf("PU-level bindings overlap: %v", ov)
	}
}

func TestPolicySpecificSocketWidth(t *testing.T) {
	c, m := fig2Map(t, "scbnh", 4)
	plan, err := Compute(c, m, Specific, hw.LevelSocket)
	if err != nil {
		t.Fatal(err)
	}
	// A socket has 3 cores x 2 threads = 6 PUs: the paper's "binding
	// width of the N smallest processing units in that socket".
	for _, b := range plan.Bindings {
		if b.Width != 6 {
			t.Fatalf("socket width = %d, want 6", b.Width)
		}
	}
}

func TestSpecificFinerThanLeaf(t *testing.T) {
	// Map at core granularity ("scn"), bind to hwthread: the binding uses
	// the claimed PUs, not the whole core.
	sp, _ := hw.Preset("fig2")
	c := cluster.Homogeneous(1, sp)
	mapper, _ := core.NewMapper(c, core.MustParseLayout("scn"), core.Options{})
	m, err := mapper.Map(12)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Compute(c, m, Specific, hw.LevelPU)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range plan.Bindings {
		if b.Width != 1 {
			t.Fatalf("width = %d, want 1 (claimed PU only)", b.Width)
		}
	}
	if ov := plan.Overlaps(); len(ov) != 0 {
		t.Fatalf("unexpected overlaps: %v", ov)
	}
}

func TestBindingRespectsRestriction(t *testing.T) {
	sp, _ := hw.Preset("fig2")
	c := cluster.Homogeneous(1, sp)
	c.Node(0).Topo.Restrict(hw.CPUSetRange(0, 5)) // socket 0 only
	mapper, _ := core.NewMapper(c, core.MustParseLayout("scbnh"), core.Options{})
	m, err := mapper.Map(6)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Compute(c, m, Specific, hw.LevelSocket)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Check(c); err != nil {
		t.Fatal(err)
	}
	for _, b := range plan.Bindings {
		if !b.CPUs.IsSubset(hw.CPUSetRange(0, 5)) {
			t.Fatalf("binding %s escapes restriction", b.CPUs)
		}
	}
}

func TestComputeErrors(t *testing.T) {
	c, m := fig2Map(t, "scbnh", 2)
	if _, err := Compute(c, nil, None, hw.LevelCore); err == nil {
		t.Fatal("nil map")
	}
	if _, err := Compute(c, &core.Map{}, None, hw.LevelCore); err == nil {
		t.Fatal("empty map")
	}
	if _, err := Compute(c, m, Policy(9), hw.LevelCore); err == nil {
		t.Fatal("unknown policy")
	}
	if _, err := Compute(c, m, Specific, hw.Level(99)); err == nil {
		t.Fatal("invalid level")
	}
	// Corrupt node index.
	bad := *m
	bad.Placements = append([]core.Placement(nil), m.Placements...)
	bad.Placements[0].Node = 42
	if _, err := Compute(c, &bad, Specific, hw.LevelCore); err == nil {
		t.Fatal("unknown node")
	}
	if !strings.HasPrefix(Policy(9).String(), "policy(") {
		t.Fatal("policy string")
	}
}

func TestCheckDetectsEscape(t *testing.T) {
	c, m := fig2Map(t, "scbnh", 2)
	plan, err := Compute(c, m, Specific, hw.LevelPU)
	if err != nil {
		t.Fatal(err)
	}
	// Restrict after planning: the plan is now invalid.
	c.Node(0).Topo.Restrict(hw.NewCPUSet(11))
	if err := plan.Check(c); err == nil {
		t.Fatal("Check should detect escape")
	}
	plan.Bindings[0].Node = 42
	if err := plan.Check(c); err == nil {
		t.Fatal("Check should detect unknown node")
	}
}

func TestComputeWidth(t *testing.T) {
	c, m := fig2Map(t, "scbnh", 4) // fig2: 2 sockets x 3 cores x 2 threads
	// "2c": each rank bound to its core plus the next sibling core.
	plan, err := ComputeWidth(c, m, hw.LevelCore, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range plan.Bindings {
		if b.Width != 4 { // 2 cores x 2 threads
			t.Fatalf("rank %d width = %d, want 4", b.Rank, b.Width)
		}
	}
	if err := plan.Check(c); err != nil {
		t.Fatal(err)
	}
	// Clamping: binding 5 cores at the last core of a 3-core socket only
	// reaches the socket edge. Rank mapped to core 2 of socket 0
	// ("scbnh" rank 4 = socket 0 core 2).
	plan5, err := ComputeWidth(c, m, hw.LevelCore, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Rank 0 is core 0: 3 cores available in socket -> 6 PUs.
	if plan5.Bindings[0].Width != 6 {
		t.Fatalf("clamped width = %d, want 6", plan5.Bindings[0].Width)
	}
	// Errors.
	if _, err := ComputeWidth(c, m, hw.LevelCore, 0); err == nil {
		t.Fatal("count 0")
	}
	if _, err := ComputeWidth(c, m, hw.Level(99), 1); err == nil {
		t.Fatal("bad level")
	}
	if _, err := ComputeWidth(c, &core.Map{}, hw.LevelCore, 1); err == nil {
		t.Fatal("empty map")
	}
	// Width 1 equals plain Specific.
	p1, err := ComputeWidth(c, m, hw.LevelCore, 1)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := Compute(c, m, Specific, hw.LevelCore)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p1.Bindings {
		if !p1.Bindings[i].CPUs.Equal(ps.Bindings[i].CPUs) {
			t.Fatalf("width-1 differs from Specific at rank %d", i)
		}
	}
}

func TestParseWidthSpec(t *testing.T) {
	cases := map[string]struct {
		level hw.Level
		count int
	}{
		"1c":  {hw.LevelCore, 1},
		"2s":  {hw.LevelSocket, 2},
		"4h":  {hw.LevelPU, 4},
		"c":   {hw.LevelCore, 1},
		"2N":  {hw.LevelNUMA, 2},
		"1L2": {hw.LevelL2, 1},
	}
	for text, want := range cases {
		level, count, err := ParseWidthSpec(text)
		if err != nil || level != want.level || count != want.count {
			t.Errorf("ParseWidthSpec(%q) = %v,%d,%v", text, level, count, err)
		}
	}
	for _, bad := range []string{"", "2", "0c", "2x", "n", "2n", "c2"} {
		if _, _, err := ParseWidthSpec(bad); err == nil {
			t.Errorf("ParseWidthSpec(%q) should fail", bad)
		}
	}
}
