package bind

import (
	"strings"
	"testing"

	"lama/internal/cluster"
	"lama/internal/core"
	"lama/internal/hw"
)

func TestRenderCoreBinding(t *testing.T) {
	sp, _ := hw.Preset("fig2") // 2 sockets x 3 cores x 2 threads
	c := cluster.Homogeneous(1, sp)
	mapper, _ := core.NewMapper(c, core.MustParseLayout("scbnh"), core.Options{})
	m, err := mapper.Map(2)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Compute(c, m, Specific, hw.LevelCore)
	if err != nil {
		t.Fatal(err)
	}
	out := plan.Render(c)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines:\n%s", out)
	}
	// Rank 0 on socket 0 core 0; rank 1 on socket 1 core 0 (scbnh scatter).
	if lines[0] != "rank 0 @ node0: [BB/../..][../../..]" {
		t.Fatalf("rank 0 mask = %q", lines[0])
	}
	if lines[1] != "rank 1 @ node0: [../../..][BB/../..]" {
		t.Fatalf("rank 1 mask = %q", lines[1])
	}
}

func TestRenderSocketAndUnbound(t *testing.T) {
	sp, _ := hw.Preset("fig2")
	c := cluster.Homogeneous(1, sp)
	mapper, _ := core.NewMapper(c, core.MustParseLayout("scbnh"), core.Options{})
	m, err := mapper.Map(1)
	if err != nil {
		t.Fatal(err)
	}
	sock, err := Compute(c, m, Specific, hw.LevelSocket)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(sock.Render(c)); got != "rank 0 @ node0: [BB/BB/BB][../../..]" {
		t.Fatalf("socket mask = %q", got)
	}
	none, err := Compute(c, m, None, hw.LevelCore)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(none.Render(c), "unbound") {
		t.Fatalf("none render = %q", none.Render(c))
	}
}

func TestRenderUnknownNode(t *testing.T) {
	sp, _ := hw.Preset("fig2")
	c := cluster.Homogeneous(1, sp)
	plan := &Plan{Bindings: []Binding{{Rank: 0, Node: 7, CPUs: hw.NewCPUSet(0)}}}
	if !strings.Contains(plan.Render(c), "unknown node") {
		t.Fatal("unknown node not reported")
	}
}
