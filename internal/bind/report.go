package bind

import (
	"fmt"
	"strings"

	"lama/internal/cluster"
	"lama/internal/hw"
)

// Render prints the plan in the style of Open MPI's --report-bindings
// output: one line per rank with a bracket group per socket, a slash-
// separated slot per core, and one character per hardware thread —
// 'B' where the rank is bound, '.' elsewhere. Example for a rank bound
// to core 1 of socket 0 on a 2x(2 cores x 2 threads) node:
//
//	rank 3 @ node1: [../BB][../..]
//
// Unbound ranks (Policy None) render as "unbound".
func (pl *Plan) Render(c *cluster.Cluster) string {
	var sb strings.Builder
	for i := range pl.Bindings {
		b := &pl.Bindings[i]
		node := c.Node(b.Node)
		if node == nil {
			fmt.Fprintf(&sb, "rank %d @ node?%d: unknown node\n", b.Rank, b.Node)
			continue
		}
		fmt.Fprintf(&sb, "rank %d @ %s: %s\n", b.Rank, node.Name, bindingMask(node, b.CPUs))
	}
	return sb.String()
}

// bindingMask renders one node's socket/core/thread mask for a CPU set.
func bindingMask(node *cluster.Node, cpus *hw.CPUSet) string {
	if cpus == nil {
		return "unbound"
	}
	var sb strings.Builder
	for _, sock := range node.Topo.Objects(hw.LevelSocket) {
		sb.WriteByte('[')
		first := true
		for _, coreObj := range coresUnder(sock) {
			if !first {
				sb.WriteByte('/')
			}
			first = false
			for _, pu := range pusUnder(coreObj) {
				if cpus.Contains(pu.OS) {
					sb.WriteByte('B')
				} else {
					sb.WriteByte('.')
				}
			}
		}
		sb.WriteByte(']')
	}
	return sb.String()
}

func coresUnder(o *hw.Object) []*hw.Object { return descendants(o, hw.LevelCore) }
func pusUnder(o *hw.Object) []*hw.Object   { return descendants(o, hw.LevelPU) }

func descendants(o *hw.Object, level hw.Level) []*hw.Object {
	if o.Level == level {
		return []*hw.Object{o}
	}
	var out []*hw.Object
	for _, c := range o.Children {
		out = append(out, descendants(c, level)...)
	}
	return out
}
