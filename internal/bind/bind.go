// Package bind implements the binding step of process placement (paper
// §III-B): given a mapping plan, compute the processor restriction each
// launched process will run under. Three policies are supported, matching
// the paper's taxonomy: no restrictions, limited-set restrictions (a common
// subset per node), and specific-resource restrictions (a unique resource
// per process, yielding a binding width).
package bind

import (
	"fmt"

	"lama/internal/cluster"
	"lama/internal/core"
	"lama/internal/hw"
)

// Policy selects how processes are restricted to processors.
type Policy int

const (
	// None leaves the OS scheduler full autonomy (paper §III-B case 1).
	None Policy = iota
	// Limited restricts every process of the job on a node to one common
	// subset of the node's processors (case 2).
	Limited
	// Specific assigns each process its own resource at a chosen level
	// (case 3) — the only policy that prevents inter-processor migration.
	Specific
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case None:
		return "none"
	case Limited:
		return "limited"
	case Specific:
		return "specific"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Binding is the processor restriction of one rank.
type Binding struct {
	// Rank is the process rank.
	Rank int
	// Node is the cluster node index the rank runs on.
	Node int
	// CPUs is the set of PU OS indices the process may run on; nil means
	// unrestricted (Policy None).
	CPUs *hw.CPUSet
	// Width is the binding width: the number of smallest processing units
	// the process is bound to (paper §III-B). Zero means unbound.
	Width int
}

// Plan is the binding plan for a whole job.
type Plan struct {
	// Policy is the binding policy used.
	Policy Policy
	// Level is the resource level bound to (meaningful for Specific).
	Level hw.Level
	// Bindings has one entry per rank, ordered by rank.
	Bindings []Binding
}

// Compute derives a binding plan from a map. For Policy Specific, level
// selects the resource granularity: a rank is bound to the PU set of its
// mapped leaf's ancestor at that level, or to its claimed PUs when level
// is deeper than the leaf (e.g. binding to hardware threads after mapping
// to cores). For Limited, level is ignored and each rank is bound to the
// union of the job's claimed PUs on its node. For None, no restriction is
// produced.
func Compute(c *cluster.Cluster, m *core.Map, policy Policy, level hw.Level) (*Plan, error) {
	if m == nil || m.NumRanks() == 0 {
		return nil, fmt.Errorf("bind: empty map")
	}
	plan := &Plan{Policy: policy, Level: level}
	switch policy {
	case None:
		for i := range m.Placements {
			p := &m.Placements[i]
			plan.Bindings = append(plan.Bindings, Binding{Rank: p.Rank, Node: p.Node})
		}
	case Limited:
		perNode := map[int]*hw.CPUSet{}
		for i := range m.Placements {
			p := &m.Placements[i]
			if perNode[p.Node] == nil {
				perNode[p.Node] = hw.NewCPUSet()
			}
			for _, pu := range p.PUs {
				perNode[p.Node].Set(pu)
			}
		}
		for i := range m.Placements {
			p := &m.Placements[i]
			set := perNode[p.Node]
			plan.Bindings = append(plan.Bindings, Binding{
				Rank: p.Rank, Node: p.Node, CPUs: set, Width: set.Count(),
			})
		}
	case Specific:
		if !level.Valid() {
			return nil, fmt.Errorf("bind: invalid binding level %d", int(level))
		}
		for i := range m.Placements {
			p := &m.Placements[i]
			set, err := specificSet(c, p, level)
			if err != nil {
				return nil, err
			}
			plan.Bindings = append(plan.Bindings, Binding{
				Rank: p.Rank, Node: p.Node, CPUs: set, Width: set.Count(),
			})
		}
	default:
		return nil, fmt.Errorf("bind: unknown policy %v", policy)
	}
	return plan, nil
}

// specificSet computes the Specific-policy CPU set for one placement.
func specificSet(c *cluster.Cluster, p *core.Placement, level hw.Level) (*hw.CPUSet, error) {
	node := c.Node(p.Node)
	if node == nil {
		return nil, fmt.Errorf("bind: rank %d on unknown node %d", p.Rank, p.Node)
	}
	leafLevel := hw.LevelPU
	if p.Leaf != nil {
		leafLevel = p.Leaf.Level
	}
	if level > leafLevel || p.Leaf == nil {
		// Binding finer than (or without) the mapped leaf: bind to the
		// claimed PUs themselves. This is why the map addresses ranks at
		// PU resolution (paper §III-A).
		set := hw.NewCPUSet(p.PUs...)
		if set.Empty() {
			return nil, fmt.Errorf("bind: rank %d claims no PUs", p.Rank)
		}
		return set, nil
	}
	anc := p.Leaf.Ancestor(level)
	if anc == nil {
		return nil, fmt.Errorf("bind: rank %d has no ancestor at %s", p.Rank, level)
	}
	set := anc.UsablePUSet()
	if set.Empty() {
		return nil, fmt.Errorf("bind: rank %d binding target %v has no usable PUs", p.Rank, anc)
	}
	return set, nil
}

// Width returns the binding width of a rank, or -1 if the rank is unknown.
func (pl *Plan) WidthOf(rank int) int {
	if rank < 0 || rank >= len(pl.Bindings) {
		return -1
	}
	return pl.Bindings[rank].Width
}

// Overlaps returns the pairs of distinct ranks whose Specific bindings
// share a PU on the same node. Under Specific binding with a
// non-oversubscribed map at PU granularity this must be empty; coarser
// levels may legitimately overlap (e.g. two ranks bound to one socket).
func (pl *Plan) Overlaps() [][2]int {
	var out [][2]int
	for i := range pl.Bindings {
		for j := i + 1; j < len(pl.Bindings); j++ {
			a, b := &pl.Bindings[i], &pl.Bindings[j]
			if a.Node == b.Node && a.CPUs.Intersects(b.CPUs) {
				out = append(out, [2]int{a.Rank, b.Rank})
			}
		}
	}
	return out
}

// Check verifies that every binding is satisfiable on its node: non-empty
// and fully usable. Policy None bindings are always satisfiable.
func (pl *Plan) Check(c *cluster.Cluster) error {
	for i := range pl.Bindings {
		b := &pl.Bindings[i]
		if b.CPUs == nil {
			continue
		}
		node := c.Node(b.Node)
		if node == nil {
			return fmt.Errorf("bind: rank %d on unknown node %d", b.Rank, b.Node)
		}
		if !b.CPUs.IsSubset(node.Topo.AllowedSet()) {
			return fmt.Errorf("bind: rank %d bound outside allowed set (%s vs %s)",
				b.Rank, b.CPUs, node.Topo.AllowedSet())
		}
	}
	return nil
}

// ComputeWidth computes a Specific-style plan where each rank is bound to
// `count` consecutive objects at the given level, starting at its own —
// the "<count><level>" binding syntax of the paper's Open MPI
// implementation (rmaps_lama_bind, e.g. "2c" = two cores). count must be
// at least 1; siblings are taken within the parent and clamped at the
// last sibling.
func ComputeWidth(c *cluster.Cluster, m *core.Map, level hw.Level, count int) (*Plan, error) {
	if count < 1 {
		return nil, fmt.Errorf("bind: non-positive width count %d", count)
	}
	if !level.Valid() {
		return nil, fmt.Errorf("bind: invalid binding level %d", int(level))
	}
	if m == nil || m.NumRanks() == 0 {
		return nil, fmt.Errorf("bind: empty map")
	}
	plan := &Plan{Policy: Specific, Level: level}
	for i := range m.Placements {
		p := &m.Placements[i]
		base, err := specificSet(c, p, level)
		if err != nil {
			return nil, err
		}
		set := base.Clone()
		if count > 1 && p.Leaf != nil {
			if anchor := p.Leaf.Ancestor(level); anchor != nil && anchor.Parent != nil {
				sibs := anchor.Parent.Children
				for k := 1; k < count && anchor.Rank+k < len(sibs); k++ {
					set.Or(sibs[anchor.Rank+k].UsablePUSet())
				}
			}
		}
		if set.Empty() {
			return nil, fmt.Errorf("bind: rank %d width binding is empty", p.Rank)
		}
		plan.Bindings = append(plan.Bindings, Binding{
			Rank: p.Rank, Node: p.Node, CPUs: set, Width: set.Count(),
		})
	}
	return plan, nil
}

// ParseWidthSpec parses a "<count><level>" binding spec such as "1c",
// "2s", or "4h" (Table I abbreviations; count defaults to 1 when absent,
// e.g. "c").
func ParseWidthSpec(text string) (hw.Level, int, error) {
	i := 0
	for i < len(text) && text[i] >= '0' && text[i] <= '9' {
		i++
	}
	count := 1
	if i > 0 {
		n := 0
		for _, d := range text[:i] {
			n = n*10 + int(d-'0')
		}
		count = n
	}
	level, ok := hw.LevelByAbbrev(text[i:])
	if !ok || level == hw.LevelMachine {
		return 0, 0, fmt.Errorf("bind: bad width spec %q (want e.g. \"1c\", \"2s\")", text)
	}
	if count < 1 {
		return 0, 0, fmt.Errorf("bind: bad width count in %q", text)
	}
	return level, count, nil
}
