package place

import (
	"context"
	"time"

	"lama/internal/core"
	"lama/internal/obs"
	"lama/internal/parallel"
)

// Job is one unit of a cross-policy sweep: a policy plus the request to
// run it with. Distinct jobs may share a request (policies only read it).
type Job struct {
	Policy Policy
	Req    *Request
}

// Sweep runs every job across a bounded worker pool (workers <= 0 means
// GOMAXPROCS) — the policy-generic form of core.SweepLayouts, with the
// same first-error-cancel machinery. The returned maps are in job order
// regardless of completion order.
//
// The sweep-level observer is taken from the first job carrying one; like
// core.SweepEach, the per-job requests run with their event sink stripped
// (metrics and spans still flow) so per-map "map/done" events give way to
// the sweep's own "sweep"/"job" progress events.
func Sweep(ctx context.Context, jobs []Job, workers int) ([]*core.Map, error) {
	out := make([]*core.Map, len(jobs))
	err := SweepEach(ctx, jobs, workers, func(i int, m *core.Map) error {
		out[i] = m
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// SweepEach is the streaming form of Sweep: visit(i, m) is invoked exactly
// once per successfully placed job, from the pool's worker goroutines, so
// visit MUST be safe for concurrent use. A visit error counts as that
// job's failure; the first error (by lowest job index) aborts the sweep.
func SweepEach(ctx context.Context, jobs []Job, workers int, visit func(i int, m *core.Map) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	var o *obs.Observer
	for _, j := range jobs {
		if j.Req != nil && j.Req.Opts.Obs != nil {
			o = j.Req.Opts.Obs
			break
		}
	}
	var t0 time.Time
	if o != nil {
		t0 = time.Now() //lama:nondet-ok latency observability only, never reaches mapping output
	}
	workers = parallel.Workers(len(jobs), workers)
	if o.Enabled() {
		o.Emit(obs.SrcSweep, obs.EvStart, obs.NoStep,
			obs.F("jobs", len(jobs)), obs.F("workers", workers))
	}
	err := parallel.ForEachWorker(len(jobs), workers, func(_, i int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		job := jobs[i]
		req := job.Req
		if jo := req.Opts.Obs; jo.Enabled() {
			// Copy the request with the sink stripped so per-map events
			// don't drown the trace; metrics and spans still flow.
			stripped := *jo
			stripped.Sink = nil
			r := *req
			r.Opts.Obs = &stripped
			req = &r
		}
		var jobStart time.Time
		if o.Enabled() {
			jobStart = time.Now() //lama:nondet-ok latency observability only, never reaches mapping output
		}
		m, err := Run(ctx, job.Policy, req)
		if err != nil {
			if o.Enabled() {
				o.Emit(obs.SrcSweep, obs.EvJobFailed, obs.NoStep,
					obs.F("index", i), obs.F("policy", job.Policy.Name()),
					obs.F("error", err.Error()))
			}
			return err
		}
		if o.Enabled() {
			o.Emit(obs.SrcSweep, obs.EvJob, obs.NoStep,
				obs.F("index", i), obs.F("policy", job.Policy.Name()),
				obs.F("placed", len(m.Placements)), obs.F("sweeps", m.Sweeps),
				obs.F("us", float64(time.Since(jobStart))/float64(time.Microsecond))) //lama:nondet-ok latency observability only, never reaches mapping output
		}
		o.Reg().Counter("lama_sweep_jobs_total").Inc()
		return visit(i, m)
	})
	if o != nil {
		us := float64(time.Since(t0)) / float64(time.Microsecond) //lama:nondet-ok latency observability only, never reaches mapping output
		o.Reg().Histogram("lama_sweep_duration_us", obs.LatencyBucketsUs).Observe(us)
		if o.Enabled() {
			fields := []obs.Field{obs.F("jobs", len(jobs)), obs.F("us", us)}
			if err != nil {
				fields = append(fields, obs.F("error", err.Error()))
			}
			o.Emit(obs.SrcSweep, obs.EvDone, obs.NoStep, fields...)
		}
	}
	return err
}
