// Package place unifies every placement strategy of the repository behind
// one interface, one registry, and one request type. The paper frames the
// LAMA as a point in a space of mapping strategies (§II, §V compares it to
// by-slot/by-node round-robin, MPICH2 pack/scatter, BlueGene XYZT orders,
// and rankfiles); this package makes that space first-class so strategies
// can be compared, swept, and served interchangeably.
//
// A Policy consumes a Request — the superset of inputs any strategy needs
// (cluster, process count, LAMA layout, traffic matrix, torus shape,
// rankfile text, seed, and the mapping options including the Observer) —
// and produces a core.Map. Strategies self-register in their package's
// init (importing lama/internal/place/all links every built-in one), so
// callers resolve them by name:
//
//	m, err := place.Place("treematch", &place.Request{
//		Cluster: c, NP: 64, Traffic: tm,
//	})
//
// Run wraps every non-self-instrumenting policy with the uniform
// observation contract (a "place" phase span, a "map"/"done" event, and
// the placement latency metrics), so traces and run reports carry the
// mapping phase identically whichever strategy produced the map — the
// LAMA's core.Mapper instruments itself and is marked SelfObserving.
package place

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"lama/internal/cluster"
	"lama/internal/commpat"
	"lama/internal/core"
	"lama/internal/hw"
	"lama/internal/obs"
)

// Request bundles everything a placement policy may consume. Each policy
// reads only the fields it documents (see Names' table in the README);
// unused fields are ignored, so one Request can be handed to every
// registered policy in a sweep.
type Request struct {
	// Cluster is the allocation to place onto (required).
	Cluster *cluster.Cluster
	// NP is the number of processes to place (required, > 0).
	NP int
	// Layout is the LAMA process layout ("lama" policy). The zero layout
	// falls back to "csbnh", the Level-1 default of the paper's §V.
	Layout core.Layout
	// Traffic is the application communication matrix (traffic-aware
	// policies such as "treematch", and the reorder post-pass stage).
	Traffic *commpat.Matrix
	// TorusDims is the X, Y, Z shape of the torus ("torus" policy). All
	// zero means "derive a near-cubic shape from the node count".
	TorusDims [3]int
	// TorusOrder is the xyzt iteration-order permutation ("torus" policy);
	// empty means "xyzt".
	TorusOrder string
	// RankfileText is the Level-4 irregular placement file ("rankfile"
	// policy).
	RankfileText string
	// Seed drives randomized policies ("random").
	Seed int64
	// BlockSize is the SLURM plane distribution block ("plane" policy);
	// zero means 1.
	BlockSize int
	// PackLevel is the topology level for "pack" and "scatter"; the zero
	// value is the machine (whole-node) level.
	PackLevel hw.Level
	// Opts are the mapping options: oversubscription, PEs per process,
	// per-resource caps, and the Observer every pipeline stage reports to.
	Opts core.Options
}

// Validate checks the fields every policy requires.
func (r *Request) Validate() error {
	if r == nil {
		return fmt.Errorf("place: nil request")
	}
	if r.Cluster == nil || r.Cluster.NumNodes() == 0 {
		return fmt.Errorf("place: empty cluster")
	}
	if r.NP <= 0 {
		return fmt.Errorf("place: non-positive process count %d", r.NP)
	}
	return nil
}

// Policy is one placement strategy: a named function from a Request to a
// mapping plan. Place must not retain or mutate the request.
type Policy interface {
	// Name returns the registry name (e.g. "lama", "by-slot", "treematch").
	Name() string
	// Place maps req.NP ranks onto req.Cluster. The context cancels the
	// run at phase boundaries (policies must not check it inside their
	// per-coordinate hot loops); ctx is always non-nil under Run.
	Place(ctx context.Context, req *Request) (*core.Map, error)
}

// SelfObserving marks policies whose Place already records the mapping
// phase span, the "map"/"done" event, and the placement latency metrics
// (the LAMA's core.Mapper does). Run leaves them alone; every other policy
// is wrapped so all paths emit the same observation vocabulary.
type SelfObserving interface {
	SelfObserving()
}

var (
	regMu    sync.RWMutex
	regOrder []string
	registry = map[string]Policy{}
)

// Register adds a policy to the registry. Registering a name twice
// replaces the previous policy but keeps its original registration-order
// position, so Names stays stable across re-registration.
func Register(p Policy) {
	if p == nil || p.Name() == "" {
		panic("place: Register with nil or unnamed policy")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, exists := registry[p.Name()]; !exists {
		regOrder = append(regOrder, p.Name())
	}
	registry[p.Name()] = p
}

// Lookup resolves a registered policy by name.
func Lookup(name string) (Policy, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	p, ok := registry[name]
	return p, ok
}

// Names returns the registered policy names in registration order (stable
// within one process: package init order, then explicit Register calls).
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	return append([]string(nil), regOrder...)
}

// unknownPolicyError names the missing policy and lists what is registered
// (sorted, so the message is deterministic).
func unknownPolicyError(name string) error {
	known := Names()
	sort.Strings(known)
	return fmt.Errorf("place: unknown policy %q (registered: %s)",
		name, strings.Join(known, ", "))
}

// Place resolves a policy by name and runs it with the uniform
// instrumentation contract.
func Place(ctx context.Context, name string, req *Request) (*core.Map, error) {
	p, ok := Lookup(name)
	if !ok {
		return nil, unknownPolicyError(name)
	}
	return Run(ctx, p, req)
}

// Run executes one policy under the uniform observation contract: the
// request is validated, and unless the policy is SelfObserving the call is
// wrapped in a "place" phase span, a "map"/"done" (or "map"/"stall")
// event, and the placement latency metrics — exactly the vocabulary
// core.Mapper.Map emits — so rankfile and baseline runs are no longer
// silently missing the mapping phase from traces and run reports. With
// profiling labels on (the -listen telemetry server enables them), every
// policy execution — SelfObserving included — additionally runs under the
// lama_policy pprof label, so CPU profiles attribute samples per strategy.
func Run(ctx context.Context, p Policy, req *Request) (*core.Map, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	o := req.Opts.Obs
	if _, self := p.(SelfObserving); self {
		return invoke(ctx, p, req, o)
	}
	var t0 time.Time
	if o != nil {
		t0 = time.Now() //lama:nondet-ok latency observability only, never reaches mapping output
	}
	endPlace := o.StartSpan(obs.SpanPlace)
	m, err := invoke(ctx, p, req, o)
	endPlace()
	if o == nil {
		return m, err
	}
	if err != nil {
		o.Reg().Counter("lama_map_stalls_total").Inc()
		if o.Enabled() {
			o.Emit(obs.SrcMap, obs.EvStall, obs.NoStep,
				obs.F("policy", p.Name()),
				obs.F("np", req.NP),
				obs.F("error", err.Error()))
		}
		return nil, err
	}
	us := float64(time.Since(t0)) / float64(time.Microsecond) //lama:nondet-ok latency observability only, never reaches mapping output
	if reg := o.Reg(); reg != nil {
		reg.Histogram("lama_map_duration_us", obs.LatencyBucketsUs).Observe(us)
		reg.Counter("lama_maps_total").Inc()
		reg.Counter("lama_ranks_placed_total").Add(int64(len(m.Placements)))
	}
	if o.Enabled() {
		o.Emit(obs.SrcMap, obs.EvDone, obs.NoStep,
			obs.F("policy", p.Name()),
			obs.F("np", req.NP),
			obs.F("placed", len(m.Placements)),
			obs.F("sweeps", m.Sweeps),
			obs.F("us", us))
	}
	return m, nil
}

// invoke runs the policy, under its lama_policy pprof label when profiling
// labels are on; when they are off (every benchmark and allocation-pinned
// path) it is a plain call with zero extra cost.
func invoke(ctx context.Context, p Policy, req *Request, o *obs.Observer) (m *core.Map, err error) {
	if !o.PprofLabeled() {
		return p.Place(ctx, req)
	}
	obs.WithPprofLabel(obs.PprofLabelPolicy, p.Name(), func() {
		m, err = p.Place(ctx, req)
	})
	return m, err
}
