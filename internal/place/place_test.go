package place_test

import (
	"context"
	"strings"
	"testing"

	"lama/internal/cluster"
	"lama/internal/commpat"
	"lama/internal/core"
	"lama/internal/hw"
	"lama/internal/obs"
	"lama/internal/place"
	_ "lama/internal/place/all"
	"lama/internal/rankfile"
)

// builtins is the full registered strategy space this PR unifies.
var builtins = []string{
	"lama", "by-slot", "by-node", "pack", "scatter",
	"random", "plane", "rankfile", "torus", "treematch",
}

func nehalemCluster(t *testing.T, nodes int) *cluster.Cluster {
	t.Helper()
	sp, ok := hw.Preset("nehalem-ep")
	if !ok {
		t.Fatal("nehalem-ep preset missing")
	}
	return cluster.Homogeneous(nodes, sp)
}

// requestFor builds a Request that satisfies every policy's input needs on
// the given cluster: traffic for treematch, synthesized rankfile text for
// rankfile, and zero torus dims (the policy derives a fitting shape).
func requestFor(t *testing.T, c *cluster.Cluster, np int) *place.Request {
	t.Helper()
	req := &place.Request{
		Cluster: c, NP: np,
		Traffic: commpat.Ring(np, 1<<20),
		Seed:    7,
	}
	base, err := place.Place(context.Background(), "by-slot", &place.Request{Cluster: c, NP: np})
	if err != nil {
		t.Fatalf("by-slot for rankfile synthesis: %v", err)
	}
	f, err := rankfile.FromMap(base)
	if err != nil {
		t.Fatal(err)
	}
	req.RankfileText = rankfile.Format(f)
	return req
}

func TestNamesListEveryBuiltin(t *testing.T) {
	names := place.Names()
	seen := map[string]bool{}
	for _, n := range names {
		seen[n] = true
	}
	for _, want := range builtins {
		if !seen[want] {
			t.Errorf("registry missing %q (have %v)", want, names)
		}
	}
	// "lama" registers from within place itself, ahead of the linked
	// strategy packages, so it must lead the registration order.
	if len(names) == 0 || names[0] != "lama" {
		t.Errorf("Names()[0] = %v, want lama first", names)
	}
}

func TestLookupUnknownListsRegistered(t *testing.T) {
	_, err := place.Place(context.Background(), "no-such-policy", &place.Request{})
	if err == nil {
		t.Fatal("expected error for unknown policy")
	}
	if !strings.Contains(err.Error(), "lama") || !strings.Contains(err.Error(), "treematch") {
		t.Errorf("unknown-policy error should list registered names, got %v", err)
	}
}

func TestValidateRejectsBadRequests(t *testing.T) {
	c := nehalemCluster(t, 2)
	if _, err := place.Place(context.Background(), "by-slot", &place.Request{Cluster: c}); err == nil {
		t.Error("NP=0 accepted")
	}
	if _, err := place.Place(context.Background(), "by-slot", &place.Request{NP: 4}); err == nil {
		t.Error("nil cluster accepted")
	}
}

// TestRunUniformObservation is the satellite-1 contract at the place
// layer: a policy with no instrumentation of its own (by-slot) still
// yields the "place" span, the "map"/"done" event, and the mapping
// metrics when run through the registry.
func TestRunUniformObservation(t *testing.T) {
	c := nehalemCluster(t, 2)
	sink := obs.NewMemorySink()
	o := &obs.Observer{
		Sink: sink, Metrics: obs.NewRegistry(), Phases: obs.NewPhaseTimer(),
		Clock: func() int64 { return 0 },
	}
	m, err := place.Place(context.Background(), "by-slot", &place.Request{
		Cluster: c, NP: 8, Opts: core.Options{Obs: o},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumRanks() != 8 {
		t.Fatalf("placed %d ranks, want 8", m.NumRanks())
	}
	names := sink.Names("map")
	if len(names) != 1 || names[0] != "map/done" {
		t.Errorf("map events = %v, want [map/done]", names)
	}
	if got := o.Metrics.Counter("lama_maps_total").Value(); got != 1 {
		t.Errorf("lama_maps_total = %d, want 1", got)
	}
	if got := o.Metrics.Counter("lama_ranks_placed_total").Value(); got != 8 {
		t.Errorf("lama_ranks_placed_total = %d, want 8", got)
	}
	spans := o.Phases.Spans()
	if len(spans) != 1 || spans[0].Name != "place" {
		t.Errorf("spans = %v, want one place span", spans)
	}
}

func TestRunStallEmitsStallEvent(t *testing.T) {
	c := nehalemCluster(t, 2)
	sink := obs.NewMemorySink()
	o := &obs.Observer{Sink: sink, Metrics: obs.NewRegistry(), Clock: func() int64 { return 0 }}
	// treematch without a traffic matrix is a policy-level failure.
	_, err := place.Place(context.Background(), "treematch", &place.Request{
		Cluster: c, NP: 4, Opts: core.Options{Obs: o},
	})
	if err == nil {
		t.Fatal("expected treematch to fail without traffic")
	}
	names := sink.Names("map")
	if len(names) != 1 || names[0] != "map/stall" {
		t.Errorf("map events = %v, want [map/stall]", names)
	}
	if got := o.Metrics.Counter("lama_map_stalls_total").Value(); got != 1 {
		t.Errorf("lama_map_stalls_total = %d, want 1", got)
	}
}

// TestCrossPolicyProperties is satellite 3: every registered policy, on a
// homogeneous cluster, a heterogeneous cluster, and a cluster with a
// failed node, must place ranks 0..np-1 exactly once, only on usable PUs,
// and without PU sharing (oversubscription was not requested).
func TestCrossPolicyProperties(t *testing.T) {
	bgp, ok := hw.Preset("bgp-node")
	if !ok {
		t.Fatal("bgp-node preset missing")
	}
	neh, _ := hw.Preset("nehalem-ep")

	failed := nehalemCluster(t, 4)
	if !failed.FailNode(1) {
		t.Fatal("FailNode(1) refused")
	}
	clusters := []struct {
		name string
		c    *cluster.Cluster
	}{
		{"homogeneous", nehalemCluster(t, 4)},
		{"heterogeneous", cluster.FromSpecs(neh, bgp, neh)},
		{"post-failnode", failed},
	}
	const np = 8
	for _, tc := range clusters {
		t.Run(tc.name, func(t *testing.T) {
			req := requestFor(t, tc.c, np)
			for _, name := range place.Names() {
				m, err := place.Place(context.Background(), name, req)
				if err != nil {
					t.Errorf("%s: %v", name, err)
					continue
				}
				if err := m.Validate(tc.c); err != nil {
					t.Errorf("%s: invalid map: %v", name, err)
					continue
				}
				if m.NumRanks() != np {
					t.Errorf("%s: %d ranks, want %d", name, m.NumRanks(), np)
				}
				if m.Oversubscribed() {
					t.Errorf("%s: oversubscribed without request", name)
				}
				type key struct{ node, pu int }
				claimed := map[key]int{}
				for _, p := range m.Placements {
					for _, pu := range p.PUs {
						claimed[key{p.Node, pu}]++
					}
				}
				for k, n := range claimed {
					if n > 1 {
						t.Errorf("%s: PU %v claimed %d times", name, k, n)
					}
				}
			}
		})
	}
}

// TestPolicyAvoidsFailedNode sharpens the post-failure property: no rank
// may land on the failed node at all.
func TestPolicyAvoidsFailedNode(t *testing.T) {
	c := nehalemCluster(t, 4)
	if !c.FailNode(2) {
		t.Fatal("FailNode(2) refused")
	}
	req := requestFor(t, c, 12)
	for _, name := range place.Names() {
		m, err := place.Place(context.Background(), name, req)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		for _, p := range m.Placements {
			if p.Node == 2 {
				t.Errorf("%s: rank %d placed on failed node 2", name, p.Rank)
			}
		}
	}
}

func TestPipelineRunsStagesInOrder(t *testing.T) {
	c := nehalemCluster(t, 2)
	var order []string
	mk := func(name string) place.Stage {
		return stageFunc{name: name, fn: func(req *place.Request, m *core.Map) (*core.Map, error) {
			order = append(order, name)
			return m, nil
		}}
	}
	pol, _ := place.Lookup("by-slot")
	o := &obs.Observer{Phases: obs.NewPhaseTimer()}
	pipe := place.Pipeline{Policy: pol, Stages: []place.Stage{mk("first"), mk("second")}}
	if _, err := pipe.Run(context.Background(), &place.Request{Cluster: c, NP: 4, Opts: core.Options{Obs: o}}); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "first" || order[1] != "second" {
		t.Fatalf("stage order = %v", order)
	}
	var spanNames []string
	for _, s := range o.Phases.Spans() {
		spanNames = append(spanNames, s.Name)
	}
	want := []string{"place", "first", "second"}
	if len(spanNames) != len(want) {
		t.Fatalf("spans = %v, want %v", spanNames, want)
	}
	for i := range want {
		if spanNames[i] != want[i] {
			t.Fatalf("spans = %v, want %v", spanNames, want)
		}
	}
}

func TestPipelineRejectsRankCountChange(t *testing.T) {
	c := nehalemCluster(t, 2)
	pol, _ := place.Lookup("by-slot")
	drop := stageFunc{name: "drop", fn: func(req *place.Request, m *core.Map) (*core.Map, error) {
		return &core.Map{Placements: m.Placements[:m.NumRanks()-1]}, nil
	}}
	pipe := place.Pipeline{Policy: pol, Stages: []place.Stage{drop}}
	if _, err := pipe.Run(context.Background(), &place.Request{Cluster: c, NP: 4}); err == nil {
		t.Fatal("rank-count-changing stage accepted")
	}
}

type stageFunc struct {
	name string
	fn   func(*place.Request, *core.Map) (*core.Map, error)
}

func (s stageFunc) StageName() string { return s.name }
func (s stageFunc) Apply(_ context.Context, req *place.Request, m *core.Map) (*core.Map, error) {
	return s.fn(req, m)
}

// TestSweepAllPolicies runs the policy-generic sweep over the full
// registry and checks results come back in job order.
func TestSweepAllPolicies(t *testing.T) {
	c := nehalemCluster(t, 4)
	req := requestFor(t, c, 8)
	var jobs []place.Job
	for _, name := range place.Names() {
		p, ok := place.Lookup(name)
		if !ok {
			t.Fatalf("Lookup(%q) failed", name)
		}
		jobs = append(jobs, place.Job{Policy: p, Req: req})
	}
	maps, err := place.Sweep(context.Background(), jobs, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(maps) != len(jobs) {
		t.Fatalf("%d results for %d jobs", len(maps), len(jobs))
	}
	for i, m := range maps {
		if m == nil || m.NumRanks() != 8 {
			t.Errorf("job %d (%s): bad result %v", i, jobs[i].Policy.Name(), m)
		}
	}
}

// TestSweepObservation checks the sweep-level events and metrics flow from
// the first job's observer while per-job map events stay suppressed.
func TestSweepObservation(t *testing.T) {
	c := nehalemCluster(t, 2)
	sink := obs.NewMemorySink()
	o := &obs.Observer{Sink: sink, Metrics: obs.NewRegistry(), Clock: func() int64 { return 0 }}
	req := &place.Request{Cluster: c, NP: 4, Opts: core.Options{Obs: o}}
	bySlot, _ := place.Lookup("by-slot")
	byNode, _ := place.Lookup("by-node")
	jobs := []place.Job{{Policy: bySlot, Req: req}, {Policy: byNode, Req: req}}
	if _, err := place.Sweep(context.Background(), jobs, 2); err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, name := range sink.Names("sweep") {
		counts[name]++
	}
	if counts["sweep/start"] != 1 || counts["sweep/done"] != 1 || counts["sweep/job"] != 2 {
		t.Errorf("sweep events = %v, want start=1 job=2 done=1", counts)
	}
	if got := len(sink.Names("map")); got != 0 {
		t.Errorf("%d per-map events leaked through the stripped sink", got)
	}
	if got := o.Metrics.Counter("lama_sweep_jobs_total").Value(); got != 2 {
		t.Errorf("lama_sweep_jobs_total = %d, want 2", got)
	}
}

func TestSweepFirstErrorWins(t *testing.T) {
	c := nehalemCluster(t, 2)
	tmatch, _ := place.Lookup("treematch")
	bySlot, _ := place.Lookup("by-slot")
	jobs := []place.Job{
		{Policy: bySlot, Req: &place.Request{Cluster: c, NP: 4}},
		{Policy: tmatch, Req: &place.Request{Cluster: c, NP: 4}}, // no traffic: fails
	}
	if _, err := place.Sweep(context.Background(), jobs, 2); err == nil {
		t.Fatal("expected sweep to surface the failing job's error")
	}
}
