package place_test

import (
	"context"
	"testing"

	"lama/internal/baseline"
	"lama/internal/cluster"
	"lama/internal/commpat"
	"lama/internal/core"
	"lama/internal/hw"
	"lama/internal/place"
	"lama/internal/rankfile"
	"lama/internal/torus"
	"lama/internal/treematch"
)

// TestGoldenEquivalence is satellite 4: every registry adapter must
// produce a placement byte-identical (Render) to the pre-refactor entry
// point it wraps, on the paper's Figure 2 reference cluster. A drifting
// adapter is a silent behavior change for every caller that migrated to
// the registry.
func TestGoldenEquivalence(t *testing.T) {
	sp, ok := hw.Preset("fig2")
	if !ok {
		t.Fatal("fig2 preset missing")
	}
	c := cluster.Homogeneous(2, sp)
	const np = 12
	const seed = 42
	tm := commpat.GTC(np, 1<<20)

	bySlot, err := baseline.BySlot(c, np)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := rankfile.FromMap(bySlot)
	if err != nil {
		t.Fatal(err)
	}
	rfText := rankfile.Format(rf)

	cases := []struct {
		policy string
		req    place.Request
		legacy func() (*core.Map, error)
	}{
		{"lama", place.Request{Layout: core.MustParseLayout("scbnh")},
			func() (*core.Map, error) {
				m, err := core.NewMapper(c, core.MustParseLayout("scbnh"), core.Options{})
				if err != nil {
					return nil, err
				}
				return m.Map(np)
			}},
		{"by-slot", place.Request{},
			func() (*core.Map, error) { return baseline.BySlot(c, np) }},
		{"by-node", place.Request{},
			func() (*core.Map, error) { return baseline.ByNode(c, np) }},
		{"pack", place.Request{PackLevel: hw.LevelSocket},
			func() (*core.Map, error) { return baseline.Pack(c, hw.LevelSocket, np) }},
		{"scatter", place.Request{PackLevel: hw.LevelSocket},
			func() (*core.Map, error) { return baseline.Scatter(c, hw.LevelSocket, np) }},
		{"random", place.Request{Seed: seed},
			func() (*core.Map, error) { return baseline.Random(c, seed, np) }},
		{"plane", place.Request{BlockSize: 4},
			func() (*core.Map, error) { return baseline.Plane(c, 4, np) }},
		{"rankfile", place.Request{RankfileText: rfText},
			func() (*core.Map, error) {
				f, err := rankfile.Parse(rfText)
				if err != nil {
					return nil, err
				}
				return rankfile.Apply(f, c)
			}},
		{"torus", place.Request{TorusDims: [3]int{2, 1, 1}, TorusOrder: "xyzt"},
			func() (*core.Map, error) { return torus.Map(c, torus.Dims{X: 2, Y: 1, Z: 1}, "xyzt", np) }},
		{"treematch", place.Request{Traffic: tm},
			func() (*core.Map, error) { return treematch.Map(c, tm, np) }},
	}

	for _, tc := range cases {
		req := tc.req
		req.Cluster, req.NP = c, np
		got, err := place.Place(context.Background(), tc.policy, &req)
		if err != nil {
			t.Errorf("%s: registry: %v", tc.policy, err)
			continue
		}
		want, err := tc.legacy()
		if err != nil {
			t.Errorf("%s: legacy: %v", tc.policy, err)
			continue
		}
		if got.Render() != want.Render() {
			t.Errorf("%s: registry placement differs from legacy entry point:\nregistry:\n%s\nlegacy:\n%s",
				tc.policy, got.Render(), want.Render())
		}
	}
}
