package place

import (
	"context"

	"lama/internal/core"
)

// lamaPolicy adapts the LAMA itself (core.Mapper) to the registry. It
// lives here rather than in internal/core because core is the vocabulary
// this package is defined in terms of — registering it from core would be
// an import cycle.
type lamaPolicy struct{}

// Name returns "lama".
func (lamaPolicy) Name() string { return "lama" }

// SelfObserving marks that core.Mapper.Map instruments itself (place span,
// prune/build-shape/sweep spans, "map"/"done" event, latency metrics); Run
// must not wrap it a second time.
func (lamaPolicy) SelfObserving() {}

// Place maps via the LAMA using req.Layout (default "csbnh", the Level-1
// by-slot pattern) and the full option set.
func (lamaPolicy) Place(ctx context.Context, req *Request) (*core.Map, error) {
	layout := req.Layout
	if len(layout.Levels()) == 0 {
		layout = core.MustParseLayout("csbnh")
	}
	mapper, err := core.NewMapper(req.Cluster, layout, req.Opts)
	if err != nil {
		return nil, err
	}
	return mapper.MapContext(ctx, req.NP)
}

func init() { Register(lamaPolicy{}) }
