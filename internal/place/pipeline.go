package place

import (
	"context"
	"fmt"
	"time"

	"lama/internal/core"
	"lama/internal/obs"
)

// Stage is a composable post-pass applied to an already-placed map while
// the processors stay fixed — communicator rank reordering is the
// canonical one (reorder.Pass). Stages run between the place and bind
// steps of a pipeline, each under its own phase span.
type Stage interface {
	// StageName labels the stage's phase span and events.
	StageName() string
	// Apply transforms the map. It must return a map with the same rank
	// count; it may return its argument unchanged. The context cancels
	// long-running refinement at iteration boundaries.
	Apply(ctx context.Context, req *Request, m *core.Map) (*core.Map, error)
}

// Pipeline is the uniform strategy execution path: resolve policy → place
// → post-pass stages. Binding and launching attach downstream (see
// mpirun.Execute / mpirun.Launch); they are not stages because their
// outputs are not maps.
type Pipeline struct {
	// Policy produces the initial placement.
	Policy Policy
	// Stages are applied in order to the placed map.
	Stages []Stage
}

// Run places and then applies every stage, instrumenting each: the place
// step follows Run's uniform contract, and every stage gets a phase span
// named after it plus a "pipeline"/"stage" completion event.
func (pl *Pipeline) Run(ctx context.Context, req *Request) (*core.Map, error) {
	if pl.Policy == nil {
		return nil, fmt.Errorf("place: pipeline without a policy")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	m, err := Run(ctx, pl.Policy, req)
	if err != nil {
		return nil, err
	}
	o := req.Opts.Obs
	for _, st := range pl.Stages {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("place: pipeline canceled before stage %s: %w", st.StageName(), err)
		}
		var t0 time.Time
		if o != nil {
			t0 = time.Now() //lama:nondet-ok latency observability only, never reaches mapping output
		}
		end := o.StartSpan(st.StageName())
		next, err := st.Apply(ctx, req, m)
		end()
		if err != nil {
			return nil, fmt.Errorf("place: stage %s: %w", st.StageName(), err)
		}
		if next.NumRanks() != m.NumRanks() {
			return nil, fmt.Errorf("place: stage %s changed rank count %d -> %d",
				st.StageName(), m.NumRanks(), next.NumRanks())
		}
		if o.Enabled() {
			o.Emit(obs.SrcPipeline, obs.EvStage, obs.NoStep,
				obs.F("stage", st.StageName()),
				obs.F("policy", pl.Policy.Name()),
				obs.F("ranks", next.NumRanks()),
				obs.F("us", float64(time.Since(t0))/float64(time.Microsecond))) //lama:nondet-ok latency observability only, never reaches mapping output
		}
		m = next
	}
	return m, nil
}
