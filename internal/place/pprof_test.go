package place_test

import (
	"bytes"
	"context"
	"runtime/pprof"
	"strings"
	"testing"

	"lama/internal/core"
	"lama/internal/obs"
	"lama/internal/place"
)

// labelSpy is a policy whose Place records the goroutine's pprof label set
// (via the debug=1 goroutine profile, the only way to read labels back).
type labelSpy struct {
	labels string
	err    error
}

func (s *labelSpy) Name() string { return "label-spy" }

func (s *labelSpy) Place(_ context.Context, req *place.Request) (*core.Map, error) {
	var buf bytes.Buffer
	s.err = pprof.Lookup("goroutine").WriteTo(&buf, 1)
	s.labels = buf.String()
	return place.Place(context.Background(), "by-slot", &place.Request{Cluster: req.Cluster, NP: req.NP})
}

// TestRunPolicyPprofLabel verifies place.Run executes policies under the
// lama_policy profiling label exactly when the observer has labels on, so
// CPU profiles from the -listen server attribute samples per strategy.
func TestRunPolicyPprofLabel(t *testing.T) {
	c := nehalemCluster(t, 2)
	spy := &labelSpy{}

	// Labels off (the default, and the state of every allocation-pinned
	// benchmark): no label may be set.
	if _, err := place.Run(context.Background(), spy, &place.Request{Cluster: c, NP: 4}); err != nil {
		t.Fatal(err)
	}
	if spy.err != nil {
		t.Fatal(spy.err)
	}
	if strings.Contains(spy.labels, "lama_policy") {
		t.Fatalf("policy labeled with labeling disabled:\n%s", spy.labels)
	}

	// Labels on (what -listen enables): the policy runs under its name.
	pt := obs.NewPhaseTimer()
	pt.EnablePprofLabels()
	o := &obs.Observer{Phases: pt}
	if _, err := place.Run(context.Background(), spy, &place.Request{
		Cluster: c, NP: 4, Opts: core.Options{Obs: o},
	}); err != nil {
		t.Fatal(err)
	}
	if spy.err != nil {
		t.Fatal(spy.err)
	}
	if !strings.Contains(spy.labels, `"lama_policy":"label-spy"`) {
		t.Fatalf("lama_policy label missing:\n%s", spy.labels)
	}
}
