// Package all links every built-in placement policy into the place
// registry: importing it for side effects guarantees place.Names() lists
// the full strategy space ("lama" registers with the registry itself).
//
//	import _ "lama/internal/place/all"
package all

import (
	_ "lama/internal/baseline"
	_ "lama/internal/rankfile"
	_ "lama/internal/torus"
	_ "lama/internal/treematch"
)
