package engine

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"lama/internal/cluster"
	"lama/internal/hw"

	_ "lama/internal/place/all"
)

// TestSwapUnderLoad hammers Place from several readers while a writer
// continuously fails and replaces nodes through Swap, and checks the
// engine's staleness contract: once Swap has returned for epoch E, no
// later Place may serve a placement (cached or fresh) from an epoch
// before E. The writer stores a lower bound AFTER each Swap returns;
// readers load the bound BEFORE calling Place, so any response below the
// bound is a genuine stale leak (a cache entry that survived the purge or
// a snapshot read racing the publish). Run with -race this also shakes
// the clusterEntry and LRU locking.
func TestSwapUnderLoad(t *testing.T) {
	const (
		nodes   = 4
		swaps   = 150
		readers = 4
	)
	sp, ok := hw.Preset("nehalem-ep")
	if !ok {
		t.Fatal("nehalem-ep preset missing")
	}
	e := New(Config{Workers: 4, QueueDepth: 256})
	if err := e.Register("stress", &Snapshot{Clu: cluster.SnapshotOf(cluster.Homogeneous(nodes, sp))}); err != nil {
		t.Fatal(err)
	}

	var bound atomic.Uint64 // epoch lower bound, stored only after Swap returns
	bound.Store(1)
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Writer: alternately fail a node and replace it with a healthy one,
	// so at most one node is down at any time and every epoch is
	// placeable. Each derivation chains off the published snapshot.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for i := 0; i < swaps; i++ {
			cur := e.Snapshot("stress")
			target := i % nodes
			var next *cluster.Snapshot
			if i%2 == 0 {
				s, ok := cur.Clu.FailNode(target)
				if !ok {
					t.Errorf("swap %d: FailNode(%d) refused", i, target)
					return
				}
				next = s
			} else {
				s, ok := cur.Clu.ReplaceNode(target, &cluster.Node{Name: "spare", Topo: hw.New(sp)})
				if !ok {
					t.Errorf("swap %d: ReplaceNode(%d) refused", i, target)
					return
				}
				next = s
			}
			if _, err := e.Swap("stress", &Snapshot{Clu: next}); err != nil {
				t.Errorf("swap %d: %v", i, err)
				return
			}
			bound.Store(next.Epoch())
		}
	}()

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			ctx := context.Background()
			for np := 1; ; np = np%8 + 1 {
				select {
				case <-stop:
					return
				default:
				}
				floor := bound.Load()
				resp, err := e.Place(ctx, &Request{Cluster: "stress", NP: np})
				if err != nil {
					if errors.Is(err, ErrOverloaded) {
						continue // shed under load is the documented behavior
					}
					t.Errorf("reader %d: %v", r, err)
					return
				}
				if resp.Epoch < floor {
					t.Errorf("reader %d: stale placement: epoch %d below published bound %d (cached=%v)",
						r, resp.Epoch, floor, resp.Cached)
					return
				}
			}
		}(r)
	}
	wg.Wait()
}
