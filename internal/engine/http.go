package engine

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"lama/internal/core"
)

// The lamad wire API. Every payload is JSON; errors come back as
// {"error": "..."} with a meaningful status: 400 for malformed requests,
// 404 for unknown clusters, 409 for stale epoch pins, 503 when admission
// control sheds the request.
//
//	POST /v1/place                     place a job (body: Request)
//	GET  /v1/clusters                  list clusters with epochs
//	POST /v1/clusters/{id}/events      apply a mutation (body: Event)

// PlacementJSON is one rank assignment on the wire.
type PlacementJSON struct {
	Rank     int    `json:"rank"`
	Node     int    `json:"node"`
	NodeName string `json:"node_name"`
	PUs      []int  `json:"pus"`
}

// PlaceResponseJSON is the wire form of a served placement.
type PlaceResponseJSON struct {
	Cluster    string          `json:"cluster"`
	Epoch      uint64          `json:"epoch"`
	Cached     bool            `json:"cached"`
	NP         int             `json:"np"`
	Sweeps     int             `json:"sweeps"`
	Placements []PlacementJSON `json:"placements"`
}

// ClusterJSON is one row of the cluster listing.
type ClusterJSON struct {
	Name      string `json:"name"`
	Epoch     uint64 `json:"epoch"`
	Sig       string `json:"sig"`
	Nodes     int    `json:"nodes"`
	UsablePUs int    `json:"usable_pus"`
}

// EventResponseJSON acknowledges an applied event.
type EventResponseJSON struct {
	Cluster string `json:"cluster"`
	Epoch   uint64 `json:"epoch"`
	Purged  int    `json:"purged"`
}

// Mount installs the /v1 placement API on a mux (Go 1.22 method+wildcard
// patterns). The engine shares the mux with the obs telemetry surface in
// lamad, so one port serves placements, metrics, events, and profiles.
func (e *Engine) Mount(mux *http.ServeMux) {
	mux.HandleFunc("POST /v1/place", e.handlePlace)
	mux.HandleFunc("GET /v1/clusters", e.handleClusters)
	mux.HandleFunc("POST /v1/clusters/{id}/events", e.handleEvent)
}

func httpError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()}) // best effort: client may be gone
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v) // best effort: client may be gone
}

func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrUnknownCluster):
		return http.StatusNotFound
	case errors.Is(err, ErrOverloaded):
		return http.StatusServiceUnavailable
	case errors.Is(err, core.ErrStaleSnapshot):
		return http.StatusConflict
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

func (e *Engine) handlePlace(w http.ResponseWriter, r *http.Request) {
	var req Request
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("engine: bad request body: %v", err))
		return
	}
	if req.NP <= 0 {
		httpError(w, http.StatusBadRequest, fmt.Errorf("engine: np must be positive"))
		return
	}
	resp, err := e.Place(r.Context(), &req)
	if err != nil {
		httpError(w, statusFor(err), err)
		return
	}
	out := PlaceResponseJSON{
		Cluster:    req.Cluster,
		Epoch:      resp.Epoch,
		Cached:     resp.Cached,
		NP:         resp.Map.NumRanks(),
		Sweeps:     resp.Map.Sweeps,
		Placements: make([]PlacementJSON, 0, resp.Map.NumRanks()),
	}
	for i := range resp.Map.Placements {
		p := &resp.Map.Placements[i]
		out.Placements = append(out.Placements, PlacementJSON{
			Rank: p.Rank, Node: p.Node, NodeName: p.NodeName, PUs: p.PUs,
		})
	}
	writeJSON(w, out)
}

func (e *Engine) handleClusters(w http.ResponseWriter, _ *http.Request) {
	rows := make([]ClusterJSON, 0, 4)
	for _, name := range e.Clusters() {
		s := e.Snapshot(name)
		if s == nil {
			continue
		}
		rows = append(rows, ClusterJSON{
			Name:      name,
			Epoch:     s.Clu.Epoch(),
			Sig:       s.Clu.Sig(),
			Nodes:     s.Clu.NumNodes(),
			UsablePUs: s.Clu.Cluster().TotalUsablePUs(),
		})
	}
	writeJSON(w, rows)
}

func (e *Engine) handleEvent(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("id")
	var ev Event
	if err := json.NewDecoder(r.Body).Decode(&ev); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("engine: bad event body: %v", err))
		return
	}
	epoch, purged, err := e.ApplyEvent(name, &ev)
	if err != nil {
		httpError(w, statusFor(err), err)
		return
	}
	writeJSON(w, EventResponseJSON{Cluster: name, Epoch: epoch, Purged: purged})
}
