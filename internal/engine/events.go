package engine

import (
	"fmt"

	"lama/internal/cluster"
	"lama/internal/hw"
)

// Event is one cluster mutation: the wire form accepted by the lamad
// daemon's POST /v1/clusters/{id}/events and the programmatic input of
// ApplyEvent. Each applied event mints a fresh snapshot via the cluster
// package's copy-on-write derivations — in-flight placements keep the
// snapshot they started with.
type Event struct {
	// Type selects the mutation: "fail-node", "fail-pus", or "add-node".
	Type string `json:"type"`
	// Node is the target node index (fail-node, fail-pus).
	Node int `json:"node"`
	// PUs lists OS PU indices to off-line (fail-pus).
	PUs []int `json:"pus,omitempty"`
	// Preset names the hardware preset for the new node (add-node), e.g.
	// "nehalem-ep". Name optionally overrides the generated host name.
	Preset string `json:"preset,omitempty"`
	Name   string `json:"name,omitempty"`
	// Slots optionally sets the new node's scheduler slot count (add-node).
	Slots int `json:"slots,omitempty"`
}

// ApplyEvent derives the named cluster's next snapshot from an event and
// publishes it, purging cache entries of older epochs. It returns the new
// epoch and the purge count. A fail-pus event that changes nothing is a
// no-op: no new epoch is minted and the cache is untouched.
func (e *Engine) ApplyEvent(name string, ev *Event) (uint64, int, error) {
	if ev == nil {
		return 0, 0, fmt.Errorf("engine: nil event")
	}
	cur := e.Snapshot(name)
	if cur == nil {
		return 0, 0, fmt.Errorf("%w: %q", ErrUnknownCluster, name)
	}
	var next *cluster.Snapshot
	switch ev.Type {
	case "fail-node":
		s, ok := cur.Clu.FailNode(ev.Node)
		if !ok {
			return 0, 0, fmt.Errorf("engine: fail-node: no node %d in %q", ev.Node, name)
		}
		next = s
	case "fail-pus":
		if ev.Node < 0 || ev.Node >= cur.Clu.NumNodes() {
			return 0, 0, fmt.Errorf("engine: fail-pus: no node %d in %q", ev.Node, name)
		}
		// Validate PU indices before building the bitmap: a negative index
		// panics in CPUSet.Set and a huge one allocates its bit's worth of
		// backing array.
		for _, pu := range ev.PUs {
			if pu < 0 || pu >= hw.MaxSpecPUs {
				return 0, 0, fmt.Errorf("engine: fail-pus: PU index %d out of range [0, %d)", pu, hw.MaxSpecPUs)
			}
		}
		s, changed := cur.Clu.FailPUs(ev.Node, hw.NewCPUSet(ev.PUs...))
		if changed == 0 {
			return cur.Clu.Epoch(), 0, nil
		}
		next = s
	case "add-node":
		sp, ok := hw.Preset(ev.Preset)
		if !ok {
			return 0, 0, fmt.Errorf("engine: add-node: unknown preset %q", ev.Preset)
		}
		nodeName := ev.Name
		if nodeName == "" {
			nodeName = fmt.Sprintf("node%d", cur.Clu.NumNodes())
		}
		next = cur.Clu.AppendNode(&cluster.Node{
			Name: nodeName, Topo: hw.New(sp), Slots: ev.Slots,
		})
	default:
		return 0, 0, fmt.Errorf("engine: unknown event type %q", ev.Type)
	}
	purged, err := e.Swap(name, &Snapshot{Clu: next, Net: cur.Net})
	if err != nil {
		return 0, 0, err
	}
	return next.Epoch(), purged, nil
}
