// Package engine is the request-scoped placement engine behind the lamad
// daemon: a registry of named clusters published as immutable
// cluster.Snapshot values (swapped atomically on failure/grow events), a
// bounded pool of workers that reuse Mapper state across requests, an LRU
// placement cache keyed by the snapshot signature, and admission control
// with deadline-aware shedding.
//
// The engine is what turns the library's "one mutable Cluster + one
// caller" model into "immutable snapshots + many concurrent callers":
// requests never observe a half-applied mutation (they hold a snapshot
// pointer for their whole run), and mutation events mint a new snapshot
// via copy-on-write, so the dense-tree view caches in internal/core are
// reused for every untouched node.
//
// Determinism contract: given the same snapshot epoch and the same
// request, the engine returns the same placement — it is in lamavet's
// deterministic package set. Nothing in this package reads a clock or
// random source; latency accounting lives in the callers (place.Run
// metrics, the lamad HTTP layer, lamabench -serve).
package engine

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"lama/internal/cluster"
	"lama/internal/commpat"
	"lama/internal/core"
	"lama/internal/netsim"
	"lama/internal/obs"
	"lama/internal/place"
)

// Snapshot binds a cluster snapshot to its optional inter-node network
// distances. Distances are availability-independent, so swaps triggered
// by failure events carry them forward unchanged.
type Snapshot struct {
	Clu *cluster.Snapshot
	Net *netsim.Distances
}

// ErrOverloaded is returned when admission control refuses a request: the
// bounded queue is full, or the request's context expired while queued.
var ErrOverloaded = errors.New("engine: overloaded, request shed")

// MaxNP bounds the process count a single request may ask for. It keeps a
// hostile or corrupted request from driving the mapper into allocating a
// rank table far beyond anything the cluster could place (2^20 ranks is
// already an order of magnitude past the largest MPI jobs in production).
const MaxNP = 1 << 20

// ErrUnknownCluster is returned for requests naming an unregistered
// cluster.
var ErrUnknownCluster = errors.New("engine: unknown cluster")

// Config tunes an Engine.
type Config struct {
	// Workers bounds concurrent placements; <= 0 means 4.
	Workers int
	// QueueDepth bounds requests waiting for a worker; once the queue is
	// full further requests are shed immediately. <= 0 means 4*Workers.
	QueueDepth int
	// CacheSize bounds the placement LRU (entries); <= 0 means 1024, < 0
	// is treated as 0 (cache disabled is expressed by CacheSize == -1).
	CacheSize int
	// Obs receives engine events (register, swap, shed) and the cache and
	// admission counters. Nil disables instrumentation.
	Obs *obs.Observer
}

// Request is one placement query.
type Request struct {
	// Cluster names the registered cluster (required).
	Cluster string `json:"cluster"`
	// NP is the number of processes to place (required).
	NP int `json:"np"`
	// Policy is the registry policy; empty means "lama".
	Policy string `json:"policy,omitempty"`
	// Layout is the LAMA layout string; empty means "csbnh".
	Layout string `json:"layout,omitempty"`
	// Epoch, when non-zero, requires the cluster to still be at that
	// snapshot epoch; a mismatch fails with core.ErrStaleSnapshot. Zero
	// accepts whatever epoch is current.
	Epoch uint64 `json:"epoch,omitempty"`
	// Pattern names a commpat traffic pattern for traffic-aware policies
	// (e.g. "ring", "gtc"); Bytes is the per-exchange volume (0 = 1 MiB).
	Pattern string  `json:"pattern,omitempty"`
	Bytes   float64 `json:"bytes,omitempty"`
	// Oversubscribe permits placing more claims than PUs.
	Oversubscribe bool `json:"oversubscribe,omitempty"`
	// PEsPerProc claims several PUs per rank (0 = 1).
	PEsPerProc int `json:"pes_per_proc,omitempty"`
	// NoCache bypasses the placement cache (both lookup and fill).
	NoCache bool `json:"no_cache,omitempty"`
}

// Response is a served placement. Map is shared with the cache — callers
// must treat it as read-only.
type Response struct {
	Map    *core.Map
	Epoch  uint64
	Cached bool
}

// clusterEntry is one registered cluster: the currently published
// snapshot, swapped atomically under mu.
type clusterEntry struct {
	mu   sync.RWMutex
	snap *Snapshot //lama:guards mu
}

func (ce *clusterEntry) current() *Snapshot {
	ce.mu.RLock()
	defer ce.mu.RUnlock()
	return ce.snap
}

// worker is one pool slot: reusable Mapper state keyed by (cluster,
// layout). A mapper is re-pointed at each request's snapshot cluster;
// core's dense-tree freshness check (topology identity + generation)
// revalidates it, rebuilding only the views a copy-on-write swap touched.
type worker struct {
	mappers map[string]*core.Mapper
}

// Engine serves placement requests against registered cluster snapshots.
type Engine struct {
	cfg Config

	mu       sync.RWMutex
	clusters map[string]*clusterEntry //lama:guards mu

	workers chan *worker
	queue   chan struct{}

	cache *lruCache

	hits, misses, stale, shed *obs.Counter
	queueDepth                *obs.Gauge
}

// New builds an engine from a config.
func New(cfg Config) *Engine {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4 * cfg.Workers
	}
	size := cfg.CacheSize
	if size == 0 {
		size = 1024
	}
	if size < 0 {
		size = 0
	}
	e := &Engine{
		cfg:      cfg,
		clusters: map[string]*clusterEntry{},
		workers:  make(chan *worker, cfg.Workers),
		queue:    make(chan struct{}, cfg.QueueDepth),
		cache:    newLRU(size),
	}
	for i := 0; i < cfg.Workers; i++ {
		e.workers <- &worker{mappers: map[string]*core.Mapper{}}
	}
	reg := cfg.Obs.Reg()
	e.hits = reg.Counter("lama_engine_cache_hits_total")
	e.misses = reg.Counter("lama_engine_cache_misses_total")
	e.stale = reg.Counter("lama_engine_cache_stale_total")
	e.shed = reg.Counter("lama_engine_shed_total")
	e.queueDepth = reg.Gauge("lama_engine_queue_depth")
	return e
}

// Register publishes a cluster under a name at snapshot epoch 1 (or
// replaces its snapshot wholesale). The snapshot must not be mutated by
// the caller afterwards.
func (e *Engine) Register(name string, snap *Snapshot) error {
	if name == "" || snap == nil || snap.Clu == nil {
		return fmt.Errorf("engine: Register needs a name and a snapshot")
	}
	e.mu.Lock()
	ce, ok := e.clusters[name]
	if !ok {
		ce = &clusterEntry{}
		e.clusters[name] = ce
	}
	e.mu.Unlock()
	ce.mu.Lock()
	ce.snap = snap
	ce.mu.Unlock()
	if o := e.cfg.Obs; o.Enabled() {
		o.Emit(obs.SrcEngine, obs.EvRegister, obs.NoStep,
			obs.F("cluster", name),
			obs.F("nodes", snap.Clu.NumNodes()),
			obs.F("epoch", snap.Clu.Epoch()))
	}
	return nil
}

// Clusters lists the registered cluster names, sorted.
func (e *Engine) Clusters() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	names := make([]string, 0, len(e.clusters))
	for name := range e.clusters {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Snapshot returns the cluster's current published snapshot, or nil.
func (e *Engine) Snapshot(name string) *Snapshot {
	e.mu.RLock()
	ce := e.clusters[name]
	e.mu.RUnlock()
	if ce == nil {
		return nil
	}
	return ce.current()
}

// Epoch returns the cluster's current snapshot epoch (0 if unknown). It
// is the epoch source a grow passes to core.ExpandMapSnapshot.
func (e *Engine) Epoch(name string) uint64 {
	if s := e.Snapshot(name); s != nil {
		return s.Clu.Epoch()
	}
	return 0
}

// Swap atomically publishes next as the cluster's snapshot and purges the
// cache entries keyed to older epochs of this cluster, counting them as
// stale. Returns the count of purged entries.
func (e *Engine) Swap(name string, next *Snapshot) (int, error) {
	if next == nil || next.Clu == nil {
		return 0, fmt.Errorf("engine: Swap with nil snapshot")
	}
	e.mu.RLock()
	ce := e.clusters[name]
	e.mu.RUnlock()
	if ce == nil {
		return 0, fmt.Errorf("%w: %q", ErrUnknownCluster, name)
	}
	ce.mu.Lock()
	prev := ce.snap
	ce.snap = next
	ce.mu.Unlock()
	purged := e.cache.purgeOlder(name, next.Clu.Epoch())
	e.stale.Add(int64(purged))
	if o := e.cfg.Obs; o.Enabled() {
		var from uint64
		if prev != nil {
			from = prev.Clu.Epoch()
		}
		o.Emit(obs.SrcEngine, obs.EvSwap, obs.NoStep,
			obs.F("cluster", name),
			obs.F("from_epoch", from),
			obs.F("to_epoch", next.Clu.Epoch()),
			obs.F("stale_purged", purged))
	}
	return purged, nil
}

// Place serves one placement request. The context gates both admission
// (a request whose context expires while queued is shed) and the mapping
// run itself (cancellation at sweep boundaries).
func (e *Engine) Place(ctx context.Context, req *Request) (*Response, error) {
	if req == nil {
		return nil, fmt.Errorf("engine: nil request")
	}
	if req.NP < 0 || req.NP > MaxNP {
		return nil, fmt.Errorf("engine: np %d out of range [0, %d]", req.NP, MaxNP)
	}
	e.mu.RLock()
	ce := e.clusters[req.Cluster]
	e.mu.RUnlock()
	if ce == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownCluster, req.Cluster)
	}
	snap := ce.current()
	epoch := snap.Clu.Epoch()
	if req.Epoch != 0 && req.Epoch != epoch {
		return nil, fmt.Errorf("%w: request pinned epoch %d, cluster %q is at %d",
			core.ErrStaleSnapshot, req.Epoch, req.Cluster, epoch)
	}
	key := keyOf(req, snap.Clu.Sig(), epoch)
	if !req.NoCache {
		if m, ok := e.cache.get(key); ok {
			e.hits.Inc()
			return &Response{Map: m, Epoch: epoch, Cached: true}, nil
		}
	}

	// Admission: a bounded number of requests may wait for a worker; the
	// rest are shed immediately. Queued requests are shed the moment
	// their deadline expires rather than holding the slot.
	select {
	case e.queue <- struct{}{}:
	default:
		return nil, e.shedReq(req, "queue-full")
	}
	e.queueDepth.Set(float64(len(e.queue)))
	var w *worker
	select {
	case w = <-e.workers:
	case <-ctx.Done():
		<-e.queue
		e.queueDepth.Set(float64(len(e.queue)))
		return nil, e.shedReq(req, "deadline")
	}
	<-e.queue
	e.queueDepth.Set(float64(len(e.queue)))

	m, err := e.place(ctx, w, snap, req)
	e.workers <- w
	if err != nil {
		return nil, err
	}
	e.misses.Inc()
	if !req.NoCache {
		e.cache.put(key, req.Cluster, epoch, m)
	}
	return &Response{Map: m, Epoch: epoch}, nil
}

// shedReq counts and reports one shed request.
func (e *Engine) shedReq(req *Request, why string) error {
	e.shed.Inc()
	if o := e.cfg.Obs; o.Enabled() {
		o.Emit(obs.SrcEngine, obs.EvShed, obs.NoStep,
			obs.F("cluster", req.Cluster),
			obs.F("np", req.NP),
			obs.F("reason", why))
	}
	return fmt.Errorf("%w (%s)", ErrOverloaded, why)
}

// place runs the actual mapping on a pool worker.
func (e *Engine) place(ctx context.Context, w *worker, snap *Snapshot, req *Request) (*core.Map, error) {
	opts := core.Options{
		Oversubscribe: req.Oversubscribe,
		PEsPerProc:    req.PEsPerProc,
	}
	policy := req.Policy
	if policy == "" {
		policy = "lama"
	}
	layoutText := req.Layout
	if layoutText == "" {
		layoutText = "csbnh"
	}
	if policy == "lama" {
		// The fast path: per-worker Mapper reuse. The request's snapshot
		// may differ from the one the cached mapper last saw; the dense
		// tree's identity+generation freshness check rebuilds exactly the
		// views the copy-on-write swap touched.
		layout, err := core.ParseLayout(layoutText)
		if err != nil {
			return nil, err
		}
		mk := req.Cluster + "\x00" + layoutText
		mp := w.mappers[mk]
		if mp == nil {
			mp = &core.Mapper{Layout: layout}
			w.mappers[mk] = mp
		}
		mp.Cluster = snap.Clu.Cluster()
		mp.Opts = opts
		return mp.MapContext(ctx, req.NP)
	}
	preq := &place.Request{
		Cluster: snap.Clu.Cluster(),
		NP:      req.NP,
		Opts:    opts,
	}
	if req.Layout != "" {
		layout, err := core.ParseLayout(req.Layout)
		if err != nil {
			return nil, err
		}
		preq.Layout = layout
	}
	if req.Pattern != "" {
		gen, ok := commpat.ByName(req.Pattern)
		if !ok {
			return nil, fmt.Errorf("engine: unknown traffic pattern %q", req.Pattern)
		}
		bytes := req.Bytes
		if bytes <= 0 {
			bytes = 1 << 20
		}
		preq.Traffic = gen(req.NP, bytes)
	}
	return place.Place(ctx, policy, preq)
}
