package engine

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"

	"lama/internal/cluster"
	"lama/internal/core"
	"lama/internal/hw"
	"lama/internal/obs"

	_ "lama/internal/place/all"
)

func nehalemSnap(t *testing.T, nodes int) *Snapshot {
	t.Helper()
	sp, ok := hw.Preset("nehalem-ep")
	if !ok {
		t.Fatal("nehalem-ep preset missing")
	}
	return &Snapshot{Clu: cluster.SnapshotOf(cluster.Homogeneous(nodes, sp))}
}

func newTestEngine(t *testing.T, cfg Config) (*Engine, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	if cfg.Obs == nil {
		cfg.Obs = &obs.Observer{Metrics: reg}
	}
	e := New(cfg)
	if err := e.Register("test", nehalemSnap(t, 4)); err != nil {
		t.Fatal(err)
	}
	return e, cfg.Obs.Metrics
}

func TestEnginePlaceCachesByEpoch(t *testing.T) {
	e, reg := newTestEngine(t, Config{})
	req := &Request{Cluster: "test", NP: 16}
	r1, err := e.Place(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cached || r1.Epoch != 1 || r1.Map.NumRanks() != 16 {
		t.Fatalf("first place: cached=%v epoch=%d ranks=%d", r1.Cached, r1.Epoch, r1.Map.NumRanks())
	}
	r2, err := e.Place(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Cached {
		t.Fatal("second identical request missed the cache")
	}
	if r2.Map != r1.Map {
		t.Fatal("cached response must share the stored map")
	}
	if h := reg.Counter("lama_engine_cache_hits_total").Value(); h != 1 {
		t.Fatalf("hits = %d, want 1", h)
	}
	if m := reg.Counter("lama_engine_cache_misses_total").Value(); m != 1 {
		t.Fatalf("misses = %d, want 1", m)
	}
}

func TestEngineNoCacheBypasses(t *testing.T) {
	e, _ := newTestEngine(t, Config{})
	req := &Request{Cluster: "test", NP: 8, NoCache: true}
	if _, err := e.Place(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	r2, err := e.Place(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Cached {
		t.Fatal("NoCache request served from cache")
	}
	if n := e.cache.len(); n != 0 {
		t.Fatalf("cache holds %d entries after NoCache-only traffic", n)
	}
}

func TestEngineEpochPin(t *testing.T) {
	e, _ := newTestEngine(t, Config{})
	if _, err := e.Place(context.Background(), &Request{Cluster: "test", NP: 4, Epoch: 1}); err != nil {
		t.Fatalf("matching epoch pin refused: %v", err)
	}
	_, err := e.Place(context.Background(), &Request{Cluster: "test", NP: 4, Epoch: 7})
	if !errors.Is(err, core.ErrStaleSnapshot) {
		t.Fatalf("err = %v, want ErrStaleSnapshot", err)
	}
}

func TestEngineUnknownClusterAndPolicyAndPattern(t *testing.T) {
	e, _ := newTestEngine(t, Config{})
	if _, err := e.Place(context.Background(), &Request{Cluster: "nope", NP: 4}); !errors.Is(err, ErrUnknownCluster) {
		t.Fatalf("err = %v, want ErrUnknownCluster", err)
	}
	if _, err := e.Place(context.Background(), &Request{Cluster: "test", NP: 4, Policy: "no-such"}); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if _, err := e.Place(context.Background(), &Request{Cluster: "test", NP: 4, Policy: "treematch", Pattern: "no-such"}); err == nil {
		t.Fatal("unknown pattern accepted")
	}
}

func TestEngineNonLamaPolicy(t *testing.T) {
	e, _ := newTestEngine(t, Config{})
	r, err := e.Place(context.Background(), &Request{
		Cluster: "test", NP: 8, Policy: "by-node",
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Map.NumRanks() != 8 {
		t.Fatalf("by-node placed %d ranks", r.Map.NumRanks())
	}
	// Traffic-aware policy with a server-side pattern.
	r, err = e.Place(context.Background(), &Request{
		Cluster: "test", NP: 8, Policy: "treematch", Pattern: "ring",
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Map.NumRanks() != 8 {
		t.Fatalf("treematch placed %d ranks", r.Map.NumRanks())
	}
}

func TestEngineEventSwapPurgesStale(t *testing.T) {
	e, reg := newTestEngine(t, Config{})
	ctx := context.Background()
	r1, err := e.Place(ctx, &Request{Cluster: "test", NP: 48})
	if err != nil {
		t.Fatal(err)
	}
	usedNode2 := false
	for i := range r1.Map.Placements {
		if r1.Map.Placements[i].Node == 2 {
			usedNode2 = true
		}
	}
	if !usedNode2 {
		t.Fatal("baseline map should span node 2")
	}

	epoch, purged, err := e.ApplyEvent("test", &Event{Type: "fail-node", Node: 2})
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 2 || purged != 1 {
		t.Fatalf("event: epoch=%d purged=%d, want 2, 1", epoch, purged)
	}
	if s := reg.Counter("lama_engine_cache_stale_total").Value(); s != 1 {
		t.Fatalf("stale = %d, want 1", s)
	}

	r2, err := e.Place(ctx, &Request{Cluster: "test", NP: 48})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Cached || r2.Epoch != 2 {
		t.Fatalf("post-swap place: cached=%v epoch=%d", r2.Cached, r2.Epoch)
	}
	for i := range r2.Map.Placements {
		if r2.Map.Placements[i].Node == 2 {
			t.Fatalf("rank %d placed on failed node 2", i)
		}
	}
}

func TestEngineEventNoOpMintsNoEpoch(t *testing.T) {
	e, _ := newTestEngine(t, Config{})
	// Fail PUs that are already absent: PU 9999 exists on no preset.
	epoch, purged, err := e.ApplyEvent("test", &Event{Type: "fail-pus", Node: 0, PUs: []int{9999}})
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 1 || purged != 0 {
		t.Fatalf("no-op event: epoch=%d purged=%d, want 1, 0", epoch, purged)
	}
}

func TestEngineAddNodeGrows(t *testing.T) {
	e, _ := newTestEngine(t, Config{})
	epoch, _, err := e.ApplyEvent("test", &Event{Type: "add-node", Preset: "nehalem-ep"})
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 2 {
		t.Fatalf("epoch = %d, want 2", epoch)
	}
	if n := e.Snapshot("test").Clu.NumNodes(); n != 5 {
		t.Fatalf("nodes = %d, want 5", n)
	}
	if got := e.Epoch("test"); got != 2 {
		t.Fatalf("Epoch() = %d, want 2", got)
	}
}

func TestEngineShedsWhenOverloaded(t *testing.T) {
	e, reg := newTestEngine(t, Config{Workers: 1, QueueDepth: 1})
	// Occupy the only worker directly so Place cannot get one.
	w := <-e.workers
	defer func() { e.workers <- w }()

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	var queuedErr error
	go func() {
		defer wg.Done()
		// Fills the queue slot, then blocks on a worker until canceled.
		_, queuedErr = e.Place(ctx, &Request{Cluster: "test", NP: 4})
	}()
	// Wait until the queued request holds the queue slot.
	for len(e.queue) == 0 {
		runtime.Gosched()
	}
	// Queue full: immediate shed.
	_, err := e.Place(context.Background(), &Request{Cluster: "test", NP: 4})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	// Expire the queued request: deadline-aware shed.
	cancel()
	wg.Wait()
	if !errors.Is(queuedErr, ErrOverloaded) {
		t.Fatalf("queued err = %v, want ErrOverloaded", queuedErr)
	}
	if s := reg.Counter("lama_engine_shed_total").Value(); s != 2 {
		t.Fatalf("shed = %d, want 2", s)
	}
}

func TestEngineConcurrentPlacementsAndSwaps(t *testing.T) {
	e, _ := newTestEngine(t, Config{Workers: 4, QueueDepth: 1024, CacheSize: 64})
	ctx := context.Background()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				np := 4 + (g+i)%13
				r, err := e.Place(ctx, &Request{Cluster: "test", NP: np})
				if err != nil {
					t.Errorf("g%d i%d: %v", g, i, err)
					return
				}
				if r.Map.NumRanks() != np {
					t.Errorf("g%d i%d: ranks=%d want %d", g, i, r.Map.NumRanks(), np)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			if _, _, err := e.ApplyEvent("test", &Event{Type: "add-node", Preset: "nehalem-ep"}); err != nil {
				t.Errorf("swap %d: %v", i, err)
				return
			}
		}
	}()
	wg.Wait()
	if got := e.Epoch("test"); got != 6 {
		t.Fatalf("final epoch = %d, want 6", got)
	}
}

func TestEngineClustersSorted(t *testing.T) {
	e, _ := newTestEngine(t, Config{})
	if err := e.Register("alpha", nehalemSnap(t, 1)); err != nil {
		t.Fatal(err)
	}
	if err := e.Register("zeta", nehalemSnap(t, 1)); err != nil {
		t.Fatal(err)
	}
	names := e.Clusters()
	want := []string{"alpha", "test", "zeta"}
	if len(names) != len(want) {
		t.Fatalf("names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names = %v, want %v", names, want)
		}
	}
}

func TestLRUEvictsAndPurges(t *testing.T) {
	c := newLRU(2)
	m := &core.Map{}
	c.put("a", "c1", 1, m)
	c.put("b", "c1", 1, m)
	c.put("x", "c2", 1, m) // evicts "a"
	if _, ok := c.get("a"); ok {
		t.Fatal("capacity-2 LRU kept 3 entries")
	}
	if _, ok := c.get("b"); !ok {
		t.Fatal("entry b evicted early")
	}
	if purged := c.purgeOlder("c1", 2); purged != 1 {
		t.Fatalf("purged = %d, want 1 (only c1@1)", purged)
	}
	if _, ok := c.get("x"); !ok {
		t.Fatal("purge removed another cluster's entry")
	}
	// Disabled cache (capacity -1 → 0 via New, here directly 0).
	d := newLRU(0)
	d.put("k", "c", 1, m)
	if _, ok := d.get("k"); ok {
		t.Fatal("disabled cache stored an entry")
	}
}
