package engine

import (
	"container/list"
	"fmt"
	"sync"

	"lama/internal/core"
)

// cacheKey identifies one placement result. The snapshot signature (not
// just the epoch) is the load-bearing field: two snapshots that are
// placement-equivalent — same shapes, same availability — share a Sig, so
// an epoch bump that happens to restore a prior availability state can
// still hit. The epoch rides along only for observability and staleness
// purging.
type cacheKey string

// keyOf derives the cache key for a request against a snapshot.
func keyOf(req *Request, sig string, epoch uint64) cacheKey {
	return cacheKey(fmt.Sprintf("%s|%s|%d|%s|%s|%s|%g|%d|%t",
		req.Cluster, sig, epoch, req.Policy, req.Layout,
		req.Pattern, req.Bytes, req.PEsPerProc, req.Oversubscribe) +
		fmt.Sprintf("|%d", req.NP))
}

// cacheEntry is one LRU slot. cluster+epoch let purgeOlder find stale
// entries by walking the list, without ranging over the index map.
type cacheEntry struct {
	key     cacheKey
	cluster string
	epoch   uint64
	m       *core.Map
}

// lruCache is a mutex-guarded LRU of placement results. Capacity 0
// disables it (get always misses, put drops).
type lruCache struct {
	mu  sync.Mutex
	cap int
	//lama:guards mu
	order *list.List                 // front = most recent; values are *cacheEntry
	index map[cacheKey]*list.Element //lama:guards mu
}

func newLRU(capacity int) *lruCache {
	return &lruCache{
		cap:   capacity,
		order: list.New(),
		index: map[cacheKey]*list.Element{},
	}
}

// get returns the cached map and promotes the entry.
func (c *lruCache) get(key cacheKey) (*core.Map, bool) {
	if c.cap == 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.index[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).m, true
}

// put inserts (or refreshes) an entry, evicting from the back past
// capacity.
func (c *lruCache) put(key cacheKey, clusterName string, epoch uint64, m *core.Map) {
	if c.cap == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.index[key]; ok {
		el.Value.(*cacheEntry).m = m
		c.order.MoveToFront(el)
		return
	}
	el := c.order.PushFront(&cacheEntry{key: key, cluster: clusterName, epoch: epoch, m: m})
	c.index[key] = el
	for c.order.Len() > c.cap {
		back := c.order.Back()
		c.order.Remove(back)
		delete(c.index, back.Value.(*cacheEntry).key)
	}
}

// purgeOlder evicts every entry for the named cluster below the given
// epoch and reports how many it removed. It walks the LRU list (ordered,
// deterministic) rather than ranging over the index map.
func (c *lruCache) purgeOlder(clusterName string, epoch uint64) int {
	if c.cap == 0 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	purged := 0
	for el := c.order.Front(); el != nil; {
		next := el.Next()
		ce := el.Value.(*cacheEntry)
		if ce.cluster == clusterName && ce.epoch < epoch {
			c.order.Remove(el)
			delete(c.index, ce.key)
			purged++
		}
		el = next
	}
	return purged
}

// len reports the live entry count (for tests and metrics).
func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
