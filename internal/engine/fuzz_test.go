package engine

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"testing"

	"lama/internal/cluster"
	"lama/internal/hw"

	_ "lama/internal/place/all"
)

// fuzzMux builds a small two-node engine and mounts the /v1 wire API on a
// fresh mux. The base snapshot is returned so event fuzzing can re-publish
// it between iterations: every mutation derives a copy-on-write child, so
// the base itself is never written to and is safe to re-Register forever.
func fuzzMux(f *testing.F) (*Engine, *http.ServeMux, *Snapshot) {
	f.Helper()
	sp, ok := hw.Preset("nehalem-ep")
	if !ok {
		f.Fatal("nehalem-ep preset missing")
	}
	base := &Snapshot{Clu: cluster.SnapshotOf(cluster.Homogeneous(2, sp))}
	e := New(Config{Workers: 2, QueueDepth: 64})
	if err := e.Register("fuzz", base); err != nil {
		f.Fatal(err)
	}
	mux := http.NewServeMux()
	e.Mount(mux)
	return e, mux, base
}

// FuzzPlaceHTTP throws arbitrary bodies at POST /v1/place. Whatever the
// payload, the handler must answer with one of the documented statuses —
// never panic, never 500.
func FuzzPlaceHTTP(f *testing.F) {
	_, mux, _ := fuzzMux(f)
	for _, s := range []string{
		`{"cluster":"fuzz","np":4}`,
		`{"cluster":"fuzz","np":4,"policy":"lama","layout":"csbnh"}`,
		`{"cluster":"fuzz","np":8,"pattern":"ring","pes_per_proc":2}`,
		`{"cluster":"nope","np":1}`,
		`{"cluster":"fuzz","np":-1}`,
		`{"cluster":"fuzz","np":1048577}`,
		`{"cluster":"fuzz","np":4,"epoch":9}`,
		`{"cluster":"fuzz","np":999,"oversubscribe":false}`,
		`{"np":4}`,
		`nonsense`,
		`{}`,
	} {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest(http.MethodPost, "/v1/place", bytes.NewReader(body))
		w := httptest.NewRecorder()
		mux.ServeHTTP(w, req)
		switch w.Code {
		case http.StatusOK, http.StatusBadRequest, http.StatusNotFound,
			http.StatusConflict, http.StatusServiceUnavailable:
		default:
			t.Fatalf("unexpected status %d for body %q: %s", w.Code, body, w.Body.Bytes())
		}
	})
}

// FuzzEventHTTP throws arbitrary bodies at the event ingestion endpoint.
// The cluster is re-published from the pristine base before every
// iteration so accepted events cannot compound into unbounded epochs or
// node counts across the run.
func FuzzEventHTTP(f *testing.F) {
	e, mux, base := fuzzMux(f)
	for _, s := range []string{
		`{"type":"fail-node","node":0}`,
		`{"type":"fail-pus","node":1,"pus":[0,1]}`,
		`{"type":"fail-pus","node":0,"pus":[-1]}`,
		`{"type":"fail-pus","node":0,"pus":[99999999999]}`,
		`{"type":"add-node","preset":"nehalem-ep","slots":4,"name":"spare"}`,
		`{"type":"add-node","preset":"bogus"}`,
		`{"type":"bogus"}`,
		`{"type":"fail-node","node":99}`,
		`nonsense`,
	} {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		if err := e.Register("fuzz", base); err != nil {
			t.Fatal(err)
		}
		req := httptest.NewRequest(http.MethodPost, "/v1/clusters/fuzz/events", bytes.NewReader(body))
		w := httptest.NewRecorder()
		mux.ServeHTTP(w, req)
		switch w.Code {
		case http.StatusOK, http.StatusBadRequest, http.StatusNotFound:
		default:
			t.Fatalf("unexpected status %d for body %q: %s", w.Code, body, w.Body.Bytes())
		}
	})
}
