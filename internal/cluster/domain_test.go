package cluster

import (
	"testing"

	"lama/internal/hw"
)

func TestFaultModelGrouping(t *testing.T) {
	m := NewFaultModel(12, 2, 3, 1) // 2 nodes/chassis, 3 chassis/rack
	if m.NumNodes() != 12 {
		t.Fatalf("NumNodes = %d", m.NumNodes())
	}
	for i := 0; i < 12; i++ {
		d := m.Domain(i)
		if d.Chassis != i/2 || d.Rack != i/6 {
			t.Fatalf("node %d domain = %+v, want chassis %d rack %d", i, d, i/2, i/6)
		}
	}
	if !m.SameChassis(0, 1) || m.SameChassis(1, 2) {
		t.Fatal("chassis grouping wrong")
	}
	if !m.SameRack(0, 5) || m.SameRack(5, 6) {
		t.Fatal("rack grouping wrong")
	}
	chassis, racks := m.Spread([]int{0, 1, 2, 6})
	if chassis != 3 || racks != 2 {
		t.Fatalf("Spread = (%d, %d), want (3, 2)", chassis, racks)
	}
}

func TestFaultModelDeterministicWeights(t *testing.T) {
	a := NewFaultModel(8, 2, 2, 42)
	b := NewFaultModel(8, 2, 2, 42)
	other := NewFaultModel(8, 2, 2, 43)
	var differs bool
	for i := 0; i < 8; i++ {
		if a.Weight(i) != b.Weight(i) {
			t.Fatalf("same seed, different weight at %d", i)
		}
		if a.Weight(i) < 0.5 || a.Weight(i) >= 1.5 {
			t.Fatalf("weight %f out of [0.5, 1.5)", a.Weight(i))
		}
		if a.Weight(i) != other.Weight(i) {
			differs = true
		}
	}
	if !differs {
		t.Fatal("different seeds produced identical weight tables")
	}
}

func TestFaultModelRiskAndFeedback(t *testing.T) {
	m := NewFaultModel(4, 2, 2, 7)
	if m.Failures(1) != 0 || m.Risk(1) != m.Weight(1) {
		t.Fatal("fresh node should have zero history and risk == weight")
	}
	m.RecordFailure(1)
	m.RecordFailure(1)
	if m.Failures(1) != 2 {
		t.Fatalf("Failures = %d", m.Failures(1))
	}
	if got, want := m.Risk(1), m.Weight(1)*3; got != want {
		t.Fatalf("Risk = %f, want %f", got, want)
	}
}

// TestFailNodeFeedsFaultModel: the cluster-level failure path must record
// history in the attached model exactly once per transition to failed.
func TestFailNodeFeedsFaultModel(t *testing.T) {
	sp, _ := hw.Preset("fig2")
	c := Homogeneous(4, sp)
	c.AttachFaultModel(2, 2, 3)
	c.FailNode(2)
	c.FailNode(2) // already failed: no double count
	if got := c.Faults.Failures(2); got != 1 {
		t.Fatalf("Failures(2) = %d, want 1", got)
	}
	if got := c.Faults.Failures(0); got != 0 {
		t.Fatalf("Failures(0) = %d, want 0", got)
	}
}

func TestFaultModelOutOfRangeAndNil(t *testing.T) {
	var nilM *FaultModel
	if d := nilM.Domain(3); d.Chassis != -4 || d.Rack != -4 {
		t.Fatalf("nil model Domain = %+v", d)
	}
	if nilM.SameChassis(0, 1) {
		t.Fatal("nil model singleton domains must not collide")
	}
	if nilM.Weight(0) != 1 || nilM.Failures(0) != 0 || nilM.Risk(0) != 1 {
		t.Fatal("nil model defaults wrong")
	}
	nilM.RecordFailure(0) // must not panic
	if nilM.Clone() != nil || nilM.Derive([]int{0}) != nil {
		t.Fatal("nil model Clone/Derive should stay nil")
	}

	m := NewFaultModel(2, 1, 1, 0)
	if d := m.Domain(9); d.Chassis != -10 {
		t.Fatalf("out-of-range Domain = %+v", d)
	}
	if m.SameChassis(5, 6) {
		t.Fatal("distinct out-of-range nodes share a singleton domain")
	}
	m.RecordFailure(5) // grows the table
	if m.Failures(5) != 1 {
		t.Fatal("history for grown slot lost")
	}
}

func TestFaultModelDeriveAndAdopt(t *testing.T) {
	src := NewFaultModel(8, 2, 2, 11)
	src.RecordFailure(6)
	view := src.Derive([]int{6, 1, 3})
	for vi, si := range []int{6, 1, 3} {
		if view.Domain(vi) != src.Domain(si) {
			t.Fatalf("view node %d domain %+v != source node %d %+v", vi, view.Domain(vi), si, src.Domain(si))
		}
		if view.Weight(vi) != src.Weight(si) || view.Failures(vi) != src.Failures(si) {
			t.Fatalf("view node %d weight/history diverge from source %d", vi, si)
		}
	}
	// Adopt node 7 into a new slot 3, as Realloc does for a replacement.
	view.Adopt(3, src, 7)
	if view.Domain(3) != src.Domain(7) || view.Weight(3) != src.Weight(7) {
		t.Fatal("Adopt did not carry domain/weight")
	}
	// The view is a copy: feedback on it must not touch the source.
	view.RecordFailure(0)
	if src.Failures(6) != 1 {
		t.Fatal("view feedback leaked into source model")
	}
}

func TestFaultModelClonePropagation(t *testing.T) {
	sp, _ := hw.Preset("fig2")
	c := Homogeneous(4, sp)
	c.AttachFaultModel(2, 2, 5)
	cl := c.Clone()
	if cl.Faults == nil {
		t.Fatal("Clone dropped the fault model")
	}
	cl.Faults.RecordFailure(0)
	if c.Faults.Failures(0) != 0 {
		t.Fatal("clone shares history with original")
	}
	if cl.Faults.Domain(1) != c.Faults.Domain(1) || cl.Faults.Weight(1) != c.Faults.Weight(1) {
		t.Fatal("clone diverges from original labels/weights")
	}
}
