package cluster

import (
	"testing"

	"lama/internal/hw"
)

func TestSnapshotCaptureIsDeep(t *testing.T) {
	c := Homogeneous(3, specNehalem(t))
	c.AttachFaultModel(2, 2, 42)
	s := SnapshotOf(c)
	if s.Epoch() != 1 {
		t.Fatalf("fresh epoch = %d, want 1", s.Epoch())
	}
	// Mutating the live cluster must not leak into the snapshot.
	c.FailNode(0)
	if s.Cluster().NodeFailed(0) {
		t.Fatal("snapshot saw a post-capture mutation")
	}
	if s.Cluster().Faults == nil || s.Cluster().Faults.Failures(0) != 0 {
		t.Fatal("snapshot fault model saw a post-capture failure")
	}
}

func TestSnapshotFailNodeCOW(t *testing.T) {
	c := Homogeneous(4, specNehalem(t))
	c.AttachFaultModel(2, 2, 42)
	s1 := SnapshotOf(c)
	s2, ok := s1.FailNode(1)
	if !ok {
		t.Fatal("FailNode(1) should succeed")
	}
	if s2.Epoch() != 2 {
		t.Fatalf("derived epoch = %d, want 2", s2.Epoch())
	}
	// Parent is untouched.
	if s1.Cluster().NodeFailed(1) || s1.Cluster().UsableNodes() != 4 {
		t.Fatal("parent snapshot mutated by FailNode")
	}
	if s1.Cluster().Faults.Failures(1) != 0 {
		t.Fatal("parent fault model mutated by FailNode")
	}
	// Child sees the failure, including in its fault history.
	if !s2.Cluster().NodeFailed(1) || s2.Cluster().UsableNodes() != 3 {
		t.Fatal("child snapshot missing the failure")
	}
	if s2.Cluster().Faults.Failures(1) != 1 {
		t.Fatal("child fault model missing the failure")
	}
	// Copy-on-write: untouched nodes share pointers, the failed one split.
	for i := 0; i < 4; i++ {
		same := s1.Cluster().Node(i) == s2.Cluster().Node(i)
		sameTopo := s1.Cluster().Node(i).Topo == s2.Cluster().Node(i).Topo
		if i == 1 && (same || sameTopo) {
			t.Fatal("failed node must be cloned, not shared")
		}
		if i != 1 && (!same || !sameTopo) {
			t.Fatalf("healthy node %d must share its pointer with the parent", i)
		}
	}
	// Signatures: healthy twins keep their per-node sig; the cluster sig
	// and the failed node's sig change.
	if s1.Sig() == s2.Sig() {
		t.Fatal("Sig must change across a failure")
	}
	if s1.nodeSigs[0] != s2.nodeSigs[0] || s1.nodeSigs[1] == s2.nodeSigs[1] {
		t.Fatal("per-node sigs: twins stable, failed node split")
	}
	// Out of range: receiver returned unchanged.
	if s3, ok := s2.FailNode(99); ok || s3 != s2 {
		t.Fatal("out-of-range FailNode must return the receiver")
	}
}

func TestSnapshotFailPUs(t *testing.T) {
	s1 := SnapshotOf(Homogeneous(2, specNehalem(t)))
	before := s1.Cluster().Node(0).Topo.NumUsablePUs()
	s2, n := s1.FailPUs(0, hw.NewCPUSet(0, 1, 2))
	if n != 3 {
		t.Fatalf("FailPUs = %d, want 3", n)
	}
	if s1.Cluster().Node(0).Topo.NumUsablePUs() != before {
		t.Fatal("parent mutated")
	}
	if got := s2.Cluster().Node(0).Topo.NumUsablePUs(); got != before-3 {
		t.Fatalf("child usable = %d, want %d", got, before-3)
	}
	if s1.Cluster().Node(1) != s2.Cluster().Node(1) {
		t.Fatal("untouched node must be shared")
	}
	// No-op offline (already dead PUs): no new epoch.
	s3, n := s2.FailPUs(0, hw.NewCPUSet(0, 1))
	if n != 0 || s3 != s2 {
		t.Fatal("no-op FailPUs must return the receiver")
	}
}

func TestSnapshotAppendAndReplace(t *testing.T) {
	sp := specNehalem(t)
	s1 := SnapshotOf(Homogeneous(2, sp))
	spare := &Node{Name: "spare0", Topo: hw.New(sp)}

	s2 := s1.AppendNode(spare)
	if s2.NumNodes() != 3 || s1.NumNodes() != 2 {
		t.Fatalf("grow: child %d nodes, parent %d", s2.NumNodes(), s1.NumNodes())
	}
	if s2.Cluster().Node(2).Topo == spare.Topo {
		t.Fatal("appended node must be deep-copied")
	}
	if s2.Epoch() != 2 || s2.Sig() == s1.Sig() {
		t.Fatal("grow must mint a new epoch and sig")
	}

	s3, ok := s2.ReplaceNode(0, &Node{Name: "adopted", Topo: hw.New(sp)})
	if !ok || s3.Cluster().Node(0).Name != "adopted" {
		t.Fatal("ReplaceNode failed")
	}
	if s2.Cluster().Node(0).Name != "node0" {
		t.Fatal("parent mutated by ReplaceNode")
	}
	if _, ok := s3.ReplaceNode(17, spare); ok {
		t.Fatal("out-of-range ReplaceNode must fail")
	}
}

func TestSnapshotSigTracksAvailabilityNotNames(t *testing.T) {
	sp := specNehalem(t)
	a := SnapshotOf(Homogeneous(2, sp))
	b := SnapshotOf(Homogeneous(2, sp))
	if a.Sig() != b.Sig() {
		t.Fatal("identical clusters must share a sig")
	}
	bFailed, _ := b.FailNode(0)
	if a.Sig() == bFailed.Sig() {
		t.Fatal("availability change must change the sig")
	}
	// Slots are placement-relevant and must be stamped.
	c := Homogeneous(2, sp)
	c.Nodes[0].Slots = 4
	if SnapshotOf(c).Sig() == a.Sig() {
		t.Fatal("slot policy must change the sig")
	}
}
