// Package cluster models an HPC system: a set of named compute nodes, each
// with its own hardware topology (possibly different across nodes), slot
// counts, and scheduler restrictions. It is the "allocated resources" view
// that a mapping agent receives after the resource manager has granted a
// job its nodes (paper §III-A).
package cluster

import (
	"fmt"
	"strings"

	"lama/internal/hw"
)

// Node is one compute node of a cluster.
type Node struct {
	// Name is the host name (unique within a cluster).
	Name string
	// Topo is the node's hardware topology, including any availability
	// restrictions imposed by the OS or scheduler.
	Topo *hw.Topology
	// Slots is the scheduler's slot count for the node: how many processes
	// the site policy allows before the node counts as oversubscribed.
	// Zero means "use the number of usable cores" (the common default).
	Slots int
	// MaxSlots is the hard slot cap (Open MPI hostfile "max_slots"): even
	// with oversubscription allowed, the node accepts at most this many
	// processes. Zero means no hard cap.
	MaxSlots int
}

// EffectiveSlots resolves the node's slot count: an explicit count if set,
// otherwise the number of usable cores (or usable PUs when a core-less
// decoded topology is in use).
func (n *Node) EffectiveSlots() int {
	if n.Slots > 0 {
		return n.Slots
	}
	cores := 0
	for _, c := range n.Topo.Objects(hw.LevelCore) {
		if c.Usable() && len(c.UsablePUs()) > 0 {
			cores++
		}
	}
	if cores > 0 {
		return cores
	}
	return n.Topo.NumUsablePUs()
}

// Cluster is an ordered set of nodes. Node order is the logical node
// numbering ("n" level) used by mapping algorithms.
type Cluster struct {
	Nodes []*Node
	// Faults is the optional failure-domain / failure-history model
	// (domain.go). Nil means failure-blind: every consumer treats each
	// node as its own singleton domain with unit risk.
	Faults *FaultModel
}

// Homogeneous builds a cluster of n identical nodes from a spec. Nodes are
// named node0..node(n-1).
func Homogeneous(n int, sp hw.Spec) *Cluster {
	if n <= 0 {
		panic(fmt.Sprintf("cluster: non-positive node count %d", n))
	}
	c := &Cluster{}
	for i := 0; i < n; i++ {
		c.Nodes = append(c.Nodes, &Node{
			Name: fmt.Sprintf("node%d", i),
			Topo: hw.New(sp),
		})
	}
	return c
}

// FromSpecs builds a (possibly heterogeneous) cluster with one node per
// spec.
func FromSpecs(specs ...hw.Spec) *Cluster {
	c := &Cluster{}
	for i, sp := range specs {
		c.Nodes = append(c.Nodes, &Node{
			Name: fmt.Sprintf("node%d", i),
			Topo: hw.New(sp),
		})
	}
	return c
}

// NumNodes returns the number of nodes.
func (c *Cluster) NumNodes() int { return len(c.Nodes) }

// Node returns the i-th node, or nil if out of range.
func (c *Cluster) Node(i int) *Node {
	if i < 0 || i >= len(c.Nodes) {
		return nil
	}
	return c.Nodes[i]
}

// NodeByName returns the node with the given name and its index, or
// (nil, -1).
func (c *Cluster) NodeByName(name string) (*Node, int) {
	for i, n := range c.Nodes {
		if n.Name == name {
			return n, i
		}
	}
	return nil, -1
}

// TotalPUs returns the cluster-wide PU count (available or not).
func (c *Cluster) TotalPUs() int {
	total := 0
	for _, n := range c.Nodes {
		total += n.Topo.NumPUs()
	}
	return total
}

// TotalUsablePUs returns the cluster-wide usable PU count.
func (c *Cluster) TotalUsablePUs() int {
	total := 0
	for _, n := range c.Nodes {
		total += n.Topo.NumUsablePUs()
	}
	return total
}

// TotalSlots returns the sum of effective slots across nodes.
func (c *Cluster) TotalSlots() int {
	total := 0
	for _, n := range c.Nodes {
		total += n.EffectiveSlots()
	}
	return total
}

// Homogeneous reports whether all nodes have structurally identical level
// counts and availability totals. A homogeneous cluster with scheduler
// restrictions on some nodes is reported as heterogeneous, matching the
// paper's observation that restrictions make homogeneous hardware look
// heterogeneous (§III-A).
func (c *Cluster) Homogeneous() bool {
	if len(c.Nodes) <= 1 {
		return true
	}
	first := c.Nodes[0].Topo
	for _, n := range c.Nodes[1:] {
		for _, l := range hw.Levels {
			if n.Topo.NumObjects(l) != first.NumObjects(l) {
				return false
			}
		}
		if n.Topo.NumUsablePUs() != first.NumUsablePUs() {
			return false
		}
	}
	return true
}

// Clone deep-copies the cluster, including any attached fault model.
//
//lama:cow Cluster
//lama:cow Node
func (c *Cluster) Clone() *Cluster {
	out := &Cluster{Faults: c.Faults.Clone()}
	for _, n := range c.Nodes {
		out.Nodes = append(out.Nodes, &Node{
			Name: n.Name, Topo: n.Topo.Clone(), Slots: n.Slots, MaxSlots: n.MaxSlots,
		})
	}
	return out
}

// Summary renders a short multi-line description of the cluster.
func (c *Cluster) Summary() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d nodes, %d usable PUs, homogeneous=%v\n",
		c.NumNodes(), c.TotalUsablePUs(), c.Homogeneous())
	for _, n := range c.Nodes {
		fmt.Fprintf(&sb, "  %-8s %s\n", n.Name, n.Topo.Summary())
	}
	return sb.String()
}
