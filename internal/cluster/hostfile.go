package cluster

import (
	"fmt"
	"strconv"
	"strings"

	"lama/internal/hw"
)

// ParseHostfile builds a cluster from an Open MPI-style hostfile extended
// with topology specs. Each non-empty, non-comment line declares one node:
//
//	<name> [slots=<n>] [maxslots=<n>] [spec=<spec>] [allowed=<cpuset>]
//
// where <spec> is anything hw.ParseSpec accepts (preset name, "s:c:h", or
// the 8-width colon form) and <cpuset> is hwloc list syntax restricting the
// node's usable PUs. Lines starting with '#' are comments. A missing spec
// defaults to defSpec.
//
// Slot counts are validated against the node's hardware: slots (and
// maxslots, the Open MPI "max_slots" hard cap) may not exceed the node's
// usable PU count, and maxslots may not be smaller than slots — such
// hostfiles describe impossible placements and are rejected with a clear
// error instead of silently producing unmappable nodes.
//
// Example:
//
//	# two big nodes, one restricted old node
//	node0 slots=8 spec=nehalem-ep
//	node1 slots=8 spec=nehalem-ep
//	old0  slots=2 spec=1:4:1 allowed=0-1
func ParseHostfile(text string, defSpec hw.Spec) (*Cluster, error) {
	c := &Cluster{}
	seen := map[string]bool{}
	for lineNo, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		name := fields[0]
		if seen[name] {
			return nil, fmt.Errorf("hostfile:%d: duplicate node %q", lineNo+1, name)
		}
		seen[name] = true
		node := &Node{Name: name}
		sp := defSpec
		var allowed *hw.CPUSet
		for _, f := range fields[1:] {
			key, val, ok := strings.Cut(f, "=")
			if !ok {
				return nil, fmt.Errorf("hostfile:%d: bad field %q", lineNo+1, f)
			}
			switch key {
			case "slots":
				n, err := strconv.Atoi(val)
				if err != nil || n < 0 {
					return nil, fmt.Errorf("hostfile:%d: bad slots %q", lineNo+1, val)
				}
				node.Slots = n
			case "maxslots":
				n, err := strconv.Atoi(val)
				if err != nil || n < 0 {
					return nil, fmt.Errorf("hostfile:%d: bad maxslots %q", lineNo+1, val)
				}
				node.MaxSlots = n
			case "spec":
				parsed, err := hw.ParseSpec(val)
				if err != nil {
					return nil, fmt.Errorf("hostfile:%d: %v", lineNo+1, err)
				}
				sp = parsed
			case "allowed":
				set, err := hw.ParseCPUSet(val)
				if err != nil {
					return nil, fmt.Errorf("hostfile:%d: %v", lineNo+1, err)
				}
				allowed = set
			default:
				return nil, fmt.Errorf("hostfile:%d: unknown field %q", lineNo+1, key)
			}
		}
		if err := sp.Validate(); err != nil {
			return nil, fmt.Errorf("hostfile:%d: %v", lineNo+1, err)
		}
		node.Topo = hw.New(sp)
		if allowed != nil {
			node.Topo.Restrict(allowed)
		}
		usable := node.Topo.NumUsablePUs()
		if node.Slots > usable {
			return nil, fmt.Errorf("hostfile:%d: node %q declares slots=%d but has only %d usable PUs",
				lineNo+1, name, node.Slots, usable)
		}
		if node.MaxSlots > 0 {
			if node.MaxSlots > usable {
				return nil, fmt.Errorf("hostfile:%d: node %q declares maxslots=%d but has only %d usable PUs",
					lineNo+1, name, node.MaxSlots, usable)
			}
			if node.MaxSlots < node.Slots {
				return nil, fmt.Errorf("hostfile:%d: node %q declares maxslots=%d < slots=%d",
					lineNo+1, name, node.MaxSlots, node.Slots)
			}
		}
		c.Nodes = append(c.Nodes, node)
	}
	if len(c.Nodes) == 0 {
		return nil, fmt.Errorf("hostfile: no nodes declared")
	}
	return c, nil
}

// FormatHostfile renders a cluster as a hostfile. Irregular topologies are
// approximated by their level counts; round-tripping is exact only for
// Spec-built nodes, which is all the generator produces.
func FormatHostfile(c *Cluster) string {
	var sb strings.Builder
	for _, n := range c.Nodes {
		fmt.Fprintf(&sb, "%s slots=%d", n.Name, n.Slots)
		if n.MaxSlots > 0 {
			fmt.Fprintf(&sb, " maxslots=%d", n.MaxSlots)
		}
		fmt.Fprintf(&sb, " spec=%s", specOf(n.Topo))
		if n.Topo.NumUsablePUs() != n.Topo.NumPUs() {
			fmt.Fprintf(&sb, " allowed=%s", n.Topo.AllowedSet())
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// specOf reconstructs the per-level widths of a regular topology.
func specOf(t *hw.Topology) string {
	div := func(a, b int) int {
		if b == 0 {
			return 1
		}
		return a / b
	}
	widths := make([]string, 0, hw.NumLevels-1)
	prev := 1
	for _, l := range hw.Levels[1:] {
		n := t.NumObjects(l)
		widths = append(widths, strconv.Itoa(div(n, prev)))
		prev = n
	}
	return strings.Join(widths, ":")
}
