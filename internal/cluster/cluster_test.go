package cluster

import (
	"strings"
	"testing"

	"lama/internal/hw"
)

func specNehalem(t *testing.T) hw.Spec {
	t.Helper()
	sp, ok := hw.Preset("nehalem-ep")
	if !ok {
		t.Fatal("preset missing")
	}
	return sp
}

func TestHomogeneousCluster(t *testing.T) {
	c := Homogeneous(3, specNehalem(t))
	if c.NumNodes() != 3 {
		t.Fatalf("NumNodes = %d", c.NumNodes())
	}
	if !c.Homogeneous() {
		t.Fatal("should be homogeneous")
	}
	if c.TotalPUs() != 48 || c.TotalUsablePUs() != 48 {
		t.Fatalf("TotalPUs = %d, usable = %d", c.TotalPUs(), c.TotalUsablePUs())
	}
	if n, i := c.NodeByName("node1"); n == nil || i != 1 {
		t.Fatal("NodeByName failed")
	}
	if n, i := c.NodeByName("nope"); n != nil || i != -1 {
		t.Fatal("NodeByName should miss")
	}
	if c.Node(5) != nil || c.Node(-1) != nil {
		t.Fatal("out-of-range Node")
	}
	if !strings.Contains(c.Summary(), "3 nodes") {
		t.Fatalf("Summary = %q", c.Summary())
	}
}

func TestHomogeneousPanicsOnZeroNodes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	Homogeneous(0, specNehalem(t))
}

func TestHeterogeneousDetection(t *testing.T) {
	big := specNehalem(t)
	small, _ := hw.Preset("bgp-node")
	c := FromSpecs(big, small)
	if c.Homogeneous() {
		t.Fatal("different specs must be heterogeneous")
	}
	// Restriction makes a homogeneous system look heterogeneous (§III-A).
	h := Homogeneous(2, big)
	if !h.Homogeneous() {
		t.Fatal("precondition")
	}
	h.Nodes[1].Topo.Restrict(hw.CPUSetRange(0, 7))
	if h.Homogeneous() {
		t.Fatal("restricted node must make cluster heterogeneous")
	}
	// Single node always homogeneous.
	if !Homogeneous(1, big).Homogeneous() {
		t.Fatal("single node")
	}
}

func TestEffectiveSlots(t *testing.T) {
	c := Homogeneous(1, specNehalem(t)) // 8 cores
	n := c.Node(0)
	if got := n.EffectiveSlots(); got != 8 {
		t.Fatalf("default slots = %d, want cores=8", got)
	}
	n.Slots = 3
	if n.EffectiveSlots() != 3 {
		t.Fatal("explicit slots")
	}
	n.Slots = 0
	n.Topo.Restrict(hw.CPUSetRange(0, 1)) // thread-major: cores 0,1 first threads
	if got := n.EffectiveSlots(); got != 2 {
		t.Fatalf("restricted slots = %d, want 2", got)
	}
	if got := c.TotalSlots(); got != 2 {
		t.Fatalf("TotalSlots = %d", got)
	}
}

func TestClone(t *testing.T) {
	c := Homogeneous(2, specNehalem(t))
	c.Nodes[0].Slots = 4
	cp := c.Clone()
	cp.Nodes[0].Topo.Restrict(hw.NewCPUSet(0))
	if c.Nodes[0].Topo.NumUsablePUs() != 16 {
		t.Fatal("clone aliases original topology")
	}
	if cp.Nodes[0].Slots != 4 || cp.Nodes[0].Name != "node0" {
		t.Fatal("clone lost fields")
	}
}

func TestParseHostfile(t *testing.T) {
	text := `
# two big nodes, one restricted old node
node0 slots=8 spec=nehalem-ep
node1 slots=8 spec=nehalem-ep

old0  slots=2 spec=1:4:1 allowed=0-1
plain
`
	def, _ := hw.Preset("bgp-node")
	c, err := ParseHostfile(text, def)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumNodes() != 4 {
		t.Fatalf("NumNodes = %d", c.NumNodes())
	}
	if c.Nodes[0].Slots != 8 || c.Nodes[0].Topo.NumPUs() != 16 {
		t.Fatal("node0 wrong")
	}
	if c.Nodes[2].Topo.NumUsablePUs() != 2 {
		t.Fatalf("old0 usable = %d", c.Nodes[2].Topo.NumUsablePUs())
	}
	if c.Nodes[3].Topo.NumPUs() != def.TotalPUs() {
		t.Fatal("default spec not applied")
	}
}

func TestParseHostfileErrors(t *testing.T) {
	def := hw.Spec{Boards: 1, Sockets: 1, NUMAs: 1, L3s: 1, L2s: 1, L1s: 1, Cores: 1, PUs: 1}
	cases := []string{
		"",                  // no nodes
		"# only comments",   // no nodes
		"a\na",              // duplicate
		"a slots=x",         // bad slots
		"a slots=-1",        // negative slots
		"a spec=bogus~spec", // bad spec
		"a allowed=9-1",     // bad cpuset
		"a wibble=3",        // unknown field
		"a slots",           // missing =
	}
	for _, text := range cases {
		if _, err := ParseHostfile(text, def); err == nil {
			t.Errorf("ParseHostfile(%q) should fail", text)
		}
	}
}

func TestHostfileRoundTrip(t *testing.T) {
	text := "node0 slots=8 maxslots=16 spec=1:2:1:1:4:1:1:2\nnode1 slots=2 spec=1:1:1:1:4:1:1:1 allowed=0-1\n"
	def := hw.Spec{Boards: 1, Sockets: 1, NUMAs: 1, L3s: 1, L2s: 1, L1s: 1, Cores: 1, PUs: 1}
	c, err := ParseHostfile(text, def)
	if err != nil {
		t.Fatal(err)
	}
	got := FormatHostfile(c)
	c2, err := ParseHostfile(got, def)
	if err != nil {
		t.Fatalf("re-parse %q: %v", got, err)
	}
	for i, n := range c.Nodes {
		n2 := c2.Nodes[i]
		if n.Name != n2.Name || n.Slots != n2.Slots || n.MaxSlots != n2.MaxSlots ||
			n.Topo.NumPUs() != n2.Topo.NumPUs() ||
			n.Topo.NumUsablePUs() != n2.Topo.NumUsablePUs() {
			t.Fatalf("node %d round trip mismatch", i)
		}
	}
}

func TestHostfileSlotValidation(t *testing.T) {
	def := hw.Spec{Boards: 1, Sockets: 1, NUMAs: 1, L3s: 1, L2s: 1, L1s: 1, Cores: 1, PUs: 1}
	cases := []string{
		"a slots=5 spec=1:1:1:1:1:1:4:1",             // slots > 4 PUs
		"a slots=3 spec=1:1:1:1:1:1:4:1 allowed=0-1", // slots > 2 usable PUs
		"a maxslots=5 spec=1:1:1:1:1:1:4:1",          // maxslots > PUs
		"a slots=3 maxslots=2 spec=1:1:1:1:1:1:4:1",  // maxslots < slots
		"a maxslots=x",  // unparsable
		"a maxslots=-1", // negative
	}
	for _, text := range cases {
		if _, err := ParseHostfile(text, def); err == nil {
			t.Errorf("ParseHostfile(%q) should fail", text)
		}
	}
	// The boundary cases are fine: slots == usable PUs, maxslots == usable.
	c, err := ParseHostfile("a slots=2 maxslots=2 spec=1:1:1:1:1:1:4:1 allowed=0-1", def)
	if err != nil {
		t.Fatal(err)
	}
	if c.Nodes[0].Slots != 2 || c.Nodes[0].MaxSlots != 2 {
		t.Fatalf("node = %+v", c.Nodes[0])
	}
}

func TestFailNode(t *testing.T) {
	c := Homogeneous(3, specNehalem(t))
	if c.NodeFailed(0) || c.UsableNodes() != 3 {
		t.Fatal("fresh cluster should be healthy")
	}
	if !c.FailNode(1) {
		t.Fatal("FailNode(1) should succeed")
	}
	if !c.NodeFailed(1) || c.NodeFailed(0) || c.NodeFailed(2) {
		t.Fatal("only node 1 should be failed")
	}
	if c.UsableNodes() != 2 {
		t.Fatalf("UsableNodes = %d", c.UsableNodes())
	}
	if c.Nodes[1].Topo.NumUsablePUs() != 0 {
		t.Fatal("failed node must have no usable PUs")
	}
	if c.Nodes[1].EffectiveSlots() != 0 {
		t.Fatalf("failed node slots = %d", c.Nodes[1].EffectiveSlots())
	}
	// Idempotent; out-of-range rejected.
	if !c.FailNode(1) || c.FailNode(7) || c.FailNode(-1) {
		t.Fatal("FailNode bounds")
	}
	if !c.NodeFailed(99) {
		t.Fatal("unknown node reports failed")
	}
}

func TestFailPUs(t *testing.T) {
	c := Homogeneous(2, specNehalem(t)) // 16 PUs per node
	n := c.Node(0)
	before := n.Topo.NumUsablePUs()
	got := c.FailPUs(0, hw.NewCPUSet(0, 1, 2))
	if got != 3 {
		t.Fatalf("FailPUs = %d, want 3", got)
	}
	if n.Topo.NumUsablePUs() != before-3 {
		t.Fatalf("usable = %d", n.Topo.NumUsablePUs())
	}
	// Re-failing the same PUs is a no-op; unknown node is a no-op.
	if c.FailPUs(0, hw.NewCPUSet(1, 2)) != 0 || c.FailPUs(9, hw.NewCPUSet(0)) != 0 {
		t.Fatal("no-op cases")
	}
	if c.FailPUs(0, nil) != 0 {
		t.Fatal("nil set")
	}
	if c.NodeFailed(0) {
		t.Fatal("partial failure must not fail the node")
	}
	// Failing every PU fails the node.
	c.FailPUs(1, hw.CPUSetRange(0, 15))
	if !c.NodeFailed(1) {
		t.Fatal("node 1 should be fully failed")
	}
}
