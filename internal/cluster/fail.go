package cluster

import "lama/internal/hw"

// Run-time failure mutation API. A cluster that has been handed to a
// run-time (orte.Runtime) can lose hardware while a job is running; these
// methods record the loss so that mapping agents, binding checks, and the
// incremental remapper all see the node/PUs as unusable. Failures are
// modeled through the availability mechanism of paper §III-A (scheduler
// restrictions), so every existing consumer — the LAMA mapper, bind.Plan
// checks, hostfile formatting — handles a failed resource with no special
// cases.

// FailNode marks node i as failed: the whole node (its machine root)
// becomes unavailable, so no PU beneath it is usable. It returns false if
// no such node exists. Failing an already-failed node is a no-op.
func (c *Cluster) FailNode(i int) bool {
	n := c.Node(i)
	if n == nil {
		return false
	}
	root := n.Topo.ObjectAt(hw.LevelMachine, 0)
	if root == nil {
		return false
	}
	if !root.Available {
		return true // already failed: idempotent, no double-counted history
	}
	// Route through the topology API so the mutation advances the
	// topology's generation counter and invalidates mapping-engine caches.
	changed := n.Topo.SetAvailable(hw.LevelMachine, 0, false)
	if changed {
		// Feed the loss back into the failure-history table so future
		// spare selection and proactive placement weigh this node (and,
		// through its domain labels, its chassis) as riskier.
		c.Faults.RecordFailure(i)
	}
	return changed
}

// FailPUs marks the given PU OS indices of node i unavailable — a partial
// failure such as a dead core. It returns the number of PUs that changed
// from usable to failed (0 for an unknown node or already-failed PUs).
func (c *Cluster) FailPUs(i int, pus *hw.CPUSet) int {
	n := c.Node(i)
	if n == nil {
		return 0
	}
	return n.Topo.Offline(pus)
}

// NodeFailed reports whether node i has no usable PUs left (fully failed
// or fully restricted). Unknown nodes report true.
func (c *Cluster) NodeFailed(i int) bool {
	n := c.Node(i)
	if n == nil {
		return true
	}
	return n.Topo.NumUsablePUs() == 0
}

// UsableNodes returns the number of nodes with at least one usable PU.
func (c *Cluster) UsableNodes() int {
	alive := 0
	for i := range c.Nodes {
		if !c.NodeFailed(i) {
			alive++
		}
	}
	return alive
}
