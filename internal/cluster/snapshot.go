package cluster

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"

	"lama/internal/hw"
)

// Snapshot is a deep-frozen, availability-stamped view of a cluster: the
// node set, every node's topology (with its current availability), and the
// attached fault model, captured atomically. A snapshot is immutable by
// contract — nothing may call mutating methods on its Cluster, its
// topologies, or its fault model. Mutation events (node failure, partial PU
// failure, grow, realloc adoption) instead derive a NEW snapshot via
// copy-on-write: only the touched node's topology (and the fault model,
// which is small) are cloned; every untouched *Node — and therefore its
// *hw.Topology pointer — is shared with the parent snapshot.
//
// Pointer sharing is the point. The mapping engine's view cache
// (internal/core/dense.go) is keyed by topology identity, so a mapper that
// is handed a sibling snapshot re-resolves only the touched node's view and
// reuses every other node's cached view as-is, instead of rebuilding the
// whole maximal tree because a generation counter ticked. The shared
// pruned shape (keyed by ShapeSig, which availability mutations never
// change) is reused even for the touched node.
//
// Each derived snapshot carries an epoch, one greater than its parent's.
// Epochs order the snapshots of one logical cluster and key placement
// caches and pooled mapper state (internal/engine); a request carrying a
// stale epoch is detectably out of date.
//
// lamavet's snapfrozen analyzer enforces the contract: writes into a
// Snapshot are only legal in the //lama:mutator functions below, and
// mutating a topology reached through a snapshot is a finding anywhere.
//
//lama:frozen
type Snapshot struct {
	epoch    uint64
	c        *Cluster
	nodeSigs []string
	sig      string
}

// SnapshotOf atomically captures a live cluster into an immutable snapshot
// at epoch 1. The cluster is deep-copied, so the caller is free to keep
// mutating its copy; subsequent derived snapshots are copy-on-write and do
// not pay the deep copy again.
//
//lama:mutator
//lama:cow Snapshot
func SnapshotOf(c *Cluster) *Snapshot {
	s := &Snapshot{epoch: 1, c: c.Clone()}
	s.nodeSigs = make([]string, len(s.c.Nodes))
	for i, n := range s.c.Nodes {
		s.nodeSigs[i] = nodeSig(n)
	}
	s.sig = combineSigs(s.nodeSigs)
	return s
}

// Epoch returns the snapshot's epoch (1 for a fresh capture, parent+1 for
// every derived snapshot).
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// Cluster returns the frozen cluster. Callers must treat it as read-only;
// mapping over it is fine (mapping never mutates a cluster), mutating it
// corrupts every snapshot sharing its nodes.
func (s *Snapshot) Cluster() *Cluster { return s.c }

// NumNodes returns the node count.
func (s *Snapshot) NumNodes() int { return len(s.c.Nodes) }

// Sig returns a digest over every node's structural shape, availability
// set, and slot configuration. Two snapshots with equal Sig are
// placement-equivalent: any (layout, np, policy) request maps identically
// on both. Placement caches key on it.
func (s *Snapshot) Sig() string { return s.sig }

// derive copies the snapshot's bookkeeping for a COW mutation: a fresh
// Nodes slice (sharing every *Node pointer), a fresh nodeSigs slice, and a
// cloned fault model (it is mutable history, and small). The caller then
// replaces only the touched entries — including sig, which starts empty
// here precisely so a derivation that forgets to restamp it is visibly
// broken rather than silently placement-equivalent to its parent.
//
//lama:mutator
//lama:cow Snapshot
//lama:cow Cluster
func (s *Snapshot) derive() *Snapshot {
	child := &Snapshot{
		epoch: s.epoch + 1,
		c: &Cluster{
			Nodes:  append([]*Node(nil), s.c.Nodes...),
			Faults: s.c.Faults.Clone(),
		},
		nodeSigs: append([]string(nil), s.nodeSigs...),
	}
	child.sig = ""
	return child
}

// FailNode derives a snapshot in which node i is fully failed. Only node
// i's topology is cloned; healthy nodes — including ShapeSig twins of the
// failed node — keep their exact *hw.Topology pointers, so their cached
// pruned views stay live. The second result is false when i is out of
// range (the receiver is returned unchanged).
//
//lama:mutator
//lama:cow Node
func (s *Snapshot) FailNode(i int) (*Snapshot, bool) {
	n := s.c.Node(i)
	if n == nil {
		return s, false
	}
	child := s.derive()
	nn := &Node{Name: n.Name, Topo: n.Topo.Clone(), Slots: n.Slots, MaxSlots: n.MaxSlots}
	nn.Topo.SetAvailable(hw.LevelMachine, 0, false)
	child.c.Nodes[i] = nn
	child.c.Faults.RecordFailure(i)
	child.nodeSigs[i] = nodeSig(nn)
	child.sig = combineSigs(child.nodeSigs)
	return child, true
}

// FailPUs derives a snapshot in which the given PU OS indices of node i
// are off-lined (a partial failure such as a dead core). The second result
// is the number of PUs that changed from usable to failed; when zero the
// receiver is returned unchanged and no new epoch is minted.
//
//lama:mutator
//lama:cow Node
func (s *Snapshot) FailPUs(i int, pus *hw.CPUSet) (*Snapshot, int) {
	n := s.c.Node(i)
	if n == nil {
		return s, 0
	}
	nn := &Node{Name: n.Name, Topo: n.Topo.Clone(), Slots: n.Slots, MaxSlots: n.MaxSlots}
	changed := nn.Topo.Offline(pus)
	if changed == 0 {
		return s, 0
	}
	child := s.derive()
	child.c.Nodes[i] = nn
	child.nodeSigs[i] = nodeSig(nn)
	child.sig = combineSigs(child.nodeSigs)
	return child, changed
}

// AppendNode derives a snapshot grown by one node (a realloc grant or an
// elastic grow). The node is deep-copied on the way in so the caller's
// copy stays independent.
//
//lama:mutator
//lama:cow Node
func (s *Snapshot) AppendNode(n *Node) *Snapshot {
	child := s.derive()
	nn := &Node{Name: n.Name, Topo: n.Topo.Clone(), Slots: n.Slots, MaxSlots: n.MaxSlots}
	child.c.Nodes = append(child.c.Nodes, nn)
	child.nodeSigs = append(child.nodeSigs, nodeSig(nn))
	child.sig = combineSigs(child.nodeSigs)
	return child
}

// ReplaceNode derives a snapshot in which node i is substituted by a deep
// copy of n (realloc adoption: a spare takes over a failed node's logical
// slot). Returns the receiver unchanged when i is out of range.
//
//lama:mutator
//lama:cow Node
func (s *Snapshot) ReplaceNode(i int, n *Node) (*Snapshot, bool) {
	if s.c.Node(i) == nil {
		return s, false
	}
	child := s.derive()
	nn := &Node{Name: n.Name, Topo: n.Topo.Clone(), Slots: n.Slots, MaxSlots: n.MaxSlots}
	child.c.Nodes[i] = nn
	child.nodeSigs[i] = nodeSig(nn)
	child.sig = combineSigs(child.nodeSigs)
	return child, true
}

// nodeSig stamps one node: structural shape, the exact usable PU set
// (ancestor availability included), and the slot policy. Everything a
// mapping run can observe about the node is covered.
//
//lama:cow Node
func nodeSig(n *Node) string {
	_ = n.Name // excluded: renaming a node does not change how it maps
	var sb strings.Builder
	sb.WriteString(n.Topo.ShapeSig())
	sb.WriteByte('|')
	for _, pu := range n.Topo.Root.UsablePUs() {
		fmt.Fprintf(&sb, "%x,", pu.OS)
	}
	fmt.Fprintf(&sb, "|%d|%d", n.Slots, n.MaxSlots)
	return sb.String()
}

// combineSigs digests the per-node signatures (order-sensitive: node order
// is the logical node numbering) into a short stable key.
func combineSigs(sigs []string) string {
	h := sha256.New()
	for _, s := range sigs {
		h.Write([]byte(s))
		h.Write([]byte{0})
	}
	sum := h.Sum(nil)
	return hex.EncodeToString(sum[:12])
}
