// Failure-domain model: the proactive half of the fault-tolerance story.
// Nodes live in a physical hierarchy — several nodes share a chassis
// (power supply, backplane), several chassis share a rack (PDU, top-of-rack
// switch) — and failures correlate within those domains. Vardas et al.
// (PAPERS.md, "Topology and Fault-Aware Process Placement") show that
// placement should anticipate this: spread a job's critical ranks across
// failure domains and keep replacement resources topologically near the
// ranks they would inherit. The FaultModel below carries the labels and a
// seeded per-node failure-history/MTBF-weight table that placement stages
// (internal/faultaware), the resource manager (rm.Realloc spare choice),
// and failure injection (orte.NodeMTBFSchedule) all consume; FailNode
// feeds observed failures back into it.
package cluster

import (
	"fmt"
	"math/rand"
)

// FaultDomain labels one node's position in the failure hierarchy.
// Chassis indices are global (chassis 3 is the same chassis whichever rack
// it sits in), so comparing Chassis alone decides chassis-level
// correlation.
type FaultDomain struct {
	// Chassis is the node's chassis index within the cluster.
	Chassis int
	// Rack is the node's rack index within the cluster.
	Rack int
}

// FaultModel is the per-cluster failure-domain and failure-history table:
// one domain label, one MTBF weight, and one observed-failure counter per
// node. The zero node count model is valid and reports every node as its
// own domain with unit weight.
type FaultModel struct {
	domains []FaultDomain
	// weights are per-node failure-rate weights relative to the cluster
	// mean (1.0): a node with weight 2 is expected to fail twice as often.
	weights []float64
	// fails counts observed failures per node (FailNode feedback).
	fails []int
}

// NewFaultModel builds the model for n nodes grouped nodesPerChassis to a
// chassis and chassisPerRack to a rack (both clamped to >= 1), with
// per-node MTBF weights drawn uniformly from [0.5, 1.5) by a generator
// seeded with seed — deterministic for a given (n, grouping, seed) tuple,
// mirroring the repository's seeded failure injection.
func NewFaultModel(n, nodesPerChassis, chassisPerRack int, seed int64) *FaultModel {
	if n < 0 {
		panic(fmt.Sprintf("cluster: negative node count %d", n))
	}
	if nodesPerChassis < 1 {
		nodesPerChassis = 1
	}
	if chassisPerRack < 1 {
		chassisPerRack = 1
	}
	m := &FaultModel{
		domains: make([]FaultDomain, n),
		weights: make([]float64, n),
		fails:   make([]int, n),
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		chassis := i / nodesPerChassis
		m.domains[i] = FaultDomain{Chassis: chassis, Rack: chassis / chassisPerRack}
		m.weights[i] = 0.5 + rng.Float64()
	}
	return m
}

// AttachFaultModel builds and attaches a model matching the cluster's
// node count, returning it for further configuration.
func (c *Cluster) AttachFaultModel(nodesPerChassis, chassisPerRack int, seed int64) *FaultModel {
	c.Faults = NewFaultModel(c.NumNodes(), nodesPerChassis, chassisPerRack, seed)
	return c.Faults
}

// NumNodes returns the number of nodes the model covers.
func (m *FaultModel) NumNodes() int { return len(m.domains) }

// Domain returns node i's failure domain. Nodes outside the model (a
// replacement view appended after construction, or a nil model) get a
// singleton domain of their own — the conservative default: they share
// failures with nobody.
func (m *FaultModel) Domain(i int) FaultDomain {
	if m == nil || i < 0 || i >= len(m.domains) {
		return FaultDomain{Chassis: -1 - i, Rack: -1 - i}
	}
	return m.domains[i]
}

// SetDomain overrides node i's domain label (e.g. when a replacement node
// joins an existing chassis). Out-of-range indices grow the table.
func (m *FaultModel) SetDomain(i int, d FaultDomain) {
	if i < 0 {
		return
	}
	for len(m.domains) <= i {
		m.domains = append(m.domains, FaultDomain{Chassis: -1 - len(m.domains), Rack: -1 - len(m.domains)})
		m.weights = append(m.weights, 1)
		m.fails = append(m.fails, 0)
	}
	m.domains[i] = d
}

// SameChassis reports whether nodes a and b share a chassis (the tightest
// correlated-failure domain).
func (m *FaultModel) SameChassis(a, b int) bool {
	return m.Domain(a).Chassis == m.Domain(b).Chassis
}

// SameRack reports whether nodes a and b share a rack.
func (m *FaultModel) SameRack(a, b int) bool {
	return m.Domain(a).Rack == m.Domain(b).Rack
}

// RecordFailure feeds one observed failure of node i into the history
// table. FailNode calls it automatically; out-of-model nodes are grown
// into the table so replacement views accumulate history too.
func (m *FaultModel) RecordFailure(i int) {
	if m == nil || i < 0 {
		return
	}
	if i >= len(m.fails) {
		m.SetDomain(i, m.Domain(i))
	}
	m.fails[i]++
}

// Failures returns the observed failure count of node i.
func (m *FaultModel) Failures(i int) int {
	if m == nil || i < 0 || i >= len(m.fails) {
		return 0
	}
	return m.fails[i]
}

// Weight returns node i's seeded MTBF weight (1.0 = cluster mean failure
// rate). Out-of-model nodes weigh 1.
func (m *FaultModel) Weight(i int) float64 {
	if m == nil || i < 0 || i >= len(m.weights) {
		return 1
	}
	return m.weights[i]
}

// Risk is the model's failure-rate estimate for node i: the seeded MTBF
// weight scaled up by observed failure history (each recorded failure
// doubles down on the node being suspect). Placement and spare selection
// minimize it.
func (m *FaultModel) Risk(i int) float64 {
	return m.Weight(i) * float64(1+m.Failures(i))
}

// Spread counts the distinct chassis and racks covered by the given node
// indices — the quantity fault-aware placement maximizes for a job's
// critical ranks.
func (m *FaultModel) Spread(nodes []int) (chassis, racks int) {
	seenC := map[int]bool{}
	seenR := map[int]bool{}
	for _, n := range nodes {
		d := m.Domain(n)
		seenC[d.Chassis] = true
		seenR[d.Rack] = true
	}
	return len(seenC), len(seenR)
}

// Derive builds the model for a view cluster whose node i corresponds to
// source node indices[i], carrying over domain labels, weights, and
// failure history — how a resource-manager grant hands a job the
// failure-domain picture of exactly the nodes it received. A nil source
// derives nil.
func (m *FaultModel) Derive(indices []int) *FaultModel {
	if m == nil {
		return nil
	}
	out := &FaultModel{
		domains: make([]FaultDomain, len(indices)),
		weights: make([]float64, len(indices)),
		fails:   make([]int, len(indices)),
	}
	for i, src := range indices {
		out.domains[i] = m.Domain(src)
		out.weights[i] = m.Weight(src)
		out.fails[i] = m.Failures(src)
	}
	return out
}

// Adopt copies node srcIdx's domain, weight, and history from src into
// slot i (growing the table as needed) — how a granted view's model stays
// in sync when the resource manager appends a replacement node.
func (m *FaultModel) Adopt(i int, src *FaultModel, srcIdx int) {
	if m == nil || i < 0 {
		return
	}
	m.SetDomain(i, src.Domain(srcIdx))
	m.weights[i] = src.Weight(srcIdx)
	m.fails[i] = src.Failures(srcIdx)
}

// Clone deep-copies the model.
//
//lama:cow FaultModel
func (m *FaultModel) Clone() *FaultModel {
	if m == nil {
		return nil
	}
	return &FaultModel{
		domains: append([]FaultDomain(nil), m.domains...),
		weights: append([]float64(nil), m.weights...),
		fails:   append([]int(nil), m.fails...),
	}
}
