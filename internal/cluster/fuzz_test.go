package cluster

import (
	"testing"

	"lama/internal/hw"
)

// FuzzParseHostfile drives the hostfile parser with arbitrary text and
// checks the format/reparse round-trip on every accepted input: rendering
// an accepted cluster with FormatHostfile and parsing it back must
// reproduce the same node names, slot policy, and PU counts. Hostfiles
// built from specs are regular, so the round-trip is exact for everything
// this fuzzer can construct.
func FuzzParseHostfile(f *testing.F) {
	for _, s := range []string{
		"node0 slots=8 spec=nehalem-ep\nnode1 slots=8 spec=nehalem-ep",
		"old0 slots=2 spec=1:4:1 allowed=0-1",
		"# comment\n\nn0 slots=1\nn1 slots=2 maxslots=2",
		"a slots=1 spec=2:2:2:2:2:2:2:2",
		"dup slots=1\ndup slots=1",
		"bad slots=-1",
		"bad spec=9999999:9999999:9999999",
		"bad allowed=0-99999999999",
		"x maxslots=1 slots=2",
		"",
	} {
		f.Add(s)
	}
	def := hw.Spec{Boards: 1, Sockets: 1, NUMAs: 1, L3s: 1, L2s: 1, L1s: 1, Cores: 2, PUs: 2}
	f.Fuzz(func(t *testing.T, text string) {
		c, err := ParseHostfile(text, def)
		if err != nil {
			if c != nil {
				t.Fatalf("ParseHostfile returned both a cluster and %v", err)
			}
			return
		}
		if c.NumNodes() == 0 {
			t.Fatalf("accepted hostfile produced an empty cluster:\n%s", text)
		}
		out := FormatHostfile(c)
		c2, err := ParseHostfile(out, def)
		if err != nil {
			t.Fatalf("round-trip reparse failed: %v\ninput:\n%s\nformatted:\n%s", err, text, out)
		}
		if c2.NumNodes() != c.NumNodes() {
			t.Fatalf("round-trip node count %d != %d\nformatted:\n%s", c2.NumNodes(), c.NumNodes(), out)
		}
		for i, n := range c.Nodes {
			m := c2.Nodes[i]
			if m.Name != n.Name || m.Slots != n.Slots || m.MaxSlots != n.MaxSlots {
				t.Fatalf("round-trip node %d: got %q slots=%d maxslots=%d, want %q slots=%d maxslots=%d",
					i, m.Name, m.Slots, m.MaxSlots, n.Name, n.Slots, n.MaxSlots)
			}
			if m.Topo.NumPUs() != n.Topo.NumPUs() || m.Topo.NumUsablePUs() != n.Topo.NumUsablePUs() {
				t.Fatalf("round-trip node %d: PUs %d/%d usable, want %d/%d",
					i, m.Topo.NumUsablePUs(), m.Topo.NumPUs(),
					n.Topo.NumUsablePUs(), n.Topo.NumPUs())
			}
		}
	})
}
