// Package mpirun implements the four command-line abstraction levels the
// paper's Open MPI implementation exposes (§V):
//
//	Level 1: no mapping/binding options — sensible defaults.
//	Level 2: simple, common patterns (--bynode, --byslot, --map-by socket, ...).
//	Level 3: raw LAMA process layouts (--lama-map scbnh).
//	Level 4: irregular patterns via a rankfile (--rankfile file).
//
// Levels 1 and 2 are shortcuts that lower onto Level 3 layouts, exactly as
// in the paper; Level 4 bypasses the LAMA.
package mpirun

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"lama/internal/bind"
	"lama/internal/cluster"
	"lama/internal/commpat"
	"lama/internal/core"
	"lama/internal/hw"
	"lama/internal/obs"
	"lama/internal/orte"
	"lama/internal/place"
	_ "lama/internal/place/all" // link every built-in policy for --policy
	"lama/internal/rankfile"
)

// Shortcut layouts: the Level 2 vocabulary and the Level 3 layout each
// pattern lowers to.
var shortcuts = map[string]string{
	"slot":     "csbnh", // pack cores within a node, then next node
	"core":     "csbnh",
	"node":     "ncsbh", // round-robin nodes
	"socket":   "scbnh", // scatter across sockets (the paper's example)
	"board":    "bscnh", // scatter across boards
	"numa":     "Ncsbnh",
	"hwthread": "hcsbn", // pack hardware threads
	"l2":       "L2csbnh",
	"l3":       "L3csbnh",
}

// ShortcutLayout returns the Level 3 layout string a Level 2 pattern name
// lowers to.
func ShortcutLayout(name string) (string, bool) {
	l, ok := shortcuts[name]
	return l, ok
}

// ShortcutNames returns the supported Level 2 pattern names.
func ShortcutNames() []string {
	out := make([]string, 0, len(shortcuts))
	for n := range shortcuts {
		out = append(out, n)
	}
	return out
}

// Request is a fully parsed launch request.
type Request struct {
	// NP is the number of processes to launch.
	NP int
	// Level is the abstraction level used (1-4).
	Level int
	// Layout is the process layout (Levels 1-3).
	Layout core.Layout
	// Rankfile is the parsed rankfile (Level 4), nil otherwise.
	Rankfile *rankfile.File
	// Opts are the mapping options.
	Opts core.Options
	// BindPolicy and BindLevel describe the requested binding. BindCount
	// (from --lama-bind "<count><level>") widens a Specific binding to
	// several consecutive objects; 0/1 means one.
	BindPolicy bind.Policy
	BindLevel  hw.Level
	BindCount  int
	// ReportBindings requests an Open MPI-style binding report
	// (--report-bindings).
	ReportBindings bool
	// Policy optionally names the registered placement policy (--policy).
	// Empty derives it from the abstraction level: "rankfile" for Level 4,
	// "lama" otherwise.
	Policy string
	// Traffic is the application communication matrix, consumed by
	// traffic-aware policies ("treematch") and the reorder stage. Set
	// programmatically (CLIs lower their -pattern/-traffic flags onto it).
	Traffic *commpat.Matrix
	// Seed, TorusDims, TorusOrder, BlockSize, and PackLevel feed the
	// corresponding registry policies; see place.Request.
	Seed       int64
	TorusDims  [3]int
	TorusOrder string
	BlockSize  int
	PackLevel  hw.Level
	// Stages are post-pass pipeline stages applied between place and bind
	// (e.g. a reorder.Pass). Set programmatically.
	Stages []place.Stage
	// FT is the fault-tolerance policy (--ft); FTSet records that the
	// flag was given explicitly (the default is abort, the seed behavior).
	FT    orte.FTPolicy
	FTSet bool
	// Spares is the number of whole spare nodes to reserve (--spares).
	Spares int
	// MaxRestarts is the respawn budget (--max-restarts); negative means
	// unlimited. The default is 1.
	MaxRestarts int
}

// Parse interprets an mpirun-style argument list:
//
//	-np N                 process count (required)
//	--bynode | --byslot   Level 2 shortcuts
//	--map-by <pattern>    Level 2 shortcut by name (socket, core, numa, ...)
//	--lama-map <layout>   Level 3 raw LAMA layout
//	--rankfile-text <s>   Level 4 irregular placements (inline text)
//	--bind-to <level>     none | board | socket | numa | l1|l2|l3 | core | hwthread
//	--bind-limited        limited-set binding
//	--pe N                processing elements per process
//	--oversubscribe       allow PU sharing
//	--max-per <level>=<n> ALPS-style per-resource rank cap
//	--ft <policy>         abort | shrink | respawn on failure detection
//	--spares N            whole spare nodes to reserve for respawn
//	--max-restarts N      respawn budget (negative = unlimited; default 1)
//
// Value-taking flags also accept the --flag=value form.
func Parse(args []string) (*Request, error) {
	req := &Request{Level: 1, BindPolicy: bind.None, BindLevel: hw.LevelCore, MaxRestarts: 1}
	var mapSpec string
	mapLevel := 1

	// Expand "--flag=value" into "--flag value" so both spellings work.
	expanded := make([]string, 0, len(args))
	for _, a := range args {
		if strings.HasPrefix(a, "--") {
			if flag, v, ok := strings.Cut(a, "="); ok {
				expanded = append(expanded, flag, v)
				continue
			}
		}
		expanded = append(expanded, a)
	}
	args = expanded

	next := func(i *int, flag string) (string, error) {
		*i++
		if *i >= len(args) {
			return "", fmt.Errorf("mpirun: %s requires a value", flag)
		}
		return args[*i], nil
	}
	setMap := func(level int, spec string) error {
		if mapLevel > 1 {
			return fmt.Errorf("mpirun: conflicting mapping options")
		}
		mapLevel = level
		mapSpec = spec
		return nil
	}

	for i := 0; i < len(args); i++ {
		switch arg := args[i]; arg {
		case "-np", "--np", "-n":
			v, err := next(&i, arg)
			if err != nil {
				return nil, err
			}
			np, err := strconv.Atoi(v)
			if err != nil || np <= 0 {
				return nil, fmt.Errorf("mpirun: bad process count %q", v)
			}
			req.NP = np
		case "--bynode":
			if err := setMap(2, shortcuts["node"]); err != nil {
				return nil, err
			}
		case "--byslot":
			if err := setMap(2, shortcuts["slot"]); err != nil {
				return nil, err
			}
		case "--map-by":
			v, err := next(&i, arg)
			if err != nil {
				return nil, err
			}
			layout, ok := shortcuts[v]
			if !ok {
				return nil, fmt.Errorf("mpirun: unknown --map-by pattern %q (want one of %s)",
					v, strings.Join(ShortcutNames(), ", "))
			}
			if err := setMap(2, layout); err != nil {
				return nil, err
			}
		case "--lama-map":
			v, err := next(&i, arg)
			if err != nil {
				return nil, err
			}
			if err := setMap(3, v); err != nil {
				return nil, err
			}
		case "--rankfile-text":
			v, err := next(&i, arg)
			if err != nil {
				return nil, err
			}
			if err := setMap(4, ""); err != nil {
				return nil, err
			}
			f, err := rankfile.Parse(v)
			if err != nil {
				return nil, err
			}
			req.Rankfile = f
		case "--bind-to":
			v, err := next(&i, arg)
			if err != nil {
				return nil, err
			}
			if v == "none" {
				req.BindPolicy = bind.None
				continue
			}
			level, ok := bindLevel(v)
			if !ok {
				return nil, fmt.Errorf("mpirun: unknown --bind-to target %q", v)
			}
			req.BindPolicy = bind.Specific
			req.BindLevel = level
		case "--lama-bind":
			v, err := next(&i, arg)
			if err != nil {
				return nil, err
			}
			level, count, err := bind.ParseWidthSpec(v)
			if err != nil {
				return nil, err
			}
			req.BindPolicy = bind.Specific
			req.BindLevel = level
			req.BindCount = count
		case "--policy":
			v, err := next(&i, arg)
			if err != nil {
				return nil, err
			}
			req.Policy = v
		case "--bind-limited":
			req.BindPolicy = bind.Limited
		case "--report-bindings":
			req.ReportBindings = true
		case "--pe":
			v, err := next(&i, arg)
			if err != nil {
				return nil, err
			}
			pe, err := strconv.Atoi(v)
			if err != nil || pe <= 0 {
				return nil, fmt.Errorf("mpirun: bad --pe %q", v)
			}
			req.Opts.PEsPerProc = pe
		case "--oversubscribe":
			req.Opts.Oversubscribe = true
		case "--respect-slots":
			req.Opts.RespectSlots = true
		case "--max-per":
			v, err := next(&i, arg)
			if err != nil {
				return nil, err
			}
			name, cnt, ok := strings.Cut(v, "=")
			if !ok {
				return nil, fmt.Errorf("mpirun: --max-per wants <level>=<n>, got %q", v)
			}
			level, ok := bindLevel(name)
			if !ok {
				if name == "node" {
					level = hw.LevelMachine
					ok = true
				}
			}
			if !ok {
				return nil, fmt.Errorf("mpirun: unknown --max-per level %q", name)
			}
			n, err := strconv.Atoi(cnt)
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("mpirun: bad --max-per count %q", cnt)
			}
			if req.Opts.MaxPerResource == nil {
				req.Opts.MaxPerResource = map[hw.Level]int{}
			}
			req.Opts.MaxPerResource[level] = n
		case "--ft":
			v, err := next(&i, arg)
			if err != nil {
				return nil, err
			}
			policy, err := orte.ParseFTPolicy(v)
			if err != nil {
				return nil, fmt.Errorf("mpirun: %v", err)
			}
			req.FT = policy
			req.FTSet = true
		case "--spares":
			v, err := next(&i, arg)
			if err != nil {
				return nil, err
			}
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("mpirun: bad --spares %q", v)
			}
			req.Spares = n
		case "--max-restarts":
			v, err := next(&i, arg)
			if err != nil {
				return nil, err
			}
			n, err := strconv.Atoi(v)
			if err != nil {
				return nil, fmt.Errorf("mpirun: bad --max-restarts %q", v)
			}
			req.MaxRestarts = n
		default:
			return nil, fmt.Errorf("mpirun: unknown option %q", arg)
		}
	}
	if req.NP <= 0 {
		return nil, fmt.Errorf("mpirun: -np is required")
	}
	req.Level = mapLevel
	if mapLevel != 4 {
		if mapLevel == 1 {
			mapSpec = shortcuts["slot"] // Level 1 default: by-slot
		}
		layout, err := core.ParseLayout(mapSpec)
		if err != nil {
			return nil, err
		}
		req.Layout = layout
	}
	return req, nil
}

// bindLevel maps a --bind-to target name to a Level.
func bindLevel(name string) (hw.Level, bool) {
	switch name {
	case "board":
		return hw.LevelBoard, true
	case "socket":
		return hw.LevelSocket, true
	case "numa":
		return hw.LevelNUMA, true
	case "l1":
		return hw.LevelL1, true
	case "l2":
		return hw.LevelL2, true
	case "l3":
		return hw.LevelL3, true
	case "core":
		return hw.LevelCore, true
	case "hwthread":
		return hw.LevelPU, true
	default:
		return 0, false
	}
}

// Result is a fully planned launch: map plus binding plan. Job is set
// only by Launch.
type Result struct {
	Map  *core.Map
	Plan *bind.Plan
	Job  *orte.Job
}

// PolicyName resolves the placement policy the request uses: an explicit
// --policy wins, otherwise Level 4 lowers onto "rankfile" and every other
// level onto "lama".
func (req *Request) PolicyName() string {
	if req.Policy != "" {
		return req.Policy
	}
	if req.Level == 4 {
		return "rankfile"
	}
	return "lama"
}

// placeRequest lowers the mpirun request onto the registry's request type.
func placeRequest(req *Request, c *cluster.Cluster) *place.Request {
	preq := &place.Request{
		Cluster:    c,
		NP:         req.NP,
		Layout:     req.Layout,
		Traffic:    req.Traffic,
		TorusDims:  req.TorusDims,
		TorusOrder: req.TorusOrder,
		Seed:       req.Seed,
		BlockSize:  req.BlockSize,
		PackLevel:  req.PackLevel,
		Opts:       req.Opts,
	}
	if req.Rankfile != nil {
		preq.RankfileText = rankfile.Format(req.Rankfile)
	}
	return preq
}

// Execute plans the request against a cluster as a uniform pipeline —
// resolve the policy, place, run the post-pass stages, bind — so every
// abstraction level (including the Level-4 rankfile path) flows through
// the same instrumented stages.
func Execute(ctx context.Context, req *Request, c *cluster.Cluster) (*Result, error) {
	name := req.PolicyName()
	pol, ok := place.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("mpirun: unknown placement policy %q", name)
	}
	pipe := place.Pipeline{Policy: pol, Stages: req.Stages}
	m, err := pipe.Run(ctx, placeRequest(req, c))
	if err != nil {
		return nil, err
	}
	var plan *bind.Plan
	endBind := req.Opts.Obs.StartSpan(obs.SpanBind)
	if req.BindPolicy == bind.Specific && req.BindCount > 1 {
		plan, err = bind.ComputeWidth(c, m, req.BindLevel, req.BindCount)
	} else {
		plan, err = bind.Compute(c, m, req.BindPolicy, req.BindLevel)
	}
	endBind()
	if err != nil {
		return nil, err
	}
	if err := plan.Check(c); err != nil {
		return nil, err
	}
	return &Result{Map: m, Plan: plan}, nil
}

// Launch completes the pipeline: Execute (place → stages → bind), then
// start the job on the ORTE runtime under a "launch" span and simulate it
// for the given number of steps.
func Launch(ctx context.Context, req *Request, c *cluster.Cluster, steps int) (*Result, error) {
	res, err := Execute(ctx, req, c)
	if err != nil {
		return nil, err
	}
	endLaunch := req.Opts.Obs.StartSpan(obs.SpanLaunch)
	job, err := orte.NewRuntime(c).Launch(res.Map, res.Plan, steps)
	endLaunch()
	if err != nil {
		return nil, err
	}
	res.Job = job
	return res, nil
}
