package mpirun

import (
	"context"
	"errors"
	"testing"

	"lama/internal/bind"
	"lama/internal/cluster"
	"lama/internal/core"
	"lama/internal/hw"
	"lama/internal/orte"
)

func testCluster(t *testing.T) *cluster.Cluster {
	t.Helper()
	sp, _ := hw.Preset("fig2")
	return cluster.Homogeneous(2, sp)
}

func TestLevel1Defaults(t *testing.T) {
	req, err := Parse([]string{"-np", "4"})
	if err != nil {
		t.Fatal(err)
	}
	if req.Level != 1 || req.NP != 4 {
		t.Fatalf("req = %+v", req)
	}
	if req.Layout.String() != "csbnh" {
		t.Fatalf("default layout = %q", req.Layout)
	}
	if req.BindPolicy != bind.None {
		t.Fatal("default binding should be none")
	}
}

func TestLevel2Shortcuts(t *testing.T) {
	cases := map[string]string{
		"--bynode": "ncsbh",
		"--byslot": "csbnh",
	}
	for flag, want := range cases {
		req, err := Parse([]string{"-np", "2", flag})
		if err != nil {
			t.Fatal(err)
		}
		if req.Level != 2 || req.Layout.String() != want {
			t.Fatalf("%s -> level %d layout %q", flag, req.Level, req.Layout)
		}
	}
	req, err := Parse([]string{"-np", "2", "--map-by", "socket", "--bind-to", "core"})
	if err != nil {
		t.Fatal(err)
	}
	if req.Layout.String() != "scbnh" || req.BindPolicy != bind.Specific || req.BindLevel != hw.LevelCore {
		t.Fatalf("req = %+v", req)
	}
	for _, name := range ShortcutNames() {
		l, ok := ShortcutLayout(name)
		if !ok {
			t.Fatalf("shortcut %q missing", name)
		}
		if _, err := core.ParseLayout(l); err != nil {
			t.Fatalf("shortcut %q lowers to invalid layout %q: %v", name, l, err)
		}
	}
}

func TestLevel3RawLayout(t *testing.T) {
	req, err := Parse([]string{"-np", "24", "--lama-map", "scbnh", "--bind-to", "hwthread"})
	if err != nil {
		t.Fatal(err)
	}
	if req.Level != 3 || req.Layout.String() != "scbnh" || req.BindLevel != hw.LevelPU {
		t.Fatalf("req = %+v", req)
	}
}

func TestLevel4Rankfile(t *testing.T) {
	rf := "rank 0=node0 slot=0\nrank 1=node1 slot=0"
	req, err := Parse([]string{"-np", "2", "--rankfile-text", rf})
	if err != nil {
		t.Fatal(err)
	}
	if req.Level != 4 || req.Rankfile == nil {
		t.Fatalf("req = %+v", req)
	}
	res, err := Execute(context.Background(), req, testCluster(t))
	if err != nil {
		t.Fatal(err)
	}
	if res.Map.NumRanks() != 2 {
		t.Fatal("rankfile execute")
	}
}

func TestParseErrors(t *testing.T) {
	cases := [][]string{
		{},                                     // missing -np
		{"-np"},                                // missing value
		{"-np", "x"},                           // bad value
		{"-np", "0"},                           // non-positive
		{"-np", "2", "--map-by", "warp"},       // unknown pattern
		{"-np", "2", "--map-by"},               // missing value
		{"-np", "2", "--lama-map", "zz"},       // bad layout
		{"-np", "2", "--bind-to", "galaxy"},    // bad bind target
		{"-np", "2", "--pe", "0"},              // bad pe
		{"-np", "2", "--max-per", "socket"},    // missing =
		{"-np", "2", "--max-per", "warp=2"},    // bad level
		{"-np", "2", "--max-per", "node=x"},    // bad count
		{"-np", "2", "--wibble"},               // unknown option
		{"-np", "2", "--bynode", "--byslot"},   // conflicting maps
		{"-np", "2", "--rankfile-text", "bad"}, // bad rankfile
	}
	for _, args := range cases {
		if _, err := Parse(args); err == nil {
			t.Errorf("Parse(%v) should fail", args)
		}
	}
}

func TestParseOptionFlags(t *testing.T) {
	req, err := Parse([]string{"-np", "4", "--pe", "2", "--oversubscribe",
		"--max-per", "node=2", "--max-per", "socket=1", "--bind-limited"})
	if err != nil {
		t.Fatal(err)
	}
	if req.Opts.PEsPerProc != 2 || !req.Opts.Oversubscribe {
		t.Fatalf("opts = %+v", req.Opts)
	}
	if req.Opts.MaxPerResource[hw.LevelMachine] != 2 || req.Opts.MaxPerResource[hw.LevelSocket] != 1 {
		t.Fatalf("caps = %v", req.Opts.MaxPerResource)
	}
	if req.BindPolicy != bind.Limited {
		t.Fatal("bind-limited ignored")
	}
}

// TestLevel2EquivalentToLevel3 is experiment E11: shortcuts produce
// exactly the plan of their Level 3 layout.
func TestLevel2EquivalentToLevel3(t *testing.T) {
	c := testCluster(t)
	for _, name := range ShortcutNames() {
		layout, _ := ShortcutLayout(name)
		r2, err := Parse([]string{"-np", "8", "--map-by", name})
		if err != nil {
			t.Fatal(err)
		}
		r3, err := Parse([]string{"-np", "8", "--lama-map", layout})
		if err != nil {
			t.Fatal(err)
		}
		m2, err := Execute(context.Background(), r2, c)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		m3, err := Execute(context.Background(), r3, c)
		if err != nil {
			t.Fatal(err)
		}
		for i := range m2.Map.Placements {
			a, b := m2.Map.Placements[i], m3.Map.Placements[i]
			if a.Node != b.Node || a.PU() != b.PU() {
				t.Fatalf("%s: rank %d differs (%d/%d vs %d/%d)",
					name, i, a.Node, a.PU(), b.Node, b.PU())
			}
		}
	}
}

func TestExecuteMappingAndBinding(t *testing.T) {
	c := testCluster(t)
	req, err := Parse([]string{"-np", "24", "--lama-map", "scbnh", "--bind-to", "core"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(context.Background(), req, c)
	if err != nil {
		t.Fatal(err)
	}
	if res.Map.NumRanks() != 24 || len(res.Plan.Bindings) != 24 {
		t.Fatal("wrong sizes")
	}
	if res.Plan.Bindings[0].Width != 2 {
		t.Fatalf("core binding width = %d", res.Plan.Bindings[0].Width)
	}
}

func TestExecuteErrors(t *testing.T) {
	c := testCluster(t)
	// Too many ranks without --oversubscribe.
	req, _ := Parse([]string{"-np", "25", "--lama-map", "scbnh"})
	if _, err := Execute(context.Background(), req, c); !errors.Is(err, core.ErrOversubscribe) {
		t.Fatalf("want ErrOversubscribe, got %v", err)
	}
	// Rankfile rank count mismatch.
	req2, _ := Parse([]string{"-np", "3", "--rankfile-text", "rank 0=node0 slot=0\nrank 1=node1 slot=0"})
	if _, err := Execute(context.Background(), req2, c); err == nil {
		t.Fatal("np mismatch should fail")
	}
	// Oversubscribing rankfile without --oversubscribe.
	req3, _ := Parse([]string{"-np", "2", "--rankfile-text", "rank 0=node0 slot=0\nrank 1=node0 slot=0"})
	if _, err := Execute(context.Background(), req3, c); !errors.Is(err, core.ErrOversubscribe) {
		t.Fatalf("want ErrOversubscribe, got %v", err)
	}
	// Same rankfile with --oversubscribe is accepted.
	req4, _ := Parse([]string{"-np", "2", "--oversubscribe", "--rankfile-text",
		"rank 0=node0 slot=0\nrank 1=node0 slot=0"})
	if _, err := Execute(context.Background(), req4, c); err != nil {
		t.Fatal(err)
	}
	// Unknown rankfile host.
	req5, _ := Parse([]string{"-np", "1", "--rankfile-text", "rank 0=ghost slot=0"})
	if _, err := Execute(context.Background(), req5, c); err == nil {
		t.Fatal("unknown host should fail")
	}
}

func TestRespectSlotsFlag(t *testing.T) {
	sp, _ := hw.Preset("fig2")
	c := cluster.Homogeneous(2, sp)
	c.Nodes[0].Slots = 1
	c.Nodes[1].Slots = 1
	req, err := Parse([]string{"-np", "2", "--byslot", "--respect-slots"})
	if err != nil {
		t.Fatal(err)
	}
	if !req.Opts.RespectSlots {
		t.Fatal("flag lost")
	}
	res, err := Execute(context.Background(), req, c)
	if err != nil {
		t.Fatal(err)
	}
	per := res.Map.RanksByNode()
	if len(per[0]) != 1 || len(per[1]) != 1 {
		t.Fatalf("slots ignored: %v", per)
	}
	req3, _ := Parse([]string{"-np", "3", "--byslot", "--respect-slots"})
	if _, err := Execute(context.Background(), req3, c); !errors.Is(err, core.ErrOversubscribe) {
		t.Fatalf("want ErrOversubscribe, got %v", err)
	}
}

func TestBindLevelAllTargets(t *testing.T) {
	targets := map[string]hw.Level{
		"board": hw.LevelBoard, "socket": hw.LevelSocket, "numa": hw.LevelNUMA,
		"l1": hw.LevelL1, "l2": hw.LevelL2, "l3": hw.LevelL3,
		"core": hw.LevelCore, "hwthread": hw.LevelPU,
	}
	for name, want := range targets {
		req, err := Parse([]string{"-np", "2", "--bind-to", name})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if req.BindLevel != want || req.BindPolicy != bind.Specific {
			t.Fatalf("%s -> %v/%v", name, req.BindPolicy, req.BindLevel)
		}
	}
	// bind-to none resets to Policy None.
	req, err := Parse([]string{"-np", "2", "--bind-to", "none"})
	if err != nil || req.BindPolicy != bind.None {
		t.Fatalf("none: %v %v", err, req.BindPolicy)
	}
	// max-per accepts every bindable level plus "node".
	for name := range targets {
		if _, err := Parse([]string{"-np", "2", "--max-per", name + "=2"}); err != nil {
			t.Fatalf("max-per %s: %v", name, err)
		}
	}
}

func TestParseMissingValues(t *testing.T) {
	for _, args := range [][]string{
		{"-np", "2", "--bind-to"},
		{"-np", "2", "--pe"},
		{"-np", "2", "--max-per"},
		{"-np", "2", "--lama-map"},
		{"-np", "2", "--rankfile-text"},
		{"-np", "2", "--pe", "x"},
	} {
		if _, err := Parse(args); err == nil {
			t.Errorf("Parse(%v) should fail", args)
		}
	}
}

func TestExecuteBindingFailure(t *testing.T) {
	// A rankfile placement with multiple non-contiguous PUs still binds
	// (claimed-PU binding); binding across restricted nodes fails in
	// plan.Check. Simulate by restricting after parse validation cannot
	// catch it: use a bind level above the leaf on an irregular map.
	c := testCluster(t)
	req, err := Parse([]string{"-np", "1", "--rankfile-text", "rank 0=node0 slot=0", "--bind-to", "hwthread"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Execute(context.Background(), req, c); err != nil {
		t.Fatal(err)
	}
}

func TestLamaBindWidthSpec(t *testing.T) {
	c := testCluster(t) // fig2: 2 sockets x 3 cores x 2 threads
	req, err := Parse([]string{"-np", "4", "--map-by", "socket", "--lama-bind", "2c"})
	if err != nil {
		t.Fatal(err)
	}
	if req.BindPolicy != bind.Specific || req.BindLevel != hw.LevelCore || req.BindCount != 2 {
		t.Fatalf("req = %+v", req)
	}
	res, err := Execute(context.Background(), req, c)
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.Bindings[0].Width != 4 { // two dual-thread cores
		t.Fatalf("width = %d, want 4", res.Plan.Bindings[0].Width)
	}
	// "1s" behaves like --bind-to socket.
	req2, _ := Parse([]string{"-np", "4", "--map-by", "socket", "--lama-bind", "1s"})
	res2, err := Execute(context.Background(), req2, c)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Plan.Bindings[0].Width != 6 {
		t.Fatalf("socket width = %d", res2.Plan.Bindings[0].Width)
	}
	// Bad specs rejected at parse time.
	for _, bad := range [][]string{
		{"-np", "2", "--lama-bind", "0c"},
		{"-np", "2", "--lama-bind", "2x"},
		{"-np", "2", "--lama-bind"},
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%v) should fail", bad)
		}
	}
}

func TestParseFaultToleranceFlags(t *testing.T) {
	// Defaults: abort policy (not explicitly set), no spares, budget 1.
	req, err := Parse([]string{"-np", "4"})
	if err != nil {
		t.Fatal(err)
	}
	if req.FT != orte.FTAbort || req.FTSet || req.Spares != 0 || req.MaxRestarts != 1 {
		t.Fatalf("defaults = %+v", req)
	}
	// Space-separated form.
	req, err = Parse([]string{"-np", "4", "--ft", "respawn", "--spares", "2", "--max-restarts", "3"})
	if err != nil {
		t.Fatal(err)
	}
	if req.FT != orte.FTRespawn || !req.FTSet || req.Spares != 2 || req.MaxRestarts != 3 {
		t.Fatalf("req = %+v", req)
	}
	// --flag=value form.
	req, err = Parse([]string{"-np", "4", "--ft=shrink", "--spares=1", "--max-restarts=-1"})
	if err != nil {
		t.Fatal(err)
	}
	if req.FT != orte.FTShrink || !req.FTSet || req.Spares != 1 || req.MaxRestarts != -1 {
		t.Fatalf("req = %+v", req)
	}
	// Bad values rejected.
	for _, bad := range [][]string{
		{"-np", "2", "--ft", "explode"},
		{"-np", "2", "--ft"},
		{"-np", "2", "--spares", "-1"},
		{"-np", "2", "--spares", "x"},
		{"-np", "2", "--max-restarts", "many"},
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%v) should fail", bad)
		}
	}
}

func TestParseEqualsFormForExistingFlags(t *testing.T) {
	req, err := Parse([]string{"-np", "6", "--map-by=socket", "--bind-to=core", "--max-per=node=4"})
	if err != nil {
		t.Fatal(err)
	}
	if req.Level != 2 || req.BindPolicy != bind.Specific || req.BindLevel != hw.LevelCore {
		t.Fatalf("req = %+v", req)
	}
	if req.Opts.MaxPerResource[hw.LevelMachine] != 4 {
		t.Fatalf("max-per = %+v", req.Opts.MaxPerResource)
	}
}
