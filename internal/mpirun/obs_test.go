package mpirun

import (
	"context"
	"sort"
	"testing"

	"lama/internal/cluster"
	"lama/internal/core"
	"lama/internal/hw"
	"lama/internal/obs"
	"lama/internal/rankfile"
)

// TestEventVocabularyUniformAcrossLevels is the satellite-1 regression:
// before the pipeline refactor the Level-4 rankfile branch bypassed the
// observer entirely, so rankfile runs were missing the mapping phase from
// traces and reports. Now every abstraction level must emit the same event
// vocabulary, record the map in the metrics, and time both a placement
// phase and the bind phase.
func TestEventVocabularyUniformAcrossLevels(t *testing.T) {
	sp, ok := hw.Preset("fig2")
	if !ok {
		t.Fatal("fig2 preset missing")
	}
	const np = 12

	// A Level-4 rankfile equivalent to the Level-1 default placement.
	base := cluster.Homogeneous(2, sp)
	m, err := Execute(context.Background(), &Request{NP: np, Level: 3, Layout: core.MustParseLayout("csbnh")}, base)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := rankfile.FromMap(m.Map)
	if err != nil {
		t.Fatal(err)
	}
	rfText := rankfile.Format(rf)

	levels := []struct {
		name string
		args []string
	}{
		{"level2", []string{"-np", "12", "--map-by", "socket"}},
		{"level3", []string{"-np", "12", "--lama-map", "scbnh"}},
		{"level4", []string{"-np", "12", "--rankfile-text", rfText}},
	}

	events := map[string][]string{}
	for _, lv := range levels {
		c := cluster.Homogeneous(2, sp)
		sink := obs.NewMemorySink()
		o := &obs.Observer{
			Sink: sink, Metrics: obs.NewRegistry(), Phases: obs.NewPhaseTimer(),
			Clock: func() int64 { return 0 },
		}
		req, err := Parse(lv.args)
		if err != nil {
			t.Fatalf("%s: %v", lv.name, err)
		}
		req.Opts.Obs = o
		if _, err := Execute(context.Background(), req, c); err != nil {
			t.Fatalf("%s: %v", lv.name, err)
		}

		vocab := map[string]bool{}
		for _, e := range sink.Events() {
			// Every emitted pair must come from the canonical table in
			// internal/obs/vocab.go — the same table lamavet's obsvocab
			// analyzer enforces at the call sites.
			if !obs.VocabRegistered(e.Source, e.Name) {
				t.Errorf("%s: event (%s, %s) is not in the canonical vocabulary", lv.name, e.Source, e.Name)
			}
			vocab[e.Source+"/"+e.Name] = true
		}
		var names []string
		for n := range vocab {
			names = append(names, n)
		}
		sort.Strings(names)
		events[lv.name] = names

		if got := o.Metrics.Counter("lama_maps_total").Value(); got != 1 {
			t.Errorf("%s: lama_maps_total = %d, want 1", lv.name, got)
		}
		phases := map[string]bool{}
		for _, s := range o.Phases.Spans() {
			if !obs.SpanRegistered(s.Name) {
				t.Errorf("%s: span label %q is not in the canonical span table", lv.name, s.Name)
			}
			phases[s.Name] = true
		}
		if !phases[obs.SpanPlace] {
			t.Errorf("%s: no place span (phases %v)", lv.name, phases)
		}
		if !phases[obs.SpanBind] {
			t.Errorf("%s: no bind span (phases %v)", lv.name, phases)
		}
	}

	ref := events["level2"]
	if len(ref) == 0 {
		t.Fatal("level2 emitted no events")
	}
	for _, lv := range []string{"level3", "level4"} {
		got := events[lv]
		if len(got) != len(ref) {
			t.Errorf("%s vocabulary %v differs from level2 %v", lv, got, ref)
			continue
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Errorf("%s vocabulary %v differs from level2 %v", lv, got, ref)
				break
			}
		}
	}
}

// TestExecuteHonorsExplicitPolicy checks --policy overrides the
// level-derived default.
func TestExecuteHonorsExplicitPolicy(t *testing.T) {
	sp, _ := hw.Preset("fig2")
	c := cluster.Homogeneous(2, sp)
	req, err := Parse([]string{"-np", "8", "--policy", "by-node"})
	if err != nil {
		t.Fatal(err)
	}
	if req.PolicyName() != "by-node" {
		t.Fatalf("PolicyName = %q, want by-node", req.PolicyName())
	}
	res, err := Execute(context.Background(), req, c)
	if err != nil {
		t.Fatal(err)
	}
	// by-node round-robins nodes, so ranks 0 and 1 land on different nodes.
	if res.Map.Placements[0].Node == res.Map.Placements[1].Node {
		t.Error("by-node policy not applied: ranks 0 and 1 share a node")
	}
	if _, err := Execute(context.Background(), &Request{NP: 8, Policy: "nope"}, c); err == nil {
		t.Error("unknown policy accepted")
	}
}

// TestLaunchRunsFullPipeline drives place → bind → launch in one call.
func TestLaunchRunsFullPipeline(t *testing.T) {
	sp, _ := hw.Preset("fig2")
	c := cluster.Homogeneous(2, sp)
	o := &obs.Observer{Phases: obs.NewPhaseTimer()}
	req, err := Parse([]string{"-np", "8", "--bind-to", "core"})
	if err != nil {
		t.Fatal(err)
	}
	req.Opts.Obs = o
	res, err := Launch(context.Background(), req, c, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Job == nil {
		t.Fatal("Launch returned no job")
	}
	phases := map[string]bool{}
	for _, s := range o.Phases.Spans() {
		phases[s.Name] = true
	}
	for _, want := range []string{"place", "bind", "launch"} {
		if !phases[want] {
			t.Errorf("missing %s span (phases %v)", want, phases)
		}
	}
}
