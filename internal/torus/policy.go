package torus

import (
	"context"
	"lama/internal/core"
	"lama/internal/place"
)

// policy adapts the BlueGene-style XYZT mapper to the place registry. It
// consumes Request.TorusDims (all-zero derives a near-cubic shape from the
// node count via FitDims) and Request.TorusOrder (empty means "xyzt").
type policy struct{}

func (policy) Name() string { return "torus" }

func (policy) Place(_ context.Context, req *place.Request) (*core.Map, error) {
	d := Dims{X: req.TorusDims[0], Y: req.TorusDims[1], Z: req.TorusDims[2]}
	if d == (Dims{}) {
		d = FitDims(req.Cluster.NumNodes())
	}
	order := req.TorusOrder
	if order == "" {
		order = "xyzt"
	}
	return Map(req.Cluster, d, order, req.NP)
}

func init() { place.Register(policy{}) }

// FitDims factors n nodes into a torus shape with X >= Y >= Z, as close to
// cubic as the divisors of n allow (FitDims(12) = 3x2x2, FitDims(7) =
// 7x1x1). The product is always exactly n, so any cluster can be treated
// as a (possibly degenerate) torus.
func FitDims(n int) Dims {
	if n < 1 {
		return Dims{X: 1, Y: 1, Z: 1}
	}
	best := Dims{X: n, Y: 1, Z: 1}
	for z := 1; z*z*z <= n; z++ {
		if n%z != 0 {
			continue
		}
		m := n / z
		for y := z; y*y <= m; y++ {
			if m%y != 0 {
				continue
			}
			// Deeper (larger Z, then larger Y) factorizations are closer
			// to cubic; the loops visit them in increasing z, y order.
			best = Dims{X: m / y, Y: y, Z: z}
		}
	}
	return best
}
