// Package torus implements a BlueGene-style mapping (paper §II): cluster
// nodes are arranged in a 3-D torus and ranks are placed according to a
// permutation of the X, Y, Z network coordinates plus T, the processing
// unit within a node (e.g. "xyzt", "tzyx"). This is the related-work
// comparator the LAMA generalizes on the intra-node side; it is also the
// substrate for torus-network congestion experiments.
package torus

import (
	"fmt"
	"strings"

	"lama/internal/cluster"
	"lama/internal/core"
	"lama/internal/hw"
)

// Dims is the shape of the torus network.
type Dims struct {
	X, Y, Z int
}

// Size returns the number of torus nodes.
func (d Dims) Size() int { return d.X * d.Y * d.Z }

// Validate checks all dimensions are positive.
func (d Dims) Validate() error {
	if d.X < 1 || d.Y < 1 || d.Z < 1 {
		return fmt.Errorf("torus: invalid dims %dx%dx%d", d.X, d.Y, d.Z)
	}
	return nil
}

// Coord is a node's position in the torus.
type Coord struct {
	X, Y, Z int
}

// NodeIndex converts torus coordinates to the cluster node index
// (X varies fastest, matching BlueGene's default node numbering).
func (d Dims) NodeIndex(c Coord) int { return c.X + d.X*(c.Y+d.Y*c.Z) }

// CoordOf converts a cluster node index back to torus coordinates.
func (d Dims) CoordOf(node int) Coord {
	return Coord{X: node % d.X, Y: (node / d.X) % d.Y, Z: node / (d.X * d.Y)}
}

// HopDistance is the Manhattan distance on the torus (with wraparound
// links) between two nodes.
func (d Dims) HopDistance(a, b int) int {
	ca, cb := d.CoordOf(a), d.CoordOf(b)
	return axisDist(ca.X, cb.X, d.X) + axisDist(ca.Y, cb.Y, d.Y) + axisDist(ca.Z, cb.Z, d.Z)
}

func axisDist(a, b, size int) int {
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	if wrap := size - diff; wrap < diff {
		return wrap
	}
	return diff
}

// ParseOrder validates an order string: a permutation of the letters
// x, y, z, t (left-most varies fastest, as in the BlueGene literature).
func ParseOrder(order string) error {
	if len(order) != 4 {
		return fmt.Errorf("torus: order %q must have exactly 4 letters", order)
	}
	seen := map[rune]bool{}
	for _, r := range strings.ToLower(order) {
		switch r {
		case 'x', 'y', 'z', 't':
			if seen[r] {
				return fmt.Errorf("torus: order %q repeats %q", order, string(r))
			}
			seen[r] = true
		default:
			return fmt.Errorf("torus: order %q has unknown letter %q", order, string(r))
		}
	}
	return nil
}

// Orders lists all 24 XYZT permutations.
func Orders() []string {
	letters := []byte{'x', 'y', 'z', 't'}
	var out []string
	var build func(prefix []byte, rest []byte)
	build = func(prefix, rest []byte) {
		if len(rest) == 0 {
			out = append(out, string(prefix))
			return
		}
		for i := range rest {
			next := append(append([]byte{}, rest[:i]...), rest[i+1:]...)
			build(append(prefix, rest[i]), next)
		}
	}
	build(nil, letters)
	return out
}

// Map places np ranks on a cluster arranged as the given torus, iterating
// coordinates in the given order (left-most fastest). T indexes the usable
// PUs of a node. The cluster must have exactly dims.Size() nodes.
func Map(c *cluster.Cluster, dims Dims, order string, np int) (*core.Map, error) {
	if err := dims.Validate(); err != nil {
		return nil, err
	}
	if err := ParseOrder(order); err != nil {
		return nil, err
	}
	if c.NumNodes() != dims.Size() {
		return nil, fmt.Errorf("torus: cluster has %d nodes but torus is %dx%dx%d",
			c.NumNodes(), dims.X, dims.Y, dims.Z)
	}
	if np <= 0 {
		return nil, fmt.Errorf("torus: non-positive process count %d", np)
	}
	perNode := make([][]*hw.Object, c.NumNodes())
	maxT := 0
	for i, node := range c.Nodes {
		perNode[i] = node.Topo.Root.UsablePUs()
		if len(perNode[i]) > maxT {
			maxT = len(perNode[i])
		}
	}
	widths := map[byte]int{'x': dims.X, 'y': dims.Y, 'z': dims.Z, 't': maxT}
	order = strings.ToLower(order)

	m := &core.Map{Sweeps: 1}
	coord := map[byte]int{}
	var iterate func(pos int) bool // returns true when np ranks placed
	iterate = func(pos int) bool {
		if pos < 0 {
			node := dims.NodeIndex(Coord{X: coord['x'], Y: coord['y'], Z: coord['z']})
			t := coord['t']
			if t >= len(perNode[node]) {
				return false // node has fewer PUs than maxT: skip
			}
			pu := perNode[node][t]
			m.Placements = append(m.Placements, core.Placement{
				Rank:     len(m.Placements),
				Node:     node,
				NodeName: c.Node(node).Name,
				Coords:   core.NodeCoords(node),
				Leaf:     pu,
				PUs:      []int{pu.OS},
			})
			return len(m.Placements) == np
		}
		letter := order[pos]
		for v := 0; v < widths[letter]; v++ {
			coord[letter] = v
			if iterate(pos - 1) {
				return true
			}
		}
		return false
	}
	// Right-most letter is the outermost loop, mirroring the LAMA layout
	// convention and the BlueGene documentation.
	if !iterate(len(order)-1) && len(m.Placements) < np {
		return nil, fmt.Errorf("torus: only %d of %d ranks placeable", len(m.Placements), np)
	}
	return m, nil
}
