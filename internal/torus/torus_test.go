package torus

import (
	"testing"

	"lama/internal/cluster"
	"lama/internal/hw"
)

func bgCluster(t *testing.T, nodes int) *cluster.Cluster {
	t.Helper()
	sp, _ := hw.Preset("bgp-node") // 4 cores, 1 thread
	return cluster.Homogeneous(nodes, sp)
}

func TestDims(t *testing.T) {
	d := Dims{X: 2, Y: 3, Z: 4}
	if d.Size() != 24 {
		t.Fatal("size")
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if (Dims{X: 0, Y: 1, Z: 1}).Validate() == nil {
		t.Fatal("invalid dims accepted")
	}
	for n := 0; n < d.Size(); n++ {
		if got := d.NodeIndex(d.CoordOf(n)); got != n {
			t.Fatalf("round trip node %d -> %d", n, got)
		}
	}
}

func TestHopDistanceWraparound(t *testing.T) {
	d := Dims{X: 4, Y: 4, Z: 4}
	a := d.NodeIndex(Coord{0, 0, 0})
	b := d.NodeIndex(Coord{3, 0, 0})
	if got := d.HopDistance(a, b); got != 1 {
		t.Fatalf("wraparound distance = %d, want 1", got)
	}
	c := d.NodeIndex(Coord{2, 2, 2})
	if got := d.HopDistance(a, c); got != 6 {
		t.Fatalf("distance = %d, want 6", got)
	}
	if d.HopDistance(a, a) != 0 {
		t.Fatal("self distance")
	}
}

func TestParseOrder(t *testing.T) {
	for _, ok := range []string{"xyzt", "tzyx", "XYZT", "tXzY"} {
		if err := ParseOrder(ok); err != nil {
			t.Errorf("ParseOrder(%q): %v", ok, err)
		}
	}
	for _, bad := range []string{"", "xyz", "xyztt", "xxyz", "abcd"} {
		if err := ParseOrder(bad); err == nil {
			t.Errorf("ParseOrder(%q) should fail", bad)
		}
	}
	if got := len(Orders()); got != 24 {
		t.Fatalf("Orders = %d, want 24", got)
	}
	seen := map[string]bool{}
	for _, o := range Orders() {
		if err := ParseOrder(o); err != nil || seen[o] {
			t.Fatalf("bad generated order %q", o)
		}
		seen[o] = true
	}
}

func TestMapXYZT(t *testing.T) {
	d := Dims{X: 2, Y: 2, Z: 1}
	c := bgCluster(t, 4)
	m, err := Map(c, d, "xyzt", 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(c); err != nil {
		t.Fatal(err)
	}
	// x fastest: ranks 0-3 walk nodes 0,1,2,3 on PU 0; ranks 4-7 on PU 1.
	wantNodes := []int{0, 1, 2, 3, 0, 1, 2, 3}
	wantPUs := []int{0, 0, 0, 0, 1, 1, 1, 1}
	for i, p := range m.Placements {
		if p.Node != wantNodes[i] || p.PU() != wantPUs[i] {
			t.Fatalf("rank %d: node %d PU %d, want node %d PU %d",
				i, p.Node, p.PU(), wantNodes[i], wantPUs[i])
		}
	}
}

func TestMapTXYZPacksNode(t *testing.T) {
	d := Dims{X: 2, Y: 2, Z: 1}
	c := bgCluster(t, 4)
	m, err := Map(c, d, "txyz", 8)
	if err != nil {
		t.Fatal(err)
	}
	// t fastest: ranks 0-3 fill node 0's PUs, 4-7 fill node 1.
	for i, p := range m.Placements {
		if p.Node != i/4 || p.PU() != i%4 {
			t.Fatalf("rank %d: node %d PU %d", i, p.Node, p.PU())
		}
	}
}

func TestMapSkipsShortNodes(t *testing.T) {
	big, _ := hw.Preset("bgp-node") // 4 PUs
	c := cluster.FromSpecs(big, big)
	c.Nodes[1].Topo.Restrict(hw.CPUSetRange(0, 1)) // node1 has only 2 PUs
	d := Dims{X: 2, Y: 1, Z: 1}
	m, err := Map(c, d, "txyz", 6)
	if err != nil {
		t.Fatal(err)
	}
	per := m.RanksByNode()
	if len(per[0]) != 4 || len(per[1]) != 2 {
		t.Fatalf("per-node = %d/%d", len(per[0]), len(per[1]))
	}
	if err := m.Validate(c); err != nil {
		t.Fatal(err)
	}
}

func TestMapErrors(t *testing.T) {
	d := Dims{X: 2, Y: 2, Z: 1}
	c := bgCluster(t, 4)
	if _, err := Map(c, Dims{}, "xyzt", 1); err == nil {
		t.Fatal("bad dims")
	}
	if _, err := Map(c, d, "qqqq", 1); err == nil {
		t.Fatal("bad order")
	}
	if _, err := Map(bgCluster(t, 3), d, "xyzt", 1); err == nil {
		t.Fatal("node count mismatch")
	}
	if _, err := Map(c, d, "xyzt", 0); err == nil {
		t.Fatal("np=0")
	}
	if _, err := Map(c, d, "xyzt", 17); err == nil {
		t.Fatal("over capacity")
	}
}
