package rm

import (
	"errors"
	"testing"
	"time"

	"lama/internal/cluster"
	"lama/internal/hw"
)

func sparePool(t *testing.T, nodes int) (*Manager, *cluster.Cluster) {
	t.Helper()
	sp, ok := hw.Preset("nehalem-ep") // 8 cores, 16 PUs per node
	if !ok {
		t.Fatal("preset missing")
	}
	pool := cluster.Homogeneous(nodes, sp)
	return NewManager(pool), pool
}

func TestAllocWithSpares(t *testing.T) {
	m, _ := sparePool(t, 4)
	a, err := m.AllocWithSpares(WholeNode, 16, 1) // 2 nodes granted, 1 spare
	if err != nil {
		t.Fatal(err)
	}
	if a.Granted.NumNodes() != 2 {
		t.Fatalf("granted %d nodes", a.Granted.NumNodes())
	}
	if a.SpareCount() != 1 {
		t.Fatalf("spares = %d", a.SpareCount())
	}
	// The spare is held: only one free node remains.
	if got := m.TotalFreeCores(); got != 8 {
		t.Fatalf("free cores = %d, want 8", got)
	}
	// Release returns both the grant and the spare.
	if err := m.Release(a); err != nil {
		t.Fatal(err)
	}
	if got := m.TotalFreeCores(); got != 32 {
		t.Fatalf("free cores after release = %d, want 32", got)
	}
}

func TestAllocWithSparesInsufficientRollsBack(t *testing.T) {
	m, _ := sparePool(t, 2)
	if _, err := m.AllocWithSpares(WholeNode, 16, 1); !errors.Is(err, ErrInsufficient) {
		t.Fatalf("err = %v", err)
	}
	if m.TotalFreeCores() != 16 || m.LiveAllocations() != 0 {
		t.Fatal("failed AllocWithSpares must leave the pool untouched")
	}
	if _, err := m.AllocWithSpares(WholeNode, 8, -1); err == nil {
		t.Fatal("negative spares")
	}
}

func TestReallocFromSpare(t *testing.T) {
	m, pool := sparePool(t, 3)
	a, err := m.AllocWithSpares(WholeNode, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Realloc(a, "node0", RetryConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.FromSpare || res.Attempts != 1 || res.Backoff != 0 {
		t.Fatalf("res = %+v", res)
	}
	if res.Node.Name != "node2" || res.GrantedIndex != 2 {
		t.Fatalf("replacement = %+v", res)
	}
	if a.Granted.NumNodes() != 3 {
		t.Fatalf("granted = %d nodes", a.Granted.NumNodes())
	}
	if a.SpareCount() != 0 {
		t.Fatal("spare should be consumed")
	}
	// The failed pool node is dead for future grants.
	if !pool.NodeFailed(0) {
		t.Fatal("pool node0 should be failed")
	}
	if _, err := m.Alloc(WholeNode, 8); !errors.Is(err, ErrInsufficient) {
		t.Fatalf("pool should be exhausted, got %v", err)
	}
}

func TestReallocBackoffThenSuccess(t *testing.T) {
	m, _ := sparePool(t, 2)
	a, err := m.Alloc(WholeNode, 8) // node0 granted, node1 free
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Alloc(WholeNode, 8) // node1 granted: pool momentarily exhausted
	if err != nil {
		t.Fatal(err)
	}
	var slept []time.Duration
	rc := RetryConfig{
		MaxAttempts: 5,
		BaseBackoff: time.Millisecond,
		Sleep: func(d time.Duration) {
			slept = append(slept, d)
			if len(slept) == 2 {
				// The other job finishes while we back off.
				if err := m.Release(b); err != nil {
					t.Error(err)
				}
			}
		},
	}
	res, err := m.Realloc(a, "node0", rc)
	if err != nil {
		t.Fatal(err)
	}
	if res.FromSpare {
		t.Fatal("no spare was reserved")
	}
	if res.Attempts != 3 || len(slept) != 2 {
		t.Fatalf("attempts = %d, sleeps = %v", res.Attempts, slept)
	}
	// Exponential backoff: 1ms then 2ms.
	if slept[0] != time.Millisecond || slept[1] != 2*time.Millisecond {
		t.Fatalf("backoff sequence = %v", slept)
	}
	if res.Backoff != 3*time.Millisecond {
		t.Fatalf("total backoff = %v", res.Backoff)
	}
	if res.Node.Name != "node1" {
		t.Fatalf("replacement = %s", res.Node.Name)
	}
}

func TestReallocExhaustedGivesUp(t *testing.T) {
	m, _ := sparePool(t, 2)
	a, err := m.Alloc(WholeNode, 16) // both nodes granted
	if err != nil {
		t.Fatal(err)
	}
	sleeps := 0
	rc := RetryConfig{MaxAttempts: 3, BaseBackoff: time.Microsecond,
		Sleep: func(time.Duration) { sleeps++ }}
	if _, err := m.Realloc(a, "node0", rc); !errors.Is(err, ErrInsufficient) {
		t.Fatalf("err = %v", err)
	}
	if sleeps != 2 {
		t.Fatalf("sleeps = %d, want MaxAttempts-1", sleeps)
	}
}

func TestReallocErrors(t *testing.T) {
	m, _ := sparePool(t, 2)
	a, err := m.Alloc(WholeNode, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Realloc(nil, "node0", RetryConfig{}); err == nil {
		t.Fatal("nil allocation")
	}
	if _, err := m.Realloc(a, "ghost", RetryConfig{}); err == nil {
		t.Fatal("unknown node")
	}
	if err := m.Release(a); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Realloc(a, "node0", RetryConfig{}); err == nil {
		t.Fatal("released allocation")
	}
	if err := m.FailPoolNode("ghost"); err == nil {
		t.Fatal("unknown node for FailPoolNode")
	}
}

func TestFailPoolNodeBlocksGrants(t *testing.T) {
	m, pool := sparePool(t, 2)
	if err := m.FailPoolNode("node0"); err != nil {
		t.Fatal(err)
	}
	if !pool.NodeFailed(0) {
		t.Fatal("pool topology should be failed")
	}
	a, err := m.Alloc(WholeNode, 8)
	if err != nil {
		t.Fatal(err)
	}
	if a.Granted.Nodes[0].Name != "node1" {
		t.Fatalf("granted %s, want node1", a.Granted.Nodes[0].Name)
	}
}
