// Package rm simulates the resource manager / batch scheduler that sits in
// front of the mapping agent (paper §III-A): it owns a pool of nodes, grants
// jobs allocations at node or core granularity, and applies site policy.
// A core-granular allocation hands the job a restricted view of each node
// (e.g. "half the cores of node A and half the cores of node B"), which is
// exactly the case that makes homogeneous hardware look heterogeneous to
// the mapper.
package rm

import (
	"errors"
	"fmt"

	"lama/internal/cluster"
	"lama/internal/hw"
	"lama/internal/obs"
)

// Policy selects the allocation granularity.
type Policy int

const (
	// WholeNode grants entire nodes; the job sees unrestricted topologies.
	WholeNode Policy = iota
	// CoreGranular grants individual cores; the job sees each node
	// restricted to the PUs of its granted cores.
	CoreGranular
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case WholeNode:
		return "whole-node"
	case CoreGranular:
		return "core-granular"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ErrInsufficient is returned when the pool cannot satisfy a request.
var ErrInsufficient = errors.New("rm: insufficient free resources")

// Allocation is a granted set of resources. Granted is a deep copy of the
// pool nodes involved, restricted to what the job may use; it is safe for
// the job to mutate.
type Allocation struct {
	// ID identifies the allocation within its Manager.
	ID int
	// Granted is the job's restricted view of its nodes.
	Granted *cluster.Cluster

	policy Policy
	// cores[nodeIdx] lists granted core logical indices in the pool node.
	cores map[int][]int
	// spares lists pool node indices reserved as whole-node spares, in
	// reservation order (see AllocWithSpares / Realloc).
	spares []int
}

// Manager owns a node pool and tracks which cores are busy.
type Manager struct {
	// Obs optionally reports allocation-time decisions (domain-aware spare
	// reservation) as "rm" events. Nil disables them; Realloc-time events
	// use RetryConfig.Obs instead.
	Obs *obs.Observer

	pool   *cluster.Cluster
	busy   []map[int]bool // per pool node: core logical index -> busy
	failed []bool         // per pool node: marked failed, never granted again
	nextID int
	live   map[int]*Allocation
}

// NewManager creates a manager over the pool. The pool is not copied; the
// manager assumes exclusive ownership.
func NewManager(pool *cluster.Cluster) *Manager {
	m := &Manager{pool: pool, live: map[int]*Allocation{}, failed: make([]bool, len(pool.Nodes))}
	for range pool.Nodes {
		m.busy = append(m.busy, map[int]bool{})
	}
	return m
}

// FreeCores returns the number of free, usable cores on pool node i.
func (m *Manager) FreeCores(i int) int {
	n := m.pool.Node(i)
	if n == nil {
		return 0
	}
	free := 0
	for _, c := range n.Topo.Objects(hw.LevelCore) {
		if c.Usable() && len(c.UsablePUs()) > 0 && !m.busy[i][c.Logical] {
			free++
		}
	}
	return free
}

// TotalFreeCores sums FreeCores over the pool.
func (m *Manager) TotalFreeCores() int {
	total := 0
	for i := range m.pool.Nodes {
		total += m.FreeCores(i)
	}
	return total
}

// Alloc grants cores (CoreGranular) or whole nodes (WholeNode) sufficient
// for the requested number of single-core slots. It returns
// ErrInsufficient without side effects when the pool cannot satisfy the
// request.
func (m *Manager) Alloc(policy Policy, slots int) (*Allocation, error) {
	if slots <= 0 {
		return nil, fmt.Errorf("rm: non-positive slot request %d", slots)
	}
	plan := map[int][]int{} // pool node index -> core logical indices
	need := slots
	for i, node := range m.pool.Nodes {
		if need <= 0 {
			break
		}
		var freeCores []int
		for _, c := range node.Topo.Objects(hw.LevelCore) {
			if c.Usable() && len(c.UsablePUs()) > 0 && !m.busy[i][c.Logical] {
				freeCores = append(freeCores, c.Logical)
			}
		}
		if len(freeCores) == 0 {
			continue
		}
		switch policy {
		case WholeNode:
			// A whole-node grant requires every core of the node free.
			if len(freeCores) == m.usableCores(i) {
				plan[i] = freeCores
				need -= len(freeCores)
			}
		case CoreGranular:
			take := need
			if take > len(freeCores) {
				take = len(freeCores)
			}
			plan[i] = freeCores[:take]
			need -= take
		default:
			return nil, fmt.Errorf("rm: unknown policy %v", policy)
		}
	}
	if need > 0 {
		return nil, fmt.Errorf("%w: %d slots short (requested %d, policy %v)",
			ErrInsufficient, need, slots, policy)
	}

	alloc := &Allocation{ID: m.nextID, policy: policy, cores: plan, Granted: &cluster.Cluster{}}
	m.nextID++
	var grantedPool []int
	for i, node := range m.pool.Nodes {
		granted, ok := plan[i]
		if !ok {
			continue
		}
		view := &cluster.Node{Name: node.Name, Topo: node.Topo.Clone(), Slots: len(granted)}
		if policy == CoreGranular {
			allowed := &hw.CPUSet{}
			for _, ci := range granted {
				allowed.Or(node.Topo.ObjectAt(hw.LevelCore, ci).PUSet())
			}
			view.Topo.Restrict(allowed)
		}
		alloc.Granted.Nodes = append(alloc.Granted.Nodes, view)
		grantedPool = append(grantedPool, i)
		for _, ci := range granted {
			m.busy[i][ci] = true
		}
	}
	// The grant carries the failure-domain picture of exactly its nodes,
	// so the job's mapping pipeline can spread critical ranks without ever
	// seeing the whole pool.
	alloc.Granted.Faults = m.pool.Faults.Derive(grantedPool)
	m.live[alloc.ID] = alloc
	return alloc, nil
}

// usableCores counts usable cores on pool node i regardless of busyness.
func (m *Manager) usableCores(i int) int {
	n := 0
	for _, c := range m.pool.Node(i).Topo.Objects(hw.LevelCore) {
		if c.Usable() && len(c.UsablePUs()) > 0 {
			n++
		}
	}
	return n
}

// Release returns an allocation's cores to the pool. Releasing an unknown
// or already-released allocation is an error.
func (m *Manager) Release(a *Allocation) error {
	if a == nil {
		return errors.New("rm: nil allocation")
	}
	if _, ok := m.live[a.ID]; !ok {
		return fmt.Errorf("rm: allocation %d not live", a.ID)
	}
	for i, cores := range a.cores {
		for _, ci := range cores {
			delete(m.busy[i], ci)
		}
	}
	m.unreserveSpares(a)
	delete(m.live, a.ID)
	return nil
}

// LiveAllocations returns the number of outstanding allocations.
func (m *Manager) LiveAllocations() int { return len(m.live) }
