package rm

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"lama/internal/cluster"
	"lama/internal/obs"
)

// domainPool builds a pool with an attached fault model: 2 nodes per
// chassis, 2 chassis per rack.
func domainPool(t *testing.T, nodes int, seed int64) (*Manager, *cluster.Cluster) {
	t.Helper()
	m, pool := sparePool(t, nodes)
	pool.AttachFaultModel(2, 2, seed)
	return m, pool
}

// TestAllocWithSparesPrefersOffChassis: with a fault model the reserved
// spare must avoid the job's chassis — a spare that dies with the domain
// it backs up is useless.
func TestAllocWithSparesPrefersOffChassis(t *testing.T) {
	m, pool := domainPool(t, 8, 1)
	a, err := m.AllocWithSpares(WholeNode, 16, 2) // job on nodes 0,1 = chassis 0
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range a.spares {
		if pool.Faults.SameChassis(s, 0) {
			t.Fatalf("spare %d shares chassis with the job", s)
		}
	}
}

// TestReallocPicksDomainDiverseSpare: among reserved spares, the one off
// the failed node's chassis wins even if it was reserved later.
func TestReallocPicksDomainDiverseSpare(t *testing.T) {
	m, pool := domainPool(t, 10, 1)
	a, err := m.AllocWithSpares(WholeNode, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Force a known spare set: one sharing chassis with node 0, one not.
	// Node 1 shares chassis 0 with node 0; node 4 sits in chassis 2.
	m.unreserveSpares(a)
	// Re-reserve deliberately: first an on-chassis... node 1 is part of the
	// job (nodes 0,1), so craft labels instead: relabel node 2 into the
	// failed node's chassis.
	pool.Faults.SetDomain(2, pool.Faults.Domain(0))
	for _, pi := range []int{2, 4} {
		m.reserveNode(pi)
		a.spares = append(a.spares, pi)
	}
	res, err := m.Realloc(a, pool.Node(0).Name, RetryConfig{Sleep: func(time.Duration) {}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.FromSpare || res.PoolIndex != 4 {
		t.Fatalf("picked pool node %d (fromSpare=%v), want off-chassis spare 4", res.PoolIndex, res.FromSpare)
	}
	// The on-chassis spare stays reserved for the next loss.
	if a.SpareCount() != 1 || a.spares[0] != 2 {
		t.Fatalf("remaining spares = %v", a.spares)
	}
}

// TestReallocNilModelKeepsFirstFit: without a fault model the historical
// behavior — promote the first-reserved spare, first-fit free node — must
// be preserved exactly.
func TestReallocNilModelKeepsFirstFit(t *testing.T) {
	m, pool := sparePool(t, 6) // no AttachFaultModel
	a, err := m.AllocWithSpares(WholeNode, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	first := a.spares[0]
	res, err := m.Realloc(a, pool.Node(0).Name, RetryConfig{Sleep: func(time.Duration) {}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.FromSpare || res.PoolIndex != first {
		t.Fatalf("picked %d, want first-reserved spare %d", res.PoolIndex, first)
	}
}

// TestReallocFreeNodePrefersLowRisk: when no spares are left, the free-node
// scan must use the domain order (off-chassis, then in-rack, then risk)
// instead of first-fit.
func TestReallocFreeNodePrefersLowRisk(t *testing.T) {
	m, pool := domainPool(t, 8, 1)
	a, err := m.Alloc(WholeNode, 16) // nodes 0,1; no spares reserved
	if err != nil {
		t.Fatal(err)
	}
	// Free nodes 2..7. Node 2 shares rack 0 with the failed node 0 but is
	// on chassis 1: off-chassis + in-rack beats everything farther away.
	res, err := m.Realloc(a, pool.Node(0).Name, RetryConfig{Sleep: func(time.Duration) {}})
	if err != nil {
		t.Fatal(err)
	}
	if pool.Faults.SameChassis(res.PoolIndex, 0) {
		t.Fatalf("replacement %d shares chassis with the dead node", res.PoolIndex)
	}
	if !pool.Faults.SameRack(res.PoolIndex, 0) {
		t.Fatalf("replacement %d left the rack though in-rack nodes were free", res.PoolIndex)
	}
}

// TestReallocAdoptsDomainIntoGrant: the appended replacement view must
// carry the pool node's domain label and history in the granted cluster's
// derived model.
func TestReallocAdoptsDomainIntoGrant(t *testing.T) {
	m, pool := domainPool(t, 8, 3)
	a, err := m.AllocWithSpares(WholeNode, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.Granted.Faults == nil {
		t.Fatal("grant carries no derived fault model")
	}
	// The granted view's labels must match the pool's for the same nodes.
	for gi, pi := range []int{0, 1} {
		if a.Granted.Faults.Domain(gi) != pool.Faults.Domain(pi) {
			t.Fatalf("granted node %d domain %+v != pool node %d %+v",
				gi, a.Granted.Faults.Domain(gi), pi, pool.Faults.Domain(pi))
		}
	}
	res, err := m.Realloc(a, pool.Node(1).Name, RetryConfig{Sleep: func(time.Duration) {}})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := a.Granted.Faults.Domain(res.GrantedIndex), pool.Faults.Domain(res.PoolIndex); got != want {
		t.Fatalf("adopted domain %+v, want %+v", got, want)
	}
	if got, want := a.Granted.Faults.Weight(res.GrantedIndex), pool.Faults.Weight(res.PoolIndex); got != want {
		t.Fatalf("adopted weight %f, want %f", got, want)
	}
}

// TestReallocCounters: spare-pool exhaustion and give-up must tick their
// counters and the give-up must trace an rm/realloc-exhausted event.
func TestReallocCounters(t *testing.T) {
	m, pool := domainPool(t, 2, 1)
	a, err := m.Alloc(WholeNode, 16) // whole pool granted, nothing free
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	reg := obs.NewRegistry()
	o := &obs.Observer{Sink: obs.NewJSONLSink(&buf), Metrics: reg}
	rc := RetryConfig{MaxAttempts: 2, Sleep: func(time.Duration) {}, Obs: o}
	_, err = m.Realloc(a, pool.Node(0).Name, rc)
	if !errors.Is(err, ErrInsufficient) {
		t.Fatalf("err = %v", err)
	}
	if err := o.Close(); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("lama_spare_pool_exhausted_total").Value(); got != 1 {
		t.Fatalf("spare_pool_exhausted = %v", got)
	}
	if got := reg.Counter("lama_realloc_giveup_total").Value(); got != 1 {
		t.Fatalf("realloc_giveup = %v", got)
	}
	if !strings.Contains(buf.String(), `"realloc-exhausted"`) {
		t.Fatalf("trace lacks realloc-exhausted event:\n%s", buf.String())
	}
}

// TestSparePlanEvents: with a fault model and an observer, reservation and
// replacement both emit rm/spare-plan events carrying domain fields.
func TestSparePlanEvents(t *testing.T) {
	var buf bytes.Buffer
	o := &obs.Observer{Sink: obs.NewJSONLSink(&buf), Metrics: obs.NewRegistry()}
	m, pool := domainPool(t, 8, 1)
	m.Obs = o
	a, err := m.AllocWithSpares(WholeNode, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Realloc(a, pool.Node(0).Name, RetryConfig{Sleep: func(time.Duration) {}, Obs: o}); err != nil {
		t.Fatal(err)
	}
	if err := o.Close(); err != nil {
		t.Fatal(err)
	}
	got := strings.Count(buf.String(), `"spare-plan"`)
	if got != 3 { // 2 reservations + 1 replacement choice
		t.Fatalf("spare-plan events = %d, want 3:\n%s", got, buf.String())
	}
	if !strings.Contains(buf.String(), `"same_chassis":false`) {
		t.Fatal("replacement spare-plan lacks same_chassis=false")
	}
}
