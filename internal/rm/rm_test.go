package rm

import (
	"errors"
	"strings"
	"testing"

	"lama/internal/cluster"
	"lama/internal/hw"
)

func pool(t *testing.T, nodes int) *cluster.Cluster {
	t.Helper()
	sp, ok := hw.Preset("nehalem-ep") // 8 cores, 16 PUs per node
	if !ok {
		t.Fatal("preset missing")
	}
	return cluster.Homogeneous(nodes, sp)
}

func TestWholeNodeAllocation(t *testing.T) {
	m := NewManager(pool(t, 4))
	a, err := m.Alloc(WholeNode, 12) // needs 2 full 8-core nodes
	if err != nil {
		t.Fatal(err)
	}
	if a.Granted.NumNodes() != 2 {
		t.Fatalf("granted %d nodes, want 2", a.Granted.NumNodes())
	}
	for _, n := range a.Granted.Nodes {
		if n.Topo.NumUsablePUs() != 16 {
			t.Fatalf("whole-node grant restricted: %d usable", n.Topo.NumUsablePUs())
		}
		if n.Slots != 8 {
			t.Fatalf("slots = %d", n.Slots)
		}
	}
	if m.TotalFreeCores() != 16 {
		t.Fatalf("free cores = %d, want 16", m.TotalFreeCores())
	}
	if err := m.Release(a); err != nil {
		t.Fatal(err)
	}
	if m.TotalFreeCores() != 32 {
		t.Fatal("release did not return cores")
	}
}

func TestCoreGranularSplitsNodes(t *testing.T) {
	m := NewManager(pool(t, 2))
	// Take 4 cores: all from node0.
	a1, err := m.Alloc(CoreGranular, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a1.Granted.NumNodes() != 1 || a1.Granted.Nodes[0].Topo.NumUsablePUs() != 8 {
		t.Fatalf("a1 wrong: %s", a1.Granted.Summary())
	}
	// Take 8 more: 4 remaining on node0 + 4 on node1 — the paper's
	// "half of node A and half of node B" scenario.
	a2, err := m.Alloc(CoreGranular, 8)
	if err != nil {
		t.Fatal(err)
	}
	if a2.Granted.NumNodes() != 2 {
		t.Fatalf("a2 nodes = %d", a2.Granted.NumNodes())
	}
	// The two allocations must not overlap.
	n0a, _ := a1.Granted.NodeByName("node0")
	n0b, _ := a2.Granted.NodeByName("node0")
	if n0a.Topo.AllowedSet().Intersects(n0b.Topo.AllowedSet()) {
		t.Fatalf("overlap: %s vs %s", n0a.Topo.AllowedSet(), n0b.Topo.AllowedSet())
	}
	if m.TotalFreeCores() != 4 {
		t.Fatalf("free = %d", m.TotalFreeCores())
	}
	if m.LiveAllocations() != 2 {
		t.Fatal("live count")
	}
}

func TestAllocInsufficient(t *testing.T) {
	m := NewManager(pool(t, 1))
	if _, err := m.Alloc(CoreGranular, 9); !errors.Is(err, ErrInsufficient) {
		t.Fatalf("want ErrInsufficient, got %v", err)
	}
	// Failed allocation must not leak cores.
	if m.TotalFreeCores() != 8 {
		t.Fatalf("free = %d after failed alloc", m.TotalFreeCores())
	}
	if _, err := m.Alloc(WholeNode, 9); !errors.Is(err, ErrInsufficient) {
		t.Fatal("whole-node over-ask should fail")
	}
	if _, err := m.Alloc(CoreGranular, 0); err == nil {
		t.Fatal("zero slots should fail")
	}
	if _, err := m.Alloc(Policy(99), 1); err == nil {
		t.Fatal("unknown policy should fail")
	}
}

func TestWholeNodeSkipsPartiallyBusy(t *testing.T) {
	m := NewManager(pool(t, 2))
	if _, err := m.Alloc(CoreGranular, 1); err != nil {
		t.Fatal(err)
	}
	// node0 is partially busy; a whole-node request must come from node1.
	a, err := m.Alloc(WholeNode, 8)
	if err != nil {
		t.Fatal(err)
	}
	if a.Granted.Nodes[0].Name != "node1" {
		t.Fatalf("granted %s, want node1", a.Granted.Nodes[0].Name)
	}
}

func TestReleaseErrors(t *testing.T) {
	m := NewManager(pool(t, 1))
	if err := m.Release(nil); err == nil {
		t.Fatal("nil release should fail")
	}
	a, err := m.Alloc(CoreGranular, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Release(a); err != nil {
		t.Fatal(err)
	}
	if err := m.Release(a); err == nil {
		t.Fatal("double release should fail")
	}
}

func TestRestrictedPoolRespected(t *testing.T) {
	p := pool(t, 1)
	p.Nodes[0].Topo.Restrict(hw.CPUSetRange(0, 3)) // thread-major: cores 0-3 half-restricted
	m := NewManager(p)
	// Thread-major numbering: PUs 0-3 are the first threads of cores 0-3,
	// so exactly 4 cores remain usable.
	if m.TotalFreeCores() != 4 {
		t.Fatalf("free = %d, want 4", m.TotalFreeCores())
	}
	a, err := m.Alloc(CoreGranular, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Granted.Nodes[0].Topo.AllowedSet(); !got.IsSubset(hw.CPUSetRange(0, 3)) {
		t.Fatalf("grant %s escapes restriction", got)
	}
}

func TestPolicyString(t *testing.T) {
	if WholeNode.String() != "whole-node" || CoreGranular.String() != "core-granular" {
		t.Fatal("policy names")
	}
	if !strings.HasPrefix(Policy(42).String(), "policy(") {
		t.Fatal("unknown policy name")
	}
}
