package rm

import (
	"strings"
	"testing"

	"lama/internal/cluster"
	"lama/internal/hw"
)

func schedPool(t *testing.T, nodes int) *Manager {
	t.Helper()
	sp, _ := hw.Preset("nehalem-ep") // 8 cores per node
	return NewManager(cluster.Homogeneous(nodes, sp))
}

func TestFIFOOrdering(t *testing.T) {
	m := schedPool(t, 2) // 16 cores
	jobs := []JobSpec{
		{ID: 0, Cores: 16, Duration: 10},
		{ID: 1, Cores: 1, Duration: 1},
		{ID: 2, Cores: 1, Duration: 1},
	}
	res, err := m.Schedule(FIFO, jobs)
	if err != nil {
		t.Fatal(err)
	}
	// FIFO: job 0 hogs everything; 1 and 2 start at t=10.
	if res.Outcomes[0].Start != 0 || res.Outcomes[1].Start != 10 || res.Outcomes[2].Start != 10 {
		t.Fatalf("starts: %+v", res.Outcomes)
	}
	if res.Makespan != 11 {
		t.Fatalf("makespan = %v", res.Makespan)
	}
	if m.LiveAllocations() != 0 {
		t.Fatal("allocations leaked")
	}
}

func TestBackfillLetsSmallJobsThrough(t *testing.T) {
	m := schedPool(t, 2) // 16 cores
	jobs := []JobSpec{
		{ID: 0, Cores: 10, Duration: 10}, // leaves 6 free
		{ID: 1, Cores: 12, Duration: 5},  // cannot start: head of remaining queue
		{ID: 2, Cores: 4, Duration: 2},   // backfills into the 6 free cores
	}
	fifo, err := schedPool(t, 2).Schedule(FIFO, jobs)
	if err != nil {
		t.Fatal(err)
	}
	bf, err := m.Schedule(Backfill, jobs)
	if err != nil {
		t.Fatal(err)
	}
	// FIFO: job 2 waits behind job 1 (starts at 15). Backfill: job 2
	// starts immediately.
	if fifo.Outcomes[2].Start <= bf.Outcomes[2].Start {
		t.Fatalf("backfill should start job 2 earlier: fifo %v vs bf %v",
			fifo.Outcomes[2].Start, bf.Outcomes[2].Start)
	}
	if bf.Outcomes[2].Start != 0 {
		t.Fatalf("job 2 should backfill at t=0, got %v", bf.Outcomes[2].Start)
	}
	if bf.AvgWait >= fifo.AvgWait {
		t.Fatalf("backfill wait %v should beat fifo %v", bf.AvgWait, fifo.AvgWait)
	}
}

func TestBackfillFragmentsAllocations(t *testing.T) {
	// Two 4-core jobs, then release one, then a 8-core job: the survivor
	// leaves holes so the big job spans 2 nodes.
	m := schedPool(t, 2)
	jobs := []JobSpec{
		{ID: 0, Cores: 4, Duration: 10},
		{ID: 1, Cores: 4, Duration: 1},
		{ID: 2, Cores: 8, Duration: 2, Arrival: 2},
	}
	res, err := m.Schedule(Backfill, jobs)
	if err != nil {
		t.Fatal(err)
	}
	// At t=2, node0 has 4 busy (job 0) + 4 released (job 1 done at t=1);
	// job 2 takes node0's 4 free + node1's first 4: spans 2 nodes.
	if res.Outcomes[2].NodesSpanned != 2 {
		t.Fatalf("job 2 spans %d nodes, want 2", res.Outcomes[2].NodesSpanned)
	}
	if res.AvgSpan <= 1 {
		t.Fatalf("avg span = %v", res.AvgSpan)
	}
}

func TestArrivalsRespected(t *testing.T) {
	m := schedPool(t, 1)
	jobs := []JobSpec{
		{ID: 0, Cores: 2, Duration: 1, Arrival: 5},
	}
	res, err := m.Schedule(FIFO, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcomes[0].Start != 5 || res.Outcomes[0].Wait != 0 {
		t.Fatalf("outcome = %+v", res.Outcomes[0])
	}
}

func TestScheduleErrors(t *testing.T) {
	m := schedPool(t, 1)
	if _, err := m.Schedule(FIFO, nil); err == nil {
		t.Fatal("no jobs")
	}
	if _, err := m.Schedule(FIFO, []JobSpec{{ID: 0, Cores: 0, Duration: 1}}); err == nil {
		t.Fatal("zero cores")
	}
	if _, err := m.Schedule(FIFO, []JobSpec{{ID: 0, Cores: 1, Duration: 0}}); err == nil {
		t.Fatal("zero duration")
	}
	if _, err := m.Schedule(FIFO, []JobSpec{{ID: 0, Cores: 1, Duration: 1, Arrival: -1}}); err == nil {
		t.Fatal("negative arrival")
	}
	if _, err := m.Schedule(FIFO, []JobSpec{{ID: 0, Cores: 99, Duration: 1}}); err == nil {
		t.Fatal("over pool capacity")
	}
	// Busy pool rejected.
	if _, err := m.Alloc(CoreGranular, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Schedule(FIFO, []JobSpec{{ID: 0, Cores: 1, Duration: 1}}); err == nil {
		t.Fatal("busy pool")
	}
}

func TestSchedPolicyString(t *testing.T) {
	if FIFO.String() != "fifo" || Backfill.String() != "backfill" {
		t.Fatal("names")
	}
	if !strings.HasPrefix(SchedPolicy(9).String(), "sched(") {
		t.Fatal("unknown")
	}
}
