package rm

import (
	"fmt"
	"sort"
)

// SchedPolicy selects the queueing discipline of the simulated batch
// scheduler.
type SchedPolicy int

const (
	// FIFO starts jobs strictly in arrival order: the queue head blocks
	// everything behind it until it fits.
	FIFO SchedPolicy = iota
	// Backfill lets later jobs that fit start while the head waits
	// (aggressive backfill without reservations — it maximizes
	// utilization at the cost of fragmenting allocations).
	Backfill
)

// String names the policy.
func (p SchedPolicy) String() string {
	switch p {
	case FIFO:
		return "fifo"
	case Backfill:
		return "backfill"
	default:
		return fmt.Sprintf("sched(%d)", int(p))
	}
}

// JobSpec describes one batch job: core demand and runtime.
type JobSpec struct {
	// ID identifies the job; Cores is its slot demand; Duration its
	// runtime in scheduler time units. Arrival is its submit time.
	ID       int
	Cores    int
	Duration float64
	Arrival  float64
}

// JobOutcome reports one scheduled job.
type JobOutcome struct {
	ID    int
	Start float64
	End   float64
	// Wait is Start - Arrival.
	Wait float64
	// NodesSpanned is how many nodes the core-granular allocation touched
	// — the fragmentation measure that degrades mapping locality.
	NodesSpanned int
}

// ScheduleResult summarizes a simulated queue run.
type ScheduleResult struct {
	Outcomes []JobOutcome // ordered by job ID
	Makespan float64
	AvgWait  float64
	// AvgSpan is the mean NodesSpanned over jobs.
	AvgSpan float64
}

// Schedule runs an event-driven simulation of the job queue against the
// manager's pool using core-granular allocations. The manager must be
// fresh (no live allocations). Jobs are processed by the policy; the
// simulation is deterministic.
func (m *Manager) Schedule(policy SchedPolicy, jobs []JobSpec) (*ScheduleResult, error) {
	if len(jobs) == 0 {
		return nil, fmt.Errorf("rm: no jobs to schedule")
	}
	if m.LiveAllocations() != 0 {
		return nil, fmt.Errorf("rm: pool busy: %d live allocations", m.LiveAllocations())
	}
	totalCores := m.TotalFreeCores()
	for _, j := range jobs {
		if j.Cores <= 0 || j.Duration <= 0 || j.Arrival < 0 {
			return nil, fmt.Errorf("rm: invalid job %d (cores=%d duration=%v arrival=%v)",
				j.ID, j.Cores, j.Duration, j.Arrival)
		}
		if j.Cores > totalCores {
			return nil, fmt.Errorf("rm: job %d wants %d cores, pool has %d", j.ID, j.Cores, totalCores)
		}
	}

	queue := append([]JobSpec(nil), jobs...)
	sort.SliceStable(queue, func(i, j int) bool { return queue[i].Arrival < queue[j].Arrival })

	type running struct {
		spec  JobSpec
		alloc *Allocation
		end   float64
	}
	var active []running
	outcomes := map[int]JobOutcome{}
	now := 0.0

	tryStart := func() error {
		for len(queue) > 0 {
			started := false
			limit := 1
			if policy == Backfill {
				limit = len(queue)
			}
			for qi := 0; qi < limit && qi < len(queue); qi++ {
				j := queue[qi]
				if j.Arrival > now {
					if policy == FIFO {
						break
					}
					continue
				}
				alloc, err := m.Alloc(CoreGranular, j.Cores)
				if err != nil {
					continue
				}
				active = append(active, running{spec: j, alloc: alloc, end: now + j.Duration})
				outcomes[j.ID] = JobOutcome{
					ID: j.ID, Start: now, End: now + j.Duration,
					Wait:         now - j.Arrival,
					NodesSpanned: alloc.Granted.NumNodes(),
				}
				queue = append(queue[:qi], queue[qi+1:]...)
				started = true
				break
			}
			if !started {
				return nil
			}
		}
		return nil
	}

	for len(queue) > 0 || len(active) > 0 {
		if err := tryStart(); err != nil {
			return nil, err
		}
		// Advance time to the next event: earliest completion or arrival.
		next := -1.0
		for _, r := range active {
			if next < 0 || r.end < next {
				next = r.end
			}
		}
		for _, j := range queue {
			if j.Arrival > now && (next < 0 || j.Arrival < next) {
				next = j.Arrival
			}
		}
		if next < 0 {
			return nil, fmt.Errorf("rm: scheduler stuck at t=%v with %d queued", now, len(queue))
		}
		now = next
		// Complete finished jobs.
		kept := active[:0]
		for _, r := range active {
			if r.end <= now {
				if err := m.Release(r.alloc); err != nil {
					return nil, err
				}
			} else {
				kept = append(kept, r)
			}
		}
		active = kept
	}

	res := &ScheduleResult{Makespan: now}
	ids := make([]int, 0, len(outcomes))
	for id := range outcomes {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		o := outcomes[id]
		res.Outcomes = append(res.Outcomes, o)
		res.AvgWait += o.Wait
		res.AvgSpan += float64(o.NodesSpanned)
	}
	res.AvgWait /= float64(len(res.Outcomes))
	res.AvgSpan /= float64(len(res.Outcomes))
	return res, nil
}
