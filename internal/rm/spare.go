// Spare-pool management and re-allocation: the resource-manager half of the
// fault-tolerance pipeline. A job may reserve spare nodes at allocation
// time; when a node dies mid-run, Realloc promotes a spare (or, failing
// that, grabs a free node from the pool with bounded retry and exponential
// backoff) and grants the job a replacement view appended to its
// allocation.
package rm

import (
	"errors"
	"fmt"
	"time"

	"lama/internal/cluster"
	"lama/internal/hw"
	"lama/internal/obs"
)

// ErrNodeFailed is returned when an operation names a pool node that has
// been marked failed.
var ErrNodeFailed = errors.New("rm: node is marked failed")

// RetryConfig bounds Realloc's wait-for-free-node loop. The zero value
// gets sensible defaults (4 attempts, 1 ms base backoff, real sleeping).
type RetryConfig struct {
	// MaxAttempts is the total number of pool scans before giving up.
	MaxAttempts int
	// BaseBackoff is the sleep after the first failed attempt; it doubles
	// after every further failure (exponential backoff).
	BaseBackoff time.Duration
	// Sleep is the sleep implementation; tests substitute a recorder.
	Sleep func(time.Duration)
	// Obs optionally reports each exhausted pool scan as an
	// "rm"/"realloc-retry" event with the upcoming backoff, so supervised
	// runs expose resource-manager contention in their traces.
	Obs *obs.Observer
}

func (rc RetryConfig) withDefaults() RetryConfig {
	if rc.MaxAttempts <= 0 {
		rc.MaxAttempts = 4
	}
	if rc.BaseBackoff <= 0 {
		rc.BaseBackoff = time.Millisecond
	}
	if rc.Sleep == nil {
		rc.Sleep = time.Sleep
	}
	return rc
}

// ReallocResult describes a granted replacement node.
type ReallocResult struct {
	// Node is the replacement's granted view (already appended to the
	// allocation's Granted cluster).
	Node *cluster.Node
	// PoolIndex is the replacement's index in the manager's pool;
	// GrantedIndex its index within Allocation.Granted.Nodes.
	PoolIndex, GrantedIndex int
	// FromSpare reports whether a reserved spare satisfied the request.
	FromSpare bool
	// Attempts is the number of pool scans used (1 when a spare or free
	// node was immediately available).
	Attempts int
	// Backoff is the total time spent backing off between attempts.
	Backoff time.Duration
}

// SpareCount returns the number of reserved spare nodes not yet promoted.
func (a *Allocation) SpareCount() int { return len(a.spares) }

// AllocWithSpares grants an allocation like Alloc and additionally
// reserves `spares` whole free nodes for the job. Reserved spares are
// held (their cores are busy in the pool) but do not appear in Granted
// until a Realloc promotes them. On failure nothing is allocated.
func (m *Manager) AllocWithSpares(policy Policy, slots, spares int) (*Allocation, error) {
	if spares < 0 {
		return nil, fmt.Errorf("rm: negative spare count %d", spares)
	}
	a, err := m.Alloc(policy, slots)
	if err != nil {
		return nil, err
	}
	for s := 0; s < spares; s++ {
		pi := m.findFreeWholeNode()
		if pi < 0 {
			// Roll back: unreserve spares and release the base grant.
			m.unreserveSpares(a)
			_ = m.Release(a)
			return nil, fmt.Errorf("%w: no free node for spare %d of %d",
				ErrInsufficient, s+1, spares)
		}
		m.reserveNode(pi)
		a.spares = append(a.spares, pi)
	}
	return a, nil
}

// FailPoolNode marks the named pool node failed: its cores are never
// granted again and its topology is marked unavailable. Allocations that
// hold cores on the node keep their (now useless) views; Realloc removes
// the node from the failing job's bookkeeping.
func (m *Manager) FailPoolNode(name string) error {
	_, pi := m.pool.NodeByName(name)
	if pi < 0 {
		return fmt.Errorf("rm: unknown pool node %q", name)
	}
	m.failed[pi] = true
	m.pool.FailNode(pi)
	return nil
}

// Realloc handles the loss of a node inside a live allocation: it marks
// the pool node failed, drops it from the allocation, and grants a
// replacement — first from the allocation's reserved spares, otherwise
// from any free whole pool node, retrying with exponential backoff when
// the pool is momentarily exhausted. The replacement view is appended to
// a.Granted.Nodes and also returned.
func (m *Manager) Realloc(a *Allocation, failedName string, rc RetryConfig) (*ReallocResult, error) {
	if a == nil {
		return nil, errors.New("rm: nil allocation")
	}
	if _, ok := m.live[a.ID]; !ok {
		return nil, fmt.Errorf("rm: allocation %d not live", a.ID)
	}
	rc = rc.withDefaults()

	_, pi := m.pool.NodeByName(failedName)
	if pi < 0 {
		return nil, fmt.Errorf("rm: unknown pool node %q", failedName)
	}
	m.failed[pi] = true
	m.pool.FailNode(pi)
	delete(a.cores, pi) // the node's cores stay busy; the node is dead anyway
	// A reserved spare that itself failed is useless: drop it.
	kept := a.spares[:0]
	for _, s := range a.spares {
		if !m.failed[s] {
			kept = append(kept, s)
		}
	}
	a.spares = kept

	res := &ReallocResult{}
	replacement := -1
	if len(a.spares) > 0 {
		replacement = a.spares[0]
		a.spares = a.spares[1:]
		res.FromSpare = true
		res.Attempts = 1
	} else {
		backoff := rc.BaseBackoff
		for attempt := 1; attempt <= rc.MaxAttempts; attempt++ {
			res.Attempts = attempt
			if free := m.findFreeWholeNode(); free >= 0 {
				m.reserveNode(free)
				replacement = free
				break
			}
			if attempt == rc.MaxAttempts {
				break
			}
			rc.Obs.Reg().Counter("lama_realloc_retries_total").Inc()
			if rc.Obs.Enabled() {
				rc.Obs.Emit(obs.SrcRM, obs.EvReallocRetry, obs.NoStep,
					obs.F("node", failedName), obs.F("attempt", attempt),
					obs.F("backoff_us", float64(backoff)/float64(time.Microsecond)))
			}
			rc.Sleep(backoff)
			res.Backoff += backoff
			backoff *= 2
		}
		if replacement < 0 {
			return nil, fmt.Errorf("%w: no replacement node after %d attempts (%v backoff)",
				ErrInsufficient, res.Attempts, res.Backoff)
		}
	}

	node := m.pool.Node(replacement)
	var granted []int
	for _, c := range node.Topo.Objects(hw.LevelCore) {
		if c.Usable() && len(c.UsablePUs()) > 0 {
			granted = append(granted, c.Logical)
		}
	}
	view := &cluster.Node{Name: node.Name, Topo: node.Topo.Clone(), Slots: len(granted)}
	a.cores[replacement] = granted
	a.Granted.Nodes = append(a.Granted.Nodes, view)
	res.Node = view
	res.PoolIndex = replacement
	res.GrantedIndex = len(a.Granted.Nodes) - 1
	return res, nil
}

// findFreeWholeNode returns the lowest pool index whose node is healthy
// and has every usable core free, or -1.
func (m *Manager) findFreeWholeNode() int {
	for i := range m.pool.Nodes {
		if m.failed[i] {
			continue
		}
		n := m.usableCores(i)
		if n > 0 && m.FreeCores(i) == n {
			return i
		}
	}
	return -1
}

// reserveNode marks every usable core of pool node i busy.
func (m *Manager) reserveNode(i int) {
	for _, c := range m.pool.Node(i).Topo.Objects(hw.LevelCore) {
		if c.Usable() && len(c.UsablePUs()) > 0 {
			m.busy[i][c.Logical] = true
		}
	}
}

// unreserveSpares returns an allocation's reserved spares to the pool.
func (m *Manager) unreserveSpares(a *Allocation) {
	for _, pi := range a.spares {
		for ci := range m.busy[pi] {
			delete(m.busy[pi], ci)
		}
	}
	a.spares = nil
}
