// Spare-pool management and re-allocation: the resource-manager half of the
// fault-tolerance pipeline. A job may reserve spare nodes at allocation
// time; when a node dies mid-run, Realloc promotes a spare (or, failing
// that, grabs a free node from the pool with bounded retry and exponential
// backoff) and grants the job a replacement view appended to its
// allocation.
//
// When the pool cluster carries a failure-domain model (cluster.FaultModel),
// both spare reservation and replacement choice become domain-aware: spares
// are reserved off the job's chassis but near its racks, and Realloc prefers
// a replacement that does not share a chassis with the node that just died,
// stays in its rack, and carries low model risk — instead of blind
// first-fit. A pool without a model keeps the exact first-fit behavior.
package rm

import (
	"context"
	"errors"
	"fmt"
	"time"

	"lama/internal/cluster"
	"lama/internal/hw"
	"lama/internal/obs"
)

// ErrNodeFailed is returned when an operation names a pool node that has
// been marked failed.
var ErrNodeFailed = errors.New("rm: node is marked failed")

// RetryConfig bounds Realloc's wait-for-free-node loop. The zero value
// gets sensible defaults (4 attempts, 1 ms base backoff, real sleeping).
type RetryConfig struct {
	// MaxAttempts is the total number of pool scans before giving up.
	MaxAttempts int
	// BaseBackoff is the sleep after the first failed attempt; it doubles
	// after every further failure (exponential backoff).
	BaseBackoff time.Duration
	// Sleep is the sleep implementation; tests substitute a recorder.
	Sleep func(time.Duration)
	// Obs optionally reports each exhausted pool scan as an
	// "rm"/"realloc-retry" event with the upcoming backoff, so supervised
	// runs expose resource-manager contention in their traces.
	Obs *obs.Observer
}

func (rc RetryConfig) withDefaults() RetryConfig {
	if rc.MaxAttempts <= 0 {
		rc.MaxAttempts = 4
	}
	if rc.BaseBackoff <= 0 {
		rc.BaseBackoff = time.Millisecond
	}
	if rc.Sleep == nil {
		rc.Sleep = time.Sleep
	}
	return rc
}

// ReallocResult describes a granted replacement node.
type ReallocResult struct {
	// Node is the replacement's granted view (already appended to the
	// allocation's Granted cluster).
	Node *cluster.Node
	// PoolIndex is the replacement's index in the manager's pool;
	// GrantedIndex its index within Allocation.Granted.Nodes.
	PoolIndex, GrantedIndex int
	// FromSpare reports whether a reserved spare satisfied the request.
	FromSpare bool
	// Attempts is the number of pool scans used (1 when a spare or free
	// node was immediately available).
	Attempts int
	// Backoff is the total time spent backing off between attempts.
	Backoff time.Duration
}

// SpareCount returns the number of reserved spare nodes not yet promoted.
func (a *Allocation) SpareCount() int { return len(a.spares) }

// AllocWithSpares grants an allocation like Alloc and additionally
// reserves `spares` whole free nodes for the job. Reserved spares are
// held (their cores are busy in the pool) but do not appear in Granted
// until a Realloc promotes them. On failure nothing is allocated.
func (m *Manager) AllocWithSpares(policy Policy, slots, spares int) (*Allocation, error) {
	if spares < 0 {
		return nil, fmt.Errorf("rm: negative spare count %d", spares)
	}
	a, err := m.Alloc(policy, slots)
	if err != nil {
		return nil, err
	}
	jobNodes := make([]int, 0, len(a.cores))
	for pi := range a.cores {
		jobNodes = append(jobNodes, pi)
	}
	for s := 0; s < spares; s++ {
		pi := m.bestFreeWholeNode(jobNodes)
		if pi < 0 {
			// Roll back: unreserve spares and release the base grant.
			m.unreserveSpares(a)
			_ = m.Release(a)
			return nil, fmt.Errorf("%w: no free node for spare %d of %d",
				ErrInsufficient, s+1, spares)
		}
		m.reserveNode(pi)
		a.spares = append(a.spares, pi)
		if m.pool.Faults != nil && m.Obs.Enabled() {
			d := m.pool.Faults.Domain(pi)
			m.Obs.Emit(obs.SrcRM, obs.EvSparePlan, obs.NoStep,
				obs.F("node", m.pool.Node(pi).Name),
				obs.F("chassis", d.Chassis), obs.F("rack", d.Rack),
				obs.F("risk", m.pool.Faults.Risk(pi)),
				obs.F("reserved", s+1), obs.F("of", spares))
		}
	}
	return a, nil
}

// FailPoolNode marks the named pool node failed: its cores are never
// granted again and its topology is marked unavailable. Allocations that
// hold cores on the node keep their (now useless) views; Realloc removes
// the node from the failing job's bookkeeping.
func (m *Manager) FailPoolNode(name string) error {
	_, pi := m.pool.NodeByName(name)
	if pi < 0 {
		return fmt.Errorf("rm: unknown pool node %q", name)
	}
	m.failed[pi] = true
	m.pool.FailNode(pi)
	return nil
}

// Realloc handles the loss of a node inside a live allocation: it marks
// the pool node failed, drops it from the allocation, and grants a
// replacement — first from the allocation's reserved spares, otherwise
// from any free whole pool node, retrying with exponential backoff when
// the pool is momentarily exhausted. The replacement view is appended to
// a.Granted.Nodes and also returned.
func (m *Manager) Realloc(a *Allocation, failedName string, rc RetryConfig) (*ReallocResult, error) {
	return m.ReallocContext(context.Background(), a, failedName, rc)
}

// ReallocContext is Realloc with cooperative cancellation: the context is
// checked before every backoff sleep, so a canceled caller stops waiting
// for pool capacity immediately instead of riding out the remaining
// retries. The pool-side failure bookkeeping (marking the node failed,
// dropping dead spares) has already happened by the first check — only
// the replacement wait is abandoned.
func (m *Manager) ReallocContext(ctx context.Context, a *Allocation, failedName string, rc RetryConfig) (*ReallocResult, error) {
	if a == nil {
		return nil, errors.New("rm: nil allocation")
	}
	if _, ok := m.live[a.ID]; !ok {
		return nil, fmt.Errorf("rm: allocation %d not live", a.ID)
	}
	rc = rc.withDefaults()

	_, pi := m.pool.NodeByName(failedName)
	if pi < 0 {
		return nil, fmt.Errorf("rm: unknown pool node %q", failedName)
	}
	m.failed[pi] = true
	m.pool.FailNode(pi)
	delete(a.cores, pi) // the node's cores stay busy; the node is dead anyway
	// A reserved spare that itself failed is useless: drop it.
	kept := a.spares[:0]
	for _, s := range a.spares {
		if !m.failed[s] {
			kept = append(kept, s)
		}
	}
	a.spares = kept

	res := &ReallocResult{}
	replacement := -1
	if len(a.spares) == 0 {
		// The job's spare pool is exhausted before this loss — every further
		// recovery leans on pool free nodes and bounded retry.
		rc.Obs.Reg().Counter("lama_spare_pool_exhausted_total").Inc()
	} else {
		si := m.pickSpare(a.spares, pi)
		replacement = a.spares[si]
		a.spares = append(a.spares[:si], a.spares[si+1:]...)
		res.FromSpare = true
		res.Attempts = 1
	}
	if replacement < 0 {
		backoff := rc.BaseBackoff
		for attempt := 1; attempt <= rc.MaxAttempts; attempt++ {
			res.Attempts = attempt
			if free := m.bestFreeWholeNode([]int{pi}); free >= 0 {
				m.reserveNode(free)
				replacement = free
				break
			}
			if attempt == rc.MaxAttempts {
				break
			}
			rc.Obs.Reg().Counter("lama_realloc_retries_total").Inc()
			if rc.Obs.Enabled() {
				rc.Obs.Emit(obs.SrcRM, obs.EvReallocRetry, obs.NoStep,
					obs.F("node", failedName), obs.F("attempt", attempt),
					obs.F("backoff_us", float64(backoff)/float64(time.Microsecond)))
			}
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("rm: realloc of %q canceled after %d attempts: %w",
					failedName, attempt, err)
			}
			rc.Sleep(backoff)
			res.Backoff += backoff
			backoff *= 2
		}
		if replacement < 0 {
			rc.Obs.Reg().Counter("lama_realloc_giveup_total").Inc()
			if rc.Obs.Enabled() {
				rc.Obs.Emit(obs.SrcRM, obs.EvReallocExhausted, obs.NoStep,
					obs.F("node", failedName), obs.F("attempts", res.Attempts),
					obs.F("backoff_us", float64(res.Backoff)/float64(time.Microsecond)))
			}
			return nil, fmt.Errorf("%w: no replacement node after %d attempts (%v backoff)",
				ErrInsufficient, res.Attempts, res.Backoff)
		}
	}
	if m.pool.Faults != nil && rc.Obs.Enabled() {
		d := m.pool.Faults.Domain(replacement)
		rc.Obs.Emit(obs.SrcRM, obs.EvSparePlan, obs.NoStep,
			obs.F("node", m.pool.Node(replacement).Name),
			obs.F("for", failedName),
			obs.F("from_spare", res.FromSpare),
			obs.F("chassis", d.Chassis), obs.F("rack", d.Rack),
			obs.F("same_chassis", m.pool.Faults.SameChassis(replacement, pi)),
			obs.F("same_rack", m.pool.Faults.SameRack(replacement, pi)),
			obs.F("risk", m.pool.Faults.Risk(replacement)))
	}

	node := m.pool.Node(replacement)
	var granted []int
	for _, c := range node.Topo.Objects(hw.LevelCore) {
		if c.Usable() && len(c.UsablePUs()) > 0 {
			granted = append(granted, c.Logical)
		}
	}
	view := &cluster.Node{Name: node.Name, Topo: node.Topo.Clone(), Slots: len(granted)}
	a.cores[replacement] = granted
	a.Granted.Nodes = append(a.Granted.Nodes, view)
	res.Node = view
	res.PoolIndex = replacement
	res.GrantedIndex = len(a.Granted.Nodes) - 1
	// Keep the grant's failure-domain view in sync with the pool's.
	a.Granted.Faults.Adopt(res.GrantedIndex, m.pool.Faults, replacement)
	return res, nil
}

// findFreeWholeNode returns the lowest pool index whose node is healthy
// and has every usable core free, or -1.
func (m *Manager) findFreeWholeNode() int {
	for i := range m.pool.Nodes {
		if m.failed[i] {
			continue
		}
		n := m.usableCores(i)
		if n > 0 && m.FreeCores(i) == n {
			return i
		}
	}
	return -1
}

// pickSpare selects which reserved spare to promote for a loss of pool
// node `failed`. Without a fault model the first-reserved spare wins
// (first-fit, the historical behavior). With one, the spare that avoids
// the failed node's chassis (it must survive whatever killed the
// original), stays in its rack (topologically near the ranks it
// inherits), and carries the lowest risk wins; reservation order breaks
// ties. Returns an index into spares, which must be non-empty.
func (m *Manager) pickSpare(spares []int, failed int) int {
	f := m.pool.Faults
	if f == nil {
		return 0
	}
	best := 0
	for i := 1; i < len(spares); i++ {
		if betterReplacement(f, spares[i], spares[best], failed) {
			best = i
		}
	}
	return best
}

// bestFreeWholeNode returns the free whole node best suited to replace or
// back up the given job nodes: without a fault model it is first-fit
// (findFreeWholeNode); with one, candidates off the job's chassis beat
// on-chassis ones, job-rack candidates beat remote ones, then lower risk,
// then lower pool index. The single-element avoid list is the
// just-failed-node case of Realloc.
func (m *Manager) bestFreeWholeNode(jobNodes []int) int {
	f := m.pool.Faults
	if f == nil {
		return m.findFreeWholeNode()
	}
	best := -1
	for i := range m.pool.Nodes {
		if m.failed[i] {
			continue
		}
		n := m.usableCores(i)
		if n == 0 || m.FreeCores(i) != n {
			continue
		}
		if best < 0 || betterCandidate(f, i, best, jobNodes) {
			best = i
		}
	}
	return best
}

// betterReplacement reports whether candidate a beats b as a replacement
// for the single failed node.
func betterReplacement(f *cluster.FaultModel, a, b, failed int) bool {
	return betterCandidate(f, a, b, []int{failed})
}

// betterCandidate is the shared domain-aware preference order: off the
// reference nodes' chassis first, in their racks second, lowest risk
// third, lowest pool index last.
func betterCandidate(f *cluster.FaultModel, a, b int, ref []int) bool {
	aCh, bCh, aRk, bRk := false, false, false, false
	for _, r := range ref {
		aCh = aCh || f.SameChassis(a, r)
		bCh = bCh || f.SameChassis(b, r)
		aRk = aRk || f.SameRack(a, r)
		bRk = bRk || f.SameRack(b, r)
	}
	if aCh != bCh {
		return !aCh // off-chassis wins
	}
	if aRk != bRk {
		return aRk // in-rack wins
	}
	if ra, rb := f.Risk(a), f.Risk(b); ra != rb {
		return ra < rb
	}
	return a < b
}

// reserveNode marks every usable core of pool node i busy.
func (m *Manager) reserveNode(i int) {
	for _, c := range m.pool.Node(i).Topo.Objects(hw.LevelCore) {
		if c.Usable() && len(c.UsablePUs()) > 0 {
			m.busy[i][c.Logical] = true
		}
	}
}

// unreserveSpares returns an allocation's reserved spares to the pool.
func (m *Manager) unreserveSpares(a *Allocation) {
	for _, pi := range a.spares {
		for ci := range m.busy[pi] {
			delete(m.busy[pi], ci)
		}
	}
	a.spares = nil
}
