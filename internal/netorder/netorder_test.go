package netorder

import (
	"context"
	"reflect"
	"testing"

	"lama/internal/cluster"
	"lama/internal/commpat"
	"lama/internal/core"
	"lama/internal/hw"
	"lama/internal/netsim"
	"lama/internal/place"
	_ "lama/internal/place/all"
	"lama/internal/torus"
)

func testCluster(t *testing.T, n int) *cluster.Cluster {
	t.Helper()
	sp, ok := hw.Preset("fig2")
	if !ok {
		t.Fatal("fig2 preset missing")
	}
	return cluster.Homogeneous(n, sp)
}

func mapJob(t *testing.T, c *cluster.Cluster, np int) *core.Map {
	t.Helper()
	mapper, err := core.NewMapper(c, core.MustParseLayout("csbnh"), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := mapper.Map(np)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// scatterMap spreads a ring's consecutive ranks across distant nodes so
// the network passes have something to fix: ranks are dealt round-robin
// over the nodes ("ncsbh"-style), the worst case for neighbor traffic.
func scatterMap(t *testing.T, c *cluster.Cluster, np int) *core.Map {
	t.Helper()
	mapper, err := core.NewMapper(c, core.MustParseLayout("ncsbh"), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := mapper.Map(np)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func evalJ(t *testing.T, c *cluster.Cluster, mo *netsim.Model, tm *commpat.CSR, m *core.Map) float64 {
	t.Helper()
	rep, err := mo.EvaluateSparse(c, m, tm)
	if err != nil {
		t.Fatal(err)
	}
	return rep.TotalTime
}

func TestRefineImprovesScatteredRing(t *testing.T) {
	c := testCluster(t, 8)
	np := 64
	m := scatterMap(t, c, np)
	mo := netsim.NewModel(netsim.NewFatTree(2))
	tm := commpat.Ring(np, 4096).Sparse()

	out, res, err := RefineMap(c, mo, tm, m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Swaps == 0 {
		t.Fatal("scattered ring should offer improving swaps")
	}
	if res.JAfter >= res.JBefore {
		t.Fatalf("J did not improve: %g -> %g", res.JBefore, res.JAfter)
	}
	// The reported J values must match a from-scratch oracle evaluation.
	if got := evalJ(t, c, mo, tm, out); !closeRel(got, res.JAfter) {
		t.Fatalf("JAfter %g, oracle %g", res.JAfter, got)
	}
	if got := evalJ(t, c, mo, tm, m); !closeRel(got, res.JBefore) {
		t.Fatalf("JBefore %g, oracle %g", res.JBefore, got)
	}
	// Rank permutation only: same multiset of processor claims.
	if got, want := claimSet(out), claimSet(m); !reflect.DeepEqual(got, want) {
		t.Fatal("refinement changed the processor claim set")
	}
	// Input map untouched.
	if evalJ(t, c, mo, tm, m) != res.JBefore {
		t.Fatal("input map mutated")
	}
}

func closeRel(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	scale := a
	if b > a {
		scale = b
	}
	return d <= 1e-9*scale || d <= 1e-9
}

func claimSet(m *core.Map) map[[2]int]int {
	out := map[[2]int]int{}
	for i := range m.Placements {
		p := &m.Placements[i]
		out[[2]int{p.Node, p.PU()}]++
	}
	return out
}

func TestRefineNoOpOnPackedRing(t *testing.T) {
	c := testCluster(t, 4)
	np := 48
	m := mapJob(t, c, np) // packed: ring neighbors already adjacent
	mo := netsim.NewModel(netsim.NewFlat())
	tm := commpat.Ring(np, 1024).Sparse()
	out, res, err := RefineMap(c, mo, tm, m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Swaps == 0 && out != m {
		t.Fatal("no-swap refinement must return the input map")
	}
	if res.JAfter > res.JBefore {
		t.Fatalf("J regressed: %g -> %g", res.JBefore, res.JAfter)
	}
}

// TestOrderNodesImprovesShuffledStencil builds a map whose node-groups
// are deliberately mis-ordered on a fat-tree (consecutive groups land in
// different leaves) and checks the ordering pass brings J down without
// touching intra-node structure.
func TestOrderNodesImprovesShuffledStencil(t *testing.T) {
	c := testCluster(t, 8)
	np := 96 // 12 PUs per fig2 node
	m := mapJob(t, c, np)
	// Shuffle which physical node hosts each group: 0..7 -> interleaved.
	shuffle := []int{0, 4, 1, 5, 2, 6, 3, 7}
	for i := range m.Placements {
		p := &m.Placements[i]
		old := p.Node
		p.Node = shuffle[old]
		p.NodeName = c.Nodes[shuffle[old]].Name
		if p.Coords[hw.LevelMachine] >= 0 {
			p.Coords[hw.LevelMachine] = shuffle[old]
		}
	}
	mo := netsim.NewModel(netsim.NewFatTree(2))
	tm := commpat.Ring(np, 8192).Sparse()

	out, res, err := OrderNodes(c, mo, tm, m)
	if err != nil {
		t.Fatal(err)
	}
	if res.MovedNodes == 0 || res.JAfter >= res.JBefore {
		t.Fatalf("ordering did not help: %+v", res)
	}
	if got := evalJ(t, c, mo, tm, out); !closeRel(got, res.JAfter) {
		t.Fatalf("JAfter %g, oracle %g", res.JAfter, got)
	}
	if got, want := len(out.Placements), len(m.Placements); got != want {
		t.Fatalf("rank count changed: %d -> %d", want, got)
	}
	// Groups moved wholesale: per-node rank sets permute, PU claims ride
	// along unchanged.
	for i := range out.Placements {
		if out.Placements[i].PU() != m.Placements[i].PU() {
			t.Fatalf("rank %d changed PU", i)
		}
	}
}

func TestOrderNodesRevertsWhenNoGain(t *testing.T) {
	c := testCluster(t, 4)
	np := 48
	m := mapJob(t, c, np) // already contiguous: ordering cannot help a flat net
	mo := netsim.NewModel(netsim.NewFlat())
	tm := commpat.Ring(np, 1024).Sparse()
	out, res, err := OrderNodes(c, mo, tm, m)
	if err != nil {
		t.Fatal(err)
	}
	if res.MovedNodes != 0 && res.JAfter >= res.JBefore {
		t.Fatalf("kept a non-improving permutation: %+v", res)
	}
	if res.MovedNodes == 0 && out != m {
		t.Fatal("no-move ordering must return the input map")
	}
}

// TestDeterminism pins byte-identical repeatability: same inputs, same
// outputs, across repeated runs of ordering, refinement, and the staged
// pipeline (swap tie-breaking is first-minimal, ordering tie-breaking is
// lowest-index, so nothing depends on map iteration or randomness).
func TestDeterminism(t *testing.T) {
	c := testCluster(t, 8)
	np := 64
	mo := netsim.NewModel(netsim.NewDragonfly(2))
	tm := commpat.Ring(np, 4096).Sparse()

	type outcome struct {
		placements []core.Placement
		order      Result
		refine     RefineResult
	}
	run := func() outcome {
		m := scatterMap(t, c, np)
		o1, r1, err := OrderNodes(c, mo, tm, m)
		if err != nil {
			t.Fatal(err)
		}
		o2, r2, err := RefineMap(c, mo, tm, o1, 0)
		if err != nil {
			t.Fatal(err)
		}
		return outcome{o2.Placements, *r1, *r2}
	}
	first := run()
	for i := 0; i < 3; i++ {
		again := run()
		if !reflect.DeepEqual(first.order, again.order) {
			t.Fatalf("order result differs: %+v vs %+v", first.order, again.order)
		}
		if !reflect.DeepEqual(first.refine, again.refine) {
			t.Fatalf("refine result differs: %+v vs %+v", first.refine, again.refine)
		}
		if len(first.placements) != len(again.placements) {
			t.Fatal("length differs")
		}
		for r := range first.placements {
			a, b := &first.placements[r], &again.placements[r]
			if a.Node != b.Node || a.PU() != b.PU() {
				t.Fatalf("rank %d placement differs: %d/%d vs %d/%d",
					r, a.Node, a.PU(), b.Node, b.PU())
			}
		}
	}
}

// TestStagesComposeWithPolicies runs netorder.Stage + Refine as pipeline
// post-passes behind registered policies, on both fat-tree and torus.
func TestStagesComposeWithPolicies(t *testing.T) {
	nets := map[string]netsim.Network{
		"fat-tree": netsim.NewFatTree(2),
		"torus":    netsim.NewTorus3D(torus.Dims{X: 4, Y: 2, Z: 1}),
	}
	for nname, net := range nets {
		for _, policy := range []string{"lama", "by-slot"} {
			t.Run(nname+"/"+policy, func(t *testing.T) {
				c := testCluster(t, 8)
				pol, ok := place.Lookup(policy)
				if !ok {
					t.Fatalf("policy %q not registered", policy)
				}
				np := 64
				req := &place.Request{
					Cluster: c, NP: np, Layout: core.MustParseLayout("ncsbh"),
					Traffic: commpat.Ring(np, 4096),
				}
				var or *Result
				var rr *RefineResult
				pl := &place.Pipeline{Policy: pol, Stages: []place.Stage{
					&Stage{Net: net, OnResult: func(r *Result) { or = r }},
					&Refine{Net: net, OnResult: func(r *RefineResult) { rr = r }},
				}}
				m, err := pl.Run(context.Background(), req)
				if err != nil {
					t.Fatal(err)
				}
				if or == nil || rr == nil {
					t.Fatal("stage results not reported")
				}
				if m.NumRanks() != np {
					t.Fatalf("rank count %d", m.NumRanks())
				}
				if rr.JAfter > or.JAfter+1e-9 {
					t.Fatalf("refine regressed J: order %g, refine %g", or.JAfter, rr.JAfter)
				}
			})
		}
	}
}

func TestStageNeedsTraffic(t *testing.T) {
	c := testCluster(t, 2)
	req := &place.Request{Cluster: c, NP: 4, Layout: core.MustParseLayout("csbnh")}
	m := mapJob(t, c, 4)
	st := &Stage{Net: netsim.NewFlat()}
	if _, err := st.Apply(context.Background(), req, m); err == nil {
		t.Fatal("stage without traffic must error")
	}
	rf := &Refine{Net: netsim.NewFlat()}
	if _, err := rf.Apply(context.Background(), req, m); err == nil {
		t.Fatal("refine without traffic must error")
	}
	none := &Stage{}
	req.Traffic = commpat.Ring(4, 1)
	if _, err := none.Apply(context.Background(), req, m); err == nil {
		t.Fatal("stage without network must error")
	}
}
