package netorder

import (
	"context"
	"fmt"

	"lama/internal/cluster"
	"lama/internal/commpat"
	"lama/internal/core"
	"lama/internal/netsim"
	"lama/internal/obs"
	"lama/internal/place"
)

// DefaultMaxSweeps bounds the refinement sweeps when the caller does not
// set a limit. Greedy pairwise refinement converges in a handful of
// sweeps on the standard patterns; the cap only guards pathological
// cases.
const DefaultMaxSweeps = 8

// swapEps is the strict-improvement threshold: a swap is taken only when
// it lowers J by more than this, so float noise can neither churn the
// map nor keep a sweep "improving" forever.
const swapEps = 1e-9

// RefineResult reports one refinement pass.
type RefineResult struct {
	// JBefore and JAfter bracket the refinement; JAfter <= JBefore.
	JBefore, JAfter float64
	// Swaps counts the placement swaps taken, Sweeps the passes over the
	// rank list (including the final quiescent one).
	Swaps, Sweeps int
}

// RefineMap polishes rank placements with greedy pairwise swaps: each
// rank in turn looks at its heaviest off-node communication partner and
// evaluates swapping itself with every rank on that partner's node,
// taking the most J-lowering swap if any strictly improves. Every
// candidate is priced by Cost.DeltaSwap in O(degree), so a full sweep is
// O(nnz · ranks-per-node) and per-swap cost is independent of np. Sweeps
// repeat until none improves or maxSweeps (DefaultMaxSweeps when <= 0)
// is hit. Swapping placements wholesale is always valid — the two ranks
// exchange complete processor claims — so no compatibility classes are
// needed. The input map is returned unchanged when no swap helps.
func RefineMap(c *cluster.Cluster, mo *netsim.Model, tm *commpat.CSR, m *core.Map, maxSweeps int) (*core.Map, *RefineResult, error) {
	return RefineMapContext(context.Background(), c, mo, tm, m, maxSweeps)
}

// RefineMapContext is RefineMap with cooperative cancellation, checked
// between refinement sweeps (never inside the per-rank delta loop, which
// must stay allocation-free). A canceled refinement returns the best map
// found so far together with the cancellation error.
func RefineMapContext(ctx context.Context, c *cluster.Cluster, mo *netsim.Model, tm *commpat.CSR, m *core.Map, maxSweeps int) (*core.Map, *RefineResult, error) {
	cost, err := netsim.NewCost(c, mo, tm, m)
	if err != nil {
		return nil, nil, err
	}
	if maxSweeps <= 0 {
		maxSweeps = DefaultMaxSweeps
	}
	res := &RefineResult{JBefore: cost.J(), JAfter: cost.J()}
	np := m.NumRanks()

	// Ranks per node, ascending (ranks are visited in order, so the
	// lists build sorted).
	byNode := make([][]int32, c.NumNodes())
	cnt := make([]int, c.NumNodes())
	for r := 0; r < np; r++ {
		cnt[cost.NodeOf(r)]++
	}
	for n := range byNode {
		byNode[n] = make([]int32, 0, cnt[n])
	}
	for r := 0; r < np; r++ {
		byNode[cost.NodeOf(r)] = append(byNode[cost.NodeOf(r)], int32(r))
	}

	out := &core.Map{Layout: m.Layout, Sweeps: m.Sweeps,
		Placements: append([]core.Placement(nil), m.Placements...)}

	for res.Sweeps < maxSweeps {
		if err := ctx.Err(); err != nil {
			break
		}
		res.Sweeps++
		improved := false
		for r := 0; r < np; r++ {
			peers, outB, inB := cost.Neighbors(r)
			// Heaviest off-node partner (first wins ties — deterministic).
			bt, btW := -1, 0.0
			rNode := cost.NodeOf(r)
			for k, p := range peers {
				if cost.NodeOf(int(p)) == rNode {
					continue
				}
				if w := outB[k] + inB[k]; w > btW {
					bt, btW = int(p), w
				}
			}
			if bt < 0 {
				continue
			}
			// Best strictly-improving swap with a rank on the partner's
			// node (first minimal candidate wins ties — deterministic).
			best, bestD := -1, -swapEps
			for _, s := range byNode[cost.NodeOf(bt)] {
				if d := cost.DeltaSwap(r, int(s)); d < bestD {
					best, bestD = int(s), d
				}
			}
			if best < 0 {
				continue
			}
			sNode := cost.NodeOf(best)
			cost.ApplySwap(r, best)
			swapPlacements(out, r, best)
			replaceSorted(byNode[rNode], int32(r), int32(best))
			replaceSorted(byNode[sNode], int32(best), int32(r))
			res.Swaps++
			improved = true
		}
		if !improved {
			break
		}
	}
	res.JAfter = cost.J()
	if res.Swaps == 0 {
		return m, res, nil
	}
	return out, res, nil
}

// replaceSorted substitutes new for old in a sorted slice and re-sorts
// it by bubbling, allocation-free (the swap moves one element).
func replaceSorted(l []int32, old, new int32) {
	for i, v := range l {
		if v != old {
			continue
		}
		l[i] = new
		for i > 0 && l[i-1] > l[i] {
			l[i-1], l[i] = l[i], l[i-1]
			i--
		}
		for i+1 < len(l) && l[i] > l[i+1] {
			l[i], l[i+1] = l[i+1], l[i]
			i++
		}
		return
	}
}

// swapPlacements exchanges everything but the Rank field between two
// placements (the same move faultaware makes): rank order stays
// canonical while the processor assignment moves.
func swapPlacements(m *core.Map, a, b int) {
	pa, pb := &m.Placements[a], &m.Placements[b]
	*pa, *pb = *pb, *pa
	pa.Rank, pb.Rank = a, b
}

// Refine is the delta-J pairwise-swap refinement post-pass
// (place.Stage). It composes after Stage (node ordering) or alone.
type Refine struct {
	// Net is the inter-node network (used when Model is nil).
	Net netsim.Network
	// Model overrides the cost model entirely.
	Model *netsim.Model
	// MaxSweeps bounds the refinement sweeps; <= 0 means
	// DefaultMaxSweeps.
	MaxSweeps int
	// OnResult, when set, receives the refinement outcome.
	OnResult func(*RefineResult)
}

// StageName returns the registered netrefine span label.
func (s *Refine) StageName() string { return obs.SpanNetRefine }

// Apply runs the refinement and emits a "netsim"/"refine" event with the
// J before/after.
func (s *Refine) Apply(ctx context.Context, req *place.Request, m *core.Map) (*core.Map, error) {
	mo := s.Model
	if mo == nil {
		if s.Net == nil {
			return nil, fmt.Errorf("netorder: refine stage needs a network model")
		}
		mo = netsim.NewModel(s.Net)
	}
	if req.Traffic == nil {
		return nil, fmt.Errorf("netorder: refine stage needs req.Traffic")
	}
	out, res, err := RefineMapContext(ctx, req.Cluster, mo, req.Traffic.Sparse(), m, s.MaxSweeps)
	if err != nil {
		return nil, err
	}
	if s.OnResult != nil {
		s.OnResult(res)
	}
	if o := req.Opts.Obs; o.Enabled() {
		o.Emit(obs.SrcNetSim, obs.EvRefine, obs.NoStep,
			obs.F("j_before", res.JBefore),
			obs.F("j_after", res.JAfter),
			obs.F("swaps", res.Swaps),
			obs.F("sweeps", res.Sweeps))
	}
	return out, nil
}
