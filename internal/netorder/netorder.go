// Package netorder makes placement network-aware at scale: it reorders
// which physical node hosts each mapped node-group so heavily
// communicating groups land topologically near each other, then (see
// refine.go) polishes rank placements with greedy pairwise swaps priced
// by the O(degree) delta-J evaluator. Both passes run over the flat
// netsim.Distances provider and the CSR traffic view, so they stay
// usable at 100k+ ranks where per-pair interface dispatch and dense
// matrices are out of the question. They compose as place.Stage
// post-passes with any registered policy — lama, treematch, torus, ... —
// mirroring how Schulz & Träff separate intra-node ordering from
// inter-node assignment (PAPERS.md).
package netorder

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"lama/internal/cluster"
	"lama/internal/commpat"
	"lama/internal/core"
	"lama/internal/hw"
	"lama/internal/netsim"
	"lama/internal/obs"
	"lama/internal/place"
)

// Result reports one node-ordering pass.
type Result struct {
	// JBefore and JAfter are the J(C,D,Π) objective before and after; the
	// pass reverts itself when reordering does not strictly improve J, so
	// JAfter <= JBefore always.
	JBefore, JAfter float64
	// MovedNodes counts node-groups whose physical node changed;
	// MovedRanks the ranks riding along.
	MovedNodes, MovedRanks int
	// Classes is the number of distinct node-compatibility classes among
	// the nodes hosting ranks (a group only moves within its class).
	Classes int
}

// OrderNodes permutes which physical node hosts each of m's node-groups
// to reduce the J objective: node-groups are sequenced by max-adjacency
// (heaviest-communicating first, each next group the one talking most to
// the already-sequenced set) and then greedily assigned to the
// compatible physical node minimizing hop-weighted traffic to the
// groups already placed. Ranks keep their PUs — a group only moves to a
// node with identical topology shape, PU numbering, and slot limits —
// so the permuted map is valid by construction. If the permutation does
// not strictly improve J the input map is returned unchanged.
func OrderNodes(c *cluster.Cluster, mo *netsim.Model, tm *commpat.CSR, m *core.Map) (*core.Map, *Result, error) {
	cost, err := netsim.NewCost(c, mo, tm, m)
	if err != nil {
		return nil, nil, err
	}
	res := &Result{JBefore: cost.J(), JAfter: cost.J()}

	dist, err := mo.Distances(c.NumNodes())
	if err != nil {
		return nil, nil, err
	}

	np := m.NumRanks()
	ranksOn := make([]int, c.NumNodes())
	for r := 0; r < np; r++ {
		ranksOn[cost.NodeOf(r)]++
	}
	var used []int
	for n, k := range ranksOn {
		if k > 0 {
			used = append(used, n)
		}
	}
	if len(used) < 2 {
		return m, res, nil
	}

	// Node compatibility classes: a group may only move between nodes
	// whose topology tree, PU numbering, and slot limits are identical.
	class := make([]int, c.NumNodes())
	classIDs := map[string]int{}
	for n, nd := range c.Nodes {
		key := nodeClassKey(nd)
		id, ok := classIDs[key]
		if !ok {
			id = len(classIDs)
			classIDs[key] = id
		}
		class[n] = id
	}
	seenClass := make([]bool, len(classIDs))
	for _, n := range used {
		if !seenClass[class[n]] {
			seenClass[class[n]] = true
			res.Classes++
		}
	}

	g := nodeGraph(cost, tm, used)

	order := maxAdjacencyOrder(g)

	// Greedy assignment: give each group, in order, the compatible free
	// physical node minimizing hop-weighted traffic to already-assigned
	// groups. Candidate pool: every node of the group's class (unused
	// nodes included — an empty well-placed node is a fine target). Each
	// candidate costs O(degree) — the group's communicating peers only —
	// so the whole assignment is O(U · nodes · degree), which stays
	// tractable at thousands of nodes.
	assign := make([]int, len(used)) // used-index -> physical node
	for i := range assign {
		assign[i] = -1
	}
	taken := make([]bool, c.NumNodes())
	for _, ui := range order {
		uClass := class[used[ui]]
		bestNode, bestCost := -1, 0.0
		for p := 0; p < c.NumNodes(); p++ {
			if taken[p] || class[p] != uClass {
				continue
			}
			cst := 0.0
			for k := g.off[ui]; k < g.off[ui+1]; k++ {
				if pv := assign[g.peer[k]]; pv >= 0 {
					cst += g.wgt[k] * float64(dist.Hops(p, pv))
				}
			}
			if bestNode < 0 || cst < bestCost {
				bestNode, bestCost = p, cst
			}
		}
		if bestNode < 0 {
			// No compatible free node (should not happen: the group's own
			// node is compatible with itself). Keep the group in place.
			bestNode = used[ui]
		}
		assign[ui] = bestNode
		taken[bestNode] = true
	}

	// Apply the permutation to a copy.
	perm := make([]int, c.NumNodes())
	for n := range perm {
		perm[n] = n
	}
	for i, u := range used {
		perm[u] = assign[i]
	}
	out := &core.Map{Layout: m.Layout, Sweeps: m.Sweeps,
		Placements: append([]core.Placement(nil), m.Placements...)}
	for r := range out.Placements {
		p := &out.Placements[r]
		old := p.Node
		nn := perm[old]
		if nn == old {
			continue
		}
		p.Node = nn
		p.NodeName = c.Nodes[nn].Name
		if p.Coords[hw.LevelMachine] >= 0 {
			p.Coords[hw.LevelMachine] = nn
		}
		res.MovedRanks++
	}
	for i, u := range used {
		if assign[i] != u {
			res.MovedNodes++
		}
	}
	if res.MovedNodes == 0 {
		return m, res, nil
	}

	after, err := netsim.NewCost(c, mo, tm, out)
	if err != nil {
		return nil, nil, err
	}
	if after.J() >= res.JBefore {
		res.JAfter = res.JBefore
		res.MovedNodes, res.MovedRanks = 0, 0
		return m, res, nil
	}
	res.JAfter = after.J()
	return out, res, nil
}

// nodeAdj is the sparse symmetric used-node communication graph in CSR
// form: group ui's communicating peer groups occupy
// peer/wgt[off[ui]:off[ui+1]]. Sparse matters: at 100k ranks the
// used-node count is in the thousands and a dense U×U matrix would cost
// hundreds of megabytes for a graph that is O(U) edges on neighbor
// patterns.
type nodeAdj struct {
	nu   int
	off  []int32
	peer []int32
	wgt  []float64
}

type nodeEdge struct {
	a, b int32
	w    float64
}

// nodeGraph aggregates rank traffic into the used-node adjacency:
// directed rank entries collapse onto undirected node-pair weights via
// an edge list sorted and merged in place (no map iteration — the graph
// feeds deterministic ordering).
func nodeGraph(cost *netsim.Cost, tm *commpat.CSR, used []int) *nodeAdj {
	nu := len(used)
	uIdx := make(map[int]int32, nu)
	for i, n := range used {
		uIdx[n] = int32(i)
	}
	var edges []nodeEdge
	tm.Each(func(i, j int, bytes float64) {
		ni, nj := cost.NodeOf(i), cost.NodeOf(j)
		if ni == nj {
			return
		}
		a, b := uIdx[ni], uIdx[nj]
		if a > b {
			a, b = b, a
		}
		edges = append(edges, nodeEdge{a, b, bytes})
	})
	edges = mergeEdges(edges)
	// Symmetrize into CSR.
	g := &nodeAdj{nu: nu, off: make([]int32, nu+1)}
	for _, e := range edges {
		g.off[e.a+1]++
		g.off[e.b+1]++
	}
	for i := 0; i < nu; i++ {
		g.off[i+1] += g.off[i]
	}
	g.peer = make([]int32, g.off[nu])
	g.wgt = make([]float64, g.off[nu])
	cur := make([]int32, nu)
	copy(cur, g.off[:nu])
	for _, e := range edges {
		k := cur[e.a]
		cur[e.a]++
		g.peer[k], g.wgt[k] = e.b, e.w
		k = cur[e.b]
		cur[e.b]++
		g.peer[k], g.wgt[k] = e.a, e.w
	}
	return g
}

// mergeEdges sorts (a,b)-keyed edges and sums duplicates.
func mergeEdges(edges []nodeEdge) []nodeEdge {
	sort.Slice(edges, func(x, y int) bool {
		if edges[x].a != edges[y].a {
			return edges[x].a < edges[y].a
		}
		return edges[x].b < edges[y].b
	})
	w := 0
	for k := range edges {
		if w > 0 && edges[w-1].a == edges[k].a && edges[w-1].b == edges[k].b {
			edges[w-1].w += edges[k].w
			continue
		}
		edges[w] = edges[k]
		w++
	}
	return edges[:w]
}

// maxAdjacencyOrder sequences the groups: seed = heaviest total traffic,
// then repeatedly the unsequenced group with the largest total weight to
// the sequenced set. Ties break on the lower index, so the order is
// deterministic. O(U² + edges).
func maxAdjacencyOrder(g *nodeAdj) []int {
	nu := g.nu
	gain := make([]float64, nu)
	for i := 0; i < nu; i++ {
		for k := g.off[i]; k < g.off[i+1]; k++ {
			gain[i] += g.wgt[k]
		}
	}
	seed := 0
	for i := 1; i < nu; i++ {
		if gain[i] > gain[seed] {
			seed = i
		}
	}
	order := make([]int, 0, nu)
	done := make([]bool, nu)
	conn := make([]float64, nu)
	cur := seed
	for {
		order = append(order, cur)
		done[cur] = true
		if len(order) == nu {
			return order
		}
		for k := g.off[cur]; k < g.off[cur+1]; k++ {
			conn[g.peer[k]] += g.wgt[k]
		}
		next := -1
		for i := 0; i < nu; i++ {
			if done[i] {
				continue
			}
			if next < 0 || conn[i] > conn[next] {
				next = i
			}
		}
		cur = next
	}
}

// nodeClassKey fingerprints what a node offers a rank group: topology
// shape, PU OS numbering, and slot limits. Groups move only between
// same-key nodes, so every PU claim stays valid after the move.
func nodeClassKey(nd *cluster.Node) string {
	var sb strings.Builder
	sb.WriteString(nd.Topo.ShapeSig())
	sb.WriteByte('|')
	sb.WriteString(strconv.Itoa(nd.Slots))
	sb.WriteByte('/')
	sb.WriteString(strconv.Itoa(nd.MaxSlots))
	for _, pu := range nd.Topo.Objects(hw.LevelPU) {
		sb.WriteByte(':')
		sb.WriteString(strconv.Itoa(pu.OS))
		if !pu.Available {
			sb.WriteByte('!')
		}
	}
	return sb.String()
}

// Stage is the node-ordering post-pass (place.Stage). It requires the
// request's Traffic matrix and a network model: Model when set,
// otherwise one is built from Net with default intra-node parameters.
type Stage struct {
	// Net is the inter-node network to order against (used when Model is
	// nil).
	Net netsim.Network
	// Model overrides the cost model entirely.
	Model *netsim.Model
	// OnResult, when set, receives the ordering outcome.
	OnResult func(*Result)
}

// StageName returns the registered netorder span label.
func (s *Stage) StageName() string { return obs.SpanNetOrder }

// Apply runs the ordering pass and emits a "netsim"/"order" event with
// the J before/after.
func (s *Stage) Apply(_ context.Context, req *place.Request, m *core.Map) (*core.Map, error) {
	mo := s.Model
	if mo == nil {
		if s.Net == nil {
			return nil, fmt.Errorf("netorder: stage needs a network model")
		}
		mo = netsim.NewModel(s.Net)
	}
	if req.Traffic == nil {
		return nil, fmt.Errorf("netorder: stage needs req.Traffic")
	}
	out, res, err := OrderNodes(req.Cluster, mo, req.Traffic.Sparse(), m)
	if err != nil {
		return nil, err
	}
	if s.OnResult != nil {
		s.OnResult(res)
	}
	if o := req.Opts.Obs; o.Enabled() {
		o.Emit(obs.SrcNetSim, obs.EvOrder, obs.NoStep,
			obs.F("j_before", res.JBefore),
			obs.F("j_after", res.JAfter),
			obs.F("moved_nodes", res.MovedNodes),
			obs.F("moved_ranks", res.MovedRanks),
			obs.F("classes", res.Classes))
	}
	return out, nil
}
