package analysis

import (
	"go/ast"
	"go/types"
)

// CtxFirst returns the context-parameter-position analyzer.
//
// The request-scoped refactor threaded context.Context through the
// mapping, sweeping, placement, refinement, realloc, and supervision
// APIs. Go's convention — and the shape every call site in this
// repository now relies on — is that the context is the FIRST parameter.
// A context buried mid-signature is invisible at call sites, breaks the
// mechanical `ctx, ` threading pattern, and suggests the function grew
// its context after the fact instead of being designed for cancellation.
// This analyzer pins the convention for every function declaration,
// method, and function literal in the module.
func CtxFirst() *Analyzer {
	a := &Analyzer{
		Name: "ctxfirst",
		Doc:  "requires context.Context parameters to be the first parameter",
	}
	a.Run = func(pass *Pass) error {
		for _, file := range pass.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				switch fn := n.(type) {
				case *ast.FuncDecl:
					checkCtxFirst(pass, fn.Type, fn.Name.Name)
				case *ast.FuncLit:
					checkCtxFirst(pass, fn.Type, "function literal")
				case *ast.InterfaceType:
					for _, m := range fn.Methods.List {
						if ft, ok := m.Type.(*ast.FuncType); ok && len(m.Names) > 0 {
							checkCtxFirst(pass, ft, m.Names[0].Name)
						}
					}
				}
				return true
			})
		}
		return nil
	}
	return a
}

// checkCtxFirst reports a context.Context parameter at any position other
// than the first. The receiver does not count as a position: a method
// (m *Mapper) MapContext(ctx, np) is compliant.
func checkCtxFirst(pass *Pass, ft *ast.FuncType, name string) {
	if ft.Params == nil {
		return
	}
	pos := 0
	for _, field := range ft.Params.List {
		// A field may declare several names (a, b int); each occupies a
		// parameter position. An anonymous field occupies one.
		width := len(field.Names)
		if width == 0 {
			width = 1
		}
		if isContextType(pass.TypesInfo.TypeOf(field.Type)) && pos != 0 {
			pass.Reportf(field.Type.Pos(),
				"%s: context.Context is parameter %d, not first; a mid-signature context is invisible at call sites",
				name, pos+1)
		}
		pos += width
	}
}

// isContextType reports whether t is exactly context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == "Context" &&
		obj.Pkg() != nil && obj.Pkg().Path() == "context"
}
