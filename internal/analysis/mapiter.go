package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapIter returns the map-iteration-order analyzer.
//
// Inside the deterministic packages, Go's randomized map iteration order
// must never be able to influence an output: a `range` over a map is
// flagged when its body reaches a return value, appends to a slice, or
// emits an observability event. The PR 4 treematch regression — a greedy
// partitioner iterating an `unassigned` map so equal-traffic ties broke
// differently run to run — is exactly this shape, and was only caught by
// a repeated-run test after it landed.
//
// The analyzer recognizes both direct sinks inside the loop body and the
// bug's actual shape — conditional selection: a plain `=` assignment to a
// variable declared outside the loop, guarded by a condition on
// loop-derived data, with a loop-derived right-hand side (`if w > bestW {
// best, bestW = r, w }`). Which element wins such a selection is decided
// by iteration order, whatever happens to the winner afterwards.
//
// Two escape hatches, matching how the tree already writes deterministic
// code: appending map keys to a slice is fine when the very same slice is
// passed to a sort call later in the enclosing block (collect-then-sort),
// and a loop that is genuinely order-insensitive can carry a
// //lama:nondet-ok <reason> annotation. Loops that only aggregate
// commutatively (counters via `+=`, set membership, map writes) are not
// flagged at all.
func MapIter() *Analyzer {
	a := &Analyzer{
		Name: "mapiter",
		Doc:  "flags map iteration whose order can reach returns, slice appends, or event emissions in deterministic packages",
	}
	a.Run = func(pass *Pass) error {
		if !deterministic(pass.Pkg) {
			return nil
		}
		for _, file := range pass.Files {
			stmtLists(file, func(list []ast.Stmt) {
				for i, stmt := range list {
					rs, ok := stmt.(*ast.RangeStmt)
					if !ok || !isMapType(pass.TypesInfo.TypeOf(rs.X)) {
						continue
					}
					checkMapRange(pass, rs, list[i+1:])
				}
			})
		}
		return nil
	}
	return a
}

// checkMapRange reports the order-sensitive sinks reached by one map
// range loop, with followers — the statements after the loop in its
// enclosing block — consulted for collect-then-sort suppression.
func checkMapRange(pass *Pass, rs *ast.RangeStmt, followers []ast.Stmt) {
	var sinks []string
	var appendTargets []types.Object
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			sinks = append(sinks, "a return value")
		case *ast.CallExpr:
			if isBuiltin(pass.TypesInfo, n, "append") && len(n.Args) > 0 {
				if obj := identObject(pass.TypesInfo, n.Args[0]); obj != nil {
					appendTargets = append(appendTargets, obj)
				} else {
					sinks = append(sinks, "a slice append")
				}
			}
			if f := calleeFunc(pass.TypesInfo, n); obsMethod(f, "Emit") {
				sinks = append(sinks, "an event emission")
			}
		}
		return true
	})
	for _, obj := range appendTargets {
		if !sortedAfter(pass, obj, followers) {
			sinks = append(sinks, "a slice append")
			break
		}
	}
	if sel := selectedOutside(pass, rs); len(sel) > 0 {
		sinks = append(sinks, "a conditional selection of "+strings.Join(sel, ", ")+" (argmax over map order)")
	}
	if len(sinks) == 0 {
		return
	}
	if suppressed(pass, rs.Pos(), AnnotNondetOK) {
		return
	}
	pass.Reportf(rs.Pos(),
		"map iteration order reaches %s; iterate sorted keys, sort the result, or annotate //lama:nondet-ok <reason>",
		strings.Join(dedupeStrings(sinks), " and "))
}

// identObject resolves a plain identifier expression to its object.
func identObject(info *types.Info, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	return info.ObjectOf(id)
}

// sortedAfter reports whether one of the follower statements passes obj
// to a sort.* or slices.Sort* call — the collect-then-sort idiom that
// makes the collection order irrelevant.
func sortedAfter(pass *Pass, obj types.Object, followers []ast.Stmt) bool {
	for _, stmt := range followers {
		found := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			f := calleeFunc(pass.TypesInfo, call)
			if f == nil || f.Pkg() == nil {
				return true
			}
			isSort := f.Pkg().Path() == "sort" ||
				(f.Pkg().Path() == "slices" && strings.HasPrefix(f.Name(), "Sort"))
			if isSort && identObject(pass.TypesInfo, call.Args[0]) == obj {
				found = true
				return false
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// selectedOutside finds the conditional-selection shape of the PR 4
// treematch bug: inside the loop body, a plain `=` assignment to a
// variable declared outside the loop, with a loop-tainted right-hand
// side, guarded by a loop-tainted condition. The names of the selected
// variables are returned.
func selectedOutside(pass *Pass, rs *ast.RangeStmt) []string {
	tainted := loopTainted(pass, rs)
	refsTainted := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && tainted[pass.TypesInfo.ObjectOf(id)] {
				found = true
				return false
			}
			return true
		})
		return found
	}
	var names []string
	seen := map[types.Object]bool{}
	var visit func(n ast.Node, guarded bool)
	visit = func(n ast.Node, guarded bool) {
		switch n := n.(type) {
		case nil:
			return
		case *ast.IfStmt:
			g := guarded || (n.Cond != nil && refsTainted(n.Cond))
			visit(n.Body, g)
			visit(n.Else, g)
			return
		case *ast.SwitchStmt:
			g := guarded || (n.Tag != nil && refsTainted(n.Tag))
			for _, cl := range n.Body.List {
				cc := cl.(*ast.CaseClause)
				cg := g
				for _, e := range cc.List {
					if refsTainted(e) {
						cg = true
					}
				}
				for _, s := range cc.Body {
					visit(s, cg)
				}
			}
			return
		case *ast.AssignStmt:
			if !guarded || n.Tok != token.ASSIGN {
				return
			}
			for i, lhs := range n.Lhs {
				obj := identObject(pass.TypesInfo, lhs)
				if obj == nil || seen[obj] || declaredWithin(pass, obj, rs) {
					continue
				}
				rhs := n.Rhs[0]
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				}
				if refsTainted(rhs) {
					seen[obj] = true
					names = append(names, obj.Name())
				}
			}
			return
		case *ast.BlockStmt:
			for _, s := range n.List {
				visit(s, guarded)
			}
			return
		case *ast.ForStmt:
			visit(n.Body, guarded)
			return
		case *ast.RangeStmt:
			visit(n.Body, guarded)
			return
		case *ast.LabeledStmt:
			visit(n.Stmt, guarded)
			return
		}
	}
	visit(rs.Body, false)
	return names
}

// loopTainted computes, by fixed point over the loop body's assignments,
// the set of variables whose values derive from the range's key or value.
func loopTainted(pass *Pass, rs *ast.RangeStmt) map[types.Object]bool {
	tainted := map[types.Object]bool{}
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if e != nil {
			if obj := identObject(pass.TypesInfo, e); obj != nil {
				tainted[obj] = true
			}
		}
	}
	refs := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && tainted[pass.TypesInfo.ObjectOf(id)] {
				found = true
				return false
			}
			return true
		})
		return found
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(rs.Body, func(n ast.Node) bool {
			if inner, ok := n.(*ast.RangeStmt); ok && refs(inner.X) {
				for _, e := range []ast.Expr{inner.Key, inner.Value} {
					if e == nil {
						continue
					}
					if obj := identObject(pass.TypesInfo, e); obj != nil && !tainted[obj] {
						tainted[obj] = true
						changed = true
					}
				}
				return true
			}
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			anyRHS := false
			for _, r := range as.Rhs {
				if refs(r) {
					anyRHS = true
				}
			}
			for i, lhs := range as.Lhs {
				obj := identObject(pass.TypesInfo, lhs)
				if obj == nil || tainted[obj] {
					continue
				}
				hit := anyRHS
				if len(as.Rhs) == len(as.Lhs) {
					hit = refs(as.Rhs[i])
				}
				if hit {
					tainted[obj] = true
					changed = true
				}
			}
			return true
		})
	}
	return tainted
}

// declaredWithin reports whether obj's declaration lies inside the range
// statement.
func declaredWithin(pass *Pass, obj types.Object, rs *ast.RangeStmt) bool {
	return obj.Pos() >= rs.Pos() && obj.Pos() < rs.End()
}

// dedupeStrings removes duplicates preserving first-seen order.
func dedupeStrings(in []string) []string {
	seen := map[string]bool{}
	out := in[:0]
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}
