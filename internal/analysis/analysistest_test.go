package analysis

import (
	"path/filepath"
	"regexp"
	"testing"

	"lama/internal/obs"
)

// The fixture harness mirrors x/tools analysistest: each directory under
// testdata/src is one package; comments of the form
//
//	code // want `regex` `regex`
//
// declare the diagnostics expected on that line, and the test fails on
// any unexpected diagnostic or unmatched expectation.

// fixtureLoader builds a loader that has gathered export data for the
// packages fixtures import.
func fixtureLoader(t *testing.T) *Loader {
	t.Helper()
	l := NewLoader(filepath.Join("..", ".."))
	if err := l.Gather("lama/internal/obs", "lama/internal/cluster", "lama/internal/hw",
		"fmt", "sort", "time", "math/rand", "os", "errors", "context",
		"sync", "sync/atomic", "net/http"); err != nil {
		t.Fatalf("gather export data: %v", err)
	}
	return l
}

// loadFixture loads testdata/src/<name> as one package.
func loadFixture(t *testing.T, l *Loader, name string) *Package {
	t.Helper()
	pkg, err := l.LoadDir(filepath.Join("testdata", "src", name),
		"lama/internal/analysis/testdata/src/"+name)
	if err != nil {
		t.Fatalf("load fixture %s: %v", name, err)
	}
	return pkg
}

// runAnalyzer applies one analyzer to a loaded package.
func runAnalyzer(t *testing.T, a *Analyzer, pkg *Package) []Diagnostic {
	t.Helper()
	var diags []Diagnostic
	if err := a.Run(pkg.Pass(a, func(d Diagnostic) { diags = append(diags, d) })); err != nil {
		t.Fatalf("%s: %v", a.Name, err)
	}
	return diags
}

type wantPattern struct {
	file string
	line int
	re   *regexp.Regexp
	used bool
}

var wantRE = regexp.MustCompile("`([^`]+)`")

// parseWants collects the // want expectations of a fixture package.
func parseWants(t *testing.T, pkg *Package) map[fileLine][]*wantPattern {
	t.Helper()
	wants := map[fileLine][]*wantPattern{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !regexp.MustCompile(`^// want `).MatchString(c.Text) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, m := range wantRE.FindAllStringSubmatch(c.Text, -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, m[1], err)
					}
					key := fileLine{pos.Filename, pos.Line}
					wants[key] = append(wants[key], &wantPattern{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// checkFixture matches diagnostics against expectations.
func checkFixture(t *testing.T, pkg *Package, diags []Diagnostic) {
	t.Helper()
	wants := parseWants(t, pkg)
	for _, d := range diags {
		matched := false
		for _, w := range wants[fileLine{d.Pos.Filename, d.Pos.Line}] {
			if !w.used && w.re.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, ws := range wants {
		for _, w := range ws {
			if !w.used {
				t.Errorf("%s:%d: no diagnostic matched want `%s`", w.file, w.line, w.re)
			}
		}
	}
}

// TestFixtures runs each analyzer over its golden fixture package.
func TestFixtures(t *testing.T) {
	l := fixtureLoader(t)
	cases := []struct {
		fixture  string
		analyzer *Analyzer
	}{
		{"mapiter", MapIter()},
		{"nodeterm", NoDeterm()},
		{"obsvocab", ObsVocab()},
		{"hotpath", HotPath()},
		{"ctxfirst", CtxFirst()},
		{"snapfrozen", SnapFrozen()},
		{"lockcheck", LockCheck()},
		{"golifecycle", GoLifecycle()},
		{"atomicmix", AtomicMix()},
	}
	for _, c := range cases {
		t.Run(c.fixture, func(t *testing.T) {
			pkg := loadFixture(t, l, c.fixture)
			checkFixture(t, pkg, runAnalyzer(t, c.analyzer, pkg))
		})
	}
}

// TestDeterministicPackageGate runs mapiter and nodeterm over a fixture
// full of flaggable shapes whose package name is outside the
// deterministic set; both must stay silent.
func TestDeterministicPackageGate(t *testing.T) {
	l := fixtureLoader(t)
	pkg := loadFixture(t, l, "nondetpkg")
	for _, a := range []*Analyzer{MapIter(), NoDeterm()} {
		if diags := runAnalyzer(t, a, pkg); len(diags) != 0 {
			t.Errorf("%s flagged a non-deterministic package: %v", a.Name, diags)
		}
	}
}

// TestObsVocabDeadEntries exercises the Finish hook: entries the analyzed
// packages emitted are live, everything else in the canonical table is
// reported dead.
func TestObsVocabDeadEntries(t *testing.T) {
	l := fixtureLoader(t)
	a := ObsVocab()
	runAnalyzer(t, a, loadFixture(t, l, "obsvocab"))
	var dead []Diagnostic
	a.Finish(func(d Diagnostic) { dead = append(dead, d) })

	reported := map[string]bool{}
	for _, d := range dead {
		if !regexp.MustCompile(`emitted nowhere`).MatchString(d.Message) {
			t.Errorf("unexpected Finish diagnostic: %s", d)
		}
		reported[d.Message] = true
	}
	has := func(src, name string) bool {
		for msg := range reported {
			if regexp.MustCompile(regexp.QuoteMeta("(" + src + ", " + name + ")")).MatchString(msg) {
				return true
			}
		}
		return false
	}
	// The fixture emits these three; they must not be reported dead.
	for _, e := range []obs.VocabEntry{
		{Source: obs.SrcMap, Name: obs.EvDone},
		{Source: obs.SrcMap, Name: obs.EvStall},
		{Source: obs.SrcSweep, Name: obs.EvLayout},
	} {
		if has(e.Source, e.Name) {
			t.Errorf("entry (%s, %s) emitted by the fixture but reported dead", e.Source, e.Name)
		}
	}
	// The fixture does not emit this one; it must be reported dead.
	if !has(obs.SrcSupervise, obs.EvStart) {
		t.Errorf("entry (%s, %s) not emitted by the fixture but not reported dead", obs.SrcSupervise, obs.EvStart)
	}
	if len(dead) != len(obs.Vocabulary())-3 {
		t.Errorf("dead entries = %d, want %d", len(dead), len(obs.Vocabulary())-3)
	}
}

// TestRepositoryClean is the acceptance gate: the full suite over the
// whole module reports nothing. Every real finding has been fixed or
// carries a reasoned annotation; this test keeps it that way.
func TestRepositoryClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module analysis in -short mode")
	}
	diags, sups, err := RunPackages(filepath.Join("..", ".."), []string{"./..."}, Suite(), true)
	if err != nil {
		t.Fatalf("run suite: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	for _, s := range sups {
		if s.Reason == "" {
			t.Errorf("%s: %s: reasonless //lama:%s suppression recorded", s.Pos, s.Analyzer, s.Kind)
		}
	}
}
