package analysis

import (
	"go/ast"
	"sort"

	"lama/internal/obs"
)

// ObsVocab returns the observability-vocabulary analyzer.
//
// Every structured event the repository emits must be a (source, name)
// pair registered in the canonical table of internal/obs/vocab.go, passed
// to Observer.Emit as compile-time constants — dashboards, the run-report
// validator, and the cross-level vocabulary-equality test all key off
// exact names, so a stray literal ("detected" instead of "detect") is a
// silent observability regression. Literal phase-span labels handed to
// Observer.StartSpan / PhaseTimer.Start are checked against the span
// table the same way; non-constant span names are permitted because
// pipeline stages are labeled by the stage itself (Stage.StageName).
//
// The Finish hook closes the loop in whole-module runs: a vocabulary
// entry that no analyzed package emits is dead and reported, so the table
// can never drift from the emission set it documents.
func ObsVocab() *Analyzer {
	a := &Analyzer{
		Name: "obsvocab",
		Doc:  "checks every emitted (source, name) event pair and span label against the canonical vocabulary in internal/obs/vocab.go",
	}
	emitted := map[obs.VocabEntry]bool{}
	a.Run = func(pass *Pass) error {
		if pass.Pkg.Name() == "obs" {
			return nil // the vocabulary's home package defines, not emits
		}
		for _, file := range pass.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				f := calleeFunc(pass.TypesInfo, call)
				switch {
				case obsMethod(f, "Emit") && len(call.Args) >= 2:
					src, srcOK := constString(pass.TypesInfo, call.Args[0])
					name, nameOK := constString(pass.TypesInfo, call.Args[1])
					if !srcOK || !nameOK {
						pass.Reportf(call.Pos(),
							"event source and name must be compile-time constants from internal/obs/vocab.go")
						return true
					}
					if !obs.VocabRegistered(src, name) {
						pass.Reportf(call.Pos(),
							"event (%q, %q) is not in the canonical vocabulary; register it in internal/obs/vocab.go",
							src, name)
						return true
					}
					emitted[obs.VocabEntry{Source: src, Name: name}] = true
				case (obsMethod(f, "StartSpan") || obsMethod(f, "Start")) && len(call.Args) == 1:
					if name, ok := constString(pass.TypesInfo, call.Args[0]); ok && !obs.SpanRegistered(name) {
						pass.Reportf(call.Pos(),
							"span label %q is not in the canonical span table; register it in internal/obs/vocab.go", name)
					}
				}
				return true
			})
		}
		return nil
	}
	a.Finish = func(report func(Diagnostic)) {
		var dead []obs.VocabEntry
		for _, e := range obs.Vocabulary() {
			if !emitted[e] {
				dead = append(dead, e)
			}
		}
		sort.Slice(dead, func(i, j int) bool {
			if dead[i].Source != dead[j].Source {
				return dead[i].Source < dead[j].Source
			}
			return dead[i].Name < dead[j].Name
		})
		for _, e := range dead {
			report(Diagnostic{
				Analyzer: a.Name,
				Message: "vocabulary entry (" + e.Source + ", " + e.Name +
					") in internal/obs/vocab.go is emitted nowhere; remove it or emit it",
			})
		}
	}
	return a
}
