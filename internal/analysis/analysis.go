// Package analysis is lamavet's static-analysis suite: a small,
// dependency-free re-implementation of the go/analysis model (Analyzer,
// Pass, Diagnostic) on top of the standard library's go/parser and
// go/types, plus the four repository-specific analyzers that turn this
// repo's runtime-tested invariants into compile-time guarantees:
//
//   - mapiter: no map-iteration order may reach a return value, a slice
//     append, or an event emission inside the deterministic packages —
//     the paper's 9!-permutation layout sweeps and reproducible rankfiles
//     only hold if mapping is bit-deterministic, a property the treematch
//     partitioner once violated through a map-range tie-break.
//   - nodeterm: the deterministic packages must not read wall clocks,
//     the shared math/rand source, or the environment, except through
//     injected options (an explicit seed, an Observer clock) or under an
//     annotated exemption.
//   - obsvocab: every (source, name) event pair handed to Observer.Emit,
//     and every literal phase-span label, must come from the canonical
//     vocabulary table in internal/obs/vocab.go; the table must not carry
//     dead entries.
//   - hotpath: functions annotated //lama:hotpath, and everything they
//     statically call within their package, must be free of allocation
//     sources (fmt formatting, map/slice composite literals, un-hinted
//     append growth, capturing closures, implicit interface boxing) —
//     the static form of TestMapAllocationsSteadyState's 3-allocs/op pin.
//   - ctxfirst: context.Context parameters must come first (lamavet/2).
//
// The lamavet/3 analyzers turn the concurrent placement service's
// shared-state discipline into compile-time checks:
//
//   - snapfrozen: published-immutability for cluster.Snapshot, hw.Topology
//     views, and the dense pruned shapes — writes to frozen-type fields
//     are legal only inside the //lama:mutator constructor/derivation
//     whitelist of the defining package, mutations reached through a
//     Snapshot (s.Cluster().Nodes[i] = ..., snapshot-held topology
//     mutator calls) are findings anywhere, and //lama:cow functions must
//     reference every field of their subject struct so a new field cannot
//     silently escape a copy or the placement-equivalence fingerprint.
//   - lockcheck: mutex discipline for engine/obs/rm/orte — fields
//     annotated //lama:guards <mu> must be accessed with the mutex held
//     (writes need the exclusive lock), locks must not be held across
//     blocking operations (channel send/receive outside select-default,
//     Observer.Emit, HTTP response writes), re-locking a held mutex and
//     copying a mutex-bearing struct by value are reported.
//   - golifecycle: every `go` statement in engine/obs/orte/parallel needs
//     a provable join path — WaitGroup Add/Done pairing, termination by
//     ranging over a closable channel, or a ctx.Done() cancellation
//     select; fire-and-forget goroutines are findings.
//   - atomicmix: a field accessed through sync/atomic somewhere must be
//     accessed that way everywhere — mixed atomic and plain loads/stores
//     on one field are reported at the plain sites.
//
// Annotation syntax (line comments, attached to the annotated line or the
// line directly above; function-level kinds also attach to the doc
// comment, type-level kinds to the type declaration's doc comment):
//
//	//lama:hotpath                 marks a hot-path root for `hotpath`
//	//lama:coldpath <reason>       stops the hot-path walk at a callee
//	//lama:frozen                  marks a struct type published-immutable
//	//lama:mutator                 admits a function to its package's frozen-type write whitelist
//	//lama:cow <Type>              requires the function to reference every field of Type
//	//lama:guards <mutex>          names the sibling mutex guarding a struct field
//	//lama:locked <reason>         documents a function called with the lock already held
//	//lama:alloc-ok <reason>       accepts one allocation site on the hot path
//	//lama:nondet-ok <reason>      accepts one mapiter/nodeterm finding
//	//lama:mutation-ok <reason>    accepts one snapfrozen finding
//	//lama:lock-ok <reason>        accepts one lockcheck finding
//	//lama:join-ok <reason>        accepts one golifecycle finding
//	//lama:atomic-ok <reason>      accepts one atomicmix finding
//
// Suppressions require a reason; a bare annotation is itself reported.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Version identifies the analyzer suite; it is recorded by lamabench's
// lint provenance field and printed by `lamavet -V=full`. Bump it when an
// analyzer's findings change.
const Version = "lamavet/3"

// Analyzer is one named static check.
type Analyzer struct {
	// Name is the check's identifier, used in diagnostics and flags.
	Name string
	// Doc is a one-paragraph description.
	Doc string
	// Run analyzes one package.
	Run func(*Pass) error
	// Finish, if non-nil, is invoked once after every package has been
	// analyzed — whole-program checks (obsvocab's dead-entry detection)
	// report from here. Drivers analyzing only a slice of the repository
	// (fixtures, single packages) skip it.
	Finish func(report func(Diagnostic))
}

// Pass carries one package's worth of inputs to an Analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Annot     *Annotations
	// Report delivers one diagnostic.
	Report func(Diagnostic)
	// ReportSuppression, if non-nil, records every reasoned suppression an
	// analyzer honored, so drivers can surface accepted exemptions (the
	// lamavet -json "suppressions" array) without re-scanning the tree.
	ReportSuppression func(Suppression)
}

// Reportf reports a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	if d.Pos.Filename == "" {
		return fmt.Sprintf("%s: %s", d.Analyzer, d.Message)
	}
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Suppression is one reasoned //lama:*-ok annotation an analyzer honored:
// a finding that exists in the tree but is accepted, with its recorded
// justification. lamavet -json reports these so CI can audit the exemption
// set without grepping for annotations.
type Suppression struct {
	Analyzer string
	Kind     string
	Reason   string
	Pos      token.Position
}

// Suite returns a fresh instance of every analyzer, in reporting order.
// Instances carry per-run state (obsvocab accumulates the emission set),
// so drivers must not share a suite between runs.
func Suite() []*Analyzer {
	return []*Analyzer{
		MapIter(), NoDeterm(), ObsVocab(), HotPath(), CtxFirst(),
		SnapFrozen(), LockCheck(), GoLifecycle(), AtomicMix(),
	}
}

// RunPackages loads the packages matching patterns (resolved relative to
// dir, "" meaning the current directory) and applies every analyzer of the
// suite to each, returning all diagnostics sorted by position together
// with every reasoned suppression the analyzers honored. Finish hooks run
// when finish is true — pass true only when the patterns cover the whole
// module, since whole-program checks are meaningless on a slice of it.
func RunPackages(dir string, patterns []string, suite []*Analyzer, finish bool) ([]Diagnostic, []Suppression, error) {
	loader := NewLoader(dir)
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		return nil, nil, err
	}
	var diags []Diagnostic
	var sups []Suppression
	report := func(d Diagnostic) { diags = append(diags, d) }
	for _, pkg := range pkgs {
		for _, a := range suite {
			pass := pkg.Pass(a, report)
			pass.ReportSuppression = func(s Suppression) { sups = append(sups, s) }
			if err := a.Run(pass); err != nil {
				return diags, sups, fmt.Errorf("%s: %s: %v", a.Name, pkg.PkgPath, err)
			}
		}
	}
	if finish {
		for _, a := range suite {
			if a.Finish != nil {
				a.Finish(report)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	sort.Slice(sups, func(i, j int) bool {
		a, b := sups[i], sups[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		return a.Pos.Line < b.Pos.Line
	})
	return diags, sups, nil
}

// DeterministicPkgNames are the package names whose outputs must be
// bit-reproducible: the mapping engine and every placement policy the
// golden-equivalence and repeated-run tests pin. mapiter and nodeterm
// enforce only inside these.
var DeterministicPkgNames = map[string]bool{
	"core":       true,
	"place":      true,
	"treematch":  true,
	"baseline":   true,
	"torus":      true,
	"rankfile":   true,
	"reorder":    true,
	"permute":    true,
	"hw":         true,
	"faultaware": true,
	"netorder":   true,
	"commpat":    true,
	"engine":     true,
}

// deterministic reports whether the pass's package is part of the
// deterministic set (matched by package name so analysistest fixtures can
// opt in by naming themselves after a deterministic package).
func deterministic(pkg *types.Package) bool {
	return pkg != nil && DeterministicPkgNames[pkg.Name()]
}
