// Package analysis is lamavet's static-analysis suite: a small,
// dependency-free re-implementation of the go/analysis model (Analyzer,
// Pass, Diagnostic) on top of the standard library's go/parser and
// go/types, plus the four repository-specific analyzers that turn this
// repo's runtime-tested invariants into compile-time guarantees:
//
//   - mapiter: no map-iteration order may reach a return value, a slice
//     append, or an event emission inside the deterministic packages —
//     the paper's 9!-permutation layout sweeps and reproducible rankfiles
//     only hold if mapping is bit-deterministic, a property the treematch
//     partitioner once violated through a map-range tie-break.
//   - nodeterm: the deterministic packages must not read wall clocks,
//     the shared math/rand source, or the environment, except through
//     injected options (an explicit seed, an Observer clock) or under an
//     annotated exemption.
//   - obsvocab: every (source, name) event pair handed to Observer.Emit,
//     and every literal phase-span label, must come from the canonical
//     vocabulary table in internal/obs/vocab.go; the table must not carry
//     dead entries.
//   - hotpath: functions annotated //lama:hotpath, and everything they
//     statically call within their package, must be free of allocation
//     sources (fmt formatting, map/slice composite literals, un-hinted
//     append growth, capturing closures, implicit interface boxing) —
//     the static form of TestMapAllocationsSteadyState's 3-allocs/op pin.
//
// Annotation syntax (line comments, attached to the annotated line or the
// line directly above; //lama:hotpath and //lama:coldpath also attach to
// a function's doc comment):
//
//	//lama:hotpath                 marks a hot-path root for `hotpath`
//	//lama:coldpath <reason>       stops the hot-path walk at a callee
//	//lama:alloc-ok <reason>       accepts one allocation site on the hot path
//	//lama:nondet-ok <reason>      accepts one mapiter/nodeterm finding
//
// Suppressions require a reason; a bare annotation is itself reported.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Version identifies the analyzer suite; it is recorded by lamabench's
// lint provenance field and printed by `lamavet -V=full`. Bump it when an
// analyzer's findings change.
const Version = "lamavet/2"

// Analyzer is one named static check.
type Analyzer struct {
	// Name is the check's identifier, used in diagnostics and flags.
	Name string
	// Doc is a one-paragraph description.
	Doc string
	// Run analyzes one package.
	Run func(*Pass) error
	// Finish, if non-nil, is invoked once after every package has been
	// analyzed — whole-program checks (obsvocab's dead-entry detection)
	// report from here. Drivers analyzing only a slice of the repository
	// (fixtures, single packages) skip it.
	Finish func(report func(Diagnostic))
}

// Pass carries one package's worth of inputs to an Analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Annot     *Annotations
	// Report delivers one diagnostic.
	Report func(Diagnostic)
}

// Reportf reports a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	if d.Pos.Filename == "" {
		return fmt.Sprintf("%s: %s", d.Analyzer, d.Message)
	}
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Suite returns a fresh instance of every analyzer, in reporting order.
// Instances carry per-run state (obsvocab accumulates the emission set),
// so drivers must not share a suite between runs.
func Suite() []*Analyzer {
	return []*Analyzer{MapIter(), NoDeterm(), ObsVocab(), HotPath(), CtxFirst()}
}

// RunPackages loads the packages matching patterns (resolved relative to
// dir, "" meaning the current directory) and applies every analyzer of the
// suite to each, returning all diagnostics sorted by position. Finish
// hooks run when finish is true — pass true only when the patterns cover
// the whole module, since whole-program checks are meaningless on a
// slice of it.
func RunPackages(dir string, patterns []string, suite []*Analyzer, finish bool) ([]Diagnostic, error) {
	loader := NewLoader(dir)
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		return nil, err
	}
	var diags []Diagnostic
	report := func(d Diagnostic) { diags = append(diags, d) }
	for _, pkg := range pkgs {
		for _, a := range suite {
			if err := a.Run(pkg.Pass(a, report)); err != nil {
				return diags, fmt.Errorf("%s: %s: %v", a.Name, pkg.PkgPath, err)
			}
		}
	}
	if finish {
		for _, a := range suite {
			if a.Finish != nil {
				a.Finish(report)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// DeterministicPkgNames are the package names whose outputs must be
// bit-reproducible: the mapping engine and every placement policy the
// golden-equivalence and repeated-run tests pin. mapiter and nodeterm
// enforce only inside these.
var DeterministicPkgNames = map[string]bool{
	"core":       true,
	"place":      true,
	"treematch":  true,
	"baseline":   true,
	"torus":      true,
	"rankfile":   true,
	"reorder":    true,
	"permute":    true,
	"hw":         true,
	"faultaware": true,
	"netorder":   true,
	"commpat":    true,
	"engine":     true,
}

// deterministic reports whether the pass's package is part of the
// deterministic set (matched by package name so analysistest fixtures can
// opt in by naming themselves after a deterministic package).
func deterministic(pkg *types.Package) bool {
	return pkg != nil && DeterministicPkgNames[pkg.Name()]
}
