package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Annotation kinds. See the package documentation for the syntax.
const (
	AnnotHotpath  = "hotpath"
	AnnotColdpath = "coldpath"
	AnnotAllocOK  = "alloc-ok"
	AnnotNondetOK = "nondet-ok"

	// snapfrozen (lamavet/3) vocabulary: //lama:frozen marks a struct type
	// as published-immutable, //lama:mutator marks a function of the
	// defining package as part of its constructor/derivation whitelist,
	// //lama:cow <Type> marks a clone/derive/fingerprint function that must
	// reference every field of Type, and //lama:mutation-ok <reason>
	// accepts one mutation finding.
	AnnotFrozen     = "frozen"
	AnnotMutator    = "mutator"
	AnnotCow        = "cow"
	AnnotMutationOK = "mutation-ok"

	// lockcheck vocabulary: //lama:guards <mutex> on a struct field names
	// the sibling mutex that guards it, //lama:locked <reason> documents
	// that a function is only called with the relevant lock held, and
	// //lama:lock-ok <reason> accepts one locking finding.
	AnnotGuards = "guards"
	AnnotLocked = "locked"
	AnnotLockOK = "lock-ok"

	// golifecycle: //lama:join-ok <reason> accepts one fire-and-forget
	// goroutine whose join path the analyzer cannot prove.
	AnnotJoinOK = "join-ok"

	// atomicmix: //lama:atomic-ok <reason> accepts one mixed
	// atomic-and-plain field access.
	AnnotAtomicOK = "atomic-ok"
)

// annotPrefix introduces a lamavet annotation comment (no space after
// "//", in the style of //go: directives).
const annotPrefix = "//lama:"

// Annotation is one parsed //lama: comment.
type Annotation struct {
	Kind   string
	Reason string
	File   string
	Line   int
}

// Annotations indexes every //lama: comment of a package by file and
// line, so analyzers can look up suppressions next to a finding.
type Annotations struct {
	byLine map[fileLine][]*Annotation
}

type fileLine struct {
	file string
	line int
}

// scanAnnotations collects the //lama: comments of the files.
func scanAnnotations(fset *token.FileSet, files []*ast.File) *Annotations {
	a := &Annotations{byLine: map[fileLine][]*Annotation{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				ann := parseAnnotation(c.Text)
				if ann == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				ann.File, ann.Line = pos.Filename, pos.Line
				key := fileLine{pos.Filename, pos.Line}
				a.byLine[key] = append(a.byLine[key], ann)
			}
		}
	}
	return a
}

// parseAnnotation decodes "//lama:<kind> <reason>"; nil for non-lama
// comments. Unknown kinds are kept (analyzers report them as such when
// they appear where a known kind was expected).
func parseAnnotation(text string) *Annotation {
	if !strings.HasPrefix(text, annotPrefix) {
		return nil
	}
	body := strings.TrimPrefix(text, annotPrefix)
	kind, reason, _ := strings.Cut(body, " ")
	return &Annotation{Kind: strings.TrimSpace(kind), Reason: strings.TrimSpace(reason)}
}

// At returns the annotation of the given kind attached to pos: a comment
// on the same line (trailing) or on the line directly above.
func (a *Annotations) At(fset *token.FileSet, pos token.Pos, kind string) *Annotation {
	if a == nil || !pos.IsValid() {
		return nil
	}
	p := fset.Position(pos)
	for _, line := range []int{p.Line, p.Line - 1} {
		for _, ann := range a.byLine[fileLine{p.Filename, line}] {
			if ann.Kind == kind {
				return ann
			}
		}
	}
	return nil
}

// suppressed reports whether a finding at pos is suppressed by an
// annotation of the given kind carrying a reason. When the annotation is
// present but reasonless, the finding stands and the malformed annotation
// is additionally reported — suppressions must say why. Accepted
// suppressions are recorded through Pass.ReportSuppression so drivers
// (lamavet -json) can surface them alongside findings.
func suppressed(pass *Pass, pos token.Pos, kind string) bool {
	ann := pass.Annot.At(pass.Fset, pos, kind)
	if ann == nil {
		return false
	}
	if ann.Reason == "" {
		pass.Reportf(pos, "%s%s annotation requires a reason (\"%s%s <why this is safe>\")",
			annotPrefix, kind, annotPrefix, kind)
		return false
	}
	if pass.ReportSuppression != nil {
		pass.ReportSuppression(Suppression{
			Analyzer: pass.Analyzer.Name,
			Kind:     kind,
			Reason:   ann.Reason,
			Pos:      pass.Fset.Position(pos),
		})
	}
	return true
}

// typeAnnotation returns the annotation of the given kind attached to a
// type declaration: in the enclosing GenDecl's doc comment, the spec's own
// doc comment, or on the line of (or directly above) the spec.
func typeAnnotation(pass *Pass, decl *ast.GenDecl, spec *ast.TypeSpec, kind string) *Annotation {
	for _, doc := range []*ast.CommentGroup{decl.Doc, spec.Doc} {
		if doc == nil {
			continue
		}
		for _, c := range doc.List {
			if ann := parseAnnotation(c.Text); ann != nil && ann.Kind == kind {
				return ann
			}
		}
	}
	return pass.Annot.At(pass.Fset, spec.Pos(), kind)
}

// funcAnnotation returns the annotation of the given kind in a function
// declaration's doc comment, or attached to its first line.
func funcAnnotation(pass *Pass, decl *ast.FuncDecl, kind string) *Annotation {
	if decl.Doc != nil {
		for _, c := range decl.Doc.List {
			if ann := parseAnnotation(c.Text); ann != nil && ann.Kind == kind {
				return ann
			}
		}
	}
	return pass.Annot.At(pass.Fset, decl.Pos(), kind)
}

// funcAnnotations returns every annotation of the given kind attached to a
// function declaration — in its doc comment or on the declaration line
// itself. A function may carry several (a derive function that
// copy-on-writes more than one struct carries one //lama:cow per type).
// Annotations are read from the package index rather than re-parsed, so
// each physical comment yields exactly one Annotation.
func funcAnnotations(pass *Pass, decl *ast.FuncDecl, kind string) []*Annotation {
	if pass.Annot == nil {
		return nil
	}
	start := pass.Fset.Position(decl.Pos())
	first := start.Line - 1
	if decl.Doc != nil {
		first = pass.Fset.Position(decl.Doc.Pos()).Line
	}
	var anns []*Annotation
	for line := first; line <= start.Line; line++ {
		for _, ann := range pass.Annot.byLine[fileLine{start.Filename, line}] {
			if ann.Kind == kind {
				anns = append(anns, ann)
			}
		}
	}
	return anns
}
