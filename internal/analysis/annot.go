package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Annotation kinds. See the package documentation for the syntax.
const (
	AnnotHotpath  = "hotpath"
	AnnotColdpath = "coldpath"
	AnnotAllocOK  = "alloc-ok"
	AnnotNondetOK = "nondet-ok"
)

// annotPrefix introduces a lamavet annotation comment (no space after
// "//", in the style of //go: directives).
const annotPrefix = "//lama:"

// Annotation is one parsed //lama: comment.
type Annotation struct {
	Kind   string
	Reason string
	File   string
	Line   int
}

// Annotations indexes every //lama: comment of a package by file and
// line, so analyzers can look up suppressions next to a finding.
type Annotations struct {
	byLine map[fileLine][]*Annotation
}

type fileLine struct {
	file string
	line int
}

// scanAnnotations collects the //lama: comments of the files.
func scanAnnotations(fset *token.FileSet, files []*ast.File) *Annotations {
	a := &Annotations{byLine: map[fileLine][]*Annotation{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				ann := parseAnnotation(c.Text)
				if ann == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				ann.File, ann.Line = pos.Filename, pos.Line
				key := fileLine{pos.Filename, pos.Line}
				a.byLine[key] = append(a.byLine[key], ann)
			}
		}
	}
	return a
}

// parseAnnotation decodes "//lama:<kind> <reason>"; nil for non-lama
// comments. Unknown kinds are kept (analyzers report them as such when
// they appear where a known kind was expected).
func parseAnnotation(text string) *Annotation {
	if !strings.HasPrefix(text, annotPrefix) {
		return nil
	}
	body := strings.TrimPrefix(text, annotPrefix)
	kind, reason, _ := strings.Cut(body, " ")
	return &Annotation{Kind: strings.TrimSpace(kind), Reason: strings.TrimSpace(reason)}
}

// At returns the annotation of the given kind attached to pos: a comment
// on the same line (trailing) or on the line directly above.
func (a *Annotations) At(fset *token.FileSet, pos token.Pos, kind string) *Annotation {
	if a == nil || !pos.IsValid() {
		return nil
	}
	p := fset.Position(pos)
	for _, line := range []int{p.Line, p.Line - 1} {
		for _, ann := range a.byLine[fileLine{p.Filename, line}] {
			if ann.Kind == kind {
				return ann
			}
		}
	}
	return nil
}

// suppressed reports whether a finding at pos is suppressed by an
// annotation of the given kind carrying a reason. When the annotation is
// present but reasonless, the finding stands and the malformed annotation
// is additionally reported — suppressions must say why.
func suppressed(pass *Pass, pos token.Pos, kind string) bool {
	ann := pass.Annot.At(pass.Fset, pos, kind)
	if ann == nil {
		return false
	}
	if ann.Reason == "" {
		pass.Reportf(pos, "%s%s annotation requires a reason (\"%s%s <why this is safe>\")",
			annotPrefix, kind, annotPrefix, kind)
		return false
	}
	return true
}

// funcAnnotation returns the annotation of the given kind in a function
// declaration's doc comment, or attached to its first line.
func funcAnnotation(pass *Pass, decl *ast.FuncDecl, kind string) *Annotation {
	if decl.Doc != nil {
		for _, c := range decl.Doc.List {
			if ann := parseAnnotation(c.Text); ann != nil && ann.Kind == kind {
				return ann
			}
		}
	}
	return pass.Annot.At(pass.Fset, decl.Pos(), kind)
}
