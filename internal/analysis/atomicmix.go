package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicMix returns the mixed-synchronization analyzer (module-wide).
//
// A field that is accessed through sync/atomic anywhere must be accessed
// that way everywhere: one plain load racing an atomic store is undefined
// under the Go memory model even when "it's only a counter". The analyzer
// collects every field whose address is passed to a sync/atomic function
// (&s.f in atomic.AddInt64(&s.f, 1)) and reports every other selector of
// the same field — the plain sites, where the fix belongs.
//
// Fields of the typed atomic kinds (atomic.Bool, atomic.Int64, ...) are
// immune by construction: their only access path is method calls, so they
// never mix and never appear here — that is the service layer's preferred
// shape (RingSub.dropped, PhaseTimer.pprofLabels) and the analyzer's
// documented false-positive-free class. Deliberate plain access (a
// single-writer init before the struct is published) carries
// //lama:atomic-ok <reason>.
func AtomicMix() *Analyzer {
	a := &Analyzer{
		Name: "atomicmix",
		Doc:  "reports fields accessed both through sync/atomic and with plain loads/stores",
	}
	a.Run = func(pass *Pass) error {
		atomicFields := map[*types.Var]bool{}
		atomicSites := map[*ast.SelectorExpr]bool{}
		for _, file := range pass.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				f := calleeFunc(pass.TypesInfo, call)
				if f == nil || f.Pkg() == nil || f.Pkg().Path() != "sync/atomic" {
					return true
				}
				for _, arg := range call.Args {
					ue, ok := ast.Unparen(arg).(*ast.UnaryExpr)
					if !ok || ue.Op != token.AND {
						continue
					}
					sel, ok := ast.Unparen(ue.X).(*ast.SelectorExpr)
					if !ok {
						continue
					}
					if field := selectedField(pass.TypesInfo, sel); field != nil {
						atomicFields[field] = true
						atomicSites[sel] = true
					}
				}
				return true
			})
		}
		if len(atomicFields) == 0 {
			return nil
		}
		for _, file := range pass.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok || atomicSites[sel] {
					return true
				}
				field := selectedField(pass.TypesInfo, sel)
				if field == nil || !atomicFields[field] {
					return true
				}
				if suppressed(pass, sel.Pos(), AnnotAtomicOK) {
					return true
				}
				pass.Reportf(sel.Pos(),
					"field %s is accessed with sync/atomic elsewhere in this package; this plain access can race",
					field.Name())
				return true
			})
		}
		return nil
	}
	return a
}

// selectedField returns the struct field a selector denotes, or nil.
func selectedField(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	selection, ok := info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return nil
	}
	field, _ := selection.Obj().(*types.Var)
	return field
}
