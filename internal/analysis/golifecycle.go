package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoLifecycle returns the goroutine-lifecycle analyzer for the packages
// that spawn workers (engine, obs, orte, parallel — matched by package
// name so fixtures can opt in).
//
// Every `go` statement must have a provable join path, because a
// fire-and-forget goroutine in the placement service outlives the request
// (or the test) that spawned it and turns shutdown into a race. Accepted
// evidence, checked in the goroutine body:
//
//   - WaitGroup pairing: the body calls wg.Done() AND the enclosing
//     function calls Add on the same WaitGroup expression;
//   - channel-range termination: the body ranges over a channel, so
//     closing the channel joins the goroutine;
//   - context cancellation: the body receives from a context's Done()
//     channel.
//
// `go f(...)` with a named same-package callee is checked against f's
// declaration body with the same evidence (Add pairing is waived there:
// the conventional split puts Add at the spawn site and Done in the
// worker). Everything else — including goroutines joined through
// handshakes the analyzer cannot see — is a finding; the documented
// false-positive class carries //lama:join-ok <reason>.
func GoLifecycle() *Analyzer {
	a := &Analyzer{
		Name: "golifecycle",
		Doc:  "requires a provable join path for every go statement in the worker packages",
	}
	a.Run = func(pass *Pass) error {
		if pass.Pkg == nil || !goLifecyclePkgNames[pass.Pkg.Name()] {
			return nil
		}
		decls := packageFuncDecls(pass)
		for _, file := range pass.Files {
			for _, d := range file.Decls {
				decl, ok := d.(*ast.FuncDecl)
				if !ok || decl.Body == nil {
					continue
				}
				ast.Inspect(decl.Body, func(n ast.Node) bool {
					if g, ok := n.(*ast.GoStmt); ok {
						checkGoStmt(pass, decl, g, decls)
					}
					return true
				})
			}
		}
		return nil
	}
	return a
}

// goLifecyclePkgNames are the packages golifecycle analyzes.
var goLifecyclePkgNames = map[string]bool{
	"engine": true, "obs": true, "orte": true, "parallel": true,
}

// packageFuncDecls indexes the package's function declarations by their
// types object, so `go f()` can be resolved to f's body.
func packageFuncDecls(pass *Pass) map[*types.Func]*ast.FuncDecl {
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if f, ok := pass.TypesInfo.Defs[decl.Name].(*types.Func); ok {
				decls[f] = decl
			}
		}
	}
	return decls
}

// joinEvidence is what a goroutine body proves about its own termination.
type joinEvidence struct {
	doneBases []string // WaitGroup expressions the body calls Done on
	rangeChan bool     // body ranges over a channel
	ctxDone   bool     // body receives from a context Done() channel
}

func (ev joinEvidence) terminates() bool {
	return ev.rangeChan || ev.ctxDone
}

// checkGoStmt verifies one go statement's join path.
func checkGoStmt(pass *Pass, enclosing *ast.FuncDecl, g *ast.GoStmt, decls map[*types.Func]*ast.FuncDecl) {
	var body *ast.BlockStmt
	requireAdd := false
	switch fun := ast.Unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		body = fun.Body
		requireAdd = true // Add and Done must pair up in this function
	default:
		if f := calleeFunc(pass.TypesInfo, g.Call); f != nil {
			if decl, ok := decls[f]; ok && decl.Body != nil {
				body = decl.Body
			}
		}
	}
	if body == nil {
		reportNoJoin(pass, g)
		return
	}
	ev := collectJoinEvidence(pass, body)
	if ev.terminates() {
		return
	}
	if len(ev.doneBases) == 0 {
		reportNoJoin(pass, g)
		return
	}
	if !requireAdd {
		return // named worker: Done in the body is sufficient evidence
	}
	for _, base := range ev.doneBases {
		if callsAddOn(pass, enclosing.Body, base) {
			return
		}
	}
	if suppressed(pass, g.Pos(), AnnotJoinOK) {
		return
	}
	pass.Reportf(g.Pos(),
		"goroutine calls %s.Done() but the enclosing function never calls %s.Add",
		ev.doneBases[0], ev.doneBases[0])
}

// reportNoJoin emits the generic no-join-path finding.
func reportNoJoin(pass *Pass, g *ast.GoStmt) {
	if suppressed(pass, g.Pos(), AnnotJoinOK) {
		return
	}
	pass.Reportf(g.Pos(),
		"goroutine has no provable join path (WaitGroup Done, channel range, or ctx.Done select)")
}

// collectJoinEvidence scans a goroutine body for termination evidence.
func collectJoinEvidence(pass *Pass, body *ast.BlockStmt) joinEvidence {
	var ev joinEvidence
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if t := pass.TypesInfo.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					ev.rangeChan = true
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && isCtxDoneCall(pass.TypesInfo, n.X) {
				ev.ctxDone = true
			}
		case *ast.CallExpr:
			if base, ok := waitGroupCall(pass.TypesInfo, n, "Done"); ok {
				ev.doneBases = append(ev.doneBases, base)
			}
		}
		return true
	})
	return ev
}

// isCtxDoneCall reports whether e is a ctx.Done() call on a
// context.Context.
func isCtxDoneCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	f := calleeFunc(info, call)
	return f != nil && f.Name() == "Done" && f.Pkg() != nil && f.Pkg().Path() == "context"
}

// waitGroupCall decodes wg.Done()/wg.Add(n) into the WaitGroup base
// expression.
func waitGroupCall(info *types.Info, call *ast.CallExpr, method string) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return "", false
	}
	named := namedOf(info.TypeOf(sel.X))
	if named == nil || named.Obj().Pkg() == nil {
		return "", false
	}
	if named.Obj().Pkg().Path() != "sync" || named.Obj().Name() != "WaitGroup" {
		return "", false
	}
	return types.ExprString(sel.X), true
}

// callsAddOn reports whether the function body calls base.Add(...).
func callsAddOn(pass *Pass, body *ast.BlockStmt, base string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if b, ok := waitGroupCall(pass.TypesInfo, call, "Add"); ok && b == base {
				found = true
			}
		}
		return !found
	})
	return found
}
