package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// HotPath returns the hot-path allocation analyzer.
//
// TestMapAllocationsSteadyState pins the mapping engine's steady state at
// 3 allocs/op, but a benchmark only catches a regression after it lands.
// This analyzer turns the pin into a compile-time property: starting from
// every function annotated //lama:hotpath (Mapper.Map, the dense-tree
// claim path, the remap merge loop), it walks the static call graph
// within the package and reports the allocation sources go/analysis can
// see syntactically:
//
//   - fmt formatting calls (fmt.Sprintf and friends);
//   - map and slice composite literals;
//   - append calls that grow a local slice with no capacity-hinted make
//     (appends to struct fields are trusted: the engine's reusable state
//     is pre-sized by construction);
//   - function literals capturing local variables (they escape);
//   - implicit interface boxing of concrete call arguments.
//
// Two shapes are understood rather than flagged: error construction
// (fmt.Errorf / errors.New inside a return of an error-returning
// function) happens only on the failing exit, and functions annotated
// //lama:coldpath <reason> — one-off builds and per-run observability
// reporting — are barriers the walk does not cross. Individual accepted
// allocations (the per-run output slices) carry //lama:alloc-ok <reason>.
func HotPath() *Analyzer {
	a := &Analyzer{
		Name: "hotpath",
		Doc:  "reports allocation sources reachable from //lama:hotpath functions",
	}
	a.Run = func(pass *Pass) error {
		w := &hotWalker{
			pass:    pass,
			decls:   map[*types.Func]*ast.FuncDecl{},
			visited: map[*types.Func]bool{},
		}
		var roots []*ast.FuncDecl
		for _, file := range pass.Files {
			for _, d := range file.Decls {
				decl, ok := d.(*ast.FuncDecl)
				if !ok || decl.Body == nil {
					continue
				}
				fn, ok := pass.TypesInfo.Defs[decl.Name].(*types.Func)
				if !ok {
					continue
				}
				w.decls[fn] = decl
				if funcAnnotation(pass, decl, AnnotHotpath) != nil {
					roots = append(roots, decl)
				}
			}
		}
		for _, root := range roots {
			fn := pass.TypesInfo.Defs[root.Name].(*types.Func)
			w.walk(fn, funcName(fn))
		}
		return nil
	}
	return a
}

// hotWalker carries the DFS state of one package's hot-path walk.
type hotWalker struct {
	pass    *Pass
	decls   map[*types.Func]*ast.FuncDecl
	visited map[*types.Func]bool
}

// walk analyzes fn's body (once, whichever root reaches it first) and
// recurses into same-package callees.
func (w *hotWalker) walk(fn *types.Func, root string) {
	if w.visited[fn] {
		return
	}
	w.visited[fn] = true
	decl := w.decls[fn]
	if decl == nil {
		return
	}
	v := &hotVisitor{
		w:         w,
		root:      root,
		fn:        fn,
		decl:      decl,
		capHinted: capHintedLocals(w.pass.TypesInfo, decl),
		errorFn:   returnsError(w.pass.TypesInfo, fn),
	}
	v.visit(decl.Body, false)
}

// hotVisitor checks one function body.
type hotVisitor struct {
	w         *hotWalker
	root      string
	fn        *types.Func
	decl      *ast.FuncDecl
	capHinted map[types.Object]bool
	errorFn   bool
}

func (v *hotVisitor) reportf(pos ast.Node, format string, args ...any) {
	if suppressed(v.w.pass, pos.Pos(), AnnotAllocOK) {
		return
	}
	prefix := "hot path (//lama:hotpath " + v.root + ")"
	if own := funcName(v.fn); own != v.root {
		prefix += " via " + own
	}
	v.w.pass.Reportf(pos.Pos(), prefix+": "+format, args...)
}

// visit descends an AST subtree; errorExit is true inside a return
// statement of an error-returning function, where error construction is
// excused.
func (v *hotVisitor) visit(n ast.Node, errorExit bool) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			if v.errorFn && !errorExit {
				for _, res := range n.Results {
					v.visit(res, true)
				}
				return false
			}
		case *ast.FuncLit:
			if captured := capturedLocals(v.w.pass.TypesInfo, v.decl, n); len(captured) > 0 {
				v.reportf(n, "closure captures %s and escapes", strings.Join(captured, ", "))
			}
			// The literal's body runs on the same path; keep checking it.
			v.visit(n.Body, false)
			return false
		case *ast.CompositeLit:
			t := v.w.pass.TypesInfo.TypeOf(n)
			if isMapType(t) {
				v.reportf(n, "map composite literal allocates")
			} else if t != nil {
				if _, ok := t.Underlying().(*types.Slice); ok {
					v.reportf(n, "slice composite literal allocates")
				}
			}
		case *ast.CallExpr:
			return v.visitCall(n, errorExit)
		}
		return true
	})
}

// visitCall checks one call expression; the returned bool tells
// ast.Inspect whether to descend into the call's children.
func (v *hotVisitor) visitCall(call *ast.CallExpr, errorExit bool) bool {
	info := v.w.pass.TypesInfo
	if isBuiltin(info, call, "append") && len(call.Args) > 0 {
		v.checkAppend(call)
		return true
	}
	f := calleeFunc(info, call)
	if f == nil {
		return true // function values, builtins, conversions
	}
	if errorExit && isErrorCtor(f) {
		return false // constructing the error of a failing exit
	}
	if f.Pkg() != nil && f.Pkg().Path() == "fmt" && isFmtFormatter(f.Name()) {
		v.reportf(call, "%s.%s formats and allocates", f.Pkg().Name(), f.Name())
		return true
	}
	v.checkBoxing(call, f)
	if f.Pkg() == v.w.pass.Pkg {
		if callee := v.w.decls[f]; callee != nil {
			if funcAnnotation(v.w.pass, callee, AnnotColdpath) == nil {
				v.w.walk(f, v.root)
			}
		}
	}
	return true
}

// checkAppend flags appends that grow a fresh or un-hinted slice.
func (v *hotVisitor) checkAppend(call *ast.CallExpr) {
	base := ast.Unparen(call.Args[0])
	if _, ok := base.(*ast.SelectorExpr); ok {
		return // reusable state fields are pre-sized by construction
	}
	if id, ok := base.(*ast.Ident); ok {
		obj := v.w.pass.TypesInfo.ObjectOf(id)
		if obj == nil || v.capHinted[obj] {
			return
		}
		v.reportf(call, "append grows %s without a capacity hint", id.Name)
		return
	}
	v.reportf(call, "append to a fresh slice allocates")
}

// checkBoxing flags concrete arguments passed to interface parameters.
func (v *hotVisitor) checkBoxing(call *ast.CallExpr, f *types.Func) {
	sig, ok := f.Type().(*types.Signature)
	if !ok || call.Ellipsis.IsValid() {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil || !isInterfaceType(pt) {
			continue
		}
		tv := v.w.pass.TypesInfo.Types[arg]
		if tv.IsNil() || isInterfaceType(tv.Type) {
			continue
		}
		v.reportf(arg, "argument boxes %s into %s",
			types.TypeString(tv.Type, types.RelativeTo(v.w.pass.Pkg)),
			types.TypeString(pt, types.RelativeTo(v.w.pass.Pkg)))
	}
}

// capHintedLocals collects the local variables assigned a three-argument
// make — slices whose growth is explicitly budgeted.
func capHintedLocals(info *types.Info, decl *ast.FuncDecl) map[types.Object]bool {
	hinted := map[types.Object]bool{}
	mark := func(lhs ast.Expr, rhs ast.Expr) {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || !isBuiltin(info, call, "make") || len(call.Args) != 3 {
			return
		}
		if obj := identObject(info, lhs); obj != nil {
			hinted[obj] = true
		}
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					mark(n.Lhs[i], n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) == len(n.Values) {
				for i := range n.Names {
					mark(n.Names[i], n.Values[i])
				}
			}
		}
		return true
	})
	return hinted
}

// capturedLocals lists the enclosing function's local variables a
// function literal references.
func capturedLocals(info *types.Info, enclosing *ast.FuncDecl, lit *ast.FuncLit) []string {
	var names []string
	seen := map[types.Object]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := info.Uses[id].(*types.Var)
		if !ok || obj.IsField() || seen[obj] {
			return true
		}
		// Captured = declared inside the enclosing function but outside
		// the literal itself.
		if obj.Pos() >= enclosing.Pos() && obj.Pos() < enclosing.End() &&
			(obj.Pos() < lit.Pos() || obj.Pos() >= lit.End()) {
			seen[obj] = true
			names = append(names, obj.Name())
		}
		return true
	})
	return names
}

// returnsError reports whether fn's results include an error.
func returnsError(info *types.Info, fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if named, ok := sig.Results().At(i).Type().(*types.Named); ok &&
			named.Obj().Pkg() == nil && named.Obj().Name() == "error" {
			return true
		}
	}
	return false
}

// isErrorCtor reports the error-construction functions excused inside a
// failing return.
func isErrorCtor(f *types.Func) bool {
	if f.Pkg() == nil {
		return false
	}
	return (f.Pkg().Path() == "fmt" && f.Name() == "Errorf") ||
		(f.Pkg().Path() == "errors" && f.Name() == "New")
}

// isFmtFormatter reports fmt's formatting/printing functions.
func isFmtFormatter(name string) bool {
	for _, prefix := range []string{"Sprint", "Print", "Fprint", "Append"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return name == "Errorf"
}
