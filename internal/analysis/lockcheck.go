package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LockCheck returns the mutex-discipline analyzer for the service-layer
// packages (engine, obs, rm, orte — matched by package name so fixtures
// can opt in).
//
// Guarded fields are declared, not inferred: a struct field annotated
// `//lama:guards <mutex>` names the sibling sync.Mutex/RWMutex that
// protects it. The analyzer then walks every function with a linear
// lock-state simulation (branches fork the state, sequential statements
// thread it) and reports:
//
//   - access to a guarded field while its mutex is provably not held in
//     the enclosing function — functions whose name ends in "Locked", or
//     annotated //lama:locked <reason>, are exempt (their contract is
//     that the caller holds the lock);
//   - writes to a guarded field under RLock — a read lock only licenses
//     loads;
//   - locking a mutex already held by this function (self-deadlock);
//   - blocking operations while any lock is held: channel sends and
//     receives outside a select with a default arm, select without
//     default, Observer.Emit (fans out to sinks that may block),
//     http.ResponseWriter writes, and time.Sleep;
//   - passing or receiving a Mutex-bearing struct by value, which copies
//     the lock (and its held state) out from under its other users.
//
// The simulation is intraprocedural; closures run with an empty lock set.
// A closure that relies on its caller's lock is therefore the documented
// false-positive class and carries //lama:lock-ok <reason>.
func LockCheck() *Analyzer {
	a := &Analyzer{
		Name: "lockcheck",
		Doc:  "enforces //lama:guards mutex discipline in the service-layer packages",
	}
	a.Run = func(pass *Pass) error {
		if pass.Pkg == nil || !lockCheckPkgNames[pass.Pkg.Name()] {
			return nil
		}
		v := &lockVisitor{pass: pass, guards: map[*types.Var]string{}}
		for _, file := range pass.Files {
			v.collectGuards(file)
		}
		for _, file := range pass.Files {
			for _, d := range file.Decls {
				decl, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				v.checkSignature(decl)
				if decl.Body == nil {
					continue
				}
				v.exempt = strings.HasSuffix(decl.Name.Name, "Locked") ||
					lockedAnnotation(pass, decl)
				v.walk(decl.Body.List, lockState{})
			}
		}
		return nil
	}
	return a
}

// lockCheckPkgNames are the packages lockcheck analyzes, by package name.
var lockCheckPkgNames = map[string]bool{
	"engine": true, "obs": true, "rm": true, "orte": true,
}

// lockedAnnotation reports whether the function carries a reasoned
// //lama:locked annotation (callers hold the lock); a reasonless one is
// itself a finding.
func lockedAnnotation(pass *Pass, decl *ast.FuncDecl) bool {
	ann := funcAnnotation(pass, decl, AnnotLocked)
	if ann == nil {
		return false
	}
	if ann.Reason == "" {
		pass.Reportf(decl.Pos(),
			"//lama:locked annotation requires a reason naming the lock the caller holds")
		return false
	}
	if pass.ReportSuppression != nil {
		pass.ReportSuppression(Suppression{
			Analyzer: pass.Analyzer.Name,
			Kind:     AnnotLocked,
			Reason:   ann.Reason,
			Pos:      pass.Fset.Position(decl.Pos()),
		})
	}
	return true
}

// lockMode is how a mutex is held.
type lockMode int

const (
	lockExcl lockMode = iota + 1 // Lock
	lockRead                     // RLock
)

// lockState maps a canonical mutex expression ("s.mu") to how it is held
// at the current program point.
type lockState map[string]lockMode

func (st lockState) clone() lockState {
	c := make(lockState, len(st))
	for k, v := range st {
		c[k] = v
	}
	return c
}

// anyHeld returns a held mutex name for blocking-operation diagnostics.
func (st lockState) anyHeld() (string, bool) {
	for k := range st {
		return k, true
	}
	return "", false
}

type lockVisitor struct {
	pass   *Pass
	guards map[*types.Var]string // guarded field -> sibling mutex name
	exempt bool                  // current function: *Locked / //lama:locked
}

// collectGuards records the file's //lama:guards field annotations and
// validates that the named mutex is a sibling field.
func (v *lockVisitor) collectGuards(file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		stct, ok := n.(*ast.StructType)
		if !ok || stct.Fields == nil {
			return true
		}
		for _, field := range stct.Fields.List {
			ann := v.pass.Annot.At(v.pass.Fset, field.Pos(), AnnotGuards)
			if ann == nil {
				continue
			}
			if ann.Reason == "" {
				v.pass.Reportf(field.Pos(),
					"//lama:guards annotation requires the guarding mutex name (\"//lama:guards <mutex>\")")
				continue
			}
			if !structHasMutex(stct, ann.Reason, v.pass.TypesInfo) {
				v.pass.Reportf(field.Pos(),
					"//lama:guards %s: no sibling sync.Mutex or sync.RWMutex field named %s",
					ann.Reason, ann.Reason)
				continue
			}
			for _, name := range field.Names {
				if obj, ok := v.pass.TypesInfo.Defs[name].(*types.Var); ok {
					v.guards[obj] = ann.Reason
				}
			}
		}
		return true
	})
}

// structHasMutex reports whether the struct literally declares a
// sync.Mutex or sync.RWMutex field with the given name.
func structHasMutex(stct *ast.StructType, name string, info *types.Info) bool {
	for _, field := range stct.Fields.List {
		for _, n := range field.Names {
			if n.Name != name {
				continue
			}
			return isMutexType(info.TypeOf(field.Type))
		}
	}
	return false
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex (possibly
// behind a pointer).
func isMutexType(t types.Type) bool {
	named := namedOf(t)
	if named == nil || named.Obj().Pkg() == nil {
		return false
	}
	if named.Obj().Pkg().Path() != "sync" {
		return false
	}
	return named.Obj().Name() == "Mutex" || named.Obj().Name() == "RWMutex"
}

// checkSignature reports parameters and receivers that copy a
// mutex-bearing struct by value.
func (v *lockVisitor) checkSignature(decl *ast.FuncDecl) {
	check := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			t := v.pass.TypesInfo.TypeOf(field.Type)
			if t == nil {
				continue
			}
			if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
				continue
			}
			if name, ok := bearsMutex(t); ok {
				if suppressed(v.pass, field.Pos(), AnnotLockOK) {
					continue
				}
				v.pass.Reportf(field.Pos(),
					"%s copies lock-bearing %s by value; pass a pointer", decl.Name.Name, name)
			}
		}
	}
	check(decl.Recv)
	check(decl.Type.Params)
}

// bearsMutex reports whether t is a struct type that directly contains a
// mutex (or is itself one).
func bearsMutex(t types.Type) (string, bool) {
	if isMutexType(t) {
		return types.TypeString(t, nil), true
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return "", false
	}
	for i := 0; i < st.NumFields(); i++ {
		if isMutexType(st.Field(i).Type()) {
			return types.TypeString(t, nil), true
		}
	}
	return "", false
}

// mutexCall decodes m.Lock()/RLock()/Unlock()/RUnlock() into the canonical
// mutex key and method name.
func (v *lockVisitor) mutexCall(call *ast.CallExpr) (key, method string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	if !isMutexType(v.pass.TypesInfo.TypeOf(sel.X)) {
		return "", "", false
	}
	return types.ExprString(sel.X), sel.Sel.Name, true
}

// walk simulates the statements with the current lock state. st is
// threaded through sequential statements; nested control flow forks a
// clone so a lock taken in one branch does not leak into its sibling.
func (v *lockVisitor) walk(stmts []ast.Stmt, st lockState) {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
				if key, method, ok := v.mutexCall(call); ok {
					v.applyMutexOp(call, key, method, st)
					continue
				}
			}
			v.checkExpr(s.X, st)
		case *ast.DeferStmt:
			// A deferred Unlock keeps the lock held to function end, which
			// the fall-through state already models; other deferred calls
			// run with an unknown state, so only their argument
			// expressions are checked.
			if _, method, ok := v.mutexCall(s.Call); ok &&
				(method == "Unlock" || method == "RUnlock") {
				continue
			}
			for _, arg := range s.Call.Args {
				v.checkExpr(arg, st)
			}
			v.checkExpr(s.Call.Fun, lockState{})
		case *ast.AssignStmt:
			for _, rhs := range s.Rhs {
				v.checkExpr(rhs, st)
			}
			for _, lhs := range s.Lhs {
				v.checkWrite(lhs, st)
			}
		case *ast.IncDecStmt:
			v.checkWrite(s.X, st)
		case *ast.SendStmt:
			if key, held := st.anyHeld(); held {
				v.reportBlocking(s.Pos(), "channel send", key)
			}
			v.checkExpr(s.Chan, st)
			v.checkExpr(s.Value, st)
		case *ast.IfStmt:
			if s.Init != nil {
				v.walk([]ast.Stmt{s.Init}, st)
			}
			v.checkExpr(s.Cond, st)
			v.walk(s.Body.List, st.clone())
			if s.Else != nil {
				v.walk([]ast.Stmt{s.Else}, st.clone())
			}
		case *ast.ForStmt:
			if s.Init != nil {
				v.walk([]ast.Stmt{s.Init}, st)
			}
			if s.Cond != nil {
				v.checkExpr(s.Cond, st)
			}
			body := st.clone()
			v.walk(s.Body.List, body)
			if s.Post != nil {
				v.walk([]ast.Stmt{s.Post}, body)
			}
		case *ast.RangeStmt:
			v.checkExpr(s.X, st)
			v.walk(s.Body.List, st.clone())
		case *ast.SwitchStmt:
			if s.Init != nil {
				v.walk([]ast.Stmt{s.Init}, st)
			}
			if s.Tag != nil {
				v.checkExpr(s.Tag, st)
			}
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					for _, e := range cc.List {
						v.checkExpr(e, st)
					}
					v.walk(cc.Body, st.clone())
				}
			}
		case *ast.TypeSwitchStmt:
			if s.Init != nil {
				v.walk([]ast.Stmt{s.Init}, st)
			}
			v.walk([]ast.Stmt{s.Assign}, st)
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					v.walk(cc.Body, st.clone())
				}
			}
		case *ast.SelectStmt:
			v.walkSelect(s, st)
		case *ast.BlockStmt:
			v.walk(s.List, st)
		case *ast.GoStmt:
			for _, arg := range s.Call.Args {
				v.checkExpr(arg, st)
			}
			v.checkExpr(s.Call.Fun, lockState{})
		case *ast.ReturnStmt:
			for _, r := range s.Results {
				v.checkExpr(r, st)
			}
		case *ast.LabeledStmt:
			v.walk([]ast.Stmt{s.Stmt}, st)
		default:
			if stmt != nil {
				ast.Inspect(stmt, func(n ast.Node) bool {
					if e, ok := n.(ast.Expr); ok {
						v.checkExpr(e, st)
						return false
					}
					return true
				})
			}
		}
	}
}

// applyMutexOp updates the lock state for a Lock-family call.
func (v *lockVisitor) applyMutexOp(call *ast.CallExpr, key, method string, st lockState) {
	switch method {
	case "Lock", "RLock":
		if _, held := st[key]; held {
			if !suppressed(v.pass, call.Pos(), AnnotLockOK) {
				v.pass.Reportf(call.Pos(),
					"%s locked again while already held in this function (self-deadlock)", key)
			}
		}
		if method == "Lock" {
			st[key] = lockExcl
		} else {
			st[key] = lockRead
		}
	case "Unlock", "RUnlock":
		delete(st, key)
	}
}

// walkSelect handles select statements: one with a default arm is
// non-blocking; one without blocks and must not run under a lock.
func (v *lockVisitor) walkSelect(s *ast.SelectStmt, st lockState) {
	hasDefault := false
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		if key, held := st.anyHeld(); held {
			v.reportBlocking(s.Pos(), "select without a default arm", key)
		}
	}
	for _, c := range s.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		if cc.Comm != nil {
			// The comm op itself is non-blocking by select semantics (with
			// default) or already reported (without); check its operands
			// for guarded-field access only.
			ast.Inspect(cc.Comm, func(n ast.Node) bool {
				if sel, ok := n.(*ast.SelectorExpr); ok {
					v.checkGuardedSel(sel, st, false)
				}
				return true
			})
		}
		v.walk(cc.Body, st.clone())
	}
}

// checkWrite checks an assignment target: the selector being assigned is
// a write; everything below it is a read.
func (v *lockVisitor) checkWrite(lhs ast.Expr, st lockState) {
	e := ast.Unparen(lhs)
	for {
		switch x := e.(type) {
		case *ast.IndexExpr:
			v.checkExpr(x.Index, st)
			e = ast.Unparen(x.X)
			continue
		case *ast.StarExpr:
			e = ast.Unparen(x.X)
			continue
		}
		break
	}
	if sel, ok := e.(*ast.SelectorExpr); ok {
		v.checkGuardedSel(sel, st, true)
		v.checkExpr(sel.X, st)
		return
	}
	v.checkExpr(e, st)
}

// checkExpr scans an expression for guarded-field reads and blocking
// operations under a held lock. Closures run with an empty lock state —
// the analyzer cannot see who calls them.
func (v *lockVisitor) checkExpr(expr ast.Expr, st lockState) {
	if expr == nil {
		return
	}
	ast.Inspect(expr, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			v.walk(n.Body.List, lockState{})
			return false
		case *ast.SelectorExpr:
			v.checkGuardedSel(n, st, false)
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				if key, held := st.anyHeld(); held {
					v.reportBlocking(n.Pos(), "channel receive", key)
				}
			}
		case *ast.CallExpr:
			v.checkBlockingCall(n, st)
		}
		return true
	})
}

// checkGuardedSel reports access to a guarded field without its mutex.
func (v *lockVisitor) checkGuardedSel(sel *ast.SelectorExpr, st lockState, write bool) {
	selection, ok := v.pass.TypesInfo.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return
	}
	field, ok := selection.Obj().(*types.Var)
	if !ok {
		return
	}
	guard, guarded := v.guards[field]
	if !guarded || v.exempt {
		return
	}
	key := types.ExprString(sel.X) + "." + guard
	mode, held := st[key]
	if !held {
		if suppressed(v.pass, sel.Pos(), AnnotLockOK) {
			return
		}
		v.pass.Reportf(sel.Pos(),
			"%s.%s is guarded by %s but accessed without holding it",
			types.ExprString(sel.X), field.Name(), key)
		return
	}
	if write && mode == lockRead {
		if suppressed(v.pass, sel.Pos(), AnnotLockOK) {
			return
		}
		v.pass.Reportf(sel.Pos(),
			"%s.%s is guarded by %s but written under RLock; writes need the exclusive Lock",
			types.ExprString(sel.X), field.Name(), key)
	}
}

// checkBlockingCall reports calls that can block indefinitely while a
// lock is held: Observer.Emit, http.ResponseWriter writes, time.Sleep.
func (v *lockVisitor) checkBlockingCall(call *ast.CallExpr, st lockState) {
	key, held := st.anyHeld()
	if !held {
		return
	}
	f := calleeFunc(v.pass.TypesInfo, call)
	if f == nil {
		return
	}
	switch {
	case obsMethod(f, "Emit"):
		v.reportBlocking(call.Pos(), "Observer.Emit", key)
	case pkgFunc(f, "time", "Sleep"):
		v.reportBlocking(call.Pos(), "time.Sleep", key)
	case isResponseWriterMethod(v.pass.TypesInfo, call):
		v.reportBlocking(call.Pos(), "http response write", key)
	}
}

// isResponseWriterMethod reports whether the call's receiver is an
// http.ResponseWriter.
func isResponseWriterMethod(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	named := namedOf(info.TypeOf(sel.X))
	if named == nil || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "net/http" && named.Obj().Name() == "ResponseWriter"
}

// reportBlocking reports one blocking-under-lock finding.
func (v *lockVisitor) reportBlocking(pos token.Pos, op, key string) {
	if suppressed(v.pass, pos, AnnotLockOK) {
		return
	}
	v.pass.Reportf(pos, "%s while holding %s; release the lock first", op, key)
}
