package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// calleeFunc resolves a call expression to the *types.Func it statically
// invokes (package function, method, or interface method), or nil for
// calls of function values, builtins, and conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// isBuiltin reports whether the call invokes the named builtin.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// pkgFunc reports whether f is the package-level function pkg.name
// (methods excluded).
func pkgFunc(f *types.Func, pkgPath, name string) bool {
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != pkgPath || f.Name() != name {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// obsMethod reports whether f is a method named name on a type of a
// package named "obs" (matched by package name, not path, so fixtures can
// exercise the check against the real lama/internal/obs package from any
// import path).
func obsMethod(f *types.Func, name string) bool {
	if f == nil || f.Name() != name {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return f.Pkg() != nil && f.Pkg().Name() == "obs"
}

// constString returns the compile-time constant string value of an
// expression, or ("", false) when the expression is not a string
// constant.
func constString(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// isMapType reports whether t's underlying type is a map.
func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// isInterfaceType reports whether t's underlying type is an interface.
func isInterfaceType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

// funcName renders a *types.Func for diagnostics: "Name" for package
// functions, "(Recv).Name" for methods.
func funcName(f *types.Func) string {
	sig, ok := f.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		return "(" + types.TypeString(sig.Recv().Type(), types.RelativeTo(f.Pkg())) + ")." + f.Name()
	}
	return f.Name()
}

// stmtLists invokes fn for every statement list of the file (block
// bodies, case clauses, comm clauses), so analyses can see a statement
// together with the statements following it.
func stmtLists(file *ast.File, fn func([]ast.Stmt)) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BlockStmt:
			fn(n.List)
		case *ast.CaseClause:
			fn(n.Body)
		case *ast.CommClause:
			fn(n.Body)
		}
		return true
	})
}
