package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SnapFrozen returns the published-immutability analyzer.
//
// The placement service hands every concurrent request a pointer into
// shared, supposedly-frozen state: a cluster.Snapshot, the hw.Topology
// trees it shares with sibling snapshots, and the dense pruned shapes the
// mapping engine memoizes across mappers. One stray write corrupts every
// holder at once — and, because topology mutations are also how the
// generation-counter cache invalidation works, a direct field write can
// leave caches silently serving pre-mutation state. The analyzer enforces
// three rules:
//
//   - Writes into a frozen type's fields or elements (cluster.Snapshot,
//     hw.Topology, hw.Object, and any in-package struct annotated
//     //lama:frozen) are legal only inside functions annotated
//     //lama:mutator — the constructor/derivation whitelist (SnapshotOf,
//     FailNode/FailPUs/AppendNode, hw's mutating methods, the dense-tree
//     builders).
//   - Calling a topology-mutating method (SetAvailable, Restrict,
//     Offline, RemoveObject) on a receiver reached THROUGH a
//     cluster.Snapshot is a finding everywhere: snapshots share node and
//     topology pointers with their siblings, so the only legal mutation
//     is deriving a copy-on-write child. Mutating a scratch clone that
//     was never reached through a snapshot is fine and not reported.
//   - A function annotated //lama:cow <Type> must reference every field
//     of that struct (the field-exhaustiveness check): clone/derive/Sig
//     functions carry it, so adding a struct field cannot silently escape
//     the copy or the placement-equivalence fingerprint. Deliberate
//     exclusions are expressed as explicit references (`_ = n.Name`).
//
// Individual accepted mutations (memoized cache fills such as
// Object.PUSet) carry //lama:mutation-ok <reason>.
func SnapFrozen() *Analyzer {
	a := &Analyzer{
		Name: "snapfrozen",
		Doc:  "reports writes into published-immutable types outside the //lama:mutator whitelist",
	}
	a.Run = func(pass *Pass) error {
		v := &frozenVisitor{pass: pass, frozen: map[*types.TypeName]bool{}}
		for _, file := range pass.Files {
			v.collectFrozen(file)
		}
		for _, file := range pass.Files {
			for _, d := range file.Decls {
				decl, ok := d.(*ast.FuncDecl)
				if !ok || decl.Body == nil {
					continue
				}
				v.checkCow(decl)
				if funcAnnotation(pass, decl, AnnotMutator) != nil {
					continue // whitelisted constructor/derivation
				}
				v.checkBody(decl.Body)
			}
		}
		return nil
	}
	return a
}

// frozenBuiltin names the cross-package frozen types by (package name,
// type name). Export data carries no comments, so the service layer's
// shared types are declared here rather than via //lama:frozen.
var frozenBuiltin = map[[2]string]bool{
	{"cluster", "Snapshot"}: true,
	{"hw", "Topology"}:      true,
	{"hw", "Object"}:        true,
}

// snapshotContainers are the frozen types whose reach taints mutating
// method calls: everything found through one of these is shared with
// sibling snapshots, so even method-mediated mutation is illegal.
var snapshotContainers = map[[2]string]bool{
	{"cluster", "Snapshot"}: true,
}

// frozenMutatingMethods are the in-place mutating methods of frozen
// types, keyed like frozenBuiltin.
var frozenMutatingMethods = map[[2]string]map[string]bool{
	{"hw", "Topology"}: {
		"SetAvailable": true, "Restrict": true, "Offline": true,
		"RemoveObject": true, "UnmarshalJSON": true,
		"reindex": true, "bump": true,
	},
}

type frozenVisitor struct {
	pass   *Pass
	frozen map[*types.TypeName]bool // in-package //lama:frozen types
}

// collectFrozen records the file's //lama:frozen-annotated struct types.
func (v *frozenVisitor) collectFrozen(file *ast.File) {
	for _, d := range file.Decls {
		gd, ok := d.(*ast.GenDecl)
		if !ok || gd.Tok != token.TYPE {
			continue
		}
		for _, spec := range gd.Specs {
			ts, ok := spec.(*ast.TypeSpec)
			if !ok || typeAnnotation(v.pass, gd, ts, AnnotFrozen) == nil {
				continue
			}
			obj, ok := v.pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
			if !ok {
				continue
			}
			if _, ok := obj.Type().Underlying().(*types.Struct); !ok {
				v.pass.Reportf(ts.Pos(), "//lama:frozen on %s, which is not a struct type", ts.Name.Name)
				continue
			}
			v.frozen[obj] = true
		}
	}
}

// namedOf unwraps pointers and returns the named type, or nil.
func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// frozenType reports whether t is (or points to) a frozen type, and its
// display name.
func (v *frozenVisitor) frozenType(t types.Type) (string, bool) {
	named := namedOf(t)
	if named == nil {
		return "", false
	}
	obj := named.Obj()
	if v.frozen[obj] {
		return obj.Name(), true
	}
	if obj.Pkg() != nil && frozenBuiltin[[2]string{obj.Pkg().Name(), obj.Name()}] {
		return obj.Pkg().Name() + "." + obj.Name(), true
	}
	return "", false
}

// containerType reports whether t is (or points to) a snapshot-container
// type.
func (v *frozenVisitor) containerType(t types.Type) (string, bool) {
	named := namedOf(t)
	if named == nil || named.Obj().Pkg() == nil {
		return "", false
	}
	obj := named.Obj()
	if snapshotContainers[[2]string{obj.Pkg().Name(), obj.Name()}] {
		return obj.Pkg().Name() + "." + obj.Name(), true
	}
	return "", false
}

// checkBody scans one non-mutator function body for illegal mutations.
func (v *frozenVisitor) checkBody(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				v.checkWrite(lhs)
			}
		case *ast.IncDecStmt:
			v.checkWrite(n.X)
		case *ast.CallExpr:
			v.checkMutatingCall(n)
		}
		return true
	})
}

// checkWrite reports a write whose target chain passes through a frozen
// type. Plain identifier assignments (rebinding a variable) are not
// mutations; the chain must include at least one selector, index, or
// dereference step.
func (v *frozenVisitor) checkWrite(lhs ast.Expr) {
	e := ast.Unparen(lhs)
	switch e.(type) {
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
	default:
		return
	}
	if name, ok := v.chainFrozen(e); ok {
		if suppressed(v.pass, lhs.Pos(), AnnotMutationOK) {
			return
		}
		v.pass.Reportf(lhs.Pos(),
			"write into frozen type %s outside a //lama:mutator function", name)
	}
}

// chainFrozen walks a selector/index/call chain towards its base and
// reports the first frozen type found along it.
func (v *frozenVisitor) chainFrozen(e ast.Expr) (string, bool) {
	for {
		e = ast.Unparen(e)
		switch x := e.(type) {
		case *ast.SelectorExpr:
			if name, ok := v.frozenType(v.pass.TypesInfo.TypeOf(x.X)); ok {
				return name, true
			}
			e = x.X
		case *ast.StarExpr:
			if name, ok := v.frozenType(v.pass.TypesInfo.TypeOf(x.X)); ok {
				return name, true
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.CallExpr:
			e = x.Fun // chain through method-call receivers
		case *ast.Ident:
			if name, ok := v.frozenType(v.pass.TypesInfo.TypeOf(x)); ok {
				return name, true
			}
			return "", false
		default:
			return "", false
		}
	}
}

// checkMutatingCall reports topology-mutating method calls whose receiver
// chain reaches through a snapshot container.
func (v *frozenVisitor) checkMutatingCall(call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	recv := namedOf(v.pass.TypesInfo.TypeOf(sel.X))
	if recv == nil || recv.Obj().Pkg() == nil {
		return
	}
	key := [2]string{recv.Obj().Pkg().Name(), recv.Obj().Name()}
	if !frozenMutatingMethods[key][sel.Sel.Name] {
		return
	}
	if name, ok := v.chainContainer(sel.X); ok {
		if suppressed(v.pass, call.Pos(), AnnotMutationOK) {
			return
		}
		v.pass.Reportf(call.Pos(),
			"(%s.%s).%s mutates shared state reached through frozen %s; derive a copy-on-write child instead",
			key[0], key[1], sel.Sel.Name, name)
	}
}

// chainContainer walks a receiver chain and reports the first snapshot
// container found along it.
func (v *frozenVisitor) chainContainer(e ast.Expr) (string, bool) {
	for {
		e = ast.Unparen(e)
		switch x := e.(type) {
		case *ast.SelectorExpr:
			if name, ok := v.containerType(v.pass.TypesInfo.TypeOf(x.X)); ok {
				return name, true
			}
			e = x.X
		case *ast.StarExpr, *ast.IndexExpr, *ast.SliceExpr:
			e = chainInner(e)
		case *ast.CallExpr:
			e = x.Fun
		case *ast.Ident:
			if name, ok := v.containerType(v.pass.TypesInfo.TypeOf(x)); ok {
				return name, true
			}
			return "", false
		default:
			return "", false
		}
	}
}

// chainInner returns the operand of a one-step wrapper expression.
func chainInner(e ast.Expr) ast.Expr {
	switch x := e.(type) {
	case *ast.StarExpr:
		return x.X
	case *ast.IndexExpr:
		return x.X
	case *ast.SliceExpr:
		return x.X
	}
	return e
}

// checkCow enforces field exhaustiveness for every //lama:cow <Type>
// annotation on the function.
func (v *frozenVisitor) checkCow(decl *ast.FuncDecl) {
	for _, ann := range funcAnnotations(v.pass, decl, AnnotCow) {
		if ann.Reason == "" {
			v.pass.Reportf(decl.Pos(),
				"//lama:cow annotation requires a type name (\"//lama:cow <Type>\")")
			continue
		}
		obj, _ := v.pass.Pkg.Scope().Lookup(ann.Reason).(*types.TypeName)
		var st *types.Struct
		if obj != nil {
			st, _ = obj.Type().Underlying().(*types.Struct)
		}
		if st == nil {
			v.pass.Reportf(decl.Pos(),
				"//lama:cow %s: no struct type %s in this package", ann.Reason, ann.Reason)
			continue
		}
		referenced := v.cowReferences(decl, obj, st)
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if f.Name() == "_" || referenced[f] {
				continue
			}
			v.pass.Reportf(decl.Pos(),
				"//lama:cow %s: %s does not reference field %s (copy it, or exclude it explicitly with `_ = x.%s`)",
				ann.Reason, decl.Name.Name, f.Name(), f.Name())
		}
	}
}

// cowReferences collects the fields of the subject struct the function
// body references, through selectors or keyed composite literals. An
// unkeyed composite literal of the type references every field.
func (v *frozenVisitor) cowReferences(decl *ast.FuncDecl, obj *types.TypeName, st *types.Struct) map[*types.Var]bool {
	fields := map[*types.Var]bool{}
	for i := 0; i < st.NumFields(); i++ {
		fields[st.Field(i)] = true
	}
	referenced := map[*types.Var]bool{}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if sel, ok := v.pass.TypesInfo.Selections[n]; ok && sel.Kind() == types.FieldVal {
				if f, ok := sel.Obj().(*types.Var); ok && fields[f] {
					referenced[f] = true
				}
			}
		case *ast.CompositeLit:
			named := namedOf(v.pass.TypesInfo.TypeOf(n))
			if named == nil || named.Obj() != obj {
				return true
			}
			keyed := false
			for _, el := range n.Elts {
				kv, ok := el.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				keyed = true
				if id, ok := kv.Key.(*ast.Ident); ok {
					if f, ok := v.pass.TypesInfo.Uses[id].(*types.Var); ok && fields[f] {
						referenced[f] = true
					}
				}
			}
			if !keyed && len(n.Elts) > 0 {
				// Unkeyed struct literals must list every field.
				for f := range fields {
					referenced[f] = true
				}
			}
		}
		return true
	})
	return referenced
}
