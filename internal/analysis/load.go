package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// This file is the suite's package loader. golang.org/x/tools is not a
// dependency of this module, so instead of go/packages the loader drives
// `go list -export -deps -json` directly: the go command resolves import
// paths and produces compiled export data for every dependency, the
// target packages themselves are parsed and type-checked from source with
// the standard library's gc-export-data importer, and the resulting
// (Fset, Files, types.Package, types.Info) tuple is exactly what a
// go/analysis pass would receive.

// Package is one loaded, type-checked package.
type Package struct {
	PkgPath   string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
	Annot     *Annotations
}

// Pass assembles a Pass over this package for one analyzer.
func (p *Package) Pass(a *Analyzer, report func(Diagnostic)) *Pass {
	return &Pass{
		Analyzer:  a,
		Fset:      p.Fset,
		Files:     p.Files,
		Pkg:       p.Types,
		TypesInfo: p.TypesInfo,
		Annot:     p.Annot,
		Report:    report,
	}
}

// Loader loads packages through the go command, sharing one FileSet and
// one export-data table across loads so fixture packages can be checked
// against the real module's dependencies.
type Loader struct {
	// Dir is the directory go commands run in ("" = current directory).
	Dir     string
	fset    *token.FileSet
	exports map[string]string // import path -> export data file
}

// NewLoader returns a loader rooted at dir.
func NewLoader(dir string) *Loader {
	return &Loader{Dir: dir, fset: token.NewFileSet(), exports: map[string]string{}}
}

// listedPkg is the subset of `go list -json` output the loader consumes.
type listedPkg struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Error      *struct{ Err string }
}

// goList runs `go list -e -export -deps -json` on the patterns and
// returns the decoded package stream (dependencies included).
func (l *Loader) goList(patterns ...string) ([]listedPkg, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Name,Dir,Export,GoFiles,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.Dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var pkgs []listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decode go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// Load loads the packages matching the go package patterns (their
// dependencies are resolved to export data, not analyzed). Packages are
// returned sorted by import path.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := l.goList(patterns...)
	if err != nil {
		return nil, err
	}
	var roots []listedPkg
	for _, p := range listed {
		if p.Error != nil && p.DepOnly {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("analysis: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			l.exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			roots = append(roots, p)
		}
	}
	var out []*Package
	for _, p := range roots {
		if len(p.GoFiles) == 0 {
			continue
		}
		files := make([]string, len(p.GoFiles))
		for i, f := range p.GoFiles {
			files[i] = filepath.Join(p.Dir, f)
		}
		pkg, err := l.check(p.ImportPath, files)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PkgPath < out[j].PkgPath })
	return out, nil
}

// Gather records export data for the packages matching patterns (and
// their dependencies) without analyzing anything, so later LoadDir calls
// can resolve imports of them. Unresolvable patterns are skipped, not
// errors (-e).
func (l *Loader) Gather(patterns ...string) error {
	listed, err := l.goList(patterns...)
	if err != nil {
		return err
	}
	for _, p := range listed {
		if p.Export != "" {
			l.exports[p.ImportPath] = p.Export
		}
	}
	return nil
}

// LoadDir type-checks every .go file of one directory as a single package
// under the given import path — the fixture loader. Imports resolve
// against the export data gathered by previous Load calls, so a fixture
// may import real module packages (lama/internal/obs) and any standard
// library package the module itself depends on.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: fixture dir: %v", err)
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".go" {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no .go files in %s", dir)
	}
	return l.check(importPath, files)
}

// CheckFiles type-checks the given files as one package, resolving
// imports through the provided export-data table (source import path ->
// export file). It backs lamavet's `go vet -vettool` mode, where the go
// command hands the file and export lists over in a vet config instead of
// being asked through `go list`.
func CheckFiles(importPath string, filenames []string, exports map[string]string) (*Package, error) {
	l := &Loader{fset: token.NewFileSet(), exports: exports}
	return l.check(importPath, filenames)
}

// check parses and type-checks one package from source.
func (l *Loader) check(importPath string, filenames []string) (*Package, error) {
	var files []*ast.File
	for _, fn := range filenames {
		f, err := parser.ParseFile(l.fset, fn, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %v", err)
		}
		files = append(files, f)
	}
	imp := importer.ForCompiler(l.fset, "gc", func(path string) (io.ReadCloser, error) {
		exp, ok := l.exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q (is it a dependency of the loaded patterns?)", path)
		}
		return os.Open(exp)
	})
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-check %s: %v", importPath, err)
	}
	return &Package{
		PkgPath:   importPath,
		Fset:      l.fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
		Annot:     scanAnnotations(l.fset, files),
	}, nil
}
