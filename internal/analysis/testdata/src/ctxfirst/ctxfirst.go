// Package ctxfirst is the ctxfirst fixture: context parameters in
// compliant first position and flagged later positions, across function
// declarations, methods, literals, and interface definitions.
package ctxfirst

import "context"

// first is the convention: context leads.
func first(ctx context.Context, np int) error {
	return ctx.Err()
}

// buried hides the context mid-signature.
func buried(np int, ctx context.Context) error { // want `buried: context.Context is parameter 2, not first`
	return ctx.Err()
}

// trailing hides it at the end of a wide signature.
func trailing(a, b int, c string, ctx context.Context) error { // want `trailing: context.Context is parameter 4, not first`
	_ = a + b
	_ = c
	return ctx.Err()
}

// noCtx has no context at all; nothing to check.
func noCtx(a, b int) int {
	return a + b
}

type runner struct{}

// method receivers do not count as a parameter position.
func (runner) run(ctx context.Context, steps int) error {
	return ctx.Err()
}

// methodBuried is flagged like any declaration.
func (runner) methodBuried(steps int, ctx context.Context) error { // want `methodBuried: context.Context is parameter 2, not first`
	return ctx.Err()
}

// literals observe the same convention.
var ok = func(ctx context.Context, n int) error { return ctx.Err() }

var bad = func(n int, ctx context.Context) error { return ctx.Err() } // want `function literal: context.Context is parameter 2, not first`

// stage is an interface whose methods are checked too.
type stage interface {
	Apply(ctx context.Context, n int) error
	Refine(n int, ctx context.Context) error // want `Refine: context.Context is parameter 2, not first`
}
