// Package atomicmix is the golden fixture for the atomicmix analyzer:
// fields touched through sync/atomic must be touched that way everywhere.
package atomicmix

import "sync/atomic"

// counters mixes access styles on hits, keeps misses purely atomic, and
// uses a typed atomic for flag — the immune-by-construction shape.
type counters struct {
	hits   int64
	misses int64
	flag   atomic.Bool
	inited int64
}

// record is all-atomic: clean.
func (c *counters) record() {
	atomic.AddInt64(&c.hits, 1)
	atomic.AddInt64(&c.misses, 1)
	atomic.AddInt64(&c.inited, 1)
}

// report mixes a plain load of hits with the atomic use above.
func (c *counters) report() int64 {
	return c.hits + atomic.LoadInt64(&c.misses) // want `field hits is accessed with sync/atomic elsewhere in this package; this plain access can race`
}

// reset mixes a plain store.
func (c *counters) reset() {
	c.hits = 0 // want `field hits is accessed with sync/atomic elsewhere in this package; this plain access can race`
}

// enable and enabled use the typed atomic.Bool: its only access path is
// method calls, so it can never mix — the analyzer's false-positive-free
// class, and the preferred shape for new code.
func (c *counters) enable()       { c.flag.Store(true) }
func (c *counters) enabled() bool { return c.flag.Load() }

// newCounters plain-writes inited before the struct is published — the
// accepted single-writer exemption, with a reason.
func newCounters() *counters {
	c := &counters{}
	//lama:atomic-ok constructor runs before the struct is shared; no concurrent reader exists yet
	c.inited = 1
	return c
}

// reinit does the same without a reason: the finding stands and the bare
// annotation is reported.
func (c *counters) reinit() {
	//lama:atomic-ok
	c.inited = 0 // want `field inited is accessed with sync/atomic elsewhere in this package; this plain access can race` `annotation requires a reason`
}
