// Package snapfrozen is the golden fixture for the snapfrozen analyzer:
// frozen-type writes, mutator/cow whitelisting, snapshot-reached mutating
// methods, the scratch-clone false-positive class, and suppression
// hygiene.
package snapfrozen

import (
	"lama/internal/cluster"
	"lama/internal/hw"
)

// box is an in-package published-immutable type.
//
//lama:frozen
type box struct {
	vals []int
	sum  int
}

// alias is annotated frozen but is not a struct — misuse is reported.
//
//lama:frozen
type alias int // want `//lama:frozen on alias, which is not a struct type`

// newBox is the whitelisted constructor; it may write box fields and must
// reference every one of them.
//
//lama:mutator
//lama:cow box
func newBox(vals []int) *box {
	b := &box{vals: vals}
	for _, v := range vals {
		b.sum += v
	}
	return b
}

// breakBox writes a frozen field outside the whitelist.
func breakBox(b *box) {
	b.sum = 0 // want `write into frozen type box outside a //lama:mutator function`
}

// growBox mutates a frozen type through an element write.
func growBox(b *box, v int) {
	b.vals[0] = v // want `write into frozen type box outside a //lama:mutator function`
}

// bumpBox mutates through an IncDec statement.
func bumpBox(b *box) {
	b.sum++ // want `write into frozen type box outside a //lama:mutator function`
}

// cloneBox is a copy-on-write clone that forgot the sum field — the
// exhaustiveness check catches exactly this "added a field, forgot the
// copy" hazard.
//
//lama:cow box
func cloneBox(b *box) *box { // want `//lama:cow box: cloneBox does not reference field sum`
	return &box{vals: append([]int(nil), b.vals...)}
}

// fullClone references every field and is clean.
//
//lama:mutator
//lama:cow box
func fullClone(b *box) *box {
	return &box{vals: append([]int(nil), b.vals...), sum: b.sum}
}

// cowUnknown names a type the package does not declare.
//
//lama:cow missingType
func cowUnknown() { // want `//lama:cow missingType: no struct type missingType in this package`
}

// cowBare is a //lama:cow without a subject type.
//
//lama:cow
func cowBare() { // want `//lama:cow annotation requires a type name`
}

// corrupt mutates shared state reached through a cluster.Snapshot: the
// direct write and the topology-mutator call are both findings, because
// snapshots share node and topology pointers with their COW siblings.
func corrupt(s *cluster.Snapshot, i int) {
	s.Cluster().Nodes[i] = nil                                     // want `write into frozen type cluster.Snapshot outside a //lama:mutator function`
	s.Cluster().Nodes[i].Topo.SetAvailable(hw.LevelCore, 0, false) // want `\(hw.Topology\).SetAvailable mutates shared state reached through frozen cluster.Snapshot`
}

// scratchMutation is the false-positive class the receiver-chain rule
// exists for: mutating a scratch cluster or a private topology clone that
// was never reached through a snapshot is ordinary, legal code and needs
// no annotation.
func scratchMutation(c *cluster.Cluster) *hw.CPUSet {
	c.Nodes[0].Topo.SetAvailable(hw.LevelCore, 0, false)
	scratch := c.Nodes[0].Topo.Clone()
	scratch.Restrict(hw.NewCPUSet(0, 1))
	return scratch.AllowedSet()
}

// fillCache is the accepted single-site exemption: a memoized fill with a
// reasoned suppression.
func fillCache(b *box) int {
	if b.sum == 0 {
		b.sum = b.vals[0] //lama:mutation-ok memoized fill: idempotent, single writer before publication
	}
	return b.sum
}

// badSuppress suppresses without a reason: the finding stands and the
// bare annotation is itself reported.
func badSuppress(b *box) {
	//lama:mutation-ok
	b.sum = 2 // want `write into frozen type box outside a //lama:mutator function` `annotation requires a reason`
}
