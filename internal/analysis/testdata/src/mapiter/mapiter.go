// Package core is the mapiter fixture: positive findings for every sink
// kind, plus one function per false-positive class the analyzer must not
// flag. The package is named after a deterministic package so the
// analyzer's package gate admits it.
package core

import (
	"sort"

	"lama/internal/obs"
)

// returnInLoop leaks iteration order through a return value.
func returnInLoop(m map[int]string) string {
	for _, v := range m { // want `map iteration order reaches a return value`
		if len(v) > 3 {
			return v
		}
	}
	return ""
}

// appendUnsorted leaks iteration order through an unsorted slice append.
func appendUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m { // want `map iteration order reaches a slice append`
		keys = append(keys, k)
	}
	return keys
}

// emitInLoop leaks iteration order through event emission.
func emitInLoop(o *obs.Observer, m map[int]int) {
	for k := range m { // want `map iteration order reaches an event emission`
		o.Emit(obs.SrcMap, obs.EvVisit, k)
	}
}

// argmaxSelection is the PR 4 treematch bug shape: a greedy argmax over a
// map of unassigned ranks, where equal-weight ties break by iteration
// order. The sink is reached after the loop, not inside it.
func argmaxSelection(unassigned map[int]float64) int {
	best, bestW := -1, -1.0
	for r, w := range unassigned { // want `map iteration order reaches a conditional selection of best, bestW`
		if w > bestW {
			best, bestW = r, w
		}
	}
	return best
}

// derivedSelection taints a loop-local through arithmetic before the
// selection, so detection cannot depend on the range variable appearing
// verbatim in the assignment.
func derivedSelection(traffic map[int][]float64) int {
	best, bestW := -1, -1.0
	for r, row := range traffic { // want `map iteration order reaches a conditional selection of bestW, best`
		w := 0.0
		for _, b := range row {
			w += b
		}
		if w > bestW {
			bestW = w
			best = r
		}
	}
	return best
}

// collectThenSort is the sanctioned idiom: collection order is irrelevant
// because the slice is sorted before use.
func collectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// aggregateOnly folds commutatively; order cannot matter.
func aggregateOnly(m map[int]float64) float64 {
	total := 0.0
	count := 0
	for _, w := range m {
		total += w
		count++
	}
	if count == 0 {
		return 0
	}
	return total / float64(count)
}

// setMembership writes map entries keyed by the iterated key; map writes
// are order-insensitive.
func setMembership(m map[int]int) map[int]bool {
	out := make(map[int]bool, len(m))
	for k, v := range m {
		out[k] = v > 0
	}
	return out
}

// annotatedExemption carries a reasoned suppression: any element
// satisfies the caller, so which one wins is immaterial.
func annotatedExemption(m map[int]string) string {
	//lama:nondet-ok any witness value is acceptable to the caller
	for _, v := range m {
		if v != "" {
			return v
		}
	}
	return ""
}

// bareAnnotation shows that a reasonless suppression does not suppress:
// the malformed annotation and the underlying finding are both reported.
func bareAnnotation(m map[int]string) string {
	//lama:nondet-ok
	for _, v := range m { // want `map iteration order reaches a return value` `annotation requires a reason`
		return v
	}
	return ""
}
