// Package parallel is the golden fixture for the golifecycle analyzer.
// It is named after a worker package because golifecycle scopes itself by
// package name.
package parallel

import (
	"context"
	"sync"
)

// fanout is the canonical joined shape: Add at the spawn site, Done in
// the goroutine, Wait before returning.
func fanout(n int, work func(int)) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			work(i)
		}(i)
	}
	wg.Wait()
}

// drain is joined by channel close: the goroutine exits when ch closes.
func drain(ch chan int, work func(int)) {
	go func() {
		for v := range ch {
			work(v)
		}
	}()
}

// watch is joined by context cancellation.
func watch(ctx context.Context, tick chan struct{}) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick:
			}
		}
	}()
}

// leak is fire-and-forget: nothing ever joins it.
func leak(work func()) {
	go func() { // want `goroutine has no provable join path`
		work()
	}()
}

// doneWithoutAdd pairs a Done with no Add: Wait returns immediately and
// the goroutine races the caller's teardown.
func doneWithoutAdd(work func()) {
	var wg sync.WaitGroup
	go func() { // want `goroutine calls wg.Done\(\) but the enclosing function never calls wg.Add`
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// spawnOpaque starts a function the analyzer cannot see into (no
// same-package declaration body with join evidence).
func spawnOpaque(work func()) {
	go work() // want `goroutine has no provable join path`
}

// pool spawns a named same-package worker whose body proves termination
// by ranging over the jobs channel: clean.
func pool(jobs chan int) {
	go consume(jobs)
}

// consume drains jobs until the channel closes.
func consume(jobs chan int) {
	for range jobs {
	}
}

// handshake is the documented false-positive class: the goroutine is
// joined through a done-channel handshake the analyzer cannot prove, so
// it carries a reasoned suppression.
func handshake(work func()) chan struct{} {
	done := make(chan struct{})
	//lama:join-ok caller blocks on the done channel; the close below is the join
	go func() {
		defer close(done)
		work()
	}()
	return done
}

// handshakeBare is the same shape without a reason: the finding stands
// and the bare annotation is reported.
func handshakeBare(work func()) chan struct{} {
	done := make(chan struct{})
	//lama:join-ok
	go func() { // want `goroutine has no provable join path` `annotation requires a reason`
		defer close(done)
		work()
	}()
	return done
}
