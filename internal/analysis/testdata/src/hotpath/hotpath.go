// Package hot is the hotpath fixture: one function per allocation source
// the analyzer reports, and one per shape it must understand rather than
// flag (capacity-hinted appends, reusable field state, error exits,
// coldpath barriers, reasoned alloc-ok sites, unreachable code).
package hot

import "fmt"

// state models the engine's reusable per-run buffers.
type state struct {
	out []int
}

// format allocates through fmt on the hot path.
//
//lama:hotpath
func format(n int) string {
	return fmt.Sprintf("rank-%d", n) // want `fmt.Sprintf formats and allocates`
}

// literals allocates composite literals on the hot path.
//
//lama:hotpath
func literals() int {
	m := map[int]bool{} // want `map composite literal allocates`
	s := []int{1, 2, 3} // want `slice composite literal allocates`
	return len(m) + len(s)
}

// growUnhinted appends to a slice that never got a capacity.
//
//lama:hotpath
func growUnhinted(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x) // want `append grows out without a capacity hint`
	}
	return out
}

// capture builds a closure over a local, forcing it to escape.
//
//lama:hotpath
func capture() func() int {
	total := 0
	return func() int { // want `closure captures total and escapes`
		total++
		return total
	}
}

// boxes passes a concrete value to an interface parameter.
//
//lama:hotpath
func boxes(n int) {
	sink(n) // want `argument boxes int into interface\{\}`
}

func sink(v interface{}) { _ = v }

// transitive reaches its finding through an unannotated same-package
// callee; the diagnostic names both the root and the via function.
//
//lama:hotpath
func transitive(n int) string {
	return helper(n)
}

func helper(n int) string {
	return fmt.Sprintf("%d", n) // want `hot path \(//lama:hotpath transitive\) via helper: fmt.Sprintf formats and allocates`
}

// hinted appends within an explicit capacity; growth is budgeted.
//
//lama:hotpath
func hinted(xs []int) []int {
	out := make([]int, 0, len(xs))
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

// fieldAppend reuses pre-sized struct state.
//
//lama:hotpath
func (s *state) fieldAppend(x int) {
	s.out = append(s.out, x)
}

// errorExit constructs its error only on the failing return.
//
//lama:hotpath
func errorExit(n int) (int, error) {
	if n < 0 {
		return 0, fmt.Errorf("negative rank %d", n)
	}
	return n, nil
}

// callsCold stops at the coldpath barrier below.
//
//lama:hotpath
func callsCold() int {
	return len(buildTables())
}

// buildTables allocates freely; it runs once per topology, never per
// claim.
//
//lama:coldpath one-off table construction, not on the claim path
func buildTables() map[int][]int {
	return map[int][]int{0: {1, 2}}
}

// allocOK accepts one allocation with a reason.
//
//lama:hotpath
func allocOK(xs []int) []int {
	out := append([]int(nil), xs...) //lama:alloc-ok fresh result slice is the function's contract
	return out
}

// bareAllocOK shows that a reasonless acceptance does not accept.
//
//lama:hotpath
func bareAllocOK(xs []int) []int {
	//lama:alloc-ok
	out := append([]int(nil), xs...) // want `append to a fresh slice allocates` `annotation requires a reason`
	return out
}

// unreachable is neither annotated nor called from a root; hotpath has
// no opinion about it.
func unreachable() string {
	return fmt.Sprintf("cold %d", 1)
}
