// Package place is the nodeterm fixture: each forbidden ambient input in
// flagged and sanctioned form. The package is named after a deterministic
// package so the analyzer's package gate admits it.
package place

import (
	"math/rand"
	"os"
	"time"
)

// wallClock reads the ambient clock.
func wallClock() int64 {
	t := time.Now() // want `time.Now in deterministic package place: reads the wall clock`
	return t.UnixNano()
}

// elapsed reads the clock twice over.
func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time.Since in deterministic package place: reads the wall clock`
}

// globalRand draws from the shared source.
func globalRand(n int) int {
	return rand.Intn(n) // want `rand.Intn in deterministic package place: draws from the shared global source`
}

// env reads process configuration outside the options structs.
func env() string {
	return os.Getenv("LAMA_SEED") // want `os.Getenv in deterministic package place: reads the process environment`
}

// seededRand is the sanctioned form: an explicitly seeded generator from
// a caller-provided seed, drawn through methods.
func seededRand(seed int64, n int) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(n)
}

// fixedTime constructs times without reading the clock.
func fixedTime() time.Time {
	return time.Unix(0, 0)
}

// annotatedLatency is an observability-only clock read with a reasoned
// exemption.
func annotatedLatency(f func()) time.Duration {
	t0 := time.Now() //lama:nondet-ok latency measurement only, never reaches mapping output
	f()
	return time.Since(t0) //lama:nondet-ok latency measurement only, never reaches mapping output
}
