// Package fixutil is the package-gate fixture: it contains shapes that
// mapiter and nodeterm flag inside deterministic packages, but its name
// is not in the deterministic set, so both analyzers must stay silent.
package fixutil

import "time"

// witness returns the first map value iteration happens to visit.
func witness(m map[int]string) string {
	for _, v := range m {
		return v
	}
	return ""
}

// stamp reads the wall clock.
func stamp() time.Time {
	return time.Now()
}
