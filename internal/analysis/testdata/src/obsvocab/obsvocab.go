// Package driver is the obsvocab fixture: registered and unregistered
// event pairs, non-constant names, and span labels, all against the real
// canonical vocabulary in lama/internal/obs/vocab.go.
package driver

import "lama/internal/obs"

// registered emits pairs straight from the canonical table; nothing to
// report.
func registered(o *obs.Observer) {
	o.Emit(obs.SrcMap, obs.EvDone, 0, obs.F("ranks", 8))
	o.Emit(obs.SrcSweep, obs.EvLayout, 1)
}

// localConst re-derives a registered pair through local constants, which
// still evaluate at compile time; nothing to report.
func localConst(o *obs.Observer) {
	const src = obs.SrcMap
	o.Emit(src, obs.EvStall, 2)
}

// unregistered emits a (source, name) pair missing from the table.
func unregistered(o *obs.Observer) {
	o.Emit(obs.SrcMap, "detected", 0) // want `event \("map", "detected"\) is not in the canonical vocabulary`
}

// unregisteredSource pairs a registered name with an unknown source.
func unregisteredSource(o *obs.Observer) {
	o.Emit("mapper", obs.EvDone, 0) // want `event \("mapper", "done"\) is not in the canonical vocabulary`
}

// dynamicName builds the event name at run time, which the vocabulary
// check cannot follow.
func dynamicName(o *obs.Observer, suffix string) {
	o.Emit(obs.SrcMap, "visit-"+suffix, 0) // want `event source and name must be compile-time constants`
}

// spans exercises the span-label table: registered constants pass,
// unregistered literals are flagged, and dynamic labels are left to the
// runtime (pipeline stages are labeled by Stage.StageName).
func spans(o *obs.Observer, stage string) {
	done := o.StartSpan(obs.SpanPlace)
	done()
	bad := o.StartSpan("placing") // want `span label "placing" is not in the canonical span table`
	bad()
	dyn := o.StartSpan(stage)
	dyn()
}
