// Package engine is the golden fixture for the lockcheck analyzer. It is
// named after a service-layer package because lockcheck, like mapiter's
// deterministic gate, scopes itself by package name.
package engine

import (
	"net/http"
	"sync"
	"time"
)

// store is the canonical guarded shape: fields annotated //lama:guards
// name the sibling mutex that protects them.
type store struct {
	mu    sync.RWMutex
	items map[string]int //lama:guards mu
	hits  int            //lama:guards mu
	name  string         // unguarded on purpose: set once before publication
}

// get holds the read lock over a read: clean.
func (s *store) get(k string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.items[k]
}

// put holds the exclusive lock over writes: clean.
func (s *store) put(k string, v int) {
	s.mu.Lock()
	s.items[k] = v
	s.hits++
	s.mu.Unlock()
}

// raw reads a guarded field with no lock at all.
func (s *store) raw(k string) int {
	return s.items[k] // want `s.items is guarded by s.mu but accessed without holding it`
}

// countUnderRead writes under the read lock.
func (s *store) countUnderRead() {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.hits++ // want `s.hits is guarded by s.mu but written under RLock`
}

// branchy releases in one branch only; the sibling branch still holds.
func (s *store) branchy(flush bool) int {
	s.mu.Lock()
	if flush {
		s.mu.Unlock()
		return s.items["x"] // want `s.items is guarded by s.mu but accessed without holding it`
	}
	n := s.items["x"]
	s.mu.Unlock()
	return n
}

// double self-deadlocks.
func (s *store) double() {
	s.mu.Lock()
	s.mu.Lock() // want `s.mu locked again while already held in this function`
	s.mu.Unlock()
}

// blockingSend sends on a channel while holding the lock.
func (s *store) blockingSend(ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ch <- s.hits // want `channel send while holding s.mu`
}

// nonBlockingSend uses select-with-default under the lock: clean.
func (s *store) nonBlockingSend(ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case ch <- s.hits:
	default:
	}
}

// blockingReceive blocks on a receive while holding the lock.
func (s *store) blockingReceive(ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hits = <-ch // want `channel receive while holding s.mu`
}

// blockingSelect has no default arm.
func (s *store) blockingSelect(a, b chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want `select without a default arm while holding s.mu`
	case <-a:
	case <-b:
	}
}

// sleepy sleeps on the lock.
func (s *store) sleepy() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want `time.Sleep while holding s.mu`
	s.mu.Unlock()
}

// serve writes an HTTP response while holding the lock — a slow client
// would hold every other request hostage.
func (s *store) serve(w http.ResponseWriter) {
	s.mu.Lock()
	defer s.mu.Unlock()
	w.Write([]byte(s.name)) // want `http response write while holding s.mu`
}

// sumLocked follows the *Locked naming convention: the caller holds s.mu,
// so unguarded access here is clean.
func (s *store) sumLocked() int {
	return s.hits
}

// helper documents the same contract with an annotation.
//
//lama:locked every caller holds s.mu (see put)
func (s *store) helper() int {
	return s.hits
}

// helperBare claims the contract without saying which lock: reported.
//
//lama:locked
func (s *store) helperBare() int { // want `//lama:locked annotation requires a reason`
	return s.hits // want `s.hits is guarded by s.mu but accessed without holding it`
}

// byValue copies the mutex (and any held state) along with the struct.
func byValue(s store) int { // want `byValue copies lock-bearing .*store by value`
	return 0
}

// closureFP is the documented false-positive class: the analyzer gives
// closures an empty lock set because it cannot see their call sites, so a
// closure that runs synchronously under its caller's lock carries a
// reasoned //lama:lock-ok.
func (s *store) closureFP() {
	s.mu.Lock()
	defer s.mu.Unlock()
	func() {
		//lama:lock-ok closure is invoked synchronously below, under closureFP's lock
		s.hits++
	}()
}

// closureLeak is the same shape without the suppression: reported.
func (s *store) closureLeak() func() int {
	return func() int {
		return s.hits // want `s.hits is guarded by s.mu but accessed without holding it`
	}
}

// badGuards exercises annotation validation: naming a non-mutex sibling,
// and omitting the mutex name entirely.
type badGuards struct {
	mu sync.Mutex
	//lama:guards lock
	a int // want `//lama:guards lock: no sibling sync.Mutex or sync.RWMutex field named lock`
	//lama:guards
	b int // want `//lama:guards annotation requires the guarding mutex name`
	// lock is an int, not a mutex.
	lock int
}

// useBadGuards keeps the fixture vet-clean.
func useBadGuards(g *badGuards) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.a + g.b + g.lock
}
