package analysis

import (
	"go/ast"
	"go/types"
)

// NoDeterm returns the nondeterminism-source analyzer.
//
// The deterministic packages must compute identical outputs for identical
// inputs — the 9!-permutation sweeps of E4/E5/E6, the golden-equivalence
// tests pinning every policy adapter, and reproducible rankfiles all
// depend on it. Three ambient inputs are therefore forbidden there:
//
//   - wall clocks (time.Now, time.Since) — injected clocks
//     (obs.Observer.Clock) are the sanctioned alternative, and
//     observability-only latency reads carry //lama:nondet-ok;
//   - the shared math/rand source (top-level rand.Int, rand.Shuffle, ...)
//     — explicitly seeded generators built with rand.New(rand.NewSource)
//     from a caller-provided seed are allowed;
//   - the process environment (os.Getenv, os.LookupEnv, os.Environ) —
//     configuration must arrive through options structs and flags.
func NoDeterm() *Analyzer {
	a := &Analyzer{
		Name: "nodeterm",
		Doc:  "forbids wall clocks, the shared math/rand source, and environment reads in deterministic packages",
	}
	a.Run = func(pass *Pass) error {
		if !deterministic(pass.Pkg) {
			return nil
		}
		for _, file := range pass.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				f, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
				if !ok {
					return true
				}
				if what := forbiddenAmbient(f); what != "" && !suppressed(pass, sel.Pos(), AnnotNondetOK) {
					pass.Reportf(sel.Pos(),
						"%s in deterministic package %s: %s; inject it through options or annotate //lama:nondet-ok <reason>",
						f.Pkg().Name()+"."+f.Name(), pass.Pkg.Name(), what)
				}
				return true
			})
		}
		return nil
	}
	return a
}

// randConstructors are the math/rand functions that build explicitly
// seeded state rather than reading the shared source.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true, // math/rand/v2
}

// forbiddenAmbient classifies a function as one of the forbidden ambient
// inputs, returning a description ("" when the function is fine).
func forbiddenAmbient(f *types.Func) string {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() != nil || f.Pkg() == nil {
		return "" // methods (e.g. on a seeded *rand.Rand) are fine
	}
	switch f.Pkg().Path() {
	case "time":
		if f.Name() == "Now" || f.Name() == "Since" || f.Name() == "Until" {
			return "reads the wall clock"
		}
	case "math/rand", "math/rand/v2":
		if !randConstructors[f.Name()] {
			return "draws from the shared global source"
		}
	case "os":
		if f.Name() == "Getenv" || f.Name() == "LookupEnv" || f.Name() == "Environ" {
			return "reads the process environment"
		}
	}
	return ""
}
