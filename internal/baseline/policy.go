package baseline

import (
	"context"

	"lama/internal/core"
	"lama/internal/place"
)

// policy adapts one baseline mapper to the place registry.
type policy struct {
	name string
	run  func(req *place.Request) (*core.Map, error)
}

func (p policy) Name() string { return p.name }

// Place runs the adapted baseline. The baselines are single-pass and
// fast; the context is accepted for interface uniformity only.
func (p policy) Place(_ context.Context, req *place.Request) (*core.Map, error) { return p.run(req) }

// The baselines register under the paper's §II vocabulary. Request fields
// consumed: "pack"/"scatter" read PackLevel (zero = machine level),
// "random" reads Seed, "plane" reads BlockSize (zero = 1).
func init() {
	place.Register(policy{"by-slot", func(r *place.Request) (*core.Map, error) {
		return BySlot(r.Cluster, r.NP)
	}})
	place.Register(policy{"by-node", func(r *place.Request) (*core.Map, error) {
		return ByNode(r.Cluster, r.NP)
	}})
	place.Register(policy{"pack", func(r *place.Request) (*core.Map, error) {
		return Pack(r.Cluster, r.PackLevel, r.NP)
	}})
	place.Register(policy{"scatter", func(r *place.Request) (*core.Map, error) {
		return Scatter(r.Cluster, r.PackLevel, r.NP)
	}})
	place.Register(policy{"random", func(r *place.Request) (*core.Map, error) {
		return Random(r.Cluster, r.Seed, r.NP)
	}})
	place.Register(policy{"plane", func(r *place.Request) (*core.Map, error) {
		block := r.BlockSize
		if block <= 0 {
			block = 1
		}
		return Plane(r.Cluster, block, r.NP)
	}})
}
