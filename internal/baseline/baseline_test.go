package baseline

import (
	"testing"

	"lama/internal/cluster"
	"lama/internal/core"
	"lama/internal/hw"
)

func fig2Cluster(t *testing.T, nodes int) *cluster.Cluster {
	t.Helper()
	sp, _ := hw.Preset("fig2") // 2 sockets x 3 cores x 2 PUs, sequential OS
	return cluster.Homogeneous(nodes, sp)
}

func lamaMap(t *testing.T, c *cluster.Cluster, layout string, np int) *core.Map {
	t.Helper()
	m, err := core.NewMapper(c, core.MustParseLayout(layout), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mp, err := m.Map(np)
	if err != nil {
		t.Fatal(err)
	}
	return mp
}

func samePlacement(t *testing.T, name string, a, b *core.Map) {
	t.Helper()
	if a.NumRanks() != b.NumRanks() {
		t.Fatalf("%s: rank counts differ", name)
	}
	for i := range a.Placements {
		pa, pb := a.Placements[i], b.Placements[i]
		if pa.Node != pb.Node || pa.PU() != pb.PU() {
			t.Fatalf("%s: rank %d at node %d PU %d vs node %d PU %d",
				name, i, pa.Node, pa.PU(), pb.Node, pb.PU())
		}
	}
}

// TestBySlotMatchesLAMA cross-validates the independent by-slot loop nest
// against the LAMA layout it should equal ("csbnh").
func TestBySlotMatchesLAMA(t *testing.T) {
	c := fig2Cluster(t, 2)
	for _, np := range []int{1, 6, 12, 24} {
		got, err := BySlot(c, np)
		if err != nil {
			t.Fatal(err)
		}
		if err := got.Validate(c); err != nil {
			t.Fatal(err)
		}
		samePlacement(t, "by-slot", got, lamaMap(t, c, "csbnh", np))
	}
}

// TestByNodeMatchesLAMA cross-validates by-node against LAMA "ncsbh".
func TestByNodeMatchesLAMA(t *testing.T) {
	c := fig2Cluster(t, 3)
	for _, np := range []int{1, 5, 18, 36} {
		got, err := ByNode(c, np)
		if err != nil {
			t.Fatal(err)
		}
		if err := got.Validate(c); err != nil {
			t.Fatal(err)
		}
		samePlacement(t, "by-node", got, lamaMap(t, c, "ncsbh", np))
	}
}

func TestPackAndScatter(t *testing.T) {
	c := fig2Cluster(t, 2)
	// Pack at socket level: first 6 ranks all on node0 socket0.
	p, err := Pack(c, hw.LevelSocket, 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, pl := range p.Placements {
		if pl.Node != 0 || pl.Leaf.Ancestor(hw.LevelSocket).Logical != 0 {
			t.Fatalf("pack rank %d escaped socket 0", pl.Rank)
		}
	}
	// Scatter at socket level: 4 ranks on 4 distinct sockets.
	s, err := Scatter(c, hw.LevelSocket, 4)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[*hw.Object]bool{}
	for _, pl := range s.Placements {
		sock := pl.Leaf.Ancestor(hw.LevelSocket)
		if seen[sock] {
			t.Fatalf("scatter reused socket %v", sock)
		}
		seen[sock] = true
	}
	// Cluster-wide socket round-robin equals LAMA "snch" (sockets vary
	// fastest, then nodes) for the first sockets-many ranks.
	samePlacement(t, "scatter-socket", s, lamaMap(t, c, "snch", 4))
	if _, err := Pack(c, hw.Level(99), 1); err == nil {
		t.Fatal("invalid level")
	}
	if _, err := Scatter(c, hw.Level(99), 1); err == nil {
		t.Fatal("invalid level")
	}
}

func TestScatterSkipsUnusableGroups(t *testing.T) {
	c := fig2Cluster(t, 1)
	c.Node(0).Topo.SetAvailable(hw.LevelSocket, 0, false)
	s, err := Scatter(c, hw.LevelSocket, 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, pl := range s.Placements {
		if pl.Leaf.Ancestor(hw.LevelSocket).Logical != 1 {
			t.Fatal("rank on offline socket")
		}
	}
}

func TestRandomIsValidPermutation(t *testing.T) {
	c := fig2Cluster(t, 2)
	m, err := Random(c, 42, 24)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(c); err != nil {
		t.Fatal(err)
	}
	type key struct{ node, pu int }
	seen := map[key]bool{}
	for _, p := range m.Placements {
		k := key{p.Node, p.PU()}
		if seen[k] {
			t.Fatal("random mapper reused a PU")
		}
		seen[k] = true
	}
	// Determinism for a fixed seed.
	m2, _ := Random(c, 42, 24)
	samePlacement(t, "random-seed", m, m2)
	// Different seeds disagree (overwhelmingly likely).
	m3, _ := Random(c, 43, 24)
	diff := false
	for i := range m.Placements {
		if m.Placements[i].PU() != m3.Placements[i].PU() || m.Placements[i].Node != m3.Placements[i].Node {
			diff = true
		}
	}
	if !diff {
		t.Fatal("seeds 42 and 43 produced identical shuffles")
	}
}

func TestBaselineCapacityErrors(t *testing.T) {
	c := fig2Cluster(t, 1) // 12 PUs
	for name, f := range map[string]func() (*core.Map, error){
		"byslot":  func() (*core.Map, error) { return BySlot(c, 13) },
		"bynode":  func() (*core.Map, error) { return ByNode(c, 13) },
		"pack":    func() (*core.Map, error) { return Pack(c, hw.LevelCore, 13) },
		"scatter": func() (*core.Map, error) { return Scatter(c, hw.LevelCore, 13) },
		"random":  func() (*core.Map, error) { return Random(c, 1, 13) },
	} {
		if _, err := f(); err == nil {
			t.Errorf("%s: over-capacity should fail", name)
		}
	}
	if _, err := BySlot(c, 0); err == nil {
		t.Error("np=0 should fail")
	}
}

func TestBaselinesOnHeterogeneousCluster(t *testing.T) {
	big, _ := hw.Preset("nehalem-ep")
	small, _ := hw.Preset("bgp-node")
	c := cluster.FromSpecs(big, small) // 16 + 4 PUs
	m, err := ByNode(c, 20)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(c); err != nil {
		t.Fatal(err)
	}
	per := m.RanksByNode()
	if len(per[0]) != 16 || len(per[1]) != 4 {
		t.Fatalf("per-node = %d/%d", len(per[0]), len(per[1]))
	}
	m2, err := BySlot(c, 20)
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.Validate(c); err != nil {
		t.Fatal(err)
	}
}

func TestPlaneDistribution(t *testing.T) {
	c := fig2Cluster(t, 3) // 12 PUs each
	m, err := Plane(c, 4, 12)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(c); err != nil {
		t.Fatal(err)
	}
	// Blocks of 4 alternate nodes: ranks 0-3 node0, 4-7 node1, 8-11 node2.
	for i, p := range m.Placements {
		if p.Node != i/4 {
			t.Fatalf("rank %d on node %d, want %d", i, p.Node, i/4)
		}
	}
	// Wrap-around: the 13th-16th ranks return to node0's next slots.
	m2, err := Plane(c, 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i := 12; i < 16; i++ {
		if m2.Placements[i].Node != 0 {
			t.Fatalf("rank %d on node %d, want 0", i, m2.Placements[i].Node)
		}
	}
	// Block size 1 equals by-node on homogeneous machines.
	p1, err := Plane(c, 1, 18)
	if err != nil {
		t.Fatal(err)
	}
	bn, err := ByNode(c, 18)
	if err != nil {
		t.Fatal(err)
	}
	samePlacement(t, "plane-1-vs-bynode", p1, bn)
}

func TestPlaneErrors(t *testing.T) {
	c := fig2Cluster(t, 1)
	if _, err := Plane(c, 0, 4); err == nil {
		t.Fatal("block size 0")
	}
	if _, err := Plane(c, 4, 13); err == nil {
		t.Fatal("over capacity")
	}
}

func TestPlaneSkipsFullNodes(t *testing.T) {
	big, _ := hw.Preset("nehalem-ep") // 16 PUs
	small, _ := hw.Preset("bgp-node") // 4 PUs
	c := cluster.FromSpecs(small, big)
	m, err := Plane(c, 4, 20)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(c); err != nil {
		t.Fatal(err)
	}
	per := m.RanksByNode()
	if len(per[0]) != 4 || len(per[1]) != 16 {
		t.Fatalf("per node = %d/%d", len(per[0]), len(per[1]))
	}
}
