// Package baseline implements the traditional mapping strategies the paper
// compares against (§II): the by-slot and by-node round-robin patterns all
// MPI implementations provide, MPICH2-style pack/scatter at one topology
// level, and a random mapper. Each is implemented independently of the
// LAMA machinery (straightforward loop nests over the actual topologies)
// so that equivalence tests between a baseline and the corresponding LAMA
// layout genuinely cross-validate the algorithm.
package baseline

import (
	"fmt"
	"math/rand"

	"lama/internal/cluster"
	"lama/internal/core"
	"lama/internal/hw"
)

// slot is one mappable processing unit with its location.
type slot struct {
	node int
	pu   *hw.Object
}

// slotsToMap converts an ordered slot list into a core.Map, assigning
// ranks 0..np-1 in order. It fails if np exceeds the slot count (these
// baselines do not oversubscribe).
func slotsToMap(c *cluster.Cluster, slots []slot, np int, name string) (*core.Map, error) {
	if np <= 0 {
		return nil, fmt.Errorf("baseline: non-positive process count %d", np)
	}
	if np > len(slots) {
		return nil, fmt.Errorf("baseline: %s: %d ranks exceed %d processing units",
			name, np, len(slots))
	}
	m := &core.Map{Sweeps: 1}
	for rank := 0; rank < np; rank++ {
		s := slots[rank]
		m.Placements = append(m.Placements, core.Placement{
			Rank:     rank,
			Node:     s.node,
			NodeName: c.Node(s.node).Name,
			Coords:   core.NodeCoords(s.node),
			Leaf:     s.pu,
			PUs:      []int{s.pu.OS},
		})
	}
	return m, nil
}

// nodePUs returns node i's usable PUs ordered socket-major, then core,
// then hardware thread — the conventional "slot" order.
func nodePUs(c *cluster.Cluster, i int) [][]*hw.Object {
	// Grouped by thread index: first threads of every core, then second
	// threads, etc. (ragged when cores differ in thread count).
	node := c.Node(i)
	var byThread [][]*hw.Object
	for _, coreObj := range node.Topo.Objects(hw.LevelCore) {
		ups := coreObj.UsablePUs()
		for t, pu := range ups {
			for len(byThread) <= t {
				byThread = append(byThread, nil)
			}
			byThread[t] = append(byThread[t], pu)
		}
	}
	return byThread
}

// BySlot packs ranks onto the slots of each node in turn: all first
// hardware threads of node 0's cores, node 1's, ..., then second threads
// (the "bunch/pack/block" pattern of §II). Equivalent to LAMA "csbnh" on
// regular machines.
func BySlot(c *cluster.Cluster, np int) (*core.Map, error) {
	var slots []slot
	maxThreads := 0
	perNode := make([][][]*hw.Object, c.NumNodes())
	for i := range c.Nodes {
		perNode[i] = nodePUs(c, i)
		if len(perNode[i]) > maxThreads {
			maxThreads = len(perNode[i])
		}
	}
	for t := 0; t < maxThreads; t++ {
		for i := range c.Nodes {
			if t < len(perNode[i]) {
				for _, pu := range perNode[i][t] {
					slots = append(slots, slot{node: i, pu: pu})
				}
			}
		}
	}
	return slotsToMap(c, slots, np, "by-slot")
}

// ByNode deals ranks round-robin across nodes (the "scatter/cyclic"
// pattern of §II): rank r goes to node r mod N, taking that node's next
// free slot. Equivalent to LAMA "ncsbh" on regular homogeneous machines.
func ByNode(c *cluster.Cluster, np int) (*core.Map, error) {
	flat := make([][]*hw.Object, c.NumNodes())
	for i := range c.Nodes {
		for _, group := range nodePUs(c, i) {
			flat[i] = append(flat[i], group...)
		}
	}
	cursor := make([]int, c.NumNodes())
	var slots []slot
	remaining := 0
	for i := range flat {
		remaining += len(flat[i])
	}
	for remaining > 0 {
		progressed := false
		for i := range flat {
			if cursor[i] < len(flat[i]) {
				slots = append(slots, slot{node: i, pu: flat[i][cursor[i]]})
				cursor[i]++
				remaining--
				progressed = true
			}
		}
		if !progressed {
			break
		}
	}
	return slotsToMap(c, slots, np, "by-node")
}

// Pack fills each object of the given level completely (all its usable
// PUs) before moving to the next object — MPICH2's "pack at a level".
func Pack(c *cluster.Cluster, level hw.Level, np int) (*core.Map, error) {
	if !level.Valid() {
		return nil, fmt.Errorf("baseline: invalid level")
	}
	var slots []slot
	for i, node := range c.Nodes {
		for _, obj := range node.Topo.Objects(level) {
			for _, pu := range obj.UsablePUs() {
				slots = append(slots, slot{node: i, pu: pu})
			}
		}
	}
	return slotsToMap(c, slots, np, "pack")
}

// Scatter deals ranks round-robin across the objects of the given level,
// cluster-wide — MPICH2's "scatter at a level".
func Scatter(c *cluster.Cluster, level hw.Level, np int) (*core.Map, error) {
	if !level.Valid() {
		return nil, fmt.Errorf("baseline: invalid level")
	}
	type group struct {
		node int
		pus  []*hw.Object
	}
	var groups []group
	for i, node := range c.Nodes {
		for _, obj := range node.Topo.Objects(level) {
			if ups := obj.UsablePUs(); len(ups) > 0 {
				groups = append(groups, group{node: i, pus: ups})
			}
		}
	}
	cursor := make([]int, len(groups))
	var slots []slot
	for {
		progressed := false
		for gi := range groups {
			if cursor[gi] < len(groups[gi].pus) {
				slots = append(slots, slot{node: groups[gi].node, pu: groups[gi].pus[cursor[gi]]})
				cursor[gi]++
				progressed = true
			}
		}
		if !progressed {
			break
		}
	}
	return slotsToMap(c, slots, np, "scatter")
}

// Random maps ranks onto a seeded random permutation of all usable PUs —
// the placement a topology-oblivious scheduler might produce, used as the
// pessimal baseline in the evaluation.
func Random(c *cluster.Cluster, seed int64, np int) (*core.Map, error) {
	var slots []slot
	for i, node := range c.Nodes {
		for _, pu := range node.Topo.Root.UsablePUs() {
			slots = append(slots, slot{node: i, pu: pu})
		}
	}
	r := rand.New(rand.NewSource(seed))
	r.Shuffle(len(slots), func(a, b int) { slots[a], slots[b] = slots[b], slots[a] })
	return slotsToMap(c, slots, np, "random")
}

// Plane implements SLURM's plane distribution (paper §II): consecutive
// blocks of blockSize ranks are dealt round-robin across nodes, so rank
// blocks land on node 0, node 1, ..., wrapping, while ranks within a
// block stay together on one node's next free slots.
func Plane(c *cluster.Cluster, blockSize, np int) (*core.Map, error) {
	if blockSize <= 0 {
		return nil, fmt.Errorf("baseline: plane block size %d", blockSize)
	}
	flat := make([][]*hw.Object, c.NumNodes())
	for i := range c.Nodes {
		for _, group := range nodePUs(c, i) {
			flat[i] = append(flat[i], group...)
		}
	}
	cursor := make([]int, c.NumNodes())
	var slots []slot
	node := 0
	remaining := 0
	for i := range flat {
		remaining += len(flat[i])
	}
	for remaining > 0 {
		// Find the next node with capacity, starting from `node`.
		tried := 0
		for tried < c.NumNodes() && cursor[node] >= len(flat[node]) {
			node = (node + 1) % c.NumNodes()
			tried++
		}
		if tried == c.NumNodes() {
			break
		}
		for k := 0; k < blockSize && cursor[node] < len(flat[node]); k++ {
			slots = append(slots, slot{node: node, pu: flat[node][cursor[node]]})
			cursor[node]++
			remaining--
		}
		node = (node + 1) % c.NumNodes()
	}
	return slotsToMap(c, slots, np, "plane")
}
