package netsim

import (
	"fmt"

	"lama/internal/cluster"
	"lama/internal/commpat"
	"lama/internal/core"
	"lama/internal/hw"
)

// IntraParams is the intra-node cost model: the latency (µs) and bandwidth
// (bytes/µs) of an exchange whose two PUs have their lowest common
// ancestor at a given level. Deeper LCAs (shared caches) are faster.
type IntraParams struct {
	Lat [hw.NumLevels]float64
	BW  [hw.NumLevels]float64
}

// DefaultIntra returns parameters loosely calibrated to a 2011-era NUMA
// server: shared-cache communication is several times cheaper than
// cross-socket, which in turn beats nothing but the network.
func DefaultIntra() IntraParams {
	var p IntraParams
	set := func(l hw.Level, lat, bw float64) {
		p.Lat[l] = lat
		p.BW[l] = bw
	}
	set(hw.LevelPU, 0.05, 40000)     // same PU (self-send buffers)
	set(hw.LevelCore, 0.08, 30000)   // sibling hardware threads
	set(hw.LevelL1, 0.10, 28000)     // shared L1
	set(hw.LevelL2, 0.15, 24000)     // shared L2
	set(hw.LevelL3, 0.30, 18000)     // shared L3
	set(hw.LevelNUMA, 0.45, 10000)   // same NUMA domain
	set(hw.LevelSocket, 0.60, 8000)  // same socket, cross NUMA
	set(hw.LevelBoard, 0.90, 5000)   // cross socket
	set(hw.LevelMachine, 1.20, 4000) // cross board
	return p
}

// Model evaluates communication costs for mapped jobs.
type Model struct {
	Intra IntraParams
	Net   Network
}

// NewModel builds a model with default intra-node parameters.
func NewModel(net Network) *Model {
	return &Model{Intra: DefaultIntra(), Net: net}
}

// Report summarizes the communication cost of one traffic matrix under
// one mapping.
type Report struct {
	// TotalTime is the sum over communicating pairs of latency +
	// bytes/bandwidth, in µs (a volume-weighted cost, not a schedule).
	TotalTime float64
	// MaxRankTime is the largest per-rank send+receive time, a proxy for
	// the application's critical path.
	MaxRankTime float64
	// IntraBytes and InterBytes split traffic by node locality.
	IntraBytes float64
	InterBytes float64
	// HopBytes is the classic Σ bytes × network hops metric over
	// inter-node traffic.
	HopBytes float64
	// AvgHops is HopBytes / InterBytes (0 when all traffic is local).
	AvgHops float64
	// MaxLinkLoad and MeanLinkLoad are per-link congestion figures for
	// networks that model links (torus); zero otherwise.
	MaxLinkLoad  float64
	MeanLinkLoad float64
}

// PairCost returns the cost in µs of moving the given bytes between two
// mapped ranks.
func (mo *Model) PairCost(c *cluster.Cluster, m *core.Map, a, b int, bytes float64) (float64, error) {
	if a < 0 || b < 0 || a >= m.NumRanks() || b >= m.NumRanks() {
		return 0, fmt.Errorf("netsim: rank out of range (%d, %d)", a, b)
	}
	pa, pb := &m.Placements[a], &m.Placements[b]
	if pa.Node != pb.Node {
		return mo.Net.Latency(pa.Node, pb.Node) + bytes/mo.Net.Bandwidth(pa.Node, pb.Node), nil
	}
	level := c.Node(pa.Node).Topo.CommonAncestorLevel(pa.PU(), pb.PU())
	return mo.Intra.Lat[level] + bytes/mo.Intra.BW[level], nil
}

// Evaluate computes the full report for a traffic matrix under a mapping.
// The matrix rank count must match the map's. Evaluation runs over the
// matrix's CSR view — nonzeros only — visiting the same pairs in the
// same order as the dense iteration did, so reports are unchanged.
func (mo *Model) Evaluate(c *cluster.Cluster, m *core.Map, tm *commpat.Matrix) (*Report, error) {
	if tm.Ranks() != m.NumRanks() {
		return nil, fmt.Errorf("netsim: traffic has %d ranks, map has %d", tm.Ranks(), m.NumRanks())
	}
	return mo.EvaluateSparse(c, m, tm.Sparse())
}

// EvaluateSparse computes the full report for CSR traffic under a
// mapping — the scale path: at 100k+ ranks sparse traffic is the only
// representable form. The traffic rank count must match the map's.
func (mo *Model) EvaluateSparse(c *cluster.Cluster, m *core.Map, tm *commpat.CSR) (*Report, error) {
	if tm.Ranks() != m.NumRanks() {
		return nil, fmt.Errorf("netsim: traffic has %d ranks, map has %d", tm.Ranks(), m.NumRanks())
	}
	rep := &Report{}
	perRank := make([]float64, m.NumRanks())
	flows := map[[2]int]float64{} // node pair -> bytes (for congestion)
	var firstErr error
	tm.Each(func(i, j int, bytes float64) {
		cost, err := mo.PairCost(c, m, i, j, bytes)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			return
		}
		rep.TotalTime += cost
		perRank[i] += cost
		perRank[j] += cost
		ni, nj := m.Placements[i].Node, m.Placements[j].Node
		if ni == nj {
			rep.IntraBytes += bytes
		} else {
			rep.InterBytes += bytes
			hops := float64(mo.Net.Hops(ni, nj))
			rep.HopBytes += bytes * hops
			flows[[2]int{ni, nj}] += bytes
		}
	})
	if firstErr != nil {
		return nil, firstErr
	}
	for _, t := range perRank {
		if t > rep.MaxRankTime {
			rep.MaxRankTime = t
		}
	}
	if rep.InterBytes > 0 {
		rep.AvgHops = rep.HopBytes / rep.InterBytes
	}
	if t3, ok := mo.Net.(*Torus3D); ok {
		rep.MaxLinkLoad, rep.MeanLinkLoad = t3.LinkLoads(flows)
	}
	return rep, nil
}
