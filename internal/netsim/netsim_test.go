package netsim

import (
	"math"
	"testing"

	"lama/internal/cluster"
	"lama/internal/commpat"
	"lama/internal/core"
	"lama/internal/hw"
	"lama/internal/torus"
)

func fig2Cluster(t *testing.T, nodes int) *cluster.Cluster {
	t.Helper()
	sp, _ := hw.Preset("fig2")
	return cluster.Homogeneous(nodes, sp)
}

func mapJob(t *testing.T, c *cluster.Cluster, layout string, np int) *core.Map {
	t.Helper()
	m, err := core.NewMapper(c, core.MustParseLayout(layout), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mp, err := m.Map(np)
	if err != nil {
		t.Fatal(err)
	}
	return mp
}

func TestFlatNetwork(t *testing.T) {
	n := NewFlat()
	if n.Name() != "flat" {
		t.Fatal("name")
	}
	if n.Latency(0, 0) != 0 || n.Hops(0, 0) != 0 {
		t.Fatal("self traffic should be free")
	}
	if n.Latency(0, 5) != n.Latency(3, 9) || n.Hops(0, 5) != 1 {
		t.Fatal("flat must be uniform")
	}
	if n.Bandwidth(0, 1) <= 0 {
		t.Fatal("bandwidth")
	}
}

func TestFatTree(t *testing.T) {
	ft := NewFatTree(4)
	if ft.Hops(0, 0) != 0 || ft.Hops(0, 3) != 2 || ft.Hops(0, 4) != 4 {
		t.Fatalf("hops: %d %d %d", ft.Hops(0, 0), ft.Hops(0, 3), ft.Hops(0, 4))
	}
	if ft.Latency(0, 3) >= ft.Latency(0, 4) {
		t.Fatal("inter-leaf latency should exceed intra-leaf")
	}
	if ft.Bandwidth(0, 3) <= ft.Bandwidth(0, 4) {
		t.Fatal("oversubscription should reduce inter-leaf bandwidth")
	}
	if ft.Name() == "" {
		t.Fatal("name")
	}
	// Oversub < 1 is clamped.
	ft2 := &FatTree{LeafSize: 2, LinkLat: 1, BW: 100, Oversub: 0}
	if ft2.Bandwidth(0, 3) != 100 {
		t.Fatal("oversub clamp")
	}
}

func TestTorusNetworkAndRouting(t *testing.T) {
	d := torus.Dims{X: 4, Y: 4, Z: 2}
	tn := NewTorus3D(d)
	if tn.Hops(0, 0) != 0 {
		t.Fatal("self hops")
	}
	a := d.NodeIndex(torus.Coord{X: 0, Y: 0, Z: 0})
	b := d.NodeIndex(torus.Coord{X: 3, Y: 2, Z: 1})
	// Wraparound x: 1 hop; y: 2 hops; z: 1 hop.
	if tn.Hops(a, b) != 4 {
		t.Fatalf("hops = %d, want 4", tn.Hops(a, b))
	}
	route := tn.Route(a, b)
	if len(route) != 4 {
		t.Fatalf("route length = %d, want 4", len(route))
	}
	// Dimension order: x link(s) first, then y, then z.
	if route[0].axis != 0 || route[1].axis != 1 || route[3].axis != 2 {
		t.Fatalf("route not dimension-ordered: %+v", route)
	}
	// Wraparound direction: x goes negative (0 -> 3 is one hop backwards).
	if route[0].dir != -1 {
		t.Fatalf("x direction = %d, want -1", route[0].dir)
	}
	if got := tn.Route(a, a); len(got) != 0 {
		t.Fatal("self route should be empty")
	}
	if tn.Latency(a, b) != 4*tn.LinkLat {
		t.Fatal("latency per hop")
	}
}

func TestTorusLinkLoads(t *testing.T) {
	d := torus.Dims{X: 4, Y: 1, Z: 1}
	tn := NewTorus3D(d)
	// Two flows crossing the same link 1->2: 0->2 (via 1) and 1->2.
	flows := map[[2]int]float64{
		{0, 2}: 100,
		{1, 2}: 50,
	}
	maxLoad, meanLoad := tn.LinkLoads(flows)
	if maxLoad != 150 {
		t.Fatalf("max link load = %v, want 150 (shared 1->2 link)", maxLoad)
	}
	if meanLoad <= 0 || meanLoad > maxLoad {
		t.Fatalf("mean = %v", meanLoad)
	}
	if mx, mn := tn.LinkLoads(nil); mx != 0 || mn != 0 {
		t.Fatal("empty flows")
	}
	// Self flows ignored.
	if mx, _ := tn.LinkLoads(map[[2]int]float64{{2, 2}: 10}); mx != 0 {
		t.Fatal("self flow routed")
	}
}

func TestDefaultIntraMonotone(t *testing.T) {
	p := DefaultIntra()
	// Deeper LCA (closer PUs) must be at least as fast in both latency
	// and bandwidth.
	for l := hw.LevelBoard; l <= hw.LevelPU; l++ {
		if p.Lat[l] > p.Lat[l-1] {
			t.Fatalf("latency not monotone at %s", l)
		}
		if p.BW[l] < p.BW[l-1] {
			t.Fatalf("bandwidth not monotone at %s", l)
		}
	}
}

func TestPairCostLocality(t *testing.T) {
	c := fig2Cluster(t, 2)
	m := mapJob(t, c, "csbnh", 24) // pack
	mo := NewModel(NewFlat())
	// Ranks 0,1 share a... csbnh: rank0 PU0 (core0), rank1 PU2 (core1):
	// same socket. Ranks 0 and 12 (h=1 pass): rank12 = PU1, same core.
	sameCore, err := mo.PairCost(c, m, 0, 12, 1000)
	if err != nil {
		t.Fatal(err)
	}
	sameSocket, err := mo.PairCost(c, m, 0, 1, 1000)
	if err != nil {
		t.Fatal(err)
	}
	crossSocket, err := mo.PairCost(c, m, 0, 3, 1000)
	if err != nil {
		t.Fatal(err)
	}
	crossNode, err := mo.PairCost(c, m, 0, 6, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !(sameCore < sameSocket && sameSocket < crossSocket && crossSocket < crossNode) {
		t.Fatalf("locality ordering violated: %v %v %v %v",
			sameCore, sameSocket, crossSocket, crossNode)
	}
	if _, err := mo.PairCost(c, m, 0, 99, 1); err == nil {
		t.Fatal("rank bounds")
	}
}

func TestEvaluateSplitsTraffic(t *testing.T) {
	c := fig2Cluster(t, 2)
	m := mapJob(t, c, "csbnh", 24)
	mo := NewModel(NewFlat())
	tm := commpat.Ring(24, 1000)
	rep, err := mo.Evaluate(c, m, tm)
	if err != nil {
		t.Fatal(err)
	}
	if rep.IntraBytes+rep.InterBytes != tm.Total() {
		t.Fatalf("traffic split %v + %v != %v", rep.IntraBytes, rep.InterBytes, tm.Total())
	}
	if rep.TotalTime <= 0 || rep.MaxRankTime <= 0 {
		t.Fatal("times must be positive")
	}
	if rep.MaxRankTime > rep.TotalTime {
		t.Fatal("per-rank time exceeds total")
	}
	if rep.AvgHops != 1 {
		t.Fatalf("flat AvgHops = %v", rep.AvgHops)
	}
	// Size mismatch.
	if _, err := mo.Evaluate(c, m, commpat.Ring(10, 1)); err == nil {
		t.Fatal("rank mismatch should fail")
	}
}

// TestPackingBeatsScatterForRing is the paper's core motivation: a
// locality-friendly placement of a nearest-neighbor app beats a scattered
// one.
func TestPackingBeatsScatterForRing(t *testing.T) {
	c := fig2Cluster(t, 2)
	tm := commpat.Ring(24, 100000)
	mo := NewModel(NewFlat())

	pack := mapJob(t, c, "csbnh", 24) // consecutive ranks share sockets
	scat := mapJob(t, c, "ncsbh", 24) // consecutive ranks alternate nodes

	rp, err := mo.Evaluate(c, pack, tm)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := mo.Evaluate(c, scat, tm)
	if err != nil {
		t.Fatal(err)
	}
	if rp.InterBytes >= rs.InterBytes {
		t.Fatalf("packing should keep more traffic on-node: %v vs %v",
			rp.InterBytes, rs.InterBytes)
	}
	if rp.TotalTime >= rs.TotalTime {
		t.Fatalf("packing should be cheaper: %v vs %v", rp.TotalTime, rs.TotalTime)
	}
}

func TestEvaluateTorusCongestion(t *testing.T) {
	sp, _ := hw.Preset("bgp-node")
	d := torus.Dims{X: 4, Y: 2, Z: 1}
	c := cluster.Homogeneous(d.Size(), sp)
	m, err := torus.Map(c, d, "txyz", 32)
	if err != nil {
		t.Fatal(err)
	}
	mo := NewModel(NewTorus3D(d))
	rep, err := mo.Evaluate(c, m, commpat.AllToAll(32, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaxLinkLoad <= 0 || rep.MeanLinkLoad <= 0 {
		t.Fatal("torus congestion missing")
	}
	if rep.MaxLinkLoad < rep.MeanLinkLoad {
		t.Fatal("max < mean")
	}
	if rep.AvgHops <= 1 {
		t.Fatalf("torus a2a AvgHops = %v, want > 1", rep.AvgHops)
	}
	if math.IsNaN(rep.TotalTime) {
		t.Fatal("NaN cost")
	}
}

func TestMatrixNet(t *testing.T) {
	lat := [][]float64{
		{0, 2, 5},
		{2, 0, 5},
		{5, 5, 0},
	}
	bw := [][]float64{
		{1, 1000, 500},
		{1000, 1, 500},
		{500, 500, 1},
	}
	n, err := NewMatrixNet(lat, bw)
	if err != nil {
		t.Fatal(err)
	}
	if n.Latency(0, 1) != 2 || n.Latency(0, 2) != 5 || n.Latency(1, 1) != 0 {
		t.Fatal("latency lookups")
	}
	if n.Bandwidth(0, 2) != 500 {
		t.Fatal("bandwidth lookup")
	}
	if n.Hops(0, 1) != 1 || n.Hops(2, 2) != 0 {
		t.Fatal("hops")
	}
	if n.Name() != "matrix(3)" {
		t.Fatalf("name = %s", n.Name())
	}
	// Out-of-range: conservative worst latency / slowest bandwidth.
	if n.Latency(0, 9) != 5 {
		t.Fatalf("oob latency = %v", n.Latency(0, 9))
	}
	if n.Bandwidth(0, 9) != 500 {
		t.Fatalf("oob bandwidth = %v", n.Bandwidth(0, 9))
	}
	// Works end to end in a model.
	sp, _ := hw.Preset("bgp-node")
	c := cluster.Homogeneous(3, sp)
	mapper, _ := core.NewMapper(c, core.MustParseLayout("ncsbh"), core.Options{})
	m, err := mapper.Map(12)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := NewModel(n).Evaluate(c, m, commpat.Ring(12, 10000))
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalTime <= 0 || rep.InterBytes <= 0 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestMatrixNetErrors(t *testing.T) {
	good := [][]float64{{0, 1}, {1, 0}}
	cases := []struct {
		lat, bw [][]float64
	}{
		{nil, nil},
		{good, [][]float64{{1, 1}}},          // bw wrong size
		{[][]float64{{0, 1}}, good},          // ragged lat
		{[][]float64{{1, 1}, {1, 0}}, good},  // nonzero diagonal
		{[][]float64{{0, 0}, {1, 0}}, good},  // zero latency
		{good, [][]float64{{1, 0}, {1, 1}}},  // zero bandwidth
		{good, [][]float64{{1, -2}, {1, 1}}}, // negative bandwidth
	}
	for i, c := range cases {
		if _, err := NewMatrixNet(c.lat, c.bw); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestDragonfly(t *testing.T) {
	df := NewDragonfly(4)
	if df.Name() != "dragonfly(4)" {
		t.Fatal("name")
	}
	if df.Hops(0, 0) != 0 || df.Hops(0, 3) != 1 || df.Hops(0, 4) != 3 {
		t.Fatalf("hops: %d %d %d", df.Hops(0, 0), df.Hops(0, 3), df.Hops(0, 4))
	}
	if df.Latency(0, 0) != 0 {
		t.Fatal("self latency")
	}
	if df.Latency(0, 3) >= df.Latency(0, 4) {
		t.Fatal("cross-group latency should exceed intra-group")
	}
	if df.Bandwidth(0, 3) <= df.Bandwidth(0, 4) {
		t.Fatal("global taper should reduce bandwidth")
	}
	// Taper clamp and degenerate group size.
	df2 := &Dragonfly{GroupSize: 0, LocalLat: 1, GlobalLat: 2, BW: 100, Taper: 0}
	if df2.Bandwidth(0, 1) != 100 {
		t.Fatal("taper clamp")
	}
	// End to end.
	sp, _ := hw.Preset("bgp-node")
	c := cluster.Homogeneous(8, sp)
	mapper, _ := core.NewMapper(c, core.MustParseLayout("csbnh"), core.Options{})
	m, err := mapper.Map(32)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := NewModel(NewDragonfly(4)).Evaluate(c, m, commpat.AllToAll(32, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if rep.AvgHops <= 1 || rep.AvgHops >= 3 {
		t.Fatalf("a2a AvgHops = %v, want between 1 and 3", rep.AvgHops)
	}
}
