package netsim

import (
	"fmt"
	"strconv"
	"strings"

	"lama/internal/cluster"
	"lama/internal/commpat"
	"lama/internal/core"
	"lama/internal/hw"
)

// Cost is the incremental evaluator of the sparse communication
// objective J(C,D,Π) — the same volume-weighted latency + bytes/bandwidth
// sum Model.Evaluate reports as TotalTime — held as mutable flat state so
// candidate placement changes are priced in O(degree) instead of O(nnz).
// NewCost computes the full J once over the CSR traffic; DeltaSwap and
// DeltaMove then price a swap or move by re-costing only the edges
// incident to the affected ranks, and ApplySwap/ApplyMove commit one.
//
// Intra-node costs come from per-shape LCA tables (uint8 level per PU
// ordinal pair) and inter-node costs from the flat Distances provider, so
// the steady-state methods never touch the topology tree or the Network
// interface: they are allocation-free (//lama:hotpath, enforced by
// lamavet, pinned by TestDeltaAllocationFree).
type Cost struct {
	dist *Distances
	csr  *commpat.CSR

	// Per-rank placement state: flat int32 mirrors of core.Map.
	node  []int32 // rank -> node index
	puOS  []int32 // rank -> representative PU OS index
	puIdx []int32 // rank -> dense PU ordinal in the node's LCA table

	// Merged incident adjacency: every rank's communication partners in
	// either direction, peers ascending, with outgoing (rank->peer) and
	// incoming (peer->rank) volumes kept separately so asymmetric
	// traffic is priced honestly.
	adjOff  []int32
	adjPeer []int32
	adjOut  []float64
	adjIn   []float64

	tabOf []int32 // node -> index into tabs
	tabs  []*lcaTable

	intraLat   [hw.NumLevels]float64
	intraInvBW [hw.NumLevels]float64

	j float64
}

// lcaTable is one node shape's PU-pair lowest-common-ancestor levels
// precomputed into a flat table, so the hot evaluator never calls
// Topology.CommonAncestorLevel (which allocates a map per call). Tables
// are shared between nodes whose tree structure and PU OS numbering are
// identical.
type lcaTable struct {
	n     int32
	osIdx []int32 // PU OS index -> dense ordinal, -1 when absent
	level []uint8 // ordinal pair i*n+j -> LCA level
}

//lama:hotpath
func (t *lcaTable) lookup(os int) int32 {
	if os < 0 || os >= len(t.osIdx) {
		return -1
	}
	return t.osIdx[os]
}

// lcaKey identifies topologies whose LCA tables are interchangeable:
// same tree structure (ShapeSig) and same PU OS numbering in tree order.
func lcaKey(t *hw.Topology) string {
	var sb strings.Builder
	sb.WriteString(t.ShapeSig())
	for _, pu := range t.Objects(hw.LevelPU) {
		sb.WriteByte(':')
		sb.WriteString(strconv.Itoa(pu.OS))
	}
	return sb.String()
}

// buildLCATable walks every PU pair's ancestor chains once; equivalent
// to Topology.CommonAncestorLevel on each pair, table-ized.
func buildLCATable(t *hw.Topology) *lcaTable {
	pus := t.Objects(hw.LevelPU)
	n := len(pus)
	maxOS := 0
	for _, pu := range pus {
		if pu.OS > maxOS {
			maxOS = pu.OS
		}
	}
	tab := &lcaTable{n: int32(n), osIdx: make([]int32, maxOS+1), level: make([]uint8, n*n)}
	for i := range tab.osIdx {
		tab.osIdx[i] = -1
	}
	for i, pu := range pus {
		tab.osIdx[pu.OS] = int32(i)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				tab.level[i*n+j] = uint8(hw.LevelPU)
				continue
			}
			xa, xb := pus[i], pus[j]
			for xa != xb {
				if xa.Level >= xb.Level {
					xa = xa.Parent
				} else {
					xb = xb.Parent
				}
			}
			tab.level[i*n+j] = uint8(xa.Level)
		}
	}
	return tab
}

// NewCost builds the evaluator for one cluster + model + traffic + map
// and computes the initial J. Every rank must be placed on a known node
// with a PU that exists there.
func NewCost(c *cluster.Cluster, mo *Model, tm *commpat.CSR, m *core.Map) (*Cost, error) {
	if c == nil || mo == nil || tm == nil || m == nil {
		return nil, fmt.Errorf("netsim: cost needs a cluster, a model, traffic, and a map")
	}
	np := m.NumRanks()
	if tm.Ranks() != np {
		return nil, fmt.Errorf("netsim: traffic has %d ranks, map has %d", tm.Ranks(), np)
	}
	dist, err := NewDistances(mo.Net, c.NumNodes())
	if err != nil {
		return nil, err
	}
	cs := &Cost{dist: dist, csr: tm, intraLat: mo.Intra.Lat}
	for l := range cs.intraInvBW {
		if bw := mo.Intra.BW[l]; bw > 0 {
			cs.intraInvBW[l] = 1 / bw
		}
	}

	cs.tabOf = make([]int32, c.NumNodes())
	keys := map[string]int32{}
	for ni, nd := range c.Nodes {
		key := lcaKey(nd.Topo)
		id, ok := keys[key]
		if !ok {
			id = int32(len(cs.tabs))
			cs.tabs = append(cs.tabs, buildLCATable(nd.Topo))
			keys[key] = id
		}
		cs.tabOf[ni] = id
	}

	cs.node = make([]int32, np)
	cs.puOS = make([]int32, np)
	cs.puIdx = make([]int32, np)
	for r := 0; r < np; r++ {
		p := &m.Placements[r]
		if p.Node < 0 || p.Node >= c.NumNodes() {
			return nil, fmt.Errorf("netsim: rank %d on unknown node %d", r, p.Node)
		}
		os := p.PU()
		idx := cs.tabs[cs.tabOf[p.Node]].lookup(os)
		if idx < 0 {
			return nil, fmt.Errorf("netsim: rank %d claims unknown PU %d on node %d", r, os, p.Node)
		}
		cs.node[r], cs.puOS[r], cs.puIdx[r] = int32(p.Node), int32(os), idx
	}

	cs.buildAdjacency(tm, np)

	tm.Each(func(i, j int, bytes float64) {
		cs.j += cs.edgeCost(cs.node[i], cs.puIdx[i], cs.node[j], cs.puIdx[j], bytes)
	})
	return cs, nil
}

// buildAdjacency merges each rank's outgoing and incoming CSR entries
// into one peer-sorted incident list.
func (cs *Cost) buildAdjacency(tm *commpat.CSR, np int) {
	off := make([]int32, np+1)
	tm.Each(func(i, j int, bytes float64) {
		off[i+1]++
		off[j+1]++
	})
	for r := 0; r < np; r++ {
		off[r+1] += off[r]
	}
	total := off[np]
	peer := make([]int32, total)
	outv := make([]float64, total)
	inv := make([]float64, total)
	cur := make([]int32, np)
	copy(cur, off[:np])
	tm.Each(func(i, j int, bytes float64) {
		k := cur[i]
		cur[i]++
		peer[k], outv[k] = int32(j), bytes
		k = cur[j]
		cur[j]++
		peer[k], inv[k] = int32(i), bytes
	})

	cs.adjOff = make([]int32, np+1)
	w := int32(0)
	for r := 0; r < np; r++ {
		lo, hi := off[r], off[r+1]
		// Insertion sort the rank's slice by peer (ranges are small:
		// the rank's degree), keeping the three arrays in tandem.
		for k := lo + 1; k < hi; k++ {
			for x := k; x > lo && peer[x-1] > peer[x]; x-- {
				peer[x-1], peer[x] = peer[x], peer[x-1]
				outv[x-1], outv[x] = outv[x], outv[x-1]
				inv[x-1], inv[x] = inv[x], inv[x-1]
			}
		}
		// Merge duplicate peers (an out and an in entry), compacting
		// globally in place: w never passes the read cursor.
		cs.adjOff[r] = w
		for k := lo; k < hi; k++ {
			if w > cs.adjOff[r] && peer[w-1] == peer[k] {
				outv[w-1] += outv[k]
				inv[w-1] += inv[k]
				continue
			}
			peer[w], outv[w], inv[w] = peer[k], outv[k], inv[k]
			w++
		}
	}
	cs.adjOff[np] = w
	cs.adjPeer, cs.adjOut, cs.adjIn = peer[:w], outv[:w], inv[:w]
}

// edgeCost prices one directed exchange between two placements given as
// (node, PU ordinal) pairs.
//
//lama:hotpath
func (cs *Cost) edgeCost(ni, pi, nj, pj int32, bytes float64) float64 {
	if ni == nj {
		tab := cs.tabs[cs.tabOf[ni]]
		lvl := tab.level[pi*tab.n+pj]
		return cs.intraLat[lvl] + bytes*cs.intraInvBW[lvl]
	}
	cl := cs.dist.Class(int(ni), int(nj))
	return cs.dist.lat[cl] + bytes*cs.dist.invBW[cl]
}

// J returns the current objective value.
func (cs *Cost) J() float64 { return cs.j }

// NodeOf returns rank r's current node index.
//
//lama:hotpath
func (cs *Cost) NodeOf(r int) int { return int(cs.node[r]) }

// PUOf returns rank r's current representative PU OS index.
func (cs *Cost) PUOf(r int) int { return int(cs.puOS[r]) }

// Degree returns the number of distinct communication partners of r.
func (cs *Cost) Degree(r int) int { return int(cs.adjOff[r+1] - cs.adjOff[r]) }

// Neighbors returns rank r's merged incident adjacency: peers ascending
// with the outgoing and incoming volume per peer. The slices alias the
// evaluator's state — read only.
//
//lama:hotpath
func (cs *Cost) Neighbors(r int) (peers []int32, out, in []float64) {
	lo, hi := cs.adjOff[r], cs.adjOff[r+1]
	return cs.adjPeer[lo:hi], cs.adjOut[lo:hi], cs.adjIn[lo:hi]
}

// DeltaSwap returns the change in J if ranks a and b exchanged their
// placements, without applying it, in O(degree(a)+degree(b)).
//
//lama:hotpath
func (cs *Cost) DeltaSwap(a, b int) float64 {
	if a == b {
		return 0
	}
	na, pa := cs.node[a], cs.puIdx[a]
	nb, pb := cs.node[b], cs.puIdx[b]
	if na == nb && pa == pb {
		return 0 // same processor (oversubscription): swapping changes nothing
	}
	delta := 0.0
	b32 := int32(b)
	for k := cs.adjOff[a]; k < cs.adjOff[a+1]; k++ {
		p := cs.adjPeer[k]
		if p == b32 {
			// The a<->b edges keep both endpoints, exchanged.
			if v := cs.adjOut[k]; v > 0 {
				delta += cs.edgeCost(nb, pb, na, pa, v) - cs.edgeCost(na, pa, nb, pb, v)
			}
			if v := cs.adjIn[k]; v > 0 {
				delta += cs.edgeCost(na, pa, nb, pb, v) - cs.edgeCost(nb, pb, na, pa, v)
			}
			continue
		}
		pn, pp := cs.node[p], cs.puIdx[p]
		if v := cs.adjOut[k]; v > 0 {
			delta += cs.edgeCost(nb, pb, pn, pp, v) - cs.edgeCost(na, pa, pn, pp, v)
		}
		if v := cs.adjIn[k]; v > 0 {
			delta += cs.edgeCost(pn, pp, nb, pb, v) - cs.edgeCost(pn, pp, na, pa, v)
		}
	}
	a32 := int32(a)
	for k := cs.adjOff[b]; k < cs.adjOff[b+1]; k++ {
		p := cs.adjPeer[k]
		if p == a32 {
			continue // priced from a's side
		}
		pn, pp := cs.node[p], cs.puIdx[p]
		if v := cs.adjOut[k]; v > 0 {
			delta += cs.edgeCost(na, pa, pn, pp, v) - cs.edgeCost(nb, pb, pn, pp, v)
		}
		if v := cs.adjIn[k]; v > 0 {
			delta += cs.edgeCost(pn, pp, na, pa, v) - cs.edgeCost(pn, pp, nb, pb, v)
		}
	}
	return delta
}

// DeltaMove returns the change in J if rank r moved to the given PU (an
// OS index) on the given node, and whether that PU exists there, in
// O(degree(r)).
//
//lama:hotpath
func (cs *Cost) DeltaMove(r, node, pu int) (float64, bool) {
	if node < 0 || node >= len(cs.tabOf) {
		return 0, false
	}
	idx := cs.tabs[cs.tabOf[node]].lookup(pu)
	if idx < 0 {
		return 0, false
	}
	nr, pr := cs.node[r], cs.puIdx[r]
	nn, pn := int32(node), idx
	if nr == nn && pr == pn {
		return 0, true
	}
	delta := 0.0
	for k := cs.adjOff[r]; k < cs.adjOff[r+1]; k++ {
		p := cs.adjPeer[k]
		po, pi := cs.node[p], cs.puIdx[p]
		if v := cs.adjOut[k]; v > 0 {
			delta += cs.edgeCost(nn, pn, po, pi, v) - cs.edgeCost(nr, pr, po, pi, v)
		}
		if v := cs.adjIn[k]; v > 0 {
			delta += cs.edgeCost(po, pi, nn, pn, v) - cs.edgeCost(po, pi, nr, pr, v)
		}
	}
	return delta, true
}

// ApplySwap commits the swap and returns its delta.
//
//lama:hotpath
func (cs *Cost) ApplySwap(a, b int) float64 {
	d := cs.DeltaSwap(a, b)
	cs.node[a], cs.node[b] = cs.node[b], cs.node[a]
	cs.puOS[a], cs.puOS[b] = cs.puOS[b], cs.puOS[a]
	cs.puIdx[a], cs.puIdx[b] = cs.puIdx[b], cs.puIdx[a]
	cs.j += d
	return d
}

// ApplyMove commits the move and returns its delta; a false second
// return means the PU does not exist on the node and nothing changed.
//
//lama:hotpath
func (cs *Cost) ApplyMove(r, node, pu int) (float64, bool) {
	d, ok := cs.DeltaMove(r, node, pu)
	if !ok {
		return 0, false
	}
	cs.node[r] = int32(node)
	cs.puOS[r] = int32(pu)
	cs.puIdx[r] = cs.tabs[cs.tabOf[node]].lookup(pu)
	cs.j += d
	return d, true
}

// Recompute re-derives J from scratch in O(nnz) without modifying state
// — the drift guard the differential tests lean on.
func (cs *Cost) Recompute() float64 {
	j := 0.0
	cs.csr.Each(func(a, b int, bytes float64) {
		j += cs.edgeCost(cs.node[a], cs.puIdx[a], cs.node[b], cs.puIdx[b], bytes)
	})
	return j
}
