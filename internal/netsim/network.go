// Package netsim is a communication-cost simulator for mapped parallel
// jobs. It combines an intra-node model (cost by the topology level of the
// lowest common ancestor of two PUs) with pluggable inter-node network
// models (flat, two-level fat-tree, 3-D torus with link congestion), and
// evaluates a traffic matrix against a mapping plan. The paper's
// motivation — placement changes communication cost (§I, §II) — is made
// measurable by this package.
package netsim

import (
	"fmt"

	"lama/internal/torus"
)

// Network models the cluster interconnect between node indices.
type Network interface {
	// Name identifies the model in reports.
	Name() string
	// Latency is the one-way latency in microseconds between two nodes.
	Latency(a, b int) float64
	// Bandwidth is the point-to-point bandwidth in bytes/µs between two
	// nodes.
	Bandwidth(a, b int) float64
	// Hops is the number of network links a message crosses.
	Hops(a, b int) int
}

// Flat is a full-crossbar network: every node pair is one hop at constant
// latency and bandwidth (an idealized non-blocking switch).
type Flat struct {
	// Lat is the node-to-node latency in µs.
	Lat float64
	// BW is the point-to-point bandwidth in bytes/µs.
	BW float64
}

// NewFlat returns a flat network with 2011-era InfiniBand-like defaults
// (1.5 µs, 3.2 GB/s).
func NewFlat() *Flat { return &Flat{Lat: 1.5, BW: 3200} }

// Name implements Network.
func (f *Flat) Name() string { return "flat" }

// Latency implements Network.
func (f *Flat) Latency(a, b int) float64 {
	if a == b {
		return 0
	}
	return f.Lat
}

// Bandwidth implements Network.
func (f *Flat) Bandwidth(a, b int) float64 { return f.BW }

// Hops implements Network.
func (f *Flat) Hops(a, b int) int {
	if a == b {
		return 0
	}
	return 1
}

// FatTree is a two-level fat-tree: nodes attach to leaf switches of
// LeafSize ports; traffic within a leaf crosses 2 links, traffic between
// leaves crosses 4 (up to the core and back down).
type FatTree struct {
	// LeafSize is the number of nodes per leaf switch.
	LeafSize int
	// LinkLat is the per-link latency in µs.
	LinkLat float64
	// BW is the per-path bandwidth in bytes/µs.
	BW float64
	// Oversub is the uplink oversubscription factor (1 = non-blocking):
	// inter-leaf bandwidth is BW/Oversub.
	Oversub float64
}

// NewFatTree returns a fat-tree with the given leaf size and 2:1 uplink
// oversubscription.
func NewFatTree(leafSize int) *FatTree {
	return &FatTree{LeafSize: leafSize, LinkLat: 0.7, BW: 3200, Oversub: 2}
}

// Name implements Network.
func (t *FatTree) Name() string { return fmt.Sprintf("fat-tree(%d)", t.LeafSize) }

func (t *FatTree) leaf(n int) int { return n / t.LeafSize }

// Hops implements Network.
func (t *FatTree) Hops(a, b int) int {
	switch {
	case a == b:
		return 0
	case t.leaf(a) == t.leaf(b):
		return 2
	default:
		return 4
	}
}

// Latency implements Network.
func (t *FatTree) Latency(a, b int) float64 { return float64(t.Hops(a, b)) * t.LinkLat }

// Bandwidth implements Network.
func (t *FatTree) Bandwidth(a, b int) float64 {
	if t.leaf(a) == t.leaf(b) {
		return t.BW
	}
	ov := t.Oversub
	if ov < 1 {
		ov = 1
	}
	return t.BW / ov
}

// Torus3D is a 3-D torus network with dimension-ordered routing, the
// BlueGene-style interconnect of the paper's related work (§II).
type Torus3D struct {
	// Dims is the torus shape; the cluster's node i sits at Dims.CoordOf(i).
	Dims torus.Dims
	// LinkLat is the per-hop latency in µs.
	LinkLat float64
	// BW is the per-link bandwidth in bytes/µs.
	BW float64
}

// NewTorus3D returns a torus with BlueGene/P-like parameters.
func NewTorus3D(d torus.Dims) *Torus3D {
	return &Torus3D{Dims: d, LinkLat: 0.5, BW: 425}
}

// Name implements Network.
func (t *Torus3D) Name() string {
	return fmt.Sprintf("torus(%dx%dx%d)", t.Dims.X, t.Dims.Y, t.Dims.Z)
}

// Hops implements Network.
func (t *Torus3D) Hops(a, b int) int { return t.Dims.HopDistance(a, b) }

// Latency implements Network.
func (t *Torus3D) Latency(a, b int) float64 { return float64(t.Hops(a, b)) * t.LinkLat }

// Bandwidth implements Network.
func (t *Torus3D) Bandwidth(a, b int) float64 { return t.BW }

// link identifies one directed torus link: the unit step from a node along
// one axis.
type link struct {
	node int
	axis int // 0=x 1=y 2=z
	dir  int // +1 or -1
}

// Route returns the dimension-ordered (X, then Y, then Z, shortest
// direction) sequence of links from node a to node b.
func (t *Torus3D) Route(a, b int) []link {
	var links []link
	ca, cb := t.Dims.CoordOf(a), t.Dims.CoordOf(b)
	cur := ca
	sizes := [3]int{t.Dims.X, t.Dims.Y, t.Dims.Z}
	get := func(c torus.Coord, axis int) int {
		switch axis {
		case 0:
			return c.X
		case 1:
			return c.Y
		default:
			return c.Z
		}
	}
	set := func(c *torus.Coord, axis, v int) {
		switch axis {
		case 0:
			c.X = v
		case 1:
			c.Y = v
		default:
			c.Z = v
		}
	}
	for axis := 0; axis < 3; axis++ {
		size := sizes[axis]
		from, to := get(cur, axis), get(cb, axis)
		if from == to {
			continue
		}
		// Shortest direction with wraparound; ties go positive.
		fwd := ((to - from) + size) % size
		dir := 1
		steps := fwd
		if fwd > size-fwd {
			dir = -1
			steps = size - fwd
		}
		for s := 0; s < steps; s++ {
			links = append(links, link{node: t.Dims.NodeIndex(cur), axis: axis, dir: dir})
			set(&cur, axis, ((get(cur, axis)+dir)+size)%size)
		}
	}
	return links
}

// LinkLoads accumulates per-link byte loads for a set of node-to-node
// flows under dimension-ordered routing and returns the maximum and mean
// link load — the congestion measure used by the torus experiments.
func (t *Torus3D) LinkLoads(flows map[[2]int]float64) (maxLoad, meanLoad float64) {
	loads := map[link]float64{}
	for pair, bytes := range flows {
		if pair[0] == pair[1] || bytes <= 0 {
			continue
		}
		for _, l := range t.Route(pair[0], pair[1]) {
			loads[l] += bytes
		}
	}
	if len(loads) == 0 {
		return 0, 0
	}
	total := 0.0
	for _, v := range loads {
		total += v
		if v > maxLoad {
			maxLoad = v
		}
	}
	return maxLoad, total / float64(len(loads))
}

// RouteKeys returns stable string identifiers for the links on the
// dimension-ordered route from a to b, for external per-link accounting.
func (t *Torus3D) RouteKeys(a, b int) []string {
	route := t.Route(a, b)
	keys := make([]string, len(route))
	for i, l := range route {
		keys[i] = fmt.Sprintf("%d:%d:%d", l.node, l.axis, l.dir)
	}
	return keys
}
