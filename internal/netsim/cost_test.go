package netsim

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"lama/internal/cluster"
	"lama/internal/commpat"
	"lama/internal/core"
	"lama/internal/hw"
	"lama/internal/torus"
)

// relClose compares with relative tolerance: bytes*invBW vs bytes/BW
// differ by ulps, and the differential tests sum many such terms.
func relClose(a, b, tol float64) bool {
	d := math.Abs(a - b)
	if d <= tol {
		return true
	}
	return d <= tol*math.Max(math.Abs(a), math.Abs(b))
}

// testNetworks builds one of each network kind sized for n nodes.
func testNetworks(t *testing.T, n int) map[string]Network {
	t.Helper()
	lat := make([][]float64, n)
	bw := make([][]float64, n)
	r := rand.New(rand.NewSource(7))
	for i := 0; i < n; i++ {
		lat[i] = make([]float64, n)
		bw[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			if i == j {
				bw[i][j] = 1
				continue
			}
			lat[i][j] = 0.5 + float64((i+j)%3)
			bw[i][j] = 1000 + 500*float64(r.Intn(3))
		}
	}
	mn, err := NewMatrixNet(lat, bw)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Network{
		"flat":      NewFlat(),
		"fat-tree":  NewFatTree(2),
		"dragonfly": NewDragonfly(2),
		"torus":     NewTorus3D(torus.FitDims(n)),
		"matrix":    mn,
	}
}

func TestDistancesMatchNetworks(t *testing.T) {
	const n = 8
	for name, net := range testNetworks(t, n) {
		d, err := NewDistances(net, n)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if got, want := int(d.Hops(a, b)), net.Hops(a, b); got != want {
					t.Fatalf("%s hops(%d,%d) = %d, want %d", name, a, b, got, want)
				}
				const bytes = 4096
				want := net.Latency(a, b) + bytes/net.Bandwidth(a, b)
				if a == b {
					want = net.Latency(a, b) // self pairs carry no transfer cost
				}
				if got := d.PairCost(a, b, bytes); !relClose(got, want, 1e-12) {
					t.Fatalf("%s paircost(%d,%d) = %g, want %g", name, a, b, got, want)
				}
			}
		}
	}
}

func TestDistancesRejectsHugeMatrixNet(t *testing.T) {
	lat := [][]float64{{0, 1}, {1, 0}}
	bw := [][]float64{{1, 1}, {1, 1}}
	mn, err := NewMatrixNet(lat, bw)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewDistances(mn, MaxPairNodes+1); err == nil {
		t.Fatal("want error past MaxPairNodes")
	}
}

// testClusters returns the placement substrates the differential tests
// run over: homogeneous, heterogeneous, and one with a failed node.
func testClusters(t *testing.T) map[string]*cluster.Cluster {
	t.Helper()
	fig2, _ := hw.Preset("fig2")
	neh, _ := hw.Preset("nehalem-ep")
	hetero := cluster.FromSpecs(fig2, neh, fig2, neh, fig2, neh)
	failed := cluster.Homogeneous(6, fig2)
	if !failed.FailNode(2) {
		t.Fatal("FailNode")
	}
	return map[string]*cluster.Cluster{
		"homog":  cluster.Homogeneous(6, fig2),
		"hetero": hetero,
		"failed": failed,
	}
}

func testTraffic(np int) map[string]*commpat.CSR {
	out := map[string]*commpat.CSR{
		"alltoall": commpat.AllToAll(np, 512).Sparse(),
		"random":   commpat.RandomPairs(np, 3*np, 2048, 42).Sparse(),
	}
	for _, sp := range commpat.SparsePatterns() {
		out[sp.Name] = sp.Gen(np, 1024)
	}
	return out
}

func TestCostMatchesEvaluate(t *testing.T) {
	for cname, c := range testClusters(t) {
		np := c.TotalSlots()
		if np > 48 {
			np = 48
		}
		m := mapJob(t, c, "csbnh", np)
		for nname, net := range testNetworks(t, c.NumNodes()) {
			mo := NewModel(net)
			for pname, tm := range testTraffic(np) {
				rep, err := mo.EvaluateSparse(c, m, tm)
				if err != nil {
					t.Fatalf("%s/%s/%s: %v", cname, nname, pname, err)
				}
				cost, err := NewCost(c, mo, tm, m)
				if err != nil {
					t.Fatalf("%s/%s/%s: %v", cname, nname, pname, err)
				}
				if !relClose(cost.J(), rep.TotalTime, 1e-9) {
					t.Fatalf("%s/%s/%s: J = %g, Evaluate = %g",
						cname, nname, pname, cost.J(), rep.TotalTime)
				}
				if !relClose(cost.Recompute(), cost.J(), 1e-12) {
					t.Fatalf("%s/%s/%s: Recompute drifted", cname, nname, pname)
				}
			}
		}
	}
}

// swapMapPlacements mirrors netorder's placement swap for the oracle map.
func swapMapPlacements(m *core.Map, a, b int) {
	pa, pb := &m.Placements[a], &m.Placements[b]
	*pa, *pb = *pb, *pa
	pa.Rank, pb.Rank = a, b
}

func cloneMap(m *core.Map) *core.Map {
	out := &core.Map{Layout: m.Layout, Sweeps: m.Sweeps,
		Placements: append([]core.Placement(nil), m.Placements...)}
	return out
}

func TestDeltaSwapDifferential(t *testing.T) {
	for cname, c := range testClusters(t) {
		np := c.TotalSlots()
		if np > 36 {
			np = 36
		}
		m := mapJob(t, c, "csbnh", np)
		for nname, net := range testNetworks(t, c.NumNodes()) {
			mo := NewModel(net)
			for pname, tm := range testTraffic(np) {
				cost, err := NewCost(c, mo, tm, m)
				if err != nil {
					t.Fatal(err)
				}
				oracle := cloneMap(m)
				r := rand.New(rand.NewSource(99))
				for step := 0; step < 40; step++ {
					a, b := r.Intn(np), r.Intn(np)
					d := cost.DeltaSwap(a, b)
					if got := cost.ApplySwap(a, b); got != d {
						t.Fatalf("ApplySwap delta mismatch")
					}
					swapMapPlacements(oracle, a, b)
					rep, err := mo.EvaluateSparse(c, oracle, tm)
					if err != nil {
						t.Fatal(err)
					}
					if !relClose(cost.J(), rep.TotalTime, 1e-9) {
						t.Fatalf("%s/%s/%s step %d swap(%d,%d): J = %g, oracle = %g",
							cname, nname, pname, step, a, b, cost.J(), rep.TotalTime)
					}
					if !relClose(cost.J(), cost.Recompute(), 1e-9) {
						t.Fatalf("%s/%s/%s step %d: J drifted from Recompute", cname, nname, pname, step)
					}
				}
			}
		}
	}
}

func TestDeltaMoveDifferential(t *testing.T) {
	for cname, c := range testClusters(t) {
		np := c.TotalSlots() / 2 // leave headroom so moves have free PUs
		if np > 24 {
			np = 24
		}
		m := mapJob(t, c, "csbnh", np)
		for nname, net := range testNetworks(t, c.NumNodes()) {
			mo := NewModel(net)
			tm := commpat.RandomPairs(np, 2*np, 1024, 5).Sparse()
			cost, err := NewCost(c, mo, tm, m)
			if err != nil {
				t.Fatal(err)
			}
			oracle := cloneMap(m)
			r := rand.New(rand.NewSource(17))
			moved := 0
			for step := 0; step < 60; step++ {
				rk := r.Intn(np)
				node := r.Intn(c.NumNodes())
				pus := c.Node(node).Topo.Objects(hw.LevelPU)
				pu := pus[r.Intn(len(pus))].OS
				d, ok := cost.DeltaMove(rk, node, pu)
				if !ok {
					continue
				}
				if got, ok2 := cost.ApplyMove(rk, node, pu); !ok2 || got != d {
					t.Fatalf("ApplyMove mismatch")
				}
				moved++
				oracle.Placements[rk].Node = node
				oracle.Placements[rk].NodeName = c.Nodes[node].Name
				oracle.Placements[rk].PUs = []int{pu}
				rep, err := mo.EvaluateSparse(c, oracle, tm)
				if err != nil {
					t.Fatal(err)
				}
				if !relClose(cost.J(), rep.TotalTime, 1e-9) {
					t.Fatalf("%s/%s step %d move(%d->%d/%d): J = %g, oracle = %g",
						cname, nname, step, rk, node, pu, cost.J(), rep.TotalTime)
				}
			}
			if moved == 0 {
				t.Fatalf("%s/%s: no move applied", cname, nname)
			}
		}
	}
}

func TestDeltaMoveRejectsUnknownPU(t *testing.T) {
	c := testClusters(t)["homog"]
	m := mapJob(t, c, "csbnh", 12)
	tm := commpat.Ring(12, 100).Sparse()
	cost, err := NewCost(c, NewModel(NewFlat()), tm, m)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := cost.DeltaMove(0, 0, 9999); ok {
		t.Fatal("unknown PU accepted")
	}
	if _, ok := cost.DeltaMove(0, -1, 0); ok {
		t.Fatal("bad node accepted")
	}
}

func TestDeltaSwapTrivial(t *testing.T) {
	c := testClusters(t)["homog"]
	m := mapJob(t, c, "csbnh", 12)
	tm := commpat.Ring(12, 100).Sparse()
	cost, err := NewCost(c, NewModel(NewFlat()), tm, m)
	if err != nil {
		t.Fatal(err)
	}
	if d := cost.DeltaSwap(3, 3); d != 0 {
		t.Fatalf("self swap delta %g", d)
	}
}

func TestCostErrors(t *testing.T) {
	c := testClusters(t)["homog"]
	m := mapJob(t, c, "csbnh", 12)
	mo := NewModel(NewFlat())
	if _, err := NewCost(c, mo, commpat.Ring(8, 1).Sparse(), m); err == nil ||
		!strings.Contains(err.Error(), "traffic has") {
		t.Fatalf("rank mismatch: %v", err)
	}
	if _, err := NewCost(nil, mo, commpat.Ring(12, 1).Sparse(), m); err == nil {
		t.Fatal("nil cluster accepted")
	}
}

// TestDeltaAllocationFree pins the hot path: pricing and applying swaps
// and moves allocates nothing in steady state.
func TestDeltaAllocationFree(t *testing.T) {
	c := testClusters(t)["homog"]
	np := 24
	m := mapJob(t, c, "csbnh", np)
	tm := commpat.RandomPairs(np, 3*np, 1024, 3).Sparse()
	cost, err := NewCost(c, NewModel(NewFatTree(2)), tm, m)
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		a, b := i%np, (i*7+3)%np
		cost.DeltaSwap(a, b)
		cost.ApplySwap(a, b)
		cost.ApplySwap(a, b) // undo, keeping state bounded
		cost.DeltaMove(a, cost.NodeOf(b), cost.PUOf(b))
		i++
	})
	if allocs != 0 {
		t.Fatalf("delta path allocates %v per op, want 0", allocs)
	}
}

func benchSetup(b *testing.B, np int) (*cluster.Cluster, *Model, *commpat.CSR, *core.Map) {
	b.Helper()
	sp, _ := hw.Preset("nehalem-ep")
	nodes := np / 16
	if nodes < 1 {
		nodes = 1
	}
	c := cluster.Homogeneous(nodes, sp)
	mapper, err := core.NewMapper(c, core.MustParseLayout("csbnh"), core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	m, err := mapper.Map(np)
	if err != nil {
		b.Fatal(err)
	}
	gen, _ := commpat.SparseByName("ring")
	return c, NewModel(NewDragonfly(8)), gen(np, 4096), m
}

// BenchmarkDeltaSwap vs BenchmarkEvaluateFull is the tentpole's perf
// claim: pricing one candidate swap costs O(degree), independent of np,
// while a full evaluation is O(nnz).
func BenchmarkDeltaSwap(b *testing.B) {
	for _, np := range []int{1024, 8192, 65536} {
		b.Run(itoa(np), func(b *testing.B) {
			c, mo, tm, m := benchSetup(b, np)
			cost, err := NewCost(c, mo, tm, m)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cost.DeltaSwap(i%np, (i*31+7)%np)
			}
		})
	}
}

func BenchmarkEvaluateFull(b *testing.B) {
	for _, np := range []int{1024, 8192, 65536} {
		b.Run(itoa(np), func(b *testing.B) {
			c, mo, tm, m := benchSetup(b, np)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := mo.EvaluateSparse(c, m, tm); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
