package netsim

import (
	"fmt"
	"strconv"
	"strings"

	"lama/internal/torus"
)

// ParseNetwork resolves a CLI network spec into a model. Accepted forms:
//
//	flat
//	fat-tree | fattree | fat-tree:N | fattree:N   (N = leaf size, default 4)
//	dragonfly | dragonfly:N                       (N = group size, default 4)
//	torus | torus:XxYxZ                           (default dims fit numNodes)
//
// numNodes only matters for the parameter-free torus form, which sizes
// its dimensions with torus.FitDims.
func ParseNetwork(spec string, numNodes int) (Network, error) {
	name, arg := spec, ""
	if i := strings.IndexByte(spec, ':'); i >= 0 {
		name, arg = spec[:i], spec[i+1:]
	}
	switch name {
	case "flat":
		if arg != "" {
			return nil, fmt.Errorf("netsim: flat takes no parameter, got %q", spec)
		}
		return NewFlat(), nil
	case "fat-tree", "fattree":
		leaf := 4
		if arg != "" {
			v, err := strconv.Atoi(arg)
			if err != nil || v <= 0 {
				return nil, fmt.Errorf("netsim: bad fat-tree leaf size %q", arg)
			}
			leaf = v
		}
		return NewFatTree(leaf), nil
	case "dragonfly":
		group := 4
		if arg != "" {
			v, err := strconv.Atoi(arg)
			if err != nil || v <= 0 {
				return nil, fmt.Errorf("netsim: bad dragonfly group size %q", arg)
			}
			group = v
		}
		return NewDragonfly(group), nil
	case "torus":
		if arg == "" {
			return NewTorus3D(torus.FitDims(numNodes)), nil
		}
		parts := strings.Split(arg, "x")
		if len(parts) != 3 {
			return nil, fmt.Errorf("netsim: torus dims must be XxYxZ, got %q", arg)
		}
		var d [3]int
		for i, p := range parts {
			v, err := strconv.Atoi(p)
			if err != nil || v <= 0 {
				return nil, fmt.Errorf("netsim: bad torus dimension %q in %q", p, arg)
			}
			d[i] = v
		}
		return NewTorus3D(torus.Dims{X: d[0], Y: d[1], Z: d[2]}), nil
	}
	return nil, fmt.Errorf("netsim: unknown network %q (want flat, fat-tree[:leaf], dragonfly[:group], torus[:XxYxZ])", spec)
}
