package netsim

import "fmt"

// MatrixNet is a network defined by explicit per-node-pair latency and
// bandwidth tables — the form a site would produce by measurement (or an
// ACPI SLIT-style distance table), for when none of the analytic models
// fits the machine.
type MatrixNet struct {
	lat [][]float64 // µs
	bw  [][]float64 // bytes/µs
}

// NewMatrixNet validates and wraps the tables: both must be n x n, with
// zero diagonal latency, positive off-diagonal latency, and positive
// bandwidth everywhere it can be used.
func NewMatrixNet(latUs, bwBytesPerUs [][]float64) (*MatrixNet, error) {
	n := len(latUs)
	if n == 0 || len(bwBytesPerUs) != n {
		return nil, fmt.Errorf("netsim: matrix network needs two n x n tables")
	}
	for i := 0; i < n; i++ {
		if len(latUs[i]) != n || len(bwBytesPerUs[i]) != n {
			return nil, fmt.Errorf("netsim: row %d is not length %d", i, n)
		}
		for j := 0; j < n; j++ {
			if i == j {
				if latUs[i][j] != 0 {
					return nil, fmt.Errorf("netsim: nonzero self latency at %d", i)
				}
				continue
			}
			if latUs[i][j] <= 0 {
				return nil, fmt.Errorf("netsim: non-positive latency %d->%d", i, j)
			}
			if bwBytesPerUs[i][j] <= 0 {
				return nil, fmt.Errorf("netsim: non-positive bandwidth %d->%d", i, j)
			}
		}
	}
	return &MatrixNet{lat: latUs, bw: bwBytesPerUs}, nil
}

// Name implements Network.
func (m *MatrixNet) Name() string { return fmt.Sprintf("matrix(%d)", len(m.lat)) }

// Latency implements Network; out-of-range nodes get the worst latency in
// the table (conservative).
func (m *MatrixNet) Latency(a, b int) float64 {
	if a == b {
		return 0
	}
	if a < 0 || b < 0 || a >= len(m.lat) || b >= len(m.lat) {
		worst := 0.0
		for i := range m.lat {
			for j := range m.lat[i] {
				if m.lat[i][j] > worst {
					worst = m.lat[i][j]
				}
			}
		}
		return worst
	}
	return m.lat[a][b]
}

// Bandwidth implements Network.
func (m *MatrixNet) Bandwidth(a, b int) float64 {
	if a < 0 || b < 0 || a >= len(m.bw) || b >= len(m.bw) {
		best := 0.0
		for i := range m.bw {
			for j := range m.bw[i] {
				if i != j && (best == 0 || m.bw[i][j] < best) {
					best = m.bw[i][j]
				}
			}
		}
		return best
	}
	if a == b {
		return m.bw[a][b] // unused; Evaluate treats same-node intra-node
	}
	return m.bw[a][b]
}

// Hops implements Network: without structure information every distinct
// pair counts as one hop, so hop-bytes degenerates to inter-node bytes.
func (m *MatrixNet) Hops(a, b int) int {
	if a == b {
		return 0
	}
	return 1
}
