package netsim

import "fmt"

// Dragonfly is a two-tier group-based network: nodes belong to groups of
// GroupSize; within a group every pair is one (local) hop, and between
// groups a message takes local -> global -> local (three hops), with the
// global links tapered by the Taper factor. It models the low-diameter
// topologies that started displacing tori around the paper's era.
type Dragonfly struct {
	// GroupSize is the number of nodes per group.
	GroupSize int
	// LocalLat and GlobalLat are per-hop latencies in µs.
	LocalLat, GlobalLat float64
	// BW is the local-link bandwidth in bytes/µs; global links provide
	// BW/Taper.
	BW float64
	// Taper is the global-link bandwidth taper (>= 1).
	Taper float64
}

// NewDragonfly returns a dragonfly with Aries-like relative parameters.
func NewDragonfly(groupSize int) *Dragonfly {
	return &Dragonfly{GroupSize: groupSize, LocalLat: 0.6, GlobalLat: 1.2, BW: 4000, Taper: 2}
}

// Name implements Network.
func (d *Dragonfly) Name() string { return fmt.Sprintf("dragonfly(%d)", d.GroupSize) }

func (d *Dragonfly) group(n int) int {
	if d.GroupSize <= 0 {
		return n
	}
	return n / d.GroupSize
}

// Hops implements Network: 1 within a group, 3 across groups.
func (d *Dragonfly) Hops(a, b int) int {
	switch {
	case a == b:
		return 0
	case d.group(a) == d.group(b):
		return 1
	default:
		return 3
	}
}

// Latency implements Network.
func (d *Dragonfly) Latency(a, b int) float64 {
	switch d.Hops(a, b) {
	case 0:
		return 0
	case 1:
		return d.LocalLat
	default:
		return 2*d.LocalLat + d.GlobalLat
	}
}

// Bandwidth implements Network.
func (d *Dragonfly) Bandwidth(a, b int) float64 {
	if d.group(a) == d.group(b) {
		return d.BW
	}
	taper := d.Taper
	if taper < 1 {
		taper = 1
	}
	return d.BW / taper
}
