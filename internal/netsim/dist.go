package netsim

import (
	"fmt"
)

// Distances is the flat, cache-friendly inter-node distance provider: a
// Network's Latency/Bandwidth/Hops surface precomputed into int32 hop
// classes and per-class cost arrays, in the style of core's prunedShape.
// Hot placement loops ask for a pair's class with pure integer
// arithmetic — no interface dispatch, no allocation — and index the
// per-class latency / inverse-bandwidth / hop arrays directly.
//
// Class 0 is always the self pair (zero cost). The structured models map
// to tiny class sets: Flat has {self, other}; FatTree and Dragonfly have
// {self, intra-partition, inter-partition} keyed by a per-node partition
// id; Torus3D's class is the wrap-around Manhattan hop distance computed
// from packed per-node coordinates. MatrixNet and unknown Network
// implementations fall back to a probed n×n class table (bounded by
// MaxPairNodes) that dedupes distinct (latency, bandwidth, hops) triples.
type Distances struct {
	n    int
	kind distKind

	// Per-class cost tables, indexed by the value Class returns.
	lat   []float64 // one-way latency, µs
	invBW []float64 // µs per byte (1/bandwidth)
	hops  []int32

	part  []int32 // kindPartition: node -> partition id
	coord []int32 // kindTorus: packed x,y,z per node
	dims  [3]int32
	pair  []int32 // kindPair: n*n -> class
}

type distKind uint8

const (
	distUniform distKind = iota
	distPartition
	distTorus
	distPair
)

// MaxPairNodes bounds the n×n fallback class table built for MatrixNet
// and unknown Network implementations; past it the table alone would
// dominate memory, and a structured model (flat / fat-tree / torus /
// dragonfly) must be used instead.
const MaxPairNodes = 4096

// NewDistances precomputes the distance provider for numNodes nodes of
// the given network. Structured models build in O(n); table-backed and
// unknown models probe all n² pairs (and are rejected past MaxPairNodes).
func NewDistances(net Network, numNodes int) (*Distances, error) {
	if net == nil {
		return nil, fmt.Errorf("netsim: distances need a network model")
	}
	if numNodes <= 0 {
		return nil, fmt.Errorf("netsim: distances need a positive node count, got %d", numNodes)
	}
	d := &Distances{n: numNodes}
	switch nt := net.(type) {
	case *Flat:
		d.kind = distUniform
		d.lat = []float64{0, nt.Lat}
		d.invBW = []float64{0, 1 / nt.BW}
		d.hops = []int32{0, 1}
	case *FatTree:
		if nt.LeafSize <= 0 {
			return nil, fmt.Errorf("netsim: fat-tree leaf size %d", nt.LeafSize)
		}
		ov := nt.Oversub
		if ov < 1 {
			ov = 1
		}
		d.kind = distPartition
		d.part = make([]int32, numNodes)
		for i := 0; i < numNodes; i++ {
			d.part[i] = int32(nt.leaf(i))
		}
		d.lat = []float64{0, 2 * nt.LinkLat, 4 * nt.LinkLat}
		d.invBW = []float64{0, 1 / nt.BW, ov / nt.BW}
		d.hops = []int32{0, 2, 4}
	case *Dragonfly:
		taper := nt.Taper
		if taper < 1 {
			taper = 1
		}
		d.kind = distPartition
		d.part = make([]int32, numNodes)
		for i := 0; i < numNodes; i++ {
			d.part[i] = int32(nt.group(i))
		}
		d.lat = []float64{0, nt.LocalLat, 2*nt.LocalLat + nt.GlobalLat}
		d.invBW = []float64{0, 1 / nt.BW, taper / nt.BW}
		d.hops = []int32{0, 1, 3}
	case *Torus3D:
		if err := nt.Dims.Validate(); err != nil {
			return nil, err
		}
		d.kind = distTorus
		d.dims = [3]int32{int32(nt.Dims.X), int32(nt.Dims.Y), int32(nt.Dims.Z)}
		d.coord = make([]int32, 3*numNodes)
		for i := 0; i < numNodes; i++ {
			c := nt.Dims.CoordOf(i)
			d.coord[3*i+0] = int32(c.X)
			d.coord[3*i+1] = int32(c.Y)
			d.coord[3*i+2] = int32(c.Z)
		}
		maxHop := d.torusMaxHop()
		d.lat = make([]float64, maxHop+1)
		d.invBW = make([]float64, maxHop+1)
		d.hops = make([]int32, maxHop+1)
		for h := 0; h <= maxHop; h++ {
			d.lat[h] = float64(h) * nt.LinkLat
			d.invBW[h] = 1 / nt.BW
			d.hops[h] = int32(h)
		}
		d.invBW[0] = 0
	default:
		// MatrixNet and anything else: probe every ordered pair and
		// dedupe distinct cost triples into classes.
		if numNodes > MaxPairNodes {
			return nil, fmt.Errorf("netsim: %s needs an n x n distance table but n=%d exceeds %d; use a structured network model at this scale",
				net.Name(), numNodes, MaxPairNodes)
		}
		d.kind = distPair
		d.pair = make([]int32, numNodes*numNodes)
		type costKey struct {
			lat, bw float64
			hops    int
		}
		classes := map[costKey]int32{{0, 0, 0}: 0}
		d.lat = []float64{0}
		d.invBW = []float64{0}
		d.hops = []int32{0}
		for a := 0; a < numNodes; a++ {
			for b := 0; b < numNodes; b++ {
				if a == b {
					continue
				}
				bw := net.Bandwidth(a, b)
				if bw <= 0 {
					return nil, fmt.Errorf("netsim: %s has non-positive bandwidth %d->%d", net.Name(), a, b)
				}
				key := costKey{net.Latency(a, b), bw, net.Hops(a, b)}
				cl, ok := classes[key]
				if !ok {
					cl = int32(len(d.lat))
					classes[key] = cl
					d.lat = append(d.lat, key.lat)
					d.invBW = append(d.invBW, 1/key.bw)
					d.hops = append(d.hops, int32(key.hops))
				}
				d.pair[a*numNodes+b] = cl
			}
		}
	}
	return d, nil
}

// torusMaxHop bounds the torus hop-class count: the largest per-axis
// wrap distance over the coordinate values actually present, summed over
// axes. Distinct values per axis are few (at most the axis size for
// in-range clusters), so the pairwise scan is cheap.
func (d *Distances) torusMaxHop() int {
	total := 0
	for axis := 0; axis < 3; axis++ {
		var vals []int32
		for i := 0; i < d.n; i++ {
			v := d.coord[3*i+axis]
			seen := false
			for _, u := range vals {
				if u == v {
					seen = true
					break
				}
			}
			if !seen {
				vals = append(vals, v)
			}
		}
		max := int32(0)
		for x, a := range vals {
			for _, b := range vals[x+1:] {
				if h := axisDist32(a, b, d.dims[axis]); h > max {
					max = h
				}
			}
		}
		total += int(max)
	}
	return total
}

// axisDist32 is torus.axisDist over int32: wrap-around distance along one
// axis.
//
//lama:hotpath
func axisDist32(a, b, size int32) int32 {
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	if wrap := size - diff; wrap < diff && wrap >= 0 {
		return wrap
	}
	return diff
}

// NumNodes returns the node count the provider was built for.
func (d *Distances) NumNodes() int { return d.n }

// NumClasses returns the number of distance classes (including self).
func (d *Distances) NumClasses() int { return len(d.lat) }

// Class returns the distance class of a node pair. Class 0 is the self
// pair. Out-of-range nodes panic (hot path; validate at build time).
//
//lama:hotpath
func (d *Distances) Class(a, b int) int32 {
	if a == b {
		return 0
	}
	switch d.kind {
	case distUniform:
		return 1
	case distPartition:
		if d.part[a] == d.part[b] {
			return 1
		}
		return 2
	case distTorus:
		return axisDist32(d.coord[3*a], d.coord[3*b], d.dims[0]) +
			axisDist32(d.coord[3*a+1], d.coord[3*b+1], d.dims[1]) +
			axisDist32(d.coord[3*a+2], d.coord[3*b+2], d.dims[2])
	default:
		return d.pair[a*d.n+b]
	}
}

// Lat returns a class's one-way latency in µs.
//
//lama:hotpath
func (d *Distances) Lat(class int32) float64 { return d.lat[class] }

// InvBW returns a class's inverse bandwidth in µs per byte.
//
//lama:hotpath
func (d *Distances) InvBW(class int32) float64 { return d.invBW[class] }

// HopsOf returns a class's link count.
//
//lama:hotpath
func (d *Distances) HopsOf(class int32) int32 { return d.hops[class] }

// Hops returns the link count between two nodes.
//
//lama:hotpath
func (d *Distances) Hops(a, b int) int32 { return d.hops[d.Class(a, b)] }

// PairCost returns latency + bytes·invBW for one inter-node exchange.
//
//lama:hotpath
func (d *Distances) PairCost(a, b int, bytes float64) float64 {
	cl := d.Class(a, b)
	return d.lat[cl] + bytes*d.invBW[cl]
}

// Distances builds the flat distance provider for this model's network
// over numNodes nodes. Construction is O(n) for the structured models;
// see NewDistances for the table-backed fallback's bounds.
func (mo *Model) Distances(numNodes int) (*Distances, error) {
	return NewDistances(mo.Net, numNodes)
}
