package netsim

import "testing"

// FuzzParseNetwork drives the CLI network-spec parser with arbitrary
// input. Accepted specs must yield a model that honors the Network
// contract on a handful of node pairs: zero hops to self, symmetric hop
// counts, non-negative latency, positive bandwidth.
func FuzzParseNetwork(f *testing.F) {
	for _, s := range []string{
		"flat", "fat-tree", "fattree:8", "dragonfly", "dragonfly:4",
		"torus", "torus:2x3x4", "torus:0x1x1", "torus:2x3",
		"flat:1", "fat-tree:-1", "fat-tree:99999999999999999999",
		"bogus", ":", "", "torus:XxYxZ",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		net, err := ParseNetwork(spec, 16)
		if err != nil {
			if net != nil {
				t.Fatalf("ParseNetwork(%q) returned both a network and %v", spec, err)
			}
			return
		}
		if net == nil {
			t.Fatalf("ParseNetwork(%q) returned nil without an error", spec)
		}
		if net.Name() == "" {
			t.Fatalf("ParseNetwork(%q): empty model name", spec)
		}
		for _, p := range [][2]int{{0, 0}, {0, 1}, {1, 0}, {2, 7}, {7, 2}, {5, 5}, {3, 15}} {
			a, b := p[0], p[1]
			h := net.Hops(a, b)
			if h < 0 {
				t.Fatalf("%q: Hops(%d,%d) = %d < 0", spec, a, b, h)
			}
			if a == b && h != 0 {
				t.Fatalf("%q: Hops(%d,%d) = %d, want 0 to self", spec, a, b, h)
			}
			if back := net.Hops(b, a); back != h {
				t.Fatalf("%q: asymmetric hops: (%d,%d)=%d but (%d,%d)=%d", spec, a, b, h, b, a, back)
			}
			if lat := net.Latency(a, b); lat < 0 {
				t.Fatalf("%q: Latency(%d,%d) = %v < 0", spec, a, b, lat)
			}
			if bw := net.Bandwidth(a, b); bw <= 0 {
				t.Fatalf("%q: Bandwidth(%d,%d) = %v, want > 0", spec, a, b, bw)
			}
		}
	})
}
