// Package reorder implements communicator rank reordering: given a job
// that is already mapped (the resources are fixed), find a permutation of
// the MPI ranks onto the existing placements that lowers communication
// cost for a known traffic pattern. This is the complementary optimization
// to remapping — MPI exposes it through reorder-enabled communicator
// constructors — and, like TreeMatch, it is application-aware where the
// LAMA is deliberately pattern-oblivious.
//
// The optimizer is a deterministic greedy pairwise-swap local search:
// repeatedly apply the best rank swap until no swap improves the cost (or
// the sweep budget is exhausted).
package reorder

import (
	"fmt"

	"lama/internal/cluster"
	"lama/internal/commpat"
	"lama/internal/core"
	"lama/internal/netsim"
)

// Result describes one reordering run.
type Result struct {
	// Perm maps old rank -> new rank position: the process that was rank
	// r keeps its processor but acts as rank Perm[r] in the application.
	Perm []int
	// Before and After are the evaluated total communication times.
	Before, After float64
	// Swaps is the number of improving swaps applied.
	Swaps int
	// Map is the reordered mapping plan (placements permuted).
	Map *core.Map
}

// Optimize searches for a cost-reducing rank permutation of m under the
// traffic matrix. maxSweeps bounds the local search (a sweep examines all
// O(n²) pairs); 0 means sweep until convergence (at most n sweeps).
func Optimize(c *cluster.Cluster, m *core.Map, model *netsim.Model,
	tm *commpat.Matrix, maxSweeps int) (*Result, error) {
	np := m.NumRanks()
	if np == 0 {
		return nil, fmt.Errorf("reorder: empty map")
	}
	if tm.Ranks() != np {
		return nil, fmt.Errorf("reorder: traffic has %d ranks, map has %d", tm.Ranks(), np)
	}
	if maxSweeps <= 0 {
		maxSweeps = np
	}

	// cost[i][j]: time for one byte... we need the full pair cost per
	// (position, position). Positions are the fixed processor slots; a
	// permutation assigns traffic endpoints to positions. Precompute
	// per-position-pair unit costs: lat + bytes/bw is affine in bytes, so
	// cost(bytes) = lat[p][q] + bytes*inv[p][q].
	lat := make([][]float64, np)
	inv := make([][]float64, np)
	for p := 0; p < np; p++ {
		lat[p] = make([]float64, np)
		inv[p] = make([]float64, np)
		for q := 0; q < np; q++ {
			if p == q {
				continue
			}
			l, err := model.PairCost(c, m, p, q, 0)
			if err != nil {
				return nil, err
			}
			full, err := model.PairCost(c, m, p, q, 1e6)
			if err != nil {
				return nil, err
			}
			lat[p][q] = l
			inv[p][q] = (full - l) / 1e6
		}
	}
	// pos[r] = position (processor slot) of rank r; initially identity.
	pos := make([]int, np)
	for r := range pos {
		pos[r] = r
	}
	total := func() float64 {
		sum := 0.0
		tm.Each(func(i, j int, bytes float64) {
			p, q := pos[i], pos[j]
			sum += lat[p][q] + bytes*inv[p][q]
		})
		return sum
	}
	// rankCost: the cost of all traffic touching ranks a or b under pos.
	rankCost := func(a, b int) float64 {
		sum := 0.0
		for o := 0; o < np; o++ {
			for _, r := range [2]int{a, b} {
				if o == r || (r == b && o == a) {
					continue
				}
				if bytes := tm.Bytes(r, o); bytes > 0 {
					sum += lat[pos[r]][pos[o]] + bytes*inv[pos[r]][pos[o]]
				}
				if bytes := tm.Bytes(o, r); bytes > 0 {
					sum += lat[pos[o]][pos[r]] + bytes*inv[pos[o]][pos[r]]
				}
			}
		}
		if bytes := tm.Bytes(a, b); bytes > 0 {
			sum += lat[pos[a]][pos[b]] + bytes*inv[pos[a]][pos[b]]
		}
		if bytes := tm.Bytes(b, a); bytes > 0 {
			sum += lat[pos[b]][pos[a]] + bytes*inv[pos[b]][pos[a]]
		}
		return sum
	}

	res := &Result{Before: total()}
	for sweep := 0; sweep < maxSweeps; sweep++ {
		improved := false
		for a := 0; a < np; a++ {
			for b := a + 1; b < np; b++ {
				before := rankCost(a, b)
				pos[a], pos[b] = pos[b], pos[a]
				after := rankCost(a, b)
				if after+1e-12 < before {
					improved = true
					res.Swaps++
				} else {
					pos[a], pos[b] = pos[b], pos[a] // revert
				}
			}
		}
		if !improved {
			break
		}
	}
	res.After = total()

	// Build the permuted map: the process at position pos[r] carries
	// application rank r.
	res.Perm = pos
	nm := &core.Map{Layout: m.Layout, Sweeps: m.Sweeps}
	nm.Placements = make([]core.Placement, np)
	for r := 0; r < np; r++ {
		p := m.Placements[pos[r]] // copy of the slot's placement
		p.Rank = r
		nm.Placements[r] = p
	}
	res.Map = nm
	return res, nil
}
