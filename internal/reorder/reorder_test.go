package reorder

import (
	"testing"

	"lama/internal/cluster"
	"lama/internal/commpat"
	"lama/internal/core"
	"lama/internal/hw"
	"lama/internal/netsim"
)

func setup(t *testing.T, layout string, nodes, np int) (*cluster.Cluster, *core.Map, *netsim.Model) {
	t.Helper()
	sp, _ := hw.Preset("fig2")
	c := cluster.Homogeneous(nodes, sp)
	mapper, err := core.NewMapper(c, core.MustParseLayout(layout), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := mapper.Map(np)
	if err != nil {
		t.Fatal(err)
	}
	return c, m, netsim.NewModel(netsim.NewFlat())
}

func TestReorderImprovesScatteredRing(t *testing.T) {
	// A cyclic mapping of a ring is pessimal: every neighbor pair crosses
	// nodes. Reordering (without touching processors) must reunite them.
	c, m, mo := setup(t, "ncsbh", 2, 24)
	tm := commpat.Ring(24, 1<<20)
	res, err := Optimize(c, m, mo, tm, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.After >= res.Before {
		t.Fatalf("no improvement: %v -> %v", res.Before, res.After)
	}
	if res.Swaps == 0 {
		t.Fatal("no swaps recorded")
	}
	// The reordered map must still be a valid plan on the same slots.
	if err := res.Map.Validate(c); err != nil {
		t.Fatal(err)
	}
	// Same multiset of (node, PU) slots.
	type key struct{ node, pu int }
	before, after := map[key]int{}, map[key]int{}
	for i := range m.Placements {
		before[key{m.Placements[i].Node, m.Placements[i].PU()}]++
		after[key{res.Map.Placements[i].Node, res.Map.Placements[i].PU()}]++
	}
	for k, n := range before {
		if after[k] != n {
			t.Fatalf("slot multiset changed at %v", k)
		}
	}
	// Verify the claimed cost against an independent evaluation.
	rep, err := mo.Evaluate(c, res.Map, tm)
	if err != nil {
		t.Fatal(err)
	}
	if diff := rep.TotalTime - res.After; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("claimed %v, evaluated %v", res.After, rep.TotalTime)
	}
}

func TestReorderLeavesGoodMappingAlone(t *testing.T) {
	// A packed ring is already near-optimal; reordering must not hurt.
	c, m, mo := setup(t, "csbnh", 2, 24)
	tm := commpat.Ring(24, 1<<20)
	res, err := Optimize(c, m, mo, tm, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.After > res.Before {
		t.Fatalf("reorder made it worse: %v -> %v", res.Before, res.After)
	}
}

func TestReorderPermIsPermutation(t *testing.T) {
	c, m, mo := setup(t, "ncsbh", 2, 12)
	tm := commpat.RandomPairs(12, 30, 1000, 3)
	res, err := Optimize(c, m, mo, tm, 2)
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]bool, 12)
	for _, p := range res.Perm {
		if p < 0 || p >= 12 || seen[p] {
			t.Fatalf("not a permutation: %v", res.Perm)
		}
		seen[p] = true
	}
}

func TestReorderErrors(t *testing.T) {
	c, m, mo := setup(t, "csbnh", 1, 4)
	if _, err := Optimize(c, &core.Map{}, mo, commpat.Ring(4, 1), 0); err == nil {
		t.Fatal("empty map")
	}
	if _, err := Optimize(c, m, mo, commpat.Ring(5, 1), 0); err == nil {
		t.Fatal("size mismatch")
	}
}
