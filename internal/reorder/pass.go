package reorder

import (
	"context"
	"fmt"

	"lama/internal/core"
	"lama/internal/netsim"
	"lama/internal/obs"
	"lama/internal/place"
)

// Pass adapts rank reordering to the pipeline's post-pass Stage interface:
// inserted between place and bind, it permutes the application ranks of an
// already-placed map (processors stay fixed) to lower communication cost
// under the request's traffic matrix.
type Pass struct {
	// Model is the communication-cost model; nil means a flat network.
	Model *netsim.Model
	// MaxSweeps bounds the greedy local search; 0 sweeps to convergence.
	MaxSweeps int
	// OnResult, when set, receives the optimization outcome (before/after
	// cost, swap count) for reporting.
	OnResult func(*Result)
}

// StageName returns the registered reorder span label, the pipeline span
// and event label.
func (p *Pass) StageName() string { return obs.SpanReorder }

// Apply runs the optimizer using the request's traffic matrix. A request
// without one is an error: composing a reorder stage is an explicit ask
// for traffic-aware optimization.
func (p *Pass) Apply(_ context.Context, req *place.Request, m *core.Map) (*core.Map, error) {
	if req.Traffic == nil {
		return nil, fmt.Errorf("reorder: stage requires a traffic matrix")
	}
	model := p.Model
	if model == nil {
		model = netsim.NewModel(netsim.NewFlat())
	}
	res, err := Optimize(req.Cluster, m, model, req.Traffic, p.MaxSweeps)
	if err != nil {
		return nil, err
	}
	if p.OnResult != nil {
		p.OnResult(res)
	}
	return res.Map, nil
}
