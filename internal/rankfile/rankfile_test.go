package rankfile

import (
	"strings"
	"testing"

	"lama/internal/cluster"
	"lama/internal/core"
	"lama/internal/hw"
)

func testCluster(t *testing.T) *cluster.Cluster {
	t.Helper()
	sp, _ := hw.Preset("fig2") // 2 sockets x 3 cores x 2 PUs, sequential OS
	return cluster.Homogeneous(2, sp)
}

const sample = `
# an irregular layout
rank 0=node0 slot=1:0
rank 1=node1 slot=0,3
rank 2=node0 slot=*
rank 3=node1 slot=0:1-2
`

func TestParse(t *testing.T) {
	f, err := Parse(sample)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Entries) != 4 {
		t.Fatalf("entries = %d", len(f.Entries))
	}
	e0 := f.Entries[0]
	if e0.Host != "node0" || e0.Socket != 1 || len(e0.Cores) != 1 || e0.Cores[0] != 0 {
		t.Fatalf("entry 0 = %+v", e0)
	}
	e1 := f.Entries[1]
	if e1.CPUs == nil || e1.CPUs.String() != "0,3" {
		t.Fatalf("entry 1 = %+v", e1)
	}
	if !f.Entries[2].Any {
		t.Fatal("entry 2 should be *")
	}
	e3 := f.Entries[3]
	if e3.Socket != 0 || len(e3.Cores) != 2 {
		t.Fatalf("entry 3 = %+v", e3)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"comment only":   "# hi",
		"no rank prefix": "rnk 0=a slot=0",
		"no slot":        "rank 0=a",
		"no equals":      "rank 0 a slot=0",
		"bad rank":       "rank x=a slot=0",
		"negative rank":  "rank -1=a slot=0",
		"empty host":     "rank 0= slot=0",
		"bad socket":     "rank 0=a slot=x:0",
		"bad cores":      "rank 0=a slot=0:x",
		"empty cores":    "rank 0=a slot=0:",
		"bad cpuset":     "rank 0=a slot=9-1",
		"duplicate":      "rank 0=a slot=0\nrank 0=a slot=1",
		"sparse ranks":   "rank 0=a slot=0\nrank 2=a slot=1",
	}
	for name, text := range cases {
		if _, err := Parse(text); err == nil {
			t.Errorf("%s: Parse(%q) should fail", name, text)
		}
	}
}

func TestApply(t *testing.T) {
	c := testCluster(t)
	f, err := Parse(sample)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Apply(f, c)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(c); err != nil {
		t.Fatal(err)
	}
	// rank 0: node0 socket1 core0 -> PUs 6,7
	p0 := m.Placements[0]
	if p0.Node != 0 || len(p0.PUs) != 2 || p0.PUs[0] != 6 || p0.PUs[1] != 7 {
		t.Fatalf("rank0 = %+v", p0)
	}
	// rank 1: node1 raw PUs 0,3
	p1 := m.Placements[1]
	if p1.Node != 1 || len(p1.PUs) != 2 || p1.PUs[0] != 0 || p1.PUs[1] != 3 {
		t.Fatalf("rank1 = %+v", p1)
	}
	// rank 2: all 12 PUs of node0
	if len(m.Placements[2].PUs) != 12 {
		t.Fatalf("rank2 PUs = %v", m.Placements[2].PUs)
	}
	// rank 3: node1 socket0 cores 1-2 -> PUs 2,3,4,5; overlaps rank1's PU 3.
	p3 := m.Placements[3]
	if len(p3.PUs) != 4 {
		t.Fatalf("rank3 = %+v", p3)
	}
	if !m.Oversubscribed() {
		t.Fatal("PU 3 of node1 is shared; map must be oversubscribed")
	}
	if !p1.Oversubscribed && !p3.Oversubscribed {
		t.Fatal("sharing ranks must be flagged")
	}
	// rank 2 overlaps rank 0 on node0 (slot=* covers everything).
	if !m.Placements[2].Oversubscribed || !m.Placements[0].Oversubscribed {
		t.Fatal("slot=* rank shares node0 PUs")
	}
}

func TestApplyErrors(t *testing.T) {
	c := testCluster(t)
	cases := []string{
		"rank 0=ghost slot=0",   // unknown host
		"rank 0=node0 slot=99",  // missing PU
		"rank 0=node0 slot=5:0", // missing socket
		"rank 0=node0 slot=0:7", // missing core in socket
	}
	for _, text := range cases {
		f, err := Parse(text)
		if err != nil {
			t.Fatalf("Parse(%q): %v", text, err)
		}
		if _, err := Apply(f, c); err == nil {
			t.Errorf("Apply(%q) should fail", text)
		}
	}
	// Unavailable resources are rejected.
	c2 := testCluster(t)
	c2.Node(0).Topo.Restrict(hw.CPUSetRange(6, 11)) // socket 0 off
	for _, text := range []string{
		"rank 0=node0 slot=0",   // PU 0 unavailable
		"rank 0=node0 slot=0:0", // core 0 of socket 0 unavailable
	} {
		f, _ := Parse(text)
		if _, err := Apply(f, c2); err == nil {
			t.Errorf("Apply(%q) on restricted node should fail", text)
		}
	}
}

func TestFormatRoundTrip(t *testing.T) {
	f, err := Parse(sample)
	if err != nil {
		t.Fatal(err)
	}
	text := Format(f)
	f2, err := Parse(text)
	if err != nil {
		t.Fatalf("re-parse %q: %v", text, err)
	}
	if len(f2.Entries) != len(f.Entries) {
		t.Fatal("entry count changed")
	}
	for i := range f.Entries {
		a, b := f.Entries[i], f2.Entries[i]
		if a.Rank != b.Rank || a.Host != b.Host || a.Any != b.Any || a.Socket != b.Socket {
			t.Fatalf("entry %d mismatch: %+v vs %+v", i, a, b)
		}
	}
	if !strings.Contains(text, "rank 3=node1 slot=0:1-2") {
		t.Fatalf("Format output:\n%s", text)
	}
}

func TestApplyMatchesLAMAForRegularPattern(t *testing.T) {
	// A rankfile spelling out by-socket-scatter PU placements must agree
	// with what the equivalent regular pattern produces for claimed PUs.
	c := testCluster(t)
	text := `rank 0=node0 slot=0
rank 1=node0 slot=6
rank 2=node0 slot=2
rank 3=node0 slot=8`
	f, _ := Parse(text)
	m, err := Apply(f, c)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []int{0, 6, 2, 8} {
		if m.Placements[i].PU() != want {
			t.Fatalf("rank %d PU = %d, want %d", i, m.Placements[i].PU(), want)
		}
	}
	if m.Oversubscribed() {
		t.Fatal("distinct PUs")
	}
}

func TestFromMapRoundTrip(t *testing.T) {
	c := testCluster(t)
	mapper, err := core.NewMapper(c, core.MustParseLayout("scbnh"), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := mapper.Map(24)
	if err != nil {
		t.Fatal(err)
	}
	f, err := FromMap(m)
	if err != nil {
		t.Fatal(err)
	}
	// The emitted text parses and re-applies to identical PU claims.
	f2, err := Parse(Format(f))
	if err != nil {
		t.Fatal(err)
	}
	back, err := Apply(f2, c)
	if err != nil {
		t.Fatal(err)
	}
	for i := range m.Placements {
		a, b := m.Placements[i], back.Placements[i]
		if a.Node != b.Node || a.PU() != b.PU() || len(a.PUs) != len(b.PUs) {
			t.Fatalf("rank %d differs: %+v vs %+v", i, a.PUs, b.PUs)
		}
	}
	if back.Oversubscribed() {
		t.Fatal("round trip introduced sharing")
	}
}

func TestFromMapErrors(t *testing.T) {
	if _, err := FromMap(nil); err == nil {
		t.Fatal("nil map")
	}
	if _, err := FromMap(&core.Map{}); err == nil {
		t.Fatal("empty map")
	}
	bad := &core.Map{Placements: []core.Placement{{Rank: 0, NodeName: "a"}}}
	if _, err := FromMap(bad); err == nil {
		t.Fatal("no PUs")
	}
	bad2 := &core.Map{Placements: []core.Placement{{Rank: 0, PUs: []int{0}}}}
	if _, err := FromMap(bad2); err == nil {
		t.Fatal("no node name")
	}
}
