// Package rankfile implements the Level 4 interface of the paper's §V: a
// file format describing fully irregular per-rank placements, modeled on
// Open MPI's rankfile syntax.
//
// Each non-empty, non-comment line binds one rank:
//
//	rank <N>=<host> slot=<spec>
//
// where <spec> is one of:
//
//	"*"              all usable PUs of the host
//	<cpuset>         explicit PU OS indices (hwloc list syntax), e.g. 0,2-3
//	<s>:<cores>      socket s, core list within the socket, e.g. 1:0-2
//
// Lines starting with '#' are comments. Every rank from 0 to the highest
// mentioned must appear exactly once.
package rankfile

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"lama/internal/cluster"
	"lama/internal/core"
	"lama/internal/hw"
)

// Entry is one parsed rankfile line.
type Entry struct {
	// Rank is the process rank.
	Rank int
	// Host is the node name the rank is pinned to.
	Host string
	// Socket is the socket logical index, or -1 when the slot spec is a
	// raw cpuset or "*".
	Socket int
	// Cores lists core logical indices within the socket (when Socket >= 0).
	Cores []int
	// CPUs is the raw PU set (when the slot spec was a cpuset); nil
	// otherwise.
	CPUs *hw.CPUSet
	// Any is true for "slot=*".
	Any bool
}

// File is a parsed rankfile.
type File struct {
	Entries []Entry // sorted by rank, dense from 0
}

// Parse reads rankfile text.
func Parse(text string) (*File, error) {
	f := &File{}
	seen := map[int]bool{}
	for lineNo, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		entry, err := parseLine(line)
		if err != nil {
			return nil, fmt.Errorf("rankfile:%d: %v", lineNo+1, err)
		}
		if seen[entry.Rank] {
			return nil, fmt.Errorf("rankfile:%d: duplicate rank %d", lineNo+1, entry.Rank)
		}
		seen[entry.Rank] = true
		f.Entries = append(f.Entries, entry)
	}
	if len(f.Entries) == 0 {
		return nil, fmt.Errorf("rankfile: no entries")
	}
	sort.Slice(f.Entries, func(i, j int) bool { return f.Entries[i].Rank < f.Entries[j].Rank })
	for i, e := range f.Entries {
		if e.Rank != i {
			return nil, fmt.Errorf("rankfile: ranks not dense: missing rank %d", i)
		}
	}
	return f, nil
}

func parseLine(line string) (Entry, error) {
	var e Entry
	e.Socket = -1
	rest, ok := strings.CutPrefix(line, "rank")
	if !ok {
		return e, fmt.Errorf("line must start with \"rank\": %q", line)
	}
	rankPart, slotPart, ok := strings.Cut(rest, "slot=")
	if !ok {
		return e, fmt.Errorf("missing slot=: %q", line)
	}
	rankStr, host, ok := strings.Cut(strings.TrimSpace(rankPart), "=")
	if !ok {
		return e, fmt.Errorf("missing '=' after rank number: %q", line)
	}
	rank, err := strconv.Atoi(strings.TrimSpace(rankStr))
	if err != nil || rank < 0 {
		return e, fmt.Errorf("bad rank %q", rankStr)
	}
	e.Rank = rank
	e.Host = strings.TrimSpace(host)
	if e.Host == "" {
		return e, fmt.Errorf("empty host")
	}
	slot := strings.TrimSpace(slotPart)
	switch {
	case slot == "*":
		e.Any = true
	case strings.Contains(slot, ":"):
		sockStr, coreStr, _ := strings.Cut(slot, ":")
		sock, err := strconv.Atoi(strings.TrimSpace(sockStr))
		if err != nil || sock < 0 {
			return e, fmt.Errorf("bad socket %q", sockStr)
		}
		cores, err := hw.ParseCPUSet(coreStr)
		if err != nil || cores.Empty() {
			return e, fmt.Errorf("bad core list %q", coreStr)
		}
		e.Socket = sock
		e.Cores = cores.Members()
	default:
		set, err := hw.ParseCPUSet(slot)
		if err != nil || set.Empty() {
			return e, fmt.Errorf("bad slot cpuset %q", slot)
		}
		e.CPUs = set
	}
	return e, nil
}

// Apply resolves the rankfile against a cluster, producing a mapping plan
// in the same form the LAMA emits so that binding and launch treat regular
// and irregular placements identically.
func Apply(f *File, c *cluster.Cluster) (*core.Map, error) {
	m := &core.Map{Sweeps: 1}
	type key struct{ node, pu int }
	claims := map[key]int{}
	for _, e := range f.Entries {
		node, nodeIdx := c.NodeByName(e.Host)
		if node == nil {
			return nil, fmt.Errorf("rankfile: rank %d: unknown host %q", e.Rank, e.Host)
		}
		var pus []int
		var leaf *hw.Object
		switch {
		case e.Any:
			for _, pu := range node.Topo.Root.UsablePUs() {
				pus = append(pus, pu.OS)
			}
			leaf = node.Topo.Root
		case e.CPUs != nil:
			for _, os := range e.CPUs.Members() {
				pu := node.Topo.PUByOS(os)
				if pu == nil {
					return nil, fmt.Errorf("rankfile: rank %d: no PU %d on %s", e.Rank, os, e.Host)
				}
				if !pu.Usable() {
					return nil, fmt.Errorf("rankfile: rank %d: PU %d on %s is unavailable", e.Rank, os, e.Host)
				}
				pus = append(pus, os)
				leaf = pu
			}
			if len(pus) > 1 {
				leaf = nil // multiple PUs: no single leaf object
			}
		default:
			sock := node.Topo.ObjectAt(hw.LevelSocket, e.Socket)
			if sock == nil {
				return nil, fmt.Errorf("rankfile: rank %d: no socket %d on %s", e.Rank, e.Socket, e.Host)
			}
			coresInSocket := socketCores(sock)
			for _, ci := range e.Cores {
				if ci < 0 || ci >= len(coresInSocket) {
					return nil, fmt.Errorf("rankfile: rank %d: no core %d in socket %d on %s",
						e.Rank, ci, e.Socket, e.Host)
				}
				core := coresInSocket[ci]
				ups := core.UsablePUs()
				if len(ups) == 0 {
					return nil, fmt.Errorf("rankfile: rank %d: core %d in socket %d on %s is unavailable",
						e.Rank, ci, e.Socket, e.Host)
				}
				for _, pu := range ups {
					pus = append(pus, pu.OS)
				}
				leaf = core
			}
			if len(e.Cores) > 1 {
				leaf = sock
			}
		}
		if len(pus) == 0 {
			return nil, fmt.Errorf("rankfile: rank %d resolves to no usable PUs", e.Rank)
		}
		oversub := false
		for _, pu := range pus {
			claims[key{nodeIdx, pu}]++
			if claims[key{nodeIdx, pu}] > 1 {
				oversub = true
			}
		}
		m.Placements = append(m.Placements, core.Placement{
			Rank:           e.Rank,
			Node:           nodeIdx,
			NodeName:       node.Name,
			Coords:         core.NoCoords(),
			Leaf:           leaf,
			PUs:            pus,
			Oversubscribed: oversub,
		})
	}
	// An earlier rank may only become "shared" when a later rank claims
	// the same PU; recompute flags from final claim counts.
	for i := range m.Placements {
		p := &m.Placements[i]
		p.Oversubscribed = false
		for _, pu := range p.PUs {
			if claims[key{p.Node, pu}] > 1 {
				p.Oversubscribed = true
			}
		}
	}
	return m, nil
}

// socketCores returns the cores under a socket in logical order within the
// socket.
func socketCores(sock *hw.Object) []*hw.Object {
	var out []*hw.Object
	var walk func(o *hw.Object)
	walk = func(o *hw.Object) {
		if o.Level == hw.LevelCore {
			out = append(out, o)
			return
		}
		for _, c := range o.Children {
			walk(c)
		}
	}
	walk(sock)
	return out
}

// Format renders entries back to rankfile text.
func Format(f *File) string {
	var sb strings.Builder
	for _, e := range f.Entries {
		fmt.Fprintf(&sb, "rank %d=%s slot=", e.Rank, e.Host)
		switch {
		case e.Any:
			sb.WriteString("*")
		case e.CPUs != nil:
			sb.WriteString(e.CPUs.String())
		default:
			cores := hw.NewCPUSet(e.Cores...)
			fmt.Fprintf(&sb, "%d:%s", e.Socket, cores)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// FromMap converts any mapping plan into an equivalent rankfile, letting a
// regular LAMA-produced pattern be frozen into the irregular Level 4 form
// (e.g. to reproduce a tuned placement on a system without the mapper).
// Each rank's claimed PUs become an explicit cpuset slot.
func FromMap(m *core.Map) (*File, error) {
	if m == nil || len(m.Placements) == 0 {
		return nil, fmt.Errorf("rankfile: empty map")
	}
	f := &File{}
	for i := range m.Placements {
		p := &m.Placements[i]
		if p.NodeName == "" {
			return nil, fmt.Errorf("rankfile: rank %d has no node name", p.Rank)
		}
		if len(p.PUs) == 0 {
			return nil, fmt.Errorf("rankfile: rank %d claims no PUs", p.Rank)
		}
		f.Entries = append(f.Entries, Entry{
			Rank:   p.Rank,
			Host:   p.NodeName,
			Socket: -1,
			CPUs:   hw.NewCPUSet(p.PUs...),
		})
	}
	return f, nil
}
