package rankfile

import (
	"context"
	"fmt"

	"lama/internal/core"
	"lama/internal/place"
)

// policy adapts Level-4 rankfile placement to the place registry. It
// consumes Request.RankfileText and enforces the mpirun contract: the file
// must describe exactly NP ranks, and PU sharing is rejected unless the
// request opts into oversubscription.
type policy struct{}

func (policy) Name() string { return "rankfile" }

func (policy) Place(_ context.Context, req *place.Request) (*core.Map, error) {
	if req.RankfileText == "" {
		return nil, fmt.Errorf("rankfile: policy requires rankfile text")
	}
	f, err := Parse(req.RankfileText)
	if err != nil {
		return nil, err
	}
	m, err := Apply(f, req.Cluster)
	if err != nil {
		return nil, err
	}
	if m.NumRanks() != req.NP {
		return nil, fmt.Errorf("rankfile: has %d ranks but %d were requested",
			m.NumRanks(), req.NP)
	}
	if m.Oversubscribed() && !req.Opts.Oversubscribe {
		return nil, core.ErrOversubscribe
	}
	return m, nil
}

func init() { place.Register(policy{}) }
