package faultaware

import (
	"context"
	"reflect"
	"sort"
	"testing"

	"lama/internal/cluster"
	"lama/internal/commpat"
	"lama/internal/core"
	"lama/internal/hw"
	"lama/internal/place"
	_ "lama/internal/place/all"
)

// testCluster builds n fig2 nodes grouped two to a chassis, two chassis
// to a rack.
func testCluster(t *testing.T, n int) *cluster.Cluster {
	t.Helper()
	sp, ok := hw.Preset("fig2")
	if !ok {
		t.Fatal("fig2 preset missing")
	}
	c := cluster.Homogeneous(n, sp)
	c.AttachFaultModel(2, 2, 1)
	return c
}

func request(c *cluster.Cluster, np int) *place.Request {
	return &place.Request{
		Cluster: c, NP: np, Layout: core.MustParseLayout("csbnh"),
		Traffic: commpat.Ring(np, 1), Seed: 3,
	}
}

// chassisOf returns the distinct chassis indices covering the given ranks.
func chassisOf(c *cluster.Cluster, m *core.Map, ranks []int) []int {
	seen := map[int]bool{}
	var out []int
	for _, r := range ranks {
		ch := c.Faults.Domain(m.Placements[r].Node).Chassis
		if !seen[ch] {
			seen[ch] = true
			out = append(out, ch)
		}
	}
	sort.Ints(out)
	return out
}

// TestStageComposesWithPolicies is the acceptance check: the fault-aware
// stage must compose with the lama policy, the by-slot baseline, and the
// traffic-aware treematch policy, in each case spreading the critical
// ranks over more chassis without changing rank count or PU claims.
func TestStageComposesWithPolicies(t *testing.T) {
	for _, policy := range []string{"lama", "by-slot", "treematch"} {
		t.Run(policy, func(t *testing.T) {
			c := testCluster(t, 8) // 4 chassis
			pol, ok := place.Lookup(policy)
			if !ok {
				t.Fatalf("policy %q not registered", policy)
			}
			// 80 ranks over 8×12 PUs: every chassis hosts ranks, so full
			// critical spread is reachable by swapping.
			req := request(c, 80)
			base, err := place.Run(context.Background(), pol, req)
			if err != nil {
				t.Fatal(err)
			}
			crit := []int{0, 1, 2, 3}
			var res *Result
			pl := &place.Pipeline{Policy: pol, Stages: []place.Stage{
				&Stage{Critical: crit, MaxLocalityLoss: 1, // diversity first
					OnResult: func(r *Result) { res = r }},
			}}
			m, err := pl.Run(context.Background(), req)
			if err != nil {
				t.Fatal(err)
			}
			if res == nil {
				t.Fatal("OnResult never called")
			}
			if m.NumRanks() != base.NumRanks() {
				t.Fatalf("rank count changed: %d -> %d", base.NumRanks(), m.NumRanks())
			}
			// The stage only permutes rank→processor assignment: the
			// multiset of (node, PUs) claims must be exactly preserved.
			claims := func(mm *core.Map) []string {
				var out []string
				for i := range mm.Placements {
					p := mm.Placements[i]
					out = append(out, string(rune('A'+p.Node))+intsKey(p.PUs))
				}
				sort.Strings(out)
				return out
			}
			if !reflect.DeepEqual(claims(base), claims(m)) {
				t.Fatalf("%s: stage changed the PU-claim multiset", policy)
			}
			// With 4 chassis, 4 critical ranks, and an unlimited budget the
			// critical set must end up fully spread.
			if got := len(chassisOf(c, m, crit)); got != 4 {
				t.Fatalf("%s: critical ranks on %d chassis, want 4 (result %+v)", policy, got, res)
			}
			if res.ChassisAfter != 4 || res.ChassisAfter < res.ChassisBefore {
				t.Fatalf("%s: result %+v", policy, res)
			}
			if err := m.Validate(c); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func intsKey(xs []int) string {
	s := ""
	for _, x := range xs {
		s += "," + string(rune('0'+x))
	}
	return s
}

// TestStageBoundedLocalityLoss: with a zero budget... the tightest budget
// representable (tiny epsilon) must refuse swaps that cost locality, while
// an unlimited budget takes them — the J-delta knob works.
func TestStageBoundedLocalityLoss(t *testing.T) {
	c := testCluster(t, 8)
	req := request(c, 16)
	pol, _ := place.Lookup("lama")

	run := func(budget float64) *Result {
		var res *Result
		pl := &place.Pipeline{Policy: pol, Stages: []place.Stage{
			&Stage{Critical: []int{0, 1, 2, 3}, MaxLocalityLoss: budget,
				OnResult: func(r *Result) { res = r }},
		}}
		if _, err := pl.Run(context.Background(), req); err != nil {
			t.Fatal(err)
		}
		return res
	}
	tight := run(1e-9)
	loose := run(1)
	if loose.Swaps == 0 {
		t.Fatal("unlimited budget should spread a packed critical set")
	}
	if tight.Swaps > 0 {
		// Any swap taken under the epsilon budget must have been free.
		if tight.LocalityAfter < tight.LocalityBefore*(1-1e-6) {
			t.Fatalf("tight budget paid locality: %+v", tight)
		}
	}
	// The loose run's loss stays within its (trivially satisfied) bound and
	// the tight run's locality is no worse than the loose run's.
	if tight.LocalityAfter < loose.LocalityAfter-1e-9 {
		t.Fatalf("tight %f < loose %f", tight.LocalityAfter, loose.LocalityAfter)
	}
}

func TestStageNoOpWithoutConflicts(t *testing.T) {
	c := testCluster(t, 8)
	req := request(c, 8)
	pol, _ := place.Lookup("by-node") // one rank per node round-robin
	base, err := place.Run(context.Background(), pol, req)
	if err != nil {
		t.Fatal(err)
	}
	st := &Stage{Critical: []int{0, 2}} // nodes 0 and 2: different chassis
	m, err := st.Apply(context.Background(), req, base)
	if err != nil {
		t.Fatal(err)
	}
	if m != base {
		t.Fatal("conflict-free critical set must return the input map unchanged")
	}
	// Empty critical set: also a no-op.
	st = &Stage{}
	if m, err = st.Apply(context.Background(), req, base); err != nil || m != base {
		t.Fatalf("empty critical set: %v", err)
	}
}

func TestStageRejectsBadCritical(t *testing.T) {
	c := testCluster(t, 4)
	req := request(c, 8)
	pol, _ := place.Lookup("lama")
	base, err := place.Run(context.Background(), pol, req)
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range [][]int{{-1}, {8}, {0, 99}} {
		if _, err := (&Stage{Critical: bad}).Apply(context.Background(), req, base); err == nil {
			t.Fatalf("critical %v accepted", bad)
		}
	}
	// Duplicates are fine and deduped.
	var res *Result
	if _, err := (&Stage{Critical: []int{1, 1, 0}, OnResult: func(r *Result) { res = r }}).Apply(context.Background(), req, base); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Critical, []int{0, 1}) {
		t.Fatalf("critical = %v", res.Critical)
	}
}

// TestStageNilFaultModel: without a model every node is its own singleton
// chassis, so any critical set on distinct nodes is already spread and on
// shared nodes cannot improve — the stage must not panic or swap wrongly.
func TestStageNilFaultModel(t *testing.T) {
	sp, _ := hw.Preset("fig2")
	c := cluster.Homogeneous(4, sp) // no AttachFaultModel
	req := request(c, 8)
	pol, _ := place.Lookup("lama")
	base, err := place.Run(context.Background(), pol, req)
	if err != nil {
		t.Fatal(err)
	}
	var res *Result
	m, err := (&Stage{Critical: []int{0, 1, 2}, OnResult: func(r *Result) { res = r }}).Apply(context.Background(), req, base)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(c); err != nil {
		t.Fatal(err)
	}
	if res.ChassisAfter < res.ChassisBefore {
		t.Fatalf("diversity regressed: %+v", res)
	}
}

func TestSpareTargetsOrdering(t *testing.T) {
	c := testCluster(t, 12) // chassis = i/2, rack = i/4
	pol, _ := place.Lookup("lama")
	// Job occupies nodes 0..3 (chassis 0-1, rack 0).
	req := request(c, 48)
	m, err := place.Run(context.Background(), pol, req)
	if err != nil {
		t.Fatal(err)
	}
	jobNodes := map[int]bool{}
	for i := range m.Placements {
		jobNodes[m.Placements[i].Node] = true
	}
	// Candidates: 1 (on a job chassis), 5 (off-chassis, may share rack 1),
	// 8 and 10 (off-chassis, far rack 2).
	got := SpareTargets(c, m, []int{10, 1, 8, 5})
	if got[len(got)-1] != 1 {
		t.Fatalf("on-chassis candidate should rank last: %v", got)
	}
	if got[0] == 1 {
		t.Fatalf("on-chassis candidate ranked first: %v", got)
	}
	// Determinism: same inputs, same order.
	again := SpareTargets(c, m, []int{10, 1, 8, 5})
	if !reflect.DeepEqual(got, again) {
		t.Fatalf("non-deterministic ordering: %v vs %v", got, again)
	}
	// Input slice untouched.
	in := []int{10, 1, 8, 5}
	SpareTargets(c, m, in)
	if !reflect.DeepEqual(in, []int{10, 1, 8, 5}) {
		t.Fatal("SpareTargets mutated its input")
	}
}

// TestIncrementalLocalityMatchesFull pins the incremental tally the
// candidate loop now uses to the full core.NeighborLocality recompute:
// the traced before/after values must be bit-identical to what a rescan
// of the final map reports (the tally is integer state, so no float
// drift accumulates across swaps).
func TestIncrementalLocalityMatchesFull(t *testing.T) {
	c := testCluster(t, 8)
	pol, _ := place.Lookup("lama")
	req := request(c, 80)
	base, err := place.Run(context.Background(), pol, req)
	if err != nil {
		t.Fatal(err)
	}
	var res *Result
	pl := &place.Pipeline{Policy: pol, Stages: []place.Stage{
		&Stage{Critical: []int{0, 1, 2, 3, 4, 5}, MaxLocalityLoss: 1,
			OnResult: func(r *Result) { res = r }},
	}}
	m, err := pl.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if res == nil {
		t.Fatal("OnResult never called")
	}
	if res.Swaps == 0 {
		t.Fatal("want swaps so the tally actually updates incrementally")
	}
	if got, want := res.LocalityBefore, core.NeighborLocality(c, base); got != want {
		t.Fatalf("LocalityBefore = %v, full recompute = %v", got, want)
	}
	if got, want := res.LocalityAfter, core.NeighborLocality(c, m); got != want {
		t.Fatalf("LocalityAfter = %v, full recompute = %v", got, want)
	}
}
