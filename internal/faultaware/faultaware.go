// Package faultaware adds proactive failure-domain awareness to the
// placement pipeline. Locality-first mapping packs a job tightly, which is
// exactly wrong for its critical ranks: a chassis-level failure then takes
// out the whole set at once. The Stage below is a composable post-pass
// (place.Stage) that re-spreads a designated set of critical ranks across
// failure domains while bounding the locality it gives up, and
// SpareTargets ranks replacement candidates so spares sit topologically
// near the rank groups they would inherit — the two proactive halves of
// the fault-tolerance story (cf. Vardas et al., PAPERS.md). It composes
// with any registered policy: lama, by-slot, treematch, ...
package faultaware

import (
	"context"
	"fmt"
	"sort"

	"lama/internal/cluster"
	"lama/internal/core"
	"lama/internal/obs"
	"lama/internal/place"
)

// DefaultMaxLocalityLoss bounds the relative neighbor-locality loss the
// spreading pass may trade for domain diversity when the stage does not
// set its own bound.
const DefaultMaxLocalityLoss = 0.25

// Stage is the fault-aware placement post-pass. Inserted between place
// and bind (after any reorder), it swaps critical ranks' placements with
// non-critical ones so that no two critical ranks share a chassis, as far
// as the map and the locality budget allow. Processors stay fixed — only
// the rank→processor assignment changes — so the pass preserves rank
// count, PU claims, and oversubscription structure by construction.
type Stage struct {
	// Critical lists the application ranks to spread (e.g. checkpoint
	// writers, replica leaders, rank 0). Duplicates are ignored; an empty
	// list makes the stage a no-op.
	Critical []int
	// MaxLocalityLoss bounds the cumulative relative loss of neighbor
	// locality (core.NeighborLocality) the spreading may cost, measured
	// against the incoming map. Zero or negative means
	// DefaultMaxLocalityLoss. A swap that would push the total loss past
	// the bound is not taken.
	MaxLocalityLoss float64
	// OnResult, when set, receives the spreading outcome for reporting.
	OnResult func(*Result)
}

// Result reports what one spreading pass did.
type Result struct {
	// Critical is the validated, deduplicated critical set, ascending.
	Critical []int
	// Swaps counts the placement swaps taken.
	Swaps int
	// ChassisBefore/After and RacksBefore/After count the distinct failure
	// domains covered by the critical set before and after spreading.
	ChassisBefore, ChassisAfter int
	RacksBefore, RacksAfter     int
	// LocalityBefore and LocalityAfter give the whole map's neighbor
	// locality before and after; their difference is the J-delta the pass
	// paid for domain diversity.
	LocalityBefore, LocalityAfter float64
}

// StageName returns the registered faultaware span label.
func (s *Stage) StageName() string { return obs.SpanFaultAware }

// Apply spreads the critical ranks. For each critical rank whose chassis
// is already claimed by an earlier critical rank, it evaluates swapping
// that rank's placement with every non-critical rank sitting on an
// unclaimed chassis and takes the swap that keeps neighbor locality
// highest — unless even the best swap would push the cumulative locality
// loss past the budget, in which case the rank stays put (bounded loss
// beats full diversity). The result is emitted as a "faultaware"/"spread"
// event carrying the locality J-delta.
func (s *Stage) Apply(_ context.Context, req *place.Request, m *core.Map) (*core.Map, error) {
	if req == nil || req.Cluster == nil {
		return nil, fmt.Errorf("faultaware: nil request or cluster")
	}
	crit, err := validCritical(s.Critical, m.NumRanks())
	if err != nil {
		return nil, err
	}
	c := req.Cluster
	model := c.Faults // nil is fine: every node is its own singleton domain
	tally := core.NewLocalityTally(c, m)
	res := &Result{Critical: crit, LocalityBefore: tally.Value()}
	res.ChassisBefore, res.RacksBefore = model.Spread(criticalNodes(m, crit))

	budget := s.MaxLocalityLoss
	if budget <= 0 {
		budget = DefaultMaxLocalityLoss
	}
	floor := res.LocalityBefore * (1 - budget)

	out := &core.Map{Layout: m.Layout, Sweeps: m.Sweeps,
		Placements: append([]core.Placement(nil), m.Placements...)}
	isCrit := make([]bool, out.NumRanks())
	for _, r := range crit {
		isCrit[r] = true
	}
	claimed := map[int]bool{}
	for _, r := range crit {
		ch := model.Domain(out.Placements[r].Node).Chassis
		if !claimed[ch] {
			claimed[ch] = true
			continue
		}
		// Chassis conflict: find the best partner swap. Each candidate is
		// priced incrementally — only the consecutive pairs touching the
		// two swapped ranks can change, so a candidate costs O(1) instead
		// of a full-map locality rescan. The tally is integral, so the
		// values match what core.NeighborLocality would report on the
		// swapped map exactly, not just approximately.
		best, bestLoc, bestDD, bestDP := -1, 0.0, 0, 0
		for j := 0; j < out.NumRanks(); j++ {
			if isCrit[j] || claimed[model.Domain(out.Placements[j].Node).Chassis] {
				continue
			}
			dd, dp := core.LocalitySwapDelta(c, out, r, j)
			loc := tally.AfterSwap(dd, dp)
			if best < 0 || loc > bestLoc {
				best, bestLoc, bestDD, bestDP = j, loc, dd, dp
			}
		}
		if best < 0 {
			// No unclaimed chassis hosts a non-critical rank; this rank
			// stays where it is, sharing a chassis with another critical.
			continue
		}
		if res.LocalityBefore > 0 && bestLoc < floor {
			continue // the cheapest spread is still too expensive
		}
		swapPlacements(out, r, best)
		tally.Apply(bestDD, bestDP)
		res.Swaps++
		claimed[model.Domain(out.Placements[r].Node).Chassis] = true
	}

	res.LocalityAfter = tally.Value()
	res.ChassisAfter, res.RacksAfter = model.Spread(criticalNodes(out, crit))
	if s.OnResult != nil {
		s.OnResult(res)
	}
	if o := req.Opts.Obs; o.Enabled() {
		o.Emit(obs.SrcFaultAware, obs.EvSpread, obs.NoStep,
			obs.F("critical", len(crit)),
			obs.F("swaps", res.Swaps),
			obs.F("chassis_before", res.ChassisBefore),
			obs.F("chassis_after", res.ChassisAfter),
			obs.F("racks_before", res.RacksBefore),
			obs.F("racks_after", res.RacksAfter),
			obs.F("locality_before", res.LocalityBefore),
			obs.F("locality_after", res.LocalityAfter),
			obs.F("j_delta", res.LocalityAfter-res.LocalityBefore))
	}
	if res.Swaps == 0 {
		return m, nil
	}
	return out, nil
}

// validCritical dedupes, sorts, and range-checks the critical set.
func validCritical(critical []int, np int) ([]int, error) {
	seen := map[int]bool{}
	out := make([]int, 0, len(critical))
	for _, r := range critical {
		if r < 0 || r >= np {
			return nil, fmt.Errorf("faultaware: critical rank %d out of range (map has %d)", r, np)
		}
		if !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	sort.Ints(out)
	return out, nil
}

// criticalNodes collects the node index of each critical rank.
func criticalNodes(m *core.Map, crit []int) []int {
	nodes := make([]int, len(crit))
	for i, r := range crit {
		nodes[i] = m.Placements[r].Node
	}
	return nodes
}

// swapPlacements exchanges everything but the Rank field between two
// placements, so rank order stays canonical while the processor
// assignment moves.
func swapPlacements(m *core.Map, a, b int) {
	pa, pb := &m.Placements[a], &m.Placements[b]
	*pa, *pb = *pb, *pa
	pa.Rank, pb.Rank = a, b
}

// SpareTargets ranks candidate spare nodes by how well they would serve
// as replacements for the job mapped in m: a good spare shares a rack
// with the job (short migration distance when it inherits ranks) but not
// a chassis (it must survive the correlated failure it exists to absorb),
// and carries low model risk. Candidates are returned best-first;
// ordering is deterministic (ties break on node index). The helper is
// pure — rm.Realloc and the churn scenario both consume it.
func SpareTargets(c *cluster.Cluster, m *core.Map, candidates []int) []int {
	model := c.Faults
	jobChassis := map[int]bool{}
	jobRacks := map[int]bool{}
	if m != nil {
		for i := range m.Placements {
			d := model.Domain(m.Placements[i].Node)
			jobChassis[d.Chassis] = true
			jobRacks[d.Rack] = true
		}
	}
	out := append([]int(nil), candidates...)
	sort.SliceStable(out, func(x, y int) bool {
		a, b := out[x], out[y]
		da, db := model.Domain(a), model.Domain(b)
		// Off-chassis beats on-chassis: a spare inside a job chassis dies
		// with the domain it should replace.
		if oa, ob := !jobChassis[da.Chassis], !jobChassis[db.Chassis]; oa != ob {
			return oa
		}
		// Near beats far: same rack keeps the replacement topologically
		// close to the ranks it inherits.
		if na, nb := jobRacks[da.Rack], jobRacks[db.Rack]; na != nb {
			return na
		}
		if ra, rb := model.Risk(a), model.Risk(b); ra != rb {
			return ra < rb
		}
		return a < b
	})
	return out
}
