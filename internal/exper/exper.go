// Package exper implements the experiment harness: one entry per exhibit
// of the paper (Table I, Figure 1, Figure 2, the 362,880-permutation
// claim) plus the simulator-backed realizations of the paper's cited
// motivation (GTC, NAS placement sensitivity) and of its system claims
// (heterogeneity, scalability, binding, CLI levels). See DESIGN.md §4 for
// the experiment index and EXPERIMENTS.md for recorded results.
package exper

import (
	"fmt"
	"sort"

	"lama/internal/metrics"
	"lama/internal/obs"
)

// Options tune experiment scale.
type Options struct {
	// Full enables the exhaustive variants (e.g. all 362,880 layouts in
	// E4 instead of a deterministic sample).
	Full bool
	// Seed drives the randomized experiments.
	Seed int64
	// Obs optionally observes the runs: layout sweeps report per-layout
	// progress events and the mapping engines their spans and metrics.
	Obs *obs.Observer
}

// Experiment is one runnable exhibit reproduction.
type Experiment struct {
	// ID is the experiment identifier from DESIGN.md (e.g. "E3").
	ID string
	// Exhibit names the paper exhibit reproduced.
	Exhibit string
	// Run executes the experiment and returns its result tables.
	Run func(Options) ([]*metrics.Table, error)
}

var registry []Experiment

func register(id, exhibit string, run func(Options) ([]*metrics.Table, error)) {
	registry = append(registry, Experiment{ID: id, Exhibit: exhibit, Run: run})
}

// All returns the experiments sorted by ID.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID returns one experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range registry {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("exper: unknown experiment %q", id)
}
