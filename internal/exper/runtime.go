package exper

import (
	"lama/internal/cluster"
	"lama/internal/coll"
	"lama/internal/core"
	"lama/internal/hw"
	"lama/internal/metrics"
	"lama/internal/netsim"
	"lama/internal/orte"
)

func init() {
	register("E14", "extension: MPI collective cost under different mappings", runE14)
	register("E15", "extension: run-time launch scalability (linear vs binomial spawn)", runE15)
}

// runE14 costs the classic MPI collective algorithms under three mappings:
// collectives synchronize round by round, so a mapping that keeps whole
// rounds on-node shortens every round — another face of the paper's
// placement-matters argument.
func runE14(Options) ([]*metrics.Table, error) {
	sp, _ := hw.Preset("nehalem-ep")
	c := cluster.Homogeneous(8, sp)
	mo := netsim.NewModel(netsim.NewFlat())

	layouts := []struct{ name, layout string }{
		{"pack (csbnh)", "csbnh"},
		{"cycle (ncsbh)", "ncsbh"},
		{"pack threads (hcsbn)", "hcsbn"},
	}
	ops := []coll.Op{coll.Broadcast, coll.AllreduceRD, coll.AllreduceRing, coll.Alltoall, coll.Barrier}

	var out []*metrics.Table
	// np=16 fits one node when packed (whole rounds stay local); np=64
	// forces every mapping across nodes (rounds bounded by the network).
	for _, np := range []int{16, 64} {
		t := metrics.NewTable(
			"E14 / collective completion time, 1 MiB, np="+metrics.I(np)+", 8 nodes (flat network)",
			"collective", "rounds", "messages", "pack (ms)", "cycle (ms)", "threads (ms)")
		for _, op := range ops {
			row := []string{op.String(), "", ""}
			for i, l := range layouts {
				mapper, err := core.NewMapper(c, core.MustParseLayout(l.layout), core.Options{})
				if err != nil {
					return nil, err
				}
				m, err := mapper.Map(np)
				if err != nil {
					return nil, err
				}
				res, err := coll.Run(op, c, m, mo, 1<<20)
				if err != nil {
					return nil, err
				}
				if i == 0 {
					row[1] = metrics.I(res.Rounds)
					row[2] = metrics.I(res.Messages)
				}
				row = append(row, metrics.F(res.TimeUs/1000, 3))
			}
			t.AddRow(row...)
		}
		out = append(out, t)
	}
	return out, nil
}

// runE15 compares the launch protocols of the parallel run-time
// environment (§III): linear contact vs ORTE's binomial routed tree.
func runE15(Options) ([]*metrics.Table, error) {
	t := metrics.NewTable("E15 / daemon spawn scalability (50 us per launch message)",
		"nodes", "linear rounds", "linear (ms)", "binomial rounds", "binomial (ms)", "speedup")
	for _, n := range []int{16, 64, 256, 1024, 4096} {
		lin, err := orte.SimulateSpawn(n, orte.LinearSpawn, 50)
		if err != nil {
			return nil, err
		}
		bin, err := orte.SimulateSpawn(n, orte.BinomialSpawn, 50)
		if err != nil {
			return nil, err
		}
		t.AddRow(metrics.I(n),
			metrics.I(lin.Rounds), metrics.F(lin.TimeUs/1000, 2),
			metrics.I(bin.Rounds), metrics.F(bin.TimeUs/1000, 2),
			metrics.F(lin.TimeUs/bin.TimeUs, 1)+"x")
	}
	return []*metrics.Table{t}, nil
}

func init() {
	register("E16", "extension: hierarchy-aware vs flat collectives", runE16)
}

// runE16 compares flat binomial collectives against their two-level
// node-leader variants across mappings — the related-work optimization
// ("hierarchy aware collective communications") whose benefit depends on
// how many ranks the mapping co-locates.
func runE16(Options) ([]*metrics.Table, error) {
	sp, _ := hw.Preset("nehalem-ep")
	c := cluster.Homogeneous(6, sp)
	np := 60
	mo := netsim.NewModel(netsim.NewFlat())

	t := metrics.NewTable("E16 / flat vs hierarchical collectives, 1 MiB, np=60, 6 nodes",
		"mapping", "op", "flat (ms)", "hierarchical (ms)", "improvement")
	for _, l := range []struct{ name, layout string }{
		{"pack (csbnh)", "csbnh"},
		{"cycle (ncsbh)", "ncsbh"},
	} {
		mapper, err := core.NewMapper(c, core.MustParseLayout(l.layout), core.Options{})
		if err != nil {
			return nil, err
		}
		m, err := mapper.Map(np)
		if err != nil {
			return nil, err
		}
		for _, op := range []coll.Op{coll.Broadcast, coll.AllreduceRD} {
			flat, err := coll.Run(op, c, m, mo, 1<<20)
			if err != nil {
				return nil, err
			}
			hier, err := coll.RunHierarchical(op, c, m, mo, 1<<20)
			if err != nil {
				return nil, err
			}
			t.AddRow(l.name, op.String(),
				metrics.F(flat.TimeUs/1000, 3),
				metrics.F(hier.TimeUs/1000, 3),
				metrics.Pct(hier.TimeUs, flat.TimeUs))
		}
	}
	return []*metrics.Table{t}, nil
}
