package exper

import (
	"fmt"

	"lama/internal/cluster"
	"lama/internal/commpat"
	"lama/internal/core"
	"lama/internal/hw"
	"lama/internal/metrics"
	"lama/internal/netsim"
	"lama/internal/rm"
)

func init() {
	register("E17", "extension: scheduling policy, fragmentation, and mapping locality", runE17)
}

// schedWorkload is a deterministic mixed batch: a few wide jobs that
// block FIFO queues and many narrow ones that backfill.
func schedWorkload() []rm.JobSpec {
	var jobs []rm.JobSpec
	id := 0
	add := func(cores int, dur, arrival float64) {
		jobs = append(jobs, rm.JobSpec{ID: id, Cores: cores, Duration: dur, Arrival: arrival})
		id++
	}
	for wave := 0; wave < 4; wave++ {
		base := float64(wave) * 5
		add(48, 20, base)
		add(24, 8, base+1)
		for k := 0; k < 4; k++ {
			add(4+2*k, 4, base+1.5)
		}
	}
	return jobs
}

// runE17 closes the loop between the scheduler and the mapper: backfill
// improves queue metrics but fragments core-granular allocations across
// more nodes, and fragmented allocations cost more to communicate in —
// quantified by mapping the same job onto allocations of increasing
// spread.
func runE17(Options) ([]*metrics.Table, error) {
	sp, _ := hw.Preset("nehalem-ep") // 8 cores per node

	t1 := metrics.NewTable("E17a / queue metrics, 8-node pool, 24 mixed jobs",
		"policy", "makespan", "avg wait", "avg nodes per job")
	for _, policy := range []rm.SchedPolicy{rm.FIFO, rm.Backfill} {
		mgr := rm.NewManager(cluster.Homogeneous(8, sp))
		res, err := mgr.Schedule(policy, schedWorkload())
		if err != nil {
			return nil, err
		}
		t1.AddRow(policy.String(),
			metrics.F(res.Makespan, 1),
			metrics.F(res.AvgWait, 2),
			metrics.F(res.AvgSpan, 2))
	}

	// The locality price of fragmentation: the same 16-rank ring job
	// mapped onto (equivalently fragmented) grants spanning 2, 4, or 8
	// nodes — each node of the grant restricted to 16/span cores, exactly
	// the view a core-granular allocation of that spread produces.
	t2 := metrics.NewTable("E17b / comm cost of one 16-core job vs allocation spread (ring, flat net)",
		"nodes spanned", "total time (ms)", "inter-node MB")
	mo := netsim.NewModel(netsim.NewFlat())
	tm := commpat.Ring(16, 1<<20)
	for _, span := range []int{2, 4, 8} {
		perNode := 16 / span
		grant := cluster.Homogeneous(span, sp)
		for _, node := range grant.Nodes {
			allowed := &hw.CPUSet{}
			for ci := 0; ci < perNode; ci++ {
				allowed.Or(node.Topo.ObjectAt(hw.LevelCore, ci).PUSet())
			}
			node.Topo.Restrict(allowed)
		}
		mapper, err := core.NewMapper(grant, core.MustParseLayout("csbnh"), core.Options{})
		if err != nil {
			return nil, err
		}
		m, err := mapper.Map(16)
		if err != nil {
			return nil, err
		}
		if got := len(m.RanksByNode()); got != span {
			return nil, fmt.Errorf("exper: engineered spread %d, got %d", span, got)
		}
		rep, err := mo.Evaluate(grant, m, tm)
		if err != nil {
			return nil, err
		}
		t2.AddRow(metrics.I(span), metrics.F(rep.TotalTime/1000, 3), metrics.F(rep.InterBytes/1e6, 1))
	}
	return []*metrics.Table{t1, t2}, nil
}
