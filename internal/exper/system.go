package exper

import (
	"fmt"
	"time"

	"lama/internal/cluster"
	"lama/internal/core"
	"lama/internal/hw"
	"lama/internal/metrics"
)

func init() {
	register("E7", "§IV-B: heterogeneity and the maximal tree", runE7)
	register("E8", "§IV/§VI: mapping-time scalability", runE8)
}

// runE7 demonstrates the maximal-tree behaviour on a heterogeneous cluster
// with scheduler restrictions: coordinates missing on small nodes are
// skipped, off-lined resources are avoided, pruning renumbers merged
// levels, and every layout still produces a complete valid map.
func runE7(Options) ([]*metrics.Table, error) {
	big, _ := hw.Preset("nehalem-ep")    // 2s x 4c x 2t = 16 PUs
	small, _ := hw.Preset("bgp-node")    // 1s x 4c x 1t = 4 PUs
	boards, _ := hw.Preset("dual-board") // 2b x 2s x 2c x 2t = 16 PUs
	c := cluster.FromSpecs(big, small, boards, big)
	// Scheduler restriction: node3 loses its second socket.
	c.Node(3).Topo.Restrict(hw.CPUSetRange(0, 3))
	// OS restriction: one core of node0 off-lined.
	c.Node(0).Topo.SetAvailable(hw.LevelCore, 2, false)

	usable := c.TotalUsablePUs()
	t1 := metrics.NewTable("E7 / heterogeneous cluster under test",
		"node", "shape", "usable PUs")
	for _, n := range c.Nodes {
		t1.AddRow(n.Name, n.Topo.Summary(), metrics.I(n.Topo.NumUsablePUs()))
	}

	t2 := metrics.NewTable(fmt.Sprintf("E7 / per-layout completeness (np=%d = every usable PU)", usable),
		"layout", "ranks", "node0", "node1", "node2", "node3", "valid", "oversub")
	for _, layout := range []string{"scbnh", "csbnh", "ncsbh", "hcsbn", "nbsNL3L2L1ch"} {
		mapper, err := core.NewMapper(c, core.MustParseLayout(layout), core.Options{})
		if err != nil {
			return nil, err
		}
		m, err := mapper.Map(usable)
		if err != nil {
			return nil, fmt.Errorf("exper: E7 layout %s: %v", layout, err)
		}
		valid := "yes"
		if err := m.Validate(c); err != nil {
			valid = err.Error()
		}
		per := m.RanksByNode()
		t2.AddRow(layout, metrics.I(m.NumRanks()),
			metrics.I(len(per[0])), metrics.I(len(per[1])),
			metrics.I(len(per[2])), metrics.I(len(per[3])),
			valid, fmt.Sprint(m.Oversubscribed()))
	}

	// Pruning renumbering: mapping "scnh" onto the dual-board node
	// iterates 4 renumbered sockets (2 boards x 2 sockets).
	dc := cluster.FromSpecs(boards)
	mapper, err := core.NewMapper(dc, core.MustParseLayout("scnh"), core.Options{})
	if err != nil {
		return nil, err
	}
	m, err := mapper.Map(4)
	if err != nil {
		return nil, err
	}
	t3 := metrics.NewTable("E7 / board pruning renumbers sockets 0-3 (layout scnh, dual-board node)",
		"rank", "pruned socket index", "physical board", "physical socket-in-board")
	for i := range m.Placements {
		p := &m.Placements[i]
		board := p.Leaf.Ancestor(hw.LevelBoard)
		sock := p.Leaf.Ancestor(hw.LevelSocket)
		t3.AddRow(metrics.I(p.Rank), metrics.I(p.Coords[hw.LevelSocket]),
			metrics.I(board.Logical), metrics.I(sock.Rank))
	}
	return []*metrics.Table{t1, t2, t3}, nil
}

// runE8 measures mapping time versus cluster size and rank count: the LAMA
// does constant work per visited coordinate, so time scales linearly in
// the swept resource space.
func runE8(o Options) ([]*metrics.Table, error) {
	sp, _ := hw.Preset("nehalem-ep") // 16 PUs
	sizes := []int{4, 16, 64, 256}
	if o.Full {
		sizes = append(sizes, 1024)
	}
	t := metrics.NewTable("E8 / mapping-time scalability (layout scbnh, np = 8 x nodes)",
		"nodes", "np", "map time (ms)", "us per rank")
	for _, nodes := range sizes {
		c := cluster.Homogeneous(nodes, sp)
		np := 8 * nodes
		mapper, err := core.NewMapper(c, core.MustParseLayout("scbnh"), core.Options{})
		if err != nil {
			return nil, err
		}
		// Warm up once, then time the best of three runs to damp noise.
		if _, err := mapper.Map(np); err != nil {
			return nil, err
		}
		best := time.Duration(0)
		for i := 0; i < 3; i++ {
			start := time.Now()
			if _, err := mapper.Map(np); err != nil {
				return nil, err
			}
			d := time.Since(start)
			if best == 0 || d < best {
				best = d
			}
		}
		t.AddRow(metrics.I(nodes), metrics.I(np),
			metrics.F(float64(best.Microseconds())/1000, 3),
			metrics.F(float64(best.Microseconds())/float64(np), 2))
	}
	return []*metrics.Table{t}, nil
}
