package exper

import (
	"context"
	"time"

	"lama/internal/appsim"
	"lama/internal/cluster"
	"lama/internal/commpat"
	"lama/internal/core"
	"lama/internal/hw"
	"lama/internal/metrics"
	"lama/internal/msgsim"
	"lama/internal/netsim"
	"lama/internal/place"
	"lama/internal/reorder"
)

func init() {
	register("E18", "ablation: analytic cost models vs flow-level contention simulation", runE18)
}

// runE18 ablates the cost model (DESIGN.md §5): the same phase is priced
// three ways — the volume-weighted analytic sum (netsim), the
// busiest-party analytic max (appsim's comm phase), and a flow-level
// max-min-fair fluid simulation (msgsim). The fluid makespan is the
// reference; the table shows where each approximation sits and that the
// *ranking* of mappings (the thing experiments E5-E13 rely on) is
// preserved by the cheap models.
func runE18(Options) ([]*metrics.Table, error) {
	sp, _ := hw.Preset("nehalem-ep")
	c := cluster.Homogeneous(8, sp)
	np := 64
	mo := netsim.NewModel(netsim.NewFlat())

	patterns := []struct {
		name string
		tm   *commpat.Matrix
	}{
		{"ring", commpat.Ring(np, 1<<20)},
		{"stencil2d", func() *commpat.Matrix {
			px, py := commpat.Grid2D(np)
			return commpat.Stencil2D(px, py, 1<<20, true)
		}()},
		{"alltoall", commpat.AllToAll(np, 1<<16)},
	}
	layouts := []string{"csbnh", "ncsbh", "hcsbn"}

	var out []*metrics.Table
	for _, p := range patterns {
		t := metrics.NewTable("E18 / cost-model ablation on "+p.name+" (np=64, 8 nodes, flat)",
			"mapping", "analytic sum (ms)", "analytic max (ms)", "fluid makespan (ms)", "max/fluid")
		type row struct {
			fluid float64
			sum   float64
		}
		var rows []row
		for _, layout := range layouts {
			mapper, err := core.NewMapper(c, core.MustParseLayout(layout), core.Options{})
			if err != nil {
				return nil, err
			}
			m, err := mapper.Map(np)
			if err != nil {
				return nil, err
			}
			rep, err := mo.Evaluate(c, m, p.tm)
			if err != nil {
				return nil, err
			}
			app, err := appsim.Run(c, m, mo, p.tm, appsim.Config{ComputeUs: 0.001, Iterations: 1})
			if err != nil {
				return nil, err
			}
			fluid, err := msgsim.Run(c, m, mo, msgsim.FromMatrix(p.tm))
			if err != nil {
				return nil, err
			}
			rows = append(rows, row{fluid: fluid.Makespan, sum: rep.TotalTime})
			ratio := 0.0
			if fluid.Makespan > 0 {
				ratio = app.CommUs / fluid.Makespan
			}
			t.AddRow(layout,
				metrics.F(rep.TotalTime/1000, 3),
				metrics.F(app.CommUs/1000, 3),
				metrics.F(fluid.Makespan/1000, 3),
				metrics.F(ratio, 2))
		}
		// Consistency note: the cheap model agrees with the fluid
		// reference when its preferred mapping is within 5% of the true
		// fluid optimum (exact ties are common on symmetric patterns).
		bestSum, bestFluid := 0, 0
		for i := range rows {
			if rows[i].sum < rows[bestSum].sum {
				bestSum = i
			}
			if rows[i].fluid < rows[bestFluid].fluid {
				bestFluid = i
			}
		}
		agree := "yes"
		if rows[bestSum].fluid > rows[bestFluid].fluid*1.05 {
			agree = "NO"
		}
		t.AddRow("(ranking agreement)", "", "", "", agree)
		out = append(out, t)
	}
	return out, nil
}

func init() {
	register("E19", "extension: rank reordering vs remapping", runE19)
}

// runE19 compares the two application-aware optimizations: reordering the
// ranks of an already-mapped job (processors fixed; MPI's reorder-enabled
// communicators) versus remapping from scratch (TreeMatch-style). Both
// are contrasted against the pattern-oblivious default the LAMA produces.
func runE19(o Options) ([]*metrics.Table, error) {
	sp, _ := hw.Preset("nehalem-ep")
	c := cluster.Homogeneous(8, sp)
	np := 64
	mo := netsim.NewModel(netsim.NewFlat())

	patterns := []struct {
		name string
		tm   *commpat.Matrix
	}{
		{"ring", commpat.Ring(np, 1<<20)},
		{"shuffled cliques", cliques(np, 8, 1<<20, o.Seed+19)},
	}
	t := metrics.NewTable("E19 / reorder vs remap (np=64, 8 nodes, flat)",
		"pattern", "default csbnh (ms)", "reordered (ms)", "treematch remap (ms)", "reorder gain", "swaps")
	for _, p := range patterns {
		mapper, err := core.NewMapper(c, core.MustParseLayout("csbnh"), core.Options{})
		if err != nil {
			return nil, err
		}
		m, err := mapper.Map(np)
		if err != nil {
			return nil, err
		}
		res, err := reorder.Optimize(c, m, mo, p.tm, 0)
		if err != nil {
			return nil, err
		}
		tmm, err := place.Place(context.Background(), "treematch", &place.Request{Cluster: c, NP: np, Traffic: p.tm})
		if err != nil {
			return nil, err
		}
		tmRep, err := mo.Evaluate(c, tmm, p.tm)
		if err != nil {
			return nil, err
		}
		t.AddRow(p.name,
			metrics.F(res.Before/1000, 3),
			metrics.F(res.After/1000, 3),
			metrics.F(tmRep.TotalTime/1000, 3),
			metrics.Pct(res.After, res.Before),
			metrics.I(res.Swaps))
	}
	return []*metrics.Table{t}, nil
}

func init() {
	register("E20", "extension: planning cost of mapping strategies", runE20)
}

// runE20 measures what each mapping strategy costs at launch time: the
// LAMA does constant work per swept coordinate and needs no application
// knowledge, while the application-aware alternatives (TreeMatch remap,
// swap reordering) pay quadratic work in the rank count — the practical
// argument for pattern-based mapping as the default path.
func runE20(o Options) ([]*metrics.Table, error) {
	sp, _ := hw.Preset("nehalem-ep")
	t := metrics.NewTable("E20 / planning time by strategy (ms, best of 3)",
		"np", "nodes", "LAMA scbnh", "treematch", "reorder (1 sweep)")
	// Reordering's swap sweep is O(np^3); keep the common sizes small and
	// leave the big point to -full runs.
	sizes := []struct{ nodes, np int }{{4, 64}, {8, 128}, {16, 256}}
	if o.Full {
		sizes = append(sizes, struct{ nodes, np int }{64, 1024})
	}
	for _, sz := range sizes {
		c := cluster.Homogeneous(sz.nodes, sp)
		tm := commpat.Ring(sz.np, 1<<20)
		mo := netsim.NewModel(netsim.NewFlat())

		lamaMs, err := bestOf3(func() error {
			mapper, err := core.NewMapper(c, core.MustParseLayout("scbnh"), core.Options{})
			if err != nil {
				return err
			}
			_, err = mapper.Map(sz.np)
			return err
		})
		if err != nil {
			return nil, err
		}
		tmMs, err := bestOf3(func() error {
			_, err := place.Place(context.Background(), "treematch", &place.Request{Cluster: c, NP: sz.np, Traffic: tm})
			return err
		})
		if err != nil {
			return nil, err
		}
		mapper, err := core.NewMapper(c, core.MustParseLayout("scbnh"), core.Options{})
		if err != nil {
			return nil, err
		}
		m, err := mapper.Map(sz.np)
		if err != nil {
			return nil, err
		}
		roMs, err := bestOf3(func() error {
			_, err := reorder.Optimize(c, m, mo, tm, 1)
			return err
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(metrics.I(sz.np), metrics.I(sz.nodes),
			metrics.F(lamaMs, 3), metrics.F(tmMs, 3), metrics.F(roMs, 3))
	}
	return []*metrics.Table{t}, nil
}

// bestOf3 times fn three times and returns the fastest run in ms.
func bestOf3(fn func() error) (float64, error) {
	best := -1.0
	for i := 0; i < 3; i++ {
		start := time.Now()
		if err := fn(); err != nil {
			return 0, err
		}
		ms := float64(time.Since(start).Microseconds()) / 1000
		if best < 0 || ms < best {
			best = ms
		}
	}
	return best, nil
}
