package exper

import (
	"context"
	"errors"
	"fmt"

	"lama/internal/bind"
	"lama/internal/cluster"
	"lama/internal/core"
	"lama/internal/hw"
	"lama/internal/metrics"
	"lama/internal/mpirun"
	"lama/internal/orte"
)

func init() {
	register("E10", "§III-B: binding widths and oversubscription", runE10)
	register("E11", "§V: CLI abstraction levels 1-4", runE11)
}

// runE10 reproduces the binding-step semantics: binding widths at each
// level, oversubscription detection at the mapping step, multi-PU ranks,
// and launch-time enforcement (no migration under single-PU binding).
func runE10(Options) ([]*metrics.Table, error) {
	sp, _ := hw.Preset("nehalem-ep") // 2s x (1 NUMA, 1 L3, 4 L2) x 1c x 2t
	c := cluster.Homogeneous(2, sp)
	mapper, err := core.NewMapper(c, core.MustParseLayout("scbnh"), core.Options{})
	if err != nil {
		return nil, err
	}
	m, err := mapper.Map(8)
	if err != nil {
		return nil, err
	}

	t1 := metrics.NewTable("E10a / binding width by bind-to level (nehalem-ep, np=8)",
		"bind-to", "policy", "width (PUs)", "migrations at launch")
	rt := orte.NewRuntime(c)
	rows := []struct {
		name   string
		policy bind.Policy
		level  hw.Level
	}{
		{"none", bind.None, hw.LevelCore},
		{"limited", bind.Limited, hw.LevelCore},
		{"socket", bind.Specific, hw.LevelSocket},
		{"numa", bind.Specific, hw.LevelNUMA},
		{"l2", bind.Specific, hw.LevelL2},
		{"core", bind.Specific, hw.LevelCore},
		{"hwthread", bind.Specific, hw.LevelPU},
	}
	for _, row := range rows {
		plan, err := bind.Compute(c, m, row.policy, row.level)
		if err != nil {
			return nil, err
		}
		job, err := rt.Launch(m, plan, 16)
		if err != nil {
			return nil, err
		}
		if err := job.CheckEnforcement(); err != nil {
			return nil, err
		}
		mig := 0
		for _, p := range job.Procs {
			mig += p.Migrations()
		}
		width := "unbound"
		if plan.Bindings[0].Width > 0 {
			width = metrics.I(plan.Bindings[0].Width)
		}
		t1.AddRow(row.name, row.policy.String(), width, metrics.I(mig))
	}

	// Oversubscription detection.
	t2 := metrics.NewTable("E10b / oversubscription detection (32 PUs total)",
		"np", "oversubscribe opt", "result", "flagged ranks", "sweeps")
	for _, trial := range []struct {
		np    int
		allow bool
	}{
		{32, false}, {33, false}, {33, true}, {48, true},
	} {
		mp, err := core.NewMapper(c, core.MustParseLayout("scbnh"),
			core.Options{Oversubscribe: trial.allow})
		if err != nil {
			return nil, err
		}
		mm, err := mp.Map(trial.np)
		switch {
		case errors.Is(err, core.ErrOversubscribe):
			t2.AddRow(metrics.I(trial.np), fmt.Sprint(trial.allow),
				"rejected (ErrOversubscribe)", "-", "-")
		case err != nil:
			return nil, err
		default:
			flagged := 0
			for i := range mm.Placements {
				if mm.Placements[i].Oversubscribed {
					flagged++
				}
			}
			t2.AddRow(metrics.I(trial.np), fmt.Sprint(trial.allow),
				"mapped", metrics.I(flagged), metrics.I(mm.Sweeps))
		}
	}

	// Multi-PU ranks: pe=2 at core leaves gives every rank a whole core.
	mp2, err := core.NewMapper(c, core.MustParseLayout("scn"), core.Options{PEsPerProc: 2})
	if err != nil {
		return nil, err
	}
	m2, err := mp2.Map(16)
	if err != nil {
		return nil, err
	}
	plan2, err := bind.Compute(c, m2, bind.Specific, hw.LevelPU)
	if err != nil {
		return nil, err
	}
	t3 := metrics.NewTable("E10c / multi-PU ranks (pe=2, layout scn, np=16)",
		"ranks", "PUs per rank", "binding width", "oversubscribed")
	t3.AddRow(metrics.I(m2.NumRanks()), metrics.I(len(m2.Placements[0].PUs)),
		metrics.I(plan2.Bindings[0].Width), fmt.Sprint(m2.Oversubscribed()))
	return []*metrics.Table{t1, t2, t3}, nil
}

// runE11 reproduces the four CLI abstraction levels and verifies that
// Levels 1 and 2 lower onto exactly the Level 3 plans.
func runE11(Options) ([]*metrics.Table, error) {
	sp, _ := hw.Preset("fig2")
	c := cluster.Homogeneous(2, sp)

	t := metrics.NewTable("E11 / CLI abstraction levels (np=8, 2 nodes)",
		"level", "arguments", "effective layout", "rank0", "rank1", "equals Level 3")
	cases := []struct {
		level string
		args  []string
	}{
		{"1", []string{"-np", "8"}},
		{"2", []string{"-np", "8", "--byslot"}},
		{"2", []string{"-np", "8", "--bynode"}},
		{"2", []string{"-np", "8", "--map-by", "socket"}},
		{"3", []string{"-np", "8", "--lama-map", "scbnh"}},
		{"4", []string{"-np", "8", "--rankfile-text",
			"rank 0=node0 slot=0\nrank 1=node1 slot=0:1\nrank 2=node0 slot=1:0-1\nrank 3=node1 slot=6-7\n" +
				"rank 4=node0 slot=4\nrank 5=node1 slot=5\nrank 6=node0 slot=1:2\nrank 7=node1 slot=0:0"}},
	}
	for _, cs := range cases {
		req, err := mpirun.Parse(cs.args)
		if err != nil {
			return nil, err
		}
		res, err := mpirun.Execute(context.Background(), req, c)
		if err != nil {
			return nil, err
		}
		layout := "(rankfile)"
		equal := "n/a"
		if req.Level != 4 {
			layout = req.Layout.String()
			// Re-run through Level 3 explicitly and compare.
			req3, err := mpirun.Parse([]string{"-np", "8", "--lama-map", layout})
			if err != nil {
				return nil, err
			}
			res3, err := mpirun.Execute(context.Background(), req3, c)
			if err != nil {
				return nil, err
			}
			equal = "yes"
			for i := range res.Map.Placements {
				a, b := res.Map.Placements[i], res3.Map.Placements[i]
				if a.Node != b.Node || a.PU() != b.PU() {
					equal = "NO"
				}
			}
		}
		desc := func(i int) string {
			p := res.Map.Placements[i]
			return fmt.Sprintf("%s/pu%d", p.NodeName, p.PU())
		}
		t.AddRow(metrics.I(req.Level), fmt.Sprint(cs.args), layout, desc(0), desc(1), equal)
	}
	return []*metrics.Table{t}, nil
}
