package exper

import (
	"context"
	"lama/internal/cluster"
	"lama/internal/commpat"
	"lama/internal/core"
	"lama/internal/hw"
	"lama/internal/metrics"
	"lama/internal/netsim"
	"lama/internal/place"
	_ "lama/internal/place/all" // link the registry's built-in policies
	"lama/internal/torus"
)

func init() {
	register("E9", "§II comparators: by-node/by-slot/MPICH2/BlueGene-XYZT vs LAMA", runE9)
}

// runE9 compares the LAMA against its related-work comparators on a torus
// machine (a BlueGene/P-like installation): equivalence where a baseline
// is expressible as a layout, and communication cost (including torus link
// congestion) where strategies genuinely differ.
func runE9(Options) ([]*metrics.Table, error) {
	sp, _ := hw.Preset("bgp-node") // 4 single-thread cores
	dims := torus.Dims{X: 4, Y: 4, Z: 2}
	c := cluster.Homogeneous(dims.Size(), sp)
	np := dims.Size() * 4 // 128: fully packed

	// Part 1: equivalence. By-slot == LAMA csbnh, by-node == LAMA ncsbh,
	// torus txyz == by-slot on the linearized node order.
	t1 := metrics.NewTable("E9a / baseline equals its LAMA layout (np=128, 32 nodes)",
		"baseline", "LAMA layout", "identical placements")
	check := func(name, layout string, base *core.Map) error {
		mapper, err := core.NewMapper(c, core.MustParseLayout(layout), core.Options{})
		if err != nil {
			return err
		}
		m, err := mapper.Map(np)
		if err != nil {
			return err
		}
		same := "yes"
		for i := range m.Placements {
			if m.Placements[i].Node != base.Placements[i].Node ||
				m.Placements[i].PU() != base.Placements[i].PU() {
				same = "NO"
				break
			}
		}
		t1.AddRow(name, layout, same)
		return nil
	}
	// Every comparator resolves through the policy registry, the same path
	// the CLIs use.
	tdims := [3]int{dims.X, dims.Y, dims.Z}
	bySlot, err := place.Place(context.Background(), "by-slot", &place.Request{Cluster: c, NP: np})
	if err != nil {
		return nil, err
	}
	if err := check("by-slot", "csbnh", bySlot); err != nil {
		return nil, err
	}
	byNode, err := place.Place(context.Background(), "by-node", &place.Request{Cluster: c, NP: np})
	if err != nil {
		return nil, err
	}
	if err := check("by-node", "ncsbh", byNode); err != nil {
		return nil, err
	}
	txyz, err := place.Place(context.Background(), "torus", &place.Request{
		Cluster: c, NP: np, TorusDims: tdims, TorusOrder: "txyz",
	})
	if err != nil {
		return nil, err
	}
	if err := check("torus txyz", "csbnh", txyz); err != nil {
		return nil, err
	}

	// Part 2: cost comparison on torus-aware patterns.
	mo := netsim.NewModel(netsim.NewTorus3D(dims))
	px, py, pz := commpat.Grid3D(np)
	patterns := []struct {
		name string
		tm   *commpat.Matrix
	}{
		{"stencil3d", commpat.Stencil3D(px, py, pz, 1<<20, true)},
		{"alltoall", commpat.AllToAll(np, 1<<18)},
	}
	strategies := []struct {
		name   string
		policy string
		req    place.Request
	}{
		{"LAMA csbnh (pack)", "lama", place.Request{Layout: core.MustParseLayout("csbnh")}},
		{"LAMA ncsbh (cycle)", "lama", place.Request{Layout: core.MustParseLayout("ncsbh")}},
		{"torus xyzt", "torus", place.Request{TorusDims: tdims, TorusOrder: "xyzt"}},
		{"torus txyz", "torus", place.Request{TorusDims: tdims, TorusOrder: "txyz"}},
		{"mpich2 pack@socket", "pack", place.Request{PackLevel: hw.LevelSocket}},
		{"random", "random", place.Request{Seed: 1}},
	}
	out := []*metrics.Table{t1}
	for _, p := range patterns {
		t2 := metrics.NewTable("E9b / strategy cost on "+p.name+" (3-D torus network)",
			"strategy", "total time (ms)", "hop-bytes (MB-hops)", "max link load (MB)", "vs random")
		rnd, err := place.Place(context.Background(), "random", &place.Request{Cluster: c, NP: np, Seed: 1})
		if err != nil {
			return nil, err
		}
		rndRep, err := mo.Evaluate(c, rnd, p.tm)
		if err != nil {
			return nil, err
		}
		for _, s := range strategies {
			req := s.req
			req.Cluster, req.NP = c, np
			m, err := place.Place(context.Background(), s.policy, &req)
			if err != nil {
				return nil, err
			}
			rep, err := mo.Evaluate(c, m, p.tm)
			if err != nil {
				return nil, err
			}
			t2.AddRow(s.name,
				metrics.F(rep.TotalTime/1000, 2),
				metrics.F(rep.HopBytes/1e6, 1),
				metrics.F(rep.MaxLinkLoad/1e6, 1),
				metrics.Pct(rep.TotalTime, rndRep.TotalTime))
		}
		out = append(out, t2)
	}
	return out, nil
}
