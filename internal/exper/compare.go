package exper

import (
	"lama/internal/baseline"
	"lama/internal/cluster"
	"lama/internal/commpat"
	"lama/internal/core"
	"lama/internal/hw"
	"lama/internal/metrics"
	"lama/internal/netsim"
	"lama/internal/torus"
)

func init() {
	register("E9", "§II comparators: by-node/by-slot/MPICH2/BlueGene-XYZT vs LAMA", runE9)
}

// runE9 compares the LAMA against its related-work comparators on a torus
// machine (a BlueGene/P-like installation): equivalence where a baseline
// is expressible as a layout, and communication cost (including torus link
// congestion) where strategies genuinely differ.
func runE9(Options) ([]*metrics.Table, error) {
	sp, _ := hw.Preset("bgp-node") // 4 single-thread cores
	dims := torus.Dims{X: 4, Y: 4, Z: 2}
	c := cluster.Homogeneous(dims.Size(), sp)
	np := dims.Size() * 4 // 128: fully packed

	// Part 1: equivalence. By-slot == LAMA csbnh, by-node == LAMA ncsbh,
	// torus txyz == by-slot on the linearized node order.
	t1 := metrics.NewTable("E9a / baseline equals its LAMA layout (np=128, 32 nodes)",
		"baseline", "LAMA layout", "identical placements")
	check := func(name, layout string, base *core.Map) error {
		mapper, err := core.NewMapper(c, core.MustParseLayout(layout), core.Options{})
		if err != nil {
			return err
		}
		m, err := mapper.Map(np)
		if err != nil {
			return err
		}
		same := "yes"
		for i := range m.Placements {
			if m.Placements[i].Node != base.Placements[i].Node ||
				m.Placements[i].PU() != base.Placements[i].PU() {
				same = "NO"
				break
			}
		}
		t1.AddRow(name, layout, same)
		return nil
	}
	bySlot, err := baseline.BySlot(c, np)
	if err != nil {
		return nil, err
	}
	if err := check("by-slot", "csbnh", bySlot); err != nil {
		return nil, err
	}
	byNode, err := baseline.ByNode(c, np)
	if err != nil {
		return nil, err
	}
	if err := check("by-node", "ncsbh", byNode); err != nil {
		return nil, err
	}
	txyz, err := torus.Map(c, dims, "txyz", np)
	if err != nil {
		return nil, err
	}
	if err := check("torus txyz", "csbnh", txyz); err != nil {
		return nil, err
	}

	// Part 2: cost comparison on torus-aware patterns.
	mo := netsim.NewModel(netsim.NewTorus3D(dims))
	px, py, pz := commpat.Grid3D(np)
	patterns := []struct {
		name string
		tm   *commpat.Matrix
	}{
		{"stencil3d", commpat.Stencil3D(px, py, pz, 1<<20, true)},
		{"alltoall", commpat.AllToAll(np, 1<<18)},
	}
	strategies := []struct {
		name string
		gen  func() (*core.Map, error)
	}{
		{"LAMA csbnh (pack)", func() (*core.Map, error) {
			m, _ := core.NewMapper(c, core.MustParseLayout("csbnh"), core.Options{})
			return m.Map(np)
		}},
		{"LAMA ncsbh (cycle)", func() (*core.Map, error) {
			m, _ := core.NewMapper(c, core.MustParseLayout("ncsbh"), core.Options{})
			return m.Map(np)
		}},
		{"torus xyzt", func() (*core.Map, error) { return torus.Map(c, dims, "xyzt", np) }},
		{"torus txyz", func() (*core.Map, error) { return torus.Map(c, dims, "txyz", np) }},
		{"mpich2 pack@socket", func() (*core.Map, error) { return baseline.Pack(c, hw.LevelSocket, np) }},
		{"random", func() (*core.Map, error) { return baseline.Random(c, 1, np) }},
	}
	out := []*metrics.Table{t1}
	for _, p := range patterns {
		t2 := metrics.NewTable("E9b / strategy cost on "+p.name+" (3-D torus network)",
			"strategy", "total time (ms)", "hop-bytes (MB-hops)", "max link load (MB)", "vs random")
		rnd, err := baseline.Random(c, 1, np)
		if err != nil {
			return nil, err
		}
		rndRep, err := mo.Evaluate(c, rnd, p.tm)
		if err != nil {
			return nil, err
		}
		for _, s := range strategies {
			m, err := s.gen()
			if err != nil {
				return nil, err
			}
			rep, err := mo.Evaluate(c, m, p.tm)
			if err != nil {
				return nil, err
			}
			t2.AddRow(s.name,
				metrics.F(rep.TotalTime/1000, 2),
				metrics.F(rep.HopBytes/1e6, 1),
				metrics.F(rep.MaxLinkLoad/1e6, 1),
				metrics.Pct(rep.TotalTime, rndRep.TotalTime))
		}
		out = append(out, t2)
	}
	return out, nil
}
