package exper

import (
	"context"
	"sort"

	"lama/internal/cluster"
	"lama/internal/commpat"
	"lama/internal/core"
	"lama/internal/hw"
	"lama/internal/metrics"
	"lama/internal/netsim"
	"lama/internal/obs"
	"lama/internal/parallel"
	"lama/internal/permute"
	"lama/internal/torus"
)

func init() {
	register("E5", "§II motivation [2]: GTC placement tuning", runE5)
	register("E6", "§II motivation [3]: NAS placement sensitivity", runE6)
}

// evalLayout maps np ranks with a layout and evaluates a traffic matrix.
func evalLayout(c *cluster.Cluster, mo *netsim.Model, layout string, np int,
	tm *commpat.Matrix) (*netsim.Report, error) {
	mapper, err := core.NewMapper(c, core.MustParseLayout(layout), core.Options{})
	if err != nil {
		return nil, err
	}
	m, err := mapper.Map(np)
	if err != nil {
		return nil, err
	}
	return mo.Evaluate(c, m, tm)
}

// sweepLayouts evaluates every layout concurrently, returning per-layout
// reports in layout order. Mapping goes through the parallel sweep engine
// (core.SweepLayouts, with per-worker mapper reuse); the network
// evaluations then fan out over the resulting maps.
func sweepLayouts(c *cluster.Cluster, mo *netsim.Model, layouts []string, np int,
	tm *commpat.Matrix, ob *obs.Observer) ([]*netsim.Report, error) {
	parsed := make([]core.Layout, len(layouts))
	for i, s := range layouts {
		var err error
		if parsed[i], err = core.ParseLayout(s); err != nil {
			return nil, err
		}
	}
	maps, err := core.SweepLayouts(context.Background(), c, parsed, np, core.Options{Obs: ob}, 0)
	if err != nil {
		return nil, err
	}
	return parallel.Map(len(maps), 0, func(i int) (*netsim.Report, error) {
		return mo.Evaluate(c, maps[i], tm)
	})
}

// bestOfSweep returns the layout with the lowest TotalTime.
func bestOfSweep(layouts []string, reports []*netsim.Report) (string, float64) {
	best, bestT := "", 0.0
	for i, rep := range reports {
		if best == "" || rep.TotalTime < bestT {
			best, bestT = layouts[i], rep.TotalTime
		}
	}
	return best, bestT
}

// intraLayouts enumerates every layout over the letters n, b, s, c, h
// (120 permutations) — the regular-pattern space a user would sweep when
// tuning placement.
func intraLayouts() []string {
	letters := []hw.Level{hw.LevelMachine, hw.LevelBoard, hw.LevelSocket, hw.LevelCore, hw.LevelPU}
	var out []string
	permute.Each(len(letters), func(perm []int) bool {
		s := ""
		for _, p := range perm {
			s += letters[p].Abbrev()
		}
		out = append(out, s)
		return true
	})
	sort.Strings(out)
	return out
}

// runE5 realizes the GTC motivation: sweep the 120 five-letter layouts for
// a GTC-like traffic pattern on several network models and report how much
// the best tuned layout improves over the by-slot default. The paper's
// cited study [2] reports up to ~30% application improvement from tuned
// placement; the reproduction checks the shape (tuned placement wins by
// tens of percent of communication cost), not the absolute number.
func runE5(o Options) ([]*metrics.Table, error) {
	sp, _ := hw.Preset("nehalem-ep")
	nodes := 8
	c := cluster.Homogeneous(nodes, sp)
	np := 64
	tm := commpat.GTC(np, 1<<20)

	networks := []netsim.Network{
		netsim.NewFlat(),
		netsim.NewFatTree(4),
		netsim.NewTorus3D(torus.Dims{X: 4, Y: 2, Z: 1}),
		netsim.NewDragonfly(4),
	}
	t := metrics.NewTable("E5 / GTC-like toroidal exchange — tuned layout vs defaults (np=64, 8 nodes)",
		"network", "layout", "total time (ms)", "inter-node MB", "vs by-slot")
	for _, net := range networks {
		mo := netsim.NewModel(net)
		base, err := evalLayout(c, mo, "csbnh", np, tm)
		if err != nil {
			return nil, err
		}
		layouts := intraLayouts()
		reports, err := sweepLayouts(c, mo, layouts, np, tm, o.Obs)
		if err != nil {
			return nil, err
		}
		bestLayout, bestTime := bestOfSweep(layouts, reports)
		if base.TotalTime < bestTime {
			bestLayout, bestTime = "csbnh", base.TotalTime
		}
		for _, row := range []struct {
			name   string
			layout string
		}{
			{"by-slot (default)", "csbnh"},
			{"by-node", "ncsbh"},
			{"by-socket", "scbnh"},
			{"tuned: " + bestLayout, bestLayout},
		} {
			rep, err := evalLayout(c, mo, row.layout, np, tm)
			if err != nil {
				return nil, err
			}
			t.AddRow(net.Name(), row.name,
				metrics.F(rep.TotalTime/1000, 3),
				metrics.F(rep.InterBytes/1e6, 1),
				metrics.Pct(rep.TotalTime, base.TotalTime))
		}
	}
	return []*metrics.Table{t}, nil
}

// runE6 realizes the NAS motivation: for each NAS proxy pattern, sweep the
// 120-layout space and report the best, worst, and default costs. The
// cited study [3] shows placement changes NAS performance measurably; the
// reproduction's check is that the min-max spread is substantial and that
// which layout wins depends on the pattern.
func runE6(o Options) ([]*metrics.Table, error) {
	sp, _ := hw.Preset("nehalem-ep")
	c := cluster.Homogeneous(8, sp)
	np := 64
	mo := netsim.NewModel(netsim.NewFatTree(4))

	t := metrics.NewTable("E6 / NAS proxy placement sensitivity (np=64, 8 nodes, fat-tree)",
		"pattern", "best layout", "best (ms)", "worst (ms)", "default csbnh (ms)", "spread")
	for _, p := range []commpat.Pattern{
		{Name: "nas-cg", Gen: commpat.NASCG},
		{Name: "nas-mg", Gen: commpat.NASMG},
		{Name: "nas-ft", Gen: commpat.NASFT},
		{Name: "nas-lu", Gen: commpat.NASLU},
	} {
		tm := p.Gen(np, 1<<20)
		layouts := intraLayouts()
		reports, err := sweepLayouts(c, mo, layouts, np, tm, o.Obs)
		if err != nil {
			return nil, err
		}
		best, bestT := bestOfSweep(layouts, reports)
		worstT := 0.0
		for _, rep := range reports {
			if rep.TotalTime > worstT {
				worstT = rep.TotalTime
			}
		}
		def, err := evalLayout(c, mo, "csbnh", np, tm)
		if err != nil {
			return nil, err
		}
		t.AddRow(p.Name, best,
			metrics.F(bestT/1000, 3), metrics.F(worstT/1000, 3),
			metrics.F(def.TotalTime/1000, 3),
			metrics.Pct(bestT, worstT))
	}
	return []*metrics.Table{t}, nil
}
