package exper

import (
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"E1", "E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17", "E18", "E19", "E2", "E20", "E23", "E3", "E4", "E5", "E6", "E7", "E8", "E9"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(want))
	}
	for i, e := range all {
		if e.ID != want[i] {
			t.Fatalf("experiment %d = %s, want %s", i, e.ID, want[i])
		}
		if e.Exhibit == "" || e.Run == nil {
			t.Fatalf("experiment %s incomplete", e.ID)
		}
	}
	if _, err := ByID("E3"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByID("E99"); err == nil {
		t.Fatal("unknown ID should fail")
	}
}

// TestAllExperimentsRun executes every experiment at sampled scale and
// checks the tables are well-formed.
func TestAllExperimentsRun(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables, err := e.Run(Options{Seed: 1})
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(tables) == 0 {
				t.Fatalf("%s produced no tables", e.ID)
			}
			for _, tb := range tables {
				if tb.Title == "" || len(tb.Headers) == 0 || len(tb.Rows) == 0 {
					t.Fatalf("%s produced an empty table: %+v", e.ID, tb)
				}
				if out := tb.String(); !strings.Contains(out, "==") {
					t.Fatalf("%s table renders badly", e.ID)
				}
			}
		})
	}
}

func TestE3MatchesPaperNarrative(t *testing.T) {
	tables, err := runE3(Options{})
	if err != nil {
		t.Fatal(err)
	}
	main := tables[0]
	if len(main.Rows) != 24 {
		t.Fatalf("E3 rows = %d", len(main.Rows))
	}
	// Rank 0: node0 socket0 core0 thread0; rank 1 scatters to socket 1.
	if main.Rows[0][2] != "0" || main.Rows[1][2] != "1" {
		t.Fatalf("socket scatter broken: %v %v", main.Rows[0], main.Rows[1])
	}
	// Ranks 0-5 on node0, 6-11 on node1 (node before hwthread).
	if main.Rows[5][1] != "node0" || main.Rows[6][1] != "node1" {
		t.Fatalf("node fill broken: %v %v", main.Rows[5], main.Rows[6])
	}
	// Rank 12 wraps onto the second hardware thread of node0.
	if main.Rows[12][1] != "node0" || main.Rows[12][4] != "1" {
		t.Fatalf("hwthread wrap broken: %v", main.Rows[12])
	}
}

func TestE5ShowsTunedImprovement(t *testing.T) {
	tables, err := runE5(Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rows := tables[0].Rows
	// Every network block ends with a tuned row whose improvement is
	// non-negative versus the by-slot default.
	tuned := 0
	for _, row := range rows {
		if strings.HasPrefix(row[1], "tuned:") {
			tuned++
			if strings.HasPrefix(row[4], "-") {
				t.Fatalf("tuned layout slower than default: %v", row)
			}
		}
	}
	if tuned != 4 {
		t.Fatalf("tuned rows = %d, want one per each of 4 networks", tuned)
	}
}

func TestE4SampledCountsAreExact(t *testing.T) {
	tables, err := runE4(Options{})
	if err != nil {
		t.Fatal(err)
	}
	row := tables[0].Rows[0]
	if row[1] != "362880" {
		t.Fatalf("total layouts = %s", row[1])
	}
	if row[2] != "5040" || row[3] != "5040" {
		t.Fatalf("sampled check = %s/%s, want 5040/5040", row[2], row[3])
	}
}
