package exper

import (
	"fmt"
	"time"

	"lama/internal/cluster"
	"lama/internal/commpat"
	"lama/internal/core"
	"lama/internal/hw"
	"lama/internal/metrics"
	"lama/internal/netorder"
	"lama/internal/netsim"
	"lama/internal/obs"
)

func init() {
	register("E23", "extension: network-aware placement at scale (delta-J refinement, 4k-100k ranks)", runE23)
}

// NetCostRow is one scale point of the network-aware placement series:
// the cost of building the incremental evaluator, one full evaluation,
// the ordering and refinement passes, and the per-swap refinement cost —
// the number that must stay flat as np grows (lamabench's -net series
// records these as the additive "netcost" JSON rows).
type NetCostRow struct {
	Pattern string  `json:"pattern"`
	Network string  `json:"network"`
	NP      int     `json:"np"`
	Nodes   int     `json:"nodes"`
	NNZ     int     `json:"nnz"`
	BuildUs float64 `json:"build_us"`
	// FullEvalUs is one Model.EvaluateSparse pass — the O(nnz) cost a
	// naive refiner would pay per candidate swap.
	FullEvalUs float64 `json:"full_eval_us"`
	OrderUs    float64 `json:"order_us"`
	RefineUs   float64 `json:"refine_us"`
	Swaps      int     `json:"swaps"`
	// PerSwapNs is RefineUs spread over the candidate evaluations the
	// refinement actually priced (its swaps); 0 when no swap was taken.
	PerSwapNs float64 `json:"per_swap_ns"`
	JBefore   float64 `json:"j_before"`
	JOrdered  float64 `json:"j_ordered"`
	JAfter    float64 `json:"j_after"`
}

// NetScale runs the network-aware placement series: for each np it maps
// a ring job cycled across np/16 nehalem-ep nodes (the worst case for
// neighbor traffic), then times evaluator construction, one full
// evaluation, the node-ordering pass, and delta-J refinement. The
// traffic is generated directly in CSR form — at 100k ranks a dense
// matrix cannot exist — and the mapping uses the scatter layout so the
// passes have real work. Timings use the wall clock; placements and J
// values are bit-reproducible run to run.
func NetScale(netSpec string, nps []int, refine bool, o *obs.Observer) ([]NetCostRow, error) {
	sp, ok := hw.Preset("nehalem-ep")
	if !ok {
		return nil, fmt.Errorf("exper: nehalem-ep preset missing")
	}
	gen, ok := commpat.SparseByName("ring")
	if !ok {
		return nil, fmt.Errorf("exper: ring sparse pattern missing")
	}
	var rows []NetCostRow
	for _, np := range nps {
		nodes := np / 16
		if nodes < 1 {
			nodes = 1
		}
		c := cluster.Homogeneous(nodes, sp)
		net, err := netsim.ParseNetwork(netSpec, nodes)
		if err != nil {
			return nil, err
		}
		mo := netsim.NewModel(net)
		mapper, err := core.NewMapper(c, core.MustParseLayout("ncsbh"), core.Options{Obs: o})
		if err != nil {
			return nil, err
		}
		m, err := mapper.Map(np)
		if err != nil {
			return nil, err
		}
		tm := gen(np, 4096)

		row := NetCostRow{Pattern: "ring", Network: net.Name(), NP: np, Nodes: nodes, NNZ: tm.NNZ()}

		t0 := time.Now()
		cost, err := netsim.NewCost(c, mo, tm, m)
		if err != nil {
			return nil, err
		}
		row.BuildUs = float64(time.Since(t0)) / float64(time.Microsecond)
		row.JBefore = cost.J()

		t0 = time.Now()
		if _, err := mo.EvaluateSparse(c, m, tm); err != nil {
			return nil, err
		}
		row.FullEvalUs = float64(time.Since(t0)) / float64(time.Microsecond)

		t0 = time.Now()
		ordered, ores, err := netorder.OrderNodes(c, mo, tm, m)
		if err != nil {
			return nil, err
		}
		row.OrderUs = float64(time.Since(t0)) / float64(time.Microsecond)
		row.JOrdered = ores.JAfter
		row.JAfter = ores.JAfter

		if refine {
			t0 = time.Now()
			_, rres, err := netorder.RefineMap(c, mo, tm, ordered, 0)
			if err != nil {
				return nil, err
			}
			row.RefineUs = float64(time.Since(t0)) / float64(time.Microsecond)
			row.Swaps = rres.Swaps
			row.JAfter = rres.JAfter
			if rres.Swaps > 0 {
				row.PerSwapNs = row.RefineUs * 1000 / float64(rres.Swaps)
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// NetScaleTable renders the series for the experiment harness and
// lamabench's text output.
func NetScaleTable(netSpec string, rows []NetCostRow) *metrics.Table {
	t := metrics.NewTable(
		"E23 / network-aware placement at scale ("+netSpec+", ring, 16 ranks/node)",
		"np", "nodes", "nnz", "build (ms)", "full eval (ms)", "order (ms)", "refine (ms)",
		"swaps", "per-swap (µs)", "J before", "J refined", "gain %")
	for _, r := range rows {
		gain := 0.0
		if r.JBefore > 0 {
			gain = 100 * (r.JBefore - r.JAfter) / r.JBefore
		}
		t.AddRow(metrics.I(r.NP), metrics.I(r.Nodes), metrics.I(r.NNZ),
			metrics.F(r.BuildUs/1000, 2), metrics.F(r.FullEvalUs/1000, 2),
			metrics.F(r.OrderUs/1000, 2), metrics.F(r.RefineUs/1000, 2),
			metrics.I(r.Swaps), metrics.F(r.PerSwapNs/1000, 2),
			metrics.F(r.JBefore, 0), metrics.F(r.JAfter, 0), metrics.F(gain, 1))
	}
	return t
}

// runE23 is the harness entry: a sampled series by default, the full
// 4k → 100k scaling sweep with -full (the 100k point is the paper-scale
// claim: per-swap cost independent of np).
func runE23(o Options) ([]*metrics.Table, error) {
	nps := []int{1024, 4096}
	if o.Full {
		nps = []int{4096, 16384, 65536, 102400}
	}
	const netSpec = "dragonfly:8"
	rows, err := NetScale(netSpec, nps, true, o.Obs)
	if err != nil {
		return nil, err
	}
	return []*metrics.Table{NetScaleTable(netSpec, rows)}, nil
}
