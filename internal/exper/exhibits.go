package exper

import (
	"context"
	"fmt"
	"math/rand"
	"sync"

	"lama/internal/cluster"
	"lama/internal/core"
	"lama/internal/hw"
	"lama/internal/metrics"
	"lama/internal/permute"
)

func init() {
	register("E1", "Table I: mappable resource levels", runE1)
	register("E2", "Figure 1: recursive mapper vs explicit loop nest", runE2)
	register("E3", "Figure 2: 24 processes, scbnh layout, two nodes", runE3)
	register("E4", "§V claim: 362,880 layout permutations", runE4)
}

// runE1 regenerates Table I from the implementation's own level metadata.
func runE1(Options) ([]*metrics.Table, error) {
	t := metrics.NewTable("E1 / Table I — resources and abbreviations",
		"resource", "abbreviation", "description")
	for _, l := range hw.Levels {
		t.AddRow(l.String(), l.Abbrev(), l.Description())
	}
	return []*metrics.Table{t}, nil
}

// runE2 cross-validates the Figure 1 recursion against the iterative
// reference mapper over randomized clusters, layouts, and options.
func runE2(o Options) ([]*metrics.Table, error) {
	r := rand.New(rand.NewSource(o.Seed + 2))
	trials := 200
	if o.Full {
		trials = 2000
	}
	mismatches, failures, compared := 0, 0, 0
	for i := 0; i < trials; i++ {
		c := randomCluster(r)
		layout := randomLayout(r)
		opts := core.Options{Oversubscribe: r.Intn(2) == 1, PEsPerProc: 1 + r.Intn(2)}
		np := 1 + r.Intn(2*c.TotalUsablePUs()+1)
		m, err := core.NewMapper(c, layout, opts)
		if err != nil {
			failures++
			continue
		}
		a, errA := m.Map(np)
		b, errB := m.MapReference(np)
		if (errA == nil) != (errB == nil) {
			mismatches++
			continue
		}
		if errA != nil {
			continue
		}
		compared++
		if !equalMaps(a, b) {
			mismatches++
		}
	}
	t := metrics.NewTable("E2 / Figure 1 — recursion equals explicit loop nest",
		"trials", "maps compared", "mismatches", "setup failures")
	t.AddRow(metrics.I(trials), metrics.I(compared), metrics.I(mismatches), metrics.I(failures))
	if mismatches != 0 {
		return nil, fmt.Errorf("exper: E2 found %d mismatches", mismatches)
	}
	return []*metrics.Table{t}, nil
}

// runE3 regenerates the Figure 2 example mapping: 24 processes, layout
// scbnh, two nodes. The primary reconstruction uses 2 sockets x 3 cores x
// 2 hwthreads per node (24 PUs total), which exercises the wrap onto the
// second hardware thread that §IV-C describes; the wide variant
// (4 sockets x 3 cores, single-threaded) shows the socket scatter alone.
func runE3(Options) ([]*metrics.Table, error) {
	var out []*metrics.Table
	for _, variant := range []struct {
		preset string
		title  string
	}{
		{"fig2", "E3 / Figure 2 — scbnh, 2 nodes x (2s x 3c x 2h)"},
		{"fig2-wide", "E3 / Figure 2 (wide variant) — scbnh, 2 nodes x (4s x 3c x 1h)"},
	} {
		sp, ok := hw.Preset(variant.preset)
		if !ok {
			return nil, fmt.Errorf("exper: preset %q missing", variant.preset)
		}
		c := cluster.Homogeneous(2, sp)
		mapper, err := core.NewMapper(c, core.MustParseLayout("scbnh"), core.Options{})
		if err != nil {
			return nil, err
		}
		m, err := mapper.Map(24)
		if err != nil {
			return nil, err
		}
		if err := m.Validate(c); err != nil {
			return nil, err
		}
		t := metrics.NewTable(variant.title,
			"rank", "node", "socket", "core", "hwthread", "pu")
		for i := range m.Placements {
			p := &m.Placements[i]
			t.AddRow(
				metrics.I(p.Rank), p.NodeName,
				metrics.I(p.Coords[hw.LevelSocket]),
				metrics.I(p.Coords[hw.LevelCore]),
				metrics.I(p.Coords[hw.LevelPU]),
				metrics.I(p.PU()),
			)
		}
		out = append(out, t)
	}
	return out, nil
}

// runE4 enumerates full 9-level layouts and verifies each one parses and
// produces a complete, valid mapping; it also counts how many distinct
// placements the layout space reaches on a reference cluster. The paper
// claims 362,880 permutations; without Full a deterministic 1-in-72 sample
// (5,040 layouts) is checked. The mapping runs stream through the parallel
// sweep engine (core.SweepEach) — the maps are reduced to placement
// signatures on the fly rather than held in memory.
func runE4(o Options) ([]*metrics.Table, error) {
	sp, _ := hw.Preset("nehalem-ep")
	c := cluster.Homogeneous(2, sp)
	np := 32

	stride := 72
	if o.Full {
		stride = 1
	}
	total, failedParse := 0, 0
	var firstErr error
	var layouts []core.Layout
	permute.Each(hw.NumLevels, func(perm []int) bool {
		total++
		if (total-1)%stride != 0 {
			return true
		}
		abbrev := ""
		for _, p := range perm {
			abbrev += hw.Level(p).Abbrev()
		}
		layout, err := core.ParseLayout(abbrev)
		if err != nil {
			failedParse++
			firstErr = err
			return true
		}
		layouts = append(layouts, layout)
		return true
	})
	if total != permute.Factorial(hw.NumLevels) {
		return nil, fmt.Errorf("exper: enumerated %d layouts, want %d", total, permute.Factorial(hw.NumLevels))
	}
	if failedParse != 0 {
		return nil, fmt.Errorf("exper: E4 parse failures %d (first: %v)", failedParse, firstErr)
	}
	checked := len(layouts)
	var mu sync.Mutex
	distinct := map[string]bool{}
	err := core.SweepEach(context.Background(), c, layouts, np, core.Options{Obs: o.Obs}, 0, func(i int, m *core.Map) error {
		if m.NumRanks() != np {
			return fmt.Errorf("exper: layout %q placed %d of %d ranks", layouts[i], m.NumRanks(), np)
		}
		sig := ""
		for i := range m.Placements {
			sig += fmt.Sprintf("%d:%d;", m.Placements[i].Node, m.Placements[i].PU())
		}
		mu.Lock()
		distinct[sig] = true
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("exper: E4 map failure: %v", err)
	}
	mode := "sampled (1 in 72)"
	if o.Full {
		mode = "exhaustive"
	}
	t := metrics.NewTable("E4 / §V — the 362,880 layout permutations",
		"mode", "total layouts", "checked", "complete+valid", "distinct placements (np=32, 2 nodes)")
	t.AddRow(mode, metrics.I(total), metrics.I(checked), metrics.I(checked), metrics.I(len(distinct)))
	return []*metrics.Table{t}, nil
}

// ---- shared helpers ----

// randomCluster builds a small random, possibly heterogeneous and
// restricted cluster (mirrors the core package's property tests).
func randomCluster(r *rand.Rand) *cluster.Cluster {
	n := 1 + r.Intn(4)
	specs := make([]hw.Spec, n)
	for i := range specs {
		specs[i] = hw.Spec{
			Boards: 1 + r.Intn(2), Sockets: 1 + r.Intn(3), NUMAs: 1 + r.Intn(2),
			L3s: 1, L2s: 1 + r.Intn(2), L1s: 1, Cores: 1 + r.Intn(3), PUs: 1 + r.Intn(2),
			ThreadMajorOS: r.Intn(2) == 1,
		}
	}
	c := cluster.FromSpecs(specs...)
	for _, node := range c.Nodes {
		if r.Intn(3) == 0 {
			lvl := hw.Level(1 + r.Intn(hw.NumLevels-1))
			if cnt := node.Topo.NumObjects(lvl); cnt > 1 {
				node.Topo.SetAvailable(lvl, r.Intn(cnt), false)
			}
		}
	}
	return c
}

func randomLayout(r *rand.Rand) core.Layout {
	perm := r.Perm(hw.NumLevels)
	k := 1 + r.Intn(hw.NumLevels)
	levels := make([]hw.Level, 0, k)
	hasNode := false
	for _, p := range perm[:k] {
		levels = append(levels, hw.Level(p))
		if hw.Level(p) == hw.LevelMachine {
			hasNode = true
		}
	}
	if !hasNode {
		levels[r.Intn(len(levels))] = hw.LevelMachine
	}
	l, err := core.NewLayout(levels...)
	if err != nil {
		panic(err)
	}
	return l
}

func equalMaps(a, b *core.Map) bool {
	if a.NumRanks() != b.NumRanks() || a.Sweeps != b.Sweeps {
		return false
	}
	for i := range a.Placements {
		pa, pb := &a.Placements[i], &b.Placements[i]
		if pa.Node != pb.Node || pa.Leaf != pb.Leaf || pa.Oversubscribed != pb.Oversubscribed {
			return false
		}
		if len(pa.PUs) != len(pb.PUs) {
			return false
		}
		for j := range pa.PUs {
			if pa.PUs[j] != pb.PUs[j] {
				return false
			}
		}
	}
	return true
}
