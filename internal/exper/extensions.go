package exper

import (
	"context"
	"fmt"

	"lama/internal/appsim"
	"lama/internal/cluster"
	"lama/internal/commpat"
	"lama/internal/core"
	"lama/internal/hw"
	"lama/internal/metrics"
	"lama/internal/netsim"
	"lama/internal/place"
)

func init() {
	register("E12", "extension: traffic-aware (TreeMatch-style) vs pattern-oblivious mapping", runE12)
	register("E13", "extension: application iteration time under different mappings", runE13)
}

// runE12 quantifies the gap the paper's approach leaves open: the LAMA
// applies regular patterns obliviously to the application, while the
// related-work TreeMatch (paper ref [3]) reads the communication matrix.
// For regular traffic the best regular layout should be competitive; for
// irregular traffic the traffic-aware mapper should win.
func runE12(o Options) ([]*metrics.Table, error) {
	sp, _ := hw.Preset("nehalem-ep")
	c := cluster.Homogeneous(8, sp)
	np := 64
	mo := netsim.NewModel(netsim.NewFatTree(4))

	patterns := []struct {
		name string
		tm   *commpat.Matrix
	}{
		{"ring (regular)", commpat.Ring(np, 1<<20)},
		{"stencil2d (regular)", func() *commpat.Matrix {
			px, py := commpat.Grid2D(np)
			return commpat.Stencil2D(px, py, 1<<20, true)
		}()},
		{"gtc (mostly regular)", commpat.GTC(np, 1<<20)},
		{"random-pairs (irregular)", commpat.RandomPairs(np, 150, 1<<20, o.Seed+12)},
		{"shuffled cliques (irregular)", cliques(np, 8, 1<<20, o.Seed+13)},
	}

	t := metrics.NewTable("E12 / traffic-aware vs best regular layout (np=64, 8 nodes, fat-tree)",
		"pattern", "best regular layout", "best regular (ms)", "treematch (ms)", "random (ms)", "treematch vs best regular")
	for _, p := range patterns {
		layouts := intraLayouts()
		reports, err := sweepLayouts(c, mo, layouts, np, p.tm, o.Obs)
		if err != nil {
			return nil, err
		}
		bestLayout, bestTime := bestOfSweep(layouts, reports)
		tmMap, err := place.Place(context.Background(), "treematch", &place.Request{Cluster: c, NP: np, Traffic: p.tm})
		if err != nil {
			return nil, err
		}
		tmRep, err := mo.Evaluate(c, tmMap, p.tm)
		if err != nil {
			return nil, err
		}
		rnd, err := place.Place(context.Background(), "random", &place.Request{Cluster: c, NP: np, Seed: o.Seed + 14})
		if err != nil {
			return nil, err
		}
		rndRep, err := mo.Evaluate(c, rnd, p.tm)
		if err != nil {
			return nil, err
		}
		t.AddRow(p.name, bestLayout,
			metrics.F(bestTime/1000, 3),
			metrics.F(tmRep.TotalTime/1000, 3),
			metrics.F(rndRep.TotalTime/1000, 3),
			metrics.Pct(tmRep.TotalTime, bestTime))
	}
	return []*metrics.Table{t}, nil
}

// cliques builds an irregular pattern: groups of size g communicate
// all-to-all internally, but group membership is a seeded shuffle of the
// rank space, so no regular layout can align with it.
func cliques(n, g int, bytes float64, seed int64) *commpat.Matrix {
	m := commpat.NewMatrix(n)
	perm := shuffled(n, seed)
	for base := 0; base < n; base += g {
		for i := base; i < base+g && i < n; i++ {
			for j := base; j < base+g && j < n; j++ {
				if i != j {
					m.Add(perm[i], perm[j], bytes)
				}
			}
		}
	}
	return m
}

// shuffled returns a deterministic pseudo-random permutation of 0..n-1
// using a simple multiplicative walk (self-contained, seed-stable).
func shuffled(n int, seed int64) []int {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	state := uint64(seed)*2862933555777941757 + 3037000493
	for i := n - 1; i > 0; i-- {
		state = state*2862933555777941757 + 3037000493
		j := int(state % uint64(i+1))
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm
}

// runE13 turns mapping quality into application time: a BSP stencil
// application is simulated to completion under several mappings, giving
// the end-to-end speedups that motivate the whole mapping exercise.
func runE13(o Options) ([]*metrics.Table, error) {
	sp, _ := hw.Preset("nehalem-ep")
	c := cluster.Homogeneous(8, sp)
	np := 64
	px, py := commpat.Grid2D(np)
	tm := commpat.Stencil2D(px, py, 1<<20, true)
	mo := netsim.NewModel(netsim.NewFatTree(4))
	cfg := appsim.Config{ComputeUs: 500, Iterations: 1000}

	strategies := []struct {
		name string
		gen  func() (*core.Map, error)
	}{
		{"LAMA csbnh (pack)", func() (*core.Map, error) {
			mp, _ := core.NewMapper(c, core.MustParseLayout("csbnh"), core.Options{})
			return mp.Map(np)
		}},
		{"LAMA ncsbh (cycle)", func() (*core.Map, error) {
			mp, _ := core.NewMapper(c, core.MustParseLayout("ncsbh"), core.Options{})
			return mp.Map(np)
		}},
		{"LAMA hcsbn (pack threads)", func() (*core.Map, error) {
			mp, _ := core.NewMapper(c, core.MustParseLayout("hcsbn"), core.Options{})
			return mp.Map(np)
		}},
		{"treematch", func() (*core.Map, error) {
			return place.Place(context.Background(), "treematch", &place.Request{Cluster: c, NP: np, Traffic: tm})
		}},
		{"slurm plane(8)", func() (*core.Map, error) {
			return place.Place(context.Background(), "plane", &place.Request{Cluster: c, NP: np, BlockSize: 8})
		}},
		{"random", func() (*core.Map, error) {
			return place.Place(context.Background(), "random", &place.Request{Cluster: c, NP: np, Seed: o.Seed + 15})
		}},
	}

	var worst *appsim.Result
	results := make([]*appsim.Result, len(strategies))
	for i, s := range strategies {
		m, err := s.gen()
		if err != nil {
			return nil, err
		}
		res, err := appsim.Run(c, m, mo, tm, cfg)
		if err != nil {
			return nil, err
		}
		results[i] = res
		if worst == nil || res.TotalUs > worst.TotalUs {
			worst = res
		}
	}
	t := metrics.NewTable(
		fmt.Sprintf("E13 / simulated stencil application, %d iterations x %.0f us compute (np=64, 8 nodes)",
			cfg.Iterations, cfg.ComputeUs),
		"strategy", "iteration (us)", "comm share", "bound by", "speedup vs worst")
	for i, s := range strategies {
		r := results[i]
		t.AddRow(s.name,
			metrics.F(r.IterUs, 1),
			metrics.F(r.CommUs/r.IterUs*100, 1)+"%",
			r.BoundBy,
			metrics.F(appsim.Speedup(worst, r), 2)+"x")
	}
	return []*metrics.Table{t}, nil
}
