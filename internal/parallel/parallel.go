// Package parallel provides the small fan-out helper the experiment
// harness uses to sweep layout spaces concurrently: a bounded worker pool
// over an index range with first-error collection.
package parallel

import (
	"fmt"
	"runtime"
	"sync"
)

// ForEach runs fn(i) for every i in [0, n) using at most `workers`
// goroutines (GOMAXPROCS when workers <= 0). It waits for all calls to
// finish and returns the error of the smallest index that failed; other
// errors are discarded. A panicking fn crashes the program, as it would in
// a plain loop.
func ForEach(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		mu       sync.Mutex
		firstErr error
		firstIdx int
	)
	record := func(i int, err error) {
		mu.Lock()
		defer mu.Unlock()
		if firstErr == nil || i < firstIdx {
			firstErr, firstIdx = err, i
		}
	}

	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if err := fn(i); err != nil {
					record(i, err)
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return firstErr
}

// Map runs gen(i) for every i in [0, n) concurrently and returns the
// results in index order, or the first error.
func Map[T any](n, workers int, gen func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(n, workers, func(i int) error {
		v, err := gen(i)
		if err != nil {
			return fmt.Errorf("parallel: index %d: %w", i, err)
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
