// Package parallel provides the small fan-out helper the experiment
// harness uses to sweep layout spaces concurrently: a bounded worker pool
// over an index range with first-error collection and cancellation.
package parallel

import (
	"fmt"
	"runtime"
	"sync"
)

// Workers normalizes a worker-count request for n items: non-positive
// means GOMAXPROCS, and the count never exceeds n (for n > 0).
func Workers(n, workers int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if n > 0 && workers > n {
		workers = n
	}
	return workers
}

// ForEach runs fn(i) for every i in [0, n) using at most `workers`
// goroutines (GOMAXPROCS when workers <= 0). It returns the error of the
// smallest index that failed; other errors are discarded. After the first
// failure no further indices are dispatched — work already started still
// runs to completion, so a few indices beyond the failing one may execute,
// but the bulk of the remaining range is skipped. A panicking fn crashes
// the program, as it would in a plain loop.
func ForEach(n, workers int, fn func(i int) error) error {
	return ForEachWorker(n, workers, func(_, i int) error { return fn(i) })
}

// ForEachWorker is ForEach with worker identity: fn(w, i) is told which of
// the pool's goroutines (0 <= w < Workers(n, workers)) is running index i.
// Callers use w to index per-worker scratch state — e.g. one reusable
// Mapper per worker in a layout sweep — without any locking, since a
// worker runs its indices strictly sequentially.
func ForEachWorker(n, workers int, fn func(worker, i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Workers(n, workers)
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := fn(0, i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		mu       sync.Mutex
		firstErr error
		firstIdx int
		failOnce sync.Once
	)
	failed := make(chan struct{})
	record := func(i int, err error) {
		mu.Lock()
		if firstErr == nil || i < firstIdx {
			firstErr, firstIdx = err, i
		}
		mu.Unlock()
		failOnce.Do(func() { close(failed) })
	}

	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := range next {
				if err := fn(worker, i); err != nil {
					record(i, err)
				}
			}
		}(w)
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case next <- i:
		case <-failed:
			break feed // first error: stop feeding remaining indices
		}
	}
	close(next)
	wg.Wait()
	return firstErr
}

// Map runs gen(i) for every i in [0, n) concurrently and returns the
// results in index order, or the first error.
func Map[T any](n, workers int, gen func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(n, workers, func(i int) error {
		v, err := gen(i)
		if err != nil {
			return fmt.Errorf("parallel: index %d: %w", i, err)
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
