package parallel

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestForEachRunsAll(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 100} {
		var count int64
		seen := make([]int32, 500)
		err := ForEach(500, workers, func(i int) error {
			atomic.AddInt64(&count, 1)
			atomic.AddInt32(&seen[i], 1)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if count != 500 {
			t.Fatalf("workers=%d: count = %d", workers, count)
		}
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachZeroN(t *testing.T) {
	if err := ForEach(0, 4, func(int) error { t.Fatal("called"); return nil }); err != nil {
		t.Fatal(err)
	}
	if err := ForEach(-5, 4, func(int) error { t.Fatal("called"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestForEachFirstErrorWins(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	err := ForEach(100, 8, func(i int) error {
		switch i {
		case 90:
			return errB
		case 10:
			return errA
		}
		return nil
	})
	if !errors.Is(err, errA) {
		t.Fatalf("err = %v, want errA (smallest failing index)", err)
	}
	// Sequential path too.
	err = ForEach(100, 1, func(i int) error {
		if i == 10 {
			return errA
		}
		return nil
	})
	if !errors.Is(err, errA) {
		t.Fatal("sequential error lost")
	}
}

func TestMapOrdered(t *testing.T) {
	out, err := Map(50, 7, func(i int) (string, error) {
		return fmt.Sprintf("v%d", i), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != fmt.Sprintf("v%d", i) {
			t.Fatalf("out[%d] = %s", i, v)
		}
	}
	if _, err := Map(10, 2, func(i int) (int, error) {
		if i == 3 {
			return 0, errors.New("boom")
		}
		return i, nil
	}); err == nil {
		t.Fatal("error lost")
	}
}

func TestQuickForEachCompleteness(t *testing.T) {
	f := func(nRaw uint8, wRaw uint8) bool {
		n := int(nRaw % 64)
		workers := int(wRaw%8) + 1
		var sum int64
		if err := ForEach(n, workers, func(i int) error {
			atomic.AddInt64(&sum, int64(i))
			return nil
		}); err != nil {
			return false
		}
		return sum == int64(n*(n-1)/2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestForEachCancelsAfterError: once one index fails, indices that have
// not yet been handed to a worker are skipped — the feeder stops instead
// of draining the whole range.
func TestForEachCancelsAfterError(t *testing.T) {
	const n = 100000
	boom := errors.New("boom")
	var ran int64
	seen := make([]int32, n)
	err := ForEach(n, 4, func(i int) error {
		atomic.AddInt64(&ran, 1)
		atomic.AddInt32(&seen[i], 1)
		if i == 0 {
			return boom
		}
		time.Sleep(time.Millisecond) // keep workers busy so the feeder blocks
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if r := atomic.LoadInt64(&ran); r > n/10 {
		t.Fatalf("ran %d of %d indices after the first error; feeding was not cancelled", r, n)
	}
	if atomic.LoadInt32(&seen[n-1]) != 0 {
		t.Fatal("last index still ran after the first error")
	}
}

// TestForEachWorkerIdentity: worker IDs are within range and each worker
// runs its indices sequentially (per-worker state needs no locking).
func TestForEachWorkerIdentity(t *testing.T) {
	const n, workers = 200, 5
	var active [workers]int32
	var ran int64
	err := ForEachWorker(n, workers, func(w, i int) error {
		if w < 0 || w >= workers {
			return fmt.Errorf("worker %d out of range", w)
		}
		if atomic.AddInt32(&active[w], 1) != 1 {
			return fmt.Errorf("worker %d reentered concurrently", w)
		}
		time.Sleep(10 * time.Microsecond)
		atomic.AddInt32(&active[w], -1)
		atomic.AddInt64(&ran, 1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if ran != n {
		t.Fatalf("ran %d of %d", ran, n)
	}
}
