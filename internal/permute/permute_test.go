package permute

import (
	"fmt"
	"testing"
)

func TestFactorial(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 5: 120, 9: 362880}
	for n, want := range cases {
		if got := Factorial(n); got != want {
			t.Errorf("Factorial(%d) = %d, want %d", n, got, want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative factorial should panic")
		}
	}()
	Factorial(-1)
}

func TestEachVisitsAllDistinct(t *testing.T) {
	for n := 1; n <= 6; n++ {
		seen := map[string]bool{}
		Each(n, func(perm []int) bool {
			if len(perm) != n {
				t.Fatalf("perm length %d", len(perm))
			}
			present := make([]bool, n)
			for _, v := range perm {
				if v < 0 || v >= n || present[v] {
					t.Fatalf("not a permutation: %v", perm)
				}
				present[v] = true
			}
			seen[fmt.Sprint(perm)] = true
			return true
		})
		if len(seen) != Count(n) {
			t.Fatalf("n=%d: visited %d distinct, want %d", n, len(seen), Count(n))
		}
	}
}

func TestEachEarlyStop(t *testing.T) {
	calls := 0
	Each(5, func(perm []int) bool {
		calls++
		return calls < 10
	})
	if calls != 10 {
		t.Fatalf("calls = %d", calls)
	}
	Each(0, func(perm []int) bool { t.Fatal("n=0 should not call"); return true })
}

func TestNinePermutationsCount(t *testing.T) {
	// The paper's claim: 9 resource levels yield 362,880 layouts.
	if testing.Short() {
		t.Skip("full 9! enumeration")
	}
	count := 0
	Each(9, func(perm []int) bool {
		count++
		return true
	})
	if count != 362880 {
		t.Fatalf("count = %d, want 362880", count)
	}
}
