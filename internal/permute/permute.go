// Package permute provides permutation enumeration for the layout-space
// experiments (the paper's 362,880 = 9! mapping permutations claim).
package permute

// Factorial returns n! (panics for negative n; overflows are the caller's
// concern — 9! is the largest value the experiments use).
func Factorial(n int) int {
	if n < 0 {
		panic("permute: negative factorial")
	}
	f := 1
	for i := 2; i <= n; i++ {
		f *= i
	}
	return f
}

// Each visits every permutation of 0..n-1 exactly once, calling f with a
// reusable slice (copy it to retain). Iteration stops early when f returns
// false. The order is Heap's algorithm order, deterministic across runs.
func Each(n int, f func(perm []int) bool) {
	if n <= 0 {
		return
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	c := make([]int, n)
	if !f(perm) {
		return
	}
	i := 0
	for i < n {
		if c[i] < i {
			if i%2 == 0 {
				perm[0], perm[i] = perm[i], perm[0]
			} else {
				perm[c[i]], perm[i] = perm[i], perm[c[i]]
			}
			if !f(perm) {
				return
			}
			c[i]++
			i = 0
		} else {
			c[i] = 0
			i++
		}
	}
}

// Count returns the number of permutations Each(n, ...) visits.
func Count(n int) int { return Factorial(n) }
