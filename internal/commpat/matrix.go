// Package commpat generates synthetic rank-to-rank communication traffic
// matrices for the application classes the paper's motivation cites (§I,
// §II): nearest-neighbor stencils, the GTC gyrokinetic code's toroidal
// exchange, and NAS parallel benchmark proxies. These matrices drive the
// netsim cost model so that mapping experiments can measure how placement
// changes communication cost without real applications.
package commpat

import "fmt"

// Matrix is a dense rank-to-rank traffic matrix: Bytes(i,j) is the number
// of bytes rank i sends to rank j over one iteration of the application.
type Matrix struct {
	n     int
	bytes []float64
}

// NewMatrix creates an n-rank zero matrix.
func NewMatrix(n int) *Matrix {
	if n <= 0 {
		panic(fmt.Sprintf("commpat: non-positive rank count %d", n))
	}
	return &Matrix{n: n, bytes: make([]float64, n*n)}
}

// Ranks returns the number of ranks.
func (m *Matrix) Ranks() int { return m.n }

// Bytes returns the traffic from rank i to rank j (0 for out-of-range or
// self).
func (m *Matrix) Bytes(i, j int) float64 {
	if i < 0 || j < 0 || i >= m.n || j >= m.n || i == j {
		return 0
	}
	return m.bytes[i*m.n+j]
}

// Add accumulates traffic from i to j. Self and out-of-range pairs are
// ignored.
func (m *Matrix) Add(i, j int, b float64) {
	if i < 0 || j < 0 || i >= m.n || j >= m.n || i == j || b <= 0 {
		return
	}
	m.bytes[i*m.n+j] += b
}

// AddSym accumulates traffic in both directions.
func (m *Matrix) AddSym(i, j int, b float64) {
	m.Add(i, j, b)
	m.Add(j, i, b)
}

// Total returns the total bytes in the matrix.
func (m *Matrix) Total() float64 {
	t := 0.0
	for _, b := range m.bytes {
		t += b
	}
	return t
}

// Pairs returns the number of communicating (ordered) rank pairs.
func (m *Matrix) Pairs() int {
	n := 0
	for _, b := range m.bytes {
		if b > 0 {
			n++
		}
	}
	return n
}

// Each calls f for every communicating ordered pair.
func (m *Matrix) Each(f func(i, j int, bytes float64)) {
	for i := 0; i < m.n; i++ {
		for j := 0; j < m.n; j++ {
			if b := m.bytes[i*m.n+j]; b > 0 {
				f(i, j, b)
			}
		}
	}
}

// Scale multiplies all traffic by the factor.
func (m *Matrix) Scale(f float64) {
	for i := range m.bytes {
		m.bytes[i] *= f
	}
}
