package commpat

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseMatrix reads a traffic matrix from edge-list text:
//
//	ranks <N>
//	<src> <dst> <bytes>
//	...
//
// Lines starting with '#' are comments; duplicate edges accumulate. The
// "ranks" header must come first so the matrix can be sized even when
// high ranks have no traffic.
func ParseMatrix(text string) (*Matrix, error) {
	var m *Matrix
	for lineNo, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if m == nil {
			if len(fields) != 2 || fields[0] != "ranks" {
				return nil, fmt.Errorf("commpat:%d: first line must be \"ranks <N>\"", lineNo+1)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("commpat:%d: bad rank count %q", lineNo+1, fields[1])
			}
			m = NewMatrix(n)
			continue
		}
		if len(fields) != 3 {
			return nil, fmt.Errorf("commpat:%d: want \"<src> <dst> <bytes>\", got %q", lineNo+1, line)
		}
		src, err1 := strconv.Atoi(fields[0])
		dst, err2 := strconv.Atoi(fields[1])
		bytes, err3 := strconv.ParseFloat(fields[2], 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("commpat:%d: bad edge %q", lineNo+1, line)
		}
		if src < 0 || dst < 0 || src >= m.Ranks() || dst >= m.Ranks() {
			return nil, fmt.Errorf("commpat:%d: rank out of range in %q", lineNo+1, line)
		}
		if src == dst {
			return nil, fmt.Errorf("commpat:%d: self traffic in %q", lineNo+1, line)
		}
		if bytes <= 0 {
			return nil, fmt.Errorf("commpat:%d: non-positive bytes in %q", lineNo+1, line)
		}
		m.Add(src, dst, bytes)
	}
	if m == nil {
		return nil, fmt.Errorf("commpat: empty matrix text")
	}
	return m, nil
}

// FormatMatrix renders a matrix in the ParseMatrix edge-list form, edges
// in (src, dst) order.
func FormatMatrix(m *Matrix) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "ranks %d\n", m.Ranks())
	m.Each(func(i, j int, bytes float64) {
		fmt.Fprintf(&sb, "%d %d %s\n", i, j, strconv.FormatFloat(bytes, 'f', -1, 64))
	})
	return sb.String()
}
