package commpat

import (
	"testing"
)

// sameTraffic asserts the CSR and Matrix describe identical traffic and
// visit pairs in the same order.
func sameTraffic(t *testing.T, name string, m *Matrix, s *CSR) {
	t.Helper()
	if m.Ranks() != s.Ranks() {
		t.Fatalf("%s: ranks %d vs %d", name, m.Ranks(), s.Ranks())
	}
	if m.Pairs() != s.NNZ() {
		t.Fatalf("%s: pairs %d vs nnz %d", name, m.Pairs(), s.NNZ())
	}
	type ent struct {
		i, j int
		b    float64
	}
	var dense, sparse []ent
	m.Each(func(i, j int, b float64) { dense = append(dense, ent{i, j, b}) })
	s.Each(func(i, j int, b float64) { sparse = append(sparse, ent{i, j, b}) })
	if len(dense) != len(sparse) {
		t.Fatalf("%s: %d dense entries vs %d sparse", name, len(dense), len(sparse))
	}
	for k := range dense {
		if dense[k] != sparse[k] {
			t.Fatalf("%s: entry %d: dense %+v, sparse %+v", name, k, dense[k], sparse[k])
		}
	}
}

func TestSparseMatchesMatrix(t *testing.T) {
	for _, p := range Patterns() {
		for _, n := range []int{1, 2, 7, 16, 36} {
			m := p.Gen(n, 1000)
			sameTraffic(t, p.Name, m, m.Sparse())
		}
	}
}

func TestSparseAccessors(t *testing.T) {
	m := Ring(8, 100)
	s := m.Sparse()
	if s.Total() != m.Total() {
		t.Fatalf("total %g vs %g", s.Total(), m.Total())
	}
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			if s.Bytes(i, j) != m.Bytes(i, j) {
				t.Fatalf("bytes(%d,%d): %g vs %g", i, j, s.Bytes(i, j), m.Bytes(i, j))
			}
		}
	}
	if s.Bytes(-1, 0) != 0 || s.Bytes(0, 99) != 0 {
		t.Fatal("out-of-range bytes should be 0")
	}
	cols, vals := s.Row(0)
	if len(cols) != 2 || len(vals) != 2 {
		t.Fatalf("row 0 has %d entries, want 2", len(cols))
	}
	sameTraffic(t, "dense-roundtrip", s.Dense(), s)
}

// TestBuilderMatchesMatrix feeds identical Add/AddSym sequences to a
// Matrix and a Builder and requires identical traffic, including the
// drop semantics (self pairs, out-of-range, non-positive volumes) and
// duplicate merging.
func TestBuilderMatchesMatrix(t *testing.T) {
	n := 10
	m := NewMatrix(n)
	b := NewBuilder(n)
	feed := func(a adder) {
		a.Add(0, 1, 5)
		a.Add(0, 1, 7)    // duplicate: merges
		a.Add(1, 0, 2)    // reverse direction is distinct
		a.Add(3, 3, 9)    // self: dropped
		a.Add(-1, 2, 4)   // out of range: dropped
		a.Add(2, n, 4)    // out of range: dropped
		a.Add(4, 5, 0)    // non-positive: dropped
		a.Add(4, 5, -3)   // non-positive: dropped
		a.AddSym(8, 9, 6) // both directions
		a.Add(9, 2, 1)    // out-of-order row: Build must sort
	}
	feed(m)
	feed(b)
	sameTraffic(t, "builder", m, b.Build())
}

func TestBuilderReusable(t *testing.T) {
	b := NewBuilder(4)
	b.Add(0, 1, 1)
	s1 := b.Build()
	b.Add(1, 2, 1)
	s2 := b.Build()
	if s1.NNZ() != 1 || s2.NNZ() != 2 {
		t.Fatalf("nnz %d then %d, want 1 then 2", s1.NNZ(), s2.NNZ())
	}
}

func TestNewBuilderPanicsOnBadRanks(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	NewBuilder(0)
}

// TestSparsePatternsMatchDense pins the satellite guarantee: the
// direct-CSR generators produce entry-for-entry what the dense
// generators produce.
func TestSparsePatternsMatchDense(t *testing.T) {
	for _, sp := range SparsePatterns() {
		gen, ok := ByName(sp.Name)
		if !ok {
			t.Fatalf("sparse pattern %q has no dense twin", sp.Name)
		}
		for _, n := range []int{2, 5, 16, 27, 64} {
			sameTraffic(t, sp.Name, gen(n, 777), sp.Gen(n, 777))
		}
	}
	if _, ok := SparseByName("ring"); !ok {
		t.Fatal("SparseByName(ring)")
	}
	if _, ok := SparseByName("alltoall"); ok {
		t.Fatal("alltoall is dense-only (O(n²) nonzeros)")
	}
}
