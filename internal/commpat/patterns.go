package commpat

import (
	"math/rand"
)

// Ring produces a 1-D periodic nearest-neighbor exchange: each rank sends
// bytes to its two ring neighbors.
func Ring(n int, bytes float64) *Matrix {
	m := NewMatrix(n)
	for i := 0; i < n; i++ {
		m.Add(i, (i+1)%n, bytes)
		m.Add(i, (i-1+n)%n, bytes)
	}
	return m
}

// Grid2D chooses a near-square process grid px*py == n (px <= py).
func Grid2D(n int) (px, py int) {
	px = 1
	for f := 1; f*f <= n; f++ {
		if n%f == 0 {
			px = f
		}
	}
	return px, n / px
}

// Grid3D chooses a near-cubic process grid px*py*pz == n.
func Grid3D(n int) (px, py, pz int) {
	best := [3]int{1, 1, n}
	bestCost := n * n
	for a := 1; a*a*a <= n; a++ {
		if n%a != 0 {
			continue
		}
		rem := n / a
		for b := a; b*b <= rem; b++ {
			if rem%b != 0 {
				continue
			}
			c := rem / b
			cost := (c - a) // prefer balanced
			if cost < bestCost {
				bestCost = cost
				best = [3]int{a, b, c}
			}
		}
	}
	return best[0], best[1], best[2]
}

// Stencil2D produces a 5-point 2-D stencil halo exchange over a px*py
// grid (row-major rank order). Periodic selects torus boundaries.
func Stencil2D(px, py int, bytes float64, periodic bool) *Matrix {
	n := px * py
	m := NewMatrix(n)
	id := func(x, y int) int { return y*px + x }
	for y := 0; y < py; y++ {
		for x := 0; x < px; x++ {
			for _, d := range [][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
				nx, ny := x+d[0], y+d[1]
				if periodic {
					nx, ny = (nx+px)%px, (ny+py)%py
				} else if nx < 0 || ny < 0 || nx >= px || ny >= py {
					continue
				}
				m.Add(id(x, y), id(nx, ny), bytes)
			}
		}
	}
	return m
}

// Stencil3D produces a 7-point 3-D stencil halo exchange over a px*py*pz
// grid (x fastest).
func Stencil3D(px, py, pz int, bytes float64, periodic bool) *Matrix {
	n := px * py * pz
	m := NewMatrix(n)
	id := func(x, y, z int) int { return (z*py+y)*px + x }
	dirs := [][3]int{{1, 0, 0}, {-1, 0, 0}, {0, 1, 0}, {0, -1, 0}, {0, 0, 1}, {0, 0, -1}}
	for z := 0; z < pz; z++ {
		for y := 0; y < py; y++ {
			for x := 0; x < px; x++ {
				for _, d := range dirs {
					nx, ny, nz := x+d[0], y+d[1], z+d[2]
					if periodic {
						nx, ny, nz = (nx+px)%px, (ny+py)%py, (nz+pz)%pz
					} else if nx < 0 || ny < 0 || nz < 0 || nx >= px || ny >= py || nz >= pz {
						continue
					}
					m.Add(id(x, y, z), id(nx, ny, nz), bytes)
				}
			}
		}
	}
	return m
}

// AllToAll produces uniform all-to-all traffic (every ordered pair
// exchanges bytes), the worst case for any placement.
func AllToAll(n int, bytes float64) *Matrix {
	m := NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m.Add(i, j, bytes)
		}
	}
	return m
}

// RandomPairs produces traffic between `pairs` random distinct rank pairs.
func RandomPairs(n, pairs int, bytes float64, seed int64) *Matrix {
	m := NewMatrix(n)
	r := rand.New(rand.NewSource(seed))
	for k := 0; k < pairs; k++ {
		i, j := r.Intn(n), r.Intn(n)
		if i == j {
			j = (j + 1) % n
		}
		m.AddSym(i, j, bytes)
	}
	return m
}

// GTC models the Gyrokinetic Toroidal Code's communication (paper §II,
// ref [2]): a 1-D domain decomposition along the torus with heavy
// particle-shift traffic to the two toroidal neighbors, plus a lighter
// grid-reduction component within poloidal groups of size g (every rank
// talks to the other members of its group at 1/8 the neighbor volume).
func GTC(n int, bytes float64) *Matrix {
	m := NewMatrix(n)
	// Toroidal shifts dominate.
	for i := 0; i < n; i++ {
		m.Add(i, (i+1)%n, bytes)
		m.Add(i, (i-1+n)%n, bytes)
	}
	// Poloidal reduction groups.
	g := 4
	for base := 0; base < n; base += g {
		for i := base; i < base+g && i < n; i++ {
			for j := base; j < base+g && j < n; j++ {
				m.Add(i, j, bytes/8)
			}
		}
	}
	return m
}

// NASCG proxies the NAS CG benchmark: ranks form a 2-D grid; each rank
// exchanges with its row partner(s) during the matrix-vector product and
// with log-distance partners during the reductions.
func NASCG(n int, bytes float64) *Matrix {
	m := NewMatrix(n)
	px, _ := Grid2D(n)
	for i := 0; i < n; i++ {
		// Transpose-style partner in the row.
		row := i / px
		col := i % px
		partner := col*px + row // valid when grid is square; clamp otherwise
		if partner < n && partner != i {
			m.AddSym(i, partner, bytes)
		}
		// Log-distance reduction partners within the row.
		for d := 1; d < px; d *= 2 {
			j := row*px + (col^d)%px
			if j < n {
				m.AddSym(i, j, bytes/2)
			}
		}
	}
	return m
}

// NASMG proxies the NAS MG benchmark: a 3-D stencil whose halo exchanges
// also occur at strides 2 and 4 along each axis (multigrid coarsening),
// with geometrically decreasing volume.
func NASMG(n int, bytes float64) *Matrix {
	px, py, pz := Grid3D(n)
	m := NewMatrix(n)
	id := func(x, y, z int) int { return (z*py+y)*px + x }
	for _, stride := range []int{1, 2, 4} {
		vol := bytes / float64(stride)
		for z := 0; z < pz; z++ {
			for y := 0; y < py; y++ {
				for x := 0; x < px; x++ {
					nbs := [][3]int{
						{(x + stride) % px, y, z}, {(x - stride + 8*px) % px, y, z},
						{x, (y + stride) % py, z}, {x, (y - stride + 8*py) % py, z},
						{x, y, (z + stride) % pz}, {x, y, (z - stride + 8*pz) % pz},
					}
					for _, nb := range nbs {
						m.Add(id(x, y, z), id(nb[0], nb[1], nb[2]), vol)
					}
				}
			}
		}
	}
	return m
}

// NASFT proxies the NAS FT benchmark: the distributed FFT's transpose is
// an all-to-all between the ranks of each transpose group (here: global).
func NASFT(n int, bytes float64) *Matrix {
	return AllToAll(n, bytes)
}

// NASLU proxies the NAS LU benchmark: a 2-D wavefront pipeline; each rank
// sends to its +x and +y neighbors (directional, non-periodic).
func NASLU(n int, bytes float64) *Matrix {
	px, py := Grid2D(n)
	m := NewMatrix(n)
	id := func(x, y int) int { return y*px + x }
	for y := 0; y < py; y++ {
		for x := 0; x < px; x++ {
			if x+1 < px {
				m.Add(id(x, y), id(x+1, y), bytes)
			}
			if y+1 < py {
				m.Add(id(x, y), id(x, y+1), bytes)
			}
		}
	}
	return m
}

// Pattern is a named traffic generator with a fixed per-exchange volume,
// for sweep harnesses.
type Pattern struct {
	Name string
	Gen  func(n int, bytes float64) *Matrix
}

// ByName resolves one generator from the standard pattern suite.
func ByName(name string) (func(n int, bytes float64) *Matrix, bool) {
	for _, p := range Patterns() {
		if p.Name == name {
			return p.Gen, true
		}
	}
	return nil, false
}

// Patterns returns the standard pattern suite used by the experiments.
func Patterns() []Pattern {
	return []Pattern{
		{"ring", Ring},
		{"stencil2d", func(n int, b float64) *Matrix {
			px, py := Grid2D(n)
			return Stencil2D(px, py, b, true)
		}},
		{"stencil3d", func(n int, b float64) *Matrix {
			px, py, pz := Grid3D(n)
			return Stencil3D(px, py, pz, b, true)
		}},
		{"alltoall", AllToAll},
		{"gtc", GTC},
		{"nas-cg", NASCG},
		{"nas-mg", NASMG},
		{"nas-ft", NASFT},
		{"nas-lu", NASLU},
	}
}
