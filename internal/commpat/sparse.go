package commpat

import (
	"fmt"
	"sort"
)

// CSR is a compressed-sparse-row view of a traffic matrix: the nonzero
// directed entries of every row stored contiguously, rows ascending,
// columns ascending within each row. It is the form the J(C,D,Π)
// evaluation wants — iterating communicating pairs only — and the only
// form that exists at 100k+ ranks, where a dense n×n float64 matrix
// would need tens of gigabytes (Schulz & Träff's sparse-QAP observation,
// PAPERS.md).
type CSR struct {
	n      int
	rowOff []int32 // len n+1; row i occupies col/val[rowOff[i]:rowOff[i+1]]
	col    []int32
	val    []float64
}

// Ranks returns the number of ranks.
func (s *CSR) Ranks() int { return s.n }

// NNZ returns the number of stored communicating ordered pairs.
func (s *CSR) NNZ() int { return len(s.col) }

// Row returns rank i's outgoing entries as parallel column/value slices,
// columns ascending. Callers must not modify them.
func (s *CSR) Row(i int) (cols []int32, vals []float64) {
	lo, hi := s.rowOff[i], s.rowOff[i+1]
	return s.col[lo:hi], s.val[lo:hi]
}

// Bytes returns the traffic from rank i to rank j (0 when absent or out
// of range), by binary search within row i.
func (s *CSR) Bytes(i, j int) float64 {
	if i < 0 || j < 0 || i >= s.n || j >= s.n {
		return 0
	}
	cols, vals := s.Row(i)
	k := sort.Search(len(cols), func(x int) bool { return cols[x] >= int32(j) })
	if k < len(cols) && cols[k] == int32(j) {
		return vals[k]
	}
	return 0
}

// Total returns the total bytes stored.
func (s *CSR) Total() float64 {
	t := 0.0
	for _, v := range s.val {
		t += v
	}
	return t
}

// Each calls f for every communicating ordered pair in exactly the order
// Matrix.Each uses: rows ascending, columns ascending within a row.
func (s *CSR) Each(f func(i, j int, bytes float64)) {
	for i := 0; i < s.n; i++ {
		for k := s.rowOff[i]; k < s.rowOff[i+1]; k++ {
			f(i, int(s.col[k]), s.val[k])
		}
	}
}

// Dense materializes the CSR as a dense Matrix (for small differential
// tests; do not call at scale).
func (s *CSR) Dense() *Matrix {
	m := NewMatrix(s.n)
	s.Each(func(i, j int, bytes float64) { m.Add(i, j, bytes) })
	return m
}

// Sparse converts the dense matrix to its CSR view. The entry order is
// exactly Matrix.Each's, so evaluation through either view visits the
// same pairs in the same sequence.
func (m *Matrix) Sparse() *CSR {
	nnz := m.Pairs()
	s := &CSR{
		n:      m.n,
		rowOff: make([]int32, m.n+1),
		col:    make([]int32, 0, nnz),
		val:    make([]float64, 0, nnz),
	}
	for i := 0; i < m.n; i++ {
		for j := 0; j < m.n; j++ {
			if b := m.bytes[i*m.n+j]; b > 0 {
				s.col = append(s.col, int32(j))
				s.val = append(s.val, b)
			}
		}
		s.rowOff[i+1] = int32(len(s.col))
	}
	return s
}

// Builder accumulates traffic entries directly in sparse form, for
// patterns whose nonzero count is far below n² — at 100k ranks it is the
// only way to construct traffic at all. Add/AddSym share Matrix.Add's
// exact drop semantics, so a Builder and a Matrix fed the same calls
// describe the same traffic.
type Builder struct {
	n   int
	ent []csrEntry
}

type csrEntry struct {
	row, col int32
	val      float64
}

// NewBuilder creates a builder for an n-rank job.
func NewBuilder(n int) *Builder {
	if n <= 0 {
		panic(fmt.Sprintf("commpat: non-positive rank count %d", n))
	}
	return &Builder{n: n}
}

// Ranks returns the number of ranks.
func (b *Builder) Ranks() int { return b.n }

// Add accumulates traffic from i to j. Self pairs, out-of-range indices,
// and non-positive volumes are ignored, matching Matrix.Add.
func (b *Builder) Add(i, j int, bytes float64) {
	if i < 0 || j < 0 || i >= b.n || j >= b.n || i == j || bytes <= 0 {
		return
	}
	b.ent = append(b.ent, csrEntry{int32(i), int32(j), bytes})
}

// AddSym accumulates traffic in both directions.
func (b *Builder) AddSym(i, j int, bytes float64) {
	b.Add(i, j, bytes)
	b.Add(j, i, bytes)
}

// Build sorts the accumulated entries row-major, merges duplicate pairs
// by summing, and returns the CSR. The builder is reusable: further Adds
// followed by another Build see all entries.
func (b *Builder) Build() *CSR {
	ent := append([]csrEntry(nil), b.ent...)
	sort.Slice(ent, func(x, y int) bool {
		if ent[x].row != ent[y].row {
			return ent[x].row < ent[y].row
		}
		return ent[x].col < ent[y].col
	})
	s := &CSR{
		n:      b.n,
		rowOff: make([]int32, b.n+1),
		col:    make([]int32, 0, len(ent)),
		val:    make([]float64, 0, len(ent)),
	}
	lastRow, lastCol := int32(-1), int32(-1)
	for _, e := range ent {
		if e.row == lastRow && e.col == lastCol {
			s.val[len(s.val)-1] += e.val
			continue
		}
		s.col = append(s.col, e.col)
		s.val = append(s.val, e.val)
		s.rowOff[e.row+1]++
		lastRow, lastCol = e.row, e.col
	}
	for i := 0; i < b.n; i++ {
		s.rowOff[i+1] += s.rowOff[i]
	}
	return s
}
