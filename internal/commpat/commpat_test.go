package commpat

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(4)
	if m.Ranks() != 4 || m.Total() != 0 || m.Pairs() != 0 {
		t.Fatal("empty matrix")
	}
	m.Add(0, 1, 100)
	m.Add(0, 1, 50)
	m.AddSym(2, 3, 10)
	if m.Bytes(0, 1) != 150 || m.Bytes(1, 0) != 0 {
		t.Fatal("Add wrong")
	}
	if m.Bytes(2, 3) != 10 || m.Bytes(3, 2) != 10 {
		t.Fatal("AddSym wrong")
	}
	if m.Total() != 170 || m.Pairs() != 3 {
		t.Fatalf("Total=%v Pairs=%v", m.Total(), m.Pairs())
	}
	// Self and out-of-range traffic ignored.
	m.Add(1, 1, 99)
	m.Add(-1, 0, 99)
	m.Add(0, 9, 99)
	m.Add(0, 2, -5)
	if m.Total() != 170 {
		t.Fatal("invalid Add mutated matrix")
	}
	if m.Bytes(0, 0) != 0 || m.Bytes(-1, 2) != 0 || m.Bytes(0, 9) != 0 {
		t.Fatal("Bytes bounds")
	}
	m.Scale(2)
	if m.Total() != 340 {
		t.Fatal("Scale wrong")
	}
	sum := 0.0
	m.Each(func(i, j int, b float64) { sum += b })
	if sum != 340 {
		t.Fatal("Each wrong")
	}
}

func TestNewMatrixPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	NewMatrix(0)
}

func TestGrids(t *testing.T) {
	cases := map[int][2]int{16: {4, 4}, 12: {3, 4}, 7: {1, 7}, 64: {8, 8}}
	for n, want := range cases {
		px, py := Grid2D(n)
		if px*py != n || px != want[0] || py != want[1] {
			t.Errorf("Grid2D(%d) = %dx%d", n, px, py)
		}
	}
	px, py, pz := Grid3D(64)
	if px*py*pz != 64 || px != 4 || py != 4 || pz != 4 {
		t.Errorf("Grid3D(64) = %dx%dx%d", px, py, pz)
	}
	px, py, pz = Grid3D(24)
	if px*py*pz != 24 {
		t.Errorf("Grid3D(24) = %dx%dx%d", px, py, pz)
	}
}

func TestRing(t *testing.T) {
	m := Ring(5, 10)
	for i := 0; i < 5; i++ {
		if m.Bytes(i, (i+1)%5) != 10 || m.Bytes(i, (i+4)%5) != 10 {
			t.Fatalf("ring traffic wrong at %d", i)
		}
	}
	if m.Pairs() != 10 {
		t.Fatalf("pairs = %d", m.Pairs())
	}
}

func TestStencil2D(t *testing.T) {
	// Non-periodic 3x3: corner has 2 neighbors, center has 4.
	m := Stencil2D(3, 3, 1, false)
	counts := func(r int) int {
		n := 0
		m.Each(func(i, j int, b float64) {
			if i == r {
				n++
			}
		})
		return n
	}
	if counts(0) != 2 || counts(4) != 4 || counts(8) != 2 {
		t.Fatalf("stencil degree: corner=%d center=%d", counts(0), counts(4))
	}
	// Periodic: everyone has 4 neighbors.
	p := Stencil2D(3, 3, 1, true)
	for r := 0; r < 9; r++ {
		n := 0
		p.Each(func(i, j int, b float64) {
			if i == r {
				n++
			}
		})
		if n != 4 {
			t.Fatalf("periodic degree of %d = %d", r, n)
		}
	}
}

func TestStencil3DSymmetric(t *testing.T) {
	m := Stencil3D(2, 3, 2, 5, true)
	m.Each(func(i, j int, b float64) {
		if m.Bytes(j, i) != b {
			t.Fatalf("asymmetric stencil: %d->%d", i, j)
		}
	})
	if m.Total() == 0 {
		t.Fatal("empty stencil")
	}
}

func TestAllToAll(t *testing.T) {
	m := AllToAll(4, 2)
	if m.Pairs() != 12 || m.Total() != 24 {
		t.Fatalf("a2a pairs=%d total=%v", m.Pairs(), m.Total())
	}
}

func TestGTCStructure(t *testing.T) {
	m := GTC(16, 800)
	// Toroidal neighbors dominate.
	if m.Bytes(0, 1) <= m.Bytes(0, 2) {
		t.Fatal("neighbor traffic should dominate group traffic")
	}
	if m.Bytes(0, 15) < 800 {
		t.Fatal("ring wraparound missing")
	}
	// Group members communicate.
	if m.Bytes(0, 2) == 0 || m.Bytes(4, 6) == 0 {
		t.Fatal("poloidal group traffic missing")
	}
	// No traffic across groups except ring.
	if m.Bytes(0, 5) != 0 {
		t.Fatal("unexpected cross-group traffic")
	}
}

func TestNASPatternsNonEmptyAndSane(t *testing.T) {
	for _, p := range Patterns() {
		for _, n := range []int{8, 16, 64} {
			m := p.Gen(n, 100)
			if m.Ranks() != n {
				t.Fatalf("%s(%d): ranks = %d", p.Name, n, m.Ranks())
			}
			if m.Total() <= 0 {
				t.Fatalf("%s(%d): empty matrix", p.Name, n)
			}
			// No self traffic by construction.
			for i := 0; i < n; i++ {
				if m.Bytes(i, i) != 0 {
					t.Fatalf("%s: self traffic at %d", p.Name, i)
				}
			}
		}
	}
}

func TestNASLUDirectional(t *testing.T) {
	m := NASLU(16, 10) // 4x4
	if m.Bytes(0, 1) != 10 || m.Bytes(1, 0) != 0 {
		t.Fatal("LU should be directional (+x)")
	}
	if m.Bytes(0, 4) != 10 || m.Bytes(4, 0) != 0 {
		t.Fatal("LU should be directional (+y)")
	}
	// Last rank sends nothing.
	sent := 0.0
	m.Each(func(i, j int, b float64) {
		if i == 15 {
			sent += b
		}
	})
	if sent != 0 {
		t.Fatal("sink rank should not send")
	}
}

func TestRandomPairsDeterministic(t *testing.T) {
	a := RandomPairs(10, 20, 5, 7)
	b := RandomPairs(10, 20, 5, 7)
	a.Each(func(i, j int, bytes float64) {
		if b.Bytes(i, j) != bytes {
			t.Fatal("same seed, different matrix")
		}
	})
	if a.Total() == 0 {
		t.Fatal("empty random matrix")
	}
}

func TestQuickStencilDegreeBounds(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		px, py := 1+r.Intn(5), 1+r.Intn(5)
		m := Stencil2D(px, py, 1, true)
		// Periodic 5-point stencil: out-degree of every rank is at most 4
		// and the matrix is symmetric.
		deg := make([]int, px*py)
		ok := true
		m.Each(func(i, j int, b float64) {
			deg[i]++
			if m.Bytes(j, i) == 0 {
				ok = false
			}
		})
		for _, d := range deg {
			if d > 4 {
				return false
			}
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
