package commpat

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParseMatrix(t *testing.T) {
	text := `
# a tiny ring
ranks 3
0 1 100
1 2 100
2 0 100
2 0 50
`
	m, err := ParseMatrix(text)
	if err != nil {
		t.Fatal(err)
	}
	if m.Ranks() != 3 || m.Total() != 350 {
		t.Fatalf("ranks=%d total=%v", m.Ranks(), m.Total())
	}
	if m.Bytes(2, 0) != 150 {
		t.Fatal("duplicate edges should accumulate")
	}
}

func TestParseMatrixErrors(t *testing.T) {
	for name, text := range map[string]string{
		"empty":          "",
		"no header":      "0 1 100",
		"bad header":     "ranks x",
		"zero ranks":     "ranks 0",
		"short edge":     "ranks 2\n0 1",
		"bad numbers":    "ranks 2\na b c",
		"out of range":   "ranks 2\n0 5 10",
		"negative rank":  "ranks 2\n-1 0 10",
		"self traffic":   "ranks 2\n1 1 10",
		"zero bytes":     "ranks 2\n0 1 0",
		"negative bytes": "ranks 2\n0 1 -5",
	} {
		if _, err := ParseMatrix(text); err == nil {
			t.Errorf("%s: ParseMatrix(%q) should fail", name, text)
		}
	}
}

func TestFormatMatrixRoundTrip(t *testing.T) {
	m := GTC(16, 1000)
	back, err := ParseMatrix(FormatMatrix(m))
	if err != nil {
		t.Fatal(err)
	}
	if back.Ranks() != m.Ranks() || back.Total() != m.Total() {
		t.Fatal("round trip changed totals")
	}
	m.Each(func(i, j int, bytes float64) {
		if back.Bytes(i, j) != bytes {
			t.Fatalf("edge %d->%d changed", i, j)
		}
	})
}

func TestQuickMatrixRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(20)
		m := RandomPairs(n, 1+r.Intn(30), float64(1+r.Intn(1000)), seed)
		if m.Total() == 0 {
			return true
		}
		back, err := ParseMatrix(FormatMatrix(m))
		if err != nil {
			return false
		}
		ok := back.Ranks() == m.Ranks()
		m.Each(func(i, j int, bytes float64) {
			if back.Bytes(i, j) != bytes {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
