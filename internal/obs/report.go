package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// RunReportSchema is the schema tag of the machine-readable run report.
const RunReportSchema = "runreport/v1"

// TimelineEntry is one step of a run's recovery timeline in the neutral
// form the report carries (the supervisor's RecoveryEvents are converted
// by the CLIs, keeping obs free of orte imports).
type TimelineEntry struct {
	// Step is the step the action was taken at (detection step).
	Step int `json:"step"`
	// Action is what happened: "detect", "realloc", "remap", "respawn",
	// "shrink", "abort", "teardown", ...
	Action string `json:"action"`
	// Detail carries action-specific values (ranks, nodes, costs).
	Detail map[string]any `json:"detail,omitempty"`
}

// SeriesPoint is one sample of a step-indexed curve (recovered locality,
// migration cost, world size, ...) a long-horizon run records.
type SeriesPoint struct {
	// Step is the virtual step the sample was taken at.
	Step int `json:"step"`
	// Value is the sampled quantity.
	Value float64 `json:"value"`
}

// RunReport is the single machine-readable document a CLI run emits via
// -metrics-out: the run configuration, the per-phase wall-time spans, the
// metrics registry snapshot, and (for supervised runs) the recovery
// timeline. The schema is append-only: fields are added, never renamed or
// removed.
type RunReport struct {
	// Schema is always RunReportSchema.
	Schema string `json:"schema"`
	// Tool is the emitting command ("lamasim", "lamamap", "lamabench",
	// "topogen").
	Tool string `json:"tool"`
	// Config records the run's effective configuration (flag values).
	Config map[string]any `json:"config,omitempty"`
	// Phases lists the completed phase spans in completion order.
	Phases []SpanRecord `json:"phases,omitempty"`
	// PhaseTotalsUs aggregates Phases by name.
	PhaseTotalsUs map[string]float64 `json:"phaseTotalsUs,omitempty"`
	// Metrics is the registry snapshot.
	Metrics *MetricsSnapshot `json:"metrics,omitempty"`
	// Recovery is the supervised run's recovery timeline, in step order.
	Recovery []TimelineEntry `json:"recovery,omitempty"`
	// Series holds step-indexed curves by name (e.g. the churn scenario's
	// "recovered_locality" and "migration_cost"), each in step order.
	Series map[string][]SeriesPoint `json:"series,omitempty"`
}

// Report assembles a run report from the observer's timer and registry
// (both sections are omitted when disabled). Callers fill Recovery and
// extra Config entries before writing.
func (o *Observer) Report(tool string, config map[string]any) *RunReport {
	rep := &RunReport{Schema: RunReportSchema, Tool: tool, Config: config}
	if o != nil {
		rep.Phases = o.Phases.Spans()
		rep.PhaseTotalsUs = o.Phases.Totals()
		rep.Metrics = o.Metrics.Snapshot()
	}
	return rep
}

// WriteFile writes the report as indented JSON ("-" writes to stdout).
func (r *RunReport) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err := os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("obs: write run report: %v", err)
	}
	return nil
}

// ValidateRunReport parses and structurally checks a runreport/v1
// document: schema tag, tool name, non-negative span durations, and
// internally consistent histogram snapshots (cumulative bucket counts
// ending at the total count). It returns the parsed report.
func ValidateRunReport(data []byte) (*RunReport, error) {
	var rep RunReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("obs: run report does not parse: %v", err)
	}
	if rep.Schema != RunReportSchema {
		return nil, fmt.Errorf("obs: run report schema %q, want %q", rep.Schema, RunReportSchema)
	}
	if rep.Tool == "" {
		return nil, fmt.Errorf("obs: run report has no tool")
	}
	for _, s := range rep.Phases {
		if s.Name == "" || s.DurUs < 0 || s.StartUs < 0 {
			return nil, fmt.Errorf("obs: bad phase span %+v", s)
		}
	}
	if m := rep.Metrics; m != nil {
		for name, h := range m.Histograms {
			prev := int64(0)
			for _, b := range h.Buckets {
				if b.Count < prev {
					return nil, fmt.Errorf("obs: histogram %s buckets not cumulative", name)
				}
				prev = b.Count
			}
			if n := len(h.Buckets); n > 0 && h.Buckets[n-1].Count != h.Count {
				return nil, fmt.Errorf("obs: histogram %s +Inf bucket %d != count %d",
					name, h.Buckets[n-1].Count, h.Count)
			}
		}
	}
	for _, e := range rep.Recovery {
		if e.Action == "" {
			return nil, fmt.Errorf("obs: recovery entry with no action at step %d", e.Step)
		}
	}
	for name, pts := range rep.Series {
		if name == "" {
			return nil, fmt.Errorf("obs: series with empty name")
		}
		for i := 1; i < len(pts); i++ {
			if pts[i].Step < pts[i-1].Step {
				return nil, fmt.Errorf("obs: series %s not in step order at index %d", name, i)
			}
		}
	}
	return &rep, nil
}

// ValidateJSONLTrace checks that every line of a JSONL event trace parses
// as a flat JSON object carrying the reserved "src" and "event" string
// keys. It returns the number of events and the per-source event counts.
func ValidateJSONLTrace(r io.Reader) (int, map[string]int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	n := 0
	bySource := map[string]int{}
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var raw map[string]any
		if err := json.Unmarshal(line, &raw); err != nil {
			return n, bySource, fmt.Errorf("obs: trace line %d does not parse: %v", n+1, err)
		}
		src, ok := raw["src"].(string)
		if !ok || src == "" {
			return n, bySource, fmt.Errorf("obs: trace line %d has no src", n+1)
		}
		if name, ok := raw["event"].(string); !ok || name == "" {
			return n, bySource, fmt.Errorf("obs: trace line %d has no event", n+1)
		}
		bySource[src]++
		n++
	}
	if err := sc.Err(); err != nil {
		return n, bySource, err
	}
	return n, bySource, nil
}
