package obs

import (
	"flag"
	"fmt"
	"io"
	"os"
)

// CLIFlags is the observability flag set shared by every command:
// -trace-out, -metrics-out, and -v mean the same thing in lamamap,
// lamasim, lamabench, and topogen.
type CLIFlags struct {
	// TraceOut is the JSONL structured-event destination ("" = off,
	// "-" = stderr).
	TraceOut string
	// MetricsOut is the runreport/v1 destination ("" = off, "-" = stdout).
	MetricsOut string
	// Verbose additionally renders every event human-readably on stderr.
	Verbose bool
}

// RegisterFlags installs the shared observability flags on a FlagSet.
func RegisterFlags(fs *flag.FlagSet) *CLIFlags {
	f := &CLIFlags{}
	fs.StringVar(&f.TraceOut, "trace-out", "", "write structured JSONL events to this file (- for stderr)")
	fs.StringVar(&f.MetricsOut, "metrics-out", "", "write a runreport/v1 JSON document (config, phases, metrics) to this file (- for stdout)")
	fs.BoolVar(&f.Verbose, "v", false, "print human-readable events to stderr")
	return f
}

// Enabled reports that any observability output was requested.
func (f *CLIFlags) Enabled() bool {
	return f != nil && (f.TraceOut != "" || f.MetricsOut != "" || f.Verbose)
}

// Observer builds the observer the flags describe, or nil (zero cost) when
// nothing was requested. The returned closer flushes and closes every
// opened file; call it before writing the run report is NOT required
// (sinks and files are independent of the report), but it must run before
// process exit.
func (f *CLIFlags) Observer(stderr io.Writer) (*Observer, func() error, error) {
	if !f.Enabled() {
		return nil, func() error { return nil }, nil
	}
	o := &Observer{}
	var files []*os.File
	var sinks []Sink
	if f.TraceOut != "" {
		w := stderr
		if f.TraceOut != "-" {
			file, err := os.Create(f.TraceOut)
			if err != nil {
				return nil, nil, fmt.Errorf("obs: -trace-out: %v", err)
			}
			files = append(files, file)
			w = file
		}
		sinks = append(sinks, NewJSONLSink(w))
	}
	if f.Verbose {
		sinks = append(sinks, NewTextSink(stderr))
	}
	switch len(sinks) {
	case 0:
	case 1:
		o.Sink = sinks[0]
	default:
		o.Sink = NewMultiSink(sinks...)
	}
	if f.MetricsOut != "" {
		o.Metrics = NewRegistry()
		o.Phases = NewPhaseTimer()
	}
	closer := func() error {
		err := o.Close()
		for _, file := range files {
			if cerr := file.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}
		return err
	}
	return o, closer, nil
}

// WriteReport writes the run report to -metrics-out (no-op when the flag
// is unset).
func (f *CLIFlags) WriteReport(rep *RunReport) error {
	if f == nil || f.MetricsOut == "" {
		return nil
	}
	return rep.WriteFile(f.MetricsOut)
}
