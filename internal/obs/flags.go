package obs

import (
	"flag"
	"fmt"
	"io"
	"os"
)

// CLIFlags is the observability flag set shared by every command:
// -trace-out, -metrics-out, -listen, and -v mean the same thing in
// lamamap, lamasim, lamabench, and topogen.
type CLIFlags struct {
	// TraceOut is the JSONL structured-event destination ("" = off,
	// "-" = stderr).
	TraceOut string
	// MetricsOut is the runreport/v1 destination ("" = off, "-" = stdout).
	MetricsOut string
	// Listen is the host:port the live telemetry server binds ("" = off;
	// port 0 picks a free port, printed to stderr).
	Listen string
	// Verbose additionally renders every event human-readably on stderr.
	Verbose bool

	server *Server
}

// RegisterVersionFlag installs the shared -version flag on a FlagSet.
// After parsing, a CLI checks the returned bool and calls PrintVersion —
// every command reports its provenance identically instead of hand-rolling
// its own printout.
func RegisterVersionFlag(fs *flag.FlagSet) *bool {
	return fs.Bool("version", false, "print build provenance (Go version, git revision, CPUs) and exit")
}

// PrintVersion writes the running binary's build provenance — the same
// BuildInfo the lamabench/v2 report header and the lama_build_info metric
// carry — as one human-readable line.
func PrintVersion(w io.Writer, tool string) {
	b := CurrentBuildInfo()
	rev := b.GitRevision
	if rev == "" {
		rev = "unknown"
	}
	fmt.Fprintf(w, "%s %s (rev %s, %d CPUs)\n", tool, b.GoVersion, rev, b.NumCPU)
}

// RegisterFlags installs the shared observability flags on a FlagSet.
func RegisterFlags(fs *flag.FlagSet) *CLIFlags {
	f := &CLIFlags{}
	fs.StringVar(&f.TraceOut, "trace-out", "", "write structured JSONL events to this file (- for stderr)")
	fs.StringVar(&f.MetricsOut, "metrics-out", "", "write a runreport/v1 JSON document (config, phases, metrics) to this file (- for stdout)")
	fs.StringVar(&f.Listen, "listen", "", "serve live telemetry (/metrics, /events, /debug/pprof) on this host:port while the run executes")
	fs.BoolVar(&f.Verbose, "v", false, "print human-readable events to stderr")
	return f
}

// Enabled reports that any observability output was requested.
func (f *CLIFlags) Enabled() bool {
	return f != nil && (f.TraceOut != "" || f.MetricsOut != "" || f.Listen != "" || f.Verbose)
}

// ListenAddr returns the telemetry server's bound address once Observer
// has started it ("" when -listen was not given). With -listen :0 this is
// how callers and tests learn the picked port.
func (f *CLIFlags) ListenAddr() string {
	if f == nil || f.server == nil {
		return ""
	}
	return f.server.Addr()
}

// Observer builds the observer the flags describe, or nil (zero cost) when
// nothing was requested. With -listen set it also starts the live
// telemetry server (announced on stderr) backed by a bounded event ring
// and enables pprof phase/policy labels, so profiles pulled from
// /debug/pprof attribute samples to mapping phases. The returned closer
// stops the server, flushes the sinks, and closes every opened file; it
// must run before process exit.
func (f *CLIFlags) Observer(stderr io.Writer) (*Observer, func() error, error) {
	if !f.Enabled() {
		return nil, func() error { return nil }, nil
	}
	o := &Observer{}
	var files []*os.File
	var sinks []Sink
	if f.TraceOut != "" {
		w := stderr
		if f.TraceOut != "-" {
			file, err := os.Create(f.TraceOut)
			if err != nil {
				return nil, nil, fmt.Errorf("obs: -trace-out: %v", err)
			}
			files = append(files, file)
			w = file
		}
		sinks = append(sinks, NewJSONLSink(w))
	}
	if f.Verbose {
		sinks = append(sinks, NewTextSink(stderr))
	}
	if f.MetricsOut != "" || f.Listen != "" {
		o.Metrics = NewRegistry()
		o.Phases = NewPhaseTimer()
		RegisterBuildInfo(o.Metrics)
	}
	var server *Server
	if f.Listen != "" {
		ring := NewRingSink(DefaultRingCapacity)
		ring.DropCounter = o.Metrics.Counter("lama_obs_events_dropped_total")
		sinks = append(sinks, ring)
		o.Phases.EnablePprofLabels()
		server = NewServer(o.Metrics, ring)
		addr, err := server.Start(f.Listen)
		if err != nil {
			for _, file := range files {
				file.Close() // best effort: unwinding a failed setup
			}
			return nil, nil, err
		}
		f.server = server
		fmt.Fprintf(stderr, "obs: serving telemetry on http://%s\n", addr)
	}
	switch len(sinks) {
	case 0:
	case 1:
		o.Sink = sinks[0]
	default:
		o.Sink = NewMultiSink(sinks...)
	}
	closer := func() error {
		if server != nil {
			server.Close() // best effort: stop serving before sinks close
		}
		err := o.Close()
		for _, file := range files {
			if cerr := file.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}
		return err
	}
	return o, closer, nil
}

// WriteReport writes the run report to -metrics-out (no-op when the flag
// is unset).
func (f *CLIFlags) WriteReport(rep *RunReport) error {
	if f == nil || f.MetricsOut == "" {
		return nil
	}
	return rep.WriteFile(f.MetricsOut)
}
