package obs

import (
	"sync"
	"sync/atomic"
)

// DefaultRingCapacity is the event capacity of the ring buffer the -listen
// telemetry server tails when no explicit size is given.
const DefaultRingCapacity = 1024

// RingSink is a bounded, concurrency-safe event buffer: the newest
// Capacity events are retained (older ones are overwritten), and live
// subscribers receive every event their bounded channel has room for.
// Emit NEVER blocks — a subscriber that cannot keep up loses events, and
// every loss is counted (per subscriber and in total, plus an optional
// registry counter) instead of stalling the emitting hot path. The
// /events endpoint of the obs.Server is its only intended consumer, but
// it is a plain Sink and composes with NewMultiSink like any other.
//
// All mutable state — the ring, the subscriber set, and every channel
// send and close — is guarded by one mutex, so Emit, Subscribe,
// Unsubscribe, and Close are safe to call from any goroutine in any
// order.
type RingSink struct {
	// DropCounter, when non-nil, is incremented once per event dropped on
	// a full subscriber channel (set it to a Registry counter such as
	// lama_obs_events_dropped_total before the sink is shared). Counter
	// methods are nil-safe, so leaving it nil is valid.
	DropCounter *Counter

	mu sync.Mutex
	//lama:guards mu
	buf []Event
	//lama:guards mu
	seq uint64 // total events emitted; buf[(seq-1)%cap] is the newest
	//lama:guards mu
	dropped int64             // events not delivered to some subscriber
	subs    map[*RingSub]bool //lama:guards mu
	closed  bool              //lama:guards mu
}

// RingSub is one live subscription to a RingSink's event stream.
type RingSub struct {
	// C delivers events in emission order. It is closed when the sink is
	// closed or the subscription is cancelled with Unsubscribe.
	C <-chan Event

	ch      chan Event
	dropped atomic.Int64
}

// Dropped returns the number of events this subscriber lost because its
// channel was full when they were emitted.
func (s *RingSub) Dropped() int64 { return s.dropped.Load() }

// NewRingSink returns a ring buffer retaining the newest capacity events
// (DefaultRingCapacity when capacity <= 0).
func NewRingSink(capacity int) *RingSink {
	if capacity <= 0 {
		capacity = DefaultRingCapacity
	}
	return &RingSink{
		buf:  make([]Event, capacity),
		subs: map[*RingSub]bool{},
	}
}

// Emit records the event and offers it to every subscriber without
// blocking; subscribers with full channels drop it (counted).
func (s *RingSink) Emit(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.buf[s.seq%uint64(len(s.buf))] = e
	s.seq++
	for sub := range s.subs {
		select {
		case sub.ch <- e:
		default:
			sub.dropped.Add(1)
			s.dropped++
			s.DropCounter.Inc()
		}
	}
}

// Subscribe registers a live subscriber with the given channel buffer
// (64 when buffer <= 0) and returns it together with a replay of the
// newest min(replay, buffered) events, atomically with the registration
// so no event is both missing from the replay and dropped from the
// channel. Returns a nil subscription on a closed sink.
func (s *RingSink) Subscribe(replay, buffer int) ([]Event, *RingSub) {
	if buffer <= 0 {
		buffer = 64
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, nil
	}
	sub := &RingSub{ch: make(chan Event, buffer)}
	sub.C = sub.ch
	s.subs[sub] = true
	return s.tailLocked(replay), sub
}

// Unsubscribe cancels the subscription and closes its channel; it is a
// no-op for an unknown (or already cancelled) subscription.
func (s *RingSink) Unsubscribe(sub *RingSub) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.subs[sub] {
		delete(s.subs, sub)
		close(sub.ch)
	}
}

// Tail returns the newest min(n, buffered) events in emission order.
func (s *RingSink) Tail(n int) []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tailLocked(n)
}

func (s *RingSink) tailLocked(n int) []Event {
	have := s.seq
	if have > uint64(len(s.buf)) {
		have = uint64(len(s.buf))
	}
	if n < 0 {
		n = 0
	}
	if uint64(n) > have {
		n = int(have)
	}
	out := make([]Event, 0, n)
	for i := s.seq - uint64(n); i < s.seq; i++ {
		out = append(out, s.buf[i%uint64(len(s.buf))])
	}
	return out
}

// Len returns the number of events currently buffered (at most the
// capacity).
func (s *RingSink) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.seq > uint64(len(s.buf)) {
		return len(s.buf)
	}
	return int(s.seq)
}

// Total returns the number of events ever emitted to the sink.
func (s *RingSink) Total() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// Dropped returns the total number of subscriber-side drops.
func (s *RingSink) Dropped() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Close stops the sink: subscribers' channels are closed, later Emits are
// dropped silently, and later Subscribes fail. Always returns nil.
func (s *RingSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	for sub := range s.subs {
		delete(s.subs, sub)
		close(sub.ch)
	}
	return nil
}
