package obs

import (
	"bytes"
	"runtime/pprof"
	"strings"
	"testing"
)

// goroutineLabels renders the current goroutine's pprof label set via the
// debug=1 goroutine profile — the only way to observe labels from a test.
func goroutineLabels(t *testing.T) string {
	t.Helper()
	var buf bytes.Buffer
	if err := pprof.Lookup("goroutine").WriteTo(&buf, 1); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestPhaseTimerPprofLabels(t *testing.T) {
	pt := NewPhaseTimer()
	if pt.PprofLabeled() {
		t.Fatal("labels on by default")
	}
	end := pt.Start("sweep")
	if got := goroutineLabels(t); strings.Contains(got, "lama_phase") {
		t.Fatal("span labeled with labeling disabled")
	}
	end()

	pt.EnablePprofLabels()
	if !pt.PprofLabeled() {
		t.Fatal("PprofLabeled false after enable")
	}
	end = pt.Start("sweep")
	if got := goroutineLabels(t); !strings.Contains(got, `"lama_phase":"sweep"`) {
		t.Fatalf("lama_phase label missing:\n%s", got)
	}
	end()
	if got := goroutineLabels(t); strings.Contains(got, "lama_phase") {
		t.Fatalf("label not cleared after span end:\n%s", got)
	}

	var nilPT *PhaseTimer
	if nilPT.PprofLabeled() {
		t.Fatal("nil timer labeled")
	}
}

func TestWithPprofLabel(t *testing.T) {
	ran := false
	WithPprofLabel(PprofLabelPolicy, "lama", func() {
		ran = true
		if got := goroutineLabels(t); !strings.Contains(got, `"lama_policy":"lama"`) {
			t.Fatalf("lama_policy label missing:\n%s", got)
		}
	})
	if !ran {
		t.Fatal("f not called")
	}
	if got := goroutineLabels(t); strings.Contains(got, "lama_policy") {
		t.Fatalf("label leaked:\n%s", got)
	}
	var nilObs *Observer
	if nilObs.PprofLabeled() {
		t.Fatal("nil observer labeled")
	}
}
