package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	reg := NewRegistry()
	reg.Counter("lama_ranks_placed_total").Add(7)
	ring := NewRingSink(32)
	s := NewServer(reg, ring)
	s.Tool = "obstest"
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestServerEndpoints(t *testing.T) {
	s, ts := newTestServer(t)
	s.Ring.Emit(Event{Source: SrcMap, Name: "done", Step: NoStep})

	if code, body := get(t, ts.URL+"/"); code != 200 || !strings.Contains(body, "/metrics") {
		t.Fatalf("index: %d %q", code, body)
	}
	if code, body := get(t, ts.URL+"/healthz"); code != 200 ||
		!strings.Contains(body, "ok") || !strings.Contains(body, "tool obstest") ||
		!strings.Contains(body, "events 1 (dropped 0)") {
		t.Fatalf("healthz: %d %q", code, body)
	}
	if code, body := get(t, ts.URL+"/metrics"); code != 200 ||
		!strings.Contains(body, "lama_ranks_placed_total 7") {
		t.Fatalf("metrics: %d %q", code, body)
	}
	code, body := get(t, ts.URL+"/metrics.json")
	if code != 200 {
		t.Fatalf("metrics.json: %d", code)
	}
	var snap MetricsSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("metrics.json not JSON: %v\n%s", err, body)
	}
	if snap.Counters["lama_ranks_placed_total"] != 7 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if code, _ := get(t, ts.URL+"/nope"); code != 404 {
		t.Fatalf("unknown path: %d", code)
	}
	// pprof index answers (profile endpoints are exercised in CI smoke).
	if code, body := get(t, ts.URL+"/debug/pprof/"); code != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index: %d", code)
	}
}

func TestServerNilFacilities(t *testing.T) {
	s := NewServer(nil, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if code, body := get(t, ts.URL+"/metrics"); code != 200 || body != "" {
		t.Fatalf("nil-registry metrics: %d %q", code, body)
	}
	if code, body := get(t, ts.URL+"/metrics.json"); code != 200 || !strings.Contains(body, "{}") {
		t.Fatalf("nil-registry metrics.json: %d %q", code, body)
	}
	if code, _ := get(t, ts.URL+"/events"); code != 404 {
		t.Fatalf("nil-ring events: want 404")
	}
}

func TestServerEventsDump(t *testing.T) {
	s, ts := newTestServer(t)
	for i := 0; i < 5; i++ {
		s.Ring.Emit(Event{Source: SrcSupervise, Name: "step", Step: i})
	}
	code, body := get(t, ts.URL+"/events?follow=0&replay=3")
	if code != 200 {
		t.Fatalf("events dump: %d", code)
	}
	lines := strings.Split(strings.TrimSpace(body), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d: %q", len(lines), body)
	}
	if !strings.Contains(lines[0], `"step":2`) || !strings.Contains(lines[2], `"step":4`) {
		t.Fatalf("wrong tail: %q", body)
	}
	if code, _ := get(t, ts.URL+"/events?replay=bogus"); code != 400 {
		t.Fatal("bad replay should 400")
	}
	if code, _ := get(t, ts.URL+"/events?replay=-1"); code != 400 {
		t.Fatal("negative replay should 400")
	}
}

func TestServerEventsFollow(t *testing.T) {
	s, ts := newTestServer(t)
	s.Ring.Emit(Event{Source: SrcSupervise, Name: "step", Step: 0})

	resp, err := http.Get(ts.URL + "/events?replay=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)

	if !sc.Scan() || !strings.Contains(sc.Text(), `"step":0`) {
		t.Fatalf("replay line = %q", sc.Text())
	}
	s.Ring.Emit(Event{Source: SrcSupervise, Name: "step", Step: 1})
	if !sc.Scan() || !strings.Contains(sc.Text(), `"step":1`) {
		t.Fatalf("live line = %q", sc.Text())
	}
	// Closing the ring ends the stream server-side.
	s.Ring.Close()
	deadline := time.After(5 * time.Second)
	done := make(chan bool, 1)
	go func() { done <- sc.Scan() }()
	select {
	case more := <-done:
		if more {
			t.Fatalf("unexpected line after ring close: %q", sc.Text())
		}
	case <-deadline:
		t.Fatal("stream did not end after ring close")
	}
}

func TestServerEventsSlowReader(t *testing.T) {
	s, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/events?replay=0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	// Never read the body; flood far past the subscription buffer (256)
	// plus any HTTP buffering. Emit must never block.
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		for i := 0; i < 5000; i++ {
			s.Ring.Emit(Event{Source: SrcSupervise, Name: "step", Step: i})
		}
	}()
	select {
	case <-finished:
	case <-time.After(10 * time.Second):
		t.Fatal("Emit blocked on a slow /events reader")
	}
	if s.Ring.Total() != 5000 {
		t.Fatalf("total = %d", s.Ring.Total())
	}
	// The stalled subscriber must have lost events rather than stalling us.
	deadline := time.Now().Add(5 * time.Second)
	for s.Ring.Dropped() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no drops recorded for a stalled subscriber")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestServerStartClose(t *testing.T) {
	s := NewServer(NewRegistry(), NewRingSink(8))
	if s.Addr() != "" {
		t.Fatal("addr before Start")
	}
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if s.Addr() != addr {
		t.Fatalf("Addr() = %q, Start returned %q", s.Addr(), addr)
	}
	if code, _ := get(t, "http://"+addr+"/healthz"); code != 200 {
		t.Fatal("healthz over real listener")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Fatal("server still serving after Close")
	}
	var unstarted Server
	if err := unstarted.Close(); err != nil {
		t.Fatal("Close without Start should be nil")
	}
}
