package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// SpanRecord is one completed phase span, with start offset and duration
// in microseconds relative to the timer's epoch (its creation time).
type SpanRecord struct {
	Name    string  `json:"name"`
	StartUs float64 `json:"startUs"`
	DurUs   float64 `json:"durUs"`
}

// PhaseTimer records span-style phase timings (prune -> build-shape ->
// sweep -> place -> bind) so a run's wall time can be attributed per
// phase. It is safe for concurrent use: sweep workers time their phases
// from pool goroutines.
//
// With EnablePprofLabels switched on (the -listen telemetry server does
// this), each open span additionally sets the goroutine's lama_phase
// pprof label, so CPU profiles pulled from /debug/pprof/profile
// attribute samples per phase. Labels are flat: the innermost open span
// wins, and its end restores the unlabeled state (see pprof.go).
type PhaseTimer struct {
	mu    sync.Mutex
	epoch time.Time // immutable after construction
	//lama:guards mu
	spans       []SpanRecord
	pprofLabels atomic.Bool
}

// NewPhaseTimer returns a timer whose epoch is now.
func NewPhaseTimer() *PhaseTimer { return &PhaseTimer{epoch: time.Now()} }

// EnablePprofLabels makes every span label its goroutine with lama_phase
// for the span's duration. Switch it on before the timer is shared.
func (t *PhaseTimer) EnablePprofLabels() { t.pprofLabels.Store(true) }

// PprofLabeled reports whether spans set pprof labels (false for nil).
func (t *PhaseTimer) PprofLabeled() bool { return t != nil && t.pprofLabels.Load() }

// Start begins a span and returns its terminator; call it exactly once.
func (t *PhaseTimer) Start(name string) func() {
	var unlabel func()
	if t.pprofLabels.Load() {
		unlabel = setGoroutineLabel(PprofLabelPhase, name)
	}
	start := time.Now()
	return func() {
		end := time.Now()
		if unlabel != nil {
			unlabel()
		}
		t.mu.Lock()
		t.spans = append(t.spans, SpanRecord{
			Name:    name,
			StartUs: float64(start.Sub(t.epoch)) / float64(time.Microsecond),
			DurUs:   float64(end.Sub(start)) / float64(time.Microsecond),
		})
		t.mu.Unlock()
	}
}

// Spans returns the completed spans in completion order (nil timer gives
// nil).
func (t *PhaseTimer) Spans() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]SpanRecord(nil), t.spans...)
}

// Totals aggregates the completed spans' durations by phase name, in
// microseconds — the per-phase attribution lamabench reports.
func (t *PhaseTimer) Totals() map[string]float64 {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]float64, 8)
	for _, s := range t.spans {
		out[s.Name] += s.DurUs
	}
	return out
}
