package obs

import (
	"strings"
	"testing"
)

// TestWritePrometheusGolden pins the full exposition byte-for-byte —
// ordering, the +Inf bucket rendering, and info-label escaping are all
// format contracts a Prometheus scraper depends on.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("lama_restarts_total").Add(3)
	r.Gauge("lama_final_ranks").Set(64)
	h := r.Histogram("lama_map_us", []float64{100, 1000})
	h.Observe(50)
	h.Observe(150)
	h.Observe(5000)
	r.SetInfo("lama_build_info", map[string]string{
		"goVersion":   "go1.22.0",
		"gitRevision": "abc123",
		"numCPU":      "8",
	})
	// Label values carrying every escapable character: backslash, double
	// quote, and newline.
	r.SetInfo("lama_escape_check", map[string]string{
		"path":  `C:\lama`,
		"quote": `say "hi"`,
		"multi": "line1\nline2",
	})

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE lama_restarts_total counter
lama_restarts_total 3
# TYPE lama_final_ranks gauge
lama_final_ranks 64
# TYPE lama_build_info gauge
lama_build_info{gitRevision="abc123",goVersion="go1.22.0",numCPU="8"} 1
# TYPE lama_escape_check gauge
lama_escape_check{multi="line1\nline2",path="C:\\lama",quote="say \"hi\""} 1
# TYPE lama_map_us histogram
lama_map_us_bucket{le="100"} 1
lama_map_us_bucket{le="1000"} 2
lama_map_us_bucket{le="+Inf"} 3
lama_map_us_sum 5200
lama_map_us_count 3
`
	if got := sb.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestSetInfoSemantics(t *testing.T) {
	r := NewRegistry()
	labels := map[string]string{"k": "v1"}
	r.SetInfo("lama_build_info", labels)
	labels["k"] = "mutated"                                    // caller's map must not alias
	r.SetInfo("lama_build_info", map[string]string{"k": "v2"}) // first registration wins

	snap := r.Snapshot()
	if got := snap.Infos["lama_build_info"]["k"]; got != "v1" {
		t.Fatalf("info label = %q, want v1", got)
	}
	snap.Infos["lama_build_info"]["k"] = "snapmut" // snapshot must not alias either
	if got := r.Snapshot().Infos["lama_build_info"]["k"]; got != "v1" {
		t.Fatalf("registry mutated through snapshot: %q", got)
	}
	var nilReg *Registry
	nilReg.SetInfo("x", nil) // no-op, no panic
	if nilReg.Snapshot() != nil {
		t.Fatal("nil registry snapshot")
	}
}

func TestRegisterBuildInfo(t *testing.T) {
	r := NewRegistry()
	RegisterBuildInfo(r)
	info := r.Snapshot().Infos["lama_build_info"]
	if info == nil {
		t.Fatal("lama_build_info not registered")
	}
	if !strings.HasPrefix(info["goVersion"], "go") {
		t.Fatalf("goVersion = %q", info["goVersion"])
	}
	if info["numCPU"] == "" || info["numCPU"] == "0" {
		t.Fatalf("numCPU = %q", info["numCPU"])
	}
	// gitRevision is legitimately empty in test binaries; only its
	// presence as a key matters.
	if _, ok := info["gitRevision"]; !ok {
		t.Fatal("gitRevision label missing")
	}
	RegisterBuildInfo(nil) // nil registry is a no-op
}
