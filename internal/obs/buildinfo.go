package obs

import (
	"runtime"
	"runtime/debug"
	"strconv"
)

// BuildInfo identifies the binary and host behind a telemetry surface:
// the toolchain that built it, the vcs revision stamped into the build
// (empty for test binaries and plain `go run` outside a checkout), and
// the host's CPU count. It is the provenance header lamabench -json has
// carried since its v2 schema, factored here so the /metrics endpoint
// and every run report identify their origin the same way.
type BuildInfo struct {
	GoVersion   string `json:"goVersion"`
	GitRevision string `json:"gitRevision,omitempty"`
	NumCPU      int    `json:"numCPU"`
}

// CurrentBuildInfo reads the running binary's build provenance.
func CurrentBuildInfo() BuildInfo {
	b := BuildInfo{GoVersion: runtime.Version(), NumCPU: runtime.NumCPU()}
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, s := range info.Settings {
			if s.Key == "vcs.revision" {
				b.GitRevision = s.Value
			}
		}
	}
	return b
}

// RegisterBuildInfo publishes the running binary's provenance as the
// lama_build_info info-style gauge (constant value 1, provenance as
// labels) so a scrape of /metrics identifies the binary serving it.
// Registration is idempotent; a nil registry is a no-op.
func RegisterBuildInfo(r *Registry) {
	b := CurrentBuildInfo()
	r.SetInfo("lama_build_info", map[string]string{
		"goVersion":   b.GoVersion,
		"gitRevision": b.GitRevision,
		"numCPU":      strconv.Itoa(b.NumCPU),
	})
}
