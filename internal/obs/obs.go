// Package obs is the unified observability layer of the repository: one
// structured-event stream, one typed metrics registry, and one span-style
// phase timer shared by the mapping engine, the layout sweeps, the
// fault-tolerance supervisor, the resource manager, and every CLI.
//
// The design goal is zero cost when disabled: every producer holds a
// *Observer that may be nil, and all Observer methods are nil-receiver
// safe. Hot paths guard event construction behind Observer.Enabled() so a
// disabled run performs no allocation, no time syscalls, and no locking
// (pinned by BenchmarkMapObsDisabled and TestMapAllocationsSteadyState).
//
// Events are flat JSON objects with three reserved keys — "t" (unix-nano
// wall stamp, omitted when zero), "src" (emitting subsystem), "event"
// (name within the source) — plus "step" for step-clocked sources and
// arbitrary event-specific fields. The JSONL backend writes one event per
// line, the text backend a human-readable rendering, and MemorySink
// collects events for tests.
package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// NoStep marks an event that carries no logical step ("step" is omitted
// from the JSON rendering).
const NoStep = -1

// Field is one event-specific key/value pair. Values must be JSON
// encodable; keys must not collide with the reserved "t", "src", "event",
// and "step" keys.
type Field struct {
	Key   string
	Value any
}

// F builds a Field.
func F(key string, value any) Field { return Field{Key: key, Value: value} }

// Event is one structured observation.
type Event struct {
	// TimeUnixNano is the wall-clock stamp; zero means "not stamped" and is
	// omitted from the JSON form (deterministic test sinks pin a zero
	// clock).
	TimeUnixNano int64
	// Source identifies the emitting subsystem: "map", "sweep",
	// "supervise", "rm", "cli", ...
	Source string
	// Name is the event name within the source ("done", "detect",
	// "respawn", ...).
	Name string
	// Step is the logical step for step-clocked sources (the supervisor's
	// virtual scheduler); NoStep otherwise.
	Step int
	// Fields carries the event-specific payload in emission order.
	Fields []Field
}

// MarshalJSON renders the event as a flat JSON object.
func (e Event) MarshalJSON() ([]byte, error) {
	var sb strings.Builder
	sb.WriteByte('{')
	if e.TimeUnixNano != 0 {
		fmt.Fprintf(&sb, `"t":%d,`, e.TimeUnixNano)
	}
	src, err := json.Marshal(e.Source)
	if err != nil {
		return nil, err
	}
	name, err := json.Marshal(e.Name)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(&sb, `"src":%s,"event":%s`, src, name)
	if e.Step != NoStep {
		fmt.Fprintf(&sb, `,"step":%d`, e.Step)
	}
	for _, f := range e.Fields {
		k, err := json.Marshal(f.Key)
		if err != nil {
			return nil, err
		}
		v, err := json.Marshal(f.Value)
		if err != nil {
			return nil, fmt.Errorf("obs: field %q: %v", f.Key, err)
		}
		fmt.Fprintf(&sb, `,%s:%s`, k, v)
	}
	sb.WriteByte('}')
	return []byte(sb.String()), nil
}

// Text renders the event for humans: "src/event step=N key=value ...".
func (e Event) Text() string {
	var sb strings.Builder
	if e.TimeUnixNano != 0 {
		sb.WriteString(time.Unix(0, e.TimeUnixNano).Format("15:04:05.000 "))
	}
	fmt.Fprintf(&sb, "%s/%s", e.Source, e.Name)
	if e.Step != NoStep {
		fmt.Fprintf(&sb, " step=%d", e.Step)
	}
	for _, f := range e.Fields {
		fmt.Fprintf(&sb, " %s=%v", f.Key, f.Value)
	}
	return sb.String()
}

// Sink consumes structured events. Implementations must be safe for
// concurrent Emit calls (sweep workers emit from pool goroutines).
type Sink interface {
	Emit(e Event)
	// Close flushes buffered output. The sink must not be used afterwards.
	Close() error
}

// jsonlSink writes one JSON object per line.
type jsonlSink struct {
	mu  sync.Mutex
	w   *bufio.Writer //lama:guards mu
	err error         //lama:guards mu
}

// NewJSONLSink returns a sink writing JSON-Lines to w. Encoding errors are
// sticky and surfaced by Close.
func NewJSONLSink(w io.Writer) Sink { return &jsonlSink{w: bufio.NewWriter(w)} }

func (s *jsonlSink) Emit(e Event) {
	data, err := json.Marshal(e)
	s.mu.Lock()
	defer s.mu.Unlock()
	if err != nil {
		if s.err == nil {
			s.err = err
		}
		return
	}
	s.w.Write(data)
	s.w.WriteByte('\n')
}

func (s *jsonlSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.w.Flush(); err != nil && s.err == nil {
		s.err = err
	}
	return s.err
}

// textSink writes human-readable lines.
type textSink struct {
	mu sync.Mutex
	w  *bufio.Writer //lama:guards mu
}

// NewTextSink returns a sink writing one human-readable line per event.
func NewTextSink(w io.Writer) Sink { return &textSink{w: bufio.NewWriter(w)} }

func (s *textSink) Emit(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.w.WriteString(e.Text())
	s.w.WriteByte('\n')
}

func (s *textSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Flush()
}

// MemorySink collects events in memory, for tests and report assembly.
// Like every Sink it is safe for concurrent Emit: sweep workers and the
// supervisor emit from their own goroutines.
type MemorySink struct {
	mu     sync.Mutex
	events []Event //lama:guards mu
}

// NewMemorySink returns an empty in-memory sink.
func NewMemorySink() *MemorySink { return &MemorySink{} }

// Emit appends the event.
func (s *MemorySink) Emit(e Event) {
	s.mu.Lock()
	s.events = append(s.events, e)
	s.mu.Unlock()
}

// Close is a no-op.
func (s *MemorySink) Close() error { return nil }

// Events returns a snapshot of the collected events.
func (s *MemorySink) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Event(nil), s.events...)
}

// Names returns the collected "src/event" names in order, optionally
// filtered to one source — the shape assertions in tests key off this.
func (s *MemorySink) Names(source string) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	for _, e := range s.events {
		if source != "" && e.Source != source {
			continue
		}
		out = append(out, e.Source+"/"+e.Name)
	}
	return out
}

// discardSink drops everything. Distinct from a nil sink: producers still
// construct events, which is what BenchmarkMapObsEnabled measures.
type discardSink struct{}

func (discardSink) Emit(Event) {}

func (discardSink) Close() error { return nil }

// Discard is a sink that drops every event.
var Discard Sink = discardSink{}

// multiSink fans events out to several sinks.
type multiSink struct{ sinks []Sink }

// NewMultiSink fans every event out to all given sinks; Close closes each
// and returns the first error.
func NewMultiSink(sinks ...Sink) Sink {
	kept := make([]Sink, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			kept = append(kept, s)
		}
	}
	return &multiSink{sinks: kept}
}

func (m *multiSink) Emit(e Event) {
	for _, s := range m.sinks {
		s.Emit(e)
	}
}

func (m *multiSink) Close() error {
	var first error
	for _, s := range m.sinks {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Observer bundles the three observability facilities a producer may be
// handed: an event sink, a metrics registry, and a phase timer. Any field
// may be nil, the whole Observer may be nil, and every method is
// nil-receiver safe, so producers thread a single pointer and pay nothing
// when observability is off.
type Observer struct {
	// Sink receives structured events; nil disables emission.
	Sink Sink
	// Metrics is the typed metrics registry; nil disables recording.
	Metrics *Registry
	// Phases records span timings; nil disables them.
	Phases *PhaseTimer
	// Clock supplies event timestamps as unix-nanos; nil means wall clock.
	// Deterministic tests pin it (return 0 to omit stamps entirely).
	Clock func() int64
}

// Enabled reports that structured events are being collected. Producers
// use it to guard event construction in hot paths.
func (o *Observer) Enabled() bool { return o != nil && o.Sink != nil }

// Reg returns the metrics registry, nil when disabled. The Registry's
// methods are themselves nil-safe, so `o.Reg().Counter("x").Inc()` is
// always valid (and a no-op when disabled).
func (o *Observer) Reg() *Registry {
	if o == nil {
		return nil
	}
	return o.Metrics
}

// Emit sends one event to the sink (no-op when disabled).
func (o *Observer) Emit(source, name string, step int, fields ...Field) {
	if !o.Enabled() {
		return
	}
	e := Event{Source: source, Name: name, Step: step, Fields: fields}
	if o.Clock != nil {
		e.TimeUnixNano = o.Clock()
	} else {
		e.TimeUnixNano = time.Now().UnixNano()
	}
	o.Sink.Emit(e)
}

// noopEnd is the shared no-op span terminator returned when timing is off.
var noopEnd = func() {}

// StartSpan begins a named phase span and returns its terminator. With a
// nil observer or timer it returns a shared no-op and reads no clock.
func (o *Observer) StartSpan(name string) func() {
	if o == nil || o.Phases == nil {
		return noopEnd
	}
	return o.Phases.Start(name)
}

// Timing reports that phase spans are being recorded.
func (o *Observer) Timing() bool { return o != nil && o.Phases != nil }

// Close closes the sink, if any.
func (o *Observer) Close() error {
	if o == nil || o.Sink == nil {
		return nil
	}
	return o.Sink.Close()
}

// sortedKeys is shared by the exposition code paths.
func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
