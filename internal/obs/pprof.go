package obs

import (
	"context"
	"runtime/pprof"
)

// Profiling label keys. With labeling enabled (PhaseTimer.EnablePprofLabels,
// switched on by the -listen flag), CPU profiles pulled from the telemetry
// server's /debug/pprof/profile endpoint attribute samples to the mapping
// phase that was running (lama_phase: prune, build-shape, sweep, place,
// bind, ...) and to the placement policy executing (lama_policy), so a
// profile answers "where does placement time go" without guessing from
// function names.
const (
	// PprofLabelPhase labels samples with the innermost open phase span.
	PprofLabelPhase = "lama_phase"
	// PprofLabelPolicy labels samples with the executing placement policy
	// (applied by place.Run around every policy execution).
	PprofLabelPolicy = "lama_policy"
)

// unlabeled is the context goroutine labels are reset to when the
// innermost labeled region ends. Labels are deliberately flat rather than
// nested: reading the current goroutine label set is not possible, so a
// span's end restores the unlabeled state, not the enclosing span's label.
// Attribution-wise this is the right trade — samples land on the innermost
// active phase, and the instants between phases are negligible.
var unlabeled = context.Background()

// setGoroutineLabel points the calling goroutine's pprof label set at
// {key: value} and returns the restorer. Costs one context allocation;
// callers gate on the labeling switch so disabled runs pay nothing.
func setGoroutineLabel(key, value string) func() {
	pprof.SetGoroutineLabels(pprof.WithLabels(unlabeled, pprof.Labels(key, value)))
	return clearGoroutineLabels
}

func clearGoroutineLabels() { pprof.SetGoroutineLabels(unlabeled) }

// WithPprofLabel runs f with the calling goroutine's pprof labels set to
// {key: value}, restoring the previous label set afterwards (pprof.Do
// semantics, so unlike span labels this nests correctly around f).
func WithPprofLabel(key, value string, f func()) {
	pprof.Do(unlabeled, pprof.Labels(key, value), func(context.Context) { f() })
}

// PprofLabeled reports that phase/policy profiling labels are switched on
// (false for a nil observer or timer). place.Run keys its policy-label
// region off this so label setup costs nothing when profiling is off.
func (o *Observer) PprofLabeled() bool {
	return o != nil && o.Phases.PprofLabeled()
}
