package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestEventMarshalJSON(t *testing.T) {
	e := Event{
		TimeUnixNano: 42, Source: "supervise", Name: "detect", Step: 12,
		Fields: []Field{F("ranks", []int{3, 4}), F("failStep", 10)},
	}
	data, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"t":42,"src":"supervise","event":"detect","step":12,"ranks":[3,4],"failStep":10}`
	if string(data) != want {
		t.Fatalf("marshal = %s, want %s", data, want)
	}
	// Zero time and NoStep are omitted.
	e2 := Event{Source: "map", Name: "done", Step: NoStep}
	data2, _ := json.Marshal(e2)
	if string(data2) != `{"src":"map","event":"done"}` {
		t.Fatalf("marshal = %s", data2)
	}
}

func TestEventText(t *testing.T) {
	e := Event{Source: "map", Name: "done", Step: NoStep, Fields: []Field{F("np", 64)}}
	if got := e.Text(); got != "map/done np=64" {
		t.Fatalf("text = %q", got)
	}
	e.Step = 3
	if !strings.Contains(e.Text(), "step=3") {
		t.Fatalf("text = %q", e.Text())
	}
}

func TestJSONLSinkRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	o := &Observer{Sink: sink}
	o.Emit("map", "start", NoStep, F("np", 8))
	o.Emit("supervise", "detect", 5, F("ranks", []int{1}))
	o.Emit("supervise", "respawn", 5)
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	n, bySource, err := ValidateJSONLTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 || bySource["supervise"] != 2 || bySource["map"] != 1 {
		t.Fatalf("n=%d bySource=%v", n, bySource)
	}
}

func TestValidateJSONLTraceRejectsGarbage(t *testing.T) {
	cases := []string{
		"not json\n",
		`{"event":"x"}` + "\n",            // no src
		`{"src":"map"}` + "\n",            // no event
		`{"src":5,"event":"x"}` + "\n",    // src not a string
		`{"src":"m","event":null}` + "\n", // event not a string
	}
	for _, c := range cases {
		if _, _, err := ValidateJSONLTrace(strings.NewReader(c)); err == nil {
			t.Errorf("trace %q should fail validation", c)
		}
	}
	// Blank lines are tolerated.
	ok := `{"src":"m","event":"e"}` + "\n\n" + `{"src":"m","event":"f"}` + "\n"
	if n, _, err := ValidateJSONLTrace(strings.NewReader(ok)); err != nil || n != 2 {
		t.Fatalf("n=%d err=%v", n, err)
	}
}

func TestMemorySinkAndNames(t *testing.T) {
	sink := NewMemorySink()
	o := &Observer{Sink: sink, Clock: func() int64 { return 0 }}
	o.Emit("a", "one", NoStep)
	o.Emit("b", "two", NoStep)
	o.Emit("a", "three", NoStep)
	if got := sink.Names("a"); len(got) != 2 || got[0] != "a/one" || got[1] != "a/three" {
		t.Fatalf("names = %v", got)
	}
	if got := sink.Names(""); len(got) != 3 {
		t.Fatalf("all names = %v", got)
	}
	if ev := sink.Events()[0]; ev.TimeUnixNano != 0 {
		t.Fatalf("pinned clock leaked a stamp: %+v", ev)
	}
}

func TestMultiSink(t *testing.T) {
	m1, m2 := NewMemorySink(), NewMemorySink()
	sink := NewMultiSink(m1, nil, m2)
	sink.Emit(Event{Source: "x", Name: "y", Step: NoStep})
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if len(m1.Events()) != 1 || len(m2.Events()) != 1 {
		t.Fatal("fan-out failed")
	}
}

func TestNilObserverIsSafe(t *testing.T) {
	var o *Observer
	if o.Enabled() || o.Timing() {
		t.Fatal("nil observer claims enabled")
	}
	o.Emit("map", "done", NoStep, F("np", 1)) // must not panic
	o.StartSpan("place")()
	if o.Reg() != nil {
		t.Fatal("nil observer has a registry")
	}
	o.Reg().Counter("x").Inc()
	o.Reg().Gauge("y").Set(1)
	o.Reg().Histogram("z", StepBuckets).Observe(1)
	if err := o.Close(); err != nil {
		t.Fatal(err)
	}
	if rep := o.Report("t", nil); rep.Schema != RunReportSchema {
		t.Fatal("nil observer report")
	}
}

func TestRegistryInstruments(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("lama_test_total")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotone
	if c.Value() != 5 {
		t.Fatalf("counter = %d", c.Value())
	}
	if r.Counter("lama_test_total") != c {
		t.Fatal("counter lookup not idempotent")
	}
	g := r.Gauge("lama_test_gauge")
	g.Set(2.5)
	if g.Value() != 2.5 {
		t.Fatalf("gauge = %v", g.Value())
	}
	h := r.Histogram("lama_test_us", []float64{10, 100})
	for _, v := range []float64{5, 10, 50, 1000} {
		h.Observe(v)
	}
	if h.Count() != 4 || h.Sum() != 1065 {
		t.Fatalf("count=%d sum=%v", h.Count(), h.Sum())
	}
	s := r.Snapshot()
	hs := s.Histograms["lama_test_us"]
	// Cumulative: <=10 holds 2 (5 and the boundary 10), <=100 holds 3, +Inf 4.
	if got := []int64{hs.Buckets[0].Count, hs.Buckets[1].Count, hs.Buckets[2].Count}; got[0] != 2 || got[1] != 3 || got[2] != 4 {
		t.Fatalf("buckets = %v", got)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("c").Inc()
				r.Histogram("h", StepBuckets).Observe(float64(i % 10))
			}
		}()
	}
	wg.Wait()
	if r.Counter("c").Value() != 8000 {
		t.Fatalf("counter = %d", r.Counter("c").Value())
	}
	if r.Histogram("h", StepBuckets).Count() != 8000 {
		t.Fatal("histogram lost observations")
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("lama_restarts_total").Add(2)
	r.Gauge("lama_final_ranks").Set(64)
	r.Histogram("lama_map_us", []float64{100, 1000}).Observe(150)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE lama_restarts_total counter\nlama_restarts_total 2",
		"# TYPE lama_final_ranks gauge\nlama_final_ranks 64",
		"# TYPE lama_map_us histogram",
		`lama_map_us_bucket{le="100"} 0`,
		`lama_map_us_bucket{le="1000"} 1`,
		`lama_map_us_bucket{le="+Inf"} 1`,
		"lama_map_us_sum 150",
		"lama_map_us_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
	var nilReg *Registry
	if err := nilReg.WritePrometheus(io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestPhaseTimer(t *testing.T) {
	pt := NewPhaseTimer()
	end := pt.Start("place")
	inner := pt.Start("sweep")
	inner()
	end()
	spans := pt.Spans()
	if len(spans) != 2 {
		t.Fatalf("spans = %v", spans)
	}
	// Completion order: inner ends first.
	if spans[0].Name != "sweep" || spans[1].Name != "place" {
		t.Fatalf("span order = %v", spans)
	}
	totals := pt.Totals()
	if totals["place"] < totals["sweep"] {
		t.Fatalf("place should envelop sweep: %v", totals)
	}
	var nilPT *PhaseTimer
	if nilPT.Spans() != nil || nilPT.Totals() != nil {
		t.Fatal("nil timer not empty")
	}
}

func TestRunReportRoundTrip(t *testing.T) {
	o := &Observer{Metrics: NewRegistry(), Phases: NewPhaseTimer()}
	o.StartSpan("prune")()
	o.Reg().Counter("lama_ranks_placed_total").Add(24)
	o.Reg().Histogram("lama_map_duration_us", LatencyBucketsUs).Observe(42)
	rep := o.Report("lamasim", map[string]any{"np": 24, "layout": "scbnh"})
	rep.Recovery = []TimelineEntry{{Step: 12, Action: "respawn", Detail: map[string]any{"ranks": []int{3}}}}

	path := filepath.Join(t.TempDir(), "report.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := readFile(path)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ValidateRunReport(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Tool != "lamasim" || back.Metrics.Counters["lama_ranks_placed_total"] != 24 {
		t.Fatalf("round trip = %+v", back)
	}
	if len(back.Phases) != 1 || back.Phases[0].Name != "prune" {
		t.Fatalf("phases = %v", back.Phases)
	}
	if len(back.Recovery) != 1 || back.Recovery[0].Action != "respawn" {
		t.Fatalf("recovery = %v", back.Recovery)
	}
}

func TestValidateRunReportRejects(t *testing.T) {
	cases := map[string]string{
		"not json":      "nope",
		"wrong schema":  `{"schema":"runreport/v9","tool":"x"}`,
		"no tool":       `{"schema":"runreport/v1"}`,
		"negative span": `{"schema":"runreport/v1","tool":"x","phases":[{"name":"p","startUs":0,"durUs":-1}]}`,
		"empty action":  `{"schema":"runreport/v1","tool":"x","recovery":[{"step":1,"action":""}]}`,
		"non-cumulative histogram": `{"schema":"runreport/v1","tool":"x","metrics":{"histograms":{
			"h":{"buckets":[{"le":1,"count":5},{"le":"+Inf","count":3}],"sum":0,"count":3}}}}`,
		"bad +Inf total": `{"schema":"runreport/v1","tool":"x","metrics":{"histograms":{
			"h":{"buckets":[{"le":1,"count":1},{"le":"+Inf","count":2}],"sum":0,"count":9}}}}`,
	}
	for name, doc := range cases {
		if _, err := ValidateRunReport([]byte(doc)); err == nil {
			t.Errorf("%s: should fail", name)
		}
	}
}

func TestCLIFlagsObserver(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "t.jsonl")
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	f := RegisterFlags(fs)
	if err := fs.Parse([]string{"-trace-out", trace, "-metrics-out", filepath.Join(dir, "m.json"), "-v"}); err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	o, closeObs, err := f.Observer(&stderr)
	if err != nil {
		t.Fatal(err)
	}
	if !o.Enabled() || !o.Timing() || o.Reg() == nil {
		t.Fatal("observer not fully enabled")
	}
	end := o.StartSpan("place")
	o.Emit("map", "done", NoStep, F("np", 4))
	end()
	if err := closeObs(); err != nil {
		t.Fatal(err)
	}
	data, err := readFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	if n, _, err := ValidateJSONLTrace(bytes.NewReader(data)); err != nil || n != 1 {
		t.Fatalf("trace n=%d err=%v", n, err)
	}
	if !strings.Contains(stderr.String(), "map/done") {
		t.Fatalf("verbose rendering missing: %q", stderr.String())
	}
	if err := f.WriteReport(o.Report("x", nil)); err != nil {
		t.Fatal(err)
	}

	// Nothing requested: nil observer, nothing to close or write.
	f2 := &CLIFlags{}
	o2, close2, err := f2.Observer(io.Discard)
	if err != nil || o2 != nil {
		t.Fatalf("o2=%v err=%v", o2, err)
	}
	if err := close2(); err != nil {
		t.Fatal(err)
	}
	if err := f2.WriteReport(nil); err != nil {
		t.Fatal(err)
	}
}

func readFile(path string) ([]byte, error) { return os.ReadFile(path) }
