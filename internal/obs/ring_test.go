package obs

import (
	"sync"
	"testing"
)

func ev(name string, step int) Event {
	return Event{Source: SrcSupervise, Name: name, Step: step}
}

func TestRingSinkTailAndWrap(t *testing.T) {
	s := NewRingSink(4)
	for i := 0; i < 10; i++ {
		s.Emit(ev("step", i))
	}
	if s.Len() != 4 || s.Total() != 10 {
		t.Fatalf("len=%d total=%d", s.Len(), s.Total())
	}
	tail := s.Tail(100)
	if len(tail) != 4 {
		t.Fatalf("tail = %d events", len(tail))
	}
	for i, e := range tail {
		if e.Step != 6+i {
			t.Fatalf("tail[%d].Step = %d, want %d", i, e.Step, 6+i)
		}
	}
	if got := s.Tail(2); len(got) != 2 || got[0].Step != 8 {
		t.Fatalf("Tail(2) = %v", got)
	}
	if got := s.Tail(0); len(got) != 0 {
		t.Fatalf("Tail(0) = %v", got)
	}
	if got := s.Tail(-3); len(got) != 0 {
		t.Fatalf("Tail(-3) = %v", got)
	}
}

func TestRingSinkSubscribeReplayAndLive(t *testing.T) {
	s := NewRingSink(8)
	s.Emit(ev("a", 0))
	s.Emit(ev("b", 1))
	tail, sub := s.Subscribe(10, 4)
	if sub == nil {
		t.Fatal("nil sub on open sink")
	}
	if len(tail) != 2 || tail[0].Name != "a" || tail[1].Name != "b" {
		t.Fatalf("replay = %v", tail)
	}
	s.Emit(ev("c", 2))
	if got := <-sub.C; got.Name != "c" {
		t.Fatalf("live event = %v", got)
	}
	s.Unsubscribe(sub)
	if _, ok := <-sub.C; ok {
		t.Fatal("channel open after Unsubscribe")
	}
	s.Unsubscribe(sub) // idempotent
	s.Emit(ev("d", 3)) // no subscriber: no drop accounting
	if s.Dropped() != 0 {
		t.Fatalf("dropped = %d", s.Dropped())
	}
}

func TestRingSinkSlowSubscriberDropsNotBlocks(t *testing.T) {
	s := NewRingSink(8)
	reg := NewRegistry()
	s.DropCounter = reg.Counter("lama_obs_events_dropped_total")
	_, sub := s.Subscribe(0, 2)
	// Nobody reads sub.C: the buffer fills at 2, everything later drops.
	for i := 0; i < 10; i++ {
		s.Emit(ev("step", i)) // must not block
	}
	if sub.Dropped() != 8 || s.Dropped() != 8 {
		t.Fatalf("sub dropped=%d sink dropped=%d", sub.Dropped(), s.Dropped())
	}
	if got := reg.Counter("lama_obs_events_dropped_total").Value(); got != 8 {
		t.Fatalf("drop counter = %d", got)
	}
	s.Unsubscribe(sub)
}

func TestRingSinkClose(t *testing.T) {
	s := NewRingSink(4)
	_, sub := s.Subscribe(0, 2)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok := <-sub.C; ok {
		t.Fatal("channel open after Close")
	}
	s.Emit(ev("late", 0)) // dropped silently
	if s.Total() != 0 {
		t.Fatalf("closed sink accepted events: total=%d", s.Total())
	}
	if tail, sub := s.Subscribe(0, 2); tail != nil || sub != nil {
		t.Fatal("Subscribe succeeded on closed sink")
	}
	if err := s.Close(); err != nil {
		t.Fatal("double Close should be nil")
	}
}

func TestRingSinkConcurrent(t *testing.T) {
	s := NewRingSink(16)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s.Emit(ev("step", i))
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			_, sub := s.Subscribe(4, 2)
			if sub == nil {
				return
			}
			s.Tail(8)
			s.Unsubscribe(sub)
		}
	}()
	wg.Wait()
	<-done
	if s.Total() != 800 {
		t.Fatalf("total = %d", s.Total())
	}
	s.Close()
}
