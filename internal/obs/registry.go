package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry is a typed metrics registry: named counters, gauges, and
// fixed-bucket histograms. Lookup is mutex-guarded and idempotent (the
// first caller creates the instrument, later callers get the same one);
// the instruments themselves update with atomics so recording from sweep
// workers or the supervisor is lock-free. A nil *Registry is valid: every
// method returns a nil instrument whose update methods are no-ops.
type Registry struct {
	mu sync.Mutex
	//lama:guards mu
	counters map[string]*Counter
	//lama:guards mu
	gauges map[string]*Gauge
	//lama:guards mu
	histograms map[string]*Histogram
	//lama:guards mu
	infos map[string]map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
		infos:      map[string]map[string]string{},
	}
}

// SetInfo records an info-style metric: a gauge with constant value 1
// whose payload is its label set (the Prometheus convention for build
// and identity metadata, e.g. lama_build_info). The first caller's
// labels win; later calls with the same name are ignored so providers
// can register unconditionally. A nil registry is a no-op.
func (r *Registry) SetInfo(name string, labels map[string]string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.infos[name]; ok {
		return
	}
	copied := make(map[string]string, len(labels))
	for k, v := range labels {
		copied[k] = v
	}
	r.infos[name] = copied
}

// Counter is a monotonically increasing count.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds d (no-op on a nil counter; negative deltas are ignored to keep
// the counter monotone).
func (c *Counter) Add(d int64) {
	if c == nil || d < 0 {
		return
	}
	c.v.Add(d)
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a point-in-time value.
type Gauge struct{ bits atomic.Uint64 }

// Set records the value (no-op on nil).
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the last recorded value (0 for nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed, ascending upper-bound buckets
// (Prometheus classic-histogram semantics: an observation lands in the
// first bucket whose bound is >= the value, or the implicit +Inf bucket).
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1, last is +Inf

	mu    sync.Mutex
	sum   float64 //lama:guards mu
	total int64   //lama:guards mu
}

// Observe records one value (no-op on nil).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.mu.Lock()
	h.sum += v
	h.total++
	h.mu.Unlock()
}

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// Sum returns the sum of observations (0 for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// LatencyBucketsUs are the fixed buckets for planning/placement latencies
// in microseconds, spanning sub-10us steady-state maps to multi-second
// exhaustive sweeps.
var LatencyBucketsUs = []float64{
	10, 25, 50, 100, 250, 500,
	1_000, 2_500, 5_000, 10_000, 25_000, 50_000,
	100_000, 250_000, 500_000, 1_000_000, 5_000_000,
}

// StepBuckets are the fixed buckets for step-valued recovery quantities
// (detection latencies, replayed steps).
var StepBuckets = []float64{1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144}

// Counter returns (creating if needed) the named counter; nil registry
// returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge; nil registry returns
// a nil (no-op) gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram with the
// given ascending upper bounds; the bounds of the first creation win. A
// nil registry returns a nil (no-op) histogram.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{bounds: append([]float64(nil), bounds...)}
		h.counts = make([]atomic.Int64, len(h.bounds)+1)
		r.histograms[name] = h
	}
	return h
}

// BucketCount is one histogram bucket in a snapshot: the cumulative count
// of observations <= the upper bound UpperLe ("+Inf" for the overflow
// bucket, encoded as math.Inf(1) and rendered as the JSON string "+Inf").
type BucketCount struct {
	UpperLe float64 `json:"le"`
	Count   int64   `json:"count"`
}

// HistogramSnapshot is a histogram's frozen state.
type HistogramSnapshot struct {
	Buckets []BucketCount `json:"buckets"`
	Sum     float64       `json:"sum"`
	Count   int64         `json:"count"`
}

// MetricsSnapshot is the registry's frozen state, the "metrics" section of
// a runreport/v1 document.
type MetricsSnapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Infos      map[string]map[string]string `json:"infos,omitempty"`
}

// Snapshot freezes the registry (nil registry gives a nil snapshot).
func (r *Registry) Snapshot() *MetricsSnapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := &MetricsSnapshot{}
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.histograms) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.histograms))
		for name, h := range r.histograms {
			hs := HistogramSnapshot{Sum: h.Sum(), Count: h.Count()}
			cum := int64(0)
			for i := range h.counts {
				cum += h.counts[i].Load()
				le := math.Inf(1)
				if i < len(h.bounds) {
					le = h.bounds[i]
				}
				hs.Buckets = append(hs.Buckets, BucketCount{UpperLe: le, Count: cum})
			}
			s.Histograms[name] = hs
		}
	}
	if len(r.infos) > 0 {
		s.Infos = make(map[string]map[string]string, len(r.infos))
		for name, labels := range r.infos {
			copied := make(map[string]string, len(labels))
			for k, v := range labels {
				copied[k] = v
			}
			s.Infos[name] = copied
		}
	}
	return s
}

// MarshalJSON renders +Inf bucket bounds as the string "+Inf" (plain JSON
// has no infinity literal).
func (b BucketCount) MarshalJSON() ([]byte, error) {
	le := fmt.Sprintf("%g", b.UpperLe)
	if math.IsInf(b.UpperLe, 1) {
		le = `"+Inf"`
	}
	return []byte(fmt.Sprintf(`{"le":%s,"count":%d}`, le, b.Count)), nil
}

// UnmarshalJSON accepts both numeric bounds and the "+Inf" string.
func (b *BucketCount) UnmarshalJSON(data []byte) error {
	var raw struct {
		Le    any   `json:"le"`
		Count int64 `json:"count"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	switch v := raw.Le.(type) {
	case float64:
		b.UpperLe = v
	case string:
		if v != "+Inf" {
			return fmt.Errorf("obs: bad bucket bound %q", v)
		}
		b.UpperLe = math.Inf(1)
	default:
		return fmt.Errorf("obs: bad bucket bound %v", raw.Le)
	}
	b.Count = raw.Count
	return nil
}

// escapeLabelValue applies the Prometheus text-format escapes for label
// values: backslash, double quote, and line feed.
func escapeLabelValue(v string) string {
	return labelEscaper.Replace(v)
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// WritePrometheus renders the registry in the Prometheus text exposition
// format, instruments sorted by name. Info metrics render as constant-1
// gauges with their labels sorted by key.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	s := r.Snapshot()
	for _, name := range sortedKeys(s.Counters) {
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", name, name, s.Gauges[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Infos) {
		labels := s.Infos[name]
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s{", name, name); err != nil {
			return err
		}
		for i, k := range sortedKeys(labels) {
			sep := ","
			if i == 0 {
				sep = ""
			}
			if _, err := fmt.Fprintf(w, `%s%s="%s"`, sep, k, escapeLabelValue(labels[k])); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprint(w, "} 1\n"); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
			return err
		}
		for _, b := range h.Buckets {
			le := fmt.Sprintf("%g", b.UpperLe)
			if math.IsInf(b.UpperLe, 1) {
				le = "+Inf"
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, b.Count); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", name, h.Sum, name, h.Count); err != nil {
			return err
		}
	}
	return nil
}
