package obs

import (
	"bytes"
	"flag"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
)

func parseFlags(t *testing.T, args ...string) *CLIFlags {
	t.Helper()
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	f := RegisterFlags(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestCLIFlagsObserverTraceOutError(t *testing.T) {
	f := parseFlags(t, "-trace-out", filepath.Join(t.TempDir(), "no", "such", "dir", "t.jsonl"))
	if _, _, err := f.Observer(&bytes.Buffer{}); err == nil ||
		!strings.Contains(err.Error(), "-trace-out") {
		t.Fatalf("err = %v, want -trace-out failure", err)
	}
}

func TestCLIFlagsObserverListenError(t *testing.T) {
	f := parseFlags(t, "-listen", "127.0.0.1:99999")
	if _, _, err := f.Observer(&bytes.Buffer{}); err == nil ||
		!strings.Contains(err.Error(), "-listen") {
		t.Fatalf("err = %v, want -listen failure", err)
	}
}

func TestWriteReportErrorPaths(t *testing.T) {
	var nilFlags *CLIFlags
	if err := nilFlags.WriteReport(&RunReport{}); err != nil {
		t.Fatal("nil flags should be a no-op")
	}
	f := parseFlags(t, "-metrics-out", filepath.Join(t.TempDir(), "no", "such", "dir", "m.json"))
	o, closeObs, err := f.Observer(&bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.WriteReport(o.Report("x", nil)); err == nil {
		t.Fatal("WriteReport to an unwritable path should fail")
	}
	if err := closeObs(); err != nil {
		t.Fatal(err)
	}
	if err := closeObs(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestObserverDoubleClose(t *testing.T) {
	o := &Observer{Sink: NewMemorySink(), Metrics: NewRegistry()}
	if err := o.Close(); err != nil {
		t.Fatal(err)
	}
	if err := o.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	var nilObs *Observer
	if err := nilObs.Close(); err != nil {
		t.Fatal("nil observer Close should be nil")
	}
}

// TestCLIFlagsListenEndToEnd drives the full -listen path: registry plus
// ring wired in, pprof labels enabled, build info registered, server
// announced, events visible over HTTP, clean shutdown.
func TestCLIFlagsListenEndToEnd(t *testing.T) {
	f := parseFlags(t, "-listen", "127.0.0.1:0")
	if !f.Enabled() {
		t.Fatal("-listen alone should enable observability")
	}
	if f.ListenAddr() != "" {
		t.Fatal("ListenAddr before Observer")
	}
	var stderr bytes.Buffer
	o, closeObs, err := f.Observer(&stderr)
	if err != nil {
		t.Fatal(err)
	}
	addr := f.ListenAddr()
	if addr == "" {
		t.Fatal("no bound address")
	}
	if !strings.Contains(stderr.String(), "http://"+addr) {
		t.Fatalf("announcement missing: %q", stderr.String())
	}
	if !o.PprofLabeled() {
		t.Fatal("-listen should enable pprof labels")
	}

	end := o.StartSpan("place")
	o.Emit(SrcMap, "done", NoStep, F("np", 4))
	end()

	if code, body := get(t, "http://"+addr+"/metrics"); code != 200 ||
		!strings.Contains(body, "lama_build_info{") {
		t.Fatalf("metrics: %d %q", code, body)
	}
	if code, body := get(t, "http://"+addr+"/events?follow=0"); code != 200 ||
		!strings.Contains(body, `"event":"done"`) {
		t.Fatalf("events: %d %q", code, body)
	}
	if err := closeObs(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Fatal("server alive after close")
	}
}
