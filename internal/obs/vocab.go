package obs

import "sort"

// This file is the canonical observability vocabulary: every structured
// event the repository emits is a (source, name) pair drawn from the
// constants below, and every phase span label is one of the Span*
// constants (pipeline stage spans, which are named by the stage itself,
// are the single documented exception). The `obsvocab` analyzer in
// internal/analysis cross-checks the table statically: an Observer.Emit
// call with an unregistered or non-constant (source, name) pair fails
// `lamavet`, as does a table entry nothing emits. Grow the vocabulary by
// adding a constant AND a table row — never by passing a fresh string
// literal at an emission site. The `lamatrace summary` CLI cross-checks
// recorded traces against the same table dynamically, flagging any
// (source, name) pair a trace carries that the vocabulary does not.

// Event sources: the "src" key of every emitted event.
const (
	// SrcMap is the mapping engine (core.Mapper and the place.Run wrapper).
	SrcMap = "map"
	// SrcSweep is the layout / policy sweep drivers (core.SweepLayouts,
	// place.Sweep).
	SrcSweep = "sweep"
	// SrcPipeline is the composable post-pass pipeline (place.Pipeline).
	SrcPipeline = "pipeline"
	// SrcSupervise is the fault-tolerance supervisor (orte.Supervisor).
	SrcSupervise = "supervise"
	// SrcRM is the resource manager (rm.Realloc retry loop).
	SrcRM = "rm"
	// SrcTopogen is the topology generator CLI.
	SrcTopogen = "topogen"
	// SrcFaultAware is the fault-aware placement stage
	// (faultaware.Stage's critical-rank domain spread).
	SrcFaultAware = "faultaware"
	// SrcNetSim is the network-aware placement machinery (the netorder
	// node-ordering stage and its delta-J swap refinement).
	SrcNetSim = "netsim"
	// SrcEngine is the request-scoped placement engine (internal/engine:
	// snapshot registry, worker pool, placement cache, admission control).
	SrcEngine = "engine"
)

// Event names: the "event" key, scoped by source in the vocabulary table.
const (
	// EvDone closes a unit of work (a map, a sweep, a supervised run).
	EvDone = "done"
	// EvStall reports a mapping run that could not place every rank.
	EvStall = "stall"
	// EvVisit streams one visited coordinate from MapTraced.
	EvVisit = "visit"
	// EvStart opens a unit of work (a sweep, a supervised run).
	EvStart = "start"
	// EvLayout and EvLayoutFailed report one layout of a layout sweep.
	EvLayout       = "layout"
	EvLayoutFailed = "layout-failed"
	// EvJob and EvJobFailed report one job of a cross-policy sweep.
	EvJob       = "job"
	EvJobFailed = "job-failed"
	// EvStage reports one completed pipeline post-pass stage.
	EvStage = "stage"
	// EvNodeFailure and EvFailure are injected hardware/rank failures.
	EvNodeFailure = "node-failure"
	EvFailure     = "failure"
	// EvHeartbeatMiss and EvDetect are the detection pipeline: a missed
	// heartbeat, then the failure declared after the detection window.
	EvHeartbeatMiss = "heartbeat-miss"
	EvDetect        = "detect"
	// EvRealloc, EvRemap, EvRespawn, EvShrink, EvAbort, EvTeardown are the
	// supervisor's recovery actions.
	EvRealloc  = "realloc"
	EvRemap    = "remap"
	EvRespawn  = "respawn"
	EvShrink   = "shrink"
	EvAbort    = "abort"
	EvTeardown = "teardown"
	// EvReallocRetry is one backoff retry of rm.Realloc; EvReallocExhausted
	// is the give-up after the retry budget (the job gets no replacement).
	EvReallocRetry     = "realloc-retry"
	EvReallocExhausted = "realloc-exhausted"
	// EvSparePlan reports one fault-model-steered spare/replacement choice
	// by the resource manager (domain-diverse, topology-near selection).
	EvSparePlan = "spare-plan"
	// EvGenerate is topogen's cluster construction event.
	EvGenerate = "generate"
	// EvSpread reports one fault-aware critical-rank spread pass: domains
	// covered before/after and the locality/J cost of the swaps.
	EvSpread = "spread"
	// EvGrow is the supervisor's elastic expand operation (EvShrink, shared
	// with the failure-shrink policy, is its release counterpart).
	EvGrow = "grow"
	// EvOrder reports one netorder node-ordering pass: the network-aware
	// node permutation and the J objective before/after.
	EvOrder = "order"
	// EvRefine reports one delta-J pairwise-swap refinement pass: swaps
	// applied, sweeps run, and the J objective before/after.
	EvRefine = "refine"
	// EvRegister reports a cluster registered with the placement engine.
	EvRegister = "register"
	// EvSwap reports one atomic snapshot swap on the engine (a failure or
	// grow event), with the epochs and the count of cache entries that
	// went stale.
	EvSwap = "swap"
	// EvShed reports one placement request refused by admission control
	// (queue full or deadline exceeded while queued).
	EvShed = "shed"
)

// Phase span names (PhaseTimer labels). Pipeline stages span under their
// own StageName (e.g. the reorder pass's SpanReorder).
const (
	// SpanPrune and SpanBuildShape are the mapper's one-off build phases.
	SpanPrune      = "prune"
	SpanBuildShape = "build-shape"
	// SpanSweep is one resource-space traversal inside a mapping run.
	SpanSweep = "sweep"
	// SpanPlace envelops one placement run, whichever policy produced it.
	SpanPlace = "place"
	// SpanBind and SpanLaunch are the downstream pipeline steps.
	SpanBind   = "bind"
	SpanLaunch = "launch"
	// SpanReorder is the communicator-reorder post-pass stage.
	SpanReorder = "reorder"
	// SpanFaultAware is the fault-aware critical-rank spread post-pass
	// stage.
	SpanFaultAware = "faultaware"
	// SpanGenerate is topogen's cluster construction phase.
	SpanGenerate = "generate"
	// SpanNetOrder is the network-aware node-ordering post-pass stage.
	SpanNetOrder = "netorder"
	// SpanNetRefine is the delta-J pairwise-swap refinement post-pass
	// stage.
	SpanNetRefine = "netrefine"
)

// VocabEntry is one registered (source, name) event pair.
type VocabEntry struct {
	Source string
	Name   string
}

// vocab is the canonical emission set. Ordered by source, then by the
// rough lifecycle order within the source, for readability; Vocabulary
// returns a sorted copy.
var vocab = []VocabEntry{
	{SrcMap, EvDone},
	{SrcMap, EvStall},
	{SrcMap, EvVisit},

	{SrcSweep, EvStart},
	{SrcSweep, EvLayout},
	{SrcSweep, EvLayoutFailed},
	{SrcSweep, EvJob},
	{SrcSweep, EvJobFailed},
	{SrcSweep, EvDone},

	{SrcPipeline, EvStage},

	{SrcSupervise, EvStart},
	{SrcSupervise, EvNodeFailure},
	{SrcSupervise, EvFailure},
	{SrcSupervise, EvHeartbeatMiss},
	{SrcSupervise, EvDetect},
	{SrcSupervise, EvRealloc},
	{SrcSupervise, EvRemap},
	{SrcSupervise, EvGrow},
	{SrcSupervise, EvRespawn},
	{SrcSupervise, EvShrink},
	{SrcSupervise, EvAbort},
	{SrcSupervise, EvTeardown},
	{SrcSupervise, EvDone},

	{SrcRM, EvReallocRetry},
	{SrcRM, EvReallocExhausted},
	{SrcRM, EvSparePlan},

	{SrcFaultAware, EvSpread},

	{SrcNetSim, EvOrder},
	{SrcNetSim, EvRefine},

	{SrcTopogen, EvGenerate},

	{SrcEngine, EvRegister},
	{SrcEngine, EvSwap},
	{SrcEngine, EvShed},
}

// spanNames is the registered phase-span label set.
var spanNames = []string{
	SpanPrune, SpanBuildShape, SpanSweep, SpanPlace,
	SpanBind, SpanLaunch, SpanReorder, SpanFaultAware, SpanGenerate,
	SpanNetOrder, SpanNetRefine,
}

// Vocabulary returns the registered (source, name) pairs sorted by
// source, then name.
func Vocabulary() []VocabEntry {
	out := append([]VocabEntry(nil), vocab...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Source != out[j].Source {
			return out[i].Source < out[j].Source
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// VocabRegistered reports whether (source, name) is a registered event
// pair.
func VocabRegistered(source, name string) bool {
	for _, e := range vocab {
		if e.Source == source && e.Name == name {
			return true
		}
	}
	return false
}

// SpanNames returns the registered phase-span labels, sorted.
func SpanNames() []string {
	out := append([]string(nil), spanNames...)
	sort.Strings(out)
	return out
}

// SpanRegistered reports whether name is a registered phase-span label.
func SpanRegistered(name string) bool {
	for _, s := range spanNames {
		if s == name {
			return true
		}
	}
	return false
}
