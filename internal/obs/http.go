package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	nhpprof "net/http/pprof"
	"strconv"
	"time"
)

// Server serves an Observer's telemetry live over HTTP while a run
// executes — the surface the lamad placement daemon will mount, already
// shared by every CLI through the -listen flag:
//
//	/metrics                 Prometheus text exposition of the Registry
//	/metrics.json            the Registry snapshot as JSON
//	/healthz                 liveness: "ok", uptime, event totals
//	/events                  streaming JSONL tail of the event ring
//	                         (?replay=N newest events first, ?follow=0
//	                         to dump the tail and close)
//	/debug/pprof/*           the standard Go profiling endpoints; with
//	                         profiling labels on (see PhaseTimer), CPU
//	                         samples carry lama_phase / lama_policy
//
// The zero endpoints degrade gracefully: a nil Registry serves empty
// expositions and a nil RingSink serves an empty event stream, so the
// server can front any subset of an Observer's facilities.
type Server struct {
	// Registry is the metrics registry served by /metrics and
	// /metrics.json (nil serves empty documents).
	Registry *Registry
	// Ring is the event buffer served by /events (nil serves none).
	Ring *RingSink
	// Tool names the serving binary in /healthz ("" omits it).
	Tool string

	started time.Time
	srv     *http.Server
	ln      net.Listener
}

// NewServer builds a server over the given registry and event ring.
func NewServer(reg *Registry, ring *RingSink) *Server {
	return &Server{Registry: reg, Ring: ring, started: time.Now()}
}

// Handler returns the server's routing table; useful for mounting the
// telemetry surface under an existing mux (lamad) or an httptest server.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/metrics.json", s.handleMetricsJSON)
	mux.HandleFunc("/events", s.handleEvents)
	mux.HandleFunc("/debug/pprof/", nhpprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", nhpprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", nhpprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", nhpprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", nhpprof.Trace)
	return mux
}

// Start binds addr (host:port; port 0 picks a free one) and serves in a
// background goroutine, returning the bound address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("obs: -listen %s: %v", addr, err)
	}
	s.ln = ln
	s.srv = &http.Server{Handler: s.Handler()}
	//lama:join-ok Serve returns when Close tears down the listener; Close is the join
	go s.srv.Serve(ln)
	return ln.Addr().String(), nil
}

// Addr returns the bound address after Start ("" before).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the listener and every in-flight connection (including
// /events streams and running profiles). Safe to call without Start.
func (s *Server) Close() error {
	if s.srv == nil {
		return nil
	}
	return s.srv.Close()
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "lama telemetry plane\n\n")
	for _, line := range []string{
		"/metrics          Prometheus text exposition",
		"/metrics.json     metrics snapshot as JSON",
		"/healthz          liveness and event totals",
		"/events           streaming JSONL event tail (?replay=N, ?follow=0)",
		"/debug/pprof/     Go profiling endpoints (lama_phase / lama_policy labels)",
	} {
		fmt.Fprintln(w, line)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
	if s.Tool != "" {
		fmt.Fprintf(w, "tool %s\n", s.Tool)
	}
	fmt.Fprintf(w, "uptime %s\n", time.Since(s.started).Round(time.Millisecond))
	if s.Ring != nil {
		fmt.Fprintf(w, "events %d (dropped %d)\n", s.Ring.Total(), s.Ring.Dropped())
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.Registry.WritePrometheus(w) // best effort: client may be gone
}

func (s *Server) handleMetricsJSON(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	snap := s.Registry.Snapshot()
	if snap == nil {
		snap = &MetricsSnapshot{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(snap) // best effort: client may be gone
}

// handleEvents streams the event ring as JSONL: the newest ?replay=N
// buffered events (default 64, 0 for none), then — unless ?follow=0 —
// every later event until the client disconnects or the run ends. A
// client that stalls longer than its subscription buffer loses events
// (counted by the RingSink) rather than stalling the emitters.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	if s.Ring == nil {
		http.Error(w, "no event ring attached", http.StatusNotFound)
		return
	}
	replay := 64
	if v := r.URL.Query().Get("replay"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			http.Error(w, "bad replay count", http.StatusBadRequest)
			return
		}
		replay = n
	}
	follow := true
	if v := r.URL.Query().Get("follow"); v == "0" || v == "false" {
		follow = false
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	writeEvent := func(e Event) bool {
		data, err := json.Marshal(e)
		if err != nil {
			return false
		}
		if _, err := w.Write(append(data, '\n')); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}

	if !follow {
		for _, e := range s.Ring.Tail(replay) {
			if !writeEvent(e) {
				return
			}
		}
		return
	}
	// Commit the response before the first event: a follower with an empty
	// ring would otherwise never see headers and block on connect.
	w.WriteHeader(http.StatusOK)
	if flusher != nil {
		flusher.Flush()
	}
	tail, sub := s.Ring.Subscribe(replay, 256)
	if sub == nil { // sink already closed: serve the nothing we have
		return
	}
	defer s.Ring.Unsubscribe(sub)
	for _, e := range tail {
		if !writeEvent(e) {
			return
		}
	}
	ctx := r.Context()
	for {
		select {
		case <-ctx.Done():
			return
		case e, ok := <-sub.C:
			if !ok {
				return
			}
			if !writeEvent(e) {
				return
			}
		}
	}
}
