package coll

import (
	"math/rand"
	"testing"
	"testing/quick"

	"lama/internal/cluster"
	"lama/internal/core"
	"lama/internal/hw"
	"lama/internal/netsim"
)

func setup(t *testing.T, layout string, nodes, np int) (*cluster.Cluster, *core.Map, *netsim.Model) {
	t.Helper()
	sp, _ := hw.Preset("nehalem-ep")
	c := cluster.Homogeneous(nodes, sp)
	mapper, err := core.NewMapper(c, core.MustParseLayout(layout), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := mapper.Map(np)
	if err != nil {
		t.Fatal(err)
	}
	return c, m, netsim.NewModel(netsim.NewFlat())
}

func TestBroadcastRounds(t *testing.T) {
	c, m, mo := setup(t, "csbnh", 2, 16)
	res, err := Run(Broadcast, c, m, mo, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 4 { // log2(16)
		t.Fatalf("rounds = %d, want 4", res.Rounds)
	}
	if res.Messages != 15 { // binomial tree sends np-1 messages
		t.Fatalf("messages = %d, want 15", res.Messages)
	}
	if res.TimeUs <= 0 {
		t.Fatal("no time")
	}
}

func TestBroadcastNonPowerOfTwo(t *testing.T) {
	c, m, mo := setup(t, "csbnh", 2, 11)
	res, err := Run(Broadcast, c, m, mo, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != 10 {
		t.Fatalf("messages = %d, want 10", res.Messages)
	}
	if res.Rounds != 4 { // ceil(log2 11)
		t.Fatalf("rounds = %d, want 4", res.Rounds)
	}
}

func TestAllreduceRDRounds(t *testing.T) {
	c, m, mo := setup(t, "csbnh", 2, 16)
	res, err := Run(AllreduceRD, c, m, mo, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 4 { // log2(16), no fold rounds
		t.Fatalf("rounds = %d, want 4", res.Rounds)
	}
	if res.Messages != 16*4 {
		t.Fatalf("messages = %d, want 64", res.Messages)
	}
	// Non-power-of-two adds the fold rounds.
	_, m2, _ := setup(t, "csbnh", 2, 10)
	res2, err := Run(AllreduceRD, c, m2, mo, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Rounds != 3+2 { // log2(8) + fold-in + fold-out
		t.Fatalf("rounds = %d, want 5", res2.Rounds)
	}
}

func TestAllreduceRingRounds(t *testing.T) {
	c, m, mo := setup(t, "csbnh", 2, 8)
	res, err := Run(AllreduceRing, c, m, mo, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 14 { // 2*(8-1)
		t.Fatalf("rounds = %d", res.Rounds)
	}
	// Single rank: no communication.
	_, m1, _ := setup(t, "csbnh", 2, 1)
	res1, err := Run(AllreduceRing, c, m1, mo, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Rounds != 0 || res1.TimeUs != 0 {
		t.Fatalf("single-rank allreduce should be free: %+v", res1)
	}
}

func TestAlltoallRounds(t *testing.T) {
	c, m, mo := setup(t, "csbnh", 2, 8)
	res, err := Run(Alltoall, c, m, mo, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 7 || res.Messages != 8*7 {
		t.Fatalf("rounds = %d messages = %d", res.Rounds, res.Messages)
	}
	// Non-power-of-two path.
	_, m2, _ := setup(t, "csbnh", 2, 6)
	res2, err := Run(Alltoall, c, m2, mo, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Rounds != 5 || res2.Messages != 6*5 {
		t.Fatalf("rounds = %d messages = %d", res2.Rounds, res2.Messages)
	}
}

func TestBarrier(t *testing.T) {
	c, m, mo := setup(t, "csbnh", 2, 16)
	res, err := Run(Barrier, c, m, mo, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 4 {
		t.Fatalf("rounds = %d", res.Rounds)
	}
	if res.TimeUs <= 0 {
		t.Fatal("latency must accumulate")
	}
}

// TestLocalityAffectsBroadcast: with 8 ranks, packing keeps every
// binomial-tree round on one node, while a cyclic placement puts a
// cross-node edge in every round — the rounds are bounded by their
// slowest exchange, so the packed broadcast must win clearly.
func TestLocalityAffectsBroadcast(t *testing.T) {
	sp, _ := hw.Preset("nehalem-ep")
	c := cluster.Homogeneous(2, sp)
	mo := netsim.NewModel(netsim.NewFlat())

	pack, _ := core.NewMapper(c, core.MustParseLayout("csbnh"), core.Options{})
	mp, err := pack.Map(8) // all on node0
	if err != nil {
		t.Fatal(err)
	}
	cyc, _ := core.NewMapper(c, core.MustParseLayout("ncsbh"), core.Options{})
	mc, err := cyc.Map(8) // alternating nodes
	if err != nil {
		t.Fatal(err)
	}
	// Barrier is excluded: zero-byte rounds are latency-bound and the
	// dissemination wraparound makes either placement defensible there.
	for _, op := range []Op{Broadcast, AllreduceRD, AllreduceRing} {
		rp, err := Run(op, c, mp, mo, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		rc, err := Run(op, c, mc, mo, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		if rp.TimeUs >= rc.TimeUs {
			t.Fatalf("%s: packed %v should beat cyclic %v", op, rp.TimeUs, rc.TimeUs)
		}
	}
}

func TestRunErrors(t *testing.T) {
	c, m, mo := setup(t, "csbnh", 2, 4)
	if _, err := Run(Op(99), c, m, mo, 1); err == nil {
		t.Fatal("unknown op")
	}
	if _, err := Run(Broadcast, c, &core.Map{}, mo, 1); err == nil {
		t.Fatal("empty map")
	}
	if _, err := Run(Broadcast, c, m, mo, -1); err == nil {
		t.Fatal("negative bytes")
	}
}

func TestOpStrings(t *testing.T) {
	names := map[Op]string{
		Broadcast: "broadcast", AllreduceRD: "allreduce-rd",
		AllreduceRing: "allreduce-ring", Alltoall: "alltoall", Barrier: "barrier",
	}
	for op, want := range names {
		if op.String() != want {
			t.Errorf("%d -> %q", op, op.String())
		}
	}
	if Op(42).String() != "op(42)" {
		t.Fatal("unknown op name")
	}
}

func TestQuickCollectiveInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		sp, _ := hw.Preset("fig2")
		nodes := 1 + r.Intn(3)
		c := cluster.Homogeneous(nodes, sp)
		np := 2 + r.Intn(nodes*12-1)
		mapper, err := core.NewMapper(c, core.MustParseLayout("csbnh"), core.Options{})
		if err != nil {
			return false
		}
		m, err := mapper.Map(np)
		if err != nil {
			return false
		}
		mo := netsim.NewModel(netsim.NewFlat())
		// Broadcast: np-1 messages, ceil(log2 np) rounds, positive time.
		b, err := Run(Broadcast, c, m, mo, 1024)
		if err != nil || b.Messages != np-1 {
			return false
		}
		rounds := 0
		for span := 1; span < np; span *= 2 {
			rounds++
		}
		if b.Rounds != rounds || b.TimeUs <= 0 {
			return false
		}
		// Hierarchical broadcast also delivers exactly np-1 receptions.
		h, err := RunHierarchical(Broadcast, c, m, mo, 1024)
		if err != nil || h.Messages != np-1 {
			return false
		}
		// Bigger messages cost at least as much.
		b2, err := Run(Broadcast, c, m, mo, 1<<20)
		return err == nil && b2.TimeUs >= b.TimeUs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
