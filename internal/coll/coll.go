// Package coll models the completion time of MPI collective operations
// under a mapping: the classic algorithms (binomial-tree broadcast,
// recursive-doubling and ring allreduce, pairwise-exchange all-to-all,
// dissemination barrier) are executed round by round over the netsim cost
// model, so that a collective's cost depends on where each rank actually
// sits — which is precisely why process placement matters to MPI
// applications (paper §I).
//
// Each algorithm returns the simulated completion time: the sum over
// rounds of the slowest exchange in that round (collectives synchronize
// between rounds in these models).
package coll

import (
	"fmt"

	"lama/internal/cluster"
	"lama/internal/core"
	"lama/internal/netsim"
)

// Op identifies a collective operation.
type Op int

const (
	// Broadcast is a binomial-tree broadcast from rank 0.
	Broadcast Op = iota
	// AllreduceRD is a recursive-doubling allreduce (power-of-two ranks;
	// others use the nearest lower power with a fold-in pre-round).
	AllreduceRD
	// AllreduceRing is a ring (bandwidth-optimal) allreduce.
	AllreduceRing
	// Alltoall is a pairwise-exchange all-to-all.
	Alltoall
	// Barrier is a dissemination barrier (zero-byte messages).
	Barrier
)

// String names the op.
func (o Op) String() string {
	switch o {
	case Broadcast:
		return "broadcast"
	case AllreduceRD:
		return "allreduce-rd"
	case AllreduceRing:
		return "allreduce-ring"
	case Alltoall:
		return "alltoall"
	case Barrier:
		return "barrier"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// Result describes one simulated collective.
type Result struct {
	// TimeUs is the completion time in µs.
	TimeUs float64
	// Rounds is the number of synchronized communication rounds.
	Rounds int
	// Messages is the total number of point-to-point messages.
	Messages int
}

// Run simulates the collective over np = m.NumRanks() ranks moving `bytes`
// per rank (the message size for broadcast; the vector size for
// reductions; the per-partner block for all-to-all; ignored for barrier).
func Run(op Op, c *cluster.Cluster, m *core.Map, model *netsim.Model, bytes float64) (*Result, error) {
	np := m.NumRanks()
	if np == 0 {
		return nil, fmt.Errorf("coll: empty map")
	}
	if bytes < 0 {
		return nil, fmt.Errorf("coll: negative message size")
	}
	sim := &roundSim{c: c, m: m, model: model}
	switch op {
	case Broadcast:
		return sim.broadcast(bytes)
	case AllreduceRD:
		return sim.allreduceRD(bytes)
	case AllreduceRing:
		return sim.allreduceRing(bytes)
	case Alltoall:
		return sim.alltoall(bytes)
	case Barrier:
		return sim.barrier()
	default:
		return nil, fmt.Errorf("coll: unknown op %v", op)
	}
}

// roundSim accumulates synchronized rounds of point-to-point exchanges.
type roundSim struct {
	c     *cluster.Cluster
	m     *core.Map
	model *netsim.Model

	res Result
	err error
}

// round executes one synchronized round: pairs is a list of (src, dst,
// bytes) exchanges that proceed in parallel; the round costs as much as
// its slowest exchange.
func (s *roundSim) round(pairs [][3]float64) {
	if s.err != nil || len(pairs) == 0 {
		return
	}
	worst := 0.0
	for _, p := range pairs {
		cost, err := s.model.PairCost(s.c, s.m, int(p[0]), int(p[1]), p[2])
		if err != nil {
			s.err = err
			return
		}
		if cost > worst {
			worst = cost
		}
		s.res.Messages++
	}
	s.res.TimeUs += worst
	s.res.Rounds++
}

func (s *roundSim) finish() (*Result, error) {
	if s.err != nil {
		return nil, s.err
	}
	r := s.res
	return &r, nil
}

// broadcast: binomial tree from rank 0; in round k, ranks < 2^k forward
// to rank + 2^k.
func (s *roundSim) broadcast(bytes float64) (*Result, error) {
	np := s.m.NumRanks()
	for span := 1; span < np; span *= 2 {
		var pairs [][3]float64
		for src := 0; src < span && src+span < np; src++ {
			pairs = append(pairs, [3]float64{float64(src), float64(src + span), bytes})
		}
		s.round(pairs)
	}
	return s.finish()
}

// allreduceRD: recursive doubling over the largest power-of-two group,
// with fold-in/fold-out rounds for the remainder.
func (s *roundSim) allreduceRD(bytes float64) (*Result, error) {
	np := s.m.NumRanks()
	pow2 := 1
	for pow2*2 <= np {
		pow2 *= 2
	}
	rem := np - pow2
	// Fold in: ranks pow2..np-1 send their vector to rank-pow2.
	var fold [][3]float64
	for r := pow2; r < np; r++ {
		fold = append(fold, [3]float64{float64(r), float64(r - pow2), bytes})
	}
	s.round(fold)
	// Recursive doubling among 0..pow2-1: exchange with partner r^mask.
	for mask := 1; mask < pow2; mask *= 2 {
		var pairs [][3]float64
		for r := 0; r < pow2; r++ {
			partner := r ^ mask
			if r < partner {
				// Bidirectional exchange: two messages.
				pairs = append(pairs,
					[3]float64{float64(r), float64(partner), bytes},
					[3]float64{float64(partner), float64(r), bytes})
			}
		}
		s.round(pairs)
	}
	// Fold out: results back to the remainder ranks.
	var out [][3]float64
	for r := 0; r < rem; r++ {
		out = append(out, [3]float64{float64(r), float64(r + pow2), bytes})
	}
	s.round(out)
	return s.finish()
}

// allreduceRing: 2(np-1) rounds of neighbor exchanges moving 1/np of the
// vector each (reduce-scatter then allgather).
func (s *roundSim) allreduceRing(bytes float64) (*Result, error) {
	np := s.m.NumRanks()
	if np == 1 {
		return s.finish()
	}
	chunk := bytes / float64(np)
	for phase := 0; phase < 2*(np-1); phase++ {
		var pairs [][3]float64
		for r := 0; r < np; r++ {
			pairs = append(pairs, [3]float64{float64(r), float64((r + 1) % np), chunk})
		}
		s.round(pairs)
	}
	return s.finish()
}

// alltoall: np-1 pairwise-exchange rounds; in round k, rank r exchanges
// with rank r^k when that is a valid distinct rank (power-of-two np), or
// (r+k) mod np otherwise.
func (s *roundSim) alltoall(bytes float64) (*Result, error) {
	np := s.m.NumRanks()
	isPow2 := np&(np-1) == 0
	for k := 1; k < np; k++ {
		var pairs [][3]float64
		for r := 0; r < np; r++ {
			var partner int
			if isPow2 {
				partner = r ^ k
			} else {
				partner = (r + k) % np
			}
			if partner != r {
				pairs = append(pairs, [3]float64{float64(r), float64(partner), bytes})
			}
		}
		s.round(pairs)
	}
	return s.finish()
}

// barrier: dissemination barrier with ceil(log2 np) rounds of zero-byte
// notifications.
func (s *roundSim) barrier() (*Result, error) {
	np := s.m.NumRanks()
	for span := 1; span < np; span *= 2 {
		var pairs [][3]float64
		for r := 0; r < np; r++ {
			pairs = append(pairs, [3]float64{float64(r), float64((r + span) % np), 0})
		}
		s.round(pairs)
	}
	return s.finish()
}
