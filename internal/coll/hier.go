package coll

import (
	"fmt"
	"sort"

	"lama/internal/cluster"
	"lama/internal/core"
	"lama/internal/netsim"
)

// RunHierarchical simulates the hierarchy-aware (two-level, node-leader)
// variant of a collective: intra-node traffic is funneled through one
// leader rank per node, only leaders talk across the network, and the
// result fans back out locally. This is the standard optimization for
// multi-core clusters and the natural companion of locality-aware mapping:
// its benefit is largest exactly when a mapping co-locates many ranks.
// Supported ops: Broadcast and AllreduceRD; others fall back to Run.
func RunHierarchical(op Op, c *cluster.Cluster, m *core.Map, model *netsim.Model, bytes float64) (*Result, error) {
	if m.NumRanks() == 0 {
		return nil, fmt.Errorf("coll: empty map")
	}
	if bytes < 0 {
		return nil, fmt.Errorf("coll: negative message size")
	}
	switch op {
	case Broadcast, AllreduceRD:
	default:
		return Run(op, c, m, model, bytes)
	}

	// Group ranks by node; the leader is each node's lowest rank.
	perNode := map[int][]int{}
	for i := range m.Placements {
		p := &m.Placements[i]
		perNode[p.Node] = append(perNode[p.Node], p.Rank)
	}
	var leaders []int
	local := map[int][]int{} // leader -> followers (excluding leader)
	for _, ranks := range perNode {
		sort.Ints(ranks)
		leader := ranks[0]
		leaders = append(leaders, leader)
		local[leader] = ranks[1:]
	}
	sort.Ints(leaders)

	sim := &roundSim{c: c, m: m, model: model}
	switch op {
	case Broadcast:
		hierBroadcast(sim, leaders, local, bytes)
	case AllreduceRD:
		hierReduceToLeaders(sim, local, bytes)
		leaderAllreduceRD(sim, leaders, bytes)
		hierFanOut(sim, leaders, local, bytes)
	}
	return sim.finish()
}

// hierBroadcast: rank 0 hands off to its leader if needed, leaders run a
// binomial tree among themselves, then every leader fans out locally (all
// nodes in parallel).
func hierBroadcast(s *roundSim, leaders []int, local map[int][]int, bytes float64) {
	rootLeader := leaderOf(s, leaders, local, 0)
	if rootLeader != 0 {
		s.round([][3]float64{{0, float64(rootLeader), bytes}})
	}
	// Order leaders with the root's leader first.
	ordered := append([]int{rootLeader}, exclude(leaders, rootLeader)...)
	for span := 1; span < len(ordered); span *= 2 {
		var pairs [][3]float64
		for src := 0; src < span && src+span < len(ordered); src++ {
			pairs = append(pairs, [3]float64{float64(ordered[src]), float64(ordered[src+span]), bytes})
		}
		s.round(pairs)
	}
	hierFanOut(s, leaders, local, bytes)
}

// hierFanOut: every leader binomial-broadcasts to its local followers; all
// nodes proceed in parallel, so the number of rounds is set by the node
// with the most local ranks.
func hierFanOut(s *roundSim, leaders []int, local map[int][]int, bytes float64) {
	maxLocal := 0
	for _, f := range local {
		if len(f) > maxLocal {
			maxLocal = len(f)
		}
	}
	for span := 1; span < maxLocal+1; span *= 2 {
		var pairs [][3]float64
		for _, leader := range leaders {
			group := append([]int{leader}, local[leader]...)
			for src := 0; src < span && src+span < len(group); src++ {
				pairs = append(pairs, [3]float64{float64(group[src]), float64(group[src+span]), bytes})
			}
		}
		s.round(pairs)
	}
}

// hierReduceToLeaders is the mirror of hierFanOut: local ranks fold their
// vectors into the leader, deepest pairs first.
func hierReduceToLeaders(s *roundSim, local map[int][]int, bytes float64) {
	maxLocal := 0
	for _, f := range local {
		if len(f) > maxLocal {
			maxLocal = len(f)
		}
	}
	spans := []int{}
	for span := 1; span < maxLocal+1; span *= 2 {
		spans = append(spans, span)
	}
	for i := len(spans) - 1; i >= 0; i-- {
		span := spans[i]
		var pairs [][3]float64
		for leader, followers := range local {
			group := append([]int{leader}, followers...)
			for src := 0; src < span && src+span < len(group); src++ {
				pairs = append(pairs, [3]float64{float64(group[src+span]), float64(group[src]), bytes})
			}
		}
		s.round(pairs)
	}
}

// leaderAllreduceRD: recursive doubling among leaders with fold rounds for
// the non-power-of-two remainder.
func leaderAllreduceRD(s *roundSim, leaders []int, bytes float64) {
	n := len(leaders)
	pow2 := 1
	for pow2*2 <= n {
		pow2 *= 2
	}
	rem := n - pow2
	var fold [][3]float64
	for i := pow2; i < n; i++ {
		fold = append(fold, [3]float64{float64(leaders[i]), float64(leaders[i-pow2]), bytes})
	}
	s.round(fold)
	for mask := 1; mask < pow2; mask *= 2 {
		var pairs [][3]float64
		for i := 0; i < pow2; i++ {
			j := i ^ mask
			if i < j {
				pairs = append(pairs,
					[3]float64{float64(leaders[i]), float64(leaders[j]), bytes},
					[3]float64{float64(leaders[j]), float64(leaders[i]), bytes})
			}
		}
		s.round(pairs)
	}
	var out [][3]float64
	for i := 0; i < rem; i++ {
		out = append(out, [3]float64{float64(leaders[i]), float64(leaders[i+pow2]), bytes})
	}
	s.round(out)
}

// leaderOf finds the leader of the node hosting the given rank.
func leaderOf(s *roundSim, leaders []int, local map[int][]int, rank int) int {
	for _, leader := range leaders {
		if leader == rank {
			return leader
		}
		for _, f := range local[leader] {
			if f == rank {
				return leader
			}
		}
	}
	return leaders[0]
}

// exclude returns xs without v.
func exclude(xs []int, v int) []int {
	out := make([]int, 0, len(xs))
	for _, x := range xs {
		if x != v {
			out = append(out, x)
		}
	}
	return out
}
