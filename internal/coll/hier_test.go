package coll

import (
	"testing"

	"lama/internal/cluster"
	"lama/internal/core"
	"lama/internal/hw"
	"lama/internal/netsim"
)

func TestHierBroadcastMessageCount(t *testing.T) {
	c, m, mo := setup(t, "ncsbh", 4, 32) // 8 ranks per node, rank 0 is node0's leader
	res, err := RunHierarchical(Broadcast, c, m, mo, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	// Every rank except the root receives exactly once: 31 messages.
	if res.Messages != 31 {
		t.Fatalf("messages = %d, want 31", res.Messages)
	}
	if res.TimeUs <= 0 || res.Rounds == 0 {
		t.Fatalf("res = %+v", res)
	}
}

// TestHierBeatsFlatOnCyclicMapping: with a cyclic mapping on a non-power-
// of-two node count, a flat binomial tree crosses the network in every
// round (span k and node count 6 never align); the hierarchical version
// pays the network only in the short leader phase. (On power-of-two node
// counts the flat tree's large spans happen to stay on-node and the two
// legitimately tie — see the paper's point that these interactions are
// subtle enough to need experimentation.)
func TestHierBeatsFlatOnCyclicMapping(t *testing.T) {
	c, m, mo := setup(t, "ncsbh", 6, 60)
	flat, err := Run(Broadcast, c, m, mo, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	hier, err := RunHierarchical(Broadcast, c, m, mo, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if hier.TimeUs >= flat.TimeUs {
		t.Fatalf("hierarchical %v should beat flat %v on cyclic mapping",
			hier.TimeUs, flat.TimeUs)
	}

	fa, err := Run(AllreduceRD, c, m, mo, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	ha, err := RunHierarchical(AllreduceRD, c, m, mo, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if ha.TimeUs >= fa.TimeUs {
		t.Fatalf("hierarchical allreduce %v should beat flat %v", ha.TimeUs, fa.TimeUs)
	}
}

func TestHierRootNotLeader(t *testing.T) {
	// Map with csbnh on 2 nodes, then check the case where rank 0 is the
	// leader (it is, being the lowest on node0) and a synthetic case where
	// it is not: put rank 0 on node1 via a cyclic layout starting there.
	sp, _ := hw.Preset("nehalem-ep")
	c := cluster.Homogeneous(2, sp)
	mapper, _ := core.NewMapper(c, core.MustParseLayout("ncsbh"), core.Options{
		IterOrder: map[hw.Level]core.IterOrder{hw.LevelMachine: core.ReverseOrder},
	})
	m, err := mapper.Map(8)
	if err != nil {
		t.Fatal(err)
	}
	// Rank 0 is on node 1 now; node0's leader is rank 1.
	if m.Placements[0].Node != 1 {
		t.Fatal("precondition: rank 0 should be on node 1")
	}
	mo := netsim.NewModel(netsim.NewFlat())
	res, err := RunHierarchical(Broadcast, c, m, mo, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != 7 {
		t.Fatalf("messages = %d, want 7", res.Messages)
	}
}

func TestHierFallbackForOtherOps(t *testing.T) {
	c, m, mo := setup(t, "csbnh", 2, 8)
	flat, err := Run(Alltoall, c, m, mo, 1024)
	if err != nil {
		t.Fatal(err)
	}
	hier, err := RunHierarchical(Alltoall, c, m, mo, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if flat.TimeUs != hier.TimeUs || flat.Messages != hier.Messages {
		t.Fatal("fallback should match flat implementation")
	}
}

func TestHierSingleNode(t *testing.T) {
	c, m, mo := setup(t, "csbnh", 2, 8) // all 8 on node0
	res, err := RunHierarchical(Broadcast, c, m, mo, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != 7 {
		t.Fatalf("messages = %d", res.Messages)
	}
	resA, err := RunHierarchical(AllreduceRD, c, m, mo, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if resA.TimeUs <= 0 {
		t.Fatal("no time")
	}
}

func TestHierErrors(t *testing.T) {
	c, m, mo := setup(t, "csbnh", 2, 4)
	if _, err := RunHierarchical(Broadcast, c, &core.Map{}, mo, 1); err == nil {
		t.Fatal("empty map")
	}
	if _, err := RunHierarchical(Broadcast, c, m, mo, -1); err == nil {
		t.Fatal("negative bytes")
	}
}
