package msgsim

import (
	"math"
	"testing"

	"lama/internal/cluster"
	"lama/internal/commpat"
	"lama/internal/core"
	"lama/internal/hw"
	"lama/internal/netsim"
	"lama/internal/torus"
)

func setup(t *testing.T, layout string, nodes, np int) (*cluster.Cluster, *core.Map, *netsim.Model) {
	t.Helper()
	sp, _ := hw.Preset("nehalem-ep")
	c := cluster.Homogeneous(nodes, sp)
	mapper, err := core.NewMapper(c, core.MustParseLayout(layout), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := mapper.Map(np)
	if err != nil {
		t.Fatal(err)
	}
	return c, m, netsim.NewModel(netsim.NewFlat())
}

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSingleMessageMatchesAnalytic(t *testing.T) {
	c, m, mo := setup(t, "ncsbh", 2, 4)
	// Rank 0 on node0, rank 1 on node1: one uncontended inter-node flow.
	msgs := []Message{{Src: 0, Dst: 1, Bytes: 1 << 20}}
	res, err := Run(c, m, mo, msgs)
	if err != nil {
		t.Fatal(err)
	}
	want, err := mo.PairCost(c, m, 0, 1, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(res.Makespan, want, 0.01) {
		t.Fatalf("makespan = %v, analytic = %v", res.Makespan, want)
	}
	if res.Events == 0 || len(res.Outcomes) != 1 {
		t.Fatalf("res = %+v", res)
	}
}

func TestContentionHalvesRates(t *testing.T) {
	c, m, mo := setup(t, "ncsbh", 2, 4)
	// Two flows out of node0's uplink: each should get half the bandwidth,
	// so both finish at roughly latency + 2 x bytes/bw.
	msgs := []Message{
		{Src: 0, Dst: 1, Bytes: 1 << 20}, // node0 -> node1
		{Src: 2, Dst: 3, Bytes: 1 << 20}, // node0 -> node1 (ranks 2,3 alternate too)
	}
	res, err := Run(c, m, mo, msgs)
	if err != nil {
		t.Fatal(err)
	}
	single, _ := mo.PairCost(c, m, 0, 1, 1<<20)
	lat := mo.Net.Latency(0, 1)
	wantShared := lat + 2*(single-lat)
	if !approx(res.Makespan, wantShared, 1.0) {
		t.Fatalf("shared makespan = %v, want ~%v", res.Makespan, wantShared)
	}
}

func TestIndependentFlowsDoNotInterfere(t *testing.T) {
	c, m, mo := setup(t, "ncsbh", 4, 8)
	// node0->node1 and node2->node3: disjoint resources, both at full rate.
	msgs := []Message{
		{Src: 0, Dst: 1, Bytes: 1 << 20},
		{Src: 2, Dst: 3, Bytes: 1 << 20},
	}
	res, err := Run(c, m, mo, msgs)
	if err != nil {
		t.Fatal(err)
	}
	single, _ := mo.PairCost(c, m, 0, 1, 1<<20)
	if !approx(res.Makespan, single, 0.01) {
		t.Fatalf("independent flows slowed down: %v vs %v", res.Makespan, single)
	}
}

func TestIntraNodeUsesFabric(t *testing.T) {
	c, m, mo := setup(t, "csbnh", 1, 4)
	msgs := []Message{{Src: 0, Dst: 1, Bytes: 1 << 20}}
	res, err := Run(c, m, mo, msgs)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := mo.PairCost(c, m, 0, 1, 1<<20)
	if !approx(res.Makespan, want, 0.01) {
		t.Fatalf("intra = %v, want %v", res.Makespan, want)
	}
}

func TestTorusLinkContention(t *testing.T) {
	sp, _ := hw.Preset("bgp-node")
	d := torus.Dims{X: 4, Y: 1, Z: 1}
	c := cluster.Homogeneous(4, sp)
	mapper, _ := core.NewMapper(c, core.MustParseLayout("ncsbh"), core.Options{})
	m, err := mapper.Map(8)
	if err != nil {
		t.Fatal(err)
	}
	mo := netsim.NewModel(netsim.NewTorus3D(d))
	// Rank 0 (node0) -> rank 2 (node2) routes through node1; rank 1
	// (node1) -> rank 2 (node2) uses the same 1->2 link: contention.
	shared, err := Run(c, m, mo, []Message{
		{Src: 0, Dst: 2, Bytes: 1 << 18},
		{Src: 1, Dst: 2, Bytes: 1 << 18},
	})
	if err != nil {
		t.Fatal(err)
	}
	alone, err := Run(c, m, mo, []Message{{Src: 0, Dst: 2, Bytes: 1 << 18}})
	if err != nil {
		t.Fatal(err)
	}
	if shared.Makespan <= alone.Makespan {
		t.Fatalf("link contention not modeled: shared %v vs alone %v",
			shared.Makespan, alone.Makespan)
	}
}

// TestAnalyticUnderestimatesContention is the reason this package exists:
// with many flows through one uplink, the per-pair analytic cost is far
// below the fluid-fair completion time.
func TestAnalyticUnderestimatesContention(t *testing.T) {
	c, m, mo := setup(t, "csbnh", 2, 32)
	// csbnh places ranks 0-7 and 16-23 on node0, 8-15 and 24-31 on node1.
	// All 16 node0 ranks send to node1 partners simultaneously.
	var msgs []Message
	for r := 0; r < 8; r++ {
		msgs = append(msgs,
			Message{Src: r, Dst: 8 + r, Bytes: 1 << 20},
			Message{Src: 16 + r, Dst: 24 + r, Bytes: 1 << 20})
	}
	res, err := Run(c, m, mo, msgs)
	if err != nil {
		t.Fatal(err)
	}
	single, _ := mo.PairCost(c, m, 0, 8, 1<<20)
	if res.Makespan < 10*single {
		t.Fatalf("16-way contention should be ~16x single flow: %v vs %v",
			res.Makespan, single)
	}
}

func TestFromMatrix(t *testing.T) {
	tm := commpat.Ring(4, 100)
	msgs := FromMatrix(tm)
	if len(msgs) != 8 {
		t.Fatalf("messages = %d", len(msgs))
	}
	// Deterministic ordering.
	for i := 1; i < len(msgs); i++ {
		if msgs[i-1].Src > msgs[i].Src {
			t.Fatal("not sorted")
		}
	}
}

func TestRunErrors(t *testing.T) {
	c, m, mo := setup(t, "csbnh", 1, 4)
	cases := [][]Message{
		{{Src: 0, Dst: 9, Bytes: 1}},
		{{Src: -1, Dst: 1, Bytes: 1}},
		{{Src: 0, Dst: 1, Bytes: 0}},
		{{Src: 1, Dst: 1, Bytes: 5}},
	}
	for i, msgs := range cases {
		if _, err := Run(c, m, mo, msgs); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
	empty, err := Run(c, m, mo, nil)
	if err != nil || empty.Makespan != 0 {
		t.Fatal("empty message set")
	}
}
