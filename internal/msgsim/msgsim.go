// Package msgsim is a flow-level message simulator: the messages of one
// communication phase share network resources under max-min fairness, and
// an event-driven fluid simulation computes when each message actually
// finishes. It exists to ablate the analytic cost models (netsim sums,
// appsim maxima): where those approximate contention, msgsim resolves it,
// at the price of O(messages²) work.
//
// Resources modeled per message path:
//   - the sending node's uplink and the receiving node's downlink
//     (capacity = the pair's network bandwidth), for inter-node messages;
//   - every torus link on the dimension-ordered route when the network is
//     a Torus3D (link capacity = per-link bandwidth);
//   - the node's internal fabric for intra-node messages (capacity = the
//     LCA level's bandwidth).
package msgsim

import (
	"fmt"
	"math"
	"sort"

	"lama/internal/cluster"
	"lama/internal/commpat"
	"lama/internal/core"
	"lama/internal/netsim"
)

// Message is one transfer of a communication phase.
type Message struct {
	Src, Dst int // ranks
	Bytes    float64
}

// Outcome reports one simulated message.
type Outcome struct {
	Message
	// Finish is the completion time in µs (all messages start at 0).
	Finish float64
}

// Result is a completed phase simulation.
type Result struct {
	// Outcomes is ordered as the input messages.
	Outcomes []Outcome
	// Makespan is the latest finish time.
	Makespan float64
	// Events is the number of fluid re-allocations performed.
	Events int
}

// resource is a shared capacity with the set of unfinished flows using it.
type resource struct {
	capacity float64
	flows    map[int]bool
}

// flow is one in-flight message.
type flow struct {
	remaining float64
	startAt   float64 // path latency elapses before bytes move
	resources []*resource
	done      bool
	finish    float64
}

// Run simulates the message set under the model for the mapping. Message
// latency is charged up front (the flow starts after its path latency).
func Run(c *cluster.Cluster, m *core.Map, model *netsim.Model, msgs []Message) (*Result, error) {
	if len(msgs) == 0 {
		return &Result{}, nil
	}
	resources := map[string]*resource{}
	getRes := func(key string, capacity float64) *resource {
		r, ok := resources[key]
		if !ok {
			r = &resource{capacity: capacity, flows: map[int]bool{}}
			resources[key] = r
		}
		return r
	}

	t3, isTorus := model.Net.(*netsim.Torus3D)
	flows := make([]*flow, len(msgs))
	for i, msg := range msgs {
		if msg.Src < 0 || msg.Dst < 0 || msg.Src >= m.NumRanks() || msg.Dst >= m.NumRanks() {
			return nil, fmt.Errorf("msgsim: message %d has rank out of range", i)
		}
		if msg.Bytes <= 0 {
			return nil, fmt.Errorf("msgsim: message %d has non-positive size", i)
		}
		if msg.Src == msg.Dst {
			return nil, fmt.Errorf("msgsim: message %d is a self-send", i)
		}
		ps, pd := &m.Placements[msg.Src], &m.Placements[msg.Dst]
		f := &flow{remaining: msg.Bytes}
		if ps.Node == pd.Node {
			level := c.Node(ps.Node).Topo.CommonAncestorLevel(ps.PU(), pd.PU())
			f.startAt = model.Intra.Lat[level]
			// One aggregate channel per (node, locality level): messages
			// crossing the same fabric tier contend, tiers do not.
			f.resources = append(f.resources,
				getRes(fmt.Sprintf("fabric:%d:%d", ps.Node, level), model.Intra.BW[level]))
		} else {
			bw := model.Net.Bandwidth(ps.Node, pd.Node)
			f.startAt = model.Net.Latency(ps.Node, pd.Node)
			f.resources = append(f.resources,
				getRes(fmt.Sprintf("up:%d", ps.Node), bw),
				getRes(fmt.Sprintf("down:%d", pd.Node), bw))
			if isTorus {
				for _, key := range t3.RouteKeys(ps.Node, pd.Node) {
					f.resources = append(f.resources, getRes("link:"+key, t3.BW))
				}
			}
		}
		flows[i] = f
		for _, r := range f.resources {
			r.flows[i] = true
		}
	}

	res := &Result{Outcomes: make([]Outcome, len(msgs))}
	now := 0.0
	active := len(flows)
	for active > 0 {
		res.Events++
		rates := maxMinRates(flows, now)
		next := math.Inf(1)
		for i, f := range flows {
			if f.done {
				continue
			}
			if now < f.startAt {
				if f.startAt < next {
					next = f.startAt
				}
				continue
			}
			if rates[i] > 0 {
				eta := now + f.remaining/rates[i]
				if eta < next {
					next = eta
				}
			}
		}
		if math.IsInf(next, 1) {
			return nil, fmt.Errorf("msgsim: stalled at t=%v with %d flows", now, active)
		}
		dt := next - now
		for i, f := range flows {
			if f.done || now < f.startAt {
				continue
			}
			f.remaining -= rates[i] * dt
			if f.remaining <= 1e-9 {
				f.done = true
				f.finish = next
				active--
				for _, r := range f.resources {
					delete(r.flows, i)
				}
			}
		}
		now = next
	}
	for i, f := range flows {
		res.Outcomes[i] = Outcome{Message: msgs[i], Finish: f.finish}
		if f.finish > res.Makespan {
			res.Makespan = f.finish
		}
	}
	return res, nil
}

// maxMinRates computes max-min fair rates for the unfinished flows that
// are past their latency window: repeatedly saturate the most constrained
// resource and freeze its flows at the fair share.
func maxMinRates(flows []*flow, now float64) []float64 {
	rates := make([]float64, len(flows))
	fixed := make([]bool, len(flows))
	// Flows not yet transferring are treated as fixed at rate 0.
	eligible := 0
	for i, f := range flows {
		if f.done || now < f.startAt {
			fixed[i] = true
		} else {
			eligible++
		}
	}
	// Residual capacity per resource.
	type state struct {
		res      *resource
		residual float64
	}
	var states []state
	seen := map[*resource]bool{}
	for i, f := range flows {
		if fixed[i] {
			continue
		}
		for _, r := range f.resources {
			if !seen[r] {
				seen[r] = true
				states = append(states, state{res: r, residual: r.capacity})
			}
		}
	}
	for eligible > 0 {
		// Find the bottleneck: the resource with the smallest fair share
		// among its unfixed flows.
		bestShare := math.Inf(1)
		bestIdx := -1
		for si := range states {
			n := 0
			for fi := range states[si].res.flows {
				if !fixed[fi] {
					n++
				}
			}
			if n == 0 {
				continue
			}
			share := states[si].residual / float64(n)
			if share < bestShare {
				bestShare = share
				bestIdx = si
			}
		}
		if bestIdx < 0 {
			// No constrained resource left (should not happen: every
			// eligible flow uses at least one resource).
			break
		}
		// Freeze the bottleneck's flows at the fair share and charge
		// their rate to every other resource they traverse.
		for fi := range states[bestIdx].res.flows {
			if fixed[fi] {
				continue
			}
			fixed[fi] = true
			rates[fi] = bestShare
			eligible--
			for _, r := range flows[fi].resources {
				for si := range states {
					if states[si].res == r {
						states[si].residual -= bestShare
						if states[si].residual < 0 {
							states[si].residual = 0
						}
					}
				}
			}
		}
	}
	return rates
}

// FromMatrix converts a traffic matrix into the message list of one phase.
func FromMatrix(tm *commpat.Matrix) []Message {
	var msgs []Message
	tm.Each(func(i, j int, bytes float64) {
		msgs = append(msgs, Message{Src: i, Dst: j, Bytes: bytes})
	})
	sort.Slice(msgs, func(a, b int) bool {
		if msgs[a].Src != msgs[b].Src {
			return msgs[a].Src < msgs[b].Src
		}
		return msgs[a].Dst < msgs[b].Dst
	})
	return msgs
}
