package hw

import "fmt"

// Level identifies a hardware resource level in a node's topology tree.
// The declaration order is the canonical containment order used by every
// simulated topology: a Machine contains Boards, a Board contains Sockets,
// and so on down to PUs (hardware threads). See DESIGN.md §6.
type Level int

const (
	// LevelMachine is a server node ("n" in a process layout).
	LevelMachine Level = iota
	// LevelBoard is a motherboard ("b").
	LevelBoard
	// LevelSocket is a processor socket ("s").
	LevelSocket
	// LevelNUMA is a NUMA memory locality domain ("N").
	LevelNUMA
	// LevelL3 is an L3 cache ("L3").
	LevelL3
	// LevelL2 is an L2 cache ("L2").
	LevelL2
	// LevelL1 is an L1 cache ("L1").
	LevelL1
	// LevelCore is a processor core ("c").
	LevelCore
	// LevelPU is a hardware thread ("h"), the smallest processing unit.
	LevelPU

	// NumLevels is the number of distinct resource levels.
	NumLevels = int(LevelPU) + 1
)

// Levels lists all levels in canonical containment order (outermost first).
var Levels = [NumLevels]Level{
	LevelMachine, LevelBoard, LevelSocket, LevelNUMA,
	LevelL3, LevelL2, LevelL1, LevelCore, LevelPU,
}

// abbrevs follows Table I of the paper.
var abbrevs = [NumLevels]string{"n", "b", "s", "N", "L3", "L2", "L1", "c", "h"}

var levelNames = [NumLevels]string{
	"machine", "board", "socket", "numa", "l3", "l2", "l1", "core", "pu",
}

var levelDescriptions = [NumLevels]string{
	"Server node",
	"Motherboard",
	"Processor socket",
	"NUMA memory locality",
	"L3 cache",
	"L2 cache",
	"L1 cache",
	"Processor core (on a socket)",
	"Hardware thread (e.g., hyperthread)",
}

// Abbrev returns the process-layout abbreviation for the level
// (paper Table I): n, b, s, N, L3, L2, L1, c, h.
func (l Level) Abbrev() string {
	if !l.Valid() {
		return "?"
	}
	return abbrevs[l]
}

// String returns a lower-case human-readable level name.
func (l Level) String() string {
	if !l.Valid() {
		return fmt.Sprintf("level(%d)", int(l))
	}
	return levelNames[l]
}

// Description returns the Table I description of the level.
func (l Level) Description() string {
	if !l.Valid() {
		return "unknown"
	}
	return levelDescriptions[l]
}

// Valid reports whether l is one of the defined levels.
func (l Level) Valid() bool { return l >= LevelMachine && l <= LevelPU }

// Depth returns the canonical containment depth (machine=0 ... pu=8).
func (l Level) Depth() int { return int(l) }

// LevelByAbbrev maps a Table I abbreviation back to its Level.
// Abbreviations are case-sensitive: "n" is the node and "N" the NUMA domain.
func LevelByAbbrev(tok string) (Level, bool) {
	for i, a := range abbrevs {
		if a == tok {
			return Level(i), true
		}
	}
	return 0, false
}

// LevelByName maps a lower-case level name ("socket", "core", ...) to its
// Level.
func LevelByName(name string) (Level, bool) {
	for i, n := range levelNames {
		if n == name {
			return Level(i), true
		}
	}
	return 0, false
}
