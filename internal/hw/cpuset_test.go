package hw

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCPUSetBasics(t *testing.T) {
	s := NewCPUSet()
	if !s.Empty() || s.Count() != 0 || s.First() != -1 {
		t.Fatalf("empty set misbehaves: %v", s)
	}
	s.Set(3)
	s.Set(70)
	s.Set(3) // idempotent
	if s.Count() != 2 {
		t.Fatalf("Count = %d, want 2", s.Count())
	}
	if !s.Contains(3) || !s.Contains(70) || s.Contains(4) {
		t.Fatal("Contains wrong")
	}
	if s.First() != 3 {
		t.Fatalf("First = %d, want 3", s.First())
	}
	s.Clear(3)
	if s.Contains(3) || s.Count() != 1 {
		t.Fatal("Clear failed")
	}
	s.Clear(1000) // out of range: no-op
	s.Clear(-1)   // negative: no-op
	if s.Count() != 1 {
		t.Fatal("out-of-range Clear changed the set")
	}
}

func TestCPUSetNilReceivers(t *testing.T) {
	var s *CPUSet
	if s.Contains(0) || s.Count() != 0 || !s.Empty() {
		t.Fatal("nil set should behave as empty")
	}
	if s.First() != -1 || s.Nth(0) != -1 {
		t.Fatal("nil First/Nth")
	}
	if s.Members() != nil {
		t.Fatal("nil Members")
	}
	if got := s.Clone(); got.Count() != 0 {
		t.Fatal("nil Clone")
	}
	if !s.Equal(NewCPUSet()) {
		t.Fatal("nil should Equal empty")
	}
	if !s.IsSubset(NewCPUSet(1)) {
		t.Fatal("nil IsSubset")
	}
	if s.Intersects(NewCPUSet(1)) {
		t.Fatal("nil Intersects")
	}
}

func TestCPUSetSetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Set(-1) should panic")
		}
	}()
	NewCPUSet().Set(-1)
}

func TestCPUSetRange(t *testing.T) {
	s := CPUSetRange(2, 5)
	if got := s.String(); got != "2-5" {
		t.Fatalf("String = %q, want 2-5", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("invalid range should panic")
		}
	}()
	CPUSetRange(5, 2)
}

func TestCPUSetNth(t *testing.T) {
	s := NewCPUSet(1, 5, 64, 130)
	for i, want := range []int{1, 5, 64, 130} {
		if got := s.Nth(i); got != want {
			t.Errorf("Nth(%d) = %d, want %d", i, got, want)
		}
	}
	if s.Nth(4) != -1 || s.Nth(-1) != -1 {
		t.Error("out-of-range Nth should be -1")
	}
}

func TestCPUSetOps(t *testing.T) {
	a := NewCPUSet(0, 1, 2, 65)
	b := NewCPUSet(2, 3, 65, 200)

	u := a.Clone()
	u.Or(b)
	if got, want := u.String(), "0-3,65,200"; got != want {
		t.Errorf("Or = %q, want %q", got, want)
	}

	i := a.Clone()
	i.And(b)
	if got, want := i.String(), "2,65"; got != want {
		t.Errorf("And = %q, want %q", got, want)
	}

	d := a.Clone()
	d.AndNot(b)
	if got, want := d.String(), "0-1"; got != want {
		t.Errorf("AndNot = %q, want %q", got, want)
	}

	if !a.Intersects(b) || a.Intersects(NewCPUSet(99)) {
		t.Error("Intersects wrong")
	}
	if !i.IsSubset(a) || !i.IsSubset(b) || a.IsSubset(b) {
		t.Error("IsSubset wrong")
	}
}

func TestCPUSetEqualDifferentLengths(t *testing.T) {
	a := NewCPUSet(1)
	b := NewCPUSet(1, 300)
	b.Clear(300) // b now has extra zero words
	if !a.Equal(b) || !b.Equal(a) {
		t.Fatal("Equal should ignore trailing zero words")
	}
}

func TestCPUSetStringParseRoundTrip(t *testing.T) {
	cases := []string{"", "0", "0-3", "0-3,8,10-11", "5,7,9", "63-65"}
	for _, c := range cases {
		s, err := ParseCPUSet(c)
		if err != nil {
			t.Fatalf("ParseCPUSet(%q): %v", c, err)
		}
		if got := s.String(); got != c {
			t.Errorf("round trip %q -> %q", c, got)
		}
	}
}

func TestParseCPUSetErrors(t *testing.T) {
	for _, c := range []string{"a", "3-1", "-1", "1,", "1--2", "1-b"} {
		if _, err := ParseCPUSet(c); err == nil {
			t.Errorf("ParseCPUSet(%q) should fail", c)
		}
	}
}

func TestParseCPUSetWhitespace(t *testing.T) {
	s, err := ParseCPUSet(" 0 - 3 , 8 ")
	if err != nil {
		t.Fatalf("whitespace parse: %v", err)
	}
	if s.String() != "0-3,8" {
		t.Fatalf("got %q", s.String())
	}
}

// randomSet builds a CPUSet from a random selection of indices below n.
func randomSet(r *rand.Rand, n int) *CPUSet {
	s := NewCPUSet()
	for i := 0; i < n; i++ {
		if r.Intn(2) == 1 {
			s.Set(i)
		}
	}
	return s
}

func TestQuickCPUSetRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := randomSet(r, 200)
		p, err := ParseCPUSet(s.String())
		return err == nil && p.Equal(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickCPUSetDeMorgan(t *testing.T) {
	// Over a fixed universe U: U \ (A u B) == (U \ A) n (U \ B).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		u := CPUSetRange(0, 127)
		a, b := randomSet(r, 128), randomSet(r, 128)

		ab := a.Clone()
		ab.Or(b)
		lhs := u.Clone()
		lhs.AndNot(ab)

		na := u.Clone()
		na.AndNot(a)
		nb := u.Clone()
		nb.AndNot(b)
		rhs := na.Clone()
		rhs.And(nb)

		return lhs.Equal(rhs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickCPUSetMembersSorted(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := randomSet(r, 300)
		m := s.Members()
		if len(m) != s.Count() {
			return false
		}
		for i := 1; i < len(m); i++ {
			if m[i] <= m[i-1] {
				return false
			}
		}
		// Nth agrees with Members.
		for i, v := range m {
			if s.Nth(i) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickCPUSetUnionCount(t *testing.T) {
	// |A u B| = |A| + |B| - |A n B|
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomSet(r, 150), randomSet(r, 150)
		u := a.Clone()
		u.Or(b)
		i := a.Clone()
		i.And(b)
		return u.Count() == a.Count()+b.Count()-i.Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
