package hw

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseSynthetic parses an hwloc-style synthetic topology description:
// space-separated "<level>:<count>" elements from outer to inner, e.g.
//
//	"board:1 socket:2 numa:1 l3:1 l2:4 core:1 pu:2"
//	"socket:4 core:6 pu:1"
//
// Levels may be omitted (width 1) but must appear in canonical containment
// order; counts are children-per-parent, as in hwloc. The machine level is
// implicit.
func ParseSynthetic(text string) (Spec, error) {
	sp := Spec{Boards: 1, Sockets: 1, NUMAs: 1, L3s: 1, L2s: 1, L1s: 1, Cores: 1, PUs: 1}
	fields := strings.Fields(text)
	if len(fields) == 0 {
		return Spec{}, fmt.Errorf("hw: empty synthetic description")
	}
	last := LevelMachine
	for _, f := range fields {
		name, countStr, ok := strings.Cut(f, ":")
		if !ok {
			return Spec{}, fmt.Errorf("hw: synthetic element %q: want <level>:<count>", f)
		}
		level, ok := LevelByName(strings.ToLower(name))
		if !ok {
			return Spec{}, fmt.Errorf("hw: synthetic element %q: unknown level %q", f, name)
		}
		if level == LevelMachine {
			return Spec{}, fmt.Errorf("hw: machine level is implicit in synthetic descriptions")
		}
		if level <= last {
			return Spec{}, fmt.Errorf("hw: synthetic levels out of order: %s after %s", level, last)
		}
		last = level
		count, err := strconv.Atoi(countStr)
		if err != nil || count < 1 {
			return Spec{}, fmt.Errorf("hw: synthetic element %q: bad count", f)
		}
		switch level {
		case LevelBoard:
			sp.Boards = count
		case LevelSocket:
			sp.Sockets = count
		case LevelNUMA:
			sp.NUMAs = count
		case LevelL3:
			sp.L3s = count
		case LevelL2:
			sp.L2s = count
		case LevelL1:
			sp.L1s = count
		case LevelCore:
			sp.Cores = count
		case LevelPU:
			sp.PUs = count
		}
	}
	return sp, nil
}

// FormatSynthetic renders a spec in synthetic form, omitting width-1
// levels (except that at least "pu:<n>" is always emitted).
func FormatSynthetic(sp Spec) string {
	type item struct {
		level Level
		count int
	}
	items := []item{
		{LevelBoard, sp.Boards}, {LevelSocket, sp.Sockets}, {LevelNUMA, sp.NUMAs},
		{LevelL3, sp.L3s}, {LevelL2, sp.L2s}, {LevelL1, sp.L1s},
		{LevelCore, sp.Cores}, {LevelPU, sp.PUs},
	}
	var parts []string
	for _, it := range items {
		if it.count > 1 || it.level == LevelPU {
			parts = append(parts, fmt.Sprintf("%s:%d", it.level, it.count))
		}
	}
	return strings.Join(parts, " ")
}
