package hw

import (
	"fmt"
	"strings"
)

// RenderTree prints the topology as an indented ASCII tree, in the style
// of hwloc's lstopo text output. Width-1 cache levels are compressed onto
// their parent line to keep deep trees readable; unavailable objects are
// marked.
//
//	machine#0
//	  board#0
//	    socket#0 numa#0 l3#0
//	      core#0 (pus 0,8)
//	      core#1 (pus 1,9) [offline]
func (t *Topology) RenderTree() string {
	var sb strings.Builder
	var walk func(o *Object, depth int, prefix string)
	walk = func(o *Object, depth int, prefix string) {
		label := prefix + o.String()
		if !o.Available {
			label += " [offline]"
		}
		// Compress chains of single-child interior levels onto one line.
		for o.Level < LevelCore && len(o.Children) == 1 {
			o = o.Children[0]
			label += " " + o.String()
			if !o.Available {
				label += " [offline]"
			}
		}
		if o.Level == LevelCore {
			fmt.Fprintf(&sb, "%s%s (pus %s)", strings.Repeat("  ", depth), label, o.PUSet())
			if usable := o.UsablePUSet(); !usable.Equal(o.PUSet()) {
				fmt.Fprintf(&sb, " [usable %s]", usable)
			}
			sb.WriteByte('\n')
			return
		}
		fmt.Fprintf(&sb, "%s%s\n", strings.Repeat("  ", depth), label)
		if o.Level == LevelPU {
			return
		}
		for _, c := range o.Children {
			walk(c, depth+1, "")
		}
	}
	walk(t.Root, 0, "")
	return sb.String()
}
