package hw

import (
	"encoding/json"
	"fmt"
)

// objectDTO is the JSON wire form of an Object subtree.
type objectDTO struct {
	Level     string      `json:"level"`
	OS        int         `json:"os,omitempty"`
	Available *bool       `json:"available,omitempty"` // omitted == true
	Children  []objectDTO `json:"children,omitempty"`
}

func toDTO(o *Object) objectDTO {
	d := objectDTO{Level: o.Level.String(), OS: o.OS}
	if !o.Available {
		f := false
		d.Available = &f
	}
	for _, c := range o.Children {
		d.Children = append(d.Children, toDTO(c))
	}
	return d
}

// fromDTO rebuilds one object subtree from its decoded form.
//
//lama:mutator
func fromDTO(d objectDTO, parent *Object, t *Topology) (*Object, error) {
	level, ok := LevelByName(d.Level)
	if !ok {
		return nil, fmt.Errorf("hw: unknown level %q", d.Level)
	}
	if parent != nil && level <= parent.Level {
		return nil, fmt.Errorf("hw: level %s cannot be a child of %s", level, parent.Level)
	}
	o := &Object{Level: level, OS: d.OS, Parent: parent, Available: true}
	if level != LevelPU {
		o.OS = -1
	}
	if d.Available != nil {
		o.Available = *d.Available
	}
	if level == LevelPU && len(d.Children) > 0 {
		return nil, fmt.Errorf("hw: PU objects cannot have children")
	}
	for _, cd := range d.Children {
		c, err := fromDTO(cd, o, t)
		if err != nil {
			return nil, err
		}
		o.Children = append(o.Children, c)
	}
	return o, nil
}

// MarshalJSON encodes the topology as a nested object tree. Levels missing
// in the wire form are not reconstructed: round-tripping preserves exactly
// the tree given, including irregular shapes and availability flags.
func (t *Topology) MarshalJSON() ([]byte, error) {
	return json.Marshal(toDTO(t.Root))
}

// UnmarshalJSON decodes a topology from the MarshalJSON form. The root
// object must be a machine. Note: unlike Spec-built trees, decoded trees
// may omit levels entirely; all hw queries handle that, but such trees
// should be normalized with a Spec when a full 9-level tree is required.
//
//lama:mutator
func (t *Topology) UnmarshalJSON(data []byte) error {
	var d objectDTO
	if err := json.Unmarshal(data, &d); err != nil {
		return err
	}
	root, err := fromDTO(d, nil, t)
	if err != nil {
		return err
	}
	if root.Level != LevelMachine {
		return fmt.Errorf("hw: topology root must be a machine, got %s", root.Level)
	}
	t.Root = root
	t.reindex()
	return nil
}
