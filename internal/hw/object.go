package hw

import "fmt"

// Object is a node in a hardware topology tree: one machine, board, socket,
// NUMA domain, cache, core, or PU instance.
type Object struct {
	// Level is the resource level of this object.
	Level Level
	// Logical is the machine-wide logical index of the object among all
	// objects of the same level (0-based, breadth-first order). Logical
	// indices are what mapping algorithms and users reason about.
	Logical int
	// Rank is the object's index within its parent's Children slice.
	Rank int
	// OS is the "physical" operating-system index. Only meaningful for
	// PUs, where it is the index used in CPU sets; -1 elsewhere.
	OS int
	// Parent is the containing object (nil for the machine root).
	Parent *Object
	// Children are the contained objects, ordered by Rank.
	Children []*Object
	// Available reports whether the scheduler and OS allow mapping onto
	// this object. An object with Available == false is present in the
	// topology but must be skipped by mapping agents (paper §IV-A).
	// Availability is stored per-object; an unavailable interior object
	// makes its whole subtree unavailable (see Usable).
	Available bool

	puset *CPUSet // cached set of all PU OS indices beneath (incl. unavailable)
}

// String renders the object as e.g. "socket#2".
func (o *Object) String() string {
	if o == nil {
		return "<nil>"
	}
	return fmt.Sprintf("%s#%d", o.Level, o.Logical)
}

// Usable reports whether the object and all of its ancestors are available.
func (o *Object) Usable() bool {
	for x := o; x != nil; x = x.Parent {
		if !x.Available {
			return false
		}
	}
	return true
}

// Ancestor returns the ancestor of o at the given level (or o itself if
// o.Level == level). It returns nil if level is below o's level.
func (o *Object) Ancestor(level Level) *Object {
	for x := o; x != nil; x = x.Parent {
		if x.Level == level {
			return x
		}
	}
	return nil
}

// PUSet returns the set of OS indices of all PUs contained in o's subtree,
// regardless of availability. The result is cached; callers must not
// modify it.
func (o *Object) PUSet() *CPUSet {
	if o.puset != nil {
		return o.puset
	}
	s := &CPUSet{}
	if o.Level == LevelPU {
		s.Set(o.OS)
	} else {
		for _, c := range o.Children {
			s.Or(c.PUSet())
		}
	}
	o.puset = s //lama:mutation-ok memoized fill: idempotent; reindex and Clone reset it
	return s
}

// UsablePUs returns the PUs in o's subtree whose entire ancestor chain is
// available. The returned slice is in ascending logical order.
func (o *Object) UsablePUs() []*Object {
	var out []*Object
	var walk func(x *Object)
	walk = func(x *Object) {
		if !x.Available {
			return
		}
		if x.Level == LevelPU {
			out = append(out, x)
			return
		}
		for _, c := range x.Children {
			walk(c)
		}
	}
	// Ancestors of o must be available too.
	if !o.Usable() {
		return nil
	}
	walk(o)
	return out
}

// UsablePUSet returns the CPUSet of UsablePUs.
func (o *Object) UsablePUSet() *CPUSet {
	s := &CPUSet{}
	for _, pu := range o.UsablePUs() {
		s.Set(pu.OS)
	}
	return s
}
