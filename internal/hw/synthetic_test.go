package hw

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParseSynthetic(t *testing.T) {
	sp, err := ParseSynthetic("board:1 socket:2 numa:1 l3:1 l2:4 core:1 pu:2")
	if err != nil {
		t.Fatal(err)
	}
	if sp.Sockets != 2 || sp.L2s != 4 || sp.PUs != 2 || sp.TotalPUs() != 16 {
		t.Fatalf("sp = %+v", sp)
	}
	// Omitted levels default to width 1.
	sp2, err := ParseSynthetic("socket:4 core:6 pu:1")
	if err != nil {
		t.Fatal(err)
	}
	if sp2.Boards != 1 || sp2.TotalPUs() != 24 {
		t.Fatalf("sp2 = %+v", sp2)
	}
	// Case-insensitive level names.
	if _, err := ParseSynthetic("Socket:2 PU:2"); err != nil {
		t.Fatal(err)
	}
}

func TestParseSyntheticErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"socket",            // no count
		"warp:2",            // unknown level
		"machine:1",         // machine is implicit
		"core:2 socket:2",   // out of order
		"socket:2 socket:2", // repeated
		"socket:0",          // non-positive
		"socket:x",          // non-numeric
	} {
		if _, err := ParseSynthetic(bad); err == nil {
			t.Errorf("ParseSynthetic(%q) should fail", bad)
		}
	}
}

func TestFormatSyntheticRoundTrip(t *testing.T) {
	for _, name := range PresetNames() {
		sp, _ := Preset(name)
		text := FormatSynthetic(sp)
		back, err := ParseSynthetic(text)
		if err != nil {
			t.Fatalf("%s: re-parse %q: %v", name, text, err)
		}
		// ThreadMajorOS is not part of the synthetic form; compare shape.
		back.ThreadMajorOS = sp.ThreadMajorOS
		if back != sp {
			t.Fatalf("%s: %q round-tripped to %+v, want %+v", name, text, back, sp)
		}
	}
}

func TestQuickSyntheticRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		sp := randomSpec(r)
		sp.ThreadMajorOS = false
		back, err := ParseSynthetic(FormatSynthetic(sp))
		return err == nil && back == sp
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickParsersNeverPanic feeds adversarial strings to every parser in
// the package; they may error but must not panic.
func TestQuickParsersNeverPanic(t *testing.T) {
	f := func(s string) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		_, _ = ParseSynthetic(s)
		_, _ = ParseSpec(s)
		_, _ = ParseCPUSet(s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
