// Package hw provides a synthetic hardware-topology substrate modeled after
// the subset of hwloc that the LAMA mapping algorithm consumes: trees of
// hardware objects (machine, board, socket, NUMA node, caches, core,
// hardware thread), logical and physical numbering, availability masks, and
// CPU-set bitmaps.
//
// The package is a simulation substrate: topologies are built from
// declarative specs or vendor-like presets rather than discovered from the
// running machine, which lets tests and experiments exercise homogeneous,
// heterogeneous, irregular, and restricted systems deterministically.
package hw

import (
	"fmt"
	"math/bits"
	"strconv"
	"strings"
)

// wordBits is the number of bits per CPUSet word.
const wordBits = 64

// CPUSet is a bitmap over processing-unit (PU) physical indices, analogous
// to an hwloc bitmap or a Linux cpuset mask. The zero value is an empty set.
type CPUSet struct {
	words []uint64
}

// NewCPUSet returns a set containing the given PU indices.
func NewCPUSet(pus ...int) *CPUSet {
	s := &CPUSet{}
	for _, pu := range pus {
		s.Set(pu)
	}
	return s
}

// CPUSetRange returns the set {lo, lo+1, ..., hi}. It panics if lo > hi or
// lo < 0.
func CPUSetRange(lo, hi int) *CPUSet {
	if lo < 0 || lo > hi {
		panic(fmt.Sprintf("hw: invalid cpuset range %d-%d", lo, hi))
	}
	s := &CPUSet{}
	for i := lo; i <= hi; i++ {
		s.Set(i)
	}
	return s
}

func (s *CPUSet) grow(word int) {
	for len(s.words) <= word {
		s.words = append(s.words, 0)
	}
}

// Set adds pu to the set. Negative indices panic.
func (s *CPUSet) Set(pu int) {
	if pu < 0 {
		panic("hw: negative PU index")
	}
	w := pu / wordBits
	s.grow(w)
	s.words[w] |= 1 << uint(pu%wordBits)
}

// Clear removes pu from the set.
func (s *CPUSet) Clear(pu int) {
	if pu < 0 {
		return
	}
	w := pu / wordBits
	if w < len(s.words) {
		s.words[w] &^= 1 << uint(pu%wordBits)
	}
}

// Contains reports whether pu is in the set.
func (s *CPUSet) Contains(pu int) bool {
	if s == nil || pu < 0 {
		return false
	}
	w := pu / wordBits
	return w < len(s.words) && s.words[w]&(1<<uint(pu%wordBits)) != 0
}

// Count returns the number of PUs in the set.
func (s *CPUSet) Count() int {
	if s == nil {
		return 0
	}
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether the set contains no PUs.
func (s *CPUSet) Empty() bool { return s.Count() == 0 }

// Clone returns a copy of the set. Clone of nil is an empty set.
func (s *CPUSet) Clone() *CPUSet {
	c := &CPUSet{}
	if s != nil {
		c.words = append([]uint64(nil), s.words...)
	}
	return c
}

// Or sets s to the union of s and o.
func (s *CPUSet) Or(o *CPUSet) {
	if o == nil {
		return
	}
	s.grow(len(o.words) - 1)
	for i, w := range o.words {
		s.words[i] |= w
	}
}

// And sets s to the intersection of s and o.
func (s *CPUSet) And(o *CPUSet) {
	for i := range s.words {
		if o == nil || i >= len(o.words) {
			s.words[i] = 0
		} else {
			s.words[i] &= o.words[i]
		}
	}
}

// AndNot removes from s every PU present in o.
func (s *CPUSet) AndNot(o *CPUSet) {
	if o == nil {
		return
	}
	for i := range s.words {
		if i < len(o.words) {
			s.words[i] &^= o.words[i]
		}
	}
}

// Intersects reports whether s and o share at least one PU.
func (s *CPUSet) Intersects(o *CPUSet) bool {
	if s == nil || o == nil {
		return false
	}
	n := len(s.words)
	if len(o.words) < n {
		n = len(o.words)
	}
	for i := 0; i < n; i++ {
		if s.words[i]&o.words[i] != 0 {
			return true
		}
	}
	return false
}

// Equal reports whether s and o contain exactly the same PUs.
func (s *CPUSet) Equal(o *CPUSet) bool {
	a, b := s, o
	if a == nil {
		a = &CPUSet{}
	}
	if b == nil {
		b = &CPUSet{}
	}
	n := len(a.words)
	if len(b.words) > n {
		n = len(b.words)
	}
	for i := 0; i < n; i++ {
		var wa, wb uint64
		if i < len(a.words) {
			wa = a.words[i]
		}
		if i < len(b.words) {
			wb = b.words[i]
		}
		if wa != wb {
			return false
		}
	}
	return true
}

// IsSubset reports whether every PU of s is also in o.
func (s *CPUSet) IsSubset(o *CPUSet) bool {
	if s == nil {
		return true
	}
	for i, w := range s.words {
		var wo uint64
		if o != nil && i < len(o.words) {
			wo = o.words[i]
		}
		if w&^wo != 0 {
			return false
		}
	}
	return true
}

// First returns the smallest PU in the set, or -1 if the set is empty.
func (s *CPUSet) First() int {
	if s == nil {
		return -1
	}
	for i, w := range s.words {
		if w != 0 {
			return i*wordBits + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// Nth returns the n-th smallest PU in the set (0-based), or -1 if the set
// has fewer than n+1 PUs.
func (s *CPUSet) Nth(n int) int {
	if s == nil || n < 0 {
		return -1
	}
	for i, w := range s.words {
		c := bits.OnesCount64(w)
		if n >= c {
			n -= c
			continue
		}
		for b := 0; b < wordBits; b++ {
			if w&(1<<uint(b)) != 0 {
				if n == 0 {
					return i*wordBits + b
				}
				n--
			}
		}
	}
	return -1
}

// Members returns the PUs in ascending order.
func (s *CPUSet) Members() []int {
	if s == nil {
		return nil
	}
	out := make([]int, 0, s.Count())
	for i, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, i*wordBits+b)
			w &^= 1 << uint(b)
		}
	}
	return out
}

// String renders the set in hwloc list syntax, e.g. "0-3,8,10-11".
// The empty set renders as "".
func (s *CPUSet) String() string {
	m := s.Members()
	if len(m) == 0 {
		return ""
	}
	var sb strings.Builder
	i := 0
	for i < len(m) {
		j := i
		for j+1 < len(m) && m[j+1] == m[j]+1 {
			j++
		}
		if sb.Len() > 0 {
			sb.WriteByte(',')
		}
		if j == i {
			fmt.Fprintf(&sb, "%d", m[i])
		} else {
			fmt.Fprintf(&sb, "%d-%d", m[i], m[j])
		}
		i = j + 1
	}
	return sb.String()
}

// ParseCPUSet parses hwloc list syntax ("0-3,8,10-11"). The empty string
// parses to the empty set.
func ParseCPUSet(text string) (*CPUSet, error) {
	s := &CPUSet{}
	text = strings.TrimSpace(text)
	if text == "" {
		return s, nil
	}
	for _, part := range strings.Split(text, ",") {
		part = strings.TrimSpace(part)
		if lo, hi, ok := strings.Cut(part, "-"); ok {
			a, err1 := strconv.Atoi(strings.TrimSpace(lo))
			b, err2 := strconv.Atoi(strings.TrimSpace(hi))
			// The MaxSpecPUs ceiling keeps a hostile range ("0-9999999999")
			// from expanding into a gigabyte-sized bitmap.
			if err1 != nil || err2 != nil || a < 0 || a > b || b >= MaxSpecPUs {
				return nil, fmt.Errorf("hw: bad cpuset range %q", part)
			}
			for i := a; i <= b; i++ {
				s.Set(i)
			}
		} else {
			v, err := strconv.Atoi(part)
			if err != nil || v < 0 || v >= MaxSpecPUs {
				return nil, fmt.Errorf("hw: bad cpuset element %q", part)
			}
			s.Set(v)
		}
	}
	return s, nil
}
